// wordsize sweeps the memory word width w and prints the paper's headline
// tradeoff from both sides: the measured worst-case RMRs per passage of the
// Katzan–Morrison-style tree (the O(log_w n) upper bound) next to the
// Theorem 1 lower-bound shape min(log_w n, log n / log log n).
package main

import (
	"fmt"
	"log"

	"rme"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 256
	widths := []rme.Width{2, 4, 8, 16, 32, 64}

	fmt.Printf("word-size RMR tradeoff, n = %d processes (CC model)\n\n", n)
	fmt.Printf("%4s  %20s  %22s  %10s\n", "w", "measured max/passage", "upper bound ceil(log_w n)", "lower bound")
	for _, w := range widths {
		s, err := rme.NewSession(rme.Config{
			Procs:     n,
			Width:     w,
			Model:     rme.CC,
			Algorithm: rme.MustAlgorithm("watree"),
			Passes:    2,
			NoTrace:   true,
		})
		if err != nil {
			return err
		}
		if err := s.RunRoundRobin(); err != nil {
			s.Close()
			return err
		}
		measured := s.MaxPassageRMRs(rme.CC)
		s.Close()

		depth := ceilLog(int(w), n)
		fmt.Printf("%4d  %20d  %22d  %10.2f\n",
			int(w), measured, depth, rme.TheoreticalLowerBound(w, n))
	}
	fmt.Println("\nthe measured cost tracks ceil(log_w n): wider words, fewer RMRs —")
	fmt.Println("and Theorem 1 says no algorithm can beat that shape on w-bit words.")
	return nil
}

func ceilLog(base, n int) int {
	l, p := 0, 1
	for p < n {
		p *= base
		l++
	}
	return l
}
