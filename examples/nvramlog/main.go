// nvramlog is the paper's motivating scenario made concrete: a persistent
// (NVRAM-style) append-only log guarded by a recoverable lock. Processes
// crash at random points — including inside the critical section — and the
// run is correct only because of two properties working together:
//
//   - the lock's critical-section re-entry: after a crash, no other process
//     enters until the crashed holder recovers and re-enters; and
//   - a write-ahead intent record in the application, so the re-entered
//     critical section can complete its half-done append idempotently.
//
// This example builds its own process programs on the simulator (the same
// machinery the library's driver uses), showing how to write custom
// crash-consistent workloads.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"rme/internal/algorithms/watree"
	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/word"
)

const (
	procs   = 6
	appends = 3 // appends per process
	width   = word.Width(16)
)

func main() {
	// Same convention as the cmd/ tools: -seed offsets the base seed, 0 is
	// the published run.
	seed := flag.Int64("seed", 0, "offset for the scheduling seed (0 = the published run)")
	flag.Parse()
	if err := run(*seed); err != nil {
		log.Fatal(err)
	}
}

func run(seed int64) error {
	machine, err := sim.New(sim.Config{Procs: procs, Width: width, Model: sim.CC})
	if err != nil {
		return err
	}
	defer machine.Close()

	// The recoverable lock.
	alg := watree.New()
	inst, err := alg.Make(machine, procs)
	if err != nil {
		return err
	}

	// The persistent log: a length word plus one slot per possible entry,
	// and a per-process state word packing (intent slot+1) << 8 | committed
	// count — one atomic write commits an append and clears the intent.
	logLen := machine.NewCell("log.len", memory.Shared, 0)
	slots := make([]memory.Cell, procs*appends)
	for i := range slots {
		slots[i] = machine.NewCell(fmt.Sprintf("log.slot.%d", i), memory.Shared, 0)
	}
	state := make([]memory.Cell, procs)
	for i := range state {
		state[i] = machine.NewCell(fmt.Sprintf("log.state.%d", i), i, 0)
	}

	programs := make([]sim.Program, procs)
	for i := 0; i < procs; i++ {
		programs[i] = &appender{inst: inst, logLen: logLen, slots: slots, state: state[i]}
	}
	if err := machine.Start(programs); err != nil {
		return err
	}

	// Random scheduling with crash injection (up to 2 crashes per process).
	rng := rand.New(rand.NewSource(2023 + seed))
	crashes := 0
	for !machine.AllDone() {
		poised := machine.PoisedProcs()
		if len(poised) == 0 {
			return fmt.Errorf("deadlock: %s", machine.Schedule())
		}
		if rng.Float64() < 0.02 {
			if victim, ok := pickVictim(machine, rng); ok {
				if _, err := machine.Crash(victim); err != nil {
					return err
				}
				crashes++
				continue
			}
		}
		if _, err := machine.Step(poised[rng.Intn(len(poised))]); err != nil {
			return err
		}
	}

	// Verify the log survived every crash: exactly procs*appends entries,
	// each process appearing exactly `appends` times, no torn slots.
	n := int(machine.Value(logLen))
	if n != procs*appends {
		return fmt.Errorf("log length %d, want %d", n, procs*appends)
	}
	counts := make(map[word.Word]int)
	for i := 0; i < n; i++ {
		v := machine.Value(slots[i])
		if v == 0 {
			return fmt.Errorf("torn slot %d", i)
		}
		counts[v]++
	}
	for p := 0; p < procs; p++ {
		if counts[word.Word(p+1)] != appends {
			return fmt.Errorf("process %d has %d entries, want %d", p, counts[word.Word(p+1)], appends)
		}
	}

	fmt.Printf("log intact after %d crashes: %d entries from %d processes\n", crashes, n, procs)
	fmt.Print("log: ")
	for i := 0; i < n; i++ {
		fmt.Printf("p%d ", machine.Value(slots[i])-1)
	}
	fmt.Println()
	for p := 0; p < procs; p++ {
		fmt.Printf("p%d: %d crash(es), %d total CC RMRs\n", p, machine.Crashes(p), machine.RMRsIn(sim.CC, p))
	}
	return nil
}

// pickVictim chooses a random live process (parked ones included — crashing
// a waiter is a recovery path too).
func pickVictim(m *sim.Machine, rng *rand.Rand) (int, bool) {
	var live []int
	for p := 0; p < procs; p++ {
		if !m.ProcDone(p) && m.Crashes(p) < 2 {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return 0, false
	}
	return live[rng.Intn(len(live))], true
}

// appender is the per-process program: `appends` super-passages, each
// appending one entry under the lock with a write-ahead intent.
type appender struct {
	inst   mutex.Instance
	logLen memory.Cell
	slots  []memory.Cell
	state  memory.Cell

	handle mutex.Handle // immutable after Bind
}

var _ sim.Program = (*appender)(nil)

func (a *appender) Run(p *sim.Proc) {
	a.handle = a.inst.Bind(p)
	for a.committed(p) < appends {
		a.handle.Lock()
		a.appendEntry(p)
		a.handle.Unlock()
	}
}

// Recover resumes after a crash: the lock tells us whether we still hold
// the critical section (re-entry), already released, or were idle.
func (a *appender) Recover(p *sim.Proc) {
	switch a.handle.Recover() {
	case mutex.RecoverAcquired:
		a.appendEntry(p) // idempotent: completes the interrupted append
		a.handle.Unlock()
	case mutex.RecoverReleased, mutex.RecoverIdle:
		// Nothing in flight.
	}
	for a.committed(p) < appends {
		a.handle.Lock()
		a.appendEntry(p)
		a.handle.Unlock()
	}
}

func (a *appender) committed(p *sim.Proc) int {
	return int(p.Read(a.state) & 0xff)
}

// appendEntry runs inside the critical section and is crash-re-entrant:
// every step is idempotent or guarded by the packed intent/count word.
func (a *appender) appendEntry(p *sim.Proc) {
	st := p.Read(a.state)
	count := st & 0xff
	intent := st >> 8 // slot+1, or 0
	if count >= appends {
		return
	}
	if intent == 0 {
		idx := p.Read(a.logLen)
		p.Write(a.state, (idx+1)<<8|count)
		intent = idx + 1
	}
	idx := intent - 1
	p.Write(a.slots[idx], word.Word(p.ID()+1))
	if p.Read(a.logLen) == idx {
		p.Write(a.logLen, idx+1)
	}
	// Single-word commit: count+1 with the intent field cleared.
	p.Write(a.state, count+1)
}
