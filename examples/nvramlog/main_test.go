package main

import (
	"io"
	"os"
	"testing"
)

// runCaptured runs the example with stdout redirected and returns what it
// printed.
func runCaptured(t *testing.T, seed int64) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string, 1)
	go func() {
		blob, _ := io.ReadAll(r)
		done <- string(blob)
	}()
	runErr := run(seed)
	w.Close()
	out := <-done
	r.Close()
	if runErr != nil {
		t.Fatalf("seed %d: %v\noutput:\n%s", seed, runErr, out)
	}
	return out
}

// TestSeedDeterminism checks -seed fully determines the run: the same seed
// reproduces the same log and crash report byte for byte, and a different
// seed exercises a different schedule. The log invariants themselves are
// asserted inside run for every seed.
func TestSeedDeterminism(t *testing.T) {
	base := runCaptured(t, 0)
	if base != runCaptured(t, 0) {
		t.Error("seed 0 is not reproducible")
	}
	if base == runCaptured(t, 41) {
		t.Error("seed 41 produced the published-run schedule")
	}
}

// TestManySeedsSurviveCrashes runs the crash-consistency argument across a
// spread of schedules: every seed must leave the log intact.
func TestManySeedsSurviveCrashes(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		runCaptured(t, seed)
	}
}
