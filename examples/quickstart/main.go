// Quickstart: run a recoverable lock on the simulated machine, crash a
// process while it holds the critical section, and read the RMR accounting.
package main

import (
	"fmt"
	"log"

	"rme"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Eight processes, 8-bit words, cache-coherent cost model, the w-ary
	// recoverable FAA tree (Katzan–Morrison style), two super-passages each.
	s, err := rme.NewSession(rme.Config{
		Procs:     8,
		Width:     8,
		Model:     rme.CC,
		Algorithm: rme.MustAlgorithm("watree"),
		Passes:    2,
	})
	if err != nil {
		return err
	}
	defer s.Close()

	// Drive process 0 until it is inside the critical section, then crash
	// it: its local state is wiped, shared memory persists, and its recover
	// protocol must re-acquire (critical-section re-entry).
	m := s.Machine()
	for m.Tag(0) != 2 /* mutex.TagCS */ {
		if _, err := s.StepProc(0); err != nil {
			return err
		}
	}
	if _, err := s.CrashProc(0); err != nil {
		return err
	}
	fmt.Println("crashed p0 inside the critical section; recovering...")

	// Let everyone finish under fair scheduling; the built-in monitors
	// check mutual exclusion and CS re-entry at every step.
	if err := s.RunRoundRobin(); err != nil {
		return err
	}

	fmt.Printf("all %d processes finished %d super-passages\n", 8, 2)
	fmt.Printf("p0 crashed %d time(s) and recovered\n", m.Crashes(0))
	fmt.Printf("worst-case passage cost: %d RMRs (CC), %d RMRs (DSM)\n",
		s.MaxPassageRMRs(rme.CC), s.MaxPassageRMRs(rme.DSM))
	fmt.Printf("theory for w=8, n=8:     Θ(log_w n) = %d tree level(s)\n", 1)

	for _, st := range s.Stats() {
		if st.Proc == 0 {
			kind := "entry"
			if st.Recovery {
				kind = "recovery"
			}
			end := "completed"
			if st.EndedByCrash {
				end = "crashed"
			}
			fmt.Printf("  p0 passage (%s, %s): %d steps, %d CC RMRs\n",
				kind, end, st.Steps, st.RMRsCC)
		}
	}
	return nil
}
