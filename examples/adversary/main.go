// adversary walks through the lower-bound construction of Theorem 1 twice —
// once against a narrow-word tree (where process hiding works and many RMRs
// are forced) and once against a wide-word tree (where fetch-and-add defeats
// hiding, the Katzan–Morrison immunity) — and then prints a Process-Hiding
// Lemma certificate at the paper's exact constants.
package main

import (
	"fmt"
	"log"

	"rme"
	"rme/internal/hiding"
	"rme/internal/memory"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 64
	for _, w := range []rme.Width{4, 64} {
		if err := construction(n, w); err != nil {
			return err
		}
	}
	return hidingCertificate()
}

func construction(n int, w rme.Width) error {
	adv, err := rme.NewAdversary(rme.AdversaryConfig{
		Session: rme.Config{
			Procs: n, Width: w, Model: rme.CC, Algorithm: rme.MustAlgorithm("watree"),
		},
	})
	if err != nil {
		return err
	}
	defer adv.Close()

	rep, err := adv.Run()
	if err != nil {
		return err
	}
	fmt.Printf("=== adversary vs watree, n=%d, w=%d\n", n, int(w))
	for _, r := range rep.Rounds {
		fmt.Printf("  round %2d (%s): %3d active -> %3d  (stepped %d, hidden %d, finished %d, removed %d)\n",
			r.Index, r.Kind, r.ActiveBefore, r.ActiveAfter, r.Stepped, r.HiddenKept, r.Finished, r.Removed)
	}
	fmt.Printf("  forced %d RMRs on a process that never crashed and never entered the CS\n",
		rep.ForcedRMRs())
	fmt.Printf("  theory: min(log_w n, ln n/ln ln n) = %.2f; verified replays: %d; violations: %d\n\n",
		rme.TheoreticalLowerBound(w, n), rep.Replays, len(rep.InvariantViolations))
	return nil
}

func hidingCertificate() error {
	// The paper's constants for a 1-bit register (ℓ = 1, δ = 1): k = 4ℓ
	// parts of ⌊27δℓ⌋ processes — groups of 108δℓ² = 108.
	k, partSize, groupSize := hiding.PaperConfig(1, 1)
	groups := [][]hiding.Proc{make([]hiding.Proc, groupSize)}
	for j := range groups[0] {
		groups[0][j] = hiding.Proc(j)
	}
	apply, err := hiding.RegisterApply(1, hiding.UniformOp(groups, memory.Add(1)))
	if err != nil {
		return err
	}
	cert, err := rme.ConstructHiding(rme.HidingConfig{
		Groups: groups, Y0: 0, ValueBits: 1, Delta: 1, K: k, PartSize: partSize, Apply: apply,
	})
	if err != nil {
		return err
	}
	if err := cert.Verify(); err != nil {
		return err
	}

	g := cert.Groups[0]
	fmt.Printf("=== Process-Hiding Lemma certificate (1-bit register, %d FAA(1) processes)\n", groupSize)
	fmt.Printf("  alpha set V (crash-recover-complete): %v\n", g.V)
	fmt.Printf("  hidden-candidate reservoir (%d processes, all interchangeable): %v...\n",
		len(g.Reservoir), g.Reservoir[:6])
	fmt.Printf("  register value chain: y0=%d -> y1=%d (both executions agree)\n", g.YPrev, g.Y)

	// Ask for a hidden process against a discovered set that contains the
	// first few reservoir candidates: the certificate supplies another.
	d := g.Reservoir[:3]
	hid, err := cert.ForD(d)
	if err != nil {
		return err
	}
	fmt.Printf("  with D=%v discovered, hidden z=%d via B=%v\n", d, hid[0].Z, hid[0].B)
	fmt.Println("  => the two executions (A vs B∪{z}) leave the register identical; nobody can tell z stepped")
	return nil
}
