package check_test

import (
	"bytes"
	"testing"

	"rme/internal/algorithms/rspin"
	"rme/internal/algorithms/yatree"
	"rme/internal/mutex"
	"rme/internal/sim"
)

// walkStates enumerates reachable session states (deduplicated by plain
// StateKey) up to limit, invoking visit with the schedule that reached each
// state and a live session positioned there. The walk is replay-based — a
// fresh session per node — so it stays independent of the explorer machinery
// it is used to validate.
func walkStates(t *testing.T, cfg mutex.Config, crashes, limit int, visit func(sim.Schedule, *mutex.Session)) int {
	t.Helper()
	seen := make(map[sim.Fingerprint]bool)
	recoverable := cfg.Algorithm.Recoverable()
	var rec func(sched sim.Schedule)
	rec = func(sched sim.Schedule) {
		if len(seen) >= limit || t.Failed() {
			return
		}
		s, err := mutex.NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Machine().Apply(sched); err != nil {
			s.Close()
			t.Fatalf("applying %v: %v", sched, err)
		}
		key := s.StateKey(0)
		if seen[key] {
			s.Close()
			return
		}
		seen[key] = true
		visit(sched, s)
		m := s.Machine()
		var branches []sim.Action
		for _, p := range m.PoisedProcs() {
			branches = append(branches, sim.Action{Proc: p})
			if recoverable && crashes > 0 && m.Crashes(p) < crashes {
				branches = append(branches, sim.Action{Proc: p, Crash: true})
			}
		}
		if recoverable && crashes > 0 {
			for p := 0; p < cfg.Procs; p++ {
				if !m.ProcDone(p) && m.Parked(p) && m.Crashes(p) < crashes {
					branches = append(branches, sim.Action{Proc: p, Crash: true})
				}
			}
		}
		s.Close()
		for _, act := range branches {
			rec(append(sched.Clone(), act))
		}
	}
	rec(nil)
	return len(seen)
}

// renameSchedule applies a process permutation to every action (nil = id).
func renameSchedule(sched sim.Schedule, procTo []int) sim.Schedule {
	if procTo == nil {
		return sched
	}
	out := make(sim.Schedule, len(sched))
	for i, act := range sched {
		out[i] = sim.Action{Proc: procTo[act.Proc], Crash: act.Crash}
	}
	return out
}

// TestSymmetryOracle is the ground-truth check for every declared group
// element: for each reachable state s (via schedule σ) and each declared
// permutation π, the π-variant canonical encoding of s must byte-equal the
// plain canonical encoding of the state actually reached by running the
// π-renamed schedule, the safety monitor's CS owner must map through π, and
// the canonical state key must equal the brute-force minimum of the renamed
// runs' plain StateKeys. Declarations are claims; this test is the evidence.
func TestSymmetryOracle(t *testing.T) {
	const seed = 0x5eed
	cases := []struct {
		name    string
		cfg     mutex.Config
		crashes int
		limit   int
	}{
		{"rspin-n2c1", mutex.Config{Procs: 2, Width: 8, Model: sim.CC, Algorithm: rspin.New()}, 1, 300},
		{"rspin-n3c1", mutex.Config{Procs: 3, Width: 8, Model: sim.CC, Algorithm: rspin.New()}, 1, 250},
		{"rspin-n3-dsm", mutex.Config{Procs: 3, Width: 8, Model: sim.DSM, Algorithm: rspin.New()}, 0, 250},
		{"yatree-n2", mutex.Config{Procs: 2, Width: 8, Model: sim.CC, Algorithm: yatree.New()}, 0, 300},
		{"yatree-n3", mutex.Config{Procs: 3, Width: 8, Model: sim.CC, Algorithm: yatree.New()}, 0, 400},
		{"yatree-n4", mutex.Config{Procs: 4, Width: 8, Model: sim.CC, Algorithm: yatree.New()}, 0, 250},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			probe, err := mutex.NewSession(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			order := probe.Machine().NumVariants(probe.Symmetry())
			probe.Close()
			if order < 2 {
				t.Fatalf("expected a declared symmetry group, got order %d", order)
			}
			states := walkStates(t, tc.cfg, tc.crashes, tc.limit, func(sched sim.Schedule, s *mutex.Session) {
				sym := s.Symmetry()
				m := s.Machine()
				canonical, _ := s.CanonicalStateKey(seed)
				var minKey sim.Fingerprint
				for i := 0; i < m.NumVariants(sym); i++ {
					procTo := m.VariantProcMap(sym, i)
					s2, err := mutex.NewSession(tc.cfg)
					if err != nil {
						t.Fatal(err)
					}
					renamed := renameSchedule(sched, procTo)
					if err := s2.Machine().Apply(renamed); err != nil {
						s2.Close()
						t.Fatalf("variant %d: renamed schedule %v not runnable: %v", i, renamed, err)
					}
					enc := m.CanonicalStateVariant(sym, i, nil)
					got := s2.Machine().CanonicalState(nil)
					if !bytes.Equal(enc, got) {
						s2.Close()
						t.Fatalf("variant %d of state after %v: encoding mismatch vs renamed run %v",
							i, sched, renamed)
					}
					wantOwner := s.CSOwner()
					if wantOwner >= 0 && procTo != nil {
						wantOwner = procTo[wantOwner]
					}
					if s2.CSOwner() != wantOwner {
						s2.Close()
						t.Fatalf("variant %d after %v: CS owner %d, want %d", i, sched, s2.CSOwner(), wantOwner)
					}
					key := s2.StateKey(seed)
					if i == 0 || key.Less(minKey) {
						minKey = key
					}
					s2.Close()
				}
				if canonical != minKey {
					t.Fatalf("canonical key %v != brute-force min %v (state after %v)", canonical, minKey, sched)
				}
			})
			if states < 50 {
				t.Fatalf("walk covered only %d states; bounds too tight to mean anything", states)
			}
		})
	}
}
