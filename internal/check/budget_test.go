package check_test

import (
	"reflect"
	"testing"

	"rme/internal/algorithms/rspin"
	"rme/internal/check"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/telemetry"
)

// rspin at n=2 with one crash per process has a heavily skewed root-branch
// tree: the step branches hold most of the state space while the crash
// branches are comparatively small. Under the old even budget slices the hot
// branch truncated at 1/len(branches) of the cap while the global budget
// went largely unspent; redistribution must recover the full exploration
// whenever the global caps cover the whole tree.
func skewedSession(t *testing.T) mutex.Config {
	t.Helper()
	return mutex.Config{Procs: 2, Width: 8, Model: sim.CC, Algorithm: rspin.New()}
}

// TestBudgetRedistributionSkewedTree is the regression test for the
// even-slice starvation bug: with MaxSchedules/MaxStates set to exactly the
// tree's full size — so the global budget is sufficient but any even split
// is not — the search must still complete untruncated.
func TestBudgetRedistributionSkewedTree(t *testing.T) {
	full, err := check.Exhaustive(check.Config{
		Session:        skewedSession(t),
		CrashesPerProc: 1,
		Memo:           true,
		MaxSchedules:   1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated {
		t.Fatalf("reference run truncated at generous caps (complete=%d states=%d)",
			full.Complete, full.StatesVisited)
	}
	if err := full.Err(); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.New()
	got, err := check.Exhaustive(check.Config{
		Session:        skewedSession(t),
		CrashesPerProc: 1,
		Memo:           true,
		MaxSchedules:   full.Complete,
		MaxStates:      full.StatesVisited,
		Telemetry:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Truncated {
		t.Errorf("truncated with the global budget exactly covering the tree (complete=%d/%d states=%d/%d)",
			got.Complete, full.Complete, got.StatesVisited, full.StatesVisited)
	}
	if got.Complete != full.Complete {
		t.Errorf("complete = %d; want %d", got.Complete, full.Complete)
	}

	// The redistribution actually ran (the tree is skewed, so round one's
	// even slices cannot cover it) and the budget gauges grew past the slice.
	flat := reg.Snapshot().Flat()
	if flat["check_budget_rounds"] == 0 {
		t.Error("no redistribution rounds recorded; the tree is not exercising the bug")
	}
	branches := flat["check_branches"]
	slice := (int64(full.Complete) + branches - 1) / branches
	if got := flat["check_branch_schedule_budget"]; got <= slice {
		t.Errorf("check_branch_schedule_budget = %d; want > initial slice %d", got, slice)
	}
}

// TestBudgetRedistributionParallelParity locks the determinism contract:
// redistribution rounds are computed from merged sub-results, so the full
// Result must stay byte-identical at any Parallel value.
func TestBudgetRedistributionParallelParity(t *testing.T) {
	run := func(parallel int) *check.Result {
		t.Helper()
		res, err := check.Exhaustive(check.Config{
			Session:        skewedSession(t),
			CrashesPerProc: 1,
			Memo:           true,
			MaxSchedules:   176, // the full tree's size: tight enough to force redistribution
			MaxStates:      7112,
			Parallel:       parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	four := run(4)
	if !reflect.DeepEqual(one, four) {
		t.Fatalf("results differ between Parallel=1 and 4:\n%+v\nvs\n%+v", one, four)
	}
}

// TestBudgetRedistributionRespectsGlobalCap checks the other side: when the
// global budget genuinely cannot cover the tree, the search still truncates
// and never exceeds the configured caps by more than one in-flight branch
// round.
func TestBudgetRedistributionRespectsGlobalCap(t *testing.T) {
	res, err := check.Exhaustive(check.Config{
		Session:        skewedSession(t),
		CrashesPerProc: 1,
		Memo:           true,
		MaxSchedules:   40, // well under the tree's 176 terminal states
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("undersized budget must still report truncation")
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
}
