package check

// Differential tests: the stateful explorer against the seed DFS
// (ExhaustiveReference). With Memo and POR off the two must agree exactly —
// same traversal, same counts, same messages. With the reductions on, exact
// schedule counts legitimately differ (convergent interleavings collapse),
// but verdicts may not: any algorithm the reference proves safe must come out
// safe, every fixture it catches must stay caught, and reduced-mode
// counterexamples must still replay.

import (
	"reflect"
	"testing"

	"rme/internal/algorithms/clh"
	"rme/internal/algorithms/grlock"
	"rme/internal/algorithms/mcs"
	"rme/internal/algorithms/qword"
	"rme/internal/algorithms/rspin"
	"rme/internal/algorithms/tas"
	"rme/internal/algorithms/ticket"
	"rme/internal/algorithms/tournament"
	"rme/internal/algorithms/watree"
	"rme/internal/algorithms/yatree"
	"rme/internal/faults"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/word"
)

// diffCase is one algorithm configuration both explorers run.
type diffCase struct {
	name    string
	alg     mutex.Algorithm
	n       int
	width   int
	crashes int
	// maxSchedules and maxStates bound the search for configurations whose
	// full schedule tree is too large to enumerate; exact-equality checks are
	// skipped for these (budget slicing differs from the reference's global
	// budget once a cap binds) and only verdict parity is required.
	maxSchedules int
	maxStates    int
}

func (c diffCase) config() Config {
	return Config{
		Session: mutex.Config{
			Procs: c.n, Width: word.Width(c.width), Model: sim.CC, Algorithm: c.alg,
		},
		CrashesPerProc: c.crashes,
		MaxSchedules:   c.maxSchedules,
		MaxStates:      c.maxStates,
	}
}

// diffCases covers every algorithm in the repo at n=2, the tree algorithms
// at n=3, and the known-bad fixtures.
func diffCases() []diffCase {
	return []diffCase{
		{name: "tas-n2", alg: tas.New(), n: 2, width: 8},
		{name: "ticket-n2", alg: ticket.New(), n: 2, width: 8},
		{name: "mcs-n2", alg: mcs.New(), n: 2, width: 8},
		{name: "clh-n2", alg: clh.New(), n: 2, width: 8},
		{name: "tournament-n2", alg: tournament.New(), n: 2, width: 8},
		{name: "qword-n2", alg: qword.New(), n: 2, width: 16},
		{name: "grlock-n2c1", alg: grlock.New(), n: 2, width: 8, crashes: 1, maxSchedules: 10_000, maxStates: 100_000},
		{name: "rspin-n2c1", alg: rspin.New(), n: 2, width: 8, crashes: 1, maxSchedules: 10_000, maxStates: 100_000},
		{name: "yatree-n2c1", alg: yatree.New(), n: 2, width: 8, crashes: 1, maxSchedules: 10_000, maxStates: 100_000},
		{name: "watree-n2c1", alg: watree.New(), n: 2, width: 8, crashes: 1, maxSchedules: 10_000, maxStates: 100_000},
		{name: "ticket-n3", alg: ticket.New(), n: 3, width: 8, maxSchedules: 10_000, maxStates: 100_000},
		{name: "yatree-n3", alg: yatree.New(), n: 3, width: 8, maxSchedules: 10_000, maxStates: 100_000},
		{name: "broken-ticket-n2", alg: faults.NewBrokenTicket(), n: 2, width: 8},
		{name: "wedging-tas-n2", alg: faults.NewWedgingTAS(), n: 2, width: 8},
		{name: "broken-tas-n2c1", alg: faults.BrokenTAS{}, n: 2, width: 8, crashes: 1, maxSchedules: 10_000, maxStates: 100_000},
	}
}

// TestDifferentialAgainstReference runs the seed DFS once per case and holds
// the stateful explorer to it twice over. Plain mode (no reductions) is the
// same search, so every reportable field must match (machine-step accounting
// excepted: spending fewer steps on the same traversal is the point). The
// reduced modes (memo, POR, both) may collapse the search but never change
// its answer, and their counterexamples must replay on a fresh machine.
func TestDifferentialAgainstReference(t *testing.T) {
	for _, c := range diffCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if testing.Short() && c.maxSchedules != 0 {
				t.Skip("budget-capped case: reference enumeration is slow, skipped under -short")
			}
			cfg := c.config()
			ref, err := ExhaustiveReference(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Run("plain", func(t *testing.T) {
				got, err := Exhaustive(cfg)
				if err != nil {
					t.Fatal(err)
				}
				comparePlain(t, c, got, ref)
			})
			t.Run("reduced", func(t *testing.T) {
				compareReduced(t, cfg, ref)
			})
		})
	}
}

// comparePlain checks unreduced-explorer output against the reference.
func comparePlain(t *testing.T, c diffCase, got, ref *Result) {
	t.Helper()
	if c.maxSchedules != 0 && (ref.Truncated || got.Truncated) {
		// Budget slicing makes truncation points differ; only verdict
		// parity is defined here.
		assertVerdictParity(t, got, ref)
		return
	}
	type comparable struct {
		Complete       int
		Truncated      bool
		DepthTruncated int
		Violations     []string
		Deadlocks      []string
	}
	g := comparable{got.Complete, got.Truncated, got.DepthTruncated, got.Violations, got.Deadlocks}
	w := comparable{ref.Complete, ref.Truncated, ref.DepthTruncated, ref.Violations, ref.Deadlocks}
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("plain explorer diverges from reference:\n got %+v\nwant %+v", g, w)
	}
	if !reflect.DeepEqual(got.ViolationSchedules, ref.ViolationSchedules) ||
		!reflect.DeepEqual(got.DeadlockSchedules, ref.DeadlockSchedules) {
		t.Fatal("structured counterexample schedules diverge from reference")
	}
	if got.StatesVisited != 0 || got.StatesPruned != 0 || got.SleepPruned != 0 {
		t.Fatalf("plain mode reported reduction stats: %+v", got)
	}
}

// compareReduced checks every reduction mode's verdicts against the
// reference's. The scale-out mechanisms (symmetry canonicalization, shared
// visited sets, disk spill) are reduction modes like memo and POR: each
// combination must keep the reference's verdict and produce replayable
// counterexamples. Algorithms with no declared symmetry group exercise the
// symmetry modes as exact no-ops, which is itself part of the contract.
func compareReduced(t *testing.T, cfg Config, ref *Result) {
	t.Helper()
	for _, mode := range []struct {
		name string
		set  func(*Config)
	}{
		{"memo", func(c *Config) { c.Memo = true }},
		{"por", func(c *Config) { c.POR = true }},
		{"memo+por", func(c *Config) { c.Memo, c.POR = true, true }},
		{"memo+sym", func(c *Config) { c.Memo, c.Symmetry = true, true }},
		{"memo+por+sym", func(c *Config) { c.Memo, c.POR, c.Symmetry = true, true, true }},
		{"shared", func(c *Config) { c.SharedVisited, c.WaveSize = true, 2 }},
		{"shared+por+sym", func(c *Config) {
			c.SharedVisited, c.WaveSize, c.POR, c.Symmetry = true, 2, true, true
		}},
		{"shared+spill", func(c *Config) {
			c.SharedVisited, c.WaveSize, c.MemBudget = true, 2, 1
		}},
	} {
		cfg := cfg
		mode.set(&cfg)
		got, err := Exhaustive(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		assertVerdictParity(t, got, ref)
		// Reduced-mode counterexamples must replay on a fresh machine.
		if len(got.ViolationSchedules) > 0 {
			checkViolationReplay(t, cfg, got)
		}
		if len(got.DeadlockSchedules) > 0 {
			checkDeadlockReplay(t, cfg, got)
		}
	}
}

// assertVerdictParity requires got and ref to agree on safety and progress:
// both clean, or both flagging the same failure kinds.
func assertVerdictParity(t *testing.T, got, ref *Result) {
	t.Helper()
	if got.Ok() != ref.Ok() {
		t.Fatalf("verdict mismatch: reduced Ok=%v, reference Ok=%v\nreduced: %+v\nreference violations=%v deadlocks=%v",
			got.Ok(), ref.Ok(), got, ref.Violations, ref.Deadlocks)
	}
	if (len(got.Violations) > 0) != (len(ref.Violations) > 0) {
		t.Fatalf("violation detection mismatch: reduced %d, reference %d",
			len(got.Violations), len(ref.Violations))
	}
	if (len(got.Deadlocks) > 0) != (len(ref.Deadlocks) > 0) {
		t.Fatalf("deadlock detection mismatch: reduced %d, reference %d",
			len(got.Deadlocks), len(ref.Deadlocks))
	}
}
