package check_test

// Scale-out tests for the n=4 campaign machinery: symmetry reduction ratios,
// shared-visited-set determinism and budget composition, and the disk-spill
// checkpoint/resume path. Everything here drives the public check API only;
// the soundness of the symmetry declarations themselves is established by
// TestSymmetryOracle, and verdict parity of every reduction mode by the
// differential suite.

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rme/internal/algorithms/rspin"
	"rme/internal/algorithms/watree"
	"rme/internal/algorithms/yatree"
	"rme/internal/check"
	"rme/internal/mutex"
	"rme/internal/sim"
)

func scaleCfg(alg mutex.Algorithm, n, crashes int) check.Config {
	return check.Config{
		Session:        mutex.Config{Procs: n, Width: 8, Model: sim.CC, Algorithm: alg},
		CrashesPerProc: crashes,
		MaxSchedules:   2_000_000,
		MaxStates:      10_000_000,
		Memo:           true,
		POR:            true,
	}
}

func mustExhaustive(t *testing.T, cfg check.Config) *check.Result {
	t.Helper()
	res, err := check.Exhaustive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSymmetryReductionRSpin pins the acceptance number for the full S_3
// group: canonicalizing rspin n=3 state keys must shrink the visited set at
// least 4x (the group order, 6, is the ceiling; sleep sets already break
// some of the symmetry, so the realized ratio sits between). Verdicts and
// truncation must be unaffected.
func TestSymmetryReductionRSpin(t *testing.T) {
	base := mustExhaustive(t, scaleCfg(rspin.New(), 3, 0))
	symCfg := scaleCfg(rspin.New(), 3, 0)
	symCfg.Symmetry = true
	sym := mustExhaustive(t, symCfg)
	if base.Truncated || sym.Truncated {
		t.Fatalf("runs truncated (base=%v sym=%v); budgets too small for a ratio claim",
			base.Truncated, sym.Truncated)
	}
	if base.Ok() != sym.Ok() {
		t.Fatalf("verdict changed under symmetry: base Ok=%v, sym Ok=%v", base.Ok(), sym.Ok())
	}
	if ratio := float64(base.StatesVisited) / float64(sym.StatesVisited); ratio < 4 {
		t.Errorf("rspin n=3 symmetry reduction %.2fx (%d -> %d states); want >= 4x",
			ratio, base.StatesVisited, sym.StatesVisited)
	}
	if sym.MachineSteps >= base.MachineSteps {
		t.Errorf("symmetry did not reduce machine steps: %d -> %d",
			base.MachineSteps, sym.MachineSteps)
	}
}

// TestSymmetryReductionYatree pins the order-2 ceiling case: yatree's n=3
// group is {id, (0 1)}, so the honest claim is ~2x, not more; the acceptance
// bar is 1.8x. The full n=3 tree is ~3.4M states (minutes on the 1-CPU
// measurement box), so the measurement runs only in the env-gated
// certification job alongside the n=4 slice.
func TestSymmetryReductionYatree(t *testing.T) {
	if os.Getenv("RME_CHECK_N4") == "" {
		t.Skip("set RME_CHECK_N4=1 to run the yatree n=3 measurement (full tree, minutes of CPU)")
	}
	base := mustExhaustive(t, scaleCfg(yatree.New(), 3, 0))
	symCfg := scaleCfg(yatree.New(), 3, 0)
	symCfg.Symmetry = true
	sym := mustExhaustive(t, symCfg)
	if base.Truncated || sym.Truncated {
		t.Fatalf("runs truncated (base=%v sym=%v)", base.Truncated, sym.Truncated)
	}
	if base.Ok() != sym.Ok() {
		t.Fatalf("verdict changed under symmetry: base Ok=%v, sym Ok=%v", base.Ok(), sym.Ok())
	}
	if ratio := float64(base.StatesVisited) / float64(sym.StatesVisited); ratio < 1.8 {
		t.Errorf("yatree n=3 symmetry reduction %.2fx (%d -> %d states); want >= 1.8x",
			ratio, base.StatesVisited, sym.StatesVisited)
	}
}

// TestWatreeSymmetryByteIdentity: watree declares no group (its FAA bit
// packing and slot-position handoff are not pid-equivariant), so -symmetry
// must be an exact no-op on it — not "same verdict", the same Result bytes.
func TestWatreeSymmetryByteIdentity(t *testing.T) {
	cfg := scaleCfg(watree.New(), 2, 1)
	cfg.MaxSchedules = 10_000
	cfg.MaxStates = 100_000
	base := mustExhaustive(t, cfg)
	cfg.Symmetry = true
	sym := mustExhaustive(t, cfg)
	if !reflect.DeepEqual(base, sym) {
		t.Fatalf("watree results differ with -symmetry on vs off:\n%+v\nvs\n%+v", base, sym)
	}
}

// TestSharedSetParallelParity locks the wave-determinism contract: wave
// membership, visibility, and seal contents are pure functions of the
// configuration, so the shared-set Result must be byte-identical at any
// Parallel value — with every other reduction stacked on top.
func TestSharedSetParallelParity(t *testing.T) {
	run := func(parallel int) *check.Result {
		cfg := scaleCfg(rspin.New(), 2, 1)
		cfg.Symmetry = true
		cfg.SharedVisited = true
		cfg.WaveSize = 1
		cfg.Parallel = parallel
		return mustExhaustive(t, cfg)
	}
	one := run(1)
	for _, p := range []int{4, 8} {
		if got := run(p); !reflect.DeepEqual(one, got) {
			t.Fatalf("shared-set results differ between Parallel=1 and %d:\n%+v\nvs\n%+v", p, one, got)
		}
	}
}

// TestSharedSetSkewedTreeNoStarvation composes the shared set with the
// budget-redistribution fix on the skewed rspin n2c1 crash tree: with the
// global caps set to exactly the shared-mode tree size, the hot branch must
// not stay truncated while global budget is unspent — at any parallelism.
func TestSharedSetSkewedTreeNoStarvation(t *testing.T) {
	shared := func(parallel, maxSched, maxStates int) *check.Result {
		cfg := check.Config{
			Session:        skewedSession(t),
			CrashesPerProc: 1,
			SharedVisited:  true,
			WaveSize:       1,
			POR:            false, // keep the tree identical to the PR 8 regression shape
			MaxSchedules:   maxSched,
			MaxStates:      maxStates,
			Parallel:       parallel,
		}
		return mustExhaustive(t, cfg)
	}
	full := shared(1, 1_000_000, 10_000_000)
	if full.Truncated {
		t.Fatalf("reference shared run truncated at generous caps: %+v", full)
	}

	// Exact cover: the even wave slices cannot hold the hot branch, so this
	// only reaches the full terminal count if redistribution hands it the
	// siblings' unspent budget. (Truncated may still read true here: a branch
	// whose DFS touches one more node after consuming its exact cap reports
	// conservatively. What redistribution must guarantee is that a truncation
	// claim never coexists with unspent global budget.)
	want := shared(1, full.Complete, full.StatesVisited)
	if want.Complete != full.Complete {
		t.Errorf("hot branch starved: complete = %d; want %d", want.Complete, full.Complete)
	}
	if want.Truncated && want.Complete < full.Complete && want.StatesVisited < full.StatesVisited {
		t.Errorf("truncated while global budget unspent (complete=%d/%d states=%d/%d)",
			want.Complete, full.Complete, want.StatesVisited, full.StatesVisited)
	}
	for _, p := range []int{4, 8} {
		if got := shared(p, full.Complete, full.StatesVisited); !reflect.DeepEqual(want, got) {
			t.Fatalf("skewed shared results differ between Parallel=1 and %d:\n%+v\nvs\n%+v", p, want, got)
		}
	}

	// With any slack at all past the exact cover, the search must come back
	// untruncated — the shared-mode analogue of the PR 8 regression check.
	slack := shared(1, full.Complete+4, full.StatesVisited+1000)
	if slack.Truncated {
		t.Errorf("truncated despite budget slack (complete=%d/%d states=%d/%d)",
			slack.Complete, full.Complete, slack.StatesVisited, full.StatesVisited)
	}
	if slack.Complete != full.Complete {
		t.Errorf("slack run complete = %d; want %d", slack.Complete, full.Complete)
	}
}

// certConfig is the spill/resume test configuration: every reduction on,
// one branch per wave so a MaxWaves cut lands mid-search.
func certConfig(t *testing.T, dir string) check.Config {
	cfg := scaleCfg(rspin.New(), 2, 1)
	cfg.Symmetry = true
	cfg.SharedVisited = true
	cfg.WaveSize = 1
	cfg.SpillDir = dir
	return cfg
}

// TestSpillResumeKillEquality is the kill test: stop a checkpointed run
// mid-flight (MaxWaves), resume it from disk, and require the final Result
// to be byte-identical to an uninterrupted run of the same configuration.
func TestSpillResumeKillEquality(t *testing.T) {
	want := mustExhaustive(t, certConfig(t, t.TempDir()))

	dir := t.TempDir()
	killed := mustExhaustive(t, func() check.Config {
		cfg := certConfig(t, dir)
		cfg.MaxWaves = 2
		return cfg
	}())
	if !killed.Truncated {
		t.Fatalf("MaxWaves-stopped run must report truncation: %+v", killed)
	}
	if killed.Waves != 2 {
		t.Fatalf("stopped run completed %d waves, want 2", killed.Waves)
	}

	resumed := mustExhaustive(t, func() check.Config {
		cfg := certConfig(t, dir)
		cfg.Resume = true
		return cfg
	}())
	if !reflect.DeepEqual(want, resumed) {
		t.Fatalf("resumed Result differs from uninterrupted run:\n%+v\nvs\n%+v", want, resumed)
	}

	// Resuming a finished checkpoint replays the stored sub-results without
	// re-exploring; the Result must still be identical.
	again := mustExhaustive(t, func() check.Config {
		cfg := certConfig(t, dir)
		cfg.Resume = true
		return cfg
	}())
	if !reflect.DeepEqual(want, again) {
		t.Fatalf("re-resumed (done) Result differs:\n%+v\nvs\n%+v", want, again)
	}
}

// TestSpillMemBudgetParity: serving sealed waves from their spill files
// instead of resident maps must not change a single Result byte. MemBudget=1
// forces every sealed wave to disk immediately.
func TestSpillMemBudgetParity(t *testing.T) {
	want := mustExhaustive(t, certConfig(t, t.TempDir()))
	spilled := mustExhaustive(t, func() check.Config {
		cfg := certConfig(t, t.TempDir())
		cfg.MemBudget = 1
		return cfg
	}())
	if !reflect.DeepEqual(want, spilled) {
		t.Fatalf("MemBudget-spilled Result differs from resident run:\n%+v\nvs\n%+v", want, spilled)
	}

	// MemBudget without a SpillDir spills to a private scratch directory.
	scratch := mustExhaustive(t, func() check.Config {
		cfg := scaleCfg(rspin.New(), 2, 1)
		cfg.Symmetry = true
		cfg.SharedVisited = true
		cfg.WaveSize = 1
		cfg.MemBudget = 1
		return cfg
	}())
	if !reflect.DeepEqual(want, scratch) {
		t.Fatalf("scratch-dir spill Result differs:\n%+v\nvs\n%+v", want, scratch)
	}
}

// TestResumeValidation pins the failure modes: Resume demands SharedVisited
// and SpillDir, a checkpoint must exist, and a checkpoint written by a
// different configuration is rejected by digest before any exploration.
func TestResumeValidation(t *testing.T) {
	cfg := scaleCfg(rspin.New(), 2, 1)
	cfg.Resume = true
	if _, err := check.Exhaustive(cfg); err == nil || !strings.Contains(err.Error(), "SharedVisited") {
		t.Fatalf("Resume without SharedVisited: got err %v", err)
	}
	cfg.SharedVisited = true
	if _, err := check.Exhaustive(cfg); err == nil || !strings.Contains(err.Error(), "SpillDir") {
		t.Fatalf("Resume without SpillDir: got err %v", err)
	}
	cfg.SpillDir = t.TempDir()
	if _, err := check.Exhaustive(cfg); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("Resume from empty dir: got err %v", err)
	}

	dir := t.TempDir()
	partial := certConfig(t, dir)
	partial.MaxWaves = 1
	mustExhaustive(t, partial)
	mismatched := certConfig(t, dir)
	mismatched.Resume = true
	mismatched.Seed = 17 // part of the config digest
	if _, err := check.Exhaustive(mismatched); err == nil || !strings.Contains(err.Error(), "configuration") {
		t.Fatalf("Resume with mismatched config: got err %v", err)
	}
}

// TestCanonicalKeyCollisionCensus mirrors the sim fingerprint census at the
// canonical layer: over 10^5 distinct canonical equivalence classes gathered
// from random walks, the canonical key must be an orbit invariant (equal
// orbit representative -> equal key) and must not collide across distinct
// orbits. The orbit representative is the lexicographic minimum, over the
// declared group, of the variant encoding plus the renamed CS owner — a
// pure-bytes ground truth independent of the hash.
func TestCanonicalKeyCollisionCensus(t *testing.T) {
	if testing.Short() {
		t.Skip("collision census is slow")
	}
	const target = 110_000
	const seed = 0xca11
	cfg := mutex.Config{Procs: 4, Width: 8, Model: sim.CC, Algorithm: rspin.New()}
	rng := rand.New(rand.NewSource(9))
	byOrbit := make(map[string]sim.Fingerprint, target)
	byKey := make(map[sim.Fingerprint]string, target)

	s, err := mutex.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sym := s.Symmetry()
	if sym == nil {
		t.Fatal("rspin n=4 must declare a symmetry group")
	}

	orbitRep := func() string {
		m := s.Machine()
		var best []byte
		for i := 0; i < m.NumVariants(sym); i++ {
			enc := m.CanonicalStateVariant(sym, i, nil)
			owner := s.CSOwner()
			if procTo := m.VariantProcMap(sym, i); owner >= 0 && procTo != nil {
				owner = procTo[owner]
			}
			enc = append(enc, byte(owner+1))
			if best == nil || bytes.Compare(enc, best) < 0 {
				best = enc
			}
		}
		return string(best)
	}

	for len(byOrbit) < target {
		if err := s.Reset(); err != nil {
			t.Fatal(err)
		}
		for {
			m := s.Machine()
			poised := m.PoisedProcs()
			if len(poised) == 0 {
				break
			}
			p := poised[rng.Intn(len(poised))]
			if rng.Intn(40) == 0 && m.Crashes(p) < 1 {
				if _, err := s.CrashProc(p); err != nil {
					t.Fatal(err)
				}
			} else if _, err := s.StepProc(p); err != nil {
				t.Fatal(err)
			}
			key, _ := s.CanonicalStateKey(seed)
			rep := orbitRep()
			if prev, ok := byOrbit[rep]; ok {
				if prev != key {
					t.Fatalf("same orbit, different canonical keys: %v vs %v", prev, key)
				}
				continue
			}
			byOrbit[rep] = key
			if other, ok := byKey[key]; ok && other != rep {
				t.Fatalf("canonical key collision %v between distinct orbits", key)
			}
			byKey[key] = rep
			if m.AllDone() {
				break
			}
		}
	}
}

// n4CertConfig is the gated n=4 certification slice: rspin with one crash
// per process, every reduction on, one branch per wave, checkpointed spill
// under a memory budget that forces the big first wave to disk. The full
// n=4 crash tree is far beyond exhaustive reach, so the state cap bounds
// the slice; the certified properties are that the bounded run finishes
// under the memory budget, finds nothing, and reproduces byte-identically
// from a mid-flight checkpoint.
func n4CertConfig(dir string) check.Config {
	cfg := scaleCfg(rspin.New(), 4, 1)
	cfg.Symmetry = true
	cfg.SharedVisited = true
	cfg.WaveSize = 1
	cfg.MaxSchedules = 10_000_000
	cfg.MaxStates = 300_000
	cfg.SpillDir = dir
	cfg.MemBudget = 8 << 20
	return cfg
}

// TestCertifyN4 is the env-gated n=4 certification (RME_CHECK_N4=1; several
// minutes of CPU). Crash-free rspin n=4 is certified in full under the
// symmetry reduction; the crash-budget slice exercises spill and the
// checkpoint/resume byte-identity acceptance.
func TestCertifyN4(t *testing.T) {
	if os.Getenv("RME_CHECK_N4") == "" {
		t.Skip("set RME_CHECK_N4=1 to run the n=4 certification")
	}
	t.Run("crash-free-full", func(t *testing.T) {
		cfg := scaleCfg(rspin.New(), 4, 0)
		cfg.Symmetry = true
		cfg.SharedVisited = true
		cfg.WaveSize = 1
		res := mustExhaustive(t, cfg)
		if res.Truncated {
			t.Fatalf("crash-free n=4 must complete exhaustively: %+v", res)
		}
		if !res.Ok() {
			t.Fatalf("crash-free n=4 found failures: violations=%v deadlocks=%v",
				res.Violations, res.Deadlocks)
		}
		t.Logf("crash-free n=4 certified: %d canonical states, %d schedules, %d machine steps",
			res.StatesVisited, res.Complete, res.MachineSteps)
	})
	t.Run("crash-budget-spill-resume", func(t *testing.T) {
		dir := t.TempDir()
		want := mustExhaustive(t, n4CertConfig(dir))
		if !want.Truncated {
			t.Fatalf("bounded slice unexpectedly completed; raise the cap and the claims: %+v", want)
		}
		if len(want.Violations) > 0 || len(want.Deadlocks) > 0 {
			t.Fatalf("bounded n=4 slice found failures: violations=%v deadlocks=%v",
				want.Violations, want.Deadlocks)
		}
		if want.StatesVisited < 100_000 {
			t.Fatalf("slice visited only %d states; not a meaningful certification", want.StatesVisited)
		}
		fi, err := os.Stat(filepath.Join(dir, "wave0000.run"))
		if err != nil {
			t.Fatalf("first wave did not spill: %v", err)
		}
		t.Logf("bounded n=4 c=1 slice: %d states, %d schedules, spill run %d bytes",
			want.StatesVisited, want.Complete, fi.Size())

		killDir := t.TempDir()
		killed := mustExhaustive(t, func() check.Config {
			cfg := n4CertConfig(killDir)
			cfg.MaxWaves = 1
			return cfg
		}())
		if !killed.Truncated || killed.Waves != 1 {
			t.Fatalf("MaxWaves-stopped run should report 1 truncated wave: %+v", killed)
		}
		resumed := mustExhaustive(t, func() check.Config {
			cfg := n4CertConfig(killDir)
			cfg.Resume = true
			return cfg
		}())
		if !reflect.DeepEqual(want, resumed) {
			t.Fatalf("resumed n=4 Result differs from uninterrupted run:\n%+v\nvs\n%+v", want, resumed)
		}
	})
}
