package check

import (
	"fmt"

	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/telemetry"
)

// fpSeedSalt decorrelates the checker's fingerprint seed from the zero seed
// most callers pass, so visited-set keys are never raw unseeded hashes.
const fpSeedSalt = 0x524d_4543_4845_434b // "RMECHECK"

// maskProcs is the widest process count the uint64 sleep masks cover; POR
// degrades to off beyond it (exhaustive search at that scale is hopeless
// anyway, but the explorer must stay sound if asked).
const maskProcs = 64

// explorer is the stateful DFS for one root branch. It keeps a live session
// positioned at the current search node, stepping forward into each first
// child for free; backtracking restores the node from the deepest fresh
// checkpoint (a trailing session left at a shallower prefix) or, failing
// that, by replaying the prefix from the root — rebuilding one checkpoint en
// route so later siblings backtrack cheaply.
type explorer struct {
	cfg         Config
	res         *Result
	maxComplete int
	maxStates   int
	recoverable bool
	fpSeed      uint64

	// visited maps canonical-state fingerprints to the sleep mask the state
	// was explored under (0 = explored in full). A revisit is pruned only if
	// its own mask covers the stored one; otherwise the state is re-explored
	// under the intersection, which shrinks monotonically, so the search
	// terminates. With Config.Symmetry the keys are canonical over the
	// declared group and the masks are stored in the canonical frame (bit p
	// describes canonical process p, i.e. procTo[p] of the minimizing
	// permutation).
	visited map[sim.Fingerprint]uint64

	// shared, when non-nil, is a read-only view of the visited sets sealed by
	// earlier waves of the shared-set search (see sharedStore). Lookups prune
	// exactly like private hits; this explorer's own discoveries go to
	// visited and are merged by the orchestrator after the wave completes.
	shared *sharedView

	// ancestors and tainted implement partial sealing for budget-cut
	// branches (shared mode only). ancestors is the stack of fingerprints
	// memoized on the current DFS path; tainted snapshots that stack at the
	// first budget cut — exactly the states whose recorded claims the cut
	// left unwitnessed (once a cap fires, no later node memoizes, so later
	// cuts see only a prefix of the same stack). cleanVisited removes them
	// before the delta is sealed for other branches.
	ancestors []sim.Fingerprint
	tainted   map[sim.Fingerprint]struct{}
	budgetCut bool

	// path is the action sequence from the root to the live session's state.
	path sim.Schedule
	live *mutex.Session
	// free pools sessions released by consumed or invalidated checkpoints.
	free []*mutex.Session
	// cps holds trailing checkpoints in strictly increasing depth; every
	// entry's prefix path[:depth] matches the current path (restore drops
	// entries from abandoned subtrees before they could go stale).
	cps []checkpoint

	// tm mirrors res increments into live telemetry series; every handle is
	// a nil-safe no-op when Config.Telemetry is nil.
	tm checkTelemetry
}

// checkTelemetry holds the explorer's live metric handles. The counters
// track their Result counterparts exactly (same increment sites), so the
// final cumulative snapshot agrees with the merged Result field for field.
type checkTelemetry struct {
	visited, pruned, slept    *telemetry.Counter
	sharedPruned              *telemetry.Counter
	complete, depthTrunc      *telemetry.Counter
	machineSteps, replaySteps *telemetry.Counter
	depth                     *telemetry.Gauge
	restoreLen                *telemetry.Histogram
}

// restoreLenBounds buckets restore replay lengths: with SnapshotInterval K a
// fresh checkpoint bounds replays near K, so the tail buckets expose how
// often the explorer fell back to full-prefix replay.
var restoreLenBounds = []int64{1, 4, 16, 64, 256, 1024, 4096}

func newCheckTelemetry(reg *telemetry.Registry) checkTelemetry {
	return checkTelemetry{
		visited:      reg.Counter("check_states_visited"),
		pruned:       reg.Counter("check_states_pruned"),
		slept:        reg.Counter("check_sleep_pruned"),
		sharedPruned: reg.Counter("check_shared_pruned"),
		complete:     reg.Counter("check_schedules_complete"),
		depthTrunc:   reg.Counter("check_depth_truncated"),
		machineSteps: reg.Counter("check_machine_steps"),
		replaySteps:  reg.Counter("check_replay_steps"),
		depth:        reg.Gauge("check_frontier_depth"),
		restoreLen:   reg.Histogram("check_restore_replay_len", restoreLenBounds),
	}
}

type checkpoint struct {
	depth int
	sess  *mutex.Session
}

func newExplorer(cfg Config, maxComplete, maxStates int) *explorer {
	e := &explorer{
		cfg:         cfg,
		res:         &Result{},
		maxComplete: maxComplete,
		maxStates:   maxStates,
		recoverable: cfg.Session.Algorithm.Recoverable(),
		fpSeed:      fpSeedSalt ^ uint64(cfg.Seed),
		tm:          newCheckTelemetry(cfg.Telemetry),
	}
	if cfg.Memo {
		e.visited = make(map[sim.Fingerprint]uint64)
	}
	return e
}

func (e *explorer) close() {
	if e.live != nil {
		e.live.Close()
	}
	for _, s := range e.free {
		s.Close()
	}
	for _, cp := range e.cps {
		cp.sess.Close()
	}
}

// run explores the subtree under one root action and returns the sub-result.
func (e *explorer) run(act sim.Action, sleep uint64) (*Result, error) {
	s, err := e.session()
	if err != nil {
		return e.res, err
	}
	e.live = s
	if err := e.advance(act); err != nil {
		return e.res, err
	}
	return e.res, e.explore(sleep)
}

// session returns a pooled session reset to the root state, or a new one.
func (e *explorer) session() (*mutex.Session, error) {
	if n := len(e.free); n > 0 {
		s := e.free[n-1]
		e.free = e.free[:n-1]
		if err := s.Reset(); err != nil {
			return nil, err
		}
		return s, nil
	}
	return mutex.NewSession(e.cfg.Session)
}

// advance executes act on the live session and extends the path.
func (e *explorer) advance(act sim.Action) error {
	var err error
	if act.Crash {
		_, err = e.live.CrashProc(act.Proc)
	} else {
		_, err = e.live.StepProc(act.Proc)
	}
	if err != nil {
		// Branches are enumerated from enabled actions; failure to take one
		// is an internal error.
		return fmt.Errorf("check: applying %v after %v: %w", act, e.path, err)
	}
	e.res.MachineSteps++
	e.tm.machineSteps.Inc()
	e.path = append(e.path, act)
	return nil
}

// replay applies path[from:to] to s, which must be at state path[:from].
func (e *explorer) replay(s *mutex.Session, from, to int) error {
	for _, act := range e.path[from:to] {
		var err error
		if act.Crash {
			_, err = s.CrashProc(act.Proc)
		} else {
			_, err = s.StepProc(act.Proc)
		}
		if err != nil {
			return fmt.Errorf("check: replaying prefix %v: %w", e.path[:to], err)
		}
		e.res.MachineSteps++
		e.res.ReplaySteps++
	}
	e.tm.machineSteps.Add(int64(to - from))
	e.tm.replaySteps.Add(int64(to - from))
	return nil
}

// restore repositions the live session at the current path (length target),
// abandoning whatever subtree state it holds. Checkpoints deeper than the
// target belong to the abandoned subtree and are recycled first; the deepest
// surviving checkpoint, if any, is consumed and advanced the remaining
// distance. Otherwise the live session replays the full prefix, and a fresh
// checkpoint is rebuilt at the last SnapshotInterval boundary below the
// target so the next backtrack to this neighborhood is cheap again.
func (e *explorer) restore(target int) error {
	if e.tm.restoreLen != nil {
		before := e.res.ReplaySteps
		defer func() { e.tm.restoreLen.Observe(e.res.ReplaySteps - before) }()
	}
	for n := len(e.cps); n > 0 && e.cps[n-1].depth > target; n = len(e.cps) {
		e.free = append(e.free, e.cps[n-1].sess)
		e.cps = e.cps[:n-1]
	}
	if n := len(e.cps); n > 0 {
		cp := e.cps[n-1]
		e.cps = e.cps[:n-1]
		e.free = append(e.free, e.live)
		e.live = cp.sess
		return e.replay(e.live, cp.depth, target)
	}
	if k := e.cfg.SnapshotInterval; k > 0 {
		c := target - target%k
		if c == target {
			c -= k
		}
		if c > 0 {
			cs, err := e.session()
			if err != nil {
				return err
			}
			if err := e.replay(cs, 0, c); err != nil {
				return err
			}
			e.cps = append(e.cps, checkpoint{depth: c, sess: cs})
		}
	}
	if err := e.live.Reset(); err != nil {
		return err
	}
	return e.replay(e.live, 0, target)
}

// explore examines the node the live session is positioned at (the state
// after path), branching over every enabled action not covered by the sleep
// set. Check order matches ExhaustiveReference (budget, violation, terminal,
// deadlock, depth), so with Memo and POR off the two produce identical
// results.
func (e *explorer) explore(sleep uint64) error {
	s := e.live
	if e.res.Complete >= e.maxComplete {
		e.res.Truncated = true
		e.noteBudgetCut()
		return nil
	}
	if v := s.Violations(); len(v) > 0 {
		e.res.Violations = append(e.res.Violations,
			fmt.Sprintf("%s [schedule %s]", v[0], e.path))
		e.res.ViolationSchedules = append(e.res.ViolationSchedules, e.path.Clone())
		return nil
	}
	var fp sim.Fingerprint
	var procTo []int
	if e.cfg.Memo {
		if e.res.StatesVisited >= e.maxStates {
			e.res.Truncated = true
			e.noteBudgetCut()
			return nil
		}
		if e.cfg.Symmetry {
			fp, procTo = s.CanonicalStateKey(e.fpSeed)
		} else {
			fp = s.StateKey(e.fpSeed)
		}
		// Sleep masks are stored and compared in the canonical frame: bit p of
		// a stored mask talks about canonical process p, which is procTo[p] in
		// this concrete state. A hit means the stored exploration covers an
		// isomorphic subtree, so subsumption transports along the isomorphism.
		canon := mapMask(sleep, procTo)
		if stored, ok := e.visited[fp]; ok {
			if stored&^canon == 0 {
				// Everything reachable here was explored under a sleep set no
				// larger than ours.
				e.res.StatesPruned++
				e.tm.pruned.Inc()
				return nil
			}
			canon &= stored
		}
		if e.shared != nil {
			prune, narrowed := e.shared.filter(fp, canon)
			if prune {
				e.res.StatesPruned++
				e.res.SharedPruned++
				e.tm.pruned.Inc()
				e.tm.sharedPruned.Inc()
				return nil
			}
			canon = narrowed
		}
		sleep = unmapMask(canon, procTo)
	}

	m := s.Machine()
	if m.AllDone() {
		e.res.Complete++
		e.tm.complete.Inc()
		e.memoize(fp, 0)
		return nil
	}
	poised := m.PoisedProcs()
	if len(poised) == 0 {
		e.res.Deadlocks = append(e.res.Deadlocks, e.path.String())
		e.res.DeadlockSchedules = append(e.res.DeadlockSchedules, e.path.Clone())
		e.memoize(fp, 0)
		return nil
	}
	depth := len(e.path)
	e.tm.depth.Max(int64(depth))
	if depth >= e.cfg.MaxDepth {
		// Not memoized: the subtree was cut, so a shallower revisit must not
		// be pruned against it.
		e.res.Truncated = true
		e.res.DepthTruncated++
		e.tm.depthTrunc.Inc()
		return nil
	}

	// The reduction turns itself off at states with a multi-cell waiter: a
	// wake makes the waiter observe all watched cells at once, so two steps
	// on distinct watched cells no longer commute.
	porOK := e.cfg.POR && e.cfg.Session.Procs <= maskProcs && !s.HasMultiWait()
	if !porOK {
		sleep = 0
	}
	e.memoize(fp, mapMask(sleep, procTo))
	pushed := e.shared != nil && e.cfg.Memo
	if pushed {
		e.ancestors = append(e.ancestors, fp)
	}

	var foots [maskProcs]mutex.StepFootprint
	var footOK uint64
	if porOK {
		for _, p := range poised {
			if f, ok := s.PendingFootprint(p); ok {
				foots[p] = f
				footOK |= 1 << p
			}
		}
	}

	// Branch set, in ExhaustiveReference order: per poised process its step
	// then its crash, then crash branches for parked processes. Sleeping
	// skips step branches only; crash branches are dependent with everything
	// (they reset process state) and are never reduced.
	branches := make([]sim.Action, 0, 2*len(poised))
	for _, p := range poised {
		if porOK && sleep>>uint(p)&1 == 1 {
			e.res.SleepPruned++
			e.tm.slept.Inc()
		} else {
			branches = append(branches, sim.Action{Proc: p})
		}
		if e.crashBranch(m, p) {
			branches = append(branches, sim.Action{Proc: p, Crash: true})
		}
	}
	if e.recoverable && e.cfg.CrashesPerProc > 0 {
		for p := 0; p < e.cfg.Session.Procs; p++ {
			if m.ProcDone(p) || !m.Parked(p) || m.Crashes(p) >= e.cfg.CrashesPerProc {
				continue
			}
			branches = append(branches, sim.Action{Proc: p, Crash: true})
		}
	}

	var taken uint64
	for i, act := range branches {
		if i > 0 {
			if err := e.restore(depth); err != nil {
				return err
			}
		}
		var childSleep uint64
		if porOK && !act.Crash {
			childSleep = childSleepMask(act.Proc, sleep|taken, &foots, footOK,
				e.cfg.Session.Procs)
		}
		if err := e.advance(act); err != nil {
			return err
		}
		if err := e.explore(childSleep); err != nil {
			return err
		}
		e.path = e.path[:depth]
		if !act.Crash {
			taken |= 1 << uint(act.Proc)
		}
	}
	if pushed {
		e.ancestors = e.ancestors[:len(e.ancestors)-1]
	}
	return nil
}

// noteBudgetCut records, once, the states whose subtrees the budget cut
// leaves incomplete: the memoized ancestors of the cut point. Their claims
// must not be sealed for other branches (the exploration that would witness
// them never finished); everything else in visited remains fully witnessed.
func (e *explorer) noteBudgetCut() {
	if e.budgetCut || e.shared == nil {
		return
	}
	e.budgetCut = true
	e.tainted = make(map[sim.Fingerprint]struct{}, len(e.ancestors))
	for _, fp := range e.ancestors {
		e.tainted[fp] = struct{}{}
	}
}

// cleanVisited strips the tainted entries from the visited set and returns
// it: the sealable subset of this branch's discoveries. For an untruncated
// branch this is the whole set.
func (e *explorer) cleanVisited() map[sim.Fingerprint]uint64 {
	for fp := range e.tainted {
		delete(e.visited, fp)
	}
	return e.visited
}

// memoize records fp as explored under the given sleep mask.
func (e *explorer) memoize(fp sim.Fingerprint, sleep uint64) {
	if !e.cfg.Memo {
		return
	}
	e.visited[fp] = sleep
	e.res.StatesVisited++
	e.tm.visited.Inc()
}

// mapMask transports a sleep mask into the canonical frame of the minimizing
// permutation: concrete process p becomes canonical process procTo[p]. A nil
// procTo (identity minimizer, or symmetry off) is free.
func mapMask(mask uint64, procTo []int) uint64 {
	if procTo == nil || mask == 0 {
		return mask
	}
	var out uint64
	for p := 0; p < len(procTo) && mask>>uint(p) != 0; p++ {
		if mask>>uint(p)&1 == 1 {
			out |= 1 << uint(procTo[p])
		}
	}
	return out
}

// unmapMask is the inverse of mapMask: canonical process procTo[p] becomes
// concrete process p.
func unmapMask(mask uint64, procTo []int) uint64 {
	if procTo == nil || mask == 0 {
		return mask
	}
	var out uint64
	for p, q := range procTo {
		if mask>>uint(q)&1 == 1 {
			out |= 1 << uint(p)
		}
	}
	return out
}

// crashBranch reports whether p gets a crash branch in addition to its step.
func (e *explorer) crashBranch(m *sim.Machine, p int) bool {
	return e.recoverable && e.cfg.CrashesPerProc > 0 && m.Crashes(p) < e.cfg.CrashesPerProc
}

// childSleepMask propagates the sleep set across p's step: a process q
// stays asleep (or newly falls asleep, when its own step branch was already
// taken at this node) iff its pending step commutes with p's.
func childSleepMask(p int, avail uint64, foots *[maskProcs]mutex.StepFootprint, footOK uint64, procs int) uint64 {
	avail &^= 1 << uint(p)
	var mask uint64
	for q := 0; q < procs && avail>>uint(q) != 0; q++ {
		if avail>>uint(q)&1 == 1 && independentSteps(p, q, foots, footOK) {
			mask |= 1 << uint(q)
		}
	}
	return mask
}

// independentSteps reports whether the pending steps of p and q commute:
// both footprints are known and they target different cells or are both
// reads. Anything else — unknown footprints included — is treated as
// dependent, which costs only extra exploration, never soundness.
func independentSteps(p, q int, foots *[maskProcs]mutex.StepFootprint, footOK uint64) bool {
	if footOK>>uint(p)&1 == 0 || footOK>>uint(q)&1 == 0 {
		return false
	}
	fp, fq := foots[p], foots[q]
	return fp.Cell != fq.Cell || (!fp.Write && !fq.Write)
}

// enumerateBranches lists the root node's enabled actions in the canonical
// branch order; Exhaustive fans these out over engine workers.
func enumerateBranches(cfg Config, s *mutex.Session) []sim.Action {
	m := s.Machine()
	poised := m.PoisedProcs()
	recoverable := cfg.Session.Algorithm.Recoverable()
	branches := make([]sim.Action, 0, 2*len(poised))
	for _, p := range poised {
		branches = append(branches, sim.Action{Proc: p})
		if recoverable && cfg.CrashesPerProc > 0 && m.Crashes(p) < cfg.CrashesPerProc {
			branches = append(branches, sim.Action{Proc: p, Crash: true})
		}
	}
	if recoverable && cfg.CrashesPerProc > 0 {
		for p := 0; p < cfg.Session.Procs; p++ {
			if m.ProcDone(p) || !m.Parked(p) || m.Crashes(p) >= cfg.CrashesPerProc {
				continue
			}
			branches = append(branches, sim.Action{Proc: p, Crash: true})
		}
	}
	return branches
}

// rootSleepMasks computes the initial sleep mask each root branch's subtree
// starts with, mirroring the in-node propagation: the i-th step branch
// sleeps every earlier step branch's process whose pending step commutes
// with its own. Crash branches always start awake.
func rootSleepMasks(cfg Config, s *mutex.Session, branches []sim.Action) []uint64 {
	masks := make([]uint64, len(branches))
	if !cfg.POR || cfg.Session.Procs > maskProcs || s.HasMultiWait() {
		return masks
	}
	var foots [maskProcs]mutex.StepFootprint
	var footOK uint64
	for p := 0; p < cfg.Session.Procs; p++ {
		if f, ok := s.PendingFootprint(p); ok {
			foots[p] = f
			footOK |= 1 << uint(p)
		}
	}
	var taken uint64
	for i, act := range branches {
		if act.Crash {
			continue
		}
		masks[i] = childSleepMask(act.Proc, taken, &foots, footOK, cfg.Session.Procs)
		taken |= 1 << uint(act.Proc)
	}
	return masks
}
