package check

import (
	"fmt"
	"math/bits"
	"os"

	"rme/internal/engine"
	"rme/internal/sim"
	"rme/internal/telemetry"
)

// exhaustiveShared is the wave-structured variant of Exhaustive used when
// Config.SharedVisited is set. Root branches run in fixed waves of WaveSize;
// a branch reads the visited sets sealed by strictly earlier waves and writes
// only its private delta, so nothing a branch observes depends on scheduling
// within its own wave. After a wave completes, each branch's clean delta is
// merged and sealed: a budget-truncated branch contributes only the states
// whose subtrees it finished exploring before the cut (see cleanVisited) —
// the claims a cut left unwitnessed would be unsound to share. The final
// Result is therefore a pure function of the configuration: byte-identical at
// any Parallel, and byte-identical across a checkpoint/Resume split.
func exhaustiveShared(cfg Config, branches []sim.Action, sleeps []uint64) (*Result, error) {
	nb := len(branches)
	nWaves := ceilDiv(nb, cfg.WaveSize)

	store, err := newSharedStore(cfg)
	if err != nil {
		return nil, err
	}
	defer store.close()

	subs := make([]*Result, nb)
	// Budgets start at the -1 sentinel ("never assigned"): a wave slices the
	// rolled-forward remainder on its first visit only, so budgets raised by a
	// redistribution round survive the rerun passes below.
	schedBudget := make([]int, nb)
	stateBudget := make([]int, nb)
	for i := range schedBudget {
		schedBudget[i] = -1
		stateBudget[i] = -1
	}

	cfg.Telemetry.Gauge("check_branches").Set(int64(nb))
	cfg.Telemetry.Gauge("check_waves").Set(int64(nWaves))
	cfg.Telemetry.Gauge("check_max_schedules").Set(int64(cfg.MaxSchedules))
	cfg.Telemetry.Gauge("check_max_states").Set(int64(cfg.MaxStates))
	schedGauge := cfg.Telemetry.Gauge("check_branch_schedule_budget")
	stateGauge := cfg.Telemetry.Gauge("check_branch_state_budget")
	branchesDone := cfg.Telemetry.Counter("check_branches_done")
	wavesDoneCounter := cfg.Telemetry.Counter("check_waves_done")
	budgetRounds := cfg.Telemetry.Counter("check_budget_rounds")

	startWave, rounds := 0, 0
	if cfg.Resume {
		man, err := loadManifest(cfg, nb)
		if err != nil {
			return nil, err
		}
		copy(subs, man.Subs)
		copy(schedBudget, man.SchedBudget)
		copy(stateBudget, man.StateBudget)
		startWave = man.WavesDone
		rounds = man.Rounds
		if err := store.loadRuns(man); err != nil {
			return nil, err
		}
		cfg.Telemetry.Gauge("check_resume_waves").Set(int64(startWave))
		if man.Done {
			// The checkpoint covers a finished run (all waves plus budget
			// redistribution): the stored sub-results merge to the final
			// Result with no re-exploration.
			res := &Result{Waves: man.WavesDone}
			for _, sub := range subs {
				res.merge(sub)
			}
			return res, nil
		}
	}

	// waveOf gives the visibility horizon a branch keeps across reruns: a
	// branch may read only waves strictly before its own, whether it runs in
	// its wave or again during budget redistribution.
	waveOf := func(i int) int { return i / cfg.WaveSize }

	runOne := func(i int, delta *map[sim.Fingerprint]uint64) error {
		e := newExplorer(cfg, schedBudget[i], stateBudget[i])
		defer e.close()
		e.shared = &sharedView{store: store, maxGen: waveOf(i)}
		sub, err := e.run(branches[i], sleeps[i])
		subs[i] = sub
		if delta != nil {
			*delta = e.cleanVisited()
		}
		return err
	}

	// runWaves drives waves [from, nWaves) in order: slice budgets on a
	// wave's first-ever visit, run its branches, seal the untruncated deltas,
	// checkpoint. It is called once for the initial pass and again after each
	// budget-redistribution rollback; on repeat visits the (possibly grown)
	// budgets are left alone. Returns true if MaxWaves stopped the pass.
	wavesDone := startWave
	runWaves := func(from int) (bool, error) {
		for w := from; w < nWaves; w++ {
			if cfg.MaxWaves > 0 && w >= cfg.MaxWaves {
				return true, nil
			}
			lo := w * cfg.WaveSize
			hi := lo + cfg.WaveSize
			if hi > nb {
				hi = nb
			}
			if schedBudget[lo] < 0 {
				// First visit: the whole remaining budget rolls forward to
				// this wave and is sliced across the wave's branches only.
				// Shared-mode branch sizes depend on what earlier waves
				// sealed, so reserving budget for later waves (as plain
				// Exhaustive does across its branches) would starve hot early
				// waves on work that later waves will never need to repeat.
				// With WaveSize 1 this is exactly the reference's sequential
				// global budget; wider waves rely on the redistribution
				// rounds below when the slice starves a branch.
				spentSched, spentStates := 0, 0
				for i := 0; i < lo; i++ {
					spentSched += subs[i].Complete
					spentStates += subs[i].StatesVisited
				}
				sliceSched := ceilDiv(maxInt(0, cfg.MaxSchedules-spentSched), hi-lo)
				sliceState := ceilDiv(maxInt(0, cfg.MaxStates-spentStates), hi-lo)
				for i := lo; i < hi; i++ {
					schedBudget[i] = sliceSched
					stateBudget[i] = sliceState
				}
			}
			schedGauge.Set(int64(schedBudget[lo]))
			stateGauge.Set(int64(stateBudget[lo]))

			deltas := make([]map[sim.Fingerprint]uint64, hi-lo)
			err := engine.ForEach(hi-lo, cfg.Parallel, func(k int) error {
				defer branchesDone.Inc()
				return runOne(lo+k, &deltas[k])
			})
			if err != nil {
				return false, err
			}

			if err := store.seal(w, deltas); err != nil {
				return false, err
			}
			wavesDone = w + 1
			wavesDoneCounter.Inc()
			if cfg.SpillDir != "" {
				if err := writeManifest(cfg, nb, wavesDone, rounds, false, subs, schedBudget, stateBudget, store); err != nil {
					return false, err
				}
			}
		}
		return false, nil
	}

	stopped, err := runWaves(startWave)
	if err != nil {
		return nil, err
	}
	if stopped {
		// MaxWaves cut the run before every branch was explored; the merged
		// result covers the completed waves only and is marked truncated. The
		// per-wave checkpoints (if any) let Resume finish the job.
		res := &Result{Waves: wavesDone, Truncated: true}
		for _, sub := range subs {
			if sub != nil {
				res.merge(sub)
			}
		}
		return res, nil
	}

	// Budget redistribution across waves: hand the globally unspent budget to
	// budget-capped branches in deterministic rounds. Unlike plain
	// Exhaustive, a shared-mode rerun changes what later branches observe
	// (a branch that outgrew its cap now seals a delta it previously could
	// not), so each round rolls the run back to the earliest grown wave and
	// replays every wave from there with the raised budgets. That keeps the
	// final pass fully sealed — no terminal is double-counted across branches
	// — and keeps the Result a pure function of the configuration. The round
	// counter is checkpointed so a Resume replays the identical schedule.
	for rounds < maxBudgetRounds {
		totalComplete, totalStates := 0, 0
		for _, sub := range subs {
			totalComplete += sub.Complete
			totalStates += sub.StatesVisited
		}
		var capped []int
		for i, sub := range subs {
			if !sub.Truncated {
				continue
			}
			if sub.Complete >= schedBudget[i] || sub.StatesVisited >= stateBudget[i] {
				capped = append(capped, i)
			}
		}
		if len(capped) == 0 {
			break
		}
		extraSched := maxInt(0, (cfg.MaxSchedules-totalComplete)/len(capped))
		extraStates := maxInt(0, (cfg.MaxStates-totalStates)/len(capped))
		var redo []int
		for _, i := range capped {
			grows := subs[i].Complete >= schedBudget[i] && extraSched > 0
			if subs[i].StatesVisited >= stateBudget[i] && extraStates > 0 {
				grows = true
			}
			if grows {
				redo = append(redo, i)
			}
		}
		if len(redo) == 0 {
			break
		}
		rounds++
		budgetRounds.Inc()
		for _, i := range redo {
			schedBudget[i] += extraSched
			stateBudget[i] += extraStates
		}
		restart := waveOf(redo[0])
		store.truncate(restart)
		wavesDone = restart
		if _, err := runWaves(restart); err != nil {
			return nil, err
		}
	}

	res := &Result{Waves: wavesDone}
	for _, sub := range subs {
		res.merge(sub)
	}
	if cfg.SpillDir != "" {
		if err := writeManifest(cfg, nb, wavesDone, rounds, true, subs, schedBudget, stateBudget, store); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sharedStore holds the sealed visited sets, one generation per wave. A
// generation lives as an in-memory map, a sorted spill-run file, or both;
// MemBudget evicts the oldest resident maps once their run files exist.
// During a wave the sealed generations are strictly read-only, so concurrent
// branch lookups need no locking.
type sharedStore struct {
	dir       string
	ownsDir   bool
	memBudget int64
	waves     []storeWave

	spillRuns, spillEntries, spillBytes *telemetry.Gauge
}

type storeWave struct {
	mem map[sim.Fingerprint]uint64
	run *spillRun
}

// sharedView is an explorer's read window onto the store: generations
// [0, maxGen) — the waves sealed strictly before the explorer's own.
type sharedView struct {
	store  *sharedStore
	maxGen int
}

// filter applies the sealed claims for fp to the current canonical sleep
// mask. Each generation's stored mask is an independently witnessed
// "explored under W" claim, so the generations are consulted one at a time:
// a claim covering the current mask prunes; otherwise it narrows the mask
// for the exploration (and the claims) that follow. Claims are never
// intersected with each other — two witnesses for W1 and W2 do not witness
// W1∩W2.
func (v *sharedView) filter(fp sim.Fingerprint, mask uint64) (prune bool, out uint64) {
	n := v.maxGen
	if n > len(v.store.waves) {
		n = len(v.store.waves)
	}
	for g := 0; g < n; g++ {
		stored, ok := v.store.waves[g].lookup(fp)
		if !ok {
			continue
		}
		if stored&^mask == 0 {
			return true, mask
		}
		mask &= stored
	}
	return false, mask
}

func (w *storeWave) lookup(fp sim.Fingerprint) (uint64, bool) {
	if w.mem != nil {
		v, ok := w.mem[fp]
		return v, ok
	}
	if w.run != nil {
		return w.run.lookup(fp)
	}
	return 0, false
}

func newSharedStore(cfg Config) (*sharedStore, error) {
	st := &sharedStore{
		dir:          cfg.SpillDir,
		memBudget:    cfg.MemBudget,
		spillRuns:    cfg.Telemetry.Gauge("check_spill_runs"),
		spillEntries: cfg.Telemetry.Gauge("check_spill_entries"),
		spillBytes:   cfg.Telemetry.Gauge("check_spill_bytes"),
	}
	if st.dir == "" && st.memBudget > 0 {
		// A memory budget needs somewhere to spill; without a SpillDir the
		// store uses a private scratch directory (no checkpoint, no Resume).
		d, err := os.MkdirTemp("", "rmespill-")
		if err != nil {
			return nil, fmt.Errorf("check: creating scratch spill dir: %w", err)
		}
		st.dir = d
		st.ownsDir = true
	} else if st.dir != "" {
		if err := os.MkdirAll(st.dir, 0o755); err != nil {
			return nil, fmt.Errorf("check: creating spill dir: %w", err)
		}
	}
	return st, nil
}

func (st *sharedStore) close() {
	for i := range st.waves {
		if st.waves[i].run != nil {
			st.waves[i].run.close()
		}
	}
	if st.ownsDir {
		os.RemoveAll(st.dir)
	}
}

// seal merges the given private deltas into generation `wave` and, when a
// spill directory exists, writes the generation's sorted run file. When two
// deltas claim the same state the stronger single claim wins (betterMask);
// min over a total order is merge-order-free, so the sealed generation is
// identical regardless of how the wave's branches were scheduled.
func (st *sharedStore) seal(wave int, deltas []map[sim.Fingerprint]uint64) error {
	for len(st.waves) <= wave {
		st.waves = append(st.waves, storeWave{})
	}
	merged := make(map[sim.Fingerprint]uint64)
	for _, d := range deltas {
		for fp, mask := range d {
			if prev, ok := merged[fp]; ok {
				mask = betterMask(prev, mask)
			}
			merged[fp] = mask
		}
	}
	st.waves[wave].mem = merged
	if st.dir != "" {
		run, err := writeSpillRun(spillRunPath(st.dir, wave), merged)
		if err != nil {
			return err
		}
		if old := st.waves[wave].run; old != nil {
			old.close()
		}
		st.waves[wave].run = run
		st.updateSpillGauges()
	}
	return st.enforceMemBudget()
}

// truncate discards every sealed generation from `wave` on — a budget
// redistribution round is about to replay those waves, and their seals
// reflect the smaller budgets. Run files are removed so a checkpoint taken
// mid-replay never references stale content.
func (st *sharedStore) truncate(wave int) {
	if wave >= len(st.waves) {
		return
	}
	for i := wave; i < len(st.waves); i++ {
		if st.waves[i].run != nil {
			st.waves[i].run.close()
			os.Remove(spillRunPath(st.dir, i))
		}
	}
	st.waves = st.waves[:wave]
	st.updateSpillGauges()
}

// loadRuns attaches the checkpointed run files for the manifest's sealed
// waves. Resumed generations are served from disk (their maps are not
// rebuilt); lookups return the same masks either way, so the Result is
// unaffected.
func (st *sharedStore) loadRuns(man *spillManifest) error {
	for len(st.waves) < man.WavesDone {
		st.waves = append(st.waves, storeWave{})
	}
	for _, rm := range man.Runs {
		if rm.Wave < 0 || rm.Wave >= man.WavesDone {
			return fmt.Errorf("check: manifest run for wave %d out of range", rm.Wave)
		}
		run, err := openSpillRun(spillRunPath(st.dir, rm.Wave))
		if err != nil {
			return err
		}
		if run.count != rm.Entries {
			run.close()
			return fmt.Errorf("check: spill run for wave %d has %d entries, manifest says %d",
				rm.Wave, run.count, rm.Entries)
		}
		st.waves[rm.Wave].run = run
	}
	for w := 0; w < man.WavesDone; w++ {
		if st.waves[w].run == nil {
			return fmt.Errorf("check: manifest is missing the run for sealed wave %d", w)
		}
	}
	st.updateSpillGauges()
	return nil
}

// enforceMemBudget drops the oldest resident maps whose run files exist
// until the estimated resident size fits the budget.
func (st *sharedStore) enforceMemBudget() error {
	if st.memBudget <= 0 {
		return nil
	}
	const bytesPerEntry = 48 // fingerprint + mask + map overhead, estimated
	resident := func() int64 {
		var total int64
		for i := range st.waves {
			if st.waves[i].mem != nil {
				total += int64(len(st.waves[i].mem)) * bytesPerEntry
			}
		}
		return total
	}
	for i := range st.waves {
		if resident() <= st.memBudget {
			break
		}
		if st.waves[i].mem != nil && st.waves[i].run != nil {
			st.waves[i].mem = nil
		}
	}
	return nil
}

func (st *sharedStore) updateSpillGauges() {
	var runs, entries, bytes int64
	for i := range st.waves {
		if r := st.waves[i].run; r != nil {
			runs++
			entries += r.count
			bytes += r.sizeBytes()
		}
	}
	st.spillRuns.Set(runs)
	st.spillEntries.Set(entries)
	st.spillBytes.Set(bytes)
}

// betterMask picks the stronger of two independently witnessed sleep-mask
// claims for one state: fewer set bits prunes more (`stored ⊆ current` is
// easier the smaller stored is), and the numeric tie-break keeps the choice
// a min over a total order.
func betterMask(a, b uint64) uint64 {
	ca, cb := bits.OnesCount64(a), bits.OnesCount64(b)
	if ca != cb {
		if ca < cb {
			return a
		}
		return b
	}
	if a < b {
		return a
	}
	return b
}
