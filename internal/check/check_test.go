package check_test

import (
	"testing"

	"rme/internal/algorithms/rspin"
	"rme/internal/algorithms/tas"
	"rme/internal/algorithms/ticket"
	"rme/internal/algorithms/watree"
	"rme/internal/check"
	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/word"
)

func TestExhaustiveTASTwoProcs(t *testing.T) {
	res, err := check.Exhaustive(check.Config{
		Session: mutex.Config{Procs: 2, Width: 8, Model: sim.CC, Algorithm: tas.New()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Error("2-process TAS should be exhaustively coverable")
	}
	if res.Complete < 2 {
		t.Errorf("explored only %d schedules", res.Complete)
	}
}

func TestExhaustiveTicketThreeProcs(t *testing.T) {
	res, err := check.Exhaustive(check.Config{
		Session:      mutex.Config{Procs: 3, Width: 8, Model: sim.CC, Algorithm: ticket.New()},
		MaxSchedules: 30_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Complete == 0 {
		t.Error("no complete schedules explored")
	}
}

func TestExhaustiveRSpinWithCrashes(t *testing.T) {
	// Two processes, branching over every crash point (one crash each):
	// full coverage of the recoverable CAS lock's crash windows under every
	// interleaving.
	res, err := check.Exhaustive(check.Config{
		Session:        mutex.Config{Procs: 2, Width: 8, Model: sim.CC, Algorithm: rspin.New()},
		CrashesPerProc: 1,
		MaxSchedules:   100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Complete < 100 {
		t.Errorf("crash branching explored only %d schedules", res.Complete)
	}
}

func TestExhaustiveWATreeTwoProcsWithCrashes(t *testing.T) {
	res, err := check.Exhaustive(check.Config{
		Session:        mutex.Config{Procs: 2, Width: 4, Model: sim.CC, Algorithm: watree.New()},
		CrashesPerProc: 1,
		MaxSchedules:   40_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Complete == 0 {
		t.Error("no complete schedules")
	}
}

// brokenLock violates mutual exclusion; the checker must find it.
type brokenLock struct{}

func (brokenLock) Name() string      { return "broken" }
func (brokenLock) Recoverable() bool { return false }
func (brokenLock) Make(mem memory.Allocator, n int) (mutex.Instance, error) {
	return brokenInstance{c: mem.NewCell("c", memory.Shared, 0)}, nil
}

type brokenInstance struct{ c memory.Cell }

func (in brokenInstance) Bind(env memory.Env) mutex.Handle {
	return &brokenHandle{env: env, c: in.c}
}

type brokenHandle struct {
	mutex.Unrecoverable

	env memory.Env
	c   memory.Cell
}

func (h *brokenHandle) Lock()   { h.env.Read(h.c) }
func (h *brokenHandle) Unlock() { h.env.Read(h.c) }

// wedgingLock deadlocks whenever both processes pass the first gate.
type wedgingLock struct{}

func (wedgingLock) Name() string      { return "wedging" }
func (wedgingLock) Recoverable() bool { return false }
func (wedgingLock) Make(mem memory.Allocator, n int) (mutex.Instance, error) {
	return wedgingInstance{c: mem.NewCell("gate", memory.Shared, 0)}, nil
}

type wedgingInstance struct{ c memory.Cell }

func (in wedgingInstance) Bind(env memory.Env) mutex.Handle {
	return &wedgingHandle{env: env, c: in.c}
}

type wedgingHandle struct {
	mutex.Unrecoverable

	env memory.Env
	c   memory.Cell
}

func (h *wedgingHandle) Lock() {
	// Everyone increments, then waits for the count to drop to exactly 1 —
	// which never happens once two have incremented.
	h.env.Add(h.c, 1)
	h.env.SpinUntil(h.c, func(v word.Word) bool { return v == 1 })
}
func (h *wedgingHandle) Unlock() { h.env.Add(h.c, ^word.Word(0)) }

func TestExhaustiveFindsViolation(t *testing.T) {
	res, err := check.Exhaustive(check.Config{
		Session: mutex.Config{Procs: 2, Width: 8, Model: sim.CC, Algorithm: brokenLock{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("broken lock not caught")
	}
	if res.Err() == nil {
		t.Fatal("Err() should be non-nil")
	}
}

func TestExhaustiveFindsDeadlock(t *testing.T) {
	res, err := check.Exhaustive(check.Config{
		Session: mutex.Config{Procs: 2, Width: 8, Model: sim.CC, Algorithm: wedgingLock{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deadlocks) == 0 {
		t.Fatal("deadlock not caught")
	}
}

func TestStress(t *testing.T) {
	res, err := check.Stress(check.Config{
		Session:        mutex.Config{Procs: 4, Width: 8, Model: sim.CC, Algorithm: rspin.New(), Passes: 2},
		CrashesPerProc: 2,
	}, 50, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Complete != 50 {
		t.Errorf("complete = %d, want 50", res.Complete)
	}
}

func TestStressCatchesBrokenLock(t *testing.T) {
	res, err := check.Stress(check.Config{
		Session: mutex.Config{Procs: 3, Width: 8, Model: sim.CC, Algorithm: brokenLock{}},
	}, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok() {
		t.Fatal("stress failed to catch the broken lock")
	}
}

func TestTruncationReported(t *testing.T) {
	res, err := check.Exhaustive(check.Config{
		Session:      mutex.Config{Procs: 3, Width: 8, Model: sim.CC, Algorithm: ticket.New()},
		MaxSchedules: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("tiny cap should truncate")
	}
}
