package check

import (
	"fmt"

	"rme/internal/engine"
	"rme/internal/mutex"
	"rme/internal/sim"
)

// ExhaustiveReference is the original stateless bounded-exhaustive search:
// a DFS over schedule prefixes that rebuilds the machine for every node by
// replaying its full prefix on a single recycled session. It ignores Memo,
// POR, SnapshotInterval, MaxStates, and Parallel.
//
// It is kept as the oracle for the stateful explorer: its branch enumeration
// defines the canonical search order, the differential tests pin Exhaustive
// against its verdicts, and the per-node O(depth) replay is the cost baseline
// the incremental explorer's MachineSteps are benchmarked against.
func ExhaustiveReference(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Session.Validate(); err != nil {
		return nil, err
	}
	e := &refExplorer{cfg: cfg, res: &Result{}, worker: engine.NewWorker()}
	defer e.worker.Close()
	if err := e.explore(nil); err != nil {
		return nil, err
	}
	return e.res, nil
}

type refExplorer struct {
	cfg    Config
	res    *Result
	worker *engine.Worker
}

// explore examines the execution reached by prefix, branching over every
// enabled action.
func (e *refExplorer) explore(prefix sim.Schedule) error {
	if e.res.Complete >= e.cfg.MaxSchedules {
		e.res.Truncated = true
		return nil
	}

	s, err := e.worker.Session(e.cfg.Session)
	if err != nil {
		return err
	}
	release := func() { e.worker.Release(s) }
	if err := refApplyPrefix(s, prefix, e.res); err != nil {
		release()
		// The prefix was validated when it was constructed; failure here is
		// an internal error.
		return fmt.Errorf("check: replaying prefix %v: %w", prefix, err)
	}
	if v := s.Violations(); len(v) > 0 {
		e.res.Violations = append(e.res.Violations,
			fmt.Sprintf("%s [schedule %s]", v[0], prefix))
		e.res.ViolationSchedules = append(e.res.ViolationSchedules, prefix.Clone())
		release()
		return nil
	}

	m := s.Machine()
	if m.AllDone() {
		e.res.Complete++
		release()
		return nil
	}
	poised := m.PoisedProcs()
	if len(poised) == 0 {
		e.res.Deadlocks = append(e.res.Deadlocks, prefix.String())
		e.res.DeadlockSchedules = append(e.res.DeadlockSchedules, prefix.Clone())
		release()
		return nil
	}
	if len(prefix) >= e.cfg.MaxDepth {
		e.res.Truncated = true
		e.res.DepthTruncated++
		release()
		return nil
	}

	// Snapshot the branch set before recursing: child explorations recycle
	// this worker's machine, so m is invalid once the first child runs.
	recoverable := e.cfg.Session.Algorithm.Recoverable()
	branches := make([]sim.Action, 0, 2*len(poised))
	for _, p := range poised {
		branches = append(branches, sim.Action{Proc: p})
		if recoverable && e.cfg.CrashesPerProc > 0 && m.Crashes(p) < e.cfg.CrashesPerProc {
			branches = append(branches, sim.Action{Proc: p, Crash: true})
		}
	}
	// Crash branching for parked processes (they have no step branch but
	// can still crash).
	if recoverable && e.cfg.CrashesPerProc > 0 {
		for p := 0; p < e.cfg.Session.Procs; p++ {
			if m.ProcDone(p) || !m.Parked(p) || m.Crashes(p) >= e.cfg.CrashesPerProc {
				continue
			}
			branches = append(branches, sim.Action{Proc: p, Crash: true})
		}
	}
	release()

	for _, act := range branches {
		next := append(prefix.Clone(), act)
		if err := e.explore(next); err != nil {
			return err
		}
	}
	return nil
}

func refApplyPrefix(s *mutex.Session, prefix sim.Schedule, res *Result) error {
	for _, act := range prefix {
		var err error
		if act.Crash {
			_, err = s.CrashProc(act.Proc)
		} else {
			_, err = s.StepProc(act.Proc)
		}
		if err != nil {
			return err
		}
		res.MachineSteps++
		res.ReplaySteps++
	}
	return nil
}
