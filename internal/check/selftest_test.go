package check

// Checker self-tests: mutation testing of the checker itself. Each known-bad
// fixture in internal/faults must trip the matching verdict path in both the
// exhaustive explorer and the stress runner, and every reported
// counterexample must replay byte-identically on a fresh machine. A checker
// change that silently stops detecting violations fails here, not in the
// field.

import (
	"strings"
	"testing"

	"rme/internal/faults"
	"rme/internal/mutex"
	"rme/internal/sim"
)

// replaySchedule applies sched to a fresh session of cfg and returns it.
func replaySchedule(t *testing.T, cfg Config, sched sim.Schedule) *mutex.Session {
	t.Helper()
	scfg := cfg.withDefaults().Session
	s, err := mutex.NewSession(scfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	for i, act := range sched {
		if act.Crash {
			_, err = s.CrashProc(act.Proc)
		} else {
			_, err = s.StepProc(act.Proc)
		}
		if err != nil {
			t.Fatalf("replaying action %d of %s: %v", i, sched, err)
		}
	}
	// Byte-identical replay: the machine's own record of what ran must match
	// the counterexample exactly.
	if got := s.Machine().Schedule().String(); got != sched.String() {
		t.Fatalf("replayed schedule %q, want %q", got, sched)
	}
	return s
}

// checkViolationReplay verifies that r carries at least one violation with a
// structured schedule that reproduces a monitor violation when replayed.
func checkViolationReplay(t *testing.T, cfg Config, r *Result) {
	t.Helper()
	if len(r.Violations) == 0 || len(r.ViolationSchedules) == 0 {
		t.Fatalf("no violation reported: %+v", r)
	}
	if len(r.Violations) != len(r.ViolationSchedules) {
		t.Fatalf("%d violation messages but %d schedules", len(r.Violations), len(r.ViolationSchedules))
	}
	s := replaySchedule(t, cfg, r.ViolationSchedules[0])
	if v := s.Violations(); len(v) == 0 {
		t.Fatalf("schedule %s does not reproduce a violation", r.ViolationSchedules[0])
	}
}

// checkDeadlockReplay verifies r's first deadlock schedule wedges a fresh
// machine: no process poised, not all done.
func checkDeadlockReplay(t *testing.T, cfg Config, r *Result) {
	t.Helper()
	if len(r.Deadlocks) == 0 || len(r.DeadlockSchedules) == 0 {
		t.Fatalf("no deadlock reported: %+v", r)
	}
	if len(r.Deadlocks) != len(r.DeadlockSchedules) {
		t.Fatalf("%d deadlock messages but %d schedules", len(r.Deadlocks), len(r.DeadlockSchedules))
	}
	s := replaySchedule(t, cfg, r.DeadlockSchedules[0])
	if m := s.Machine(); !m.Stuck() {
		t.Fatalf("schedule %s does not wedge the machine", r.DeadlockSchedules[0])
	}
}

func brokenTicketConfig() Config {
	return Config{
		Session: mutex.Config{Procs: 2, Width: 8, Model: sim.CC, Algorithm: faults.NewBrokenTicket()},
		Memo:    true,
		POR:     true,
	}
}

func wedgingConfig() Config {
	return Config{
		Session: mutex.Config{Procs: 2, Width: 8, Model: sim.CC, Algorithm: faults.NewWedgingTAS()},
		Memo:    true,
		POR:     true,
	}
}

func brokenTASConfig() Config {
	return Config{
		Session:        mutex.Config{Procs: 2, Width: 8, Model: sim.CC, Algorithm: faults.BrokenTAS{}},
		CrashesPerProc: 1,
		Memo:           true,
		POR:            true,
	}
}

func TestExhaustiveFlagsBrokenTicket(t *testing.T) {
	cfg := brokenTicketConfig()
	r, err := Exhaustive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ok() {
		t.Fatal("exhaustive search missed the broken ticket lock")
	}
	checkViolationReplay(t, cfg, r)
	if !strings.Contains(r.Violations[0], "[schedule ") {
		t.Fatalf("violation message lacks schedule: %q", r.Violations[0])
	}
}

func TestExhaustiveFlagsWedgingTAS(t *testing.T) {
	cfg := wedgingConfig()
	r, err := Exhaustive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Deadlocks) == 0 {
		t.Fatal("exhaustive search missed the wedging TAS deadlock")
	}
	if len(r.Violations) != 0 {
		t.Fatalf("wedging TAS violates nothing, got %v", r.Violations)
	}
	checkDeadlockReplay(t, cfg, r)
}

func TestExhaustiveFlagsBrokenTASUnderCrashes(t *testing.T) {
	cfg := brokenTASConfig()
	r, err := Exhaustive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ok() {
		t.Fatal("exhaustive search missed the crash-unsafe TAS")
	}
	if len(r.ViolationSchedules) > 0 {
		checkViolationReplay(t, cfg, r)
	} else {
		checkDeadlockReplay(t, cfg, r)
	}
}

func TestStressFlagsBrokenTicket(t *testing.T) {
	cfg := brokenTicketConfig()
	r, err := Stress(cfg, 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Violations) == 0 {
		t.Fatal("stress missed the broken ticket lock")
	}
	checkViolationReplay(t, cfg, r)
}

func TestStressFlagsWedgingTAS(t *testing.T) {
	cfg := wedgingConfig()
	r, err := Stress(cfg, 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Deadlocks) == 0 {
		t.Fatal("stress missed the wedging TAS deadlock")
	}
	checkDeadlockReplay(t, cfg, r)
}

func TestStressFlagsBrokenTASUnderCrashes(t *testing.T) {
	cfg := brokenTASConfig()
	r, err := Stress(cfg, 500, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ok() {
		t.Fatal("stress with crash injection missed the crash-unsafe TAS")
	}
	if len(r.ViolationSchedules) > 0 {
		checkViolationReplay(t, cfg, r)
	} else {
		checkDeadlockReplay(t, cfg, r)
	}
}
