package check

// Tests for the stateful explorer's own guarantees: depth-truncation
// accounting, the machine-step economy of checkpoint/restore + memoization,
// determinism across -parallel and snapshot-interval settings, and the
// env-gated n=3 exhaustive runs.

import (
	"os"
	"reflect"
	"testing"

	"rme/internal/algorithms/ticket"
	"rme/internal/algorithms/watree"
	"rme/internal/algorithms/yatree"
	"rme/internal/mutex"
	"rme/internal/sim"
)

func yatreeCrashConfig() Config {
	return Config{
		Session: mutex.Config{
			Procs: 2, Width: 8, Model: sim.CC, Algorithm: yatree.New(),
		},
		CrashesPerProc: 1,
		MaxSchedules:   10_000,
	}
}

// TestDepthTruncationCounted is the regression for the seed explorer's silent
// drop of depth-limited prefixes: they neither counted as complete schedules
// nor set the truncation flag, so a too-small MaxDepth looked like a clean
// exhaustive pass. Now every such prefix lands in DepthTruncated and flips
// Truncated, in both the reference and the stateful explorer, and in every
// reduction mode.
func TestDepthTruncationCounted(t *testing.T) {
	cfg := Config{
		Session: mutex.Config{
			Procs: 2, Width: 8, Model: sim.CC, Algorithm: ticket.New(),
		},
		MaxDepth: 5, // below the ~9 steps two ticket passages need
	}
	ref, err := ExhaustiveReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ref.DepthTruncated == 0 {
		t.Fatal("reference reported no depth-truncated prefixes at MaxDepth=5")
	}
	if !ref.Truncated {
		t.Fatal("a depth-capped search is incomplete and must report Truncated")
	}
	if ref.Complete != 0 {
		t.Fatalf("no ticket schedule finishes in 5 steps, got Complete=%d", ref.Complete)
	}
	for _, mode := range []struct {
		name      string
		memo, por bool
	}{
		{"plain", false, false},
		{"memo", true, false},
		{"por", false, true},
		{"memo+por", true, true},
	} {
		cfg := cfg
		cfg.Memo, cfg.POR = mode.memo, mode.por
		got, err := Exhaustive(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if got.DepthTruncated == 0 {
			t.Fatalf("%s: depth-truncated prefixes not counted", mode.name)
		}
		if !got.Truncated || got.Complete != 0 {
			t.Fatalf("%s: want depth truncation flagged, got %+v", mode.name, got)
		}
		if mode.name == "plain" && got.DepthTruncated != ref.DepthTruncated {
			t.Fatalf("plain DepthTruncated=%d, reference %d", got.DepthTruncated, ref.DepthTruncated)
		}
	}
}

// TestMachineStepEconomy locks in the point of the rebuild: on a crashy
// configuration the memoized + POR-reduced search must cost at least 5x fewer
// machine steps than the seed DFS exploring the same configuration. (The
// measured gap on this config is orders of magnitude; 5x is the floor the
// issue demands.)
func TestMachineStepEconomy(t *testing.T) {
	if testing.Short() {
		t.Skip("reference enumeration is slow, skipped under -short")
	}
	cfg := yatreeCrashConfig()
	ref, err := ExhaustiveReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Memo, cfg.POR = true, true
	got, err := Exhaustive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Truncated {
		t.Fatalf("reduced search should finish the whole space: %+v", got)
	}
	if ref.MachineSteps < 5*got.MachineSteps {
		t.Fatalf("machine-step economy below 5x: reference %d, stateful %d",
			ref.MachineSteps, got.MachineSteps)
	}
	t.Logf("machine steps: reference %d, stateful %d (%.0fx)",
		ref.MachineSteps, got.MachineSteps,
		float64(ref.MachineSteps)/float64(got.MachineSteps))
}

// TestResultStableAcrossParallelism: the merged Result must be deep-equal at
// any Parallel value — branch budgets, visited sets, and merge order are all
// per-root-branch, so worker scheduling cannot leak into the report.
func TestResultStableAcrossParallelism(t *testing.T) {
	base := yatreeCrashConfig()
	base.Memo, base.POR = true, true
	var want *Result
	for _, par := range []int{1, 2, 8} {
		cfg := base
		cfg.Parallel = par
		got, err := Exhaustive(cfg)
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("result differs at parallel=%d:\n got %+v\nwant %+v", par, got, want)
		}
	}
}

// TestResultStableAcrossSnapshotInterval: the checkpoint stride is a replay
// cost knob, never a search-semantics knob. Everything except the machine-step
// accounting must be identical whether checkpoints are dense, sparse, or off.
func TestResultStableAcrossSnapshotInterval(t *testing.T) {
	base := yatreeCrashConfig()
	base.Memo, base.POR = true, true
	var want *Result
	for _, k := range []int{4, 32, -1} {
		cfg := base
		cfg.SnapshotInterval = k
		got, err := Exhaustive(cfg)
		if err != nil {
			t.Fatalf("snapshot=%d: %v", k, err)
		}
		norm := *got
		norm.MachineSteps, norm.ReplaySteps = 0, 0
		if want == nil {
			want = &norm
			continue
		}
		if !reflect.DeepEqual(&norm, want) {
			t.Fatalf("result differs at snapshot=%d:\n got %+v\nwant %+v", k, &norm, want)
		}
	}
}

// TestExhaustiveN3 is the gated deep run: exhaustive certification of the
// tree algorithms at n=3 under memoization + POR, completing without
// truncation. watree carries no crash budget at n=3 (its crashy n=3 space
// exceeds tens of millions of duplicated states; EXPERIMENTS.md tracks the
// measured lower bound), yatree keeps one crash per process. Enable with
// RME_CHECK_N3=1; CI runs it in a dedicated gated step.
func TestExhaustiveN3(t *testing.T) {
	if os.Getenv("RME_CHECK_N3") == "" {
		t.Skip("set RME_CHECK_N3=1 to run the n=3 exhaustive certification")
	}
	cases := []struct {
		name    string
		alg     mutex.Algorithm
		crashes int
	}{
		{"watree-n3", watree.New(), 0},
		{"yatree-n3c1", yatree.New(), 1},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfg := Config{
				Session: mutex.Config{
					Procs: 3, Width: 8, Model: sim.CC, Algorithm: c.alg,
				},
				CrashesPerProc: c.crashes,
				MaxSchedules:   10_000_000,
				MaxStates:      32_000_000,
				Memo:           true,
				POR:            true,
			}
			res, err := Exhaustive(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Ok() {
				t.Fatalf("unexpected failure: %v", res.Err())
			}
			if res.Truncated || res.Complete == 0 {
				t.Fatalf("search did not complete: %+v", res)
			}
			t.Logf("%s: %d states, %d complete schedules, %d machine steps",
				c.name, res.StatesVisited, res.Complete, res.MachineSteps)
		})
	}
}

// BenchmarkExhaustive contrasts the seed DFS with the stateful explorer on
// the same configuration; b.ReportMetric surfaces machine steps per run so
// the economy is visible next to wall time.
func BenchmarkExhaustive(b *testing.B) {
	modes := []struct {
		name string
		run  func(Config) (*Result, error)
		memo bool
		por  bool
	}{
		{"reference", ExhaustiveReference, false, false},
		{"stateful-plain", Exhaustive, false, false},
		{"stateful-memo-por", Exhaustive, true, true},
	}
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			cfg := yatreeCrashConfig()
			cfg.MaxSchedules = 2_000
			cfg.Memo, cfg.POR = m.memo, m.por
			var steps int64
			for i := 0; i < b.N; i++ {
				res, err := m.run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				steps = res.MachineSteps
			}
			b.ReportMetric(float64(steps), "machine-steps/run")
		})
	}
}
