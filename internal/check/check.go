// Package check verifies mutual exclusion algorithms by stateful
// bounded-exhaustive interleaving exploration and randomized stress, on top
// of the per-step safety monitors of package mutex.
//
// The exhaustive explorer enumerates scheduler decisions (which poised
// process steps next; optionally, whether it crashes instead) by depth-first
// search. Unlike a stateless schedule-prefix search, the explorer is
// incremental: it steps a live machine forward along the current branch and
// restores on backtrack from a checkpoint stack of trailing sessions,
// replaying prefixes only across snapshot gaps. With Memo it fingerprints
// every canonical state (sim.Machine.Fingerprint mixed with the monitor's CS
// ownership) and prunes interleavings that converge on a visited state; with
// POR it additionally skips sleep-set branches whose effect is covered by a
// commuting sibling explored earlier. The search is exact up to its caps: if
// it finishes without truncation, every reachable canonical state of the
// configuration was explored.
package check

import (
	"errors"
	"fmt"

	"rme/internal/engine"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/telemetry"
)

// Config parameterizes a check run.
type Config struct {
	// Session is the algorithm/machine configuration (Passes defaults to 1).
	Session mutex.Config
	// MaxSchedules caps the number of complete schedules explored
	// (default 50000). The budget is split evenly over the root branch set,
	// so results are byte-identical at any Parallel value.
	MaxSchedules int
	// MaxDepth caps the schedule length (default 400).
	MaxDepth int
	// CrashesPerProc > 0 additionally branches on crash steps (recoverable
	// algorithms only), up to the given number of crashes per process.
	CrashesPerProc int
	// Parallel is the worker count for Stress and for the exhaustive
	// explorer's root-branch fan-out (<= 0 means GOMAXPROCS). Both merge
	// results in submission order, so output is identical at any value.
	Parallel int
	// Seed offsets the seeds Stress derives its random schedules from, so
	// repeated runs can cover disjoint deterministic samples. The exhaustive
	// explorer folds it into its fingerprint seed but enumerates the same
	// schedule tree regardless.
	Seed int64

	// Memo enables visited-state memoization: canonical states are
	// fingerprinted and a state reached twice is explored once. Complete then
	// counts distinct terminal states rather than complete schedules.
	Memo bool
	// POR enables sleep-set partial-order reduction: a step branch is skipped
	// when a commuting sibling (disjoint cell footprints, or both reads of
	// one cell) was already explored and no process is in a multi-cell wait.
	// Crash branches are never reduced.
	POR bool
	// SnapshotInterval is the checkpoint spacing K of the incremental
	// explorer: restores replay at most ~K actions when a trailing checkpoint
	// is fresh, and full-prefix replays rebuild one checkpoint en route.
	// 0 means DefaultSnapshotInterval; negative disables checkpoints.
	SnapshotInterval int
	// MaxStates caps the visited-state set under Memo (default 4,000,000,
	// split over root branches like MaxSchedules). 0 means the default.
	MaxStates int

	// Symmetry enables process-symmetry reduction under Memo: state keys are
	// canonicalized over the algorithm's declared symmetry group
	// (mutex.SymmetricInstance), so states equal up to a declared renaming
	// are explored once. Algorithms with no declaration run exactly as with
	// the flag off. Verdicts are unchanged; only reachability is pruned.
	Symmetry bool
	// SharedVisited shares visited sets across root branches: branches run
	// in fixed waves of WaveSize, each wave reading the sets sealed by fully
	// explored branches of strictly earlier waves. Wave membership,
	// visibility, and seal contents are pure functions of the configuration,
	// so the Result stays byte-identical at any Parallel. Implies Memo.
	SharedVisited bool
	// WaveSize is the root-branch wave width for SharedVisited (default
	// DefaultWaveSize). It is a semantic knob: smaller waves seal earlier and
	// prune more. Results are byte-identical at any Parallel for a fixed
	// WaveSize, not across different WaveSize values.
	WaveSize int
	// MaxWaves > 0 stops the shared-set search after that many waves (the
	// Result is Truncated); with SpillDir the checkpoint then covers the
	// completed waves, so a later Resume run picks up where this one stopped.
	// Ignored without SharedVisited.
	MaxWaves int
	// MemBudget > 0 bounds the resident bytes of sealed shared sets: the
	// oldest waves past the budget are served from their spill files
	// (SpillDir, or a private temporary directory when unset). Pruning, and
	// therefore the Result, is unaffected.
	MemBudget int64
	// SpillDir, when set, persists every sealed wave and a manifest
	// checkpoint to this directory, enabling Resume and MemBudget eviction.
	SpillDir string
	// Resume continues a checkpointed shared-set run from SpillDir. The
	// configuration must match the checkpoint (a config digest is verified);
	// the final Result is byte-identical to an uninterrupted run.
	Resume bool

	// Telemetry, when non-nil, receives live search statistics (check_*
	// counters mirroring the Result fields, frontier-depth gauge, restore
	// replay-length histogram) and budget gauges. Strictly write-only: the
	// search never reads it back, so results are identical with it on or off.
	Telemetry *telemetry.Registry
}

// Default caps for the stateful explorer.
const (
	DefaultSnapshotInterval = 32
	DefaultMaxStates        = 4_000_000
	DefaultWaveSize         = 4
)

func (c Config) withDefaults() Config {
	if c.MaxSchedules == 0 {
		c.MaxSchedules = 50_000
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 400
	}
	if c.SnapshotInterval == 0 {
		c.SnapshotInterval = DefaultSnapshotInterval
	}
	if c.MaxStates == 0 {
		c.MaxStates = DefaultMaxStates
	}
	if c.SharedVisited {
		c.Memo = true
		if c.WaveSize <= 0 {
			c.WaveSize = DefaultWaveSize
		}
	}
	if c.Session.Passes == 0 {
		c.Session.Passes = 1
	}
	c.Session.NoTrace = true
	return c
}

// Result reports a check run.
type Result struct {
	// Complete counts fully-explored terminal points: complete schedules
	// (all processes finished) without Memo, distinct all-done canonical
	// states with it.
	Complete int
	// Truncated reports whether a cap (MaxSchedules, MaxStates, or MaxDepth)
	// stopped the search before covering the whole schedule space.
	Truncated bool
	// DepthTruncated counts schedule prefixes cut at MaxDepth. The seed
	// explorer silently dropped these; any nonzero count voids exhaustive
	// claims, so it is reported separately and surfaced by cmd/rmecheck.
	DepthTruncated int
	// Violations lists safety failures with their schedules;
	// ViolationSchedules carries the same counterexamples structurally, so
	// they can be replayed without re-parsing the message text.
	Violations         []string
	ViolationSchedules []sim.Schedule
	// Deadlocks lists schedules that wedged the system, with
	// DeadlockSchedules the structural counterparts.
	Deadlocks         []string
	DeadlockSchedules []sim.Schedule

	// StatesVisited counts canonical states expanded by the explorer
	// (terminal states included) under Memo; 0 without Memo.
	StatesVisited int
	// StatesPruned counts search nodes skipped because their canonical state
	// was already explored.
	StatesPruned int
	// SharedPruned is the subset of StatesPruned whose hit came from the
	// shared visited set (a wave sealed earlier) rather than the branch's
	// private set; 0 unless SharedVisited.
	SharedPruned int
	// Waves counts the search waves the shared-set orchestrator completed,
	// waves restored by Resume included; 0 unless SharedVisited.
	Waves int
	// SleepPruned counts step branches skipped by the sleep-set reduction.
	SleepPruned int
	// MachineSteps counts every simulator action the search executed,
	// exploration and restoration alike — the cost measure the incremental
	// explorer is benchmarked on against the seed's stateless replay.
	MachineSteps int64
	// ReplaySteps is the subset of MachineSteps spent restoring states on
	// backtrack (checkpoint advance and prefix replay).
	ReplaySteps int64
}

// Ok reports whether no violation or deadlock was found.
func (r *Result) Ok() bool { return len(r.Violations) == 0 && len(r.Deadlocks) == 0 }

// Err summarizes failures as an error, or nil.
func (r *Result) Err() error {
	if r.Ok() {
		return nil
	}
	msg := ""
	if len(r.Violations) > 0 {
		msg = r.Violations[0]
	} else {
		msg = "deadlock: " + r.Deadlocks[0]
	}
	return fmt.Errorf("check: %d violations, %d deadlocks; first: %s",
		len(r.Violations), len(r.Deadlocks), msg)
}

// merge folds a root-branch sub-result into r in submission order.
func (r *Result) merge(b *Result) {
	r.Complete += b.Complete
	r.Truncated = r.Truncated || b.Truncated
	r.DepthTruncated += b.DepthTruncated
	r.Violations = append(r.Violations, b.Violations...)
	r.ViolationSchedules = append(r.ViolationSchedules, b.ViolationSchedules...)
	r.Deadlocks = append(r.Deadlocks, b.Deadlocks...)
	r.DeadlockSchedules = append(r.DeadlockSchedules, b.DeadlockSchedules...)
	r.StatesVisited += b.StatesVisited
	r.StatesPruned += b.StatesPruned
	r.SharedPruned += b.SharedPruned
	r.SleepPruned += b.SleepPruned
	r.MachineSteps += b.MachineSteps
	r.ReplaySteps += b.ReplaySteps
}

// Exhaustive runs the bounded-exhaustive search with the configured
// reductions. The root branch set is fanned out over engine workers
// (Config.Parallel) with per-branch budget slices and per-branch visited
// sets; sub-results merge in branch order, so the Result is byte-identical
// at any parallelism level. Branch enumeration order matches
// ExhaustiveReference exactly, so with Memo and POR off the two agree on
// every field.
func Exhaustive(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Session.Validate(); err != nil {
		return nil, err
	}
	if cfg.Resume {
		if !cfg.SharedVisited {
			return nil, errors.New("check: Resume requires SharedVisited")
		}
		if cfg.SpillDir == "" {
			return nil, errors.New("check: Resume requires SpillDir")
		}
	}

	// Examine the root state once: branch set, footprints, and the degenerate
	// verdicts (a machine that wedges or finishes before its first action).
	root, err := mutex.NewSession(cfg.Session)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	if v := root.Violations(); len(v) > 0 {
		res.Violations = append(res.Violations, fmt.Sprintf("%s [schedule ]", v[0]))
		res.ViolationSchedules = append(res.ViolationSchedules, sim.Schedule{})
		root.Close()
		return res, nil
	}
	if root.Machine().AllDone() {
		res.Complete = 1
		root.Close()
		return res, nil
	}
	branches := enumerateBranches(cfg, root)
	if len(branches) == 0 {
		res.Deadlocks = append(res.Deadlocks, sim.Schedule{}.String())
		res.DeadlockSchedules = append(res.DeadlockSchedules, sim.Schedule{})
		root.Close()
		return res, nil
	}
	sleeps := rootSleepMasks(cfg, root, branches)
	root.Close()

	if cfg.SharedVisited {
		return exhaustiveShared(cfg, branches, sleeps)
	}

	subs := make([]*Result, len(branches))
	scheduleSlice := ceilDiv(cfg.MaxSchedules, len(branches))
	stateSlice := ceilDiv(cfg.MaxStates, len(branches))
	schedBudget := make([]int, len(branches))
	stateBudget := make([]int, len(branches))
	for i := range branches {
		schedBudget[i] = scheduleSlice
		stateBudget[i] = stateSlice
	}

	// Budget gauges let a heartbeat render progress against the caps; the
	// branches_done counter tracks root-branch fan-out completion. All
	// nil-safe no-ops without a registry.
	cfg.Telemetry.Gauge("check_branches").Set(int64(len(branches)))
	cfg.Telemetry.Gauge("check_max_schedules").Set(int64(cfg.MaxSchedules))
	schedGauge := cfg.Telemetry.Gauge("check_branch_schedule_budget")
	stateGauge := cfg.Telemetry.Gauge("check_branch_state_budget")
	schedGauge.Set(int64(scheduleSlice))
	if cfg.Memo {
		cfg.Telemetry.Gauge("check_max_states").Set(int64(cfg.MaxStates))
		stateGauge.Set(int64(stateSlice))
	}
	branchesDone := cfg.Telemetry.Counter("check_branches_done")
	budgetRounds := cfg.Telemetry.Counter("check_budget_rounds")

	runBranches := func(idx []int, countDone bool) error {
		return engine.ForEach(len(idx), cfg.Parallel, func(k int) error {
			i := idx[k]
			e := newExplorer(cfg, schedBudget[i], stateBudget[i])
			defer e.close()
			sub, err := e.run(branches[i], sleeps[i])
			subs[i] = sub
			if countDone {
				branchesDone.Inc()
			}
			return err
		})
	}

	all := make([]int, len(branches))
	for i := range all {
		all[i] = i
	}
	if err := runBranches(all, true); err != nil {
		return nil, err
	}

	// Even slices starve hot branches on skewed trees: the branch holding
	// most of the schedule space truncates at its 1/len(branches) slice while
	// siblings leave the global budget largely unspent. Redistribute the
	// unspent budget to budget-capped branches in deterministic follow-up
	// rounds (the redo set and the grown budgets are pure functions of the
	// merged sub-results, so the final Result stays byte-identical at any
	// Parallel). Depth-truncated branches are excluded: MaxDepth cuts are not
	// a budget shortage and re-running them would change nothing.
	for round := 0; round < maxBudgetRounds; round++ {
		totalComplete, totalStates := 0, 0
		for _, sub := range subs {
			totalComplete += sub.Complete
			totalStates += sub.StatesVisited
		}
		var capped []int
		for i, sub := range subs {
			if !sub.Truncated {
				continue
			}
			if sub.Complete >= schedBudget[i] || (cfg.Memo && sub.StatesVisited >= stateBudget[i]) {
				capped = append(capped, i)
			}
		}
		if len(capped) == 0 {
			break
		}
		extraSched := (cfg.MaxSchedules - totalComplete) / len(capped)
		extraStates := 0
		if cfg.Memo {
			extraStates = (cfg.MaxStates - totalStates) / len(capped)
		}
		if extraSched < 0 {
			extraSched = 0
		}
		if extraStates < 0 {
			extraStates = 0
		}
		// Re-run only branches whose binding cap actually grows.
		var redo []int
		for _, i := range capped {
			grows := subs[i].Complete >= schedBudget[i] && extraSched > 0
			if cfg.Memo && subs[i].StatesVisited >= stateBudget[i] && extraStates > 0 {
				grows = true
			}
			if grows {
				redo = append(redo, i)
			}
		}
		if len(redo) == 0 {
			break
		}
		for _, i := range redo {
			schedBudget[i] += extraSched
			stateBudget[i] += extraStates
		}
		budgetRounds.Inc()
		schedGauge.Set(int64(schedBudget[redo[0]]))
		if cfg.Memo {
			stateGauge.Set(int64(stateBudget[redo[0]]))
		}
		if err := runBranches(redo, false); err != nil {
			return nil, err
		}
	}

	for _, sub := range subs {
		res.merge(sub)
	}
	return res, nil
}

// maxBudgetRounds bounds the redistribution loop. Unspent budget shrinks
// every round (a still-capped branch consumes exactly what it is given), so
// the loop converges in two or three rounds in practice; the bound is a
// backstop, not a tuning knob.
const maxBudgetRounds = 8

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Stress runs many randomized schedules (with optional crash injection) and
// aggregates failures. Seeds are distributed over cfg.Parallel engine
// workers; each seed's run is a pure function of its seed, so the aggregate
// is identical at any parallelism level. Failures carry the full executed
// schedule, so every stress counterexample is replayable.
func Stress(cfg Config, seeds int, crashProb float64) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Session.Validate(); err != nil {
		return nil, err
	}
	// Failure schedules are read inside Drive (before the session is
	// recycled) and reported by seed index afterwards.
	scheds := make([]sim.Schedule, seeds)
	specs := make([]engine.RunSpec, seeds)
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		specs[seed] = engine.RunSpec{
			Session: cfg.Session,
			Drive: func(s *mutex.Session) error {
				err := s.RunRandom(cfg.Seed+int64(seed), mutex.RandomRunOptions{
					CrashProb:         crashProb,
					MaxCrashesPerProc: cfg.CrashesPerProc,
				})
				if err != nil {
					scheds[seed] = s.Machine().Schedule()
				}
				return err
			},
		}
	}
	cfg.Telemetry.Gauge("check_seeds").Set(int64(seeds))
	res := &Result{}
	for seed, r := range engine.Run(specs, engine.Options{Parallel: cfg.Parallel, Telemetry: cfg.Telemetry}) {
		switch {
		case r.Err == nil:
			res.Complete++
		case errors.Is(r.Err, mutex.ErrStuck):
			res.Deadlocks = append(res.Deadlocks, fmt.Sprintf("seed %d: %s", seed, scheds[seed]))
			res.DeadlockSchedules = append(res.DeadlockSchedules, scheds[seed])
		default:
			res.Violations = append(res.Violations,
				fmt.Sprintf("seed %d: %v [schedule %s]", seed, r.Err, scheds[seed]))
			res.ViolationSchedules = append(res.ViolationSchedules, scheds[seed])
		}
	}
	return res, nil
}
