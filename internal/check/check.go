// Package check verifies mutual exclusion algorithms by bounded-exhaustive
// interleaving exploration and randomized stress, on top of the per-step
// safety monitors of package mutex.
//
// The exhaustive explorer enumerates scheduler decisions (which poised
// process steps next; optionally, whether it crashes instead) by depth-first
// search over schedule prefixes, rebuilding the deterministic machine for
// each branch. Every complete schedule is checked for mutual exclusion and
// critical-section re-entry (the driver's monitors) and for progress (no
// deadlock). The search is exact up to its caps: if it finishes without
// truncation, every schedule of the configuration was explored.
package check

import (
	"errors"
	"fmt"

	"rme/internal/engine"
	"rme/internal/mutex"
	"rme/internal/sim"
)

// Config parameterizes a check run.
type Config struct {
	// Session is the algorithm/machine configuration (Passes defaults to 1).
	Session mutex.Config
	// MaxSchedules caps the number of complete schedules explored
	// (default 50000).
	MaxSchedules int
	// MaxDepth caps the schedule length (default 400).
	MaxDepth int
	// CrashesPerProc > 0 additionally branches on crash steps (recoverable
	// algorithms only), up to the given number of crashes per process.
	CrashesPerProc int
	// Parallel is the worker count for Stress (<= 0 means GOMAXPROCS).
	// Exhaustive is a sequential DFS; it instead reuses one machine across
	// branches via the engine's reset-reuse worker.
	Parallel int
	// Seed offsets the seeds Stress derives its random schedules from, so
	// repeated runs can cover disjoint deterministic samples. Exhaustive
	// enumeration ignores it.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MaxSchedules == 0 {
		c.MaxSchedules = 50_000
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 400
	}
	if c.Session.Passes == 0 {
		c.Session.Passes = 1
	}
	c.Session.NoTrace = true
	return c
}

// Result reports a check run.
type Result struct {
	// Complete counts fully-explored schedules (all processes finished).
	Complete int
	// Truncated reports whether a cap stopped the search before covering
	// the whole schedule space.
	Truncated bool
	// Violations lists safety failures with their schedules.
	Violations []string
	// Deadlocks lists schedules that wedged the system.
	Deadlocks []string
}

// Ok reports whether no violation or deadlock was found.
func (r *Result) Ok() bool { return len(r.Violations) == 0 && len(r.Deadlocks) == 0 }

// Err summarizes failures as an error, or nil.
func (r *Result) Err() error {
	if r.Ok() {
		return nil
	}
	msg := ""
	if len(r.Violations) > 0 {
		msg = r.Violations[0]
	} else {
		msg = "deadlock: " + r.Deadlocks[0]
	}
	return fmt.Errorf("check: %d violations, %d deadlocks; first: %s",
		len(r.Violations), len(r.Deadlocks), msg)
}

// Exhaustive runs the bounded-exhaustive search. The DFS replays every
// schedule prefix on a single recycled machine (engine.Worker reset-reuse)
// instead of constructing a fresh one per branch.
func Exhaustive(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Session.Validate(); err != nil {
		return nil, err
	}
	e := &explorer{cfg: cfg, res: &Result{}, worker: engine.NewWorker()}
	defer e.worker.Close()
	if err := e.explore(nil); err != nil {
		return nil, err
	}
	return e.res, nil
}

type explorer struct {
	cfg    Config
	res    *Result
	worker *engine.Worker
}

// explore examines the execution reached by prefix, branching over every
// enabled action.
func (e *explorer) explore(prefix sim.Schedule) error {
	if e.res.Complete >= e.cfg.MaxSchedules {
		e.res.Truncated = true
		return nil
	}

	s, err := e.worker.Session(e.cfg.Session)
	if err != nil {
		return err
	}
	release := func() { e.worker.Release(s) }
	if err := applyPrefix(s, prefix); err != nil {
		release()
		// The prefix was validated when it was constructed; failure here is
		// an internal error.
		return fmt.Errorf("check: replaying prefix %v: %w", prefix, err)
	}
	if v := s.Violations(); len(v) > 0 {
		e.res.Violations = append(e.res.Violations,
			fmt.Sprintf("%s [schedule %s]", v[0], prefix))
		release()
		return nil
	}

	m := s.Machine()
	if m.AllDone() {
		e.res.Complete++
		release()
		return nil
	}
	poised := m.PoisedProcs()
	if len(poised) == 0 {
		e.res.Deadlocks = append(e.res.Deadlocks, prefix.String())
		release()
		return nil
	}
	if len(prefix) >= e.cfg.MaxDepth {
		e.res.Truncated = true
		release()
		return nil
	}

	// Snapshot the branch set before recursing: child explorations recycle
	// this worker's machine, so m is invalid once the first child runs.
	recoverable := e.cfg.Session.Algorithm.Recoverable()
	branches := make([]sim.Action, 0, 2*len(poised))
	for _, p := range poised {
		branches = append(branches, sim.Action{Proc: p})
		if recoverable && e.cfg.CrashesPerProc > 0 && m.Crashes(p) < e.cfg.CrashesPerProc {
			branches = append(branches, sim.Action{Proc: p, Crash: true})
		}
	}
	// Crash branching for parked processes (they have no step branch but
	// can still crash).
	if recoverable && e.cfg.CrashesPerProc > 0 {
		for p := 0; p < e.cfg.Session.Procs; p++ {
			if m.ProcDone(p) || !m.Parked(p) || m.Crashes(p) >= e.cfg.CrashesPerProc {
				continue
			}
			branches = append(branches, sim.Action{Proc: p, Crash: true})
		}
	}
	release()

	for _, act := range branches {
		next := append(prefix.Clone(), act)
		if err := e.explore(next); err != nil {
			return err
		}
	}
	return nil
}

func applyPrefix(s *mutex.Session, prefix sim.Schedule) error {
	for _, act := range prefix {
		var err error
		if act.Crash {
			_, err = s.CrashProc(act.Proc)
		} else {
			_, err = s.StepProc(act.Proc)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Stress runs many randomized schedules (with optional crash injection) and
// aggregates failures. Seeds are distributed over cfg.Parallel engine
// workers; each seed's run is a pure function of its seed, so the aggregate
// is identical at any parallelism level.
func Stress(cfg Config, seeds int, crashProb float64) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Session.Validate(); err != nil {
		return nil, err
	}
	// Stuck schedules are read inside Drive (before the session is
	// recycled) and reported by seed index afterwards.
	stuck := make([]string, seeds)
	specs := make([]engine.RunSpec, seeds)
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		specs[seed] = engine.RunSpec{
			Session: cfg.Session,
			Drive: func(s *mutex.Session) error {
				err := s.RunRandom(cfg.Seed+int64(seed), mutex.RandomRunOptions{
					CrashProb:         crashProb,
					MaxCrashesPerProc: cfg.CrashesPerProc,
				})
				if errors.Is(err, mutex.ErrStuck) {
					stuck[seed] = s.Machine().Schedule().String()
				}
				return err
			},
		}
	}
	res := &Result{}
	for seed, r := range engine.Run(specs, engine.Options{Parallel: cfg.Parallel}) {
		switch {
		case r.Err == nil:
			res.Complete++
		case errors.Is(r.Err, mutex.ErrStuck):
			res.Deadlocks = append(res.Deadlocks, fmt.Sprintf("seed %d: %s", seed, stuck[seed]))
		default:
			res.Violations = append(res.Violations, fmt.Sprintf("seed %d: %v", seed, r.Err))
		}
	}
	return res, nil
}
