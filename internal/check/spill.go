package check

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"rme/internal/sim"
)

// Spill-run file layout: a fixed header followed by fixed-size records
// sorted by fingerprint, so membership is a binary search over ReadAt —
// no index needs to be resident. A small in-memory bloom filter (rebuilt on
// open) screens out most misses before any file I/O.
//
//	offset 0   8 bytes  magic "RMESPILL"
//	offset 8   4 bytes  version (little-endian)
//	offset 12  4 bytes  reserved (zero)
//	offset 16  8 bytes  record count
//	offset 24  count x 24-byte records: fingerprint Hi, Lo, sleep mask
const (
	spillMagic      = "RMESPILL"
	spillVersion    = 1
	spillHeaderSize = 24
	spillRecordSize = 24
)

// Bloom sizing: ~10 bits per entry with 4 probes keeps the false-positive
// rate around 1%, so nearly every miss is answered without touching disk.
const (
	bloomBitsPerEntry = 10
	bloomProbes       = 4
)

// spillRun is one sealed wave's visited set on disk, open for concurrent
// point lookups (File.ReadAt is safe to call from multiple goroutines).
type spillRun struct {
	f     *os.File
	count int64
	bloom []uint64
}

type spillEntry struct {
	fp   sim.Fingerprint
	mask uint64
}

func spillRunPath(dir string, wave int) string {
	return filepath.Join(dir, fmt.Sprintf("wave%04d.run", wave))
}

// writeSpillRun sorts the generation and writes it atomically (temp file +
// rename), then reopens it for reads.
func writeSpillRun(path string, gen map[sim.Fingerprint]uint64) (*spillRun, error) {
	entries := make([]spillEntry, 0, len(gen))
	for fp, mask := range gen {
		entries = append(entries, spillEntry{fp: fp, mask: mask})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].fp.Hi != entries[j].fp.Hi {
			return entries[i].fp.Hi < entries[j].fp.Hi
		}
		return entries[i].fp.Lo < entries[j].fp.Lo
	})

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("check: writing spill run: %w", err)
	}
	w := bufio.NewWriter(f)
	var hdr [spillHeaderSize]byte
	copy(hdr[:8], spillMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], spillVersion)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(entries)))
	w.Write(hdr[:])
	var rec [spillRecordSize]byte
	for _, e := range entries {
		binary.LittleEndian.PutUint64(rec[0:8], e.fp.Hi)
		binary.LittleEndian.PutUint64(rec[8:16], e.fp.Lo)
		binary.LittleEndian.PutUint64(rec[16:24], e.mask)
		w.Write(rec[:])
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("check: writing spill run: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("check: syncing spill run: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("check: closing spill run: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("check: publishing spill run: %w", err)
	}

	run, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("check: reopening spill run: %w", err)
	}
	sr := &spillRun{f: run, count: int64(len(entries)), bloom: newBloom(len(entries))}
	for _, e := range entries {
		bloomAdd(sr.bloom, e.fp)
	}
	return sr, nil
}

// openSpillRun opens a checkpointed run, validates the header and the sort
// order, and rebuilds the bloom filter with one streaming pass.
func openSpillRun(path string) (*spillRun, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("check: opening spill run: %w", err)
	}
	var hdr [spillHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("check: reading spill run header %s: %w", path, err)
	}
	if string(hdr[:8]) != spillMagic {
		f.Close()
		return nil, fmt.Errorf("check: %s is not a spill run (bad magic)", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != spillVersion {
		f.Close()
		return nil, fmt.Errorf("check: spill run %s has version %d, want %d", path, v, spillVersion)
	}
	count := int64(binary.LittleEndian.Uint64(hdr[16:24]))
	if fi, err := f.Stat(); err != nil {
		f.Close()
		return nil, err
	} else if want := spillHeaderSize + count*spillRecordSize; fi.Size() != want {
		f.Close()
		return nil, fmt.Errorf("check: spill run %s is %d bytes, want %d", path, fi.Size(), want)
	}

	sr := &spillRun{f: f, count: count, bloom: newBloom(int(count))}
	r := bufio.NewReaderSize(io.NewSectionReader(f, spillHeaderSize, count*spillRecordSize), 1<<16)
	var prev sim.Fingerprint
	var rec [spillRecordSize]byte
	for i := int64(0); i < count; i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("check: reading spill run %s: %w", path, err)
		}
		fp := sim.Fingerprint{
			Hi: binary.LittleEndian.Uint64(rec[0:8]),
			Lo: binary.LittleEndian.Uint64(rec[8:16]),
		}
		if i > 0 && !prev.Less(fp) {
			f.Close()
			return nil, fmt.Errorf("check: spill run %s is not sorted at record %d", path, i)
		}
		prev = fp
		bloomAdd(sr.bloom, fp)
	}
	return sr, nil
}

func (sr *spillRun) close() {
	if sr.f != nil {
		sr.f.Close()
	}
}

func (sr *spillRun) sizeBytes() int64 {
	return spillHeaderSize + sr.count*spillRecordSize
}

// lookup binary-searches the sorted records for fp, after the bloom filter
// has had a chance to answer "definitely absent" for free.
func (sr *spillRun) lookup(fp sim.Fingerprint) (uint64, bool) {
	if sr.count == 0 || !bloomMayContain(sr.bloom, fp) {
		return 0, false
	}
	lo, hi := int64(0), sr.count
	var rec [spillRecordSize]byte
	for lo < hi {
		mid := (lo + hi) / 2
		if _, err := sr.f.ReadAt(rec[:], spillHeaderSize+mid*spillRecordSize); err != nil {
			return 0, false
		}
		got := sim.Fingerprint{
			Hi: binary.LittleEndian.Uint64(rec[0:8]),
			Lo: binary.LittleEndian.Uint64(rec[8:16]),
		}
		switch {
		case got == fp:
			return binary.LittleEndian.Uint64(rec[16:24]), true
		case got.Less(fp):
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0, false
}

func newBloom(entries int) []uint64 {
	words := (entries*bloomBitsPerEntry + 63) / 64
	if words < 1 {
		words = 1
	}
	return make([]uint64, words)
}

// bloomIdx derives the i-th probe position by double hashing over the two
// fingerprint words; |1 keeps the stride odd so probes never collapse.
func bloomIdx(bloom []uint64, fp sim.Fingerprint, i uint64) (word, bit uint64) {
	pos := (fp.Hi + i*(fp.Lo|1)) % (uint64(len(bloom)) * 64)
	return pos / 64, pos % 64
}

func bloomAdd(bloom []uint64, fp sim.Fingerprint) {
	for i := uint64(0); i < bloomProbes; i++ {
		w, b := bloomIdx(bloom, fp, i)
		bloom[w] |= 1 << b
	}
}

func bloomMayContain(bloom []uint64, fp sim.Fingerprint) bool {
	for i := uint64(0); i < bloomProbes; i++ {
		w, b := bloomIdx(bloom, fp, i)
		if bloom[w]>>b&1 == 0 {
			return false
		}
	}
	return true
}

// spillManifest is the per-wave checkpoint written next to the run files.
// It captures everything exhaustiveShared needs to continue — the sealed
// waves' sub-results and budgets plus the run-file inventory — and a digest
// of the semantic configuration so a Resume with a different search cannot
// silently mix checkpoints.
type spillManifest struct {
	Version     int             `json:"version"`
	Digest      string          `json:"digest"`
	Branches    int             `json:"branches"`
	WaveSize    int             `json:"wave_size"`
	WavesDone   int             `json:"waves_done"`
	Rounds      int             `json:"rounds"`
	Done        bool            `json:"done"`
	Subs        []*Result       `json:"subs"`
	SchedBudget []int           `json:"sched_budget"`
	StateBudget []int           `json:"state_budget"`
	Runs        []spillRunEntry `json:"runs"`
}

type spillRunEntry struct {
	Wave    int   `json:"wave"`
	Entries int64 `json:"entries"`
}

const manifestVersion = 1

func manifestPath(dir string) string { return filepath.Join(dir, "manifest.json") }

// configDigest hashes every configuration field that shapes the search tree
// or the Result bytes. Parallel is excluded (results are parallel-invariant
// by construction), as are MaxWaves, MemBudget, SpillDir, and Resume (they
// decide where a run stops or lives, not what it computes).
func configDigest(cfg Config, branches int) string {
	h := sha256.New()
	fmt.Fprintf(h, "alg=%s procs=%d width=%d model=%d passes=%d extracs=%d maxsteps=%d\n",
		cfg.Session.Algorithm.Name(), cfg.Session.Procs, cfg.Session.Width,
		cfg.Session.Model, cfg.Session.Passes, cfg.Session.ExtraCSSteps, cfg.Session.MaxSteps)
	fmt.Fprintf(h, "sched=%d depth=%d crashes=%d states=%d seed=%d snap=%d\n",
		cfg.MaxSchedules, cfg.MaxDepth, cfg.CrashesPerProc, cfg.MaxStates,
		cfg.Seed, cfg.SnapshotInterval)
	fmt.Fprintf(h, "memo=%t por=%t sym=%t wave=%d branches=%d\n",
		cfg.Memo, cfg.POR, cfg.Symmetry, cfg.WaveSize, branches)
	return hex.EncodeToString(h.Sum(nil))
}

// writeManifest checkpoints the orchestrator state atomically.
func writeManifest(cfg Config, branches, wavesDone, rounds int, done bool,
	subs []*Result, schedBudget, stateBudget []int, store *sharedStore) error {
	man := spillManifest{
		Version:     manifestVersion,
		Digest:      configDigest(cfg, branches),
		Branches:    branches,
		WaveSize:    cfg.WaveSize,
		WavesDone:   wavesDone,
		Rounds:      rounds,
		Done:        done,
		Subs:        subs,
		SchedBudget: schedBudget,
		StateBudget: stateBudget,
	}
	for w := 0; w < wavesDone && w < len(store.waves); w++ {
		if r := store.waves[w].run; r != nil {
			man.Runs = append(man.Runs, spillRunEntry{Wave: w, Entries: r.count})
		}
	}
	data, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return err
	}
	tmp := manifestPath(cfg.SpillDir) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("check: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, manifestPath(cfg.SpillDir)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("check: publishing manifest: %w", err)
	}
	return nil
}

// loadManifest reads and validates the checkpoint for a Resume run.
func loadManifest(cfg Config, branches int) (*spillManifest, error) {
	data, err := os.ReadFile(manifestPath(cfg.SpillDir))
	if err != nil {
		return nil, fmt.Errorf("check: Resume: reading checkpoint: %w", err)
	}
	var man spillManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("check: Resume: parsing checkpoint: %w", err)
	}
	if man.Version != manifestVersion {
		return nil, fmt.Errorf("check: Resume: checkpoint version %d, want %d", man.Version, manifestVersion)
	}
	if got, want := man.Digest, configDigest(cfg, branches); got != want {
		return nil, fmt.Errorf("check: Resume: checkpoint was written by a different configuration (digest %.12s, want %.12s)", got, want)
	}
	if man.Branches != branches {
		return nil, fmt.Errorf("check: Resume: checkpoint has %d branches, search has %d", man.Branches, branches)
	}
	nWaves := ceilDiv(branches, cfg.WaveSize)
	if man.WavesDone < 0 || man.WavesDone > nWaves {
		return nil, fmt.Errorf("check: Resume: checkpoint claims %d waves of %d", man.WavesDone, nWaves)
	}
	if man.Rounds < 0 || man.Rounds > maxBudgetRounds {
		return nil, fmt.Errorf("check: Resume: checkpoint claims budget round %d of %d", man.Rounds, maxBudgetRounds)
	}
	if len(man.Subs) != branches || len(man.SchedBudget) != branches || len(man.StateBudget) != branches {
		return nil, fmt.Errorf("check: Resume: checkpoint state arrays do not match %d branches", branches)
	}
	for i := 0; i < man.WavesDone*cfg.WaveSize && i < branches; i++ {
		if man.Subs[i] == nil {
			return nil, fmt.Errorf("check: Resume: checkpoint is missing the result of branch %d", i)
		}
	}
	return &man, nil
}
