// Package faults is the deterministic fault-injection campaign engine: it
// explores crash placements against a mutual exclusion algorithm
// systematically, judges every run with pluggable invariant oracles, and
// minimizes failures to replayable reproducers.
//
// A campaign probes the crash-free base execution once, asks its Sources to
// generate fault Plans (exhaustive single/double placement over decision
// indices, seeded-random multi-crash runs, targeted placement at
// RMR-incurring steps, parked-process and system-wide crashes), executes
// the plans on the engine's deterministic worker pool, and checks each
// Outcome against the Oracles (mutual exclusion, deadlock-freedom within a
// decision bound, critical-section re-entry completion, and per-algorithm
// RMR budget ceilings). Every failing run is delta-debugged down to a
// minimal concrete schedule that reproduces the same oracle violation —
// see Shrink — and the whole campaign is a pure function of its
// configuration and Seed, so reports are byte-identical at any parallelism.
package faults

import (
	"errors"
	"fmt"

	"rme/internal/engine"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/telemetry"
)

// Campaign configures one fault-injection run against one algorithm.
type Campaign struct {
	// Session is the machine/algorithm configuration (Passes defaults to 1,
	// NoTrace is forced — campaigns replay from schedules, not traces).
	Session mutex.Config
	// Sources generate the fault plans; nil means DefaultSources.
	Sources []Source
	// Oracles judge every run; nil means DefaultOracles for the algorithm.
	Oracles []Oracle
	// Seed is the campaign base seed, threaded into every random source.
	Seed int64
	// Parallel is the engine worker count (<= 0 means GOMAXPROCS). Reports
	// are identical at any value unless FailFast is set.
	Parallel int
	// Bound caps scheduler decisions per run; 0 derives a generous bound
	// from the probe (the deadlock-freedom oracle's horizon).
	Bound int
	// NoShrink reports failures with their full original schedules instead
	// of delta-debugged minimal reproducers.
	NoShrink bool
	// FailFast stops launching runs after the first failure. It trades the
	// byte-identical-report guarantee for latency.
	FailFast bool
	// MaxFailures caps reported (and shrunk) failures (default 8).
	MaxFailures int
	// ShrinkReplays caps replays spent minimizing each failure (default 400).
	ShrinkReplays int

	// Telemetry, when non-nil, receives live campaign statistics: a
	// faults_plans gauge once the grid is generated, faults_runs /
	// faults_failures counters as Drives complete, and faults_shrinks /
	// faults_shrink_replays counters from the minimizer. Write-only — the
	// campaign never reads it, so reports are identical with it on or off.
	Telemetry *telemetry.Registry
}

// SourceStat is one source's row in the campaign report.
type SourceStat struct {
	Name     string `json:"name"`
	Runs     int    `json:"runs"`
	Failures int    `json:"failures"`
}

// Failure is one failing run: which source and oracle, the generating plan,
// and the concrete schedules (original and minimized). Schedule strings
// round-trip through sim.ParseSchedule, so a printed failure replays
// byte-identically from the (seed, schedule) pair alone.
type Failure struct {
	Source string
	Oracle string
	Detail string
	Plan   Plan
	// Schedule is the full failing execution.
	Schedule sim.Schedule
	// Shrunk is the minimal reproducer (equal to Schedule when shrinking is
	// disabled or could not reduce it).
	Shrunk sim.Schedule
	// ShrinkReplays counts the replays the minimizer spent.
	ShrinkReplays int
}

// String renders the failure as its replayable reproducer.
func (f *Failure) String() string {
	return fmt.Sprintf("%s/%s: %s\n  plan: %s\n  reproducer: (seed %d, schedule %q)",
		f.Source, f.Oracle, f.Detail, f.Plan, f.Plan.Seed, f.Shrunk.String())
}

// Report is a completed campaign.
type Report struct {
	Algorithm string
	Cfg       mutex.Config
	Seed      int64
	Bound     int
	Probe     Probe
	Runs      int
	Skipped   int
	Sources   []SourceStat
	Failures  []*Failure
}

// Ok reports whether every run satisfied every oracle.
func (r *Report) Ok() bool { return len(r.Failures) == 0 }

// Err summarizes failures as an error, or nil.
func (r *Report) Err() error {
	if r.Ok() {
		return nil
	}
	return fmt.Errorf("faults: %d failing runs; first: %s", len(r.Failures), r.Failures[0])
}

// errPartial marks a shrinker replay that ended mid-execution (neither done
// nor stuck); it keeps end-state oracles from misfiring on prefixes.
var errPartial = errors.New("faults: partial replay")

// DefaultSources returns the standard campaign axes for an algorithm. For
// recoverable algorithms: exhaustive single-crash placement, RMR-targeted
// placement, parked and system-wide crashes, exhaustive double placement,
// and a seeded-random multi-crash axis. Non-recoverable algorithms get only
// the crash-free random-schedule axis (the oracles still apply). short
// trims the grid for use inside -short test runs.
func DefaultSources(recoverable bool, seed int64, short bool) []Source {
	randomRuns := 48
	if short {
		randomRuns = 12
	}
	if !recoverable {
		return []Source{RandomCrashes{Runs: randomRuns, MaxCrashes: 0, Seed: seed}}
	}
	stride := 1
	if short {
		stride = 3
	}
	return []Source{
		ExhaustiveCrashes{Crashes: 1, Stride: stride},
		RMRTargeted{},
		ParkedCrashes{Stride: stride},
		SystemWideCrashes{},
		ExhaustiveCrashes{Crashes: 2},
		RandomCrashes{Runs: randomRuns, MaxCrashes: 3, Seed: seed},
	}
}

// Run executes the campaign: probe, plan generation, parallel execution,
// oracle evaluation, and failure minimization.
func (c Campaign) Run() (*Report, error) {
	cfg := c.Session
	cfg.NoTrace = true
	if cfg.Passes == 0 {
		cfg.Passes = 1
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	oracles := c.Oracles
	if oracles == nil {
		oracles = DefaultOracles(cfg.Algorithm, cfg.Procs, cfg.Width)
	}
	sources := c.Sources
	if sources == nil {
		sources = DefaultSources(cfg.Algorithm.Recoverable(), c.Seed, false)
	}
	if err := validSources(cfg.Algorithm.Recoverable(), sources); err != nil {
		return nil, err
	}
	maxFailures := c.MaxFailures
	if maxFailures <= 0 {
		maxFailures = 8
	}

	rep := &Report{Algorithm: cfg.Algorithm.Name(), Cfg: cfg, Seed: c.Seed}

	// Probe the crash-free base execution under the same round-robin policy
	// the placement sources target.
	probe, probeOutcome, err := c.probe(cfg)
	if err != nil {
		return nil, err
	}
	rep.Probe = probe
	rep.Bound = c.Bound
	if rep.Bound <= 0 {
		rep.Bound = 64*probe.Steps + 4096
	}
	if fail, orc := c.judge(probeOutcome, oracles); fail != nil {
		// The algorithm fails without any fault injection; report the base
		// run as the campaign's single failure rather than generating plans
		// whose placement indices are meaningless.
		fail.Source = "probe"
		fail.Plan = Plan{Seed: -1}
		if orc != nil && errIsReplayable(probeOutcome.Err) {
			c.minimize(cfg, fail, orc)
		}
		rep.Runs = 1
		rep.Sources = []SourceStat{{Name: "probe", Runs: 1, Failures: 1}}
		rep.Failures = []*Failure{fail}
		return rep, nil
	}

	// Generate the plan grid.
	type job struct {
		source string
		plan   Plan
	}
	var jobs []job
	for _, src := range sources {
		for _, pl := range src.Plans(probe) {
			jobs = append(jobs, job{source: src.Name(), plan: pl})
		}
		rep.Sources = append(rep.Sources, SourceStat{Name: src.Name()})
	}

	// Execute on the engine pool, snapshotting outcomes inside Drive (the
	// session is recycled immediately after). The live counters tick inside
	// Drive so a heartbeat shows run/failure progress; report evaluation
	// below stays purely schedule-order deterministic.
	c.Telemetry.Gauge("faults_plans").Set(int64(len(jobs)))
	runsLive := c.Telemetry.Counter("faults_runs")
	failuresLive := c.Telemetry.Counter("faults_failures")
	outcomes := make([]*Outcome, len(jobs))
	failed := make([]string, len(jobs)) // oracle detail, "" = clean
	oracleOf := make([]Oracle, len(jobs))
	specs := make([]engine.RunSpec, len(jobs))
	for i := range jobs {
		i := i
		specs[i] = engine.RunSpec{
			Session: cfg,
			Drive: func(s *mutex.Session) error {
				err := jobs[i].plan.drive(s, rep.Bound, nil)
				o := snapshot(s, err)
				outcomes[i] = o
				for _, orc := range oracles {
					if detail := orc.Check(o); detail != "" {
						failed[i] = detail
						oracleOf[i] = orc
						break
					}
				}
				if err != nil && failed[i] == "" {
					// A drive error no oracle claims (internal failure):
					// surface it rather than swallowing it.
					failed[i] = err.Error()
				}
				runsLive.Inc()
				if failed[i] != "" {
					failuresLive.Inc()
				}
				return nil
			},
		}
	}
	opts := engine.Options{Parallel: c.Parallel, Telemetry: c.Telemetry}
	if c.FailFast {
		opts.StopOn = func(r engine.Result) bool {
			return r.Err != nil || failed[r.Index] != ""
		}
	}
	results := engine.Run(specs, opts)

	// Evaluate in submission order: reports are deterministic at any
	// parallelism (unless FailFast skipped runs).
	srcIndex := make(map[string]int, len(rep.Sources))
	for i := range rep.Sources {
		srcIndex[rep.Sources[i].Name] = i
	}
	for i, r := range results {
		if r.Skipped {
			rep.Skipped++
			continue
		}
		rep.Runs++
		st := &rep.Sources[srcIndex[jobs[i].source]]
		st.Runs++
		if r.Err != nil {
			return nil, fmt.Errorf("faults: run %d (%s, plan %s): %w", i, jobs[i].source, jobs[i].plan, r.Err)
		}
		if failed[i] == "" {
			continue
		}
		st.Failures++
		if len(rep.Failures) >= maxFailures {
			continue
		}
		fail := &Failure{
			Source:   jobs[i].source,
			Detail:   failed[i],
			Plan:     jobs[i].plan,
			Schedule: outcomes[i].Schedule,
			Shrunk:   outcomes[i].Schedule,
		}
		if oracleOf[i] != nil {
			fail.Oracle = oracleOf[i].Name()
			if errIsReplayable(outcomes[i].Err) {
				c.minimize(cfg, fail, oracleOf[i])
			}
		} else {
			fail.Oracle = "error"
		}
		rep.Failures = append(rep.Failures, fail)
	}
	return rep, nil
}

// judge runs the oracles over one outcome, building a Failure for the first
// violated oracle (nil when clean) and returning the oracle that fired.
func (c Campaign) judge(o *Outcome, oracles []Oracle) (*Failure, Oracle) {
	for _, orc := range oracles {
		if detail := orc.Check(o); detail != "" {
			return &Failure{
				Oracle:   orc.Name(),
				Detail:   detail,
				Schedule: o.Schedule,
				Shrunk:   o.Schedule,
			}, orc
		}
	}
	if o.Err != nil {
		return &Failure{Oracle: "error", Detail: o.Err.Error(), Schedule: o.Schedule, Shrunk: o.Schedule}, nil
	}
	return nil, nil
}

// minimize shrinks a failure's schedule in place unless disabled.
func (c Campaign) minimize(cfg mutex.Config, fail *Failure, oracle Oracle) {
	if c.NoShrink {
		return
	}
	budget := c.ShrinkReplays
	if budget <= 0 {
		budget = 400
	}
	shrunk, replays := Shrink(cfg, fail.Schedule, oracle, budget)
	fail.Shrunk = shrunk
	fail.ShrinkReplays = replays
	c.Telemetry.Counter("faults_shrinks").Inc()
	c.Telemetry.Counter("faults_shrink_replays").Add(int64(replays))
}

// probe measures the crash-free round-robin execution: its decision count
// and the decisions that incurred an RMR under the configured model.
func (c Campaign) probe(cfg mutex.Config) (Probe, *Outcome, error) {
	s, err := mutex.NewSession(cfg)
	if err != nil {
		return Probe{}, nil, err
	}
	defer s.Close()
	var rmrAt []int
	bound := c.Bound
	if bound <= 0 {
		bound = cfg.MaxSteps
		if bound <= 0 {
			bound = sim.DefaultMaxSteps
		}
	}
	driveErr := Plan{Seed: -1}.drive(s, bound, func(decision int, ev sim.Event) {
		if ev.RMR(cfg.Model) {
			rmrAt = append(rmrAt, decision)
		}
	})
	o := snapshot(s, driveErr)
	return Probe{Steps: len(o.Schedule), RMRAt: rmrAt, Schedule: o.Schedule}, o, nil
}
