package faults

import (
	"fmt"
	"math/rand"

	"rme/internal/sim"
)

// Probe describes the crash-free base execution a campaign measured before
// generating plans: exhaustive placement enumerates its decision indices,
// and the RMR-targeted source crashes exactly where it paid.
type Probe struct {
	// Steps is the number of scheduler decisions of the crash-free
	// round-robin run.
	Steps int
	// RMRAt lists the decision indices whose step incurred an RMR under the
	// campaign's configured model, ascending.
	RMRAt []int
	// Schedule is the probe run's executed action sequence. Campaigns force
	// NoTrace, so a caller that wants the step-level story (rmefault -trace)
	// replays this schedule — or a failure's shrunken reproducer — on a
	// traced machine.
	Schedule sim.Schedule
}

// Source generates the run plans of one campaign axis.
type Source interface {
	Name() string
	// Plans derives the runs from the probe of the base execution. Crash
	// lists must be ascending by decision index.
	Plans(pr Probe) []Plan
}

// ExhaustiveCrashes places Crashes crash steps at every (strided)
// combination of decision indices of the base execution: the systematic
// version of the paper's adversarially-chosen individual crash placement.
// With Crashes=1 and Stride=1 it covers every crash window of the base run;
// Crashes=2 additionally covers crashes that hit an earlier crash's
// recovery.
type ExhaustiveCrashes struct {
	// Crashes is the number of crashes per run (1 or 2; default 1).
	Crashes int
	// Stride samples every Stride-th index (default 1 for single crashes,
	// steps/6+1 for double — the density the conformance suite always used).
	Stride int
	// Slack extends placement past the base execution length, covering
	// windows that only exist because the earlier crash lengthened the run
	// (default 0 for single, 4 for double).
	Slack int
}

// Name identifies the source.
func (e ExhaustiveCrashes) Name() string {
	if e.Crashes >= 2 {
		return "exhaustive-double"
	}
	return "exhaustive-single"
}

// Plans enumerates the placements.
func (e ExhaustiveCrashes) Plans(pr Probe) []Plan {
	var plans []Plan
	switch {
	case e.Crashes >= 2:
		stride := e.Stride
		if stride <= 0 {
			stride = pr.Steps/6 + 1
		}
		slack := e.Slack
		if slack == 0 {
			slack = 4
		}
		for i := 0; i < pr.Steps; i += stride {
			for j := i + 1; j < pr.Steps+slack; j += stride {
				plans = append(plans, Plan{Seed: -1, Crashes: []Crash{
					{At: i, Victim: VictimScheduled},
					{At: j, Victim: VictimScheduled},
				}})
			}
		}
	default:
		stride := e.Stride
		if stride <= 0 {
			stride = 1
		}
		for at := 0; at < pr.Steps+e.Slack; at += stride {
			plans = append(plans, Plan{Seed: -1, Crashes: []Crash{{At: at, Victim: VictimScheduled}}})
		}
	}
	return plans
}

// RMRTargeted crashes at every RMR-incurring decision of the base execution
// — the steps the paper's lower bound argues about. It is the cheap
// high-yield subset of exhaustive placement: crash windows that sit on
// cache-miss/remote transitions are where recovery protocols lose state.
type RMRTargeted struct{}

// Name identifies the source.
func (RMRTargeted) Name() string { return "rmr-targeted" }

// Plans crashes the scheduled process at each RMR-incurring decision.
func (RMRTargeted) Plans(pr Probe) []Plan {
	plans := make([]Plan, 0, len(pr.RMRAt))
	for _, at := range pr.RMRAt {
		plans = append(plans, Plan{Seed: -1, Crashes: []Crash{{At: at, Victim: VictimScheduled}}})
	}
	return plans
}

// ParkedCrashes crashes the lowest-id parked process at every (strided)
// decision of the base execution — the recovery window that scheduled-step
// placement cannot reach, because parked processes take no steps.
type ParkedCrashes struct {
	// Stride samples every Stride-th decision (default 1).
	Stride int
}

// Name identifies the source.
func (ParkedCrashes) Name() string { return "crash-parked" }

// Plans enumerates the parked-crash placements.
func (p ParkedCrashes) Plans(pr Probe) []Plan {
	stride := p.Stride
	if stride <= 0 {
		stride = 1
	}
	var plans []Plan
	for at := 0; at < pr.Steps; at += stride {
		plans = append(plans, Plan{Seed: -1, Crashes: []Crash{{At: at, Victim: VictimParked}}})
	}
	return plans
}

// SystemWideCrashes crashes every live process simultaneously at sampled
// decisions — the system-wide failure model of Golab–Hendler and
// Jayanti–Jayanti–Joshi the paper contrasts with its individual-crash model
// (§4). Individual-crash recoverability implies system-wide recoverability,
// so every recoverable algorithm must survive it.
type SystemWideCrashes struct {
	// Stride samples every Stride-th decision (default steps/8+1).
	Stride int
}

// Name identifies the source.
func (SystemWideCrashes) Name() string { return "system-wide" }

// Plans enumerates the crash-wave placements.
func (s SystemWideCrashes) Plans(pr Probe) []Plan {
	stride := s.Stride
	if stride <= 0 {
		stride = pr.Steps/8 + 1
	}
	var plans []Plan
	for at := 0; at < pr.Steps; at += stride {
		plans = append(plans, Plan{Seed: -1, Crashes: []Crash{{At: at, Victim: VictimAll}}})
	}
	return plans
}

// RandomCrashes is the seeded-random campaign axis for configurations too
// large to enumerate: each run drives a seeded-random schedule and injects
// up to MaxCrashes crashes on random live victims at random decisions. Every
// run is a pure function of its derived seed, so campaign results are
// parallelism-independent and any failure replays from the printed plan.
type RandomCrashes struct {
	// Runs is the number of random runs (default 32).
	Runs int
	// MaxCrashes caps crashes per run (default 3; 0 keeps schedules random
	// but crash-free, the right setting for non-recoverable algorithms).
	MaxCrashes int
	// Seed is the campaign base seed; run i derives its plan from Seed and i.
	Seed int64
	// Horizon bounds crash decision indices (default 4x the base execution).
	Horizon int
}

// Name identifies the source.
func (RandomCrashes) Name() string { return "random" }

// Plans derives the seeded runs.
func (r RandomCrashes) Plans(pr Probe) []Plan {
	runs := r.Runs
	if runs <= 0 {
		runs = 32
	}
	maxCrashes := r.MaxCrashes
	horizon := r.Horizon
	if horizon <= 0 {
		horizon = 4*pr.Steps + 64
	}
	plans := make([]Plan, 0, runs)
	for i := 0; i < runs; i++ {
		seed := deriveSeed(r.Seed, i)
		rng := rand.New(rand.NewSource(seed))
		var crashes []Crash
		if maxCrashes > 0 {
			for k := rng.Intn(maxCrashes + 1); k > 0; k-- {
				crashes = append(crashes, Crash{At: rng.Intn(horizon), Victim: VictimRandom})
			}
			sortCrashes(crashes)
		}
		plans = append(plans, Plan{Seed: seed, Crashes: crashes})
	}
	return plans
}

// deriveSeed maps (base, index) to a run seed with a splitmix64 round, so
// campaign seeds that differ by 1 do not produce overlapping run streams.
func deriveSeed(base int64, i int) int64 {
	z := uint64(base)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	// Plans interpret negative seeds as round-robin; keep the derived seed
	// non-negative.
	return int64(z >> 1)
}

// validSources checks a source list against an algorithm's recoverability:
// crash-injecting sources are rejected for non-recoverable algorithms
// (drivers refuse to crash them, so the campaign would only report errors).
func validSources(recoverable bool, sources []Source) error {
	if recoverable {
		return nil
	}
	for _, src := range sources {
		switch s := src.(type) {
		case RandomCrashes:
			if s.MaxCrashes > 0 {
				return fmt.Errorf("faults: source %s injects crashes but the algorithm is not recoverable", src.Name())
			}
		default:
			return fmt.Errorf("faults: source %s injects crashes but the algorithm is not recoverable", src.Name())
		}
	}
	return nil
}
