package faults

import (
	"fmt"

	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/word"
)

// This file holds the known-bad fixture algorithms the checker self-test
// suite uses for mutation testing, alongside BrokenTAS (broken.go): a
// checker that only ever passes on good algorithms proves nothing, so every
// verdict path — mutual exclusion violation, deadlock, crash-recovery
// amnesia — has a fixture that must trip it.

// BrokenTicket is a ticket lock with an off-by-one admission bug: waiters
// are admitted when serving+1 reaches their ticket instead of serving
// itself, so the process holding ticket t+1 enters while ticket t still owns
// the critical section. The violation needs no crashes and two processes, so
// both the exhaustive explorer and randomized stress must report it with a
// replayable schedule.
type BrokenTicket struct{}

var _ mutex.Algorithm = BrokenTicket{}

// NewBrokenTicket returns the mutual-exclusion-violating fixture.
func NewBrokenTicket() BrokenTicket { return BrokenTicket{} }

// Name identifies the fixture.
func (BrokenTicket) Name() string { return "broken-ticket" }

// Recoverable reports false: the bug is in the admission test, not recovery.
func (BrokenTicket) Recoverable() bool { return false }

// Make allocates the ticket dispenser and the serving counter.
func (BrokenTicket) Make(mem memory.Allocator, n int) (mutex.Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("broken-ticket: need at least 1 process, got %d", n)
	}
	return &brokenTicketInstance{
		next:    mem.NewCell("bticket.next", memory.Shared, 0),
		serving: mem.NewCell("bticket.serving", memory.Shared, 0),
	}, nil
}

type brokenTicketInstance struct {
	next, serving memory.Cell
}

func (in *brokenTicketInstance) Bind(env memory.Env) mutex.Handle {
	return &brokenTicketHandle{env: env, next: in.next, serving: in.serving}
}

type brokenTicketHandle struct {
	mutex.Unrecoverable

	env           memory.Env
	next, serving memory.Cell
}

// Lock draws a ticket, then waits for the buggy admission predicate: v+1 >= t
// admits the holder of ticket serving+1 one turn early.
func (h *brokenTicketHandle) Lock() {
	t := h.env.Add(h.next, 1)
	h.env.SpinUntil(h.serving, func(v word.Word) bool { return v+1 >= t })
}

// Unlock passes the turn.
func (h *brokenTicketHandle) Unlock() {
	h.env.Add(h.serving, 1)
}

// WedgingTAS is a test-and-set lock whose losers wait for a sentinel value
// the winner never writes: the loser of the CAS race spins for the lock word
// to become 2, but Unlock writes 0. Solo runs complete (the CAS wins
// immediately), so the wedge only appears under contention — exactly the
// kind of progress bug the exhaustive deadlock check and the stress runner's
// stuck detection must both surface.
type WedgingTAS struct{}

var _ mutex.Algorithm = WedgingTAS{}

// NewWedgingTAS returns the deadlocking fixture.
func NewWedgingTAS() WedgingTAS { return WedgingTAS{} }

// Name identifies the fixture.
func (WedgingTAS) Name() string { return "wedging-tas" }

// Recoverable reports false.
func (WedgingTAS) Recoverable() bool { return false }

// Make allocates the lock word (0 = free, 1 = held).
func (WedgingTAS) Make(mem memory.Allocator, n int) (mutex.Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("wedging-tas: need at least 1 process, got %d", n)
	}
	return &wedgingInstance{lock: mem.NewCell("wtas.lock", memory.Shared, 0)}, nil
}

type wedgingInstance struct {
	lock memory.Cell
}

func (in *wedgingInstance) Bind(env memory.Env) mutex.Handle {
	return &wedgingHandle{env: env, lock: in.lock}
}

type wedgingHandle struct {
	mutex.Unrecoverable

	env  memory.Env
	lock memory.Cell
}

// Lock tries the CAS once; on failure it waits for the value 2, which no
// code path ever stores.
func (h *wedgingHandle) Lock() {
	for h.env.CAS(h.lock, 0, 1) != 0 {
		h.env.SpinUntil(h.lock, func(v word.Word) bool { return v == 2 })
	}
}

// Unlock frees the lock — with the value the waiters are not watching for.
func (h *wedgingHandle) Unlock() {
	h.env.Write(h.lock, 0)
}
