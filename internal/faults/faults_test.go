package faults

import (
	"reflect"
	"strings"
	"testing"

	"rme/internal/algorithms/rspin"
	"rme/internal/algorithms/tas"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/word"
)

// TestBrokenCampaignShrinksToReplayableReproducer is the end-to-end
// acceptance scenario: a campaign against the intentionally crash-unsafe
// BrokenTAS must find a mutual exclusion violation, shrink it, and the
// printed (seed, schedule) pair must replay the same violation on a fresh
// session, byte-identically.
func TestBrokenCampaignShrinksToReplayableReproducer(t *testing.T) {
	cfg := mutex.Config{Procs: 2, Width: 8, Model: sim.CC, Algorithm: NewBroken()}
	c := Campaign{Session: cfg, Seed: 7}
	rep, err := c.Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if rep.Ok() {
		t.Fatal("campaign found no failures on the broken algorithm")
	}
	var fail *Failure
	for _, f := range rep.Failures {
		if f.Oracle == "mutual-exclusion" {
			fail = f
			break
		}
	}
	if fail == nil {
		t.Fatalf("no mutual-exclusion failure among %d failures; first: %s",
			len(rep.Failures), rep.Failures[0])
	}
	if len(fail.Shrunk) == 0 || len(fail.Shrunk) > len(fail.Schedule) {
		t.Fatalf("shrunk schedule has %d actions, original %d", len(fail.Shrunk), len(fail.Schedule))
	}

	// Round-trip the printed reproducer: parse the rendered schedule and
	// replay it on a fresh session.
	parsed, err := sim.ParseSchedule(fail.Shrunk.String())
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", fail.Shrunk.String(), err)
	}
	out, err := Replay(cfg, parsed)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(out.Violations) == 0 {
		t.Fatalf("replay of %q produced no violation", fail.Shrunk.String())
	}
	if got := out.Schedule.String(); got != fail.Shrunk.String() {
		t.Fatalf("replayed schedule %q != reproducer %q", got, fail.Shrunk.String())
	}
	if (MutualExclusion{}).Check(out) == "" {
		t.Fatal("mutual-exclusion oracle does not fire on the replayed outcome")
	}
}

// TestCampaignDeterministicAcrossParallelism runs the same broken-algorithm
// campaign at -parallel 1 and 4 and demands identical reports.
func TestCampaignDeterministicAcrossParallelism(t *testing.T) {
	cfg := mutex.Config{Procs: 2, Width: 8, Model: sim.CC, Algorithm: NewBroken()}
	run := func(par int) *Report {
		rep, err := Campaign{Session: cfg, Seed: 11, Parallel: par}.Run()
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		return rep
	}
	a, b := run(1), run(4)
	if a.Runs != b.Runs || a.Skipped != b.Skipped {
		t.Fatalf("run counts differ: %d/%d vs %d/%d", a.Runs, a.Skipped, b.Runs, b.Skipped)
	}
	if !reflect.DeepEqual(a.Sources, b.Sources) {
		t.Fatalf("source stats differ:\n%+v\n%+v", a.Sources, b.Sources)
	}
	if len(a.Failures) != len(b.Failures) {
		t.Fatalf("failure counts differ: %d vs %d", len(a.Failures), len(b.Failures))
	}
	for i := range a.Failures {
		if a.Failures[i].String() != b.Failures[i].String() {
			t.Fatalf("failure %d differs:\n%s\n%s", i, a.Failures[i], b.Failures[i])
		}
	}
}

// TestCleanCampaignRecoverable runs a full default campaign against a correct
// recoverable lock and expects zero failures under the default oracles.
func TestCleanCampaignRecoverable(t *testing.T) {
	cfg := mutex.Config{Procs: 2, Width: 8, Model: sim.CC, Algorithm: rspin.New()}
	rep, err := Campaign{Session: cfg, Seed: 3,
		Sources: DefaultSources(true, 3, testing.Short())}.Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if !rep.Ok() {
		t.Fatalf("clean algorithm failed %d runs; first: %s", len(rep.Failures), rep.Failures[0])
	}
	if rep.Runs == 0 || len(rep.Sources) == 0 {
		t.Fatalf("campaign ran nothing: %+v", rep)
	}
}

// TestCleanCampaignNonRecoverable checks the crash-free random axis against a
// non-recoverable lock.
func TestCleanCampaignNonRecoverable(t *testing.T) {
	cfg := mutex.Config{Procs: 3, Width: 8, Model: sim.CC, Algorithm: tas.New()}
	rep, err := Campaign{Session: cfg, Seed: 5}.Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if !rep.Ok() {
		t.Fatalf("clean algorithm failed: %s", rep.Failures[0])
	}
}

// TestCrashSourcesRejectedForNonRecoverable checks the configuration guard.
func TestCrashSourcesRejectedForNonRecoverable(t *testing.T) {
	cfg := mutex.Config{Procs: 2, Width: 8, Model: sim.CC, Algorithm: tas.New()}
	_, err := Campaign{Session: cfg, Sources: []Source{ExhaustiveCrashes{Crashes: 1}}}.Run()
	if err == nil || !strings.Contains(err.Error(), "not recoverable") {
		t.Fatalf("want not-recoverable error, got %v", err)
	}
}

// TestFailFastSkipsRuns checks that FailFast stops launching after a failure
// and the skipped runs are accounted.
func TestFailFastSkipsRuns(t *testing.T) {
	cfg := mutex.Config{Procs: 2, Width: 8, Model: sim.CC, Algorithm: NewBroken()}
	rep, err := Campaign{Session: cfg, Seed: 7, Parallel: 1, FailFast: true}.Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if rep.Ok() {
		t.Fatal("fail-fast campaign found no failures")
	}
	if rep.Skipped == 0 {
		t.Fatalf("fail-fast skipped nothing (runs=%d)", rep.Runs)
	}
}

// TestSourcePlanGeneration pins the plan grids the sources derive from a
// synthetic probe.
func TestSourcePlanGeneration(t *testing.T) {
	pr := Probe{Steps: 10, RMRAt: []int{2, 5}}

	if got := len((ExhaustiveCrashes{Crashes: 1}).Plans(pr)); got != 10 {
		t.Errorf("exhaustive-single plans = %d, want 10", got)
	}
	if got := len((RMRTargeted{}).Plans(pr)); got != 2 {
		t.Errorf("rmr-targeted plans = %d, want 2", got)
	}
	if got := len((ParkedCrashes{}).Plans(pr)); got != 10 {
		t.Errorf("crash-parked plans = %d, want 10", got)
	}
	if got := len((SystemWideCrashes{}).Plans(pr)); got != 5 {
		t.Errorf("system-wide plans = %d, want 5 (stride 2 over 10)", got)
	}
	for _, pl := range (ExhaustiveCrashes{Crashes: 2}).Plans(pr) {
		if len(pl.Crashes) != 2 || pl.Crashes[0].At >= pl.Crashes[1].At {
			t.Fatalf("double plan not ascending: %s", pl)
		}
	}
	if got := len((ExhaustiveCrashes{Crashes: 2}).Plans(pr)); got == 0 {
		t.Error("exhaustive-double generated no plans")
	}
}

// TestRandomPlansDeterministic checks that the random axis is a pure function
// of its seed, and that different seeds diverge.
func TestRandomPlansDeterministic(t *testing.T) {
	pr := Probe{Steps: 20}
	a := (RandomCrashes{Runs: 8, MaxCrashes: 3, Seed: 42}).Plans(pr)
	b := (RandomCrashes{Runs: 8, MaxCrashes: 3, Seed: 42}).Plans(pr)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := (RandomCrashes{Runs: 8, MaxCrashes: 3, Seed: 43}).Plans(pr)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
	for _, pl := range a {
		if pl.Seed < 0 {
			t.Fatalf("derived seed is negative: %d", pl.Seed)
		}
		for i := 1; i < len(pl.Crashes); i++ {
			if pl.Crashes[i-1].At > pl.Crashes[i].At {
				t.Fatalf("crashes not ascending: %s", pl)
			}
		}
	}
}

// TestPlanAndCrashStrings pins the rendering used in reports.
func TestPlanAndCrashStrings(t *testing.T) {
	cases := []struct {
		pl   Plan
		want string
	}{
		{Plan{Seed: -1}, "rr"},
		{Plan{Seed: -1, Crashes: []Crash{{At: 3, Victim: VictimScheduled}}}, "rr @3:scheduled"},
		{Plan{Seed: -1, Crashes: []Crash{{At: 0, Victim: VictimParked}, {At: 9, Victim: VictimAll}}}, "rr @0:parked @9:all"},
		{Plan{Seed: 41, Crashes: []Crash{{At: 12, Victim: VictimRandom}}}, "seed=41 @12:random"},
		{Plan{Seed: 0, Crashes: []Crash{{At: 4, Victim: 2}}}, "seed=0 @4:p2"},
	}
	for _, c := range cases {
		if got := c.pl.String(); got != c.want {
			t.Errorf("Plan%+v.String() = %q, want %q", c.pl, got, c.want)
		}
	}
}

// TestOraclesOnSyntheticOutcomes unit-tests the oracle decision logic.
func TestOraclesOnSyntheticOutcomes(t *testing.T) {
	cfg := mutex.Config{Procs: 2, Passes: 1}
	clean := &Outcome{Cfg: cfg, AllDone: true, CompletedPasses: []int{1, 1}}
	if d := (Reentry{}).Check(clean); d != "" {
		t.Errorf("reentry fired on clean outcome: %s", d)
	}
	abandoned := &Outcome{Cfg: cfg, AllDone: true, CompletedPasses: []int{1, 0}}
	if d := (Reentry{}).Check(abandoned); d == "" {
		t.Error("reentry did not flag an abandoned super-passage")
	}
	// Failed runs belong to DeadlockFree, not Reentry.
	stuck := &Outcome{Cfg: cfg, Err: mutex.ErrStuck, CompletedPasses: []int{0, 0}}
	if d := (Reentry{}).Check(stuck); d != "" {
		t.Errorf("reentry fired on a stuck run: %s", d)
	}
	if d := (DeadlockFree{}).Check(stuck); d == "" {
		t.Error("deadlock-free did not flag a stuck run")
	}
	if d := (DeadlockFree{}).Check(&Outcome{Err: ErrStepBound}); d == "" {
		t.Error("deadlock-free did not flag a bound-exceeded run")
	}
	over := &Outcome{MaxRMRCC: 100, MaxRMRDSM: 10}
	if d := (RMRBudget{CC: 50}).Check(over); d == "" {
		t.Error("rmr-budget did not flag a CC overrun")
	}
	if d := (RMRBudget{CC: 0, DSM: 50}).Check(over); d != "" {
		t.Errorf("disabled CC budget fired: %s", d)
	}
	if d := (MutualExclusion{}).Check(&Outcome{Violations: []string{"boom"}}); d != "boom" {
		t.Errorf("mutual-exclusion detail = %q", d)
	}
}

// TestDefaultBudgetShape sanity-checks the ceiling table: known algorithms
// get positive budgets, unknown ones get none, and non-local-spin algorithms
// have no DSM ceiling.
func TestDefaultBudgetShape(t *testing.T) {
	if b := DefaultBudget("watree", 16, word.Width(8), sim.CC); b <= 0 {
		t.Errorf("watree budget = %d", b)
	}
	wide := DefaultBudget("watree", 64, word.Width(16), sim.CC)
	bin := DefaultBudget("watree(f=2)", 64, word.Width(16), sim.CC)
	if bin <= wide {
		t.Errorf("fanout-2 budget %d should exceed fanout-w budget %d (deeper tree)", bin, wide)
	}
	if b := DefaultBudget("watree(f=2)+fast", 64, word.Width(16), sim.CC); b != bin {
		t.Errorf("+fast suffix changed the budget: %d vs %d", b, bin)
	}
	if b := DefaultBudget("tas", 4, word.Width(8), sim.DSM); b != 0 {
		t.Errorf("tas DSM budget = %d, want 0 (non-local spinning)", b)
	}
	if b := DefaultBudget("nosuchalg", 4, word.Width(8), sim.CC); b != 0 {
		t.Errorf("unknown algorithm budget = %d, want 0", b)
	}
}

// TestDeriveSeed checks non-negativity and spread.
func TestDeriveSeed(t *testing.T) {
	seen := map[int64]bool{}
	for base := int64(0); base < 4; base++ {
		for i := 0; i < 16; i++ {
			s := deriveSeed(base, i)
			if s < 0 {
				t.Fatalf("deriveSeed(%d, %d) = %d < 0", base, i, s)
			}
			if seen[s] {
				t.Fatalf("deriveSeed collision at (%d, %d)", base, i)
			}
			seen[s] = true
		}
	}
}

// TestErrIsReplayable pins which failure classes the shrinker refuses.
func TestErrIsReplayable(t *testing.T) {
	if errIsReplayable(ErrStepBound) {
		t.Error("step-bound failures must not be replay-shrunk")
	}
	if errIsReplayable(sim.ErrMaxSteps) {
		t.Error("max-steps failures must not be replay-shrunk")
	}
	if !errIsReplayable(nil) || !errIsReplayable(mutex.ErrStuck) {
		t.Error("nil/stuck outcomes are replayable")
	}
}
