package faults

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/word"
)

// Outcome is the observable result of one fault-injected run, snapshotted
// from the session before the engine recycles it. Oracles judge runs only
// through this view, so the same oracle works on campaign runs and on
// shrinker replays of concrete schedules.
type Outcome struct {
	// Cfg is the session configuration (defaults applied).
	Cfg mutex.Config
	// Err is the drive error: nil, mutex.ErrStuck, ErrStepBound, or a
	// machine/driver error.
	Err error
	// Violations are the driver's safety-monitor failures.
	Violations []string
	// Schedule is the concrete executed action sequence.
	Schedule sim.Schedule
	// MaxRMRCC/MaxRMRDSM are the worst per-passage RMR counts observed.
	MaxRMRCC, MaxRMRDSM int
	// CompletedPasses counts non-crash-terminated passages per process.
	CompletedPasses []int
	// AllDone reports whether every process finished its super-passages.
	AllDone bool
}

// snapshot captures the oracle-visible state of a driven session.
func snapshot(s *mutex.Session, driveErr error) *Outcome {
	return &Outcome{
		Cfg:             s.Config(),
		Err:             driveErr,
		Violations:      s.Violations(),
		Schedule:        s.Machine().Schedule(),
		MaxRMRCC:        s.MaxPassageRMRs(sim.CC),
		MaxRMRDSM:       s.MaxPassageRMRs(sim.DSM),
		CompletedPasses: s.CompletedPasses(),
		AllDone:         s.Machine().AllDone(),
	}
}

// Oracle is a pluggable invariant: Check returns "" when the run satisfies
// it, or a one-line diagnosis when it is violated.
type Oracle interface {
	Name() string
	Check(o *Outcome) string
}

// MutualExclusion flags runs on which the driver's safety monitors fired:
// two processes in the critical section at once, including the CSR form
// where a second process enters while a crashed holder still owns the CS.
type MutualExclusion struct{}

// Name identifies the oracle.
func (MutualExclusion) Name() string { return "mutual-exclusion" }

// Check reports the first monitor violation.
func (MutualExclusion) Check(o *Outcome) string {
	if len(o.Violations) > 0 {
		return o.Violations[0]
	}
	return ""
}

// DeadlockFree flags runs that wedged (no process could be scheduled) or
// exceeded the campaign's decision bound — the bounded operational form of
// the paper's deadlock-freedom liveness property.
type DeadlockFree struct{}

// Name identifies the oracle.
func (DeadlockFree) Name() string { return "deadlock-free" }

// Check reports stuck and bound-exceeded runs.
func (DeadlockFree) Check(o *Outcome) string {
	switch {
	case errors.Is(o.Err, mutex.ErrStuck):
		return fmt.Sprintf("execution stuck after %d actions (all live processes parked)", len(o.Schedule))
	case errors.Is(o.Err, ErrStepBound):
		return fmt.Sprintf("no completion within the decision bound (%d actions executed)", len(o.Schedule))
	case errors.Is(o.Err, sim.ErrMaxSteps):
		return fmt.Sprintf("machine step limit exceeded (%d actions executed)", len(o.Schedule))
	}
	return ""
}

// Reentry flags completed runs in which a process failed to finish all its
// super-passages — a crashed process that abandoned its interrupted
// super-passage instead of recovering, the completion half of the
// critical-section re-entry property.
type Reentry struct{}

// Name identifies the oracle.
func (Reentry) Name() string { return "cs-reentry" }

// Check verifies per-process super-passage completion on clean runs.
func (Reentry) Check(o *Outcome) string {
	if o.Err != nil {
		return "" // DeadlockFree owns failed runs
	}
	if !o.AllDone {
		return fmt.Sprintf("drive returned with unfinished processes after %d actions", len(o.Schedule))
	}
	for p, c := range o.CompletedPasses {
		if c < o.Cfg.Passes {
			return fmt.Sprintf("p%d completed %d super-passages, want %d (super-passage abandoned after a crash)",
				p, c, o.Cfg.Passes)
		}
	}
	return ""
}

// RMRBudget flags runs whose worst per-passage RMR count exceeds a ceiling.
// A ceiling of 0 disables the corresponding model's check.
type RMRBudget struct {
	CC, DSM int
}

// Name identifies the oracle.
func (b RMRBudget) Name() string { return "rmr-budget" }

// Check compares the run's worst passage against the ceilings.
func (b RMRBudget) Check(o *Outcome) string {
	if b.CC > 0 && o.MaxRMRCC > b.CC {
		return fmt.Sprintf("max passage cost %d CC-RMRs exceeds budget %d", o.MaxRMRCC, b.CC)
	}
	if b.DSM > 0 && o.MaxRMRDSM > b.DSM {
		return fmt.Sprintf("max passage cost %d DSM-RMRs exceeds budget %d", o.MaxRMRDSM, b.DSM)
	}
	return ""
}

// DefaultBudget returns the per-passage RMR ceiling asserted for a known
// algorithm at the given scale, or 0 (no budget) for algorithms without an
// established bound under the model. The ceilings are the paper's asymptotic
// bounds with generous constant headroom — they catch complexity
// regressions (a passage suddenly costing Θ(n) on a tree lock), not
// off-by-one tuning.
func DefaultBudget(alg string, n int, w word.Width, model sim.Model) int {
	log2 := word.CeilLog(2, n) + 1 // +1 guards the log = 0 edge at small n
	if rest, ok := strings.CutPrefix(alg, "watree"); ok {
		// Θ(log_f n) climb for fan-out f; crashes restart one level and the
		// fast path adds O(1). Names are "watree", "watree(f=K)", "...+fast";
		// the default fan-out is min(w, n).
		f := min(int(w), n)
		rest = strings.TrimSuffix(rest, "+fast")
		if v, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(rest, "(f="), ")")); err == nil && v >= 2 {
			f = v
		}
		if f < 2 {
			f = 2
		}
		return 16*(word.CeilLog(f, n)+1) + 24
	}
	switch alg {
	case "qword":
		// Queue-word lock: O(1) enqueue plus a bounded handoff.
		return 64
	case "rspin", "grlock":
		// Recoverable spin/GR locks: O(n) handoff chains under contention.
		return 24*n + 64
	case "ticket", "tas":
		// Ticket/TAS: Θ(n) invalidation storms per handoff in CC; DSM
		// unbounded (non-local spinning), so no DSM budget.
		if model == sim.DSM {
			return 0
		}
		return 24*n + 64
	case "mcs", "clh":
		// Queue locks: O(1) per passage.
		return 48
	case "tournament", "yatree":
		// Binary arbitration trees: Θ(log n).
		return 16*log2 + 24
	default:
		return 0
	}
}

// DefaultOracles is the standard invariant set: mutual exclusion, bounded
// deadlock-freedom, re-entry completion, and — when budget ceilings are
// known for the algorithm — RMR budgets under both models.
func DefaultOracles(alg mutex.Algorithm, n int, w word.Width) []Oracle {
	oracles := []Oracle{MutualExclusion{}, DeadlockFree{}, Reentry{}}
	cc := DefaultBudget(alg.Name(), n, w, sim.CC)
	dsm := DefaultBudget(alg.Name(), n, w, sim.DSM)
	if cc > 0 || dsm > 0 {
		oracles = append(oracles, RMRBudget{CC: cc, DSM: dsm})
	}
	return oracles
}
