package faults

import (
	"errors"
	"fmt"

	"rme/internal/engine"
	"rme/internal/mutex"
	"rme/internal/sim"
)

// Shrink delta-debugs a failing concrete schedule down to a minimal
// reproducer: the shortest action sequence it can find (within maxReplays
// candidate replays) that still violates the same oracle. The reduction has
// three phases — truncate to the earliest failing prefix, greedily drop
// crash steps (the paper's executions are judged by where crashes land, so
// a reproducer with fewer crashes is strictly more telling), then
// ddmin-style chunk removal over the remaining actions. Every candidate is
// validated by replay on a recycled engine worker; candidates whose actions
// no longer apply (a removed step changed who is poised) simply don't
// count as failing. The returned schedule replays byte-identically: apply
// it to a fresh session of the same configuration and the same oracle
// fires.
func Shrink(cfg mutex.Config, sched sim.Schedule, oracle Oracle, maxReplays int) (sim.Schedule, int) {
	if maxReplays <= 0 {
		maxReplays = 400
	}
	w := engine.NewWorker()
	defer w.Close()
	sh := &shrinker{cfg: cfg, oracle: oracle, worker: w, budget: maxReplays}

	// Phase 1: truncate to the earliest failing prefix (monotone oracles
	// fire mid-replay; end-state oracles keep the full length).
	cur, ok := sh.failingPrefix(sched)
	if !ok {
		// The schedule does not reproduce under this oracle (flaky capture
		// or replay-hostile failure, e.g. a decision-bound timeout); report
		// it unshrunk.
		return sched, sh.replays
	}

	// Phase 2: drop crash steps one at a time until none can go.
	cur = sh.dropCrashes(cur)

	// Phase 3: ddmin chunk removal over all actions.
	cur = sh.ddmin(cur)
	return cur, sh.replays
}

type shrinker struct {
	cfg     mutex.Config
	oracle  Oracle
	worker  *engine.Worker
	replays int
	budget  int
}

func (sh *shrinker) spent() bool { return sh.replays >= sh.budget }

// failingPrefix replays sched, checking the oracle after every action, and
// returns the shortest failing prefix (or sched itself if the oracle only
// fires on the end state). ok is false when the full replay never fails.
func (sh *shrinker) failingPrefix(sched sim.Schedule) (sim.Schedule, bool) {
	sh.replays++
	s, err := sh.worker.Session(sh.cfg)
	if err != nil {
		return sched, false
	}
	defer sh.worker.Release(s)
	for i, act := range sched {
		if !applyAction(s, act) {
			return sched, false
		}
		// Mid-replay state: neither done nor stuck counts as partial.
		if detail := sh.oracle.Check(replayOutcome(s, false)); detail != "" {
			return sched[:i+1].Clone(), true
		}
	}
	return sched.Clone(), sh.oracle.Check(replayOutcome(s, true)) != ""
}

// dropCrashes greedily removes crash actions (latest first, so recovery
// suffixes disappear before the crashes that caused them) until no single
// crash can be removed without losing the failure.
func (sh *shrinker) dropCrashes(sched sim.Schedule) sim.Schedule {
	for {
		removed := false
		for i := len(sched) - 1; i >= 0; i-- {
			if !sched[i].Crash || sh.spent() {
				continue
			}
			cand := without(sched, i, i+1)
			if next, ok := sh.fails(cand); ok {
				sched = next
				removed = true
				break
			}
		}
		if !removed {
			return sched
		}
	}
}

// ddmin is the classic delta-debugging reduction: try removing chunks at
// decreasing granularity until the schedule is 1-minimal with respect to
// chunk removal (or the replay budget runs out).
func (sh *shrinker) ddmin(sched sim.Schedule) sim.Schedule {
	gran := 2
	for len(sched) > 1 && !sh.spent() {
		chunk := (len(sched) + gran - 1) / gran
		reduced := false
		for start := 0; start < len(sched); start += chunk {
			if sh.spent() {
				break
			}
			end := start + chunk
			if end > len(sched) {
				end = len(sched)
			}
			cand := without(sched, start, end)
			if len(cand) == 0 {
				continue
			}
			if next, ok := sh.fails(cand); ok {
				sched = next
				gran = 2
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		if chunk <= 1 {
			return sched
		}
		gran *= 2
		if gran > len(sched) {
			gran = len(sched)
		}
	}
	return sched
}

// fails replays a candidate and reports whether the oracle fires; on
// failure it returns the candidate truncated to its earliest failing
// prefix (a removal that makes the violation happen sooner shrinks for
// free).
func (sh *shrinker) fails(cand sim.Schedule) (sim.Schedule, bool) {
	sh.replays++
	s, err := sh.worker.Session(sh.cfg)
	if err != nil {
		return nil, false
	}
	defer sh.worker.Release(s)
	for i, act := range cand {
		if !applyAction(s, act) {
			return nil, false
		}
		if detail := sh.oracle.Check(replayOutcome(s, false)); detail != "" {
			return cand[:i+1].Clone(), true
		}
	}
	if sh.oracle.Check(replayOutcome(s, true)) != "" {
		return cand, true
	}
	return nil, false
}

// applyAction delivers one schedule action, reporting false when it no
// longer applies (the candidate diverged from the captured execution).
func applyAction(s *mutex.Session, act sim.Action) bool {
	var err error
	if act.Crash {
		_, err = s.CrashProc(act.Proc)
	} else {
		if !s.Machine().Poised(act.Proc) {
			// Steps in captured schedules always hit poised processes; a
			// parked re-probe here means the candidate diverged.
			return false
		}
		_, err = s.StepProc(act.Proc)
	}
	return err == nil
}

// replayOutcome snapshots a session mid- or post-replay for oracle checks.
// End-state semantics (stuck / partial classification) only apply when the
// candidate has been fully applied.
func replayOutcome(s *mutex.Session, atEnd bool) *Outcome {
	var err error
	if atEnd {
		m := s.Machine()
		switch {
		case m.AllDone():
			err = nil
		case m.Stuck():
			err = mutex.ErrStuck
		default:
			err = errPartial
		}
	} else {
		err = errPartial
	}
	return snapshot(s, err)
}

// Replay applies a concrete schedule to a fresh session of the given
// configuration and returns the outcome — the verification half of the
// "(seed, schedule) reproduces the violation" contract. It errors if an
// action no longer applies, which means the schedule does not belong to
// this configuration.
func Replay(cfg mutex.Config, sched sim.Schedule) (*Outcome, error) {
	cfg.NoTrace = true
	s, err := mutex.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	for i, act := range sched {
		if !applyAction(s, act) {
			return nil, fmt.Errorf("faults: action %d (%s) does not apply", i, act)
		}
	}
	return replayOutcome(s, true), nil
}

// ReplayTraced is Replay with event retention: it returns the replay's full
// step-level trace alongside the outcome. Campaigns force NoTrace for
// throughput, so this is how a failure's shrunken reproducer (or the probe
// run) gets its per-access story back for export (rmefault -trace).
func ReplayTraced(cfg mutex.Config, sched sim.Schedule) ([]sim.Event, *Outcome, error) {
	cfg.NoTrace = false
	s, err := mutex.NewSession(cfg)
	if err != nil {
		return nil, nil, err
	}
	defer s.Close()
	for i, act := range sched {
		if !applyAction(s, act) {
			return nil, nil, fmt.Errorf("faults: action %d (%s) does not apply", i, act)
		}
	}
	events := append([]sim.Event(nil), s.Machine().Trace()...)
	return events, replayOutcome(s, true), nil
}

// without returns sched with [start, end) removed.
func without(sched sim.Schedule, start, end int) sim.Schedule {
	out := make(sim.Schedule, 0, len(sched)-(end-start))
	out = append(out, sched[:start]...)
	return append(out, sched[end:]...)
}

// errIsReplayable reports whether a drive error class reproduces under
// concrete-schedule replay (decision-bound timeouts do not: the bound is a
// property of the driving policy, not of the schedule).
func errIsReplayable(err error) bool {
	return !errors.Is(err, ErrStepBound) && !errors.Is(err, sim.ErrMaxSteps)
}
