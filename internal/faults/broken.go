package faults

import (
	"fmt"

	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/word"
)

// BrokenTAS is an intentionally crash-unsafe lock used to validate the
// campaign engine end to end: a test-and-set lock that claims to be
// recoverable but whose recover protocol forgets lock ownership. Lock
// installs the caller's id; Recover reads the lock word and, on finding its
// own id, "helpfully" clears it and reports RecoverIdle — abandoning the
// critical section it still owns. A crash inside the CS therefore lets the
// next contender acquire while the crashed holder is, per the CSR property,
// still the owner: a mutual exclusion violation the monitors flag on the
// spot. A single crash under round-robin escapes detection (the crashed
// holder happens to win the re-acquire race), but the double-crash and
// system-wide axes expose it, and the shrinker reduces the evidence to a
// handful of actions.
type BrokenTAS struct{}

var _ mutex.Algorithm = BrokenTAS{}

// NewBroken returns the crash-unsafe fixture algorithm.
func NewBroken() BrokenTAS { return BrokenTAS{} }

// Name identifies the fixture.
func (BrokenTAS) Name() string { return "broken-tas" }

// Recoverable reports true — incorrectly, which is the point.
func (BrokenTAS) Recoverable() bool { return true }

// Make allocates the single lock word (0 = free, p+1 = held by p).
func (BrokenTAS) Make(mem memory.Allocator, n int) (mutex.Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("broken-tas: need at least 1 process, got %d", n)
	}
	return &brokenInstance{lock: mem.NewCell("broken.lock", memory.Shared, 0)}, nil
}

type brokenInstance struct {
	lock memory.Cell
}

var _ mutex.Instance = (*brokenInstance)(nil)

func (in *brokenInstance) Bind(env memory.Env) mutex.Handle {
	return &brokenHandle{env: env, lock: in.lock, me: word.Word(env.ID() + 1)}
}

type brokenHandle struct {
	env  memory.Env
	lock memory.Cell
	me   word.Word
}

var _ mutex.Handle = (*brokenHandle)(nil)

// Lock spins until its CAS from 0 to the caller's id succeeds.
func (h *brokenHandle) Lock() {
	for {
		if h.env.CAS(h.lock, 0, h.me) == 0 {
			return
		}
		h.env.SpinUntil(h.lock, func(v word.Word) bool { return v == 0 })
	}
}

// Unlock releases the lock.
func (h *brokenHandle) Unlock() {
	h.env.Write(h.lock, 0)
}

// Recover is the bug: a correct implementation would return RecoverAcquired
// when the lock word holds its id (the crash hit the CS or the end of
// entry). This one clears the lock and denies any super-passage was in
// progress.
func (h *brokenHandle) Recover() mutex.RecoverStatus {
	if h.env.Read(h.lock) == h.me {
		h.env.Write(h.lock, 0)
	}
	return mutex.RecoverIdle
}
