package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"rme/internal/mutex"
	"rme/internal/sim"
)

// Victim selection modes for a planned crash. Non-negative victims name a
// process id directly; the modes below resolve against the live execution at
// injection time (deterministically, so plans replay byte-identically).
const (
	// VictimScheduled crashes the process the scheduler was about to step;
	// the crash replaces that step and consumes its decision index — the
	// paper's "about to perform a step, it may instead be forced to perform a
	// crash step".
	VictimScheduled = -1
	// VictimParked crashes the lowest-id parked process, if any (a recovery
	// window the poised-process sweeps cannot reach); the scheduled step
	// still happens.
	VictimParked = -2
	// VictimAll crashes every live process at once — the system-wide failure
	// model the paper contrasts with its individual-crash model (§4).
	VictimAll = -3
	// VictimRandom crashes a uniformly random live process, drawn from the
	// plan's seeded stream (random plans only).
	VictimRandom = -4
)

// Crash is one planned crash injection: at scheduler decision index At,
// crash Victim (a process id or a Victim* mode) instead of / in addition to
// the scheduled step.
type Crash struct {
	At     int `json:"at"`
	Victim int `json:"victim"`
}

// String renders the crash compactly ("@17:scheduled", "@4:p2", "@9:all").
func (c Crash) String() string {
	switch c.Victim {
	case VictimScheduled:
		return fmt.Sprintf("@%d:scheduled", c.At)
	case VictimParked:
		return fmt.Sprintf("@%d:parked", c.At)
	case VictimAll:
		return fmt.Sprintf("@%d:all", c.At)
	case VictimRandom:
		return fmt.Sprintf("@%d:random", c.At)
	default:
		return fmt.Sprintf("@%d:p%d", c.At, c.Victim)
	}
}

// Plan is one replayable fault-injected run: a deterministic base scheduling
// policy (round-robin, or seeded-random when Seed >= 0) plus crash
// injections at decision indices. A Plan plus a mutex.Config fully
// determines the execution, so every campaign failure reproduces from the
// plan alone; the concrete sim.Schedule the run produced is what the
// shrinker then minimizes.
type Plan struct {
	// Seed selects the base policy: < 0 is round-robin, >= 0 drives a
	// seeded-random scheduler (the stream also resolves VictimRandom picks).
	Seed int64 `json:"seed"`
	// Crashes are the planned injections, ascending by At.
	Crashes []Crash `json:"crashes,omitempty"`
}

// String renders the plan ("rr @3:scheduled @9:parked" / "seed=41 @12:random").
func (pl Plan) String() string {
	var b strings.Builder
	if pl.Seed < 0 {
		b.WriteString("rr")
	} else {
		fmt.Fprintf(&b, "seed=%d", pl.Seed)
	}
	for _, c := range pl.Crashes {
		b.WriteByte(' ')
		b.WriteString(c.String())
	}
	return b.String()
}

// Crashy reports whether the plan injects any crash.
func (pl Plan) Crashy() bool { return len(pl.Crashes) > 0 }

// ErrStepBound reports that a run exceeded the campaign's decision bound
// without finishing — the operational form of a deadlock-freedom violation
// (either a true deadlock that parks nobody, or a livelock).
var ErrStepBound = errors.New("faults: decision bound exceeded (livelock or starvation)")

// drive executes the plan on a fresh session, stopping after bound
// scheduler decisions. It returns nil on a completed run; mutex.ErrStuck,
// ErrStepBound, or a machine error otherwise. Safety violations are not
// errors here — the oracles read them from the session afterwards. observe,
// when non-nil, is called with every stepped decision's event (the probe
// uses it to map decision indices to RMR-incurring steps).
func (pl Plan) drive(s *mutex.Session, bound int, observe func(decision int, ev sim.Event)) error {
	pending := make(map[int][]int, len(pl.Crashes)) // decision -> victims
	for _, c := range pl.Crashes {
		pending[c.At] = append(pending[c.At], c.Victim)
	}
	var rng *rand.Rand
	if pl.Seed >= 0 {
		rng = rand.New(rand.NewSource(pl.Seed))
	}
	m := s.Machine()
	decision := 0
	for !m.AllDone() {
		if decision >= bound {
			return ErrStepBound
		}
		poised := m.PoisedProcs()
		if len(poised) == 0 {
			return mutex.ErrStuck
		}
		// Pick the process to step: seeded-random, or round-robin (the first
		// poised process by id; combined with the sweep-free loop this is the
		// lowest-id-first fair policy, which visits every process because
		// stepping p usually re-poises a successor).
		var p int
		if rng != nil {
			p = poised[rng.Intn(len(poised))]
		} else {
			p = poised[decision%len(poised)]
		}
		victims, planned := pending[decision]
		if planned {
			delete(pending, decision)
			stepConsumed, err := pl.inject(s, victims, p, rng)
			if err != nil {
				return err
			}
			if stepConsumed {
				decision++
				continue
			}
			if !m.Poised(p) {
				// The injection crashed (or woke) the chosen process; the
				// decision still counts, but there is nothing left to step.
				decision++
				continue
			}
		}
		ev, err := s.StepProc(p)
		if err != nil {
			return err
		}
		if observe != nil {
			observe(decision, ev)
		}
		decision++
	}
	return nil
}

// inject delivers the planned crashes for one decision. It reports whether
// the injection consumed the decision's step (VictimScheduled replaces it).
func (pl Plan) inject(s *mutex.Session, victims []int, scheduled int, rng *rand.Rand) (bool, error) {
	m := s.Machine()
	consumed := false
	for _, v := range victims {
		switch v {
		case VictimScheduled:
			if _, err := s.CrashProc(scheduled); err != nil {
				return consumed, err
			}
			consumed = true
		case VictimParked:
			for q := 0; q < s.Config().Procs; q++ {
				if !m.ProcDone(q) && m.Parked(q) {
					if _, err := s.CrashProc(q); err != nil {
						return consumed, err
					}
					break
				}
			}
		case VictimAll:
			if err := s.CrashAllProcs(); err != nil {
				return consumed, err
			}
		case VictimRandom:
			if rng == nil {
				return consumed, fmt.Errorf("faults: VictimRandom in a round-robin plan")
			}
			var live []int
			for q := 0; q < s.Config().Procs; q++ {
				if !m.ProcDone(q) {
					live = append(live, q)
				}
			}
			if len(live) == 0 {
				continue
			}
			if _, err := s.CrashProc(live[rng.Intn(len(live))]); err != nil {
				return consumed, err
			}
		default:
			if v < 0 || v >= s.Config().Procs {
				return consumed, fmt.Errorf("faults: crash victim %d out of range", v)
			}
			if m.ProcDone(v) {
				continue // the victim already finished; nothing to crash
			}
			if _, err := s.CrashProc(v); err != nil {
				return consumed, err
			}
		}
	}
	return consumed, nil
}

// sortCrashes orders a plan's crashes ascending by decision index (stable on
// ties), the canonical form sources must emit.
func sortCrashes(cs []Crash) {
	sort.SliceStable(cs, func(i, j int) bool { return cs[i].At < cs[j].At })
}
