package engine

import (
	"errors"
	"fmt"
	"testing"

	"rme/internal/algorithms/mcs"
	"rme/internal/algorithms/watree"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/word"
)

// gridSpecs builds a mixed grid: two algorithms, several (n, w) points,
// both models — the shape the harness submits.
func gridSpecs() []RunSpec {
	var specs []RunSpec
	for _, alg := range []mutex.Algorithm{watree.New(), mcs.New()} {
		for _, n := range []int{2, 4, 8} {
			for _, w := range []word.Width{8, 16} {
				specs = append(specs, RunSpec{Session: mutex.Config{
					Procs: n, Width: w, Model: sim.CC, Algorithm: alg, Passes: 2, NoTrace: true,
				}})
			}
		}
	}
	return specs
}

func resultKey(rs []Result) string {
	out := ""
	for _, r := range rs {
		out += fmt.Sprintf("%d: cc=%d dsm=%d tcc=%d tdsm=%d steps=%d viol=%d err=%v\n",
			r.Index, r.MaxRMRCC, r.MaxRMRDSM, r.TotalRMRCC, r.TotalRMRDSM,
			r.Steps, len(r.Violations), r.Err)
	}
	return out
}

// TestRunDeterministicAcrossParallelism is the engine's core guarantee:
// identical results, in submission order, at any parallelism level.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	specs := gridSpecs()
	want := resultKey(Run(specs, Options{Parallel: 1}))
	for _, par := range []int{2, 4, 8} {
		got := resultKey(Run(specs, Options{Parallel: par}))
		if got != want {
			t.Errorf("parallel=%d diverges from parallel=1:\n--- 1 ---\n%s--- %d ---\n%s",
				par, want, par, got)
		}
	}
}

// TestRunMatchesDirectSessions checks the engine against hand-rolled
// session runs.
func TestRunMatchesDirectSessions(t *testing.T) {
	specs := gridSpecs()
	results := Run(specs, Options{Parallel: 4})
	for i, spec := range specs {
		s, err := mutex.NewSession(spec.Session)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunRoundRobin(); err != nil {
			t.Fatal(err)
		}
		r := results[i]
		if r.Err != nil {
			t.Fatalf("spec %d: %v", i, r.Err)
		}
		if r.Index != i {
			t.Errorf("spec %d: Index = %d", i, r.Index)
		}
		if r.MaxRMRCC != s.MaxPassageRMRs(sim.CC) || r.MaxRMRDSM != s.MaxPassageRMRs(sim.DSM) {
			t.Errorf("spec %d: max RMRs (%d, %d) != direct (%d, %d)", i,
				r.MaxRMRCC, r.MaxRMRDSM, s.MaxPassageRMRs(sim.CC), s.MaxPassageRMRs(sim.DSM))
		}
		if r.Steps != s.Machine().Steps() {
			t.Errorf("spec %d: steps %d != direct %d", i, r.Steps, s.Machine().Steps())
		}
		s.Close()
	}
}

// TestWorkerReuse: a released compatible session is recycled, not rebuilt.
func TestWorkerReuse(t *testing.T) {
	cfg := mutex.Config{Procs: 4, Width: 16, Model: sim.CC, Algorithm: watree.New(), NoTrace: true}
	w := NewWorker()
	defer w.Close()

	s1, err := w.Session(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.RunRoundRobin(); err != nil {
		t.Fatal(err)
	}
	w.Release(s1)
	s2, err := w.Session(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s1 {
		t.Error("compatible session was not reused")
	}
	if err := s2.RunRoundRobin(); err != nil {
		t.Fatalf("reused session run: %v", err)
	}
	w.Release(s2)

	// Incompatible request: a new session must be built.
	other := cfg
	other.Procs = 8
	s3, err := w.Session(other)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Error("incompatible session was reused")
	}
	w.Release(s3)
}

// TestWorkerReuseEquivalence: a recycled session produces the same
// measurements as a fresh one, run after run.
func TestWorkerReuseEquivalence(t *testing.T) {
	cfg := mutex.Config{Procs: 6, Width: 8, Model: sim.CC, Algorithm: watree.New(), Passes: 2, NoTrace: true}
	fresh, err := mutex.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if err := fresh.RunRoundRobin(); err != nil {
		t.Fatal(err)
	}
	wantCC, wantDSM := fresh.MaxPassageRMRs(sim.CC), fresh.MaxPassageRMRs(sim.DSM)
	wantSteps := fresh.Machine().Steps()

	w := NewWorker()
	defer w.Close()
	for cycle := 0; cycle < 3; cycle++ {
		s, err := w.Session(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunRoundRobin(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if s.MaxPassageRMRs(sim.CC) != wantCC || s.MaxPassageRMRs(sim.DSM) != wantDSM ||
			s.Machine().Steps() != wantSteps {
			t.Errorf("cycle %d: (%d, %d, %d) != fresh (%d, %d, %d)", cycle,
				s.MaxPassageRMRs(sim.CC), s.MaxPassageRMRs(sim.DSM), s.Machine().Steps(),
				wantCC, wantDSM, wantSteps)
		}
		w.Release(s)
	}
}

// TestRunDriveAndCollect exercises custom drives (seeded randomness) and
// payload collection.
func TestRunDriveAndCollect(t *testing.T) {
	var specs []RunSpec
	for seed := 0; seed < 6; seed++ {
		seed := seed
		specs = append(specs, RunSpec{
			Session: mutex.Config{Procs: 3, Width: 16, Model: sim.CC, Algorithm: mcs.New(), NoTrace: true},
			Drive: func(s *mutex.Session) error {
				return s.RunRandom(int64(seed), mutex.RandomRunOptions{})
			},
			Collect: func(s *mutex.Session) (interface{}, error) {
				return s.CSOrder(), nil
			},
		})
	}
	a := Run(specs, Options{Parallel: 1})
	b := Run(specs, Options{Parallel: 3})
	for i := range a {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatalf("spec %d: errs %v / %v", i, a[i].Err, b[i].Err)
		}
		if fmt.Sprint(a[i].Payload) != fmt.Sprint(b[i].Payload) {
			t.Errorf("spec %d: payload %v != %v", i, a[i].Payload, b[i].Payload)
		}
	}
}

// TestRunReportsErrors: a failing construction yields a per-result error
// without disturbing its neighbours.
func TestRunReportsErrors(t *testing.T) {
	specs := []RunSpec{
		{Session: mutex.Config{Procs: 2, Width: 16, Model: sim.CC, Algorithm: mcs.New(), NoTrace: true}},
		{Session: mutex.Config{Procs: 0, Width: 16, Model: sim.CC, Algorithm: mcs.New()}}, // invalid
		{Session: mutex.Config{Procs: 2, Width: 16, Model: sim.CC, Algorithm: mcs.New(), NoTrace: true}},
	}
	res := Run(specs, Options{Parallel: 2})
	if res[0].Err != nil || res[2].Err != nil {
		t.Errorf("healthy specs failed: %v / %v", res[0].Err, res[2].Err)
	}
	if res[1].Err == nil {
		t.Error("invalid spec did not fail")
	}
}

// TestForEachLowestError: the reported failure is index-deterministic.
func TestForEachLowestError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	err := ForEach(16, 8, func(i int) error {
		switch i {
		case 11:
			return errB
		case 5:
			return errA
		}
		return nil
	})
	if err != errA {
		t.Errorf("ForEach error = %v, want %v", err, errA)
	}
	if err := ForEach(4, 2, func(int) error { return nil }); err != nil {
		t.Errorf("ForEach clean = %v", err)
	}
}

// TestMetrics accumulates across parallel runs.
func TestMetrics(t *testing.T) {
	m := &Metrics{}
	specs := gridSpecs()
	Run(specs, Options{Parallel: 4, Metrics: m})
	snap := m.Snapshot()
	if snap.Runs != int64(len(specs)) {
		t.Errorf("Runs = %d, want %d", snap.Runs, len(specs))
	}
	if snap.MaxRMR <= 0 || snap.AvgMaxRMR <= 0 || snap.Steps <= 0 {
		t.Errorf("degenerate snapshot: %+v", snap)
	}
}

// TestStopOnSkipsRemainingRuns checks the fail-fast hook: once StopOn fires,
// later submissions are marked Skipped instead of executed.
func TestStopOnSkipsRemainingRuns(t *testing.T) {
	specs := gridSpecs()
	stopAt := 2
	results := Run(specs, Options{Parallel: 1, StopOn: func(r Result) bool {
		return r.Index == stopAt
	}})
	if len(results) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(results), len(specs))
	}
	for i, r := range results {
		if i <= stopAt && r.Skipped {
			t.Errorf("run %d skipped before the stop condition fired", i)
		}
		if i > stopAt && !r.Skipped {
			t.Errorf("run %d executed after the stop condition fired", i)
		}
		if r.Index != i {
			t.Errorf("run %d: Index = %d", i, r.Index)
		}
	}
}

// TestStopOnNeverFiringChangesNothing checks that a StopOn that never
// matches leaves the results identical to a plain run.
func TestStopOnNeverFiringChangesNothing(t *testing.T) {
	specs := gridSpecs()
	plain := resultKey(Run(specs, Options{Parallel: 4}))
	hooked := resultKey(Run(specs, Options{Parallel: 4, StopOn: func(Result) bool { return false }}))
	if plain != hooked {
		t.Fatalf("StopOn changed results:\n--- plain ---\n%s--- hooked ---\n%s", plain, hooked)
	}
}
