// Package engine is the execution layer between the simulator/driver stack
// and everything that launches simulation runs: experiment grids, the model
// checker, the lower-bound adversary's replay machinery, and the CLIs.
//
// It contributes two things the callers used to hand-roll:
//
//   - Reuse. A Worker checks sessions out and back in; a released session
//     whose configuration matches the next request is Reset (alloc-free cell
//     rollback, sim.Machine.Reset) instead of rebuilt, which removes the
//     dominant construction cost from replay-heavy workloads (the checker
//     rebuilds the same configuration for every DFS branch, the adversary
//     for every erasure audit).
//
//   - Parallelism with determinism. Run executes a batch of RunSpecs on a
//     pool of workers — one live machine per worker — and merges results in
//     submission order regardless of completion order, so a table rendered
//     from the results is byte-identical at any parallelism level,
//     including 1.
package engine

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/telemetry"
	"rme/internal/trace"
)

// RunSpec describes one simulation run: a session construction plus how to
// drive it.
type RunSpec struct {
	// Session is the machine/algorithm configuration.
	Session mutex.Config
	// Label names the run in trace exports; empty means the algorithm name.
	Label string
	// Drive executes the run; nil means Session.RunRoundRobin. It must be
	// deterministic (seed any randomness from the spec itself) or the
	// engine's byte-identical-at-any-parallelism guarantee is void.
	Drive func(*mutex.Session) error
	// Collect extracts an experiment-specific payload from the completed
	// session into Result.Payload; optional. It runs on the worker before
	// the session is recycled, so it must not retain the session.
	Collect func(*mutex.Session) (interface{}, error)
}

// Result is the outcome of one RunSpec, in submission order
// (Result[i].Index == i always).
type Result struct {
	// Index is the spec's position in the submitted batch.
	Index int
	// MaxRMRCC/MaxRMRDSM are the worst per-passage RMR counts under each
	// model; TotalRMRCC/TotalRMRDSM sum over all processes.
	MaxRMRCC, MaxRMRDSM     int
	TotalRMRCC, TotalRMRDSM int
	// Steps is the executed schedule length.
	Steps int
	// Violations are the safety-monitor failures (empty on a correct run).
	Violations []string
	// Payload is Collect's return value, if a Collect was given.
	Payload interface{}
	// Err is the first error from construction, Drive, or Collect.
	Err error
	// Skipped marks a spec that never ran because an earlier result tripped
	// Options.StopOn; all other fields are zero.
	Skipped bool
}

// MaxRMR returns the worst per-passage RMR count under the given model.
func (r Result) MaxRMR(m sim.Model) int {
	if m == sim.DSM {
		return r.MaxRMRDSM
	}
	return r.MaxRMRCC
}

// TotalRMR returns the total RMR count under the given model.
func (r Result) TotalRMR(m sim.Model) int {
	if m == sim.DSM {
		return r.TotalRMRDSM
	}
	return r.TotalRMRCC
}

// Options tunes a Run.
type Options struct {
	// Parallel is the worker count; <= 0 means GOMAXPROCS.
	Parallel int
	// Metrics, when non-nil, accumulates run counts and RMR statistics
	// across Run calls (used by cmd/rmrbench's machine-readable output).
	Metrics *Metrics
	// Trace, when non-nil, captures every run's full event stream. The batch
	// reserves a contiguous block of submission-order slots up front, so
	// captured runs come back in spec order at any parallelism level.
	// Capturing overrides Session.NoTrace for the duration of the run (the
	// machine must retain events to have a trace to hand over).
	Trace *trace.Capture
	// Telemetry, when non-nil, receives live run statistics: engine_runs /
	// engine_run_errors counters, engine_busy_ns worker busy time,
	// engine_jobs_pending / engine_workers gauges, and the worker pool's
	// engine_session_reuse / engine_session_build counters. Purely
	// observational — results are unaffected.
	Telemetry *telemetry.Registry
	// StopOn, when non-nil, is evaluated on every completed Result (possibly
	// from several worker goroutines at once, so it must be safe for
	// concurrent use); once it returns true, specs that have not started are
	// marked Skipped instead of running (fail-fast campaigns). Which specs complete before the stop
	// lands depends on scheduling, so fail-fast runs trade the byte-identical
	// determinism guarantee for latency; leave StopOn nil to keep it.
	StopOn func(Result) bool
}

// Parallelism resolves a parallelism request: values <= 0 mean GOMAXPROCS.
func Parallelism(p int) int {
	if p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes every spec and returns one Result per spec, index-aligned
// with the input. Specs are distributed over min(Parallel, len(specs))
// workers, each owning at most one live machine; results land in their
// submission slots, so the output order never depends on scheduling.
// Individual failures are reported per-Result, not as a joint error.
//
// Run builds a transient Pool per call; batch-per-round callers (the
// service layer submits one batch per simulated round) should hold a Pool
// so worker sessions survive between batches.
func Run(specs []RunSpec, opts Options) []Result {
	pl := NewPool(opts.Parallel)
	defer pl.Close()
	return pl.Run(specs, opts)
}

// Pool is a persistent worker set. Where Run discards its workers — and
// with them every cached session — when the batch ends, a Pool keeps them
// across Run calls, so a caller submitting many same-shaped batches (the
// lock-service layer runs one engine batch per arrival round) pays session
// construction once per worker instead of once per batch. A Pool's Run has
// the same determinism contract as the package-level Run. Pools are not
// safe for concurrent Run calls.
type Pool struct {
	workers []*Worker
}

// NewPool builds a pool of Parallelism(parallel) workers. Close must be
// called to release the cached sessions.
func NewPool(parallel int) *Pool {
	ws := make([]*Worker, Parallelism(parallel))
	for i := range ws {
		ws[i] = NewWorker()
	}
	return &Pool{workers: ws}
}

// Close releases every worker's cached session. The pool must not be used
// afterwards.
func (pl *Pool) Close() {
	for _, w := range pl.workers {
		w.Close()
	}
}

// Run executes the batch on the pool's workers with the same semantics as
// the package-level Run: min(len(pl.workers), Parallelism(opts.Parallel),
// len(specs)) workers, submission-order results, per-Result failures.
// Workers are (re-)instrumented from opts.Telemetry on every call.
func (pl *Pool) Run(specs []RunSpec, opts Options) []Result {
	res := make([]Result, len(specs))
	par := Parallelism(opts.Parallel)
	if par > len(pl.workers) {
		par = len(pl.workers)
	}
	if par > len(specs) {
		par = len(specs)
	}
	base := 0
	if opts.Trace != nil {
		base = opts.Trace.Reserve(len(specs))
	}
	tm := newRunTelemetry(opts.Telemetry)
	if tm != nil {
		tm.pending.Add(int64(len(specs)))
		tm.workers.Add(int64(par))
		defer tm.workers.Add(-int64(par))
	}
	var stopped atomic.Bool
	done := func(i int, r Result) {
		res[i] = r
		if opts.StopOn != nil && !r.Skipped && opts.StopOn(r) {
			stopped.Store(true)
		}
	}
	if par <= 1 {
		w := pl.workers[0]
		w.Instrument(opts.Telemetry)
		for i := range specs {
			if stopped.Load() {
				done(i, tm.skip(i))
				continue
			}
			done(i, runOne(w, i, &specs[i], opts.Metrics, opts.Trace, base+i, tm))
		}
		return res
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < par; k++ {
		w := pl.workers[k]
		w.Instrument(opts.Telemetry)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if stopped.Load() {
					done(i, tm.skip(i))
					continue
				}
				done(i, runOne(w, i, &specs[i], opts.Metrics, opts.Trace, base+i, tm))
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return res
}

// runTelemetry bundles the live-run handles Run resolves once per batch;
// nil when telemetry is disabled.
type runTelemetry struct {
	runs, errs, busy *telemetry.Counter
	pending, workers *telemetry.Gauge
}

func newRunTelemetry(reg *telemetry.Registry) *runTelemetry {
	if reg == nil {
		return nil
	}
	return &runTelemetry{
		runs:    reg.Counter("engine_runs"),
		errs:    reg.Counter("engine_run_errors"),
		busy:    reg.Counter("engine_busy_ns"),
		pending: reg.Gauge("engine_jobs_pending"),
		workers: reg.Gauge("engine_workers"),
	}
}

// skip accounts a fail-fast-skipped spec and returns its Result.
func (tm *runTelemetry) skip(i int) Result {
	if tm != nil {
		tm.pending.Add(-1)
	}
	return Result{Index: i, Skipped: true}
}

// runOne wraps execOne with busy-time and run accounting when telemetry is
// enabled; the timing never feeds back into the result.
func runOne(w *Worker, i int, spec *RunSpec, m *Metrics, tc *trace.Capture, slot int, tm *runTelemetry) Result {
	if tm == nil {
		return execOne(w, i, spec, m, tc, slot)
	}
	tm.pending.Add(-1)
	start := time.Now()
	r := execOne(w, i, spec, m, tc, slot)
	tm.busy.Add(time.Since(start).Nanoseconds())
	tm.runs.Inc()
	if r.Err != nil {
		tm.errs.Inc()
	}
	return r
}

func execOne(w *Worker, i int, spec *RunSpec, m *Metrics, tc *trace.Capture, slot int) Result {
	r := Result{Index: i}
	cfg := spec.Session
	if tc != nil {
		// The machine must retain events for the capture to hand over; the
		// override applies to every spec in the batch, so worker reuse
		// (Compatible includes NoTrace) is unaffected.
		cfg.NoTrace = false
	}
	s, err := w.Session(cfg)
	if err != nil {
		r.Err = err
		return r
	}
	drive := spec.Drive
	if drive == nil {
		drive = (*mutex.Session).RunRoundRobin
	}
	r.Err = drive(s)
	r.MaxRMRCC = s.MaxPassageRMRs(sim.CC)
	r.MaxRMRDSM = s.MaxPassageRMRs(sim.DSM)
	r.TotalRMRCC = s.TotalRMRs(sim.CC)
	r.TotalRMRDSM = s.TotalRMRs(sim.DSM)
	r.Steps = s.Machine().Steps()
	r.Violations = s.Violations()
	if r.Err == nil && spec.Collect != nil {
		r.Payload, r.Err = spec.Collect(s)
	}
	if tc != nil {
		// Clone: Reset truncates the machine's retained trace in place.
		events := append([]sim.Event(nil), s.Machine().Trace()...)
		scfg := s.Config()
		label := spec.Label
		if label == "" {
			label = scfg.Algorithm.Name()
		}
		tc.Set(slot, trace.Run{
			Label: label, Procs: scfg.Procs, Model: scfg.Model, Events: events,
		})
	}
	if m != nil {
		m.Add(1, r.Steps, r.MaxRMR(spec.Session.Model))
		m.AddPassages(s.Stats(), s.Config().Model)
		m.AddCells(s.Machine().CellRMRStats())
	}
	w.Release(s)
	return r
}

// ForEach runs fn(0), …, fn(n-1) across min(parallel, n) goroutines and
// returns the failure with the lowest index (deterministic regardless of
// completion order), or nil. It is the engine entry point for jobs that
// manage their own sessions (e.g. whole adversary constructions in an
// experiment grid).
func ForEach(n, parallel int, fn func(i int) error) error {
	par := Parallelism(parallel)
	if par > n {
		par = n
	}
	errs := make([]error, n)
	if par <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for k := 0; k < par; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Worker owns at most one live simulated machine and recycles it across
// runs. Checkout (Session) and checkin (Release) are explicit so that
// callers like the adversary can hold one session while a second one — the
// replay candidate — cycles through the worker. Workers are not safe for
// concurrent use; Run gives each pool goroutine its own.
type Worker struct {
	spare *mutex.Session

	// reuse/build count Session outcomes when the worker is instrumented;
	// both are nil-safe no-ops otherwise.
	reuse *telemetry.Counter
	build *telemetry.Counter
}

// NewWorker returns an empty worker.
func NewWorker() *Worker { return &Worker{} }

// Instrument attaches engine_session_reuse / engine_session_build counters
// from reg to this worker. A nil reg leaves the worker uninstrumented.
func (w *Worker) Instrument(reg *telemetry.Registry) {
	w.reuse = reg.Counter("engine_session_reuse")
	w.build = reg.Counter("engine_session_build")
}

// Session checks out a session for cfg. If the worker holds a released
// session with a compatible configuration it is Reset and handed back
// (alloc-free); otherwise a new session is built. The caller must Release
// or Close the returned session.
func (w *Worker) Session(cfg mutex.Config) (*mutex.Session, error) {
	if s := w.spare; s != nil {
		w.spare = nil
		if mutex.Compatible(s.Config(), cfg) {
			if err := s.Reset(); err == nil {
				w.reuse.Inc()
				return s, nil
			}
		}
		s.Close()
	}
	w.build.Inc()
	return mutex.NewSession(cfg)
}

// Release returns a session to the worker for reuse. If the worker already
// holds a spare, the released session is closed instead.
func (w *Worker) Release(s *mutex.Session) {
	if s == nil {
		return
	}
	if w.spare == nil {
		w.spare = s
		return
	}
	s.Close()
}

// Close releases the cached machine.
func (w *Worker) Close() {
	if w.spare != nil {
		w.spare.Close()
		w.spare = nil
	}
}

// Metrics accumulates run statistics across engine launches; all methods
// are safe for concurrent use. cmd/rmrbench threads one Metrics through
// each experiment to report runs and max/avg RMRs in BENCH_results.json.
type Metrics struct {
	runs      atomic.Int64
	steps     atomic.Int64
	maxRMR    atomic.Int64
	sumMaxRMR atomic.Int64

	// The histogram maps are mutex-guarded (not atomics) because they are
	// touched once per run, not once per step; the hot path stays lock-free.
	mu       sync.Mutex
	passages map[int]int64       // per-passage RMR count (run's model) -> passages
	cells    map[string]*cellAgg // cell label -> RMR totals
}

type cellAgg struct {
	cc, dsm int64
}

// Add records runs simulation runs with the given total step count and
// worst per-passage RMR count. Consumers that bypass Run (adversary grids)
// call it directly.
func (m *Metrics) Add(runs, steps, maxRMR int) {
	m.runs.Add(int64(runs))
	m.steps.Add(int64(steps))
	m.sumMaxRMR.Add(int64(maxRMR))
	for {
		cur := m.maxRMR.Load()
		if int64(maxRMR) <= cur || m.maxRMR.CompareAndSwap(cur, int64(maxRMR)) {
			return
		}
	}
}

// AddPassages folds one run's completed passages into the per-passage RMR
// histogram, each counted under the run's own configured model.
func (m *Metrics) AddPassages(stats []mutex.PassageStat, model sim.Model) {
	if len(stats) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.passages == nil {
		m.passages = make(map[int]int64)
	}
	for _, p := range stats {
		m.passages[p.RMRs(model)]++
	}
}

// AddCells folds one run's per-cell RMR totals into the cross-run cell
// table, keyed by label (allocation ids are per-machine).
func (m *Metrics) AddCells(cells []sim.CellRMRs) {
	if len(cells) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cells == nil {
		m.cells = make(map[string]*cellAgg)
	}
	for _, c := range cells {
		a, ok := m.cells[c.Label]
		if !ok {
			a = &cellAgg{}
			m.cells[c.Label] = a
		}
		a.cc += int64(c.RMRCC)
		a.dsm += int64(c.RMRDSM)
	}
}

// PassageBucket is one row of the per-passage RMR histogram.
type PassageBucket struct {
	// RMRs is the passage cost under the run's configured model.
	RMRs int `json:"rmrs"`
	// Passages is how many passages cost exactly that much.
	Passages int64 `json:"passages"`
}

// CellTotal is one row of the cross-run per-cell RMR table.
type CellTotal struct {
	Label  string `json:"label"`
	RMRCC  int64  `json:"rmr_cc"`
	RMRDSM int64  `json:"rmr_dsm"`
}

// maxSnapshotCells caps the cell table in snapshots so machine-readable
// reports stay bounded on huge sweeps; the omitted count is reported.
const maxSnapshotCells = 40

// MetricsSnapshot is a point-in-time reading.
type MetricsSnapshot struct {
	// Runs is the number of simulation runs executed.
	Runs int64 `json:"runs"`
	// Steps is the total number of scheduled actions across runs.
	Steps int64 `json:"steps"`
	// MaxRMR is the worst per-passage RMR count observed in any run (under
	// each run's own configured model).
	MaxRMR int64 `json:"max_rmr"`
	// AvgMaxRMR averages the per-run worst passage cost over all runs.
	AvgMaxRMR float64 `json:"avg_max_rmr"`
	// Passages counts completed passages across runs.
	Passages int64 `json:"passages,omitempty"`
	// PassageRMRHist is the passage-cost histogram, ascending by cost.
	PassageRMRHist []PassageBucket `json:"passage_rmr_hist,omitempty"`
	// Cells are per-cell RMR totals, hottest (CC+DSM) first, capped at
	// maxSnapshotCells rows; CellsOmitted counts the rows cut.
	Cells        []CellTotal `json:"cells,omitempty"`
	CellsOmitted int         `json:"cells_omitted,omitempty"`
}

// Snapshot returns the current totals. The histogram and cell slices are
// sorted copies, so encoding a snapshot is deterministic.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Runs:   m.runs.Load(),
		Steps:  m.steps.Load(),
		MaxRMR: m.maxRMR.Load(),
	}
	if s.Runs > 0 {
		s.AvgMaxRMR = math.Round(float64(m.sumMaxRMR.Load())/float64(s.Runs)*100) / 100
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for rmrs, n := range m.passages {
		s.PassageRMRHist = append(s.PassageRMRHist, PassageBucket{RMRs: rmrs, Passages: n})
		s.Passages += n
	}
	sort.Slice(s.PassageRMRHist, func(i, j int) bool {
		return s.PassageRMRHist[i].RMRs < s.PassageRMRHist[j].RMRs
	})
	for label, a := range m.cells {
		s.Cells = append(s.Cells, CellTotal{Label: label, RMRCC: a.cc, RMRDSM: a.dsm})
	}
	sort.Slice(s.Cells, func(i, j int) bool {
		ti, tj := s.Cells[i].RMRCC+s.Cells[i].RMRDSM, s.Cells[j].RMRCC+s.Cells[j].RMRDSM
		if ti != tj {
			return ti > tj
		}
		return s.Cells[i].Label < s.Cells[j].Label
	})
	if len(s.Cells) > maxSnapshotCells {
		s.CellsOmitted = len(s.Cells) - maxSnapshotCells
		s.Cells = s.Cells[:maxSnapshotCells]
	}
	return s
}
