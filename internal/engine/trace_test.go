package engine

import (
	"bytes"
	"fmt"
	"testing"

	"rme/internal/algorithms/watree"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/trace"
)

func captureBytes(t *testing.T, parallel int) []byte {
	t.Helper()
	var tc trace.Capture
	specs := gridSpecs()
	for _, r := range Run(specs, Options{Parallel: parallel, Trace: &tc}) {
		if r.Err != nil {
			t.Fatalf("run %d: %v", r.Index, r.Err)
		}
	}
	if tc.Len() != len(specs) {
		t.Fatalf("captured %d slots for %d specs", tc.Len(), len(specs))
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, trace.FormatJSONL, tc.Runs()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceIdenticalAcrossParallelism is the observability-plane extension
// of the engine's determinism guarantee: the serialized trace of a batch is
// byte-identical at any parallelism level.
func TestTraceIdenticalAcrossParallelism(t *testing.T) {
	want := captureBytes(t, 1)
	if len(want) == 0 {
		t.Fatal("empty trace")
	}
	for _, par := range []int{2, 8} {
		if got := captureBytes(t, par); !bytes.Equal(got, want) {
			t.Errorf("parallel=%d trace differs from parallel=1 (%d vs %d bytes)", par, len(got), len(want))
		}
	}
}

// TestTraceIdenticalAcrossReset: a Reset-reused machine emits the same
// trace as a fresh one. The single-worker engine path reuses its machine
// between compatible specs, so two identical specs in one batch compare a
// fresh construction against a recycled one.
func TestTraceIdenticalAcrossReset(t *testing.T) {
	cfg := mutex.Config{Procs: 4, Width: 16, Model: sim.CC, Algorithm: watree.New(), Passes: 2}
	var tc trace.Capture
	specs := []RunSpec{{Session: cfg}, {Session: cfg}, {Session: cfg}}
	for _, r := range Run(specs, Options{Parallel: 1, Trace: &tc}) {
		if r.Err != nil {
			t.Fatalf("run %d: %v", r.Index, r.Err)
		}
	}
	runs := tc.Runs()
	if len(runs) != 3 {
		t.Fatalf("captured %d runs", len(runs))
	}
	var first bytes.Buffer
	if err := trace.Write(&first, trace.FormatJSONL, []trace.Run{{Label: runs[0].Label, Procs: runs[0].Procs, Model: runs[0].Model, Events: runs[0].Events}}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		var buf bytes.Buffer
		r := runs[i]
		r.Index = 0 // compare payloads, not slot numbers
		if err := trace.Write(&buf, trace.FormatJSONL, []trace.Run{r}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), first.Bytes()) {
			t.Errorf("reused-machine run %d trace differs from fresh run", i)
		}
	}
}

// TestTraceOverridesNoTrace: capturing forces event retention even when the
// spec asks for NoTrace (the campaign default), so captures are never empty.
func TestTraceOverridesNoTrace(t *testing.T) {
	cfg := mutex.Config{Procs: 2, Width: 16, Model: sim.CC, Algorithm: watree.New(), NoTrace: true}
	var tc trace.Capture
	res := Run([]RunSpec{{Session: cfg, Label: "override"}}, Options{Parallel: 1, Trace: &tc})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	runs := tc.Runs()
	if len(runs) != 1 || len(runs[0].Events) == 0 {
		t.Fatalf("NoTrace spec captured no events: %d runs", len(runs))
	}
	if runs[0].Label != "override" {
		t.Errorf("label = %q", runs[0].Label)
	}
}

// TestMetricsHistogramsDeterministic: the expanded snapshot (passage
// histogram, cell table) is identical across parallelism and across
// repeated snapshots.
func TestMetricsHistogramsDeterministic(t *testing.T) {
	snapFor := func(par int) MetricsSnapshot {
		m := &Metrics{}
		Run(gridSpecs(), Options{Parallel: par, Metrics: m})
		return m.Snapshot()
	}
	a, b := snapFor(1), snapFor(8)
	if len(a.PassageRMRHist) == 0 || a.Passages == 0 {
		t.Fatalf("empty passage histogram: %+v", a)
	}
	if len(a.Cells) == 0 {
		t.Fatal("empty cell table")
	}
	ka, kb := metricsKey(a), metricsKey(b)
	if ka != kb {
		t.Errorf("snapshot differs across parallelism:\n--- 1 ---\n%s--- 8 ---\n%s", ka, kb)
	}
	var total int64
	for _, bk := range a.PassageRMRHist {
		total += bk.Passages
	}
	if total != a.Passages {
		t.Errorf("histogram sums to %d, Passages = %d", total, a.Passages)
	}
}

func metricsKey(s MetricsSnapshot) string {
	out := ""
	for _, b := range s.PassageRMRHist {
		out += fmt.Sprintf("h %d %d\n", b.RMRs, b.Passages)
	}
	for _, c := range s.Cells {
		out += fmt.Sprintf("c %s %d %d\n", c.Label, c.RMRCC, c.RMRDSM)
	}
	return out
}
