package adversary

import (
	"errors"
	"fmt"
	"sort"

	"rme/internal/mutex"
)

// errCompletionStuck reports a completion the adversary could not drive to
// the remainder section within its budgets.
var errCompletionStuck = errors.New("adversary: completion stuck")

// crashAndFinish delivers p's (single) crash step and drives its recovery
// to completion.
func (a *Adversary) crashAndFinish(p int) error {
	m := a.session.Machine()
	if m.ProcDone(p) {
		a.status[p] = Finished
		return nil
	}
	if a.cfg.Session.Algorithm.Recoverable() && m.Crashes(p) == 0 {
		// Assumption (A3): at most one crash per process.
		if _, err := a.session.CrashProc(p); err != nil {
			return err
		}
	}
	return a.finishSet([]int{p})
}

// finishProcess runs p to the end of its super-passage.
func (a *Adversary) finishProcess(p int) error {
	return a.finishSet([]int{p})
}

// finishSet drives a batch of processes to the end of their super-passages
// by round-robin scheduling: completions of queued processes are often
// mutually dependent (the head must hand off before the next can exit), so
// they must advance together. If every member is parked, the set recruits a
// frozen process that can wake one of them (typically the lock holder).
//
// The set does not decide who its members might observe — discovery is
// settled by the round-end erasability audit: an active a completing
// process branched on stops being erasable and is then blocked. That is the
// proof's criterion in contrapositive: a process is discovered exactly when
// the executions with and without it are distinguishable.
func (a *Adversary) finishSet(ps []int) error {
	m := a.session.Machine()
	set := make(map[int]bool, len(ps))
	var members []int
	add := func(p int) {
		if !set[p] {
			set[p] = true
			members = append(members, p)
			sort.Ints(members)
		}
	}
	for _, p := range ps {
		add(p)
	}

	budget := a.cfg.MaxCompletionSteps * (len(ps) + 2)
	for budget > 0 {
		allDone := true
		progress := false
		for _, p := range members {
			if m.ProcDone(p) {
				a.status[p] = Finished
				continue
			}
			allDone = false
			if !m.Poised(p) {
				continue
			}
			if _, err := a.session.StepProc(p); err != nil {
				return err
			}
			budget--
			progress = true
		}
		if allDone {
			return nil
		}
		if progress {
			continue
		}
		// Everyone alive is parked: recruit whoever can wake the first
		// parked member (usually the frozen holder of the lock).
		recruit := -1
		for _, p := range members {
			if m.ProcDone(p) {
				continue
			}
			if q := a.findBlocker(p, set); q != -1 {
				recruit = q
				break
			}
		}
		if recruit == -1 {
			return fmt.Errorf("%w: no process can wake the parked set %v", errCompletionStuck, members)
		}
		add(recruit)
	}
	return fmt.Errorf("%w: budget exhausted for set %v", errCompletionStuck, members)
}

// findBlocker locates a non-finished, non-removed process outside the set
// that has touched the cell p is parked on (the process whose progress can
// wake p), or any other frozen process holding the critical section; -1 if
// none exists.
func (a *Adversary) findBlocker(p int, inSet map[int]bool) int {
	m := a.session.Machine()
	usable := func(q int) bool { return q != p && !inSet[q] && a.liveFrozen(q) }
	po, ok := m.Pending(p)
	if ok && po.Cell != nil {
		if last := m.LastAccessor(po.Cell); last != -1 && usable(last) {
			return last
		}
		for _, q := range m.Accessors(po.Cell) {
			if usable(q) {
				return q
			}
		}
	}
	// Fall back to a frozen process inside its entry/CS (likely the holder).
	for q := 0; q < a.cfg.Session.Procs; q++ {
		if usable(q) && m.Tag(q) == mutex.TagCS {
			return q
		}
	}
	for q := 0; q < a.cfg.Session.Procs; q++ {
		if usable(q) && !m.ProcDone(q) {
			return q
		}
	}
	return -1
}

// liveFrozen reports whether q is a process the adversary froze (active or
// blocked) that still exists in the execution and has not finished.
func (a *Adversary) liveFrozen(q int) bool {
	if a.status[q] != Active && a.status[q] != Blocked {
		return false
	}
	return !a.session.Machine().ProcDone(q)
}
