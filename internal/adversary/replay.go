package adversary

import (
	"fmt"
	"strings"

	"rme/internal/mutex"
	"rme/internal/sim"
)

// procObservables captures everything about a process that the proof's
// invariants require to be preserved when other processes are erased from
// the schedule: its progress (I3), its membership in the finished set (I4),
// its crash count (I6), and its phase (I7). For processes that are still
// active, the observables additionally include the RMR counters (I10) and
// — in the CC model — the set of valid cache copies (I9); a finished
// process's RMR count may legitimately differ between table columns (an
// erased process's non-read operation invalidates caches without changing
// values), and the proof's invariants do not constrain it.
type procObservables struct {
	done    bool
	parked  bool
	steps   int
	rmrCC   int
	rmrDSM  int
	crashes int
	tag     int
	pending string
	cached  string
}

func observe(m *sim.Machine, p int, active bool) procObservables {
	o := procObservables{
		done:    m.ProcDone(p),
		parked:  m.Parked(p),
		steps:   m.ProcSteps(p),
		crashes: m.Crashes(p),
		tag:     m.Tag(p),
	}
	if po, ok := m.Pending(p); ok {
		if po.Wait {
			o.pending = "wait"
		} else {
			o.pending = fmt.Sprintf("%s %s", po.Cell.Label(), po.Op)
		}
	}
	if active {
		o.rmrCC = m.RMRsIn(sim.CC, p)
		o.rmrDSM = m.RMRsIn(sim.DSM, p)
		var b strings.Builder
		for _, id := range m.CachedCells(p) {
			fmt.Fprintf(&b, "%d,", id)
		}
		o.cached = b.String()
	}
	return o
}

// removeOrBlock erases process p from the execution if the erasure is
// verifiably invisible to everyone else (a table-column switch in the
// proof's terms); otherwise p is merely blocked. Only non-finished
// processes can be erased.
func (a *Adversary) removeOrBlock(p int, rep *Round) {
	if a.status[p] == Finished || a.status[p] == Removed {
		return
	}
	if a.tryErase(p) {
		a.status[p] = Removed
		rep.Removed++
		return
	}
	a.status[p] = Blocked
	rep.Blocked++
	a.report.RemovalRollbacks++
}

// tryErase replays the schedule without p's actions on a recycled machine
// and adopts the replay iff every remaining process's observables are
// unchanged. On adoption the superseded session goes back to the worker as
// the spare for the next replay. It reports whether the erasure was adopted.
func (a *Adversary) tryErase(p int) bool {
	replayed, ok := a.buildWithout(p)
	if !ok {
		return false
	}
	a.worker.Release(a.session)
	a.session = replayed
	a.report.Replays++
	return true
}

// verifyErasable checks whether p could be erased (identical replay for the
// others) without adopting the replay — used to validate that a hidden
// process is genuinely invisible.
func (a *Adversary) verifyErasable(p int) bool {
	replayed, ok := a.buildWithout(p)
	if ok {
		a.worker.Release(replayed)
	}
	return ok
}

// buildWithout checks a session out of the worker (usually the recycled
// spare from the previous audit), replays the current schedule restricted to
// all processes except p, and verifies the observables of every process
// other than p. On success the new session is returned; on failure it goes
// back to the worker.
func (a *Adversary) buildWithout(p int) (*mutex.Session, bool) {
	old := a.session.Machine()
	restricted := old.Schedule().Restrict(func(q int) bool { return q != p })

	fresh, err := a.worker.Session(a.cfg.Session)
	if err != nil {
		return nil, false
	}
	if err := applySchedule(fresh, restricted); err != nil {
		a.worker.Release(fresh)
		return nil, false
	}
	if len(fresh.Violations()) > 0 {
		a.worker.Release(fresh)
		return nil, false
	}
	nm := fresh.Machine()
	for q := 0; q < a.cfg.Session.Procs; q++ {
		if q == p || a.status[q] == Removed {
			continue
		}
		active := a.status[q] == Active
		if observe(old, q, active) != observe(nm, q, active) {
			a.worker.Release(fresh)
			return nil, false
		}
	}
	return fresh, true
}

// applySchedule drives a session through a schedule via the monitored
// step/crash entry points.
func applySchedule(s *mutex.Session, sched sim.Schedule) error {
	for i, act := range sched {
		var err error
		if act.Crash {
			_, err = s.CrashProc(act.Proc)
		} else {
			_, err = s.StepProc(act.Proc)
		}
		if err != nil {
			return fmt.Errorf("replay action %d (%s): %w", i, act, err)
		}
	}
	return nil
}
