package adversary

import (
	"rme/internal/memory"
	"rme/internal/word"
)

// lowRound keeps an independent set of the poised actives — pairwise
// distinct pending cells, none owned by or last accessed by another active
// (so the kept steps discover nobody) — steps each kept process once, and
// removes the rest (as the proof does, so invariant I10 keeps holding for
// every remaining active).
func (a *Adversary) lowRound(rep *Round, groups []group) error {
	m := a.session.Machine()

	var keep []int
	usedCells := make(map[int]bool)
	keepSet := make(map[int]bool)
	for _, g := range groups {
		// One process per cell; prefer the lowest id whose step is safe.
		for _, p := range g.members {
			if usedCells[g.cellID] {
				break
			}
			if !a.cellSafeFor(p, g.cell(m)) {
				continue
			}
			keep = append(keep, p)
			keepSet[p] = true
			usedCells[g.cellID] = true
		}
	}
	// In the DSM model, also drop kept processes pending on a cell owned by
	// another kept (still-active) process (invariant I8).
	filtered := keep[:0]
	for _, p := range keep {
		po, _ := m.Pending(p)
		owner := po.Cell.Owner()
		if owner != memory.Shared && owner != p && keepSet[owner] {
			delete(keepSet, p)
			continue
		}
		filtered = append(filtered, p)
	}
	keep = filtered

	if len(keep) == 0 {
		return nil
	}

	// Remove the actives that were not kept (verified replay; fallback to
	// blocking them). Removal replays replace the session, so the machine
	// handle must be re-fetched afterwards.
	for _, p := range a.actives() {
		if keepSet[p] {
			continue
		}
		a.removeOrBlock(p, rep)
	}
	m = a.session.Machine()

	// Step each kept process once: one RMR each, nobody discovered.
	for _, p := range keep {
		if !m.Poised(p) {
			continue
		}
		if _, err := a.session.StepProc(p); err != nil {
			return err
		}
		rep.Stepped++
	}
	return nil
}

// cellSafeFor reports whether p's pending step on c cannot discover another
// active process: no other active may have accessed c (its trace would be
// visible), and in the DSM model no other active may own c.
func (a *Adversary) cellSafeFor(p int, c memory.Cell) bool {
	m := a.session.Machine()
	for _, q := range m.Accessors(c) {
		if q != p && a.status[q] == Active {
			return false
		}
	}
	if last := m.LastAccessor(c); last != -1 && last != p && a.status[last] == Active {
		return false
	}
	return true
}

// highRound handles the high-contention groups with the read case or the
// hiding manoeuvre, and removes all other actives (including low-contention
// stragglers, as the proof does in high rounds).
func (a *Adversary) highRound(rep *Round, high, low []group) error {
	// Processes in low groups are removed this round (the proof keeps only
	// the grouped processes).
	inHigh := make(map[int]bool)
	for _, g := range high {
		for _, p := range g.members {
			inHigh[p] = true
		}
	}
	for _, p := range a.actives() {
		if !inHigh[p] && a.status[p] == Active {
			a.removeOrBlock(p, rep)
		}
	}

	// Remove actives that last accessed a group cell (they would be
	// discovered by the group's steps) — the proof's pre-filter. Removal
	// replays replace the session; re-fetch the machine each iteration.
	for _, g := range high {
		m := a.session.Machine()
		if last := m.LastAccessor(g.cell(m)); last != -1 && a.status[last] == Active && !inHigh[last] {
			a.removeOrBlock(last, rep)
		}
	}

	for _, g := range high {
		if err := a.handleHighGroup(rep, g); err != nil {
			return err
		}
	}
	return nil
}

// handleHighGroup runs one high-contention group: the read case keeps every
// reader; otherwise the hiding manoeuvre keeps one hidden process and
// finishes the rest through crash-recover-complete.
func (a *Adversary) handleHighGroup(rep *Round, g group) error {
	m := a.session.Machine()
	// NOTE: any removeOrBlock / finishProcess call below may replace the
	// session; m is re-fetched after each.

	// Filter to members still active and poised (earlier groups' completions
	// may have removed some).
	var members []int
	for _, p := range g.members {
		if a.status[p] == Active && m.Poised(p) {
			members = append(members, p)
		}
	}
	if len(members) == 0 {
		return nil
	}

	// Read case: reads change nothing, so every reader can step and remain
	// active and mutually invisible. Non-readers are removed (the proof
	// discards the schedules containing them).
	var readers, writers []int
	for _, p := range members {
		po, _ := m.Pending(p)
		if po.Op.IsRead() {
			readers = append(readers, p)
		} else {
			writers = append(writers, p)
		}
	}
	if len(readers) > 0 {
		for _, p := range writers {
			a.removeOrBlock(p, rep)
		}
		m = a.session.Machine()
		// A read may still discover the last writer; the pre-filter removed
		// active last-accessors already.
		for _, p := range readers {
			if !m.Poised(p) {
				continue
			}
			if _, err := a.session.StepProc(p); err != nil {
				return err
			}
			rep.Stepped++
		}
		return nil
	}

	// Hiding manoeuvre. Search for z such that the register value after the
	// whole group steps equals the value with z left out — then z's RMR step
	// is absorbed by the others (Process-Hiding Lemma, m = 1 instance).
	z, ok := a.findHidden(g.cell(m), members)
	a.report.HidingAttempts++
	if ok {
		a.report.HidingWins++
	}

	// Everyone steps (each earns this round's RMR), z included.
	for _, p := range members {
		if !m.Poised(p) {
			continue
		}
		if _, err := a.session.StepProc(p); err != nil {
			return err
		}
		rep.Stepped++
	}

	// All alphas crash first (losing any memory of z), then run to
	// completion; their completions may require removing actives they would
	// discover, and may cascade into each other (handled by finish). For a
	// non-recoverable algorithm there is no crash step — the alphas complete
	// remembering what they saw, and the erasure verification below decides
	// whether z survives (this is the §1.1 story: without crashes, a FAS
	// chain leaves at most one process hideable).
	if a.cfg.Session.Algorithm.Recoverable() {
		for _, p := range members {
			if (ok && p == z) || m.ProcDone(p) || m.Crashes(p) > 0 {
				continue
			}
			if _, err := a.session.CrashProc(p); err != nil {
				return err
			}
		}
	}
	var alphas []int
	for _, p := range members {
		if ok && p == z {
			continue
		}
		alphas = append(alphas, p)
	}
	if err := a.finishSet(alphas); err != nil {
		return err
	}
	rep.Finished += len(alphas)

	if ok && a.status[z] == Active {
		// The hiding claim is not taken on faith: z stays active only if
		// erasing it from the whole execution is verifiably invisible to
		// everyone else (the proof's two-execution indistinguishability).
		// (A completion cascade may already have finished z, in which case
		// there is nothing left to verify.)
		if a.verifyErasable(z) {
			rep.HiddenKept++
		} else {
			a.report.RemovalRollbacks++
			if err := a.finishProcess(z); err != nil {
				return err
			}
			rep.Finished++
		}
	}
	return nil
}

// findHidden searches the group for a process whose operation is absorbed:
// the cell value after all members' operations (ascending order) equals the
// value with z's operation removed. This is the value-collision core of the
// Process-Hiding Lemma; with fetch-and-add on wide words no collision
// exists, and the search fails — the Katzan–Morrison immunity.
func (a *Adversary) findHidden(c memory.Cell, members []int) (int, bool) {
	m := a.session.Machine()
	w := m.Width()
	y0 := m.Value(c)

	ops := make(map[int]memory.Op, len(members))
	for _, p := range members {
		po, ok := m.Pending(p)
		if !ok {
			return 0, false
		}
		ops[p] = po.Op
	}
	apply := func(skip int) word.Word {
		cur := y0
		for _, p := range members {
			if p == skip {
				continue
			}
			cur, _ = memory.Apply(ops[p], cur, w)
		}
		return cur
	}
	full := apply(-1)
	for _, z := range members {
		if apply(z) == full {
			return z, true
		}
	}
	return 0, false
}
