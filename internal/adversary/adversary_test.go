package adversary_test

import (
	"fmt"
	"testing"

	"rme/internal/adversary"
	"rme/internal/algorithms/grlock"
	"rme/internal/algorithms/mcs"
	"rme/internal/algorithms/rspin"
	"rme/internal/algorithms/tournament"
	"rme/internal/algorithms/watree"
	"rme/internal/algorithms/yatree"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/word"
)

func run(t *testing.T, cfg adversary.Config) *adversary.Report {
	t.Helper()
	adv, err := adversary.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer adv.Close()
	rep, err := adv.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// checkSoundness asserts the Theorem 1 conditions on the survivors: never
// crashed, never entered the CS, and each charged at least one RMR per
// completed round (invariants I6, I7, I10).
func checkSoundness(t *testing.T, rep *adversary.Report) {
	t.Helper()
	if len(rep.InvariantViolations) > 0 {
		t.Fatalf("invariant violations: %v", rep.InvariantViolations)
	}
	for i, rmr := range rep.SurvivorRMRs {
		if rmr < rep.ViableRounds {
			t.Errorf("survivor p%d has %d RMRs over %d viable rounds (I10 violated)",
				rep.Survivors[i], rmr, rep.ViableRounds)
		}
	}
}

func TestAgainstWATreeShapesWithWidth(t *testing.T) {
	// The headline: against the Katzan–Morrison-style tree, the number of
	// rounds the adversary forces tracks the tree depth ceil(log_w n) —
	// wider words, fewer forced RMRs.
	const n = 64
	forced := make(map[word.Width]int)
	for _, w := range []word.Width{4, 8, 64} {
		rep := run(t, adversary.Config{
			Session: mutex.Config{
				Procs: n, Width: w, Model: sim.CC, Algorithm: watree.New(),
			},
		})
		checkSoundness(t, rep)
		forced[w] = rep.ForcedRMRs()
		if len(rep.Survivors) == 0 {
			t.Fatalf("w=%d: no survivors", w)
		}
	}
	if !(forced[4] > forced[64]) {
		t.Errorf("forced RMRs should shrink with width: w=4:%d w=8:%d w=64:%d",
			forced[4], forced[8], forced[64])
	}
	// Depth of the w=4 tree over 64 procs is 3; the adversary should force
	// at least one RMR per level on some survivor.
	if forced[4] < 3 {
		t.Errorf("w=4: forced only %d RMRs, want >= tree depth 3", forced[4])
	}
}

func TestAgainstGRLockForcesScan(t *testing.T) {
	rep := run(t, adversary.Config{
		Session: mutex.Config{
			Procs: 16, Width: 16, Model: sim.CC, Algorithm: grlock.New(),
		},
	})
	checkSoundness(t, rep)
	if rep.ForcedRMRs() < 2 {
		t.Errorf("forced RMRs = %d, want >= 2", rep.ForcedRMRs())
	}
}

func TestAgainstTournamentCC(t *testing.T) {
	rep := run(t, adversary.Config{
		Session: mutex.Config{
			Procs: 32, Width: 8, Model: sim.CC, Algorithm: tournament.New(),
		},
	})
	checkSoundness(t, rep)
	// Binary tree over 32 procs: depth 5; expect several forced rounds.
	if rep.ForcedRMRs() < 3 {
		t.Errorf("forced RMRs = %d, want >= 3 against a binary tournament", rep.ForcedRMRs())
	}
}

func TestHidingKeepsActiveAgainstRSpin(t *testing.T) {
	// All processes CAS the same cell: a high-contention round. Failed CAS
	// steps are invisible, so the hiding search must succeed and keep one
	// process active after its RMR.
	rep := run(t, adversary.Config{
		Session: mutex.Config{
			Procs: 8, Width: 8, Model: sim.CC, Algorithm: rspin.New(),
		},
		K: 4,
	})
	checkSoundness(t, rep)
	if rep.HidingAttempts == 0 {
		t.Fatal("expected at least one hiding attempt against a single-cell CAS lock")
	}
	if rep.HidingWins == 0 {
		t.Error("failed-CAS hiding should succeed")
	}
}

func TestMCSWithoutCrashesCollapses(t *testing.T) {
	// The §1.1 narrative: FAS hands every process its predecessor, and
	// without crash steps nothing can be hidden — the active set collapses
	// quickly and hiding verification rejects the FAS chain.
	rep := run(t, adversary.Config{
		Session: mutex.Config{
			Procs: 12, Width: 8, Model: sim.CC, Algorithm: mcs.New(),
		},
		K: 4,
	})
	if len(rep.InvariantViolations) > 0 {
		t.Fatalf("invariant violations: %v", rep.InvariantViolations)
	}
	// The adversary must stay sound: since MCS cannot crash, hidden
	// processes can survive only if verification proves erasability.
	checkSoundness(t, rep)
}

func TestDSMModelRuns(t *testing.T) {
	rep := run(t, adversary.Config{
		Session: mutex.Config{
			Procs: 16, Width: 4, Model: sim.DSM, Algorithm: watree.New(),
		},
	})
	checkSoundness(t, rep)
	if len(rep.Rounds) == 0 {
		t.Fatal("no rounds completed in DSM model")
	}
}

func TestRoundReportsConsistent(t *testing.T) {
	rep := run(t, adversary.Config{
		Session: mutex.Config{
			Procs: 32, Width: 4, Model: sim.CC, Algorithm: watree.New(),
		},
	})
	prev := rep.Procs
	for _, r := range rep.Rounds {
		if r.ActiveBefore > prev {
			t.Errorf("round %d: actives grew: %d -> %d", r.Index, prev, r.ActiveBefore)
		}
		if r.ActiveAfter > r.ActiveBefore {
			t.Errorf("round %d: actives grew within round", r.Index)
		}
		if r.Kind != adversary.LowContention && r.Kind != adversary.HighContention {
			t.Errorf("round %d: bad kind", r.Index)
		}
		prev = r.ActiveAfter
	}
	if rep.MinSurvivorRMRs() > rep.ForcedRMRs() {
		t.Error("min survivor RMRs above max")
	}
}

func TestForcedRMRsGrowWithN(t *testing.T) {
	// Fixed narrow width, growing n: the forced RMR count must not shrink
	// (the log_w n shape in the n direction).
	measure := func(n int) int {
		rep := run(t, adversary.Config{
			Session: mutex.Config{
				Procs: n, Width: 4, Model: sim.CC, Algorithm: watree.New(),
			},
		})
		checkSoundness(t, rep)
		return rep.ForcedRMRs()
	}
	small, large := measure(8), measure(128)
	if large < small {
		t.Errorf("forced RMRs shrank with n: n=8:%d n=128:%d", small, large)
	}
	if large < 3 {
		t.Errorf("n=128, w=4: forced %d RMRs, want >= depth-ish", large)
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[adversary.Status]string{
		adversary.Active:   "active",
		adversary.Blocked:  "blocked",
		adversary.Finished: "finished",
		adversary.Removed:  "removed",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q", st, st.String())
		}
	}
	if adversary.LowContention.String() != "low" || adversary.HighContention.String() != "high" {
		t.Error("round kind names")
	}
}

func ExampleReport_ForcedRMRs() {
	adv, err := adversary.New(adversary.Config{
		Session: mutex.Config{
			Procs: 16, Width: 4, Model: sim.CC, Algorithm: watree.New(),
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer adv.Close()
	rep, err := adv.Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(rep.ForcedRMRs() >= 2)
	// Output: true
}

func TestAdversaryMatrix(t *testing.T) {
	// Soundness across the whole algorithm suite and both models: whatever
	// the algorithm, the reported survivors must satisfy the Theorem 1
	// side conditions (I6/I7/I10) and the audits must be clean.
	algs := []mutex.Algorithm{
		watree.New(), watree.New(watree.WithFanout(2)), grlock.New(),
		rspin.New(), tournament.New(), yatree.New(), mcs.New(),
	}
	for _, alg := range algs {
		alg := alg
		for _, model := range []sim.Model{sim.CC, sim.DSM} {
			model := model
			t.Run(alg.Name()+"/"+model.String(), func(t *testing.T) {
				rep := run(t, adversary.Config{
					Session: mutex.Config{
						Procs: 24, Width: 8, Model: model, Algorithm: alg,
					},
					K: 6,
				})
				checkSoundness(t, rep)
			})
		}
	}
}

func TestAdversaryAgainstFastPath(t *testing.T) {
	// The fast path's fastOwner cell is a single CAS hotspot: the adversary
	// should reach a high-contention round there and still stay sound.
	rep := run(t, adversary.Config{
		Session: mutex.Config{
			Procs: 16, Width: 8, Model: sim.CC,
			Algorithm: watree.New(watree.WithFastPath()),
		},
		K: 4,
	})
	checkSoundness(t, rep)
	if rep.HidingAttempts == 0 {
		t.Log("no hiding attempt reached (scheduling-dependent); rounds:", len(rep.Rounds))
	}
}

func TestLemma6DecayRate(t *testing.T) {
	// Lemma 6: n_i >= n_{i-1}/(64 w^{d+1}) - 2 — the active set shrinks by
	// at most a polynomial-in-w factor per round, which is what makes
	// Ω(log_w n) rounds possible. Check the operational analogue on the
	// watree constructions: every round retains at least a 1/(64·w²)
	// fraction of the actives (minus the additive slack), for every (n, w).
	for _, tc := range []struct {
		n int
		w word.Width
	}{
		{64, 4}, {256, 4}, {256, 8}, {128, 16},
	} {
		rep := run(t, adversary.Config{
			Session: mutex.Config{
				Procs: tc.n, Width: tc.w, Model: sim.CC, Algorithm: watree.New(),
			},
		})
		checkSoundness(t, rep)
		bound := 64 * int(tc.w) * int(tc.w)
		for _, r := range rep.Rounds {
			min := r.ActiveBefore/bound - 2
			if r.ActiveAfter < min {
				t.Errorf("n=%d w=%d round %d: active %d -> %d, below the Lemma 6 analogue %d",
					tc.n, tc.w, r.Index, r.ActiveBefore, r.ActiveAfter, min)
			}
		}
	}
}
