// Package adversary implements the paper's lower-bound construction
// (Theorem 1) operationally: an adversarial scheduler in the Anderson–Kim /
// Chan–Woelfel round framework that drives a real RME algorithm so that a
// set of *active* processes keeps incurring RMRs without entering the
// critical section, without crashing, and without discovering one another.
//
// The proof maintains a table of 2^n schedules (§3.1); its operational
// content is that the maximal schedule can be *restricted* to any subset of
// the active processes without affecting the rest. This package materializes
// exactly that: the maximal schedule is the live execution, a "column" is a
// deterministic replay of the schedule with a process's actions removed, and
// every removal is verified — the observables (step counts, RMR counts,
// pending operations, phases, cache sets) of all remaining processes must be
// unchanged by the removal, which is the operational reading of invariants
// I3/I4/I9. A removal that fails verification is rolled back and handled
// conservatively (the process is run to completion instead), so the
// construction never reports rounds it did not actually force.
//
// Each round has the paper's two phases:
//
//   - Setup: every active process advances through non-RMR steps until it
//     is poised to incur an RMR (processes that park on a spin wait cannot
//     be charged further RMRs and leave the active set, exactly like the
//     proof's processes that stop being chargeable).
//   - Contention: cells with at least K poised active processes are
//     high-contention. Low-contention rounds keep an independent set of
//     actives (distinct cells, no cell owned/previously accessed by another
//     active) and step each once. High-contention groups are handled by the
//     read case (readers are invisible) or by the hiding manoeuvre.
//
// The hiding manoeuvre is the m=1, A = X\{z}, B = X\{z} instance of the
// Process-Hiding Lemma: a candidate z is hidden if applying the whole
// group's operations with and without z leaves the register with the same
// value. (FAS and writes always hide everyone but the last; failed CAS
// steps are invisible; fetch-and-add on wide words hides nobody — which is
// precisely Katzan–Morrison's defence and the tradeoff the paper proves.)
// After the group steps, every member except z crashes (at most one crash
// per process, assumption A3), recovers with amnesia, and runs to
// completion; processes the completing alphas would discover are removed
// first, using the replay machinery. The general multi-group lemma with its
// full combinatorics lives in packages hypergraph and hiding.
package adversary

import (
	"fmt"
	"sort"

	"rme/internal/engine"
	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/telemetry"
	"rme/internal/word"
)

// Status classifies a process during the construction.
type Status int

// Process statuses.
const (
	// Active: undiscovered, charged one RMR per round, never crashed, never
	// in the CS — the processes the lower bound is about.
	Active Status = iota + 1
	// Blocked: parked on a wait the adversary will not service; keeps its
	// RMRs but earns no more. (The conservative fallback when removal
	// verification fails.)
	Blocked
	// Finished: ran to completion (super-passage over); visible to others.
	Finished
	// Removed: erased from the execution by verified replay.
	Removed
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Blocked:
		return "blocked"
	case Finished:
		return "finished"
	case Removed:
		return "removed"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Config parameterizes the adversary.
type Config struct {
	// Session is the mutex session configuration (algorithm, n, w, model).
	// Passes is forced to 1 (one-shot mutual exclusion, as in the proof).
	Session mutex.Config
	// K is the high-contention threshold (the paper's k = w^d); 0 means
	// max(4, w^2) capped at n.
	K int
	// MaxRounds caps the construction (0 = 8*w, comfortably above any
	// passage bound by assumption A1).
	MaxRounds int
	// MaxCompletionSteps caps a single run-to-completion (0 = 64*w + 256).
	MaxCompletionSteps int
	// MaxRemovalsPerCompletion caps the discovered-set size per completing
	// process (the proof's o(w); 0 = 4*w + 8).
	MaxRemovalsPerCompletion int

	// Telemetry, when non-nil, receives round progression and erasure
	// statistics (adversary_* series), updated once per completed round.
	// Write-only: the construction never reads it back.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	w := int(c.Session.Width)
	if c.K == 0 {
		c.K = w * w
		if c.K < 4 {
			c.K = 4
		}
		if c.K > c.Session.Procs {
			c.K = c.Session.Procs
		}
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 8 * w
	}
	if c.MaxCompletionSteps == 0 {
		c.MaxCompletionSteps = 64*w + 256
	}
	if c.MaxRemovalsPerCompletion == 0 {
		c.MaxRemovalsPerCompletion = 4*w + 8
	}
	c.Session.Passes = 1
	c.Session.NoTrace = true
	return c
}

// RoundKind classifies rounds.
type RoundKind int

// Round kinds.
const (
	LowContention RoundKind = iota + 1
	HighContention
)

// String returns the kind name.
func (k RoundKind) String() string {
	if k == HighContention {
		return "high"
	}
	return "low"
}

// Round reports one completed round.
type Round struct {
	Index        int
	Kind         RoundKind
	ActiveBefore int
	ActiveAfter  int
	Stepped      int
	HiddenKept   int
	Finished     int
	Removed      int
	Blocked      int
}

// Report is the outcome of the construction.
type Report struct {
	Model     sim.Model
	Width     word.Width
	Procs     int
	K         int
	Rounds    []Round
	Survivors []int // ids of processes active at the end
	// SurvivorRMRs[i] is the RMR count of Survivors[i]; each survivor has
	// never crashed and never entered the CS.
	SurvivorRMRs []int
	// HidingAttempts/HidingWins count the value-collision searches.
	HidingAttempts int
	HidingWins     int
	// Replays counts verified schedule replays (removals).
	Replays int
	// RemovalRollbacks counts removals rejected by verification.
	RemovalRollbacks int
	// ViableRounds is the number of completed rounds at the moment the
	// reported survivors were snapshotted (the proof's largest compliant
	// row index): every survivor was charged at least one RMR in each of
	// these rounds.
	ViableRounds int
	// Steps is the length of the final execution's schedule.
	Steps int
	// Schedule is the final execution's full schedule. The construction runs
	// with NoTrace (erasure audits replay constantly), so a caller that
	// wants the step-level story replays this schedule on a traced machine.
	Schedule sim.Schedule
	// InvariantViolations lists operational invariant-audit failures
	// (empty in a sound construction).
	InvariantViolations []string
}

// ForcedRMRs returns the maximum RMR count over surviving active processes
// — the quantity Theorem 1 lower-bounds by Ω(min(log_w n, log n/log log n)).
func (r *Report) ForcedRMRs() int {
	maxRMR := 0
	for _, v := range r.SurvivorRMRs {
		if v > maxRMR {
			maxRMR = v
		}
	}
	return maxRMR
}

// MinSurvivorRMRs returns the minimum RMR count over survivors (every
// survivor is charged every round, so this equals the round count in a
// clean construction).
func (r *Report) MinSurvivorRMRs() int {
	if len(r.SurvivorRMRs) == 0 {
		return 0
	}
	minRMR := r.SurvivorRMRs[0]
	for _, v := range r.SurvivorRMRs[1:] {
		if v < minRMR {
			minRMR = v
		}
	}
	return minRMR
}

// Adversary drives one construction. It holds the live session checked out
// of an engine.Worker; replay candidates (buildWithout) cycle through the
// same worker, so the whole construction — every erasure audit included —
// runs on at most two machines.
type Adversary struct {
	cfg        Config
	worker     *engine.Worker
	session    *mutex.Session
	status     []Status
	report     Report
	lastViable viable
	tm         advTelemetry
}

// advTelemetry holds the construction's live metric handles; all nil-safe
// no-ops without Config.Telemetry. Per-round deltas come from the Round
// report, cumulative erasure stats are re-published from the report totals,
// so the final snapshot matches the Report exactly.
type advTelemetry struct {
	rounds, stepped, finished  *telemetry.Counter
	removed, blocked, hidden   *telemetry.Counter
	round, active              *telemetry.Gauge
	replays, rollbacks         *telemetry.Gauge
	hidingAttempts, hidingWins *telemetry.Gauge
}

func newAdvTelemetry(reg *telemetry.Registry) advTelemetry {
	return advTelemetry{
		rounds:         reg.Counter("adversary_rounds"),
		stepped:        reg.Counter("adversary_stepped"),
		finished:       reg.Counter("adversary_finished"),
		removed:        reg.Counter("adversary_removed"),
		blocked:        reg.Counter("adversary_blocked"),
		hidden:         reg.Counter("adversary_hidden_kept"),
		round:          reg.Gauge("adversary_round"),
		active:         reg.Gauge("adversary_active"),
		replays:        reg.Gauge("adversary_replays"),
		rollbacks:      reg.Gauge("adversary_removal_rollbacks"),
		hidingAttempts: reg.Gauge("adversary_hiding_attempts"),
		hidingWins:     reg.Gauge("adversary_hiding_wins"),
	}
}

// observeRound publishes one completed round.
func (a *Adversary) observeRound(rep *Round) {
	a.tm.rounds.Inc()
	a.tm.stepped.Add(int64(rep.Stepped))
	a.tm.finished.Add(int64(rep.Finished))
	a.tm.removed.Add(int64(rep.Removed))
	a.tm.blocked.Add(int64(rep.Blocked))
	a.tm.hidden.Add(int64(rep.HiddenKept))
	a.tm.round.Set(int64(rep.Index))
	a.tm.active.Set(int64(rep.ActiveAfter))
	a.tm.replays.Set(int64(a.report.Replays))
	a.tm.rollbacks.Set(int64(a.report.RemovalRollbacks))
	a.tm.hidingAttempts.Set(int64(a.report.HidingAttempts))
	a.tm.hidingWins.Set(int64(a.report.HidingWins))
}

// New prepares an adversary over a fresh session.
func New(cfg Config) (*Adversary, error) {
	cfg = cfg.withDefaults()
	w := engine.NewWorker()
	s, err := w.Session(cfg.Session)
	if err != nil {
		w.Close()
		return nil, err
	}
	w.Instrument(cfg.Telemetry)
	a := &Adversary{
		cfg:     cfg,
		worker:  w,
		session: s,
		status:  make([]Status, cfg.Session.Procs),
		tm:      newAdvTelemetry(cfg.Telemetry),
	}
	cfg.Telemetry.Gauge("adversary_max_rounds").Set(int64(cfg.MaxRounds))
	cfg.Telemetry.Gauge("adversary_procs").Set(int64(cfg.Session.Procs))
	for i := range a.status {
		a.status[i] = Active
	}
	a.report.Model = cfg.Session.Model
	a.report.Width = cfg.Session.Width
	a.report.Procs = cfg.Session.Procs
	a.report.K = cfg.K
	return a, nil
}

// Close releases the underlying machines.
func (a *Adversary) Close() {
	if a.session != nil {
		a.session.Close()
		a.session = nil
	}
	if a.worker != nil {
		a.worker.Close()
		a.worker = nil
	}
}

// Run executes rounds until fewer than two processes remain active, the
// round cap is hit, or a round makes no progress, then returns the report.
//
// Survivors are reported from the last *viable row*: if the final round
// inactivates every process (as the hiding-immune wide-word algorithms
// force), the report falls back to the active set as it stood before that
// round — matching the proof, which takes the largest i for which row i is
// still i-compliant.
func (a *Adversary) Run() (*Report, error) {
	a.snapshotViable(0)
	for round := 1; round <= a.cfg.MaxRounds; round++ {
		if len(a.actives()) < 2 {
			break
		}
		progressed, err := a.round(round)
		if err != nil {
			return nil, fmt.Errorf("round %d: %w", round, err)
		}
		if len(a.actives()) > 0 {
			a.snapshotViable(round)
		}
		if !progressed {
			break
		}
	}
	a.finishReport()
	return &a.report, nil
}

// viable is the last nonempty active set, with RMR counts, at a round
// boundary.
type viable struct {
	round   int
	procs   []int
	rmrs    []int
	crashes []int
}

func (a *Adversary) snapshotViable(round int) {
	m := a.session.Machine()
	v := viable{round: round}
	for _, p := range a.actives() {
		v.procs = append(v.procs, p)
		v.rmrs = append(v.rmrs, m.RMRs(p))
		v.crashes = append(v.crashes, m.Crashes(p))
	}
	if len(v.procs) > 0 {
		a.lastViable = v
	}
}

func (a *Adversary) finishReport() {
	a.report.Steps = a.session.Machine().Steps()
	a.report.Schedule = a.session.Machine().Schedule()
	v := a.lastViable
	a.report.Survivors = v.procs
	a.report.SurvivorRMRs = v.rmrs
	a.report.ViableRounds = v.round
	// Invariant audits on the reported row: survivors never crashed (I6)
	// and were charged at least one RMR per round (I10).
	for i, p := range v.procs {
		if v.crashes[i] > 0 {
			a.audit(fmt.Sprintf("survivor p%d crashed %d times", p, v.crashes[i]))
		}
		if v.rmrs[i] < v.round {
			a.audit(fmt.Sprintf("survivor p%d has %d RMRs over %d rounds (I10)", p, v.rmrs[i], v.round))
		}
	}
}

func (a *Adversary) audit(msg string) {
	a.report.InvariantViolations = append(a.report.InvariantViolations, msg)
}

func (a *Adversary) actives() []int {
	var out []int
	for p, st := range a.status {
		if st == Active {
			out = append(out, p)
		}
	}
	return out
}

// round runs one setup + contention round; it reports whether any active
// process was charged an RMR.
func (a *Adversary) round(index int) (bool, error) {
	if err := a.setupPhase(); err != nil {
		return false, err
	}
	poised := a.poisedActives()
	if len(poised) == 0 {
		return false, nil
	}

	groups := a.groupByCell(poised)
	high, low := a.classify(groups)

	rep := Round{Index: index, ActiveBefore: len(a.actives())}
	var err error
	if 2*countMembers(high) >= len(poised) {
		rep.Kind = HighContention
		err = a.highRound(&rep, high, low)
	} else {
		rep.Kind = LowContention
		err = a.lowRound(&rep, groups)
	}
	if err != nil {
		return false, err
	}
	// A contention-phase step may have completed some active's entry
	// protocol; the proof never leaves an active in the CS (I7) — such
	// processes run to completion and become visible.
	if err := a.finishEntrants(&rep); err != nil {
		return false, err
	}
	a.auditErasability(&rep)
	a.auditRound()
	rep.ActiveAfter = len(a.actives())
	a.report.Rounds = append(a.report.Rounds, rep)
	a.observeRound(&rep)
	return rep.Stepped > 0, nil
}

// finishEntrants runs to completion every active process that acquired the
// critical section during this round.
func (a *Adversary) finishEntrants(rep *Round) error {
	for _, p := range a.actives() {
		m := a.session.Machine()
		if tag := m.Tag(p); tag == mutex.TagCS || tag == mutex.TagExit {
			if err := a.finishProcess(p); err != nil {
				return err
			}
			rep.Finished++
		}
	}
	return nil
}

// auditRound checks the direct per-round invariants on the active set:
// actives never crashed (I6), never entered the critical section (I7), and
// in the DSM model their owned cells were touched by no one else (I8).
// Failures are recorded in the report; a sound construction reports none.
func (a *Adversary) auditRound() {
	m := a.session.Machine()
	for _, p := range a.actives() {
		if m.Crashes(p) > 0 {
			a.audit(fmt.Sprintf("I6: active p%d has crashed", p))
		}
		if tag := m.Tag(p); tag == mutex.TagCS || tag == mutex.TagExit {
			a.audit(fmt.Sprintf("I7: active p%d reached phase %s", p, mutex.TagName(tag)))
		}
	}
	if a.cfg.Session.Model != sim.DSM {
		return
	}
	activeSet := make(map[int]bool)
	for _, p := range a.actives() {
		activeSet[p] = true
	}
	for _, c := range m.Cells() {
		owner := c.Owner()
		if owner == memory.Shared || !activeSet[owner] {
			continue
		}
		for _, q := range m.Accessors(c) {
			if q != owner {
				a.audit(fmt.Sprintf("I8: cell %s owned by active p%d was accessed by p%d", c.Label(), owner, q))
			}
		}
	}
}

// auditErasability is the operational row-compliance check run at the end
// of every round: each active process must be individually erasable — the
// execution with its actions removed must be indistinguishable to everyone
// else. An active that fails was discovered (some completed process
// branched on its traces) and is blocked: it keeps its RMRs but is no
// longer part of the row. This realizes invariants I2/I3 per process; the
// proof's stronger joint-subset guarantee is approximated by the
// per-process check (see the package comment).
func (a *Adversary) auditErasability(rep *Round) {
	for _, q := range a.actives() {
		if a.verifyErasable(q) {
			continue
		}
		a.status[q] = Blocked
		rep.Blocked++
		a.report.RemovalRollbacks++
	}
}

// setupPhase advances every active process through non-RMR steps until it
// is poised to incur an RMR; processes that park leave the active set.
func (a *Adversary) setupPhase() error {
	m := a.session.Machine()
	for _, p := range a.actives() {
		for {
			if m.ProcDone(p) {
				// Completed without the adversary's consent (can only
				// happen with a trivial lock); count it finished.
				a.status[p] = Finished
				break
			}
			if m.Parked(p) || !m.Poised(p) {
				a.status[p] = Blocked
				break
			}
			if m.Tag(p) == mutex.TagCS {
				// The process slipped into the CS on non-RMR steps; the
				// proof would have finished it — do so (I7).
				if err := a.finishProcess(p); err != nil {
					return err
				}
				break
			}
			if m.WouldRMR(p) {
				break
			}
			if _, err := a.session.StepProc(p); err != nil {
				return err
			}
		}
	}
	return nil
}

func (a *Adversary) poisedActives() []int {
	m := a.session.Machine()
	var out []int
	for _, p := range a.actives() {
		if m.Poised(p) && m.WouldRMR(p) {
			out = append(out, p)
		}
	}
	return out
}

// group is the set of poised actives sharing a pending cell. The cell is
// recorded by allocation id, which is stable across the session
// replacements that verified removals cause (cell handles are not).
type group struct {
	cellID  int
	members []int
}

// cell resolves the group's cell on the current machine.
func (g group) cell(m *sim.Machine) memory.Cell { return m.CellByID(g.cellID) }

func (a *Adversary) groupByCell(poised []int) []group {
	m := a.session.Machine()
	byCell := make(map[int]*group)
	var order []int
	for _, p := range poised {
		po, ok := m.Pending(p)
		if !ok || po.Cell == nil {
			continue
		}
		id := po.Cell.CellID()
		g, ok := byCell[id]
		if !ok {
			g = &group{cellID: id}
			byCell[id] = g
			order = append(order, id)
		}
		g.members = append(g.members, p)
	}
	sort.Ints(order)
	out := make([]group, 0, len(byCell))
	for _, id := range order {
		out = append(out, *byCell[id])
	}
	return out
}

func (a *Adversary) classify(groups []group) (high, low []group) {
	for _, g := range groups {
		if len(g.members) >= a.cfg.K {
			high = append(high, g)
		} else {
			low = append(low, g)
		}
	}
	return high, low
}

func countMembers(gs []group) int {
	n := 0
	for _, g := range gs {
		n += len(g.members)
	}
	return n
}
