package perflog

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleManifest() *Manifest {
	m := New("rmecheck")
	m.Label = "unit"
	m.SetConfig("alg", "watree")
	m.SetConfig("n", 2)
	m.SetConfig("memo", true)
	m.Counter("machine_steps", 12345)
	m.Counter("states_visited", 678)
	m.Sample("wall_ms", 41.5)
	m.Finalize()
	return m
}

// TestDigestSortedAndStable pins the digest convention: insertion order is
// irrelevant, every key/value participates, and equal configs hash equally.
func TestDigestSortedAndStable(t *testing.T) {
	a := map[string]string{"alg": "watree", "n": "2", "w": "8"}
	b := map[string]string{"w": "8", "n": "2", "alg": "watree"}
	if Digest(a) != Digest(b) {
		t.Fatal("digest depends on map insertion order")
	}
	c := map[string]string{"alg": "watree", "n": "3", "w": "8"}
	if Digest(a) == Digest(c) {
		t.Fatal("digest ignored a changed value")
	}
	if len(Digest(a)) != 64 {
		t.Fatalf("digest is not hex sha256: %q", Digest(a))
	}
	// Keys and values must both be delimited: {"a":"b=c"} != {"a=b":"c"}.
	if Digest(map[string]string{"a": "b=c"}) == Digest(map[string]string{"a=b": "c"}) {
		t.Fatal("digest conflates key and value bytes")
	}
}

// TestAppendReadRoundTrip covers the ledger's core contract: append N
// manifests (across two calls, simulating separate runs), read them back in
// order with every section intact.
func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs", "ledger.jsonl")
	first := sampleManifest()
	if err := Append(path, first); err != nil {
		t.Fatal(err)
	}
	second := sampleManifest()
	second.Label = "second"
	second.Counter("machine_steps", 99999)
	third := New("rmrbench")
	third.SetConfig("experiment", "E2")
	third.Counter("steps", 7)
	if err := Append(path, second, third); err != nil {
		t.Fatal(err)
	}

	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d manifests, want 3", len(got))
	}
	if got[0].Label != "unit" || got[1].Label != "second" || got[2].Tool != "rmrbench" {
		t.Fatalf("append order not preserved: %+v", got)
	}
	if got[1].Counters["machine_steps"] != 99999 {
		t.Fatalf("counter lost: %+v", got[1].Counters)
	}
	if got[0].Wall["wall_ms"] != 41.5 {
		t.Fatalf("wall sample lost: %+v", got[0].Wall)
	}
	if got[0].ConfigDigest == "" || got[0].ConfigDigest != got[1].ConfigDigest {
		t.Fatalf("same config must share a digest: %q vs %q", got[0].ConfigDigest, got[1].ConfigDigest)
	}
	if got[0].Key() == got[2].Key() {
		t.Fatal("different tools must not share a key")
	}
}

// TestReadRejectsCorruptLine: a malformed line is an error naming the line
// number, not a silently dropped run.
func TestReadRejectsCorruptLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	if err := Append(path, sampleManifest()); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{not json\n")
	f.Close()
	_, err = Read(path)
	if err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Fatalf("want an error naming line 2, got %v", err)
	}
}

// TestReadRejectsUnknownVersion: future-schema entries fail loudly.
func TestReadRejectsUnknownVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	if err := os.WriteFile(path,
		[]byte(`{"version":99,"tool":"x","config":{},"config_digest":"","counters":{}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("want a version error, got %v", err)
	}
}

// TestSemanticBytesExcludesAdvisory: label, provenance, wall samples, and
// the telemetry snapshot must not leak into the deterministic portion — that
// is what lets the determinism tests demand byte equality with telemetry on
// and off.
func TestSemanticBytesExcludesAdvisory(t *testing.T) {
	a := sampleManifest()
	b := sampleManifest()
	b.Label = "other-label"
	b.Provenance = Provenance{GoVersion: "go9.99", Revision: "deadbeef", Dirty: true}
	b.Sample("wall_ms", 9000)
	b.Telemetry = map[string]int64{"engine_busy_ns": 123456789}
	if !bytes.Equal(a.SemanticBytes(), b.SemanticBytes()) {
		t.Fatalf("advisory fields leaked into SemanticBytes:\n%s\n%s", a.SemanticBytes(), b.SemanticBytes())
	}
	b.Counter("machine_steps", 1)
	if bytes.Equal(a.SemanticBytes(), b.SemanticBytes()) {
		t.Fatal("counter drift not visible in SemanticBytes")
	}
}

// TestBuildProvenance sanity-checks the build-info reader: a go_version is
// always present, and Short never returns an empty string.
func TestBuildProvenance(t *testing.T) {
	p := Build()
	if p.GoVersion == "" {
		t.Fatal("no go version in provenance")
	}
	if p.Short() == "" {
		t.Fatal("empty Short()")
	}
}
