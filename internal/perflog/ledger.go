package perflog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Append finalizes each manifest and appends it to the JSONL ledger at path,
// one compact JSON document per line, creating parent directories as needed.
// Appending (never rewriting) is the point: the ledger is the repository's
// cross-run memory, and a new run must not erase the trajectory.
func Append(path string, ms ...*Manifest) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("perflog: creating ledger directory: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("perflog: opening ledger: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, m := range ms {
		m.Finalize()
		blob, err := json.Marshal(m)
		if err != nil {
			f.Close()
			return fmt.Errorf("perflog: encoding manifest: %w", err)
		}
		w.Write(blob)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("perflog: writing ledger: %w", err)
	}
	return f.Close()
}

// Read parses a JSONL ledger in append order. Blank lines are skipped; a
// malformed line or an unknown schema version is an error naming the line,
// because a silently dropped run would corrupt every comparison downstream.
func Read(path string) ([]*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("perflog: opening ledger: %w", err)
	}
	defer f.Close()

	var out []*Manifest
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		m := &Manifest{}
		if err := json.Unmarshal(text, m); err != nil {
			return nil, fmt.Errorf("perflog: %s:%d: %w", path, line, err)
		}
		if m.Version != Version {
			return nil, fmt.Errorf("perflog: %s:%d: manifest version %d, want %d", path, line, m.Version, Version)
		}
		if m.Tool == "" {
			return nil, fmt.Errorf("perflog: %s:%d: manifest without a tool", path, line)
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perflog: reading %s: %w", path, err)
	}
	return out, nil
}
