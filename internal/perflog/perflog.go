// Package perflog is the cross-run performance ledger: schema-versioned run
// manifests appended as JSONL, so the repository accumulates a comparable
// trajectory of every tool's deterministic counters and advisory wall-clock
// samples across commits and machines.
//
// A manifest separates what can be gated from what can only be compared:
//
//   - Counters hold the run's deterministic counter set (RMR totals, machine
//     steps, states visited, ...). Every instrumented tool produces these
//     byte-stably — the same configuration and seed yield the same values at
//     any -parallel, with telemetry on or off, on any host — so a downstream
//     gate (cmd/rmereport regress) compares them for exact equality and
//     treats any difference as a regression.
//   - Wall holds host-dependent samples (wall milliseconds, throughput).
//     They are advisory: rmereport compares them statistically
//     (Mann-Whitney U over matched sample sets) and never fails a build on
//     them, because on a 1-CPU builder wall-clock is noise.
//   - Telemetry carries the final telemetry registry snapshot when the run
//     had telemetry enabled — extra advisory context, absent otherwise.
//
// Identity follows the spill-manifest convention of internal/check: the
// semantic configuration (the flags that shape the result, never -parallel,
// -heartbeat, or the ledger path itself) is recorded as a flat string map
// and hashed into ConfigDigest, and runs match across ledgers iff
// (Tool, ConfigDigest) match. Build provenance (go version, VCS revision,
// dirty bit) from runtime/debug.ReadBuildInfo identifies the code that
// produced each run without participating in the digest.
package perflog

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
)

// Version is the manifest schema version; Read rejects other versions.
const Version = 1

// Provenance identifies the build that produced a run, read from
// runtime/debug.ReadBuildInfo. Fields are empty when the binary carries no
// VCS stamp (go test, go run of a dirty tree without vcs info).
type Provenance struct {
	GoVersion string `json:"go_version,omitempty"`
	// Revision is the full VCS commit hash; Dirty reports uncommitted
	// changes at build time.
	Revision string `json:"revision,omitempty"`
	Dirty    bool   `json:"dirty,omitempty"`
	// CommitTime is the commit timestamp (vcs.time), not the build's wall
	// clock: it is a property of the revision, so it stays stable across
	// rebuilds of the same commit.
	CommitTime string `json:"commit_time,omitempty"`
}

// Build reads the current binary's provenance. Missing build info yields a
// Provenance with only the runtime's Go version.
func Build() Provenance {
	p := Provenance{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return p
	}
	if info.GoVersion != "" {
		p.GoVersion = info.GoVersion
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			p.Revision = s.Value
		case "vcs.modified":
			p.Dirty = s.Value == "true"
		case "vcs.time":
			p.CommitTime = s.Value
		}
	}
	return p
}

// Short renders the provenance compactly for version banners and tables.
func (p Provenance) Short() string {
	rev := p.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "" {
		rev = "(no vcs stamp)"
	}
	if p.Dirty {
		rev += "+dirty"
	}
	return fmt.Sprintf("%s %s", p.GoVersion, rev)
}

// Manifest is one run's ledger entry.
type Manifest struct {
	Version int    `json:"version"`
	Tool    string `json:"tool"`
	// Label is the free-form -runlabel tag ("baseline", "ci", a ticket id).
	// It annotates the run and is excluded from identity: a relabelled rerun
	// of the same configuration still matches.
	Label string `json:"label,omitempty"`
	// Config is the semantic configuration: every flag that shapes the
	// result, as flat strings. Non-semantic flags (-parallel, -heartbeat,
	// the ledger path, profiles) are deliberately absent, so the digest is
	// stable under observability and execution-layout changes.
	Config       map[string]string `json:"config"`
	ConfigDigest string            `json:"config_digest"`
	Provenance   Provenance        `json:"provenance"`
	// Counters is the deterministic counter set, gated exactly by
	// rmereport regress.
	Counters map[string]int64 `json:"counters"`
	// Wall holds host-dependent advisory samples (milliseconds, rates).
	Wall map[string]float64 `json:"wall,omitempty"`
	// Telemetry is the final telemetry registry snapshot (flat series),
	// present only when the run had telemetry enabled. Advisory.
	Telemetry map[string]int64 `json:"telemetry,omitempty"`
}

// New returns an empty manifest for the named tool with all sections
// initialised.
func New(tool string) *Manifest {
	return &Manifest{
		Version:  Version,
		Tool:     tool,
		Config:   map[string]string{},
		Counters: map[string]int64{},
		Wall:     map[string]float64{},
	}
}

// SetConfig records one semantic configuration key. Values render via
// fmt.Sprint, so bools, ints, and Stringers all read naturally.
func (m *Manifest) SetConfig(key string, v any) {
	m.Config[key] = fmt.Sprint(v)
}

// Counter records one deterministic counter.
func (m *Manifest) Counter(key string, v int64) {
	m.Counters[key] = v
}

// Sample records one advisory wall-clock sample.
func (m *Manifest) Sample(key string, v float64) {
	m.Wall[key] = v
}

// Finalize stamps the schema version and computes the config digest. Call
// after the last SetConfig and before appending to a ledger.
func (m *Manifest) Finalize() {
	m.Version = Version
	m.ConfigDigest = Digest(m.Config)
}

// Key is the cross-ledger matching identity: tool plus semantic digest.
func (m *Manifest) Key() string {
	return m.Tool + ":" + m.ConfigDigest
}

// Digest hashes a semantic configuration: sha256 over "key=value\n" lines in
// sorted key order, hex-encoded. Mirrors internal/check's spill-manifest
// configDigest convention.
func Digest(config map[string]string) string {
	keys := make([]string, 0, len(config))
	for k := range config {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		// Length-prefixed framing: "a"="b=c" must not collide with "a=b"="c".
		fmt.Fprintf(h, "%d:%s=%d:%s\n", len(k), k, len(config[k]), config[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// semantic is the deterministic portion of a manifest: what must be
// byte-identical across reruns of the same configuration.
type semantic struct {
	Version      int               `json:"version"`
	Tool         string            `json:"tool"`
	Config       map[string]string `json:"config"`
	ConfigDigest string            `json:"config_digest"`
	Counters     map[string]int64  `json:"counters"`
}

// SemanticBytes encodes the manifest's deterministic portion — version,
// tool, config, digest, and counters, with map keys in sorted order — and
// omits everything host- or run-dependent (label, provenance, wall samples,
// telemetry snapshot). Two runs of the same semantic configuration must
// produce identical SemanticBytes at any -parallel value and with telemetry
// on or off; the determinism tests pin exactly that.
func (m *Manifest) SemanticBytes() []byte {
	blob, err := json.Marshal(semantic{
		Version:      m.Version,
		Tool:         m.Tool,
		Config:       m.Config,
		ConfigDigest: m.ConfigDigest,
		Counters:     m.Counters,
	})
	if err != nil {
		// Maps of strings and int64s cannot fail to encode.
		panic(fmt.Sprintf("perflog: encoding semantic manifest: %v", err))
	}
	return blob
}
