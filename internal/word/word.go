// Package word implements the w-bit word domain of the paper's shared-memory
// model: every base object stores a value from a domain of size 2^w.
//
// All arithmetic on simulated memory cells is performed modulo 2^w so that an
// algorithm genuinely cannot exploit more than w bits of state per object,
// which is the resource the paper's lower bound is about.
package word

import (
	"fmt"
	"math"
	"math/bits"
)

// Word is the value stored in a single shared-memory cell. Simulated cells
// truncate it to the configured width; the native runtime uses the full 64
// bits (w = 64).
type Word = uint64

// MaxBits is the widest supported word. The simulator represents cell values
// in a uint64, so widths beyond 64 bits are modelled by using several cells,
// exactly as a real machine would have to.
const MaxBits = 64

// Width describes the number of bits per shared-memory cell.
type Width uint

// Valid reports whether the width is in the supported range [1, MaxBits].
func (w Width) Valid() bool { return w >= 1 && w <= MaxBits }

// Mask returns the bitmask selecting the low w bits.
func (w Width) Mask() Word {
	if w >= MaxBits {
		return ^Word(0)
	}
	return (Word(1) << w) - 1
}

// Trunc truncates v to the low w bits.
func (w Width) Trunc(v Word) Word { return v & w.Mask() }

// Add returns (a + b) mod 2^w.
func (w Width) Add(a, b Word) Word { return w.Trunc(a + b) }

// DomainSize returns 2^w as a float64 (exact for w < 53, approximate above);
// used only for reporting.
func (w Width) DomainSize() float64 { return math.Exp2(float64(uint(w))) }

// Fits reports whether v is representable in w bits.
func (w Width) Fits(v Word) bool { return v == w.Trunc(v) }

// Bit returns the word with only bit i set, or an error if i is out of range
// for the width.
func (w Width) Bit(i int) (Word, error) {
	if i < 0 || i >= int(w) {
		return 0, fmt.Errorf("word: bit %d out of range for %d-bit word", i, w)
	}
	return Word(1) << uint(i), nil
}

// PopCount returns the number of set bits in v.
func PopCount(v Word) int { return bits.OnesCount64(v) }

// Bits returns the indices of set bits in v, ascending.
func Bits(v Word) []int {
	if v == 0 {
		return nil
	}
	out := make([]int, 0, bits.OnesCount64(v))
	for v != 0 {
		i := bits.TrailingZeros64(v)
		out = append(out, i)
		v &^= Word(1) << uint(i)
	}
	return out
}

// Log computes floor(log_base(n)) for base ≥ 2, n ≥ 1; it is the number of
// complete levels of a base-ary arbitration tree over n leaves, and the shape
// function of the paper's tradeoff min(log_w n, log n/log log n).
func Log(base, n int) int {
	if base < 2 || n < 1 {
		return 0
	}
	l, p := 0, 1
	for p <= n/base {
		p *= base
		l++
	}
	return l
}

// CeilLog computes ceil(log_base(n)) for base ≥ 2, n ≥ 1.
func CeilLog(base, n int) int {
	if base < 2 || n <= 1 {
		return 0
	}
	l, p := 0, 1
	for p < n {
		p *= base
		l++
	}
	return l
}

// TheoreticalLowerBound evaluates the shape of the Theorem 1 bound
// min(log_w n, log n / log log n) (unscaled; constants are asymptotic).
func TheoreticalLowerBound(w Width, n int) float64 {
	if n < 4 {
		return 0
	}
	ln := math.Log(float64(n))
	ll := ln / math.Log(ln)
	if uint(w) < 2 {
		return ll
	}
	lw := ln / math.Log(float64(uint(w)))
	return math.Min(lw, ll)
}
