package word

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWidthValid(t *testing.T) {
	tests := []struct {
		give Width
		want bool
	}{
		{0, false},
		{1, true},
		{8, true},
		{64, true},
		{65, false},
	}
	for _, tt := range tests {
		if got := tt.give.Valid(); got != tt.want {
			t.Errorf("Width(%d).Valid() = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestWidthMask(t *testing.T) {
	tests := []struct {
		give Width
		want Word
	}{
		{1, 0x1},
		{4, 0xf},
		{8, 0xff},
		{16, 0xffff},
		{63, (1 << 63) - 1},
		{64, ^Word(0)},
	}
	for _, tt := range tests {
		if got := tt.give.Mask(); got != tt.want {
			t.Errorf("Width(%d).Mask() = %#x, want %#x", tt.give, got, tt.want)
		}
	}
}

func TestWidthTrunc(t *testing.T) {
	tests := []struct {
		w    Width
		give Word
		want Word
	}{
		{4, 0, 0},
		{4, 15, 15},
		{4, 16, 0},
		{4, 17, 1},
		{8, 0x1ff, 0xff},
		{64, ^Word(0), ^Word(0)},
	}
	for _, tt := range tests {
		if got := tt.w.Trunc(tt.give); got != tt.want {
			t.Errorf("Width(%d).Trunc(%d) = %d, want %d", tt.w, tt.give, got, tt.want)
		}
	}
}

func TestWidthAddWraps(t *testing.T) {
	var w Width = 4
	if got := w.Add(15, 1); got != 0 {
		t.Errorf("Add(15,1) in 4 bits = %d, want 0", got)
	}
	if got := w.Add(9, 9); got != 2 {
		t.Errorf("Add(9,9) in 4 bits = %d, want 2", got)
	}
}

func TestWidthAddProperties(t *testing.T) {
	// Addition mod 2^w is commutative and truncation is idempotent.
	for _, w := range []Width{1, 3, 8, 17, 32, 64} {
		w := w
		comm := func(a, b Word) bool { return w.Add(a, b) == w.Add(b, a) }
		if err := quick.Check(comm, nil); err != nil {
			t.Errorf("width %d: addition not commutative: %v", w, err)
		}
		idem := func(a Word) bool { return w.Trunc(w.Trunc(a)) == w.Trunc(a) }
		if err := quick.Check(idem, nil); err != nil {
			t.Errorf("width %d: truncation not idempotent: %v", w, err)
		}
		fits := func(a, b Word) bool { return w.Fits(w.Add(a, b)) }
		if err := quick.Check(fits, nil); err != nil {
			t.Errorf("width %d: addition escapes the domain: %v", w, err)
		}
	}
}

func TestBit(t *testing.T) {
	var w Width = 8
	for i := 0; i < 8; i++ {
		got, err := w.Bit(i)
		if err != nil {
			t.Fatalf("Bit(%d): %v", i, err)
		}
		if got != 1<<uint(i) {
			t.Errorf("Bit(%d) = %#x, want %#x", i, got, 1<<uint(i))
		}
	}
	if _, err := w.Bit(8); err == nil {
		t.Error("Bit(8) on 8-bit word: want error")
	}
	if _, err := w.Bit(-1); err == nil {
		t.Error("Bit(-1): want error")
	}
}

func TestBitsRoundTrip(t *testing.T) {
	f := func(v Word) bool {
		var back Word
		for _, i := range Bits(v) {
			back |= 1 << uint(i)
		}
		return back == v && len(Bits(v)) == PopCount(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		v := Word(rng.Uint64())
		bs := Bits(v)
		for j := 1; j < len(bs); j++ {
			if bs[j-1] >= bs[j] {
				t.Fatalf("Bits(%#x) not ascending: %v", v, bs)
			}
		}
	}
}

func TestLog(t *testing.T) {
	tests := []struct {
		base, n, want int
	}{
		{2, 1, 0},
		{2, 2, 1},
		{2, 3, 1},
		{2, 8, 3},
		{2, 1024, 10},
		{4, 16, 2},
		{4, 63, 2},
		{4, 64, 3},
		{10, 999, 2},
		{10, 1000, 3},
	}
	for _, tt := range tests {
		if got := Log(tt.base, tt.n); got != tt.want {
			t.Errorf("Log(%d, %d) = %d, want %d", tt.base, tt.n, got, tt.want)
		}
	}
}

func TestCeilLog(t *testing.T) {
	tests := []struct {
		base, n, want int
	}{
		{2, 1, 0},
		{2, 2, 1},
		{2, 3, 2},
		{2, 1024, 10},
		{2, 1025, 11},
		{16, 256, 2},
		{16, 257, 3},
		{8, 4096, 4},
	}
	for _, tt := range tests {
		if got := CeilLog(tt.base, tt.n); got != tt.want {
			t.Errorf("CeilLog(%d, %d) = %d, want %d", tt.base, tt.n, got, tt.want)
		}
	}
}

func TestLogConsistency(t *testing.T) {
	// For all n, base^Log(base,n) <= n < base^(Log(base,n)+1), and
	// CeilLog >= Log >= CeilLog-1.
	for base := 2; base <= 16; base++ {
		for n := 1; n <= 5000; n++ {
			l := Log(base, n)
			p := 1
			for i := 0; i < l; i++ {
				p *= base
			}
			if p > n {
				t.Fatalf("base^Log(%d,%d) = %d > n", base, n, p)
			}
			if p*base <= n {
				t.Fatalf("base^(Log(%d,%d)+1) = %d <= n", base, n, p*base)
			}
			cl := CeilLog(base, n)
			if cl < l || cl > l+1 {
				t.Fatalf("CeilLog(%d,%d)=%d inconsistent with Log=%d", base, n, cl, l)
			}
		}
	}
}

func TestTheoreticalLowerBoundShape(t *testing.T) {
	// Monotone decreasing in w for fixed n (wider words can only help), and
	// capped by log n / log log n.
	n := 1 << 20
	prev := TheoreticalLowerBound(4, n)
	for _, w := range []Width{8, 16, 32, 64} {
		cur := TheoreticalLowerBound(w, n)
		if cur > prev+1e-9 {
			t.Errorf("bound increased from w: %v -> %v", prev, cur)
		}
		prev = cur
	}
	// At w = 2 the min is log n / log log n.
	small := TheoreticalLowerBound(2, n)
	big := TheoreticalLowerBound(1, n)
	if small != big {
		t.Errorf("w<=2 should hit the log n/log log n branch: %v vs %v", small, big)
	}
}
