package word

import (
	"reflect"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if !b.Empty() || b.Count() != 0 {
		t.Fatalf("new set not empty: count=%d", b.Count())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 129} {
		b.Set(i)
		if !b.Test(i) {
			t.Errorf("Test(%d) = false after Set", i)
		}
	}
	if b.Count() != 6 {
		t.Errorf("Count = %d, want 6", b.Count())
	}
	if got := b.AppendTo(nil); !reflect.DeepEqual(got, []int{0, 1, 63, 64, 65, 129}) {
		t.Errorf("AppendTo = %v", got)
	}
	b.Clear(64)
	if b.Test(64) {
		t.Error("Test(64) = true after Clear")
	}
	var seen []int
	b.ForEach(func(i int) { seen = append(seen, i) })
	if !reflect.DeepEqual(seen, []int{0, 1, 63, 65, 129}) {
		t.Errorf("ForEach order = %v", seen)
	}
	b.ClearAll()
	if !b.Empty() {
		t.Error("not empty after ClearAll")
	}
	if got := b.AppendTo(seen[:0]); len(got) != 0 {
		t.Errorf("AppendTo after ClearAll = %v", got)
	}
}

func TestBitsetSetClearIdempotent(t *testing.T) {
	b := NewBitset(64)
	b.Set(7)
	b.Set(7)
	if b.Count() != 1 {
		t.Errorf("Count = %d after double Set", b.Count())
	}
	b.Clear(7)
	b.Clear(7)
	if !b.Empty() {
		t.Error("not empty after double Clear")
	}
}

func TestNewBitsetZero(t *testing.T) {
	if b := NewBitset(0); b != nil {
		t.Errorf("NewBitset(0) = %v, want nil", b)
	}
}
