package word

import (
	"sort"
	"testing"
)

// FuzzBitset differentially fuzzes the packed Bitset — the simulator's
// hot-path process-set representation — against a map[int]bool model. The
// op stream is pairs of bytes (opcode, element); after every mutation the
// membership, count, and emptiness views must agree, and at the end the
// ascending-iteration contract of ForEach/AppendTo is checked against the
// sorted model keys.
func FuzzBitset(f *testing.F) {
	f.Add(uint8(5), []byte{0, 0, 0, 1, 1, 0, 2, 0})
	f.Add(uint8(64), []byte{0, 63, 0, 64 % 64, 1, 63, 3, 0})
	f.Add(uint8(130), []byte{0, 129 % 130, 0, 127, 0, 128 % 130, 2, 127})
	f.Fuzz(func(t *testing.T, nRaw uint8, ops []byte) {
		n := int(nRaw)%130 + 1
		b := NewBitset(n)
		model := make(map[int]bool, n)
		for k := 0; k+1 < len(ops); k += 2 {
			i := int(ops[k+1]) % n
			switch ops[k] % 4 {
			case 0:
				b.Set(i)
				model[i] = true
			case 1:
				b.Clear(i)
				delete(model, i)
			case 2:
				if got, want := b.Test(i), model[i]; got != want {
					t.Fatalf("after %d ops: Test(%d) = %v, model %v", k/2, i, got, want)
				}
			case 3:
				b.ClearAll()
				clear(model)
			}
			if got, want := b.Count(), len(model); got != want {
				t.Fatalf("after %d ops: Count() = %d, model %d", k/2, got, want)
			}
			if got, want := b.Empty(), len(model) == 0; got != want {
				t.Fatalf("after %d ops: Empty() = %v, model %v", k/2, got, want)
			}
		}
		for i := 0; i < n; i++ {
			if got, want := b.Test(i), model[i]; got != want {
				t.Fatalf("final Test(%d) = %v, model %v", i, got, want)
			}
		}
		want := make([]int, 0, len(model))
		for i := range model {
			want = append(want, i)
		}
		sort.Ints(want)
		got := b.AppendTo(nil)
		if len(got) != len(want) {
			t.Fatalf("AppendTo = %v, want %v", got, want)
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("AppendTo = %v, want %v (ascending)", got, want)
			}
		}
		var walked []int
		b.ForEach(func(i int) { walked = append(walked, i) })
		if len(walked) != len(got) {
			t.Fatalf("ForEach visited %v, AppendTo %v", walked, got)
		}
		for k := range walked {
			if walked[k] != got[k] {
				t.Fatalf("ForEach visited %v, AppendTo %v", walked, got)
			}
		}
	})
}
