package word

import "math/bits"

// Bitset is a fixed-capacity set of small non-negative integers packed into
// machine words. The simulator uses it for the per-cell process sets on its
// hot path (cache copies, accessors, spin watchers): membership tests and
// updates are single word operations, clearing is a short memclr, and
// iteration is ascending by construction — which removes both the per-cell
// []bool allocations and the nondeterministic map iteration the previous
// representation needed to sort away.
type Bitset []Word

// bitsetShift selects the word index: i >> bitsetShift == i / 64.
const bitsetShift = 6

// NewBitset returns a set with capacity for elements 0..n-1.
func NewBitset(n int) Bitset {
	if n <= 0 {
		return nil
	}
	return make(Bitset, (n+MaxBits-1)/MaxBits)
}

// Test reports whether i is in the set.
func (b Bitset) Test(i int) bool {
	return b[i>>bitsetShift]&(1<<(uint(i)%MaxBits)) != 0
}

// Set adds i to the set.
func (b Bitset) Set(i int) {
	b[i>>bitsetShift] |= 1 << (uint(i) % MaxBits)
}

// Clear removes i from the set.
func (b Bitset) Clear(i int) {
	b[i>>bitsetShift] &^= 1 << (uint(i) % MaxBits)
}

// ClearAll empties the set, keeping its capacity.
func (b Bitset) ClearAll() {
	for i := range b {
		b[i] = 0
	}
}

// Empty reports whether the set has no members.
func (b Bitset) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of members.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls fn for every member in ascending order. fn must not mutate
// the set (use AppendTo to snapshot first when the loop body removes
// members).
func (b Bitset) ForEach(fn func(i int)) {
	for wi, w := range b {
		base := wi << bitsetShift
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// AppendTo appends the members to dst in ascending order and returns the
// extended slice; pass a reused scratch buffer (dst[:0]) to avoid
// allocation.
func (b Bitset) AppendTo(dst []int) []int {
	for wi, w := range b {
		base := wi << bitsetShift
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}
