package trace

import (
	"fmt"
	"io"
	"sort"

	"rme/internal/sim"
)

// CellStat is one cell's row of the attribution table.
type CellStat struct {
	Cell   int
	Label  string
	Steps  int // shared-memory operations on the cell
	Wakes  int // multi-cell spin rechecks charged against the cell
	RMRCC  int
	RMRDSM int
}

// RMRs returns the cell's RMR count under the given model.
func (s CellStat) RMRs(m sim.Model) int {
	if m == sim.DSM {
		return s.RMRDSM
	}
	return s.RMRCC
}

// ProcStat is one process's row of the attribution table.
type ProcStat struct {
	Proc    int
	Steps   int
	Crashes int
	Parks   int // failed spin probes (the process parked)
	Wakes   int // multi-cell spin rechecks
	RMRCC   int
	RMRDSM  int
}

// RMRs returns the process's RMR count under the given model.
func (s ProcStat) RMRs(m sim.Model) int {
	if m == sim.DSM {
		return s.RMRDSM
	}
	return s.RMRCC
}

// Attribution aggregates an event stream into per-cell and per-process RMR
// tables plus stream totals. Rows are sorted by id, so two attributions of
// the same stream render byte-identically.
type Attribution struct {
	Cells  []CellStat
	Procs  []ProcStat
	Events int
	Steps  int
	RMRCC  int
	RMRDSM int
}

// RMRs returns the stream's RMR total under the given cost model.
func (a Attribution) RMRs(m sim.Model) int {
	if m == sim.DSM {
		return a.RMRDSM
	}
	return a.RMRCC
}

// Attribute builds the attribution tables for one event stream. Multiple
// streams can be aggregated by concatenating them first (see Merge).
func Attribute(events []sim.Event) Attribution {
	a := Attribution{Events: len(events)}
	cells := map[int]*CellStat{}
	procs := map[int]*ProcStat{}
	cell := func(ev sim.Event) *CellStat {
		c, ok := cells[ev.Cell]
		if !ok {
			c = &CellStat{Cell: ev.Cell, Label: ev.CellLabel}
			cells[ev.Cell] = c
		}
		return c
	}
	proc := func(id int) *ProcStat {
		p, ok := procs[id]
		if !ok {
			p = &ProcStat{Proc: id}
			procs[id] = p
		}
		return p
	}
	for _, ev := range events {
		p := proc(ev.Proc)
		switch ev.Kind {
		case sim.EvStep:
			c := cell(ev)
			c.Steps++
			p.Steps++
			a.Steps++
			if ev.Parked {
				p.Parks++
			}
			if ev.RMRCC {
				c.RMRCC++
				p.RMRCC++
				a.RMRCC++
			}
			if ev.RMRDSM {
				c.RMRDSM++
				p.RMRDSM++
				a.RMRDSM++
			}
		case sim.EvWake:
			c := cell(ev)
			c.Wakes++
			p.Wakes++
			if ev.RMRCC {
				c.RMRCC++
				p.RMRCC++
				a.RMRCC++
			}
			if ev.RMRDSM {
				c.RMRDSM++
				p.RMRDSM++
				a.RMRDSM++
			}
		case sim.EvCrash:
			p.Crashes++
		}
	}
	for _, c := range cells {
		a.Cells = append(a.Cells, *c)
	}
	for _, p := range procs {
		a.Procs = append(a.Procs, *p)
	}
	sort.Slice(a.Cells, func(i, j int) bool { return a.Cells[i].Cell < a.Cells[j].Cell })
	sort.Slice(a.Procs, func(i, j int) bool { return a.Procs[i].Proc < a.Procs[j].Proc })
	return a
}

// Merge aggregates the attributions of several runs. Within a run cells are
// keyed by allocation id; across runs they are folded by label, because id 3
// of a watree construction and id 3 of an mcs construction are unrelated
// cells while "cs-witness" is the same logical location everywhere. Each
// folded row keeps the smallest contributing cell id as its sort key.
func Merge(runs []Run) Attribution {
	var m Attribution
	cells := map[string]*CellStat{}
	procs := map[int]*ProcStat{}
	for _, r := range runs {
		a := Attribute(r.Events)
		m.Events += a.Events
		m.Steps += a.Steps
		m.RMRCC += a.RMRCC
		m.RMRDSM += a.RMRDSM
		for _, c := range a.Cells {
			t, ok := cells[c.Label]
			if !ok {
				cc := c
				cells[c.Label] = &cc
				continue
			}
			if c.Cell < t.Cell {
				t.Cell = c.Cell
			}
			t.Steps += c.Steps
			t.Wakes += c.Wakes
			t.RMRCC += c.RMRCC
			t.RMRDSM += c.RMRDSM
		}
		for _, p := range a.Procs {
			t, ok := procs[p.Proc]
			if !ok {
				pp := p
				procs[p.Proc] = &pp
				continue
			}
			t.Steps += p.Steps
			t.Crashes += p.Crashes
			t.Parks += p.Parks
			t.Wakes += p.Wakes
			t.RMRCC += p.RMRCC
			t.RMRDSM += p.RMRDSM
		}
	}
	for _, c := range cells {
		m.Cells = append(m.Cells, *c)
	}
	for _, p := range procs {
		m.Procs = append(m.Procs, *p)
	}
	sort.Slice(m.Cells, func(i, j int) bool {
		if m.Cells[i].Cell != m.Cells[j].Cell {
			return m.Cells[i].Cell < m.Cells[j].Cell
		}
		return m.Cells[i].Label < m.Cells[j].Label
	})
	sort.Slice(m.Procs, func(i, j int) bool { return m.Procs[i].Proc < m.Procs[j].Proc })
	return m
}

// TopCells returns the n hottest cells under the given model, RMRs
// descending, ties broken by ascending cell id (deterministic).
func (a Attribution) TopCells(m sim.Model, n int) []CellStat {
	out := make([]CellStat, len(a.Cells))
	copy(out, a.Cells)
	sort.Slice(out, func(i, j int) bool {
		if out[i].RMRs(m) != out[j].RMRs(m) {
			return out[i].RMRs(m) > out[j].RMRs(m)
		}
		if out[i].Cell != out[j].Cell {
			return out[i].Cell < out[j].Cell
		}
		return out[i].Label < out[j].Label
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TopProcs returns the n costliest processes under the given model, RMRs
// descending, ties broken by ascending process id.
func (a Attribution) TopProcs(m sim.Model, n int) []ProcStat {
	out := make([]ProcStat, len(a.Procs))
	copy(out, a.Procs)
	sort.Slice(out, func(i, j int) bool {
		if out[i].RMRs(m) != out[j].RMRs(m) {
			return out[i].RMRs(m) > out[j].RMRs(m)
		}
		return out[i].Proc < out[j].Proc
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// WriteSummary renders the hottest-cells and costliest-processes tables.
// Output is a pure function of the attribution, so it is safe on the
// machine-clean stdout of the CLIs.
func WriteSummary(w io.Writer, a Attribution, m sim.Model, top int) {
	if top <= 0 {
		top = 10
	}
	fmt.Fprintf(w, "trace attribution (%s model): %d events, %d steps, %d CC RMRs, %d DSM RMRs\n",
		m, a.Events, a.Steps, a.RMRCC, a.RMRDSM)
	fmt.Fprintf(w, "  hottest cells:\n")
	fmt.Fprintf(w, "  %-28s %8s %8s %8s %8s\n", "cell", "steps", "wakes", "rmr-cc", "rmr-dsm")
	for _, c := range a.TopCells(m, top) {
		fmt.Fprintf(w, "  %-28s %8d %8d %8d %8d\n", c.Label, c.Steps, c.Wakes, c.RMRCC, c.RMRDSM)
	}
	fmt.Fprintf(w, "  costliest processes:\n")
	fmt.Fprintf(w, "  %-28s %8s %8s %8s %8s\n", "proc", "steps", "crashes", "rmr-cc", "rmr-dsm")
	for _, p := range a.TopProcs(m, top) {
		fmt.Fprintf(w, "  %-28s %8d %8d %8d %8d\n", fmt.Sprintf("p%d", p.Proc), p.Steps, p.Crashes, p.RMRCC, p.RMRDSM)
	}
}
