package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"rme/internal/memory"
	"rme/internal/sim"
	"rme/internal/word"
)

// Format selects a trace file encoding.
type Format int

// Supported encodings.
const (
	// FormatJSONL writes one JSON object per line: a "run" header followed
	// by its "event" records. Greppable, streamable, round-trips through
	// ReadJSONL.
	FormatJSONL Format = iota + 1
	// FormatChrome writes Chrome trace_event JSON ({"traceEvents": [...]}),
	// loadable in Perfetto or chrome://tracing. Runs map to pids, processes
	// to tids, and the deterministic event sequence number serves as the
	// timestamp, so identical executions produce identical files.
	FormatChrome
)

// String returns the flag spelling of the format.
func (f Format) String() string {
	switch f {
	case FormatJSONL:
		return "jsonl"
	case FormatChrome:
		return "chrome"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat parses a -traceformat flag value.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "jsonl", "":
		return FormatJSONL, nil
	case "chrome":
		return FormatChrome, nil
	default:
		return 0, fmt.Errorf("trace: unknown format %q (want jsonl or chrome)", s)
	}
}

// Write serializes the runs in the given format. Output is a pure function
// of the runs: byte-identical inputs produce byte-identical files.
func Write(w io.Writer, f Format, runs []Run) error {
	switch f {
	case FormatJSONL:
		return writeJSONL(w, runs)
	case FormatChrome:
		return writeChrome(w, runs)
	default:
		return fmt.Errorf("trace: unknown format %v", f)
	}
}

// WriteFile serializes the runs to a file.
func WriteFile(path string, f Format, runs []Run) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(file)
	if err := Write(bw, f, runs); err != nil {
		file.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// --- JSONL ------------------------------------------------------------------

// jsonlRun is the per-run header line.
type jsonlRun struct {
	Type  string `json:"type"` // "run"
	Index int    `json:"index"`
	Label string `json:"label,omitempty"`
	Procs int    `json:"procs"`
	Model string `json:"model"`
}

// jsonlEvent is one event line. Op is the operation's String rendering:
// readable and stable, but not re-executable — custom-op transitions cannot
// be serialized, so decoding is lossy in Op (attribution needs only the
// kind, cell, and RMR flags, which round-trip exactly).
type jsonlEvent struct {
	Type   string `json:"type"` // "event"
	Seq    int    `json:"seq"`
	Kind   string `json:"kind"`
	Proc   int    `json:"proc"`
	Cell   int    `json:"cell,omitempty"`
	Label  string `json:"label,omitempty"`
	Op     string `json:"op,omitempty"`
	Before uint64 `json:"before,omitempty"`
	After  uint64 `json:"after,omitempty"`
	Ret    uint64 `json:"ret,omitempty"`
	RMRCC  bool   `json:"rmr_cc,omitempty"`
	RMRDSM bool   `json:"rmr_dsm,omitempty"`
	Spin   bool   `json:"spin,omitempty"`
	Parked bool   `json:"parked,omitempty"`
	Note   string `json:"note,omitempty"`
}

func kindName(k sim.EventKind) string {
	switch k {
	case sim.EvStep:
		return "step"
	case sim.EvCrash:
		return "crash"
	case sim.EvMark:
		return "mark"
	case sim.EvWake:
		return "wake"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

func parseKind(s string) (sim.EventKind, error) {
	switch s {
	case "step":
		return sim.EvStep, nil
	case "crash":
		return sim.EvCrash, nil
	case "mark":
		return sim.EvMark, nil
	case "wake":
		return sim.EvWake, nil
	default:
		return 0, fmt.Errorf("trace: unknown event kind %q", s)
	}
}

func writeJSONL(w io.Writer, runs []Run) error {
	enc := json.NewEncoder(w)
	for _, r := range runs {
		if err := enc.Encode(jsonlRun{Type: "run", Index: r.Index, Label: r.Label, Procs: r.Procs, Model: r.Model.String()}); err != nil {
			return err
		}
		for _, ev := range r.Events {
			line := jsonlEvent{
				Type: "event", Seq: ev.Seq, Kind: kindName(ev.Kind), Proc: ev.Proc,
				Note: ev.Note, Parked: ev.Parked,
			}
			if ev.Kind == sim.EvStep || ev.Kind == sim.EvWake {
				line.Cell = ev.Cell
				line.Label = ev.CellLabel
				line.RMRCC = ev.RMRCC
				line.RMRDSM = ev.RMRDSM
			}
			if ev.Kind == sim.EvStep {
				line.Op = ev.Op.String()
				line.Before = uint64(ev.Before)
				line.After = uint64(ev.After)
				line.Ret = uint64(ev.Ret)
				line.Spin = ev.Spin
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadJSONL decodes a JSONL trace back into runs. Event Op fields are
// restored as named custom operations (display-only; see jsonlEvent).
func ReadJSONL(r io.Reader) ([]Run, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var runs []Run
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		switch probe.Type {
		case "run":
			var h jsonlRun
			if err := json.Unmarshal(raw, &h); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			model := sim.CC
			if h.Model == sim.DSM.String() {
				model = sim.DSM
			}
			runs = append(runs, Run{Index: h.Index, Label: h.Label, Procs: h.Procs, Model: model})
		case "event":
			if len(runs) == 0 {
				return nil, fmt.Errorf("trace: line %d: event before any run header", lineNo)
			}
			var e jsonlEvent
			if err := json.Unmarshal(raw, &e); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			kind, err := parseKind(e.Kind)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			ev := sim.Event{
				Seq: e.Seq, Kind: kind, Proc: e.Proc,
				Cell: e.Cell, CellLabel: e.Label,
				Before: word.Word(e.Before), After: word.Word(e.After), Ret: word.Word(e.Ret),
				RMRCC: e.RMRCC, RMRDSM: e.RMRDSM, Spin: e.Spin, Parked: e.Parked, Note: e.Note,
			}
			if kind == sim.EvStep && e.Op != "" {
				ev.Op = memory.Op{Code: memory.OpCustom, Name: e.Op}
			}
			r := &runs[len(runs)-1]
			r.Events = append(r.Events, ev)
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record type %q", lineNo, probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return runs, nil
}

// --- Chrome trace_event -----------------------------------------------------

// chromeEvent is one trace_event entry; see the trace_event format spec.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int            `json:"ts"`
	Dur   int            `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// writeChrome emits the runs as a trace_event JSON document. Event Seq is
// used as the microsecond timestamp: deterministic, ordered, and dense
// enough for Perfetto's timeline. Each run becomes one "process" whose name
// metadata carries the run label; each simulated process becomes a thread.
func writeChrome(w io.Writer, runs []Run) error {
	events := make([]chromeEvent, 0, 64)
	for _, r := range runs {
		events = append(events, chromeEvent{
			Name: "process_name", Phase: "M", PID: r.Index, TID: 0,
			Args: map[string]any{"name": fmt.Sprintf("run %d: %s (%s, n=%d)", r.Index, r.Label, r.Model, r.Procs)},
		})
		for p := 0; p < r.Procs; p++ {
			events = append(events, chromeEvent{
				Name: "thread_name", Phase: "M", PID: r.Index, TID: p,
				Args: map[string]any{"name": fmt.Sprintf("p%d", p)},
			})
		}
		for _, ev := range r.Events {
			switch ev.Kind {
			case sim.EvStep:
				args := map[string]any{
					"cell":   ev.CellLabel,
					"before": uint64(ev.Before),
					"after":  uint64(ev.After),
					"ret":    uint64(ev.Ret),
				}
				if ev.RMRCC {
					args["rmr_cc"] = true
				}
				if ev.RMRDSM {
					args["rmr_dsm"] = true
				}
				if ev.Parked {
					args["parked"] = true
				}
				cat := "step"
				if ev.RMRCC || ev.RMRDSM {
					cat = "step,rmr"
				}
				events = append(events, chromeEvent{
					Name: fmt.Sprintf("%s %s", ev.Op, ev.CellLabel), Cat: cat,
					Phase: "X", TS: ev.Seq, Dur: 1, PID: r.Index, TID: ev.Proc, Args: args,
				})
			case sim.EvCrash:
				events = append(events, chromeEvent{
					Name: "CRASH", Cat: "crash", Phase: "i", TS: ev.Seq,
					PID: r.Index, TID: ev.Proc, Scope: "t",
				})
			case sim.EvMark:
				events = append(events, chromeEvent{
					Name: ev.Note, Cat: "mark", Phase: "i", TS: ev.Seq,
					PID: r.Index, TID: ev.Proc, Scope: "t",
				})
			case sim.EvWake:
				args := map[string]any{"cell": ev.CellLabel}
				if ev.RMRCC {
					args["rmr_cc"] = true
				}
				if ev.RMRDSM {
					args["rmr_dsm"] = true
				}
				if ev.Parked {
					args["still_parked"] = true
				}
				events = append(events, chromeEvent{
					Name: fmt.Sprintf("recheck %s", ev.CellLabel), Cat: "wake",
					Phase: "X", TS: ev.Seq, Dur: 1, PID: r.Index, TID: ev.Proc, Args: args,
				})
			}
		}
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
