// Package trace is the observability layer over the simulator: it turns the
// machine's step-level event stream into attribution tables (which cells and
// which processes the RMRs were charged to) and into portable trace files —
// JSONL for scripting and Chrome trace_event JSON viewable in Perfetto or
// chrome://tracing.
//
// The paper's argument is per-access — Anderson–Kim-style round arguments
// and the Katzan–Morrison F&A upper bound both say *where* RMRs are forced,
// not just how many — so aggregate Max/Total counters are not enough to
// check them against an execution. A trace makes the per-access story
// inspectable: every shared-memory step carries its cell, operation, value
// transition, and RMR charges under both models; crash, park, and wake
// transitions appear as their own records.
//
// Tracing is pull-based and deterministic: a run's trace is exactly the
// event sequence the machine retains (sim.Machine.Trace), or streams through
// the sim.Observer hook for NoTrace configurations. Because executions replay
// byte-identically (the PR 1 guarantee), traces are byte-identical across
// -parallel settings and across Machine.Reset reuse; the engine's Capture
// merges per-run traces in submission order to keep that property across a
// worker pool.
package trace

import (
	"sync"

	"rme/internal/sim"
)

// Collector is the trivial sim.Observer: it appends every event to a slice.
// Attach it with Machine.SetObserver to stream a run whose configuration
// disables retained traces (NoTrace), or to watch events as they happen.
type Collector struct {
	Events []sim.Event
}

var _ sim.Observer = (*Collector)(nil)

// ObserveEvent implements sim.Observer.
func (c *Collector) ObserveEvent(ev sim.Event) { c.Events = append(c.Events, ev) }

// Reset truncates the buffer in place, keeping capacity for the next run.
func (c *Collector) Reset() { c.Events = c.Events[:0] }

// Take returns the collected events as a fresh slice and resets the
// collector, so a recycled machine can keep appending into the old capacity.
func (c *Collector) Take() []sim.Event {
	out := make([]sim.Event, len(c.Events))
	copy(out, c.Events)
	c.Reset()
	return out
}

// Run is one traced execution: its slot in the submission order, a label for
// humans (algorithm name, reproducer id, experiment cell), the machine shape,
// and the event stream.
type Run struct {
	// Index is the run's global submission-order slot (see Capture).
	Index int
	// Label identifies the run in exported files ("watree", "reproducer-2").
	Label string
	// Procs and Model describe the machine the events ran on.
	Procs int
	Model sim.Model
	// Events is the run's full event stream, in sequence order.
	Events []sim.Event
}

// Capture accumulates per-run traces from concurrent workers and hands them
// back in deterministic submission order. Callers reserve a contiguous block
// of slots up front (Reserve), then fill each slot from whichever goroutine
// completes the run (Set); Runs returns the filled slots sorted by index, so
// the serialized output never depends on completion order. All methods are
// safe for concurrent use.
type Capture struct {
	mu   sync.Mutex
	runs []Run
	used []bool
}

// Reserve allocates n submission-order slots and returns the index of the
// first; slot i of the batch is base+i.
func (c *Capture) Reserve(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	base := len(c.runs)
	c.runs = append(c.runs, make([]Run, n)...)
	c.used = append(c.used, make([]bool, n)...)
	return base
}

// Set fills a reserved slot. The run's Index is overwritten with the slot.
func (c *Capture) Set(slot int, r Run) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r.Index = slot
	c.runs[slot] = r
	c.used[slot] = true
}

// Runs returns the filled slots in submission order. Unfilled slots (runs
// skipped by a fail-fast stop) are omitted; their indices are preserved, so
// a skip is visible as a gap, not a shift.
func (c *Capture) Runs() []Run {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Run, 0, len(c.runs))
	for i, r := range c.runs {
		if c.used[i] {
			out = append(out, r)
		}
	}
	return out
}

// Len returns the number of reserved slots.
func (c *Capture) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.runs)
}
