package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"rme/internal/memory"
	"rme/internal/sim"
	"rme/internal/word"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureRun executes a fixed two-process contention program under a fixed
// schedule and returns the traced run. Everything is pinned — program,
// schedule, model — so the event stream is byte-identical across test runs
// and suitable for golden files.
func fixtureRun(t *testing.T, model sim.Model) Run {
	t.Helper()
	m, err := sim.New(sim.Config{Procs: 2, Width: 16, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	c := m.NewCell("counter", memory.Shared, 0)
	flag := m.NewCell("flag", memory.Shared, 0)
	progs := []sim.Program{
		sim.ProgramFuncs{RunFunc: func(p *sim.Proc) {
			p.Add(c, 1)
			p.Write(flag, 1)
		}},
		sim.ProgramFuncs{RunFunc: func(p *sim.Proc) {
			p.Add(c, 1)
			p.SpinUntil(flag, func(v word.Word) bool { return v != 0 })
			p.Read(c)
		}},
	}
	if err := m.Start(progs); err != nil {
		t.Fatal(err)
	}
	// p1 races ahead into the spin (parking), then round-robin to the end;
	// the drive is a pure function of machine state, so the schedule — and
	// the golden files — are pinned.
	for _, a := range []int{1, 1} {
		if _, err := m.Step(a); err != nil {
			t.Fatal(err)
		}
	}
	for !m.AllDone() {
		ps := m.PoisedProcs()
		if len(ps) == 0 {
			t.Fatal("fixture stuck")
		}
		for _, p := range ps {
			if _, err := m.Step(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	return Run{Index: 0, Label: "fixture", Procs: 2, Model: model, Events: m.Trace()}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenJSONL(t *testing.T) {
	runs := []Run{fixtureRun(t, sim.CC)}
	var buf bytes.Buffer
	if err := Write(&buf, FormatJSONL, runs); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fixture_cc.jsonl", buf.Bytes())
}

func TestGoldenChrome(t *testing.T) {
	runs := []Run{fixtureRun(t, sim.CC)}
	var buf bytes.Buffer
	if err := Write(&buf, FormatChrome, runs); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fixture_cc_chrome.json", buf.Bytes())
}

// TestWriteTwiceIdentical runs every emitter twice on the same input and
// diffs bytes — the regression test for unordered-map iteration sneaking
// into an output path.
func TestWriteTwiceIdentical(t *testing.T) {
	runs := []Run{fixtureRun(t, sim.CC), fixtureRun(t, sim.DSM)}
	for _, f := range []Format{FormatJSONL, FormatChrome} {
		var a, b bytes.Buffer
		if err := Write(&a, f, runs); err != nil {
			t.Fatal(err)
		}
		if err := Write(&b, f, runs); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%v: two writes of the same runs differ", f)
		}
	}

	a1 := Merge(runs)
	a2 := Merge(runs)
	var s1, s2 bytes.Buffer
	WriteSummary(&s1, a1, sim.CC, 10)
	WriteSummary(&s2, a2, sim.CC, 10)
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Error("two summary renders of the same runs differ")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	runs := []Run{fixtureRun(t, sim.CC), fixtureRun(t, sim.DSM)}
	runs[1].Index = 1
	var buf bytes.Buffer
	if err := Write(&buf, FormatJSONL, runs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(runs) {
		t.Fatalf("decoded %d runs, want %d", len(got), len(runs))
	}
	for i := range runs {
		if got[i].Index != runs[i].Index || got[i].Label != runs[i].Label ||
			got[i].Procs != runs[i].Procs || got[i].Model != runs[i].Model {
			t.Errorf("run %d header mismatch: %+v", i, got[i])
		}
		if len(got[i].Events) != len(runs[i].Events) {
			t.Fatalf("run %d: decoded %d events, want %d", i, len(got[i].Events), len(runs[i].Events))
		}
		for j, ev := range runs[i].Events {
			dec := got[i].Events[j]
			// Op decodes as a display-only custom op; compare the rest.
			if dec.Seq != ev.Seq || dec.Kind != ev.Kind || dec.Proc != ev.Proc ||
				dec.Cell != ev.Cell || dec.CellLabel != ev.CellLabel ||
				dec.Before != ev.Before || dec.After != ev.After || dec.Ret != ev.Ret ||
				dec.RMRCC != ev.RMRCC || dec.RMRDSM != ev.RMRDSM ||
				dec.Spin != ev.Spin || dec.Parked != ev.Parked || dec.Note != ev.Note {
				t.Errorf("run %d event %d mismatch:\n got %+v\nwant %+v", i, j, dec, ev)
			}
		}
	}
	// Attribution must be computable from a decoded trace.
	if want, got := Merge(runs), Merge(got); !reflect.DeepEqual(want, got) {
		t.Errorf("attribution from decoded trace differs:\n got %+v\nwant %+v", got, want)
	}
}

// TestCaptureSubmissionOrder fills slots from concurrent goroutines in
// adversarial order and asserts Runs comes back in submission order.
func TestCaptureSubmissionOrder(t *testing.T) {
	var c Capture
	base := c.Reserve(8)
	if base != 0 {
		t.Fatalf("first Reserve base = %d", base)
	}
	base2 := c.Reserve(4)
	if base2 != 8 {
		t.Fatalf("second Reserve base = %d, want 8", base2)
	}
	var wg sync.WaitGroup
	for i := 11; i >= 0; i-- {
		if i == 5 { // simulate a fail-fast skip: slot 5 never filled
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.Set(i, Run{Label: string(rune('a' + i))})
		}(i)
	}
	wg.Wait()
	runs := c.Runs()
	if len(runs) != 11 {
		t.Fatalf("got %d runs, want 11 (one skipped)", len(runs))
	}
	prev := -1
	for _, r := range runs {
		if r.Index <= prev {
			t.Fatalf("runs out of order: %d after %d", r.Index, prev)
		}
		if r.Index == 5 {
			t.Fatal("skipped slot surfaced")
		}
		if r.Label != string(rune('a'+r.Index)) {
			t.Errorf("slot %d holds label %q", r.Index, r.Label)
		}
		prev = r.Index
	}
}

func TestAttributeFlagsAndTables(t *testing.T) {
	run := fixtureRun(t, sim.CC)
	a := Attribute(run.Events)
	wantCC, wantDSM := 0, 0
	for _, ev := range run.Events {
		if ev.RMRCC {
			wantCC++
		}
		if ev.RMRDSM {
			wantDSM++
		}
	}
	if a.RMRCC != wantCC || a.RMRDSM != wantDSM {
		t.Errorf("attribution totals CC=%d DSM=%d, want CC=%d DSM=%d", a.RMRCC, a.RMRDSM, wantCC, wantDSM)
	}
	var cellCC, procCC int
	for _, c := range a.Cells {
		cellCC += c.RMRCC
	}
	for _, p := range a.Procs {
		procCC += p.RMRCC
	}
	if cellCC != wantCC || procCC != wantCC {
		t.Errorf("cell sum %d / proc sum %d, want %d", cellCC, procCC, wantCC)
	}
	top := a.TopCells(sim.CC, 1)
	if len(top) != 1 {
		t.Fatalf("TopCells(1) returned %d rows", len(top))
	}
	for _, c := range a.Cells {
		if c.RMRCC > top[0].RMRCC {
			t.Errorf("TopCells missed hotter cell %q (%d > %d)", c.Label, c.RMRCC, top[0].RMRCC)
		}
	}
}

func TestParseFormat(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Format
		err  bool
	}{
		{"jsonl", FormatJSONL, false},
		{"", FormatJSONL, false},
		{"chrome", FormatChrome, false},
		{"perfetto", 0, true},
	} {
		got, err := ParseFormat(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseFormat(%q) = %v, %v", tc.in, got, err)
		}
	}
}
