package algtest

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"rme/internal/mutex"
	"rme/internal/word"
)

// NativeOptions tunes the native-backend conformance run.
type NativeOptions struct {
	// Width is the word size (default 64, the full hardware word).
	Width word.Width
	// Procs lists the process counts exercised (default 2, 4, 8).
	Procs []int
	// Passes is the number of super-passages per process per subtest
	// (default 30; 10 under -short).
	Passes int
}

func (o NativeOptions) withDefaults() NativeOptions {
	if o.Width == 0 {
		o.Width = word.MaxBits
	}
	if len(o.Procs) == 0 {
		o.Procs = []int{2, 4, 8}
	}
	if o.Passes == 0 {
		o.Passes = 30
		if testing.Short() {
			o.Passes = 10
		}
	}
	return o
}

// RunNative executes the native-backend conformance suite: the algorithm
// runs on real sync/atomic memory with true goroutine concurrency instead
// of the simulator's scheduled interleavings. Mutual exclusion is witnessed
// two ways at once — an unsynchronized counter that the race detector
// watches (any overlap in the CS is a reported data race) and an atomic
// holder check (any overlap fails even without -race). For recoverable
// algorithms, panic-based crash injection sweeps the crash point across the
// passage and then storms random points under contention, driving the
// recover protocol on real atomics.
//
// These tests are meaningful without -race but are designed to run under
// it, across several GOMAXPROCS values (see the native-race CI job).
func RunNative(t *testing.T, alg mutex.Algorithm, opts NativeOptions) {
	t.Helper()
	opts = opts.withDefaults()

	t.Run("MutualExclusion", func(t *testing.T) {
		for _, n := range opts.Procs {
			n := n
			t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
				testNativeMutex(t, alg, opts, n)
			})
		}
	})
	if alg.Recoverable() {
		t.Run("CrashSweep", func(t *testing.T) { testNativeCrashSweep(t, alg, opts) })
		t.Run("CrashStorm", func(t *testing.T) {
			for _, n := range opts.Procs {
				n := n
				t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
					testNativeCrashStorm(t, alg, opts, n)
				})
			}
		})
		t.Run("RestartRecover", func(t *testing.T) { testNativeRestart(t, alg, opts) })
	}
}

func newNativeLock(t *testing.T, alg mutex.Algorithm, opts NativeOptions, n int) *mutex.NativeLock {
	t.Helper()
	lock, err := mutex.NewNativeLock(alg, n, opts.Width)
	if err != nil {
		t.Fatalf("native lock (n=%d, w=%d): %v", n, opts.Width, err)
	}
	return lock
}

// criticalSection builds the double mutual exclusion witness shared by the
// native tests: tally is deliberately unsynchronized so -race flags any CS
// overlap, and the holder CAS catches overlap without -race.
func criticalSection(t *testing.T, tally *int, holder *atomic.Int32, id int) func() {
	return func() {
		if !holder.CompareAndSwap(0, int32(id+1)) {
			t.Errorf("process %d entered the CS while process %d held it", id, holder.Load()-1)
		}
		*tally++
		holder.Store(0)
	}
}

func testNativeMutex(t *testing.T, alg mutex.Algorithm, opts NativeOptions, n int) {
	lock := newNativeLock(t, alg, opts, n)
	var (
		tally  int
		holder atomic.Int32
		wg     sync.WaitGroup
	)
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := lock.Bind(id)
			cs := criticalSection(t, &tally, &holder, id)
			for p := 0; p < opts.Passes; p++ {
				h.Lock()
				cs()
				h.Unlock()
			}
		}()
	}
	wg.Wait()
	if want := n * opts.Passes; tally != want {
		t.Errorf("critical section ran %d times, want %d", tally, want)
	}
}

// testNativeCrashSweep crashes a solo process at every operation offset
// from the start of a super-passage, walking the crash point through entry,
// the CS boundary, exit, and recovery itself. Every passage must complete
// and leave the lock acquirable by a second process.
func testNativeCrashSweep(t *testing.T, alg mutex.Algorithm, opts NativeOptions) {
	lock := newNativeLock(t, alg, opts, 2)
	h := lock.Bind(0)
	var (
		tally  int
		holder atomic.Int32
	)
	cs := criticalSection(t, &tally, &holder, 0)
	sweep := int64(3 * opts.Passes)
	for off := int64(0); off < sweep; off++ {
		h.CrashAfter(off)
		h.Super(cs)
		h.CrashAfter(-1)
	}
	if h.Crashes() == 0 {
		t.Error("sweep never triggered a crash")
	}
	if tally < int(sweep) {
		t.Errorf("critical section ran %d times, want >= %d", tally, sweep)
	}
	other := lock.Bind(1)
	entered := false
	other.Super(func() { entered = true })
	if !entered {
		t.Error("lock not acquirable after the crash sweep")
	}
}

func testNativeCrashStorm(t *testing.T, alg mutex.Algorithm, opts NativeOptions, n int) {
	lock := newNativeLock(t, alg, opts, n)
	var (
		tally   int
		holder  atomic.Int32
		crashes atomic.Int64
		wg      sync.WaitGroup
	)
	for id := 0; id < n; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := lock.Bind(id)
			cs := criticalSection(t, &tally, &holder, id)
			for p := 0; p < opts.Passes; p++ {
				if p%3 != 0 {
					// Deterministic pseudo-random offsets spread crash points
					// across the passage without a shared RNG.
					h.CrashAfter(int64((id*37 + p*13) % 60))
				}
				h.Super(cs)
				h.CrashAfter(-1)
			}
			crashes.Add(h.Crashes())
		}()
	}
	wg.Wait()
	// Crashes during exit may legally re-enter the CS (CSR), so the tally
	// can exceed one per super-passage but never fall short.
	if want := n * opts.Passes; tally < want {
		t.Errorf("critical section ran %d times, want >= %d", tally, want)
	}
	if crashes.Load() == 0 {
		t.Error("storm never triggered a crash")
	}
}

// testNativeRestart kills a process's first incarnation mid-entry (the
// goroutine and handle are discarded, as a real crashed thread would be)
// and has a fresh incarnation recover from the shared cells alone, while a
// peer keeps using the lock.
func testNativeRestart(t *testing.T, alg mutex.Algorithm, opts NativeOptions) {
	lock := newNativeLock(t, alg, opts, 2)
	h := lock.Bind(0)
	h.CrashAfter(2)
	func() {
		defer func() {
			if r := recover(); r != nil && !mutex.IsInjectedCrash(r) {
				panic(r)
			}
		}()
		h.Lock()
		h.Unlock()
	}()

	h2 := lock.Bind(0)
	switch st := h2.Recover(); st {
	case mutex.RecoverAcquired:
		h2.Unlock()
	case mutex.RecoverIdle, mutex.RecoverReleased:
	default:
		t.Fatalf("Recover after restart = %v", st)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		peer := lock.Bind(1)
		for p := 0; p < opts.Passes; p++ {
			peer.Lock()
			peer.Unlock()
		}
	}()
	for p := 0; p < opts.Passes; p++ {
		h2.Lock()
		h2.Unlock()
	}
	wg.Wait()
}
