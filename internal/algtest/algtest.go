// Package algtest is a reusable conformance suite for mutual exclusion
// algorithms: mutual exclusion, progress, and — for recoverable algorithms —
// systematic crash injection at every step of a base schedule, double
// crashes, and randomized crash storms. The crash patterns are expressed as
// fault-injection campaign presets over internal/faults, so every failure a
// conformance run reports comes with a delta-debugged minimal reproducer.
// The model checker in internal/check explores interleavings more
// aggressively on top.
package algtest

import (
	"fmt"
	"testing"

	"rme/internal/faults"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/word"
)

// Options tunes the conformance run for an algorithm's constraints.
type Options struct {
	// Width is the word size used for most tests (default 16).
	Width word.Width
	// MaxProcs caps the process counts exercised (default 8).
	MaxProcs int
	// Seeds is the number of random-schedule seeds (default 30).
	Seeds int
	// SkipDSM skips DSM-model runs (for CC-only algorithms whose waiting is
	// not DSM-local; their correctness is model-independent, so this only
	// reduces redundancy, but it documents intent).
	SkipDSM bool
}

func (o Options) withDefaults() Options {
	if o.Width == 0 {
		o.Width = 16
	}
	if o.MaxProcs == 0 {
		o.MaxProcs = 8
	}
	if o.Seeds == 0 {
		o.Seeds = 30
	}
	return o
}

// Run executes the full conformance suite as subtests.
func Run(t *testing.T, alg mutex.Algorithm, opts Options) {
	t.Helper()
	opts = opts.withDefaults()

	models := []sim.Model{sim.CC}
	if !opts.SkipDSM {
		models = append(models, sim.DSM)
	}

	t.Run("Solo", func(t *testing.T) { testSolo(t, alg, opts) })
	for _, model := range models {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			t.Run("RoundRobin", func(t *testing.T) { testRoundRobin(t, alg, opts, model) })
			t.Run("RandomSchedules", func(t *testing.T) { testRandom(t, alg, opts, model) })
			if alg.Recoverable() {
				t.Run("CrashEverywhere", func(t *testing.T) {
					runCampaign(t, alg, opts, model, 3, 1, faults.ExhaustiveCrashes{Crashes: 1})
				})
				t.Run("CrashParked", func(t *testing.T) {
					runCampaign(t, alg, opts, model, 3, 1, faults.ParkedCrashes{})
				})
				t.Run("DoubleCrash", func(t *testing.T) {
					runCampaign(t, alg, opts, model, 2, 1, faults.ExhaustiveCrashes{Crashes: 2})
				})
				t.Run("CrashStorm", func(t *testing.T) { testCrashStorm(t, alg, opts, model) })
				t.Run("SystemWideCrash", func(t *testing.T) {
					runCampaign(t, alg, opts, model, 3, 1, faults.SystemWideCrashes{})
				})
			}
		})
	}
}

// runCampaign executes one fault-injection campaign axis and reports every
// failure with its minimal reproducer. The invariant oracles mirror the
// suite's historical assertions: no safety violation (mutual exclusion), no
// stuck or unboundedly long execution (deadlock-freedom), and every process
// completing its super-passages (CS re-entry).
func runCampaign(t *testing.T, alg mutex.Algorithm, opts Options, model sim.Model, n, passes int, src faults.Source) {
	t.Helper()
	rep, err := faults.Campaign{
		Session: mutex.Config{
			Procs: n, Width: opts.Width, Model: model, Algorithm: alg, Passes: passes,
		},
		Sources: []faults.Source{src},
		Oracles: []faults.Oracle{faults.MutualExclusion{}, faults.DeadlockFree{}, faults.Reentry{}},
	}.Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	for _, f := range rep.Failures {
		t.Errorf("%s", f)
	}
}

func newSession(t *testing.T, alg mutex.Algorithm, opts Options, model sim.Model, procs, passes int) *mutex.Session {
	t.Helper()
	s, err := mutex.NewSession(mutex.Config{
		Procs:     procs,
		Width:     opts.Width,
		Model:     model,
		Algorithm: alg,
		Passes:    passes,
		NoTrace:   true,
	})
	if err != nil {
		t.Fatalf("new session (n=%d): %v", procs, err)
	}
	t.Cleanup(s.Close)
	return s
}

func testSolo(t *testing.T, alg mutex.Algorithm, opts Options) {
	s := newSession(t, alg, opts, sim.CC, 1, 3)
	if err := s.RunRoundRobin(); err != nil {
		t.Fatalf("solo run: %v", err)
	}
	assertCompleted(t, s, 1, 3)
}

func procCounts(maxProcs int) []int {
	counts := []int{2, 3, 5, 8, 13}
	var out []int
	for _, c := range counts {
		if c <= maxProcs {
			out = append(out, c)
		}
	}
	return out
}

func testRoundRobin(t *testing.T, alg mutex.Algorithm, opts Options, model sim.Model) {
	for _, n := range procCounts(opts.MaxProcs) {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			s := newSession(t, alg, opts, model, n, 2)
			if err := s.RunRoundRobin(); err != nil {
				t.Fatalf("round robin: %v", err)
			}
			assertCompleted(t, s, n, 2)
		})
	}
}

func testRandom(t *testing.T, alg mutex.Algorithm, opts Options, model sim.Model) {
	for _, n := range procCounts(opts.MaxProcs) {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			for seed := 0; seed < opts.Seeds; seed++ {
				s := newSession(t, alg, opts, model, n, 2)
				if err := s.RunRandom(int64(seed), mutex.RandomRunOptions{}); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				assertCompleted(t, s, n, 2)
				s.Close()
			}
		})
	}
}

// testCrashStorm keeps the historical storm semantics — random schedules with
// probabilistic crash injection along the way — which the plan-based campaign
// sources deliberately do not model (plans fix crash decision indices up
// front; the storm crashes wherever the coin lands).
func testCrashStorm(t *testing.T, alg mutex.Algorithm, opts Options, model sim.Model) {
	for _, n := range procCounts(opts.MaxProcs) {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			for seed := 0; seed < opts.Seeds; seed++ {
				s := newSession(t, alg, opts, model, n, 2)
				err := s.RunRandom(int64(seed), mutex.RandomRunOptions{
					CrashProb:         0.05,
					MaxCrashesPerProc: 3,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				assertCompleted(t, s, n, 2)
				s.Close()
			}
		})
	}
}

// Campaign runs the default fault-injection campaign for an algorithm at one
// configuration, sized down under -short, and reports failures with their
// minimal reproducers. Algorithm packages call this as their campaign
// conformance entry point; the default oracles include the per-algorithm RMR
// budget ceilings, so a passage whose cost regresses past its asymptotic
// class fails here.
func Campaign(t *testing.T, alg mutex.Algorithm, n int, w word.Width, model sim.Model) {
	t.Helper()
	seed := int64(1)
	rep, err := faults.Campaign{
		Session: mutex.Config{Procs: n, Width: w, Model: model, Algorithm: alg},
		Sources: faults.DefaultSources(alg.Recoverable(), seed, testing.Short()),
		Seed:    seed,
	}.Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	t.Logf("%s n=%d w=%d %s: %d runs across %d sources", alg.Name(), n, w, model, rep.Runs, len(rep.Sources))
	for _, f := range rep.Failures {
		t.Errorf("%s", f)
	}
}

// assertCompleted verifies that every process finished the expected number
// of super-passages and that no safety violation was recorded.
func assertCompleted(t *testing.T, s *mutex.Session, procs, passes int) {
	t.Helper()
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
	m := s.Machine()
	if !m.AllDone() {
		t.Fatal("not all processes finished")
	}
	completed := s.CompletedPasses()
	for p, c := range completed {
		if c < passes {
			t.Errorf("p%d completed %d super-passage-ending passages, want >= %d", p, c, passes)
		}
	}
}
