// Package algtest is a reusable conformance suite for mutual exclusion
// algorithms: mutual exclusion, progress, and — for recoverable algorithms —
// systematic crash injection at every step of a base schedule, double
// crashes, and randomized crash storms. Every algorithm package runs this
// suite; the model checker in internal/check explores interleavings more
// aggressively on top.
package algtest

import (
	"fmt"
	"testing"

	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/word"
)

// Options tunes the conformance run for an algorithm's constraints.
type Options struct {
	// Width is the word size used for most tests (default 16).
	Width word.Width
	// MaxProcs caps the process counts exercised (default 8).
	MaxProcs int
	// Seeds is the number of random-schedule seeds (default 30).
	Seeds int
	// SkipDSM skips DSM-model runs (for CC-only algorithms whose waiting is
	// not DSM-local; their correctness is model-independent, so this only
	// reduces redundancy, but it documents intent).
	SkipDSM bool
}

func (o Options) withDefaults() Options {
	if o.Width == 0 {
		o.Width = 16
	}
	if o.MaxProcs == 0 {
		o.MaxProcs = 8
	}
	if o.Seeds == 0 {
		o.Seeds = 30
	}
	return o
}

// Run executes the full conformance suite as subtests.
func Run(t *testing.T, alg mutex.Algorithm, opts Options) {
	t.Helper()
	opts = opts.withDefaults()

	models := []sim.Model{sim.CC}
	if !opts.SkipDSM {
		models = append(models, sim.DSM)
	}

	t.Run("Solo", func(t *testing.T) { testSolo(t, alg, opts) })
	for _, model := range models {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			t.Run("RoundRobin", func(t *testing.T) { testRoundRobin(t, alg, opts, model) })
			t.Run("RandomSchedules", func(t *testing.T) { testRandom(t, alg, opts, model) })
			if alg.Recoverable() {
				t.Run("CrashEverywhere", func(t *testing.T) { testCrashEverywhere(t, alg, opts, model) })
				t.Run("CrashParked", func(t *testing.T) { testCrashParked(t, alg, opts, model) })
				t.Run("DoubleCrash", func(t *testing.T) { testDoubleCrash(t, alg, opts, model) })
				t.Run("CrashStorm", func(t *testing.T) { testCrashStorm(t, alg, opts, model) })
				t.Run("SystemWideCrash", func(t *testing.T) { testSystemWideCrash(t, alg, opts, model) })
			}
		})
	}
}

func newSession(t *testing.T, alg mutex.Algorithm, opts Options, model sim.Model, procs, passes int) *mutex.Session {
	t.Helper()
	s, err := mutex.NewSession(mutex.Config{
		Procs:     procs,
		Width:     opts.Width,
		Model:     model,
		Algorithm: alg,
		Passes:    passes,
		NoTrace:   true,
	})
	if err != nil {
		t.Fatalf("new session (n=%d): %v", procs, err)
	}
	t.Cleanup(s.Close)
	return s
}

func testSolo(t *testing.T, alg mutex.Algorithm, opts Options) {
	s := newSession(t, alg, opts, sim.CC, 1, 3)
	if err := s.RunRoundRobin(); err != nil {
		t.Fatalf("solo run: %v", err)
	}
	assertCompleted(t, s, 1, 3)
}

func procCounts(maxProcs int) []int {
	counts := []int{2, 3, 5, 8, 13}
	var out []int
	for _, c := range counts {
		if c <= maxProcs {
			out = append(out, c)
		}
	}
	return out
}

func testRoundRobin(t *testing.T, alg mutex.Algorithm, opts Options, model sim.Model) {
	for _, n := range procCounts(opts.MaxProcs) {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			s := newSession(t, alg, opts, model, n, 2)
			if err := s.RunRoundRobin(); err != nil {
				t.Fatalf("round robin: %v", err)
			}
			assertCompleted(t, s, n, 2)
		})
	}
}

func testRandom(t *testing.T, alg mutex.Algorithm, opts Options, model sim.Model) {
	for _, n := range procCounts(opts.MaxProcs) {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			for seed := 0; seed < opts.Seeds; seed++ {
				s := newSession(t, alg, opts, model, n, 2)
				if err := s.RunRandom(int64(seed), mutex.RandomRunOptions{}); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				assertCompleted(t, s, n, 2)
				s.Close()
			}
		})
	}
}

// testCrashEverywhere replays a deterministic round-robin execution and, in
// each replica, injects a crash at one distinct step position — covering
// every crash window of the base execution.
func testCrashEverywhere(t *testing.T, alg mutex.Algorithm, opts Options, model sim.Model) {
	const n, passes = 3, 1
	// Measure the base execution length.
	base := newSession(t, alg, opts, model, n, passes)
	if err := base.RunRoundRobin(); err != nil {
		t.Fatalf("base run: %v", err)
	}
	steps := base.Machine().Steps()
	if steps == 0 {
		t.Fatal("base run took no steps")
	}

	for at := 0; at < steps; at++ {
		at := at
		s := newSession(t, alg, opts, model, n, passes)
		if err := runRoundRobinCrashAt(s, []int{at}); err != nil {
			t.Fatalf("crash at step %d: %v", at, err)
		}
		assertCompleted(t, s, n, passes)
		s.Close()
	}
}

// testCrashParked crashes a process while it is parked on a spin wait — a
// recovery window the poised-process sweeps cannot reach. For each decision
// index of the base execution at which some process is parked, one replica
// crashes the lowest-id parked process at that point.
func testCrashParked(t *testing.T, alg mutex.Algorithm, opts Options, model sim.Model) {
	const n, passes = 3, 1
	base := newSession(t, alg, opts, model, n, passes)
	if err := base.RunRoundRobin(); err != nil {
		t.Fatalf("base run: %v", err)
	}
	steps := base.Machine().Steps()

	for at := 0; at < steps; at++ {
		s := newSession(t, alg, opts, model, n, passes)
		if err := runCrashParkedAt(s, at); err != nil {
			t.Fatalf("parked crash at decision %d: %v", at, err)
		}
		assertCompleted(t, s, n, passes)
		s.Close()
	}
}

// runCrashParkedAt drives round-robin; at decision index `at` it crashes the
// lowest-id parked process (if any) before continuing.
func runCrashParkedAt(s *mutex.Session, at int) error {
	m := s.Machine()
	decision := 0
	crashed := false
	for !m.AllDone() {
		poised := m.PoisedProcs()
		if len(poised) == 0 {
			return mutex.ErrStuck
		}
		for _, p := range poised {
			if m.ProcDone(p) || !m.Poised(p) {
				continue
			}
			if decision == at && !crashed {
				crashed = true
				for q := 0; q < s.Config().Procs; q++ {
					if !m.ProcDone(q) && m.Parked(q) {
						if _, err := s.CrashProc(q); err != nil {
							return err
						}
						break
					}
				}
			}
			if _, err := s.StepProc(p); err != nil {
				return err
			}
			decision++
		}
	}
	if v := s.Violations(); len(v) > 0 {
		return fmt.Errorf("%d violations; first: %s", len(v), v[0])
	}
	return nil
}

// testDoubleCrash injects two crashes (possibly hitting the same process's
// recovery) at sampled pairs of positions.
func testDoubleCrash(t *testing.T, alg mutex.Algorithm, opts Options, model sim.Model) {
	const n, passes = 2, 1
	base := newSession(t, alg, opts, model, n, passes)
	if err := base.RunRoundRobin(); err != nil {
		t.Fatalf("base run: %v", err)
	}
	steps := base.Machine().Steps()

	stride := steps/6 + 1
	for i := 0; i < steps; i += stride {
		for j := i + 1; j < steps+4; j += stride {
			s := newSession(t, alg, opts, model, n, passes)
			if err := runRoundRobinCrashAt(s, []int{i, j}); err != nil {
				t.Fatalf("crashes at %d,%d: %v", i, j, err)
			}
			assertCompleted(t, s, n, passes)
			s.Close()
		}
	}
}

func testCrashStorm(t *testing.T, alg mutex.Algorithm, opts Options, model sim.Model) {
	for _, n := range procCounts(opts.MaxProcs) {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			for seed := 0; seed < opts.Seeds; seed++ {
				s := newSession(t, alg, opts, model, n, 2)
				err := s.RunRandom(int64(seed), mutex.RandomRunOptions{
					CrashProb:         0.05,
					MaxCrashesPerProc: 3,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				assertCompleted(t, s, n, 2)
				s.Close()
			}
		})
	}
}

// testSystemWideCrash crashes every live process simultaneously at sampled
// points of the base execution — the system-wide failure model the paper
// contrasts with its individual-crash model (§4). Individual-crash
// recoverability implies system-wide recoverability, so every algorithm in
// the suite must survive it.
func testSystemWideCrash(t *testing.T, alg mutex.Algorithm, opts Options, model sim.Model) {
	const n, passes = 3, 1
	base := newSession(t, alg, opts, model, n, passes)
	if err := base.RunRoundRobin(); err != nil {
		t.Fatalf("base run: %v", err)
	}
	steps := base.Machine().Steps()

	stride := steps/8 + 1
	for at := 0; at < steps; at += stride {
		s := newSession(t, alg, opts, model, n, passes)
		m := s.Machine()
		decision := 0
		crashed := false
		for !m.AllDone() {
			poised := m.PoisedProcs()
			if len(poised) == 0 {
				t.Fatalf("crash-all at %d: stuck", at)
			}
			for _, p := range poised {
				if m.ProcDone(p) || !m.Poised(p) {
					continue
				}
				if decision == at && !crashed {
					crashed = true
					if err := s.CrashAllProcs(); err != nil {
						t.Fatalf("crash-all at %d: %v", at, err)
					}
					break // poised set is stale after a crash wave
				}
				if _, err := s.StepProc(p); err != nil {
					t.Fatal(err)
				}
				decision++
			}
		}
		assertCompleted(t, s, n, passes)
		s.Close()
	}
}

// runRoundRobinCrashAt drives the session round-robin, but at each scheduler
// decision whose index is in crashAt, the chosen process crashes instead of
// stepping. Positions beyond the execution length are ignored.
func runRoundRobinCrashAt(s *mutex.Session, crashAt []int) error {
	when := make(map[int]bool, len(crashAt))
	for _, a := range crashAt {
		when[a] = true
	}
	m := s.Machine()
	decision := 0
	for !m.AllDone() {
		poised := m.PoisedProcs()
		if len(poised) == 0 {
			return mutex.ErrStuck
		}
		for _, p := range poised {
			if m.ProcDone(p) || !m.Poised(p) {
				continue
			}
			var err error
			if when[decision] {
				_, err = s.CrashProc(p)
			} else {
				_, err = s.StepProc(p)
			}
			if err != nil {
				return err
			}
			decision++
		}
	}
	if v := s.Violations(); len(v) > 0 {
		return fmt.Errorf("%d violations; first: %s", len(v), v[0])
	}
	return nil
}

// assertCompleted verifies that every process finished the expected number
// of super-passages and that no safety violation was recorded.
func assertCompleted(t *testing.T, s *mutex.Session, procs, passes int) {
	t.Helper()
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
	m := s.Machine()
	if !m.AllDone() {
		t.Fatal("not all processes finished")
	}
	// Each process must have completed `passes` super-passages: count
	// passage records that ended a super-passage (not crash-terminated).
	completed := make([]int, procs)
	for _, st := range s.Stats() {
		if !st.EndedByCrash {
			completed[st.Proc]++
		}
	}
	for p, c := range completed {
		if c < passes {
			t.Errorf("p%d completed %d super-passage-ending passages, want >= %d", p, c, passes)
		}
	}
}
