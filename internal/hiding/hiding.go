// Package hiding implements the paper's key technical contribution, the
// Process-Hiding Lemma (Lemma 2), constructively.
//
// Setting: groups X_1, ..., X_m of processes are poised to apply operations
// to the same w-bit register (one register per group in the adversary's
// high-contention round; the lemma threads a single value chain y_0, y_1,
// ..., y_m through the groups for uniformity with the paper's statement).
// f_y(A) is the register value after the processes of A ⊆ X_i apply their
// operations, in canonical (ascending id) order, to a register holding y.
//
// The construction (following the proof of Lemma 2):
//
//  1. Partition each group into k parts of size partSize and form the
//     complete k-partite hypergraph; every hyperedge is a candidate set A.
//  2. Bucket hyperedges by the register value they produce from y_{i-1};
//     keep the largest bucket (its value becomes y_i). Since the register
//     has at most 2^ℓ values, the bucket holds at least partSize^k / 2^ℓ
//     hyperedges — the |E| ≥ s^k precondition of Lemma 5 with
//     s = partSize / 2^(ℓ/k).
//  3. Run Lemma 5 on the bucket: it yields a hyperedge family F_i whose
//     support U_i touches each part in at most 2 vertices except for one
//     distinguished part, which it covers in at least 0.6·partSize
//     vertices — a large reservoir of interchangeable processes that all
//     produce the same register value.
//  4. A_i is any hyperedge of F_i; V_i = (U_i \ X_{i,d_i}) ∪ A_i (the alpha
//     processes). The reservoir U_i \ V_i stays out of V_i.
//  5. For any later choice of a "discovered" set D with |D| ≤ δ·|∪V_i|, at
//     least half the groups retain an undiscovered z_i in their reservoir;
//     the hyperedge of F_i through z_i gives B_i = e_i \ {z_i} with
//     f_{y_{i-1}}(B_i ∪ {z_i}) = y_i — the hidden step.
//
// Paper constants: ℓ the register width in bits, k = 4ℓ, partSize =
// ⌊27δℓ⌋, groups of ≥ 108δℓ² processes. Those values satisfy this
// package's parameter checks exactly (ℓ = 1, δ = 1 ⇒ k = 4, partSize = 27,
// group size 108); smaller ad-hoc parameters are accepted whenever the
// derived guarantee |I_D| ≥ m/2 still holds, and rejected otherwise.
package hiding

import (
	"fmt"
	"math"
	"sort"

	"rme/internal/hypergraph"
	"rme/internal/word"
)

// Proc identifies a process (the lemma's elements of X).
type Proc = hypergraph.Vertex

// Apply is the register semantics f: Apply(y, ps) returns f_y(ps), the
// register value after the processes ps (in the given order) apply their
// operations to a register holding y. Implementations must be
// deterministic.
type Apply func(y word.Word, ps []Proc) word.Word

// Config parameterizes the construction.
type Config struct {
	// Groups are the disjoint process groups X_1..X_m; each must contain at
	// least K*PartSize processes.
	Groups [][]Proc
	// Y0 is the register's initial value.
	Y0 word.Word
	// ValueBits is ℓ: the register takes at most 2^ℓ distinct values.
	ValueBits int
	// Delta is δ ≥ 1: how many processes one alpha process can discover
	// while running to completion.
	Delta int
	// K is the number of hypergraph parts per group (the paper uses 4ℓ).
	K int
	// PartSize is the size of each part (the paper uses ⌊27δℓ⌋).
	PartSize int
	// Apply is the register semantics.
	Apply Apply
	// Eps is the Lemma 4/5 slack ε (default 0.2, the paper's choice).
	Eps float64
	// EdgeLimit bounds the complete hypergraph enumeration per group
	// (default 2^21).
	EdgeLimit int
}

func (c Config) withDefaults() Config {
	if c.Eps == 0 {
		c.Eps = 0.2
	}
	if c.EdgeLimit == 0 {
		c.EdgeLimit = 1 << 21
	}
	return c
}

// PaperConfig returns the parameter set the paper's proof uses for a given
// register width ℓ and discovery budget δ: k = 4ℓ parts of ⌊27δℓ⌋ processes,
// i.e. groups of at least 108δℓ² processes.
func PaperConfig(valueBits, delta int) (k, partSize, groupSize int) {
	k = 4 * valueBits
	partSize = int(math.Floor(27 * float64(delta) * float64(valueBits)))
	return k, partSize, k * partSize
}

// Group is the per-group certificate.
type Group struct {
	// Index is the group's position i (1-based in the paper; 0-based here).
	Index int
	// Parts is the k-partition of the group prefix used by the hypergraph.
	Parts [][]Proc
	// YPrev and Y are y_{i-1} and y_i.
	YPrev, Y word.Word
	// A is the ordered set A_i with Apply(YPrev, A) == Y.
	A []Proc
	// V is the alpha set V_i (A ⊆ V ⊆ X_i).
	V []Proc
	// D is the distinguished part index d_i.
	D int
	// F is the hyperedge family from Lemma 5 (support small outside part D).
	F []hypergraph.Edge
	// Reservoir is U_i \ V_i: the interchangeable hidden-candidate
	// processes (all in part D).
	Reservoir []Proc
}

// Certificate is the full Lemma 2 certificate: the value chain and the
// per-group alpha structure, from which hidden processes can be extracted
// for any discovered set D.
type Certificate struct {
	cfg    Config
	Y      []word.Word // y_0..y_m
	Groups []Group
	// MaxD is δ·|∪V_i|: the largest discovered-set size the certificate
	// guarantees coverage for.
	MaxD int
}

// Hidden is the per-group answer for a specific discovered set D.
type Hidden struct {
	Group int
	// Z is the hidden process z_i ∈ X_i \ (V_i ∪ D).
	Z Proc
	// B is B_i ⊆ V_i with Apply(y_{i-1}, sort(B ∪ {Z})) == y_i.
	B []Proc
}

// Construct runs the Lemma 2 construction and returns its certificate.
func Construct(cfg Config) (*Certificate, error) {
	cfg = cfg.withDefaults()
	if err := validate(cfg); err != nil {
		return nil, err
	}
	m := len(cfg.Groups)
	s := float64(cfg.PartSize) / math.Exp2(float64(cfg.ValueBits)/float64(cfg.K))

	cert := &Certificate{cfg: cfg, Y: make([]word.Word, 0, m+1)}
	cert.Y = append(cert.Y, cfg.Y0)
	y := cfg.Y0

	for i, group := range cfg.Groups {
		parts := partition(group, cfg.K, cfg.PartSize)
		hgParts := make([][]hypergraph.Vertex, len(parts))
		for j := range parts {
			hgParts[j] = parts[j]
		}
		complete, err := hypergraph.Complete(hgParts, cfg.EdgeLimit)
		if err != nil {
			return nil, fmt.Errorf("group %d: %w", i, err)
		}

		// Bucket hyperedges by resulting register value; keep the largest.
		buckets := make(map[word.Word][]hypergraph.Edge)
		for _, e := range complete.Edges {
			v := cfg.Apply(y, e)
			buckets[v] = append(buckets[v], e)
		}
		if len(buckets) > 1<<uint(cfg.ValueBits) {
			return nil, fmt.Errorf("group %d: register produced %d distinct values, exceeding 2^%d",
				i, len(buckets), cfg.ValueBits)
		}
		yi, best := pickLargestBucket(buckets)

		sub := &hypergraph.Partite{Parts: hgParts, Edges: best}
		res, err := hypergraph.Lemma5(sub, s, cfg.Eps)
		if err != nil {
			return nil, fmt.Errorf("group %d: %w", i, err)
		}

		g := buildGroup(i, parts, y, yi, res)
		cert.Groups = append(cert.Groups, g)
		cert.Y = append(cert.Y, yi)
		y = yi
	}

	totalV := 0
	for _, g := range cert.Groups {
		totalV += len(g.V)
	}
	cert.MaxD = cfg.Delta * totalV

	// The m/2 guarantee: every fully-covered reservoir eats at least
	// minReservoir elements of D, so at most MaxD/minReservoir groups can
	// lose their hidden candidate.
	minRes := cert.Groups[0].reservoirSize()
	for _, g := range cert.Groups[1:] {
		if r := g.reservoirSize(); r < minRes {
			minRes = r
		}
	}
	if minRes == 0 || cert.MaxD/minRes > m/2 {
		return nil, fmt.Errorf(
			"hiding: parameters too small: reservoirs of %d cannot absorb |D| ≤ %d across %d groups (need ≥ m/2 survivors); use PaperConfig-scale parameters",
			minRes, cert.MaxD, m)
	}
	return cert, nil
}

func (g *Group) reservoirSize() int { return len(g.Reservoir) }

// ForD returns, for a discovered set D with |D| ≤ MaxD, hidden processes
// for at least half the groups: for each returned group, z_i avoids V_i and
// D, and B_i ∪ {z_i} reproduces y_i from y_{i-1}.
func (c *Certificate) ForD(d []Proc) ([]Hidden, error) {
	if len(d) > c.MaxD {
		return nil, fmt.Errorf("hiding: |D| = %d exceeds guaranteed budget %d", len(d), c.MaxD)
	}
	dset := make(map[Proc]bool, len(d))
	for _, p := range d {
		dset[p] = true
	}
	var out []Hidden
	for gi := range c.Groups {
		g := &c.Groups[gi]
		z, ok := pickHidden(g, dset)
		if !ok {
			continue
		}
		e := edgeThrough(g, z)
		if e == nil {
			return nil, fmt.Errorf("hiding: group %d: no hyperedge through reservoir process %d", gi, z)
		}
		b := make([]Proc, 0, len(e)-1)
		for _, v := range e {
			if v != z {
				b = append(b, v)
			}
		}
		out = append(out, Hidden{Group: gi, Z: z, B: b})
	}
	if len(out)*2 < len(c.Groups) {
		return nil, fmt.Errorf("hiding: only %d/%d groups retained a hidden process (guarantee violated)",
			len(out), len(c.Groups))
	}
	return out, nil
}

// Verify checks every guarantee of the certificate against the register
// semantics: the A-chain reproduces the value chain, the set inclusions
// hold, and for the worst-case adversarial D (greedily eating reservoirs)
// ForD still succeeds with valid hidden steps.
func (c *Certificate) Verify() error {
	cfg := c.cfg
	for i, g := range c.Groups {
		if got := cfg.Apply(g.YPrev, g.A); got != g.Y {
			return fmt.Errorf("group %d: f_y(A) = %d, want %d", i, got, g.Y)
		}
		if c.Y[i] != g.YPrev || c.Y[i+1] != g.Y {
			return fmt.Errorf("group %d: value chain broken", i)
		}
		vset := toSet(g.V)
		for _, p := range g.A {
			if !vset[p] {
				return fmt.Errorf("group %d: A ⊄ V (process %d)", i, p)
			}
		}
		gset := toSet(cfg.Groups[i])
		for _, p := range g.V {
			if !gset[p] {
				return fmt.Errorf("group %d: V ⊄ X (process %d)", i, p)
			}
		}
		for _, p := range g.Reservoir {
			if vset[p] {
				return fmt.Errorf("group %d: reservoir process %d inside V", i, p)
			}
		}
	}

	// Adversarial D: consume whole reservoirs group by group until the
	// budget runs out — the worst case for the m/2 bound.
	var d []Proc
	budget := c.MaxD
	for _, g := range c.Groups {
		if budget < len(g.Reservoir) {
			d = append(d, g.Reservoir[:budget]...)
			break
		}
		d = append(d, g.Reservoir...)
		budget -= len(g.Reservoir)
	}
	hidden, err := c.ForD(d)
	if err != nil {
		return fmt.Errorf("adversarial D: %w", err)
	}
	return c.VerifyHidden(d, hidden)
}

// VerifyHidden checks the ForD output against the lemma's conclusion.
func (c *Certificate) VerifyHidden(d []Proc, hidden []Hidden) error {
	dset := toSet(d)
	for _, h := range hidden {
		g := &c.Groups[h.Group]
		if dset[h.Z] {
			return fmt.Errorf("group %d: hidden process %d is in D", h.Group, h.Z)
		}
		if toSet(g.V)[h.Z] {
			return fmt.Errorf("group %d: hidden process %d is in V", h.Group, h.Z)
		}
		vset := toSet(g.V)
		for _, p := range h.B {
			if !vset[p] {
				return fmt.Errorf("group %d: B ⊄ V (process %d)", h.Group, p)
			}
		}
		steps := append(append([]Proc{}, h.B...), h.Z)
		sortProcs(steps)
		if got := c.cfg.Apply(g.YPrev, steps); got != g.Y {
			return fmt.Errorf("group %d: f_y(B ∪ {z}) = %d, want %d — z is not hidden", h.Group, got, g.Y)
		}
	}
	return nil
}

// --- internals ---------------------------------------------------------------

func validate(cfg Config) error {
	if len(cfg.Groups) == 0 {
		return fmt.Errorf("hiding: no groups")
	}
	if cfg.Apply == nil {
		return fmt.Errorf("hiding: nil Apply")
	}
	if cfg.Delta < 1 {
		return fmt.Errorf("hiding: delta must be >= 1, got %d", cfg.Delta)
	}
	if cfg.ValueBits < 0 || cfg.ValueBits > 62 {
		return fmt.Errorf("hiding: value bits %d out of range", cfg.ValueBits)
	}
	if cfg.K < 1 || cfg.PartSize < 1 {
		return fmt.Errorf("hiding: need K >= 1 and PartSize >= 1 (got %d, %d)", cfg.K, cfg.PartSize)
	}
	// Lemma 4/5 need parts within s(1+ε): partSize <= (partSize/2^(ℓ/k))(1+ε).
	if math.Exp2(float64(cfg.ValueBits)/float64(cfg.K)) > 1+cfg.Eps+1e-9 {
		return fmt.Errorf("hiding: K = %d too small for ℓ = %d with ε = %v (need 2^(ℓ/K) <= 1+ε, e.g. K = 4ℓ with ε = 0.2)",
			cfg.K, cfg.ValueBits, cfg.Eps)
	}
	need := cfg.K * cfg.PartSize
	seen := make(map[Proc]bool)
	for i, g := range cfg.Groups {
		if len(g) < need {
			return fmt.Errorf("hiding: group %d has %d processes, need >= K*PartSize = %d", i, len(g), need)
		}
		for _, p := range g {
			if seen[p] {
				return fmt.Errorf("hiding: process %d in multiple groups", p)
			}
			seen[p] = true
		}
	}
	return nil
}

// partition splits the first k*partSize processes of the group (ascending)
// into k contiguous parts.
func partition(group []Proc, k, partSize int) [][]Proc {
	sorted := append([]Proc{}, group...)
	sortProcs(sorted)
	parts := make([][]Proc, k)
	for j := 0; j < k; j++ {
		parts[j] = sorted[j*partSize : (j+1)*partSize]
	}
	return parts
}

// pickLargestBucket returns the value with the most hyperedges
// (deterministic tie-break on the value).
func pickLargestBucket(buckets map[word.Word][]hypergraph.Edge) (word.Word, []hypergraph.Edge) {
	var (
		bestVal  word.Word
		bestList []hypergraph.Edge
		first    = true
	)
	for v, list := range buckets {
		if first || len(list) > len(bestList) || (len(list) == len(bestList) && v < bestVal) {
			bestVal, bestList, first = v, list, false
		}
	}
	return bestVal, bestList
}

func buildGroup(i int, parts [][]Proc, yPrev, y word.Word, res *hypergraph.Lemma5Result) Group {
	support := res.Support(len(parts))
	a := append([]Proc{}, res.F[0]...)
	sortProcs(a)

	// V = (U \ X_d) ∪ A.
	vset := make(map[Proc]bool)
	for j, u := range support {
		if j == res.D {
			continue
		}
		for _, p := range u {
			vset[p] = true
		}
	}
	for _, p := range a {
		vset[p] = true
	}
	v := setToSlice(vset)

	// Reservoir = U ∩ X_d minus V (i.e. minus A's vertex in part d).
	var reservoir []Proc
	for _, p := range support[res.D] {
		if !vset[p] {
			reservoir = append(reservoir, p)
		}
	}
	sortProcs(reservoir)

	return Group{
		Index:     i,
		Parts:     parts,
		YPrev:     yPrev,
		Y:         y,
		A:         a,
		V:         v,
		D:         res.D,
		F:         res.F,
		Reservoir: reservoir,
	}
}

// pickHidden returns the first reservoir process outside D.
func pickHidden(g *Group, dset map[Proc]bool) (Proc, bool) {
	for _, p := range g.Reservoir {
		if !dset[p] {
			return p, true
		}
	}
	return 0, false
}

// edgeThrough finds a hyperedge of F whose part-D vertex is z.
func edgeThrough(g *Group, z Proc) hypergraph.Edge {
	for _, e := range g.F {
		if e[g.D] == z {
			return e
		}
	}
	return nil
}

func toSet(ps []Proc) map[Proc]bool {
	set := make(map[Proc]bool, len(ps))
	for _, p := range ps {
		set[p] = true
	}
	return set
}

func setToSlice(set map[Proc]bool) []Proc {
	out := make([]Proc, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sortProcs(out)
	return out
}

func sortProcs(ps []Proc) {
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
}
