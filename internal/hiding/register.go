package hiding

import (
	"fmt"

	"rme/internal/memory"
	"rme/internal/word"
)

// RegisterApply builds the Apply function induced by actual register
// semantics: each process p is poised to perform ops[p] (an arbitrary
// atomic operation), and f_y(A) is the register value after the processes
// of A apply their operations, in the order given, to a w-bit register
// holding y. This is exactly how the paper instantiates the Process-Hiding
// Lemma in the high-contention round.
func RegisterApply(w word.Width, ops map[Proc]memory.Op) (Apply, error) {
	if !w.Valid() {
		return nil, fmt.Errorf("hiding: invalid register width %d", w)
	}
	for p, op := range ops {
		if op.Code == memory.OpCustom && op.F == nil {
			return nil, fmt.Errorf("hiding: process %d has a custom op with nil transition", p)
		}
		if op.IsRead() {
			return nil, fmt.Errorf("hiding: process %d is poised to read — the lemma's second case handles only non-read operations", p)
		}
	}
	return func(y word.Word, ps []Proc) word.Word {
		cur := w.Trunc(y)
		for _, p := range ps {
			op, ok := ops[p]
			if !ok {
				panic(fmt.Sprintf("hiding: no operation for process %d", p))
			}
			cur, _ = memory.Apply(op, cur, w)
		}
		return cur
	}, nil
}

// UniformOp assigns the same operation to every process in the groups.
func UniformOp(groups [][]Proc, op memory.Op) map[Proc]memory.Op {
	out := make(map[Proc]memory.Op)
	for _, g := range groups {
		for _, p := range g {
			out[p] = op
		}
	}
	return out
}
