package hiding

import (
	"math/rand"
	"testing"

	"rme/internal/memory"
	"rme/internal/word"
)

// mkGroups builds m disjoint groups of the given size with consecutive ids.
func mkGroups(m, size int) [][]Proc {
	groups := make([][]Proc, m)
	id := 0
	for i := range groups {
		groups[i] = make([]Proc, size)
		for j := range groups[i] {
			groups[i][j] = Proc(id)
			id++
		}
	}
	return groups
}

// degenerate register: a single value (ℓ = 0), every op a no-op write of 0.
// The cheapest valid instantiation — K = 1, tiny parts — used to exercise
// the plumbing quickly.
func degenerateConfig(m int) Config {
	groups := mkGroups(m, 6)
	return Config{
		Groups:    groups,
		Y0:        0,
		ValueBits: 0,
		Delta:     1,
		K:         1,
		PartSize:  6,
		Apply:     func(y word.Word, ps []Proc) word.Word { return 0 },
	}
}

func TestDegenerateRegister(t *testing.T) {
	cert, err := Construct(degenerateConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(cert.Groups) != 4 || len(cert.Y) != 5 {
		t.Fatalf("certificate shape: %d groups, %d values", len(cert.Groups), len(cert.Y))
	}
}

func TestPaperConstants(t *testing.T) {
	k, partSize, groupSize := PaperConfig(1, 1)
	if k != 4 || partSize != 27 || groupSize != 108 {
		t.Fatalf("PaperConfig(1,1) = (%d,%d,%d), want (4,27,108) — the paper's 108δℓ²", k, partSize, groupSize)
	}
	k2, p2, g2 := PaperConfig(2, 3)
	if k2 != 8 || p2 != 162 || g2 != 1296 {
		t.Fatalf("PaperConfig(2,3) = (%d,%d,%d)", k2, p2, g2)
	}
}

// onebitToggleConfig: the flagship instantiation at the paper's exact
// constants for ℓ = 1, δ = 1: a 1-bit register where every process is
// poised to FAA(1) (toggle). 27^4 hyperedges per group.
func onebitToggleConfig(t *testing.T, m int) Config {
	t.Helper()
	k, partSize, groupSize := PaperConfig(1, 1)
	groups := mkGroups(m, groupSize)
	apply, err := RegisterApply(1, UniformOp(groups, memory.Add(1)))
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Groups:    groups,
		Y0:        0,
		ValueBits: 1,
		Delta:     1,
		K:         k,
		PartSize:  partSize,
		Apply:     apply,
	}
}

func TestOneBitToggleAtPaperConstants(t *testing.T) {
	if testing.Short() {
		t.Skip("531k hyperedges per group")
	}
	cert, err := Construct(onebitToggleConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.Verify(); err != nil {
		t.Fatal(err)
	}
	// Toggle semantics: a hyperedge of k=4 toggles returns to y, so every
	// y_i should equal y_0.
	for i, y := range cert.Y {
		if y != 0 {
			t.Errorf("y_%d = %d, want 0 (even number of toggles)", i, y)
		}
	}
}

func TestOneBitMixedOpsRandomD(t *testing.T) {
	if testing.Short() {
		t.Skip("531k hyperedges per group")
	}
	k, partSize, groupSize := PaperConfig(1, 1)
	groups := mkGroups(2, groupSize)
	// Mix of write(1), write(0), FAA(1), FAS(1) — arbitrary non-read ops.
	ops := make(map[Proc]memory.Op)
	pool := []memory.Op{memory.Write(1), memory.Write(0), memory.Add(1), memory.Swap(1)}
	rng := rand.New(rand.NewSource(3))
	for _, g := range groups {
		for _, p := range g {
			ops[p] = pool[rng.Intn(len(pool))]
		}
	}
	apply, err := RegisterApply(1, ops)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := Construct(Config{
		Groups: groups, Y0: 0, ValueBits: 1, Delta: 1, K: k, PartSize: partSize, Apply: apply,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.Verify(); err != nil {
		t.Fatal(err)
	}
	// Random discovered sets within budget.
	all := make([]Proc, 0, 2*groupSize)
	for _, g := range groups {
		all = append(all, g...)
	}
	for trial := 0; trial < 20; trial++ {
		size := rng.Intn(cert.MaxD + 1)
		perm := rng.Perm(len(all))
		d := make([]Proc, size)
		for i := 0; i < size; i++ {
			d[i] = all[perm[i]]
		}
		hidden, err := cert.ForD(d)
		if err != nil {
			t.Fatalf("trial %d (|D|=%d): %v", trial, size, err)
		}
		if err := cert.VerifyHidden(d, hidden); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestWideRegisterDefeatsHiding(t *testing.T) {
	// The paper's dichotomy in code: with a wide register (large ℓ relative
	// to K) the precondition 2^(ℓ/K) <= 1+ε fails, so no hiding certificate
	// exists at these parameters — exactly why Katzan–Morrison's wide FAA
	// is immune to the adversary.
	groups := mkGroups(2, 200)
	apply := func(y word.Word, ps []Proc) word.Word { return y }
	_, err := Construct(Config{
		Groups: groups, Y0: 0, ValueBits: 8, Delta: 1, K: 4, PartSize: 27, Apply: apply,
	})
	if err == nil {
		t.Fatal("8-bit register with K=4 must be rejected")
	}
}

func TestValidationErrors(t *testing.T) {
	base := degenerateConfig(2)

	c := base
	c.Groups = nil
	if _, err := Construct(c); err == nil {
		t.Error("no groups accepted")
	}

	c = base
	c.Apply = nil
	if _, err := Construct(c); err == nil {
		t.Error("nil Apply accepted")
	}

	c = base
	c.Delta = 0
	if _, err := Construct(c); err == nil {
		t.Error("delta 0 accepted")
	}

	c = base
	c.PartSize = 100
	if _, err := Construct(c); err == nil {
		t.Error("undersized groups accepted")
	}

	c = base
	c.Groups = [][]Proc{mkGroups(1, 6)[0], mkGroups(1, 6)[0]} // overlapping ids
	if _, err := Construct(c); err == nil {
		t.Error("overlapping groups accepted")
	}
}

func TestTooSmallParametersRejected(t *testing.T) {
	// K=1, tiny parts: reservoirs too small for the m/2 guarantee.
	groups := mkGroups(2, 2)
	_, err := Construct(Config{
		Groups: groups, Y0: 0, ValueBits: 0, Delta: 1, K: 1, PartSize: 2,
		Apply: func(y word.Word, ps []Proc) word.Word { return 0 },
	})
	if err == nil {
		t.Fatal("reservoirs of size <= 1 must be rejected")
	}
}

func TestForDBudgetEnforced(t *testing.T) {
	cert, err := Construct(degenerateConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	tooBig := make([]Proc, cert.MaxD+1)
	for i := range tooBig {
		tooBig[i] = Proc(i)
	}
	if _, err := cert.ForD(tooBig); err == nil {
		t.Error("over-budget D accepted")
	}
}

func TestRegisterApplyRejectsReads(t *testing.T) {
	groups := mkGroups(1, 4)
	ops := UniformOp(groups, memory.Read())
	if _, err := RegisterApply(8, ops); err == nil {
		t.Error("read operations must be rejected (lemma's non-read case)")
	}
}

func TestRegisterApplyOrderMatters(t *testing.T) {
	// FAS(1) then write(0) leaves 0; write(0) then FAS(1) leaves 1 — the
	// canonical order must be respected by the certificate machinery.
	ops := map[Proc]memory.Op{0: memory.Swap(1), 1: memory.Write(0)}
	apply, err := RegisterApply(4, ops)
	if err != nil {
		t.Fatal(err)
	}
	if got := apply(7, []Proc{0, 1}); got != 0 {
		t.Errorf("FAS then write = %d, want 0", got)
	}
	if got := apply(7, []Proc{1, 0}); got != 1 {
		t.Errorf("write then FAS = %d, want 1", got)
	}
}

func TestHiddenStepsAreIndistinguishable(t *testing.T) {
	// The lemma's point, stated operationally: for each surviving group,
	// executing A_i or executing B_i ∪ {z_i} leaves the register in the
	// same state, so no later reader can tell whether z_i took a step.
	cfg := degenerateConfig(4)
	// Use a 1-value... make it slightly less degenerate: ValueBits 0 forces
	// one value; instead craft a 2-group 1-bit quick variant via K=4,
	// PartSize=27 only when not -short.
	cert, err := Construct(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hidden, err := cert.ForD(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hidden)*2 < len(cert.Groups) {
		t.Fatalf("hidden groups: %d of %d", len(hidden), len(cert.Groups))
	}
	for _, h := range hidden {
		g := cert.Groups[h.Group]
		withA := cfg.Apply(g.YPrev, g.A)
		steps := append(append([]Proc{}, h.B...), h.Z)
		sortProcs(steps)
		withZ := cfg.Apply(g.YPrev, steps)
		if withA != withZ {
			t.Errorf("group %d: A gives %d, B∪{z} gives %d", h.Group, withA, withZ)
		}
	}
}
