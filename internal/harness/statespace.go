package harness

import (
	"fmt"

	"rme/internal/algorithms/rspin"
	"rme/internal/algorithms/tas"
	"rme/internal/algorithms/ticket"
	"rme/internal/algorithms/tournament"
	"rme/internal/algorithms/watree"
	"rme/internal/algorithms/yatree"
	"rme/internal/check"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/word"
)

// statespaceExperiment is E13: the exhaustive state-space census. The
// stateful checker (fingerprint memoization + sleep-set reduction) walks
// every reachable canonical state of each algorithm at small n and reports
// how much state there is to check — and how much of the naive schedule tree
// the reductions discard. Unlike E1–E12 this measures the verifier, not the
// algorithms' RMR behaviour: the table is the capacity map for exhaustive
// certification, and EXPERIMENTS.md tracks it so a state-space regression
// (an algorithm change that blows up reachable states) is visible in review.
func statespaceExperiment() Experiment {
	return Experiment{
		ID:    "E13",
		Title: "Exhaustive state-space census (stateful checker)",
		Claim: "Bounded-exhaustive verification of every repo algorithm is feasible at n=2 (with a crash branch per process for the recoverable ones) and for the tree algorithms at n=3: visited canonical states stay within millions, while the unreduced schedule tree is orders of magnitude larger (see the revisit and sleep-set columns).",
		Run:   runE13,
	}
}

// e13Case is one census row's configuration.
type e13Case struct {
	alg     mutex.Algorithm
	n       int
	width   int
	crashes int
	full    bool // only run with Options.Full
}

func runE13(opts Options) ([]Table, error) {
	cases := []e13Case{
		{alg: tas.New(), n: 2, width: 8},
		{alg: ticket.New(), n: 2, width: 8},
		{alg: tournament.New(), n: 2, width: 8},
		{alg: rspin.New(), n: 2, width: 8, crashes: 1},
		{alg: yatree.New(), n: 2, width: 8, crashes: 1},
		{alg: watree.New(), n: 2, width: 8, crashes: 1},
		{alg: yatree.New(), n: 3, width: 8, crashes: 1, full: true},
		{alg: watree.New(), n: 3, width: 8, full: true},
	}
	t := Table{
		Title:  "E13: reachable canonical states under memoization + sleep-set POR",
		Header: []string{"algorithm", "n", "crashes", "states", "revisits pruned", "sleep skips", "terminal", "truncated", "machine steps"},
		Note: "One exhaustive search per row (CC, w=8). 'states' counts distinct canonical " +
			"states expanded; 'revisits pruned' counts convergent interleavings cut by the " +
			"fingerprint memo; 'sleep skips' counts step branches the partial-order " +
			"reduction proved redundant. 'terminal' is the number of distinct completed " +
			"end states. A truncated row exceeded the state budget and is a lower bound. " +
			"n=3 rows run only in the full sweep.",
	}
	for _, c := range cases {
		if c.full && !opts.Full {
			continue
		}
		cfg := check.Config{
			Session: mutex.Config{
				Procs: c.n, Width: word.Width(c.width), Model: sim.CC, Algorithm: c.alg,
			},
			CrashesPerProc: c.crashes,
			MaxSchedules:   10_000_000,
			MaxStates:      32_000_000,
			Parallel:       opts.Parallel,
			Memo:           true,
			POR:            true,
		}
		res, err := check.Exhaustive(cfg)
		if err != nil {
			return nil, fmt.Errorf("E13 %s n=%d: %w", c.alg.Name(), c.n, err)
		}
		if !res.Ok() {
			return nil, fmt.Errorf("E13 %s n=%d: unexpected failure: %v", c.alg.Name(), c.n, res.Err())
		}
		t.AddRow(c.alg.Name(), c.n, c.crashes, res.StatesVisited, res.StatesPruned,
			res.SleepPruned, res.Complete, res.Truncated, res.MachineSteps)
	}
	return []Table{t}, nil
}
