package harness

import (
	"strings"
	"testing"
)

// renderAll runs an experiment and renders every resulting table to one
// string.
func renderAll(t *testing.T, exp Experiment, opts Options) string {
	t.Helper()
	tables, err := exp.Run(opts)
	if err != nil {
		t.Fatalf("%s (parallel=%d): %v", exp.ID, opts.Parallel, err)
	}
	var sb strings.Builder
	for i := range tables {
		tables[i].Render(&sb)
	}
	return sb.String()
}

// TestParallelismDoesNotChangeTables is the engine's determinism guarantee
// at the harness level: the fully rendered experiment tables are
// byte-identical whether the grid runs on one worker or eight.
func TestParallelismDoesNotChangeTables(t *testing.T) {
	for _, id := range []string{"E2", "E6"} {
		id := id
		t.Run(id, func(t *testing.T) {
			exp, ok := Find(id)
			if !ok {
				t.Fatalf("experiment %s not registered", id)
			}
			serial := renderAll(t, exp, Options{Parallel: 1})
			parallel := renderAll(t, exp, Options{Parallel: 8})
			if serial != parallel {
				t.Errorf("rendered tables differ between -parallel 1 and -parallel 8:\n--- serial ---\n%s--- parallel ---\n%s",
					serial, parallel)
			}
		})
	}
}
