package harness

import (
	"fmt"

	"rme/internal/algorithms/clh"
	"rme/internal/algorithms/mcs"
	"rme/internal/algorithms/qword"
	"rme/internal/algorithms/tas"
	"rme/internal/algorithms/ticket"
	"rme/internal/algorithms/tournament"
	"rme/internal/algorithms/watree"
	"rme/internal/engine"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/word"
)

// fairnessExperiment is E11: first-come-first-served behaviour, an extended
// RME property the paper's §1.2 explicitly sets aside ("ignoring any
// extended properties"); measuring it contextualizes which algorithm
// families pay for it.
func fairnessExperiment() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "FCFS fairness (paper §1.2 extended-property discussion)",
		Claim: "The paper studies the basic RME problem and sets aside extended properties such as first-come-first-served. Measured: the queue and ticket locks grant the CS in near-arrival order, while the trees and spin locks reorder freely — fairness is orthogonal to the word-size tradeoff.",
		Run:   runE11,
	}
}

// runE11 measures the normalized Kendall-tau distance between arrival order
// (each process's first shared-memory step) and CS grant order, averaged
// over randomized schedules.
func runE11(opts Options) ([]Table, error) {
	seeds := 40
	n := 10
	if opts.Full {
		seeds = 200
		n = 20
	}
	t := Table{
		Title:  fmt.Sprintf("E11: CS grant order vs arrival order (n=%d, CC, %d random schedules)", n, seeds),
		Header: []string{"algorithm", "avg inversion fraction", "max inversion fraction", "character"},
		Note: "inversion fraction = Kendall-tau distance between the order of first " +
			"steps and the order of CS grants, normalized to [0,1]; 0 = perfect FIFO. " +
			"The doorway happens a few steps after the first step, so even FIFO locks " +
			"score slightly above 0 under heavy interleaving.",
	}
	algs := []struct {
		alg       mutex.Algorithm
		width     int
		character string
	}{
		{ticket.New(), 16, "FIFO by ticket"},
		{mcs.New(), 16, "FIFO by queue"},
		{clh.New(), 16, "FIFO by queue"},
		{qword.New(), 64, "FIFO by queue word (custom op)"},
		{tournament.New(), 16, "no FCFS (tree)"},
		{watree.New(), 16, "no FCFS (tree)"},
		{tas.New(), 16, "no FCFS (race)"},
	}
	// One spec per (algorithm, seed); per-algorithm configs repeat across
	// seeds, so each engine worker replays them on a recycled machine.
	var specs []engine.RunSpec
	for _, a := range algs {
		// The queue word holds at most 64/ceil(log2(n+1)) entries; cap its
		// process count so -full sweeps stay within a 64-bit word.
		an := n
		if a.alg.Name() == "qword" && an > 12 {
			an = 12
		}
		for seed := 0; seed < seeds; seed++ {
			an, seed := an, seed
			specs = append(specs, engine.RunSpec{
				Session: mutex.Config{
					Procs: an, Width: word.Width(a.width), Model: sim.CC, Algorithm: a.alg,
					Passes: 1, NoTrace: true,
				},
				Drive: func(s *mutex.Session) error {
					return s.RunRandom(int64(seed)+opts.Seed, mutex.RandomRunOptions{})
				},
				Collect: func(s *mutex.Session) (interface{}, error) {
					return inversionFraction(s, an)
				},
			})
		}
	}
	results := engine.Run(specs, opts.engineOpts())
	for ai, a := range algs {
		sum, maxFrac := 0.0, 0.0
		for seed := 0; seed < seeds; seed++ {
			r := results[ai*seeds+seed]
			if r.Err != nil {
				return nil, fmt.Errorf("E11 %s seed %d: %w", a.alg.Name(), seed, r.Err)
			}
			frac := r.Payload.(float64)
			sum += frac
			if frac > maxFrac {
				maxFrac = frac
			}
		}
		t.AddRow(a.alg.Name(), sum/float64(seeds), maxFrac, a.character)
	}
	return []Table{t}, nil
}

// inversionFraction computes the normalized Kendall-tau distance between
// arrival order and CS grant order on a completed session.
func inversionFraction(s *mutex.Session, n int) (float64, error) {
	// Arrival order: first action per process in the schedule.
	arrivalRank := make(map[int]int, n)
	for _, act := range s.Machine().Schedule() {
		if _, ok := arrivalRank[act.Proc]; !ok {
			arrivalRank[act.Proc] = len(arrivalRank)
		}
	}
	grants := s.CSOrder()
	if len(grants) != n {
		return 0, fmt.Errorf("expected %d grants, got %d", n, len(grants))
	}
	inversions, pairs := 0, 0
	for i := 0; i < len(grants); i++ {
		for j := i + 1; j < len(grants); j++ {
			pairs++
			if arrivalRank[grants[i]] > arrivalRank[grants[j]] {
				inversions++
			}
		}
	}
	return float64(inversions) / float64(pairs), nil
}
