package harness

import (
	"fmt"
	"math/rand"

	"rme/internal/algorithms/grlock"
	"rme/internal/algorithms/rspin"
	"rme/internal/algorithms/watree"
	"rme/internal/mutex"
	"rme/internal/sim"
)

// Extensions returns the experiments beyond the paper's direct claims:
// reproductions of the §4 discussion points (the system-wide failure model
// and the amortized-complexity escape hatch).
func Extensions() []Experiment {
	return []Experiment{
		{
			ID:    "E9",
			Title: "System-wide crashes (paper §4 discussion)",
			Claim: "The lower bound inherently relies on individual process crashes; under the system-wide failure model [11, 14] the same algorithms recover from simultaneous crashes of all processes, and the per-crash-wave RMR overhead is bounded.",
			Run:   runE9,
		},
		{
			ID:    "E10",
			Title: "Worst-case vs amortized RMRs (paper §4 discussion)",
			Claim: "Theorem 1 bounds the maximum RMRs per passage; it most likely cannot extend to amortized complexity [4]. The table reports both statistics: the bound governs the max column, while averages sit well below it for the tree algorithms.",
			Run:   runE10,
		},
		fairnessExperiment(),
		adaptivityExperiment(),
	}
}

// runE9 injects waves of simultaneous crashes and measures the recovery
// overhead per wave.
func runE9(opts Options) ([]Table, error) {
	waves := []int{0, 1, 2, 4}
	n := 12
	if opts.Full {
		n = 32
	}
	t := Table{
		Title:  fmt.Sprintf("E9: system-wide crash waves (n=%d, w=16, CC, 2 passes)", n),
		Header: []string{"algorithm", "crash waves", "total RMRs", "RMR overhead/wave", "max RMR/passage", "violations"},
		Note: "Each wave crashes every live process at a random point; the run must " +
			"still complete every super-passage exactly once. Overhead/wave is the " +
			"added total RMR cost relative to the crash-free run, i.e. the price of a " +
			"full recovery storm.",
	}
	algs := []mutex.Algorithm{watree.New(), watree.New(watree.WithFanout(2)), grlock.New(), rspin.New()}
	for _, alg := range algs {
		var base int
		for _, wv := range waves {
			total, maxP, violations, err := runWithCrashWaves(alg, n, wv, 99)
			if err != nil {
				return nil, fmt.Errorf("E9 %s waves=%d: %w", alg.Name(), wv, err)
			}
			if wv == 0 {
				base = total
			}
			overhead := "-"
			if wv > 0 {
				overhead = fmt.Sprintf("%.1f", float64(total-base)/float64(wv))
			}
			t.AddRow(alg.Name(), wv, total, overhead, maxP, violations)
		}
	}
	return []Table{t}, nil
}

func runWithCrashWaves(alg mutex.Algorithm, n, waves int, seed int64) (totalRMRs, maxPassage int, violations int, err error) {
	s, err := mutex.NewSession(mutex.Config{
		Procs: n, Width: 16, Model: sim.CC, Algorithm: alg, Passes: 2, NoTrace: true,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(seed))
	m := s.Machine()
	// Pick wave trigger points over a rough horizon of the crash-free length.
	trigger := make(map[int]bool, waves)
	for i := 0; i < waves; i++ {
		trigger[1+rng.Intn(40*n)] = true
	}
	decision := 0
	for !m.AllDone() {
		poised := m.PoisedProcs()
		if len(poised) == 0 {
			return 0, 0, 0, mutex.ErrStuck
		}
		if trigger[decision] {
			if err := s.CrashAllProcs(); err != nil {
				return 0, 0, 0, err
			}
			delete(trigger, decision)
		}
		if _, err := s.StepProc(poised[rng.Intn(len(poised))]); err != nil {
			return 0, 0, 0, err
		}
		decision++
	}
	return s.TotalRMRs(sim.CC), s.MaxPassageRMRs(sim.CC), len(s.Violations()), nil
}

// runE10 contrasts worst-case and average RMRs per passage.
func runE10(opts Options) ([]Table, error) {
	ns := []int{16, 64}
	if opts.Full {
		ns = append(ns, 256)
	}
	passes := 4
	t := Table{
		Title:  fmt.Sprintf("E10: worst-case vs amortized RMRs per passage (w=8, CC, %d passes)", passes),
		Header: []string{"algorithm", "n", "max RMR/passage", "avg RMR/passage", "max/avg"},
		Note: "Theorem 1 is a worst-case statement. The amortized column shows the " +
			"average over a contended run: the gap between the columns is the room " +
			"the paper's §4 identifies for constant-amortized RME [4].",
	}
	for _, alg := range []mutex.Algorithm{watree.New(), watree.New(watree.WithFanout(2)), grlock.New()} {
		for _, n := range ns {
			s, err := mutex.NewSession(mutex.Config{
				Procs: n, Width: 8, Model: sim.CC, Algorithm: alg, Passes: passes, NoTrace: true,
			})
			if err != nil {
				return nil, err
			}
			if err := s.RunRoundRobin(); err != nil {
				s.Close()
				return nil, fmt.Errorf("E10 %s n=%d: %w", alg.Name(), n, err)
			}
			stats := s.Stats()
			total, maxP := 0, 0
			for _, st := range stats {
				total += st.RMRsCC
				if st.RMRsCC > maxP {
					maxP = st.RMRsCC
				}
			}
			avg := float64(total) / float64(len(stats))
			t.AddRow(alg.Name(), n, maxP, avg, float64(maxP)/avg)
			s.Close()
		}
	}
	return []Table{t}, nil
}
