package harness

import (
	"fmt"
	"math/rand"

	"rme/internal/algorithms/grlock"
	"rme/internal/algorithms/rspin"
	"rme/internal/algorithms/watree"
	"rme/internal/engine"
	"rme/internal/mutex"
	"rme/internal/sim"
)

// Extensions returns the experiments beyond the paper's direct claims:
// reproductions of the §4 discussion points (the system-wide failure model
// and the amortized-complexity escape hatch) and the checker-focused
// state-space census (E13).
func Extensions() []Experiment {
	return []Experiment{
		{
			ID:    "E9",
			Title: "System-wide crashes (paper §4 discussion)",
			Claim: "The lower bound inherently relies on individual process crashes; under the system-wide failure model [11, 14] the same algorithms recover from simultaneous crashes of all processes, and the per-crash-wave RMR overhead is bounded.",
			Run:   runE9,
		},
		{
			ID:    "E10",
			Title: "Worst-case vs amortized RMRs (paper §4 discussion)",
			Claim: "Theorem 1 bounds the maximum RMRs per passage; it most likely cannot extend to amortized complexity [4]. The table reports both statistics: the bound governs the max column, while averages sit well below it for the tree algorithms.",
			Run:   runE10,
		},
		fairnessExperiment(),
		adaptivityExperiment(),
		statespaceExperiment(),
	}
}

// runE9 injects waves of simultaneous crashes and measures the recovery
// overhead per wave.
func runE9(opts Options) ([]Table, error) {
	waves := []int{0, 1, 2, 4}
	n := 12
	if opts.Full {
		n = 32
	}
	t := Table{
		Title:  fmt.Sprintf("E9: system-wide crash waves (n=%d, w=16, CC, 2 passes)", n),
		Header: []string{"algorithm", "crash waves", "total RMRs", "RMR overhead/wave", "max RMR/passage", "violations"},
		Note: "Each wave crashes every live process at a random point; the run must " +
			"still complete every super-passage exactly once. Overhead/wave is the " +
			"added total RMR cost relative to the crash-free run, i.e. the price of a " +
			"full recovery storm.",
	}
	algs := []mutex.Algorithm{watree.New(), watree.New(watree.WithFanout(2)), grlock.New(), rspin.New()}
	var specs []engine.RunSpec
	for _, alg := range algs {
		for _, wv := range waves {
			specs = append(specs, engine.RunSpec{
				Session: mutex.Config{
					Procs: n, Width: 16, Model: sim.CC, Algorithm: alg, Passes: 2, NoTrace: true,
				},
				Drive: crashWaveDrive(n, wv, 99+opts.Seed),
			})
		}
	}
	results := engine.Run(specs, opts.engineOpts())
	idx := 0
	for _, alg := range algs {
		var base int
		for _, wv := range waves {
			r := results[idx]
			idx++
			if r.Err != nil {
				return nil, fmt.Errorf("E9 %s waves=%d: %w", alg.Name(), wv, r.Err)
			}
			total := r.TotalRMRCC
			if wv == 0 {
				base = total
			}
			overhead := "-"
			if wv > 0 {
				overhead = fmt.Sprintf("%.1f", float64(total-base)/float64(wv))
			}
			t.AddRow(alg.Name(), wv, total, overhead, r.MaxRMRCC, len(r.Violations))
		}
	}
	return []Table{t}, nil
}

// crashWaveDrive returns a deterministic drive that crashes every live
// process at `waves` seeded points of an otherwise random run.
func crashWaveDrive(n, waves int, seed int64) func(*mutex.Session) error {
	return func(s *mutex.Session) error {
		rng := rand.New(rand.NewSource(seed))
		m := s.Machine()
		// Pick wave trigger points over a rough horizon of the crash-free
		// length.
		trigger := make(map[int]bool, waves)
		for i := 0; i < waves; i++ {
			trigger[1+rng.Intn(40*n)] = true
		}
		decision := 0
		for !m.AllDone() {
			poised := m.PoisedProcs()
			if len(poised) == 0 {
				return mutex.ErrStuck
			}
			if trigger[decision] {
				if err := s.CrashAllProcs(); err != nil {
					return err
				}
				delete(trigger, decision)
			}
			if _, err := s.StepProc(poised[rng.Intn(len(poised))]); err != nil {
				return err
			}
			decision++
		}
		return nil
	}
}

// runE10 contrasts worst-case and average RMRs per passage.
func runE10(opts Options) ([]Table, error) {
	ns := []int{16, 64}
	if opts.Full {
		ns = append(ns, 256)
	}
	passes := 4
	t := Table{
		Title:  fmt.Sprintf("E10: worst-case vs amortized RMRs per passage (w=8, CC, %d passes)", passes),
		Header: []string{"algorithm", "n", "max RMR/passage", "avg RMR/passage", "max/avg"},
		Note: "Theorem 1 is a worst-case statement. The amortized column shows the " +
			"average over a contended run: the gap between the columns is the room " +
			"the paper's §4 identifies for constant-amortized RME [4].",
	}
	algs := []mutex.Algorithm{watree.New(), watree.New(watree.WithFanout(2)), grlock.New()}
	type amortized struct {
		maxP int
		avg  float64
	}
	var specs []engine.RunSpec
	for _, alg := range algs {
		for _, n := range ns {
			specs = append(specs, engine.RunSpec{
				Session: mutex.Config{
					Procs: n, Width: 8, Model: sim.CC, Algorithm: alg, Passes: passes, NoTrace: true,
				},
				Collect: func(s *mutex.Session) (interface{}, error) {
					stats := s.Stats()
					total, maxP := 0, 0
					for _, st := range stats {
						total += st.RMRsCC
						if st.RMRsCC > maxP {
							maxP = st.RMRsCC
						}
					}
					return amortized{maxP: maxP, avg: float64(total) / float64(len(stats))}, nil
				},
			})
		}
	}
	results := engine.Run(specs, opts.engineOpts())
	idx := 0
	for _, alg := range algs {
		for _, n := range ns {
			r := results[idx]
			idx++
			if r.Err != nil {
				return nil, fmt.Errorf("E10 %s n=%d: %w", alg.Name(), n, r.Err)
			}
			am := r.Payload.(amortized)
			t.AddRow(alg.Name(), n, am.maxP, am.avg, float64(am.maxP)/am.avg)
		}
	}
	return []Table{t}, nil
}
