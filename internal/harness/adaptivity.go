package harness

import (
	"fmt"

	"rme/internal/algorithms/watree"
	"rme/internal/engine"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/word"
)

// adaptivityExperiment is E12: Katzan–Morrison's algorithm additionally
// adapts to point contention — O(min(k, log n/log log n)) RMRs — which is
// what makes the word-size tradeoff attractive in practice. The tree's
// adaptive fast path (WithFastPath) reproduces the k = 1 end of that claim.
func adaptivityExperiment() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "Contention adaptivity — the Katzan–Morrison fast path (paper §1.2)",
		Claim: "Katzan–Morrison's algorithm has RMR complexity O(min(k, log n/log log n)) for point contention k. The adaptive fast path pays O(1) when uncontended, independent of tree depth; under contention it degrades gracefully to the Θ(log_w n) climb.",
		Run:   runE12,
	}
}

// runE12 measures passage cost at contention k = 1 (solo) and k = n
// (saturated), with and without the fast path, across tree depths.
func runE12(opts Options) ([]Table, error) {
	n := 64
	if opts.Full {
		n = 256
	}
	t := Table{
		Title:  fmt.Sprintf("E12: solo vs saturated passage cost (n=%d, CC)", n),
		Header: []string{"algorithm", "w", "depth", "solo RMRs (k=1)", "saturated max RMRs (k=n)"},
		Note: "solo = a single process acquires while everyone else is still in the " +
			"remainder section; saturated = all n contend. The fast path pins the solo " +
			"column to a depth-independent constant — the k=1 end of the adaptive bound " +
			"O(min(k, log_w n)) — while the plain tree pays the climb even alone.",
	}
	cases := []struct {
		alg mutex.Algorithm
		w   int
	}{
		{watree.New(), 8},
		{watree.New(watree.WithFastPath()), 8},
		{watree.New(watree.WithFanout(2)), 16},
		{watree.New(watree.WithFanout(2), watree.WithFastPath()), 16},
	}
	// Two specs per case: a solo passage (custom drive stepping only p0)
	// and a saturated round-robin run.
	var specs []engine.RunSpec
	for _, tc := range cases {
		specs = append(specs, engine.RunSpec{
			Session: mutex.Config{
				Procs: n, Width: word.Width(tc.w), Model: sim.CC, Algorithm: tc.alg, NoTrace: true,
			},
			Drive:   soloDrive,
			Collect: soloCollect,
		}, engine.RunSpec{
			Session: mutex.Config{
				Procs: n, Width: word.Width(tc.w), Model: sim.CC, Algorithm: tc.alg, Passes: 2, NoTrace: true,
			},
		})
	}
	results := engine.Run(specs, opts.engineOpts())
	for i, tc := range cases {
		depthAlg, ok := tc.alg.(watree.Lock)
		if !ok {
			return nil, fmt.Errorf("E12: unexpected algorithm type")
		}
		fan := depthAlg.Fanout(word.Width(tc.w), n)
		depth := ceilLogInt(fan, n)

		solo, sat := results[2*i], results[2*i+1]
		if solo.Err != nil {
			return nil, fmt.Errorf("E12 %s solo: %w", tc.alg.Name(), solo.Err)
		}
		if sat.Err != nil {
			return nil, fmt.Errorf("E12 %s saturated: %w", tc.alg.Name(), sat.Err)
		}
		t.AddRow(tc.alg.Name(), tc.w, depth, solo.Payload.(int), sat.MaxRMRCC)
	}
	return []Table{t}, nil
}

// soloDrive runs process 0 through one super-passage while the rest never
// leave the remainder section.
func soloDrive(s *mutex.Session) error {
	m := s.Machine()
	for !m.ProcDone(0) {
		if !m.Poised(0) {
			return fmt.Errorf("solo process blocked")
		}
		if _, err := s.StepProc(0); err != nil {
			return err
		}
	}
	return nil
}

// soloCollect reads process 0's passage cost.
func soloCollect(s *mutex.Session) (interface{}, error) {
	for _, st := range s.Stats() {
		if st.Proc == 0 {
			return st.RMRsCC, nil
		}
	}
	return nil, fmt.Errorf("no passage stats")
}

func ceilLogInt(base, n int) int {
	l, p := 0, 1
	for p < n {
		p *= base
		l++
	}
	return l
}
