package harness

import (
	"fmt"
	"math"
	"math/rand"

	"rme/internal/adversary"
	"rme/internal/algorithms/clh"
	"rme/internal/algorithms/grlock"
	"rme/internal/algorithms/mcs"
	"rme/internal/algorithms/rspin"
	"rme/internal/algorithms/tas"
	"rme/internal/algorithms/ticket"
	"rme/internal/algorithms/tournament"
	"rme/internal/algorithms/watree"
	"rme/internal/algorithms/yatree"
	"rme/internal/engine"
	"rme/internal/hiding"
	"rme/internal/hypergraph"
	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/telemetry"
	"rme/internal/trace"
	"rme/internal/word"
)

// Options tunes experiment scale and execution.
type Options struct {
	// Full enlarges parameter sweeps (slower, for the headline run).
	Full bool
	// Parallel is the engine worker count for experiment grids (<= 0 means
	// GOMAXPROCS). Every experiment merges results in grid order, so the
	// rendered tables are byte-identical at any parallelism level.
	Parallel int
	// Metrics, when non-nil, accumulates run statistics (run counts, steps,
	// max/avg RMRs) across experiments — cmd/rmrbench threads one through
	// for its machine-readable report.
	Metrics *engine.Metrics
	// Seed offsets every experiment's fixed base seeds. 0 reproduces the
	// published tables; any other value reruns the randomized experiments on
	// a disjoint, equally deterministic sample.
	Seed int64
	// Trace, when non-nil, captures every engine run's event stream for
	// export (cmd/rmrbench -trace). Experiments that bypass the engine's
	// Run (adversary constructions) are not captured.
	Trace *trace.Capture
	// Telemetry, when non-nil, receives live engine statistics from every
	// experiment grid (see engine.Options.Telemetry).
	Telemetry *telemetry.Registry
}

func (o Options) engineOpts() engine.Options {
	return engine.Options{Parallel: o.Parallel, Metrics: o.Metrics, Trace: o.Trace, Telemetry: o.Telemetry}
}

// Experiment is one reproducible result.
type Experiment struct {
	ID    string
	Title string
	// Claim cites the paper statement the experiment reproduces.
	Claim string
	Run   func(opts Options) ([]Table, error)
}

// All returns the experiments in index order: the paper-claim
// reproductions E1–E8 followed by the §4-discussion extensions (see
// Extensions).
func All() []Experiment {
	exps := core()
	return append(exps, Extensions()...)
}

func core() []Experiment {
	return []Experiment{
		{
			ID:    "E1",
			Title: "Theorem 1 — adversary-forced RMRs (lower bound)",
			Claim: "Any deadlock-free RME algorithm on w-bit words has RMR complexity Ω(min(log_w n, log n/log log n)); the operational adversary forces that many RMRs on a process that never crashes and never enters the CS.",
			Run:   runE1,
		},
		{
			ID:    "E2",
			Title: "Katzan–Morrison upper bound — word-size tradeoff",
			Claim: "The FAA-based algorithm [19] achieves O(log_w n) RMRs per passage; the lower bound is tight for w ≥ (log n)^ε.",
			Run:   runE2,
		},
		{
			ID:    "E3",
			Title: "Lemma 4 — hypergraph certificate statistics",
			Claim: "For any k-partite hypergraph with |X_1| ≤ s(1+ε), a set Z with conclusion (a) or (b) exists; the constructive search always produces a verified certificate.",
			Run:   runE3,
		},
		{
			ID:    "E4",
			Title: "Lemma 5 — iterated certificate statistics",
			Claim: "With all parts ≤ s(1+ε) and |E| ≥ s^k, a hyperedge family F and index d exist with |U∩X_i| ≤ 2 (i≠d) and |U∩X_d| ≥ s(1+ε)(1−2ε).",
			Run:   runE4,
		},
		{
			ID:    "E5",
			Title: "Lemma 2 (Process-Hiding) — certificates at the paper's constants",
			Claim: "Groups of ≥ 108δℓ² processes on a 2^ℓ-valued register admit alpha sets A_i ⊆ V_i and, for every |D| ≤ δ|∪V_i|, hidden processes z_i for at least half the groups.",
			Run:   runE5,
		},
		{
			ID:    "E6",
			Title: "Algorithm landscape — RMRs per passage (paper §1.2)",
			Claim: "Empirical RMR-per-passage of the algorithm families the paper surveys: O(n) [12], O(log n) [16,23], O(log_w n) [19], O(1) conventional queue locks [20,21].",
			Run:   runE6,
		},
		{
			ID:    "E7",
			Title: "Crash steps rescue hiding (paper §1.1)",
			Claim: "With FAS and no crashes, every process discovers its predecessor and the active set collapses; with crashes, an adversary hides a process under the alphas' crash-recover-complete manoeuvre.",
			Run:   runE7,
		},
		{
			ID:    "E8",
			Title: "Invariant audit — operational I1–I10 compliance",
			Claim: "Every adversary construction verifies its removals by replay (the 2^n-column table materialized on demand); the audit reports zero invariant violations.",
			Run:   runE8,
		},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- E1 ----------------------------------------------------------------------

func runE1(opts Options) ([]Table, error) {
	ns := []int{16, 64, 256}
	ws := []word.Width{4, 8, 16, 64}
	models := []sim.Model{sim.CC}
	if opts.Full {
		ns = append(ns, 1024)
		models = append(models, sim.DSM)
	}

	type point struct {
		model sim.Model
		n     int
		w     word.Width
	}
	var pts []point
	for _, model := range models {
		for _, n := range ns {
			for _, w := range ws {
				pts = append(pts, point{model, n, w})
			}
		}
	}
	// One adversary construction per grid point, distributed over engine
	// workers; reports land by index, so table order never depends on
	// completion order.
	reps := make([]*adversary.Report, len(pts))
	err := engine.ForEach(len(pts), opts.Parallel, func(i int) error {
		pt := pts[i]
		rep, err := runAdversary(mutex.Config{
			Procs: pt.n, Width: pt.w, Model: pt.model, Algorithm: watree.New(),
		}, 0, opts)
		if err != nil {
			return fmt.Errorf("E1 n=%d w=%d: %w", pt.n, pt.w, err)
		}
		if len(rep.InvariantViolations) > 0 {
			return fmt.Errorf("E1 n=%d w=%d: invariant violations: %v", pt.n, pt.w, rep.InvariantViolations)
		}
		reps[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}

	var tables []Table
	idx := 0
	for _, model := range models {
		t := Table{
			Title:  fmt.Sprintf("E1 (%s): adversary vs watree — forced RMRs by (n, w)", model),
			Header: []string{"n", "w", "rounds", "forced RMRs", "survivors", "ceil(log_w n)", "theory min(log_w n, ln n/ln ln n)"},
			Note: "forced RMRs = max RMRs over surviving active processes (never crashed, " +
				"never entered the CS). The shape must track the theory column: " +
				"decreasing in w, increasing in n.",
		}
		for _, n := range ns {
			for _, w := range ws {
				rep := reps[idx]
				idx++
				t.AddRow(n, int(w), rep.ViableRounds, rep.ForcedRMRs(), len(rep.Survivors),
					word.CeilLog(int(w), n), word.TheoreticalLowerBound(w, n))
			}
		}
		tables = append(tables, t)
	}

	// Companion table: the bound against a read/write algorithm — the
	// classic Anderson–Kim regime the paper generalizes. Word size does not
	// enter a read/write protocol, so the forced cost tracks log n alone.
	rw := Table{
		Title:  "E1b (CC): adversary vs yatree (reads/writes only) — forced RMRs by n",
		Header: []string{"n", "rounds", "forced RMRs", "survivors", "ceil(log2 n)"},
		Note: "Against reads and writes the adversary needs no crash steps at all " +
			"(the Anderson–Kim construction [1]); the forced cost grows with log n " +
			"independent of w.",
	}
	repsB := make([]*adversary.Report, len(ns))
	err = engine.ForEach(len(ns), opts.Parallel, func(i int) error {
		n := ns[i]
		rep, err := runAdversary(mutex.Config{
			Procs: n, Width: 16, Model: sim.CC, Algorithm: yatree.New(),
		}, 0, opts)
		if err != nil {
			return fmt.Errorf("E1b n=%d: %w", n, err)
		}
		if len(rep.InvariantViolations) > 0 {
			return fmt.Errorf("E1b n=%d: %v", n, rep.InvariantViolations)
		}
		repsB[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range ns {
		rep := repsB[i]
		rw.AddRow(n, rep.ViableRounds, rep.ForcedRMRs(), len(rep.Survivors), word.CeilLog(2, n))
	}
	tables = append(tables, rw)
	return tables, nil
}

func runAdversary(cfg mutex.Config, k int, opts Options) (*adversary.Report, error) {
	adv, err := adversary.New(adversary.Config{Session: cfg, K: k})
	if err != nil {
		return nil, err
	}
	defer adv.Close()
	rep, err := adv.Run()
	if err == nil && opts.Metrics != nil {
		opts.Metrics.Add(1, rep.Steps, rep.ForcedRMRs())
	}
	return rep, err
}

// --- E2 ----------------------------------------------------------------------

func runE2(opts Options) ([]Table, error) {
	ns := []int{16, 64, 256}
	ws := []word.Width{2, 4, 8, 16, 32, 64}
	if opts.Full {
		ns = append(ns, 1024)
	}
	t := Table{
		Title: "E2: watree measured worst-case RMRs per passage by (n, w)",
		Header: []string{"n", "w", "fanout", "depth", "max RMR/passage CC", "max RMR/passage DSM",
			"per-level CC", "theory Θ(log_w n)"},
		Note: "Upper bound shape: the measured worst-case passage cost divided by the tree " +
			"depth is a constant (the per-level column), so the cost is Θ(depth) = " +
			"Θ(ceil(log_w n)) — decreasing in w, matching Theorem 1's lower bound for " +
			"w ≥ (log n)^ε and meeting the O(1) Katzan–Morrison headline at w ≥ n.",
	}
	alg := watree.New()
	type point struct {
		n          int
		w          word.Width
		fan, depth int
	}
	var pts []point
	var specs []engine.RunSpec
	for _, n := range ns {
		for _, w := range ws {
			fan := alg.Fanout(w, n)
			pts = append(pts, point{n, w, fan, word.CeilLog(fan, n)})
			specs = append(specs, engine.RunSpec{Session: mutex.Config{
				Procs: n, Width: w, Model: sim.CC, Algorithm: alg, Passes: 2, NoTrace: true,
			}})
		}
	}
	for i, r := range engine.Run(specs, opts.engineOpts()) {
		pt := pts[i]
		if r.Err != nil {
			return nil, fmt.Errorf("E2 n=%d w=%d: %w", pt.n, pt.w, r.Err)
		}
		perLevel := float64(r.MaxRMRCC)
		if pt.depth > 0 {
			perLevel = float64(r.MaxRMRCC) / float64(pt.depth)
		}
		t.AddRow(pt.n, int(pt.w), pt.fan, pt.depth, r.MaxRMRCC, r.MaxRMRDSM, perLevel,
			word.CeilLog(int(pt.w), pt.n))
	}
	return []Table{t}, nil
}

// --- E3 ----------------------------------------------------------------------

func runE3(opts Options) ([]Table, error) {
	trials := 300
	if opts.Full {
		trials = 2000
	}
	rng := rand.New(rand.NewSource(11 + opts.Seed))
	t := Table{
		Title:  "E3: Lemma 4 over random k-partite hypergraphs",
		Header: []string{"k", "trials", "case (a)", "case (b)", "avg |Z| (b)", "verified"},
		Note:   "Every trial must yield a certificate satisfying conclusion (a) or (b); the verifier re-checks the set algebra from scratch.",
	}
	for _, k := range []int{2, 3, 4} {
		caseA, caseB, sumZB, verified := 0, 0, 0, 0
		for i := 0; i < trials; i++ {
			size := 4 + rng.Intn(8)
			edges, parts := randomHypergraph(rng, k, size)
			s := float64(size) / 1.2
			res, err := hypergraph.Lemma4(edges, 0, parts[0], s, 0.2)
			if err != nil {
				return nil, fmt.Errorf("E3 trial %d: %w", i, err)
			}
			if err := hypergraph.VerifyLemma4(edges, 0, res, s, 0.2); err != nil {
				return nil, fmt.Errorf("E3 trial %d: %w", i, err)
			}
			verified++
			if res.CaseA {
				caseA++
			} else {
				caseB++
				sumZB += len(res.Z)
			}
		}
		avgZ := 0.0
		if caseB > 0 {
			avgZ = float64(sumZB) / float64(caseB)
		}
		t.AddRow(k, trials, caseA, caseB, avgZ, verified)
	}
	return []Table{t}, nil
}

func randomHypergraph(rng *rand.Rand, k, size int) ([]hypergraph.Edge, [][]hypergraph.Vertex) {
	parts := make([][]hypergraph.Vertex, k)
	id := 0
	for i := range parts {
		parts[i] = make([]hypergraph.Vertex, size)
		for j := range parts[i] {
			parts[i][j] = hypergraph.Vertex(id)
			id++
		}
	}
	total := 1
	for i := 0; i < k; i++ {
		total *= size
	}
	want := 1 + rng.Intn(4*size*size)
	if want > total {
		want = total
	}
	seen := make(map[string]bool, want)
	var edges []hypergraph.Edge
	for len(edges) < want {
		e := make(hypergraph.Edge, k)
		for i := range e {
			e[i] = parts[i][rng.Intn(size)]
		}
		key := e.String()
		if !seen[key] {
			seen[key] = true
			edges = append(edges, e)
		}
	}
	return edges, parts
}

// --- E4 ----------------------------------------------------------------------

func runE4(opts Options) ([]Table, error) {
	trials := 40
	if opts.Full {
		trials = 200
	}
	rng := rand.New(rand.NewSource(12 + opts.Seed))
	t := Table{
		Title:  "E4: Lemma 5 over random edge subsets with |E| ≥ s^k",
		Header: []string{"k", "part size", "trials", "avg |F|", "avg |U∩X_d|", "bound s(1+ε)(1−2ε)", "verified"},
		Note:   "The distinguished part's support must meet the lower bound; all other parts are touched in ≤ 2 vertices.",
	}
	for _, tc := range []struct{ k, size int }{{2, 8}, {3, 6}, {4, 5}} {
		s := float64(tc.size) / 1.2
		eps := 0.2
		var sumF, sumUD, verified int
		for i := 0; i < trials; i++ {
			parts := completeParts(tc.k, tc.size)
			full, err := hypergraph.Complete(parts, 1<<21)
			if err != nil {
				return nil, err
			}
			minEdges := int(math.Pow(s, float64(tc.k))) + 1
			perm := rng.Perm(len(full.Edges))
			keep := minEdges + rng.Intn(len(full.Edges)-minEdges+1)
			sub := &hypergraph.Partite{Parts: parts, Edges: make([]hypergraph.Edge, 0, keep)}
			for _, idx := range perm[:keep] {
				sub.Edges = append(sub.Edges, full.Edges[idx])
			}
			res, err := hypergraph.Lemma5(sub, s, eps)
			if err != nil {
				return nil, fmt.Errorf("E4 k=%d trial %d: %w", tc.k, i, err)
			}
			if err := hypergraph.VerifyLemma5(sub, res, s, eps); err != nil {
				return nil, fmt.Errorf("E4 k=%d trial %d: %w", tc.k, i, err)
			}
			verified++
			sumF += len(res.F)
			sumUD += len(res.Support(tc.k)[res.D])
		}
		t.AddRow(tc.k, tc.size, trials,
			float64(sumF)/float64(trials), float64(sumUD)/float64(trials),
			s*1.2*0.6, verified)
	}
	return []Table{t}, nil
}

func completeParts(k, size int) [][]hypergraph.Vertex {
	parts := make([][]hypergraph.Vertex, k)
	id := 0
	for i := range parts {
		parts[i] = make([]hypergraph.Vertex, size)
		for j := range parts[i] {
			parts[i][j] = hypergraph.Vertex(id)
			id++
		}
	}
	return parts
}

// --- E5 ----------------------------------------------------------------------

func runE5(opts Options) ([]Table, error) {
	m := 1
	draws := 10
	if opts.Full {
		m = 3
		draws = 50
	}
	k, partSize, groupSize := hiding.PaperConfig(1, 1)

	groups := make([][]hiding.Proc, m)
	id := 0
	for i := range groups {
		groups[i] = make([]hiding.Proc, groupSize)
		for j := range groups[i] {
			groups[i][j] = hiding.Proc(id)
			id++
		}
	}
	ops := hiding.UniformOp(groups, memory.Add(1)) // 1-bit toggles
	apply, err := hiding.RegisterApply(1, ops)
	if err != nil {
		return nil, err
	}
	cert, err := hiding.Construct(hiding.Config{
		Groups: groups, Y0: 0, ValueBits: 1, Delta: 1, K: k, PartSize: partSize, Apply: apply,
	})
	if err != nil {
		return nil, err
	}
	if err := cert.Verify(); err != nil {
		return nil, err
	}

	t := Table{
		Title:  "E5: Process-Hiding Lemma at the paper's constants (ℓ=1, δ=1, k=4ℓ, parts ⌊27δℓ⌋, groups 108δℓ²)",
		Header: []string{"group", "|V_i| (alphas)", "reservoir |U_i\\V_i|", "d_i", "|F_i|", "y_{i-1}→y_i"},
		Note: fmt.Sprintf("register: 1-bit FAA(1) toggles; %d group(s) of %d processes; "+
			"guaranteed discovered-set budget |D| ≤ %d; the adversarial-D verification and "+
			"%d random draws all yielded hidden processes for ≥ half the groups.",
			m, groupSize, cert.MaxD, draws),
	}
	for i, g := range cert.Groups {
		t.AddRow(i, len(g.V), len(g.Reservoir), g.D, len(g.F),
			fmt.Sprintf("%d→%d", g.YPrev, g.Y))
	}

	// Random-D draws (the adversarial D is covered by Verify above).
	rng := rand.New(rand.NewSource(5 + opts.Seed))
	var all []hiding.Proc
	for _, g := range groups {
		all = append(all, g...)
	}
	for d := 0; d < draws; d++ {
		size := rng.Intn(cert.MaxD + 1)
		perm := rng.Perm(len(all))
		set := make([]hiding.Proc, size)
		for i := 0; i < size; i++ {
			set[i] = all[perm[i]]
		}
		hid, err := cert.ForD(set)
		if err != nil {
			return nil, fmt.Errorf("E5 draw %d: %w", d, err)
		}
		if err := cert.VerifyHidden(set, hid); err != nil {
			return nil, fmt.Errorf("E5 draw %d: %w", d, err)
		}
	}
	return []Table{t}, nil
}

// --- E6 ----------------------------------------------------------------------

func runE6(opts Options) ([]Table, error) {
	ns := []int{8, 16, 32}
	if opts.Full {
		ns = append(ns, 64, 128)
	}
	type entry struct {
		alg    mutex.Algorithm
		class  string
		dsmRow bool
	}
	entries := []entry{
		{tas.New(), "unbounded (spin)", true},
		{ticket.New(), "Θ(contenders) CC", true},
		{mcs.New(), "O(1) [20,21]", true},
		{clh.New(), "O(1) [6]", true},
		{tournament.New(), "Θ(log n) r/w, CC-only Peterson", false},
		{yatree.New(), "Θ(log n) r/w, DSM-local [23]", true},
		{grlock.New(), "O(n) RME [12]", true},
		{rspin.New(), "unbounded RME", true},
		{watree.New(watree.WithFanout(2)), "Θ(log n) RME [16]", true},
		{watree.New(), "Θ(log_w n) RME [19]", true},
	}
	t := Table{
		Title:  "E6: landscape — max RMRs per passage (w=16, 2 passes, contended round-robin)",
		Header: []string{"algorithm", "complexity class"},
		Note: "The paper's §1/§1.2 survey, measured: the O(n) scan grows linearly, the trees " +
			"logarithmically, the queue lock stays constant, and the spin locks grow with " +
			"contention. DSM columns are omitted for the CC-only tournament.",
	}
	for _, n := range ns {
		t.Header = append(t.Header, fmt.Sprintf("CC n=%d", n))
	}
	for _, n := range ns {
		t.Header = append(t.Header, fmt.Sprintf("DSM n=%d", n))
	}
	var specs []engine.RunSpec
	for _, e := range entries {
		for _, n := range ns {
			specs = append(specs, engine.RunSpec{Session: mutex.Config{
				Procs: n, Width: 16, Model: sim.CC, Algorithm: e.alg, Passes: 2, NoTrace: true,
			}})
		}
	}
	results := engine.Run(specs, opts.engineOpts())
	idx := 0
	for _, e := range entries {
		row := []interface{}{e.alg.Name(), e.class}
		var dsmVals []interface{}
		for _, n := range ns {
			r := results[idx]
			idx++
			if r.Err != nil {
				return nil, fmt.Errorf("E6 %s n=%d: %w", e.alg.Name(), n, r.Err)
			}
			row = append(row, r.MaxRMRCC)
			if e.dsmRow {
				dsmVals = append(dsmVals, r.MaxRMRDSM)
			} else {
				dsmVals = append(dsmVals, "-")
			}
		}
		row = append(row, dsmVals...)
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// --- E7 ----------------------------------------------------------------------

func runE7(opts Options) ([]Table, error) {
	n := 12
	if opts.Full {
		n = 24
	}
	t := Table{
		Title:  "E7: crash steps rescue hiding (paper §1.1)",
		Header: []string{"algorithm", "crashes allowed", "hiding attempts", "hiding kept", "survivors", "survivor RMRs"},
		Note: "Against the FAS queue (MCS) without crashes, the hiding verification rejects " +
			"every candidate (each FAS return names the predecessor) and the active set " +
			"collapses; against recoverable single-cell locks, the crash-recover-complete " +
			"manoeuvre keeps a hidden process active.",
	}
	algs := []mutex.Algorithm{
		mcs.New(),
		rspin.New(),
		grlock.New(),
		watree.New(watree.WithFanout(2)),
	}
	reps := make([]*adversary.Report, len(algs))
	err := engine.ForEach(len(algs), opts.Parallel, func(i int) error {
		rep, err := runAdversary(mutex.Config{
			Procs: n, Width: 16, Model: sim.CC, Algorithm: algs[i],
		}, 4, opts)
		if err != nil {
			return fmt.Errorf("E7 %s: %w", algs[i].Name(), err)
		}
		reps[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, alg := range algs {
		rep := reps[i]
		kept := 0
		for _, r := range rep.Rounds {
			kept += r.HiddenKept
		}
		t.AddRow(alg.Name(), alg.Recoverable(), rep.HidingAttempts, kept,
			len(rep.Survivors), fmt.Sprint(rep.SurvivorRMRs))
	}
	return []Table{t}, nil
}

// --- E8 ----------------------------------------------------------------------

func runE8(opts Options) ([]Table, error) {
	ns := []int{16, 64}
	if opts.Full {
		ns = append(ns, 256)
	}
	t := Table{
		Title:  "E8: invariant audit across adversary constructions",
		Header: []string{"algorithm", "model", "n", "w", "replays", "rollbacks", "violations"},
		Note: "replays = verified schedule restrictions (the proof's table columns " +
			"materialized); rollbacks = erasures rejected by the observable comparison " +
			"(handled conservatively); violations must be zero.",
	}
	type point struct {
		model sim.Model
		n     int
		alg   mutex.Algorithm
	}
	var pts []point
	for _, model := range []sim.Model{sim.CC, sim.DSM} {
		for _, n := range ns {
			for _, alg := range []mutex.Algorithm{watree.New(), grlock.New()} {
				pts = append(pts, point{model, n, alg})
			}
		}
	}
	reps := make([]*adversary.Report, len(pts))
	err := engine.ForEach(len(pts), opts.Parallel, func(i int) error {
		pt := pts[i]
		rep, err := runAdversary(mutex.Config{
			Procs: pt.n, Width: 8, Model: pt.model, Algorithm: pt.alg,
		}, 0, opts)
		if err != nil {
			return fmt.Errorf("E8 %s %s n=%d: %w", pt.alg.Name(), pt.model, pt.n, err)
		}
		if len(rep.InvariantViolations) > 0 {
			return fmt.Errorf("E8: %v", rep.InvariantViolations)
		}
		reps[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, pt := range pts {
		rep := reps[i]
		t.AddRow(pt.alg.Name(), pt.model.String(), pt.n, 8, rep.Replays, rep.RemovalRollbacks,
			len(rep.InvariantViolations))
	}
	return []Table{t}, nil
}
