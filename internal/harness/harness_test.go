package harness

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:  "demo",
		Note:   "a note that should wrap when it exceeds the configured width of the renderer by some margin",
		Header: []string{"col", "value"},
	}
	tbl.AddRow("a", 1)
	tbl.AddRow("bcd", 2.5)
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"## demo", "col", "value", "bcd", "2.50", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	exps := All()
	if len(exps) != 13 {
		t.Fatalf("%d experiments, want 13", len(exps))
	}
	seen := make(map[string]bool)
	for _, e := range exps {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil {
			t.Errorf("%s has no Run", e.ID)
		}
	}
	if _, ok := Find("E13"); !ok {
		t.Error("E10 not found")
	}
	if _, ok := Find("E0"); ok {
		t.Error("E0 found")
	}
}

// TestExperimentsProduceTables runs every experiment at default scale and
// validates the output shape. E1 and E5 are the slow ones (~15s combined);
// they are skipped under -short.
func TestExperimentsProduceTables(t *testing.T) {
	slow := map[string]bool{"E1": true, "E5": true}
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			if testing.Short() && slow[exp.ID] {
				t.Skip("slow experiment")
			}
			tables, err := exp.Run(Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tbl := range tables {
				if tbl.Title == "" || len(tbl.Header) == 0 || len(tbl.Rows) == 0 {
					t.Errorf("malformed table %+v", tbl.Title)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Header) {
						t.Errorf("%s: row width %d != header width %d", tbl.Title, len(row), len(tbl.Header))
					}
				}
			}
		})
	}
}

// TestE1ShapeMatchesTheory spot-checks the lower-bound table's monotonicity:
// forced RMRs decrease in w (fixed n) and do not decrease in n (fixed w).
func TestE1ShapeMatchesTheory(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tables, err := runE1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ n, w string }
	forced := make(map[key]int)
	for _, row := range tables[0].Rows {
		v, err := strconv.Atoi(row[3])
		if err != nil {
			t.Fatalf("forced column not an int: %q", row[3])
		}
		forced[key{row[0], row[1]}] = v
	}
	if forced[key{"256", "4"}] <= forced[key{"256", "64"}] {
		t.Errorf("n=256: forced RMRs should shrink with w: w4=%d w64=%d",
			forced[key{"256", "4"}], forced[key{"256", "64"}])
	}
	if forced[key{"256", "4"}] < forced[key{"16", "4"}] {
		t.Errorf("w=4: forced RMRs should not shrink with n: n16=%d n256=%d",
			forced[key{"16", "4"}], forced[key{"256", "4"}])
	}
}
