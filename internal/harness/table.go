// Package harness defines the repository's experiments — E1–E8, one per
// quantitative claim of the paper, plus the extensions E9–E13
// (see DESIGN.md's experiment index) — and renders their results as
// plain-text tables. cmd/rmrbench regenerates every
// table; EXPERIMENTS.md records the output next to the paper's claims.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row (fmt.Sprint applied to each value).
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "## %s\n", t.Title)
	if t.Note != "" {
		for _, line := range wrap(t.Note, 76) {
			fmt.Fprintf(w, "   %s\n", line)
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "   %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

func wrap(s string, width int) []string {
	words := strings.Fields(s)
	var lines []string
	cur := ""
	for _, w := range words {
		if cur == "" {
			cur = w
			continue
		}
		if len(cur)+1+len(w) > width {
			lines = append(lines, cur)
			cur = w
			continue
		}
		cur += " " + w
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
