package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per family, families sorted by
// name across all metric kinds, histogram buckets cumulative with an +Inf
// terminator. The output is a pure function of the snapshot, so /metrics
// responses are diff-able across runs and PRs.
func WritePrometheus(w io.Writer, s Snapshot) error {
	type family struct {
		name string
		emit func(io.Writer) error
	}
	var fams []family
	for _, p := range s.Counters {
		p := p
		name := sanitizeName(p.Name)
		fams = append(fams, family{name: name, emit: func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, p.Value)
			return err
		}})
	}
	for _, p := range s.Gauges {
		p := p
		name := sanitizeName(p.Name)
		fams = append(fams, family{name: name, emit: func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, p.Value)
			return err
		}})
	}
	for _, h := range s.Histograms {
		h := h
		name := sanitizeName(h.Name)
		fams = append(fams, family{name: name, emit: func(w io.Writer) error {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			cum := int64(0)
			for i, b := range h.Bounds {
				cum += h.Buckets[i]
				le := escapeLabel(fmt.Sprintf("%d", b))
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.Count)
			return err
		}})
	}
	sort.SliceStable(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if err := f.emit(w); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeName maps a metric name into the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every invalid rune with '_'.
func sanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// jsonHistogram is the /metrics?format=json histogram shape.
type jsonHistogram struct {
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
}

// jsonSnapshot is the /metrics?format=json document. Map keys are sorted by
// the encoder, so the document is deterministic.
type jsonSnapshot struct {
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]int64         `json:"gauges,omitempty"`
	Histograms map[string]jsonHistogram `json:"histograms,omitempty"`
}

// WriteJSON renders the snapshot as one indented JSON document.
func WriteJSON(w io.Writer, s Snapshot) error {
	doc := jsonSnapshot{}
	if len(s.Counters) > 0 {
		doc.Counters = make(map[string]int64, len(s.Counters))
		for _, p := range s.Counters {
			doc.Counters[p.Name] = p.Value
		}
	}
	if len(s.Gauges) > 0 {
		doc.Gauges = make(map[string]int64, len(s.Gauges))
		for _, p := range s.Gauges {
			doc.Gauges[p.Name] = p.Value
		}
	}
	if len(s.Histograms) > 0 {
		doc.Histograms = make(map[string]jsonHistogram, len(s.Histograms))
		for _, h := range s.Histograms {
			doc.Histograms[h.Name] = jsonHistogram{
				Bounds: h.Bounds, Buckets: h.Buckets, Count: h.Count, Sum: h.Sum,
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
