package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Record is one JSONL snapshot of the metrics stream (-metrics FILE): the
// wall-clock offset since the heartbeat started, the cumulative metric
// values at that instant (flattened per Snapshot.Flat), and a Final marker
// on the closing record, which is always written and always cumulative.
type Record struct {
	// TMS is milliseconds since the heartbeat started.
	TMS float64 `json:"t_ms"`
	// Final marks the closing cumulative record written by Stop.
	Final bool `json:"final,omitempty"`
	// Label names the emitting tool/phase.
	Label string `json:"label,omitempty"`
	// Metrics are the cumulative values at this instant.
	Metrics map[string]int64 `json:"metrics"`
}

// ReadRecords parses a JSONL metrics stream (blank lines skipped).
func ReadRecords(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var out []Record
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("telemetry: record %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Ratio is a derived percentage on the human progress line:
// 100*Num/sum(Den), omitted while the denominator is zero.
type Ratio struct {
	Label string
	Num   string
	Den   []string
}

// View selects what the human progress line shows for one tool. Metric
// names refer to registry series; missing series render as absent, so a
// view can name metrics a given run never touches.
type View struct {
	// Progress is the counter that headlines the line with its value and
	// rate, and drives the ETA.
	Progress string
	// Target, when non-empty, names the metric capping Progress; a nonzero
	// target yields an ETA estimate from the cumulative rate.
	Target string
	// Show lists extra metrics rendered as name=value (+rate/s).
	Show []string
	// Ratios are derived percentages (hit rates, prune rates, ...).
	Ratios []Ratio
	// UtilBusy/UtilWorkers, when both set, render worker utilization:
	// the delta of the UtilBusy nanosecond counter over wall time times the
	// UtilWorkers gauge.
	UtilBusy    string
	UtilWorkers string
}

// HeartbeatConfig parameterizes StartHeartbeat.
type HeartbeatConfig struct {
	// Registry is the metrics source (required).
	Registry *Registry
	// Interval is the tick period (required, > 0).
	Interval time.Duration
	// Out receives human progress lines; nil disables them.
	Out io.Writer
	// Metrics receives the JSONL stream; nil disables it. The writer is
	// used from the heartbeat goroutine and from Stop, never concurrently.
	Metrics io.Writer
	// Label prefixes human lines and stamps JSONL records.
	Label string
	// View selects the human-line contents.
	View View
}

// Heartbeat periodically snapshots a registry, rendering human progress
// lines and appending JSONL records. Start emits one baseline record, every
// tick emits one, and Stop emits the final cumulative record, so a stream
// always holds at least two snapshots bracketing the instrumented work.
type Heartbeat struct {
	cfg    HeartbeatConfig
	start  time.Time
	ticker *time.Ticker
	stop   chan struct{}
	wg     sync.WaitGroup

	// prev* hold the previous emission, for rate deltas (heartbeat
	// goroutine and Stop only, serialized by the stop channel).
	prevAt   time.Duration
	prevFlat map[string]int64

	stopOnce sync.Once
}

// StartHeartbeat begins emitting. It returns nil when the config has no
// registry or no sink, so callers can unconditionally Stop the result.
func StartHeartbeat(cfg HeartbeatConfig) *Heartbeat {
	if cfg.Registry == nil || (cfg.Out == nil && cfg.Metrics == nil) {
		return nil
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	h := &Heartbeat{
		cfg:   cfg,
		start: time.Now(),
		stop:  make(chan struct{}),
	}
	// Baseline record: the stream starts with the pre-work state.
	h.emitJSONL(h.cfg.Registry.Snapshot(), 0, false)
	h.prevAt = 0
	h.prevFlat = h.cfg.Registry.Snapshot().Flat()
	h.ticker = time.NewTicker(cfg.Interval)
	h.wg.Add(1)
	go h.loop()
	return h
}

func (h *Heartbeat) loop() {
	defer h.wg.Done()
	for {
		select {
		case <-h.stop:
			return
		case <-h.ticker.C:
			h.tick(false)
		}
	}
}

// Stop halts the ticker and writes the final cumulative record (and final
// human line). Safe on a nil receiver and safe to call twice.
func (h *Heartbeat) Stop() {
	if h == nil {
		return
	}
	h.stopOnce.Do(func() {
		close(h.stop)
		h.wg.Wait()
		h.ticker.Stop()
		h.tick(true)
	})
}

// tick renders one snapshot. Called from the heartbeat goroutine and, after
// it has exited, from Stop — never concurrently.
func (h *Heartbeat) tick(final bool) {
	at := time.Since(h.start)
	snap := h.cfg.Registry.Snapshot()
	h.emitHuman(snap, at, final)
	h.emitJSONL(snap, at, final)
	h.prevAt = at
	h.prevFlat = snap.Flat()
}

func (h *Heartbeat) emitJSONL(snap Snapshot, at time.Duration, final bool) {
	if h.cfg.Metrics == nil {
		return
	}
	rec := Record{
		TMS:     float64(at.Microseconds()) / 1000,
		Final:   final,
		Label:   h.cfg.Label,
		Metrics: snap.Flat(),
	}
	blob, err := json.Marshal(rec)
	if err != nil {
		return
	}
	h.cfg.Metrics.Write(append(blob, '\n'))
}

func (h *Heartbeat) emitHuman(snap Snapshot, at time.Duration, final bool) {
	if h.cfg.Out == nil {
		return
	}
	flat := snap.Flat()
	dt := (at - h.prevAt).Seconds()
	var b strings.Builder
	if h.cfg.Label != "" {
		fmt.Fprintf(&b, "%s ", h.cfg.Label)
	}
	fmt.Fprintf(&b, "%.1fs", at.Seconds())
	if final {
		b.WriteString(" done")
	}
	v := h.cfg.View
	if cur, ok := flat[v.Progress]; ok {
		fmt.Fprintf(&b, " %s=%s", shortName(v.Progress), humanCount(cur))
		if !final && dt > 0 {
			fmt.Fprintf(&b, " (+%s/s)", humanCount(rate(cur, h.prevFlat[v.Progress], dt)))
		}
	}
	for _, name := range v.Show {
		cur, ok := flat[name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, " %s=%s", shortName(name), humanCount(cur))
		if !final && dt > 0 {
			fmt.Fprintf(&b, " (+%s/s)", humanCount(rate(cur, h.prevFlat[name], dt)))
		}
	}
	for _, r := range v.Ratios {
		num, ok := flat[r.Num]
		if !ok {
			continue
		}
		den := int64(0)
		for _, d := range r.Den {
			den += flat[d]
		}
		if den > 0 {
			fmt.Fprintf(&b, " %s=%.1f%%", r.Label, 100*float64(num)/float64(den))
		}
	}
	if v.UtilBusy != "" && v.UtilWorkers != "" && !final && dt > 0 {
		if workers := flat[v.UtilWorkers]; workers > 0 {
			busy := float64(flat[v.UtilBusy]-h.prevFlat[v.UtilBusy]) / float64(time.Second)
			fmt.Fprintf(&b, " util=%.0f%%", 100*busy/(dt*float64(workers)))
		}
	}
	if !final && v.Target != "" {
		if target, ok := flat[v.Target]; ok && target > 0 {
			cur := flat[v.Progress]
			fmt.Fprintf(&b, " %.1f%% of %s", 100*float64(cur)/float64(target), humanCount(target))
			if cur > 0 && cur < target && at > 0 {
				perSec := float64(cur) / at.Seconds()
				eta := time.Duration(float64(target-cur) / perSec * float64(time.Second))
				fmt.Fprintf(&b, " eta=%s", eta.Round(time.Second))
			}
		}
	}
	fmt.Fprintln(h.cfg.Out, b.String())
}

func rate(cur, prev int64, dt float64) int64 {
	if cur <= prev {
		return 0
	}
	return int64(float64(cur-prev) / dt)
}

// shortName trims the subsystem prefix for the human line (the JSONL stream
// keeps full names).
func shortName(name string) string {
	if i := strings.IndexByte(name, '_'); i >= 0 && i+1 < len(name) {
		return name[i+1:]
	}
	return name
}

// humanCount renders a count compactly (1234 -> 1.2k, 2500000 -> 2.5M).
func humanCount(v int64) string {
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.1fG", float64(v)/1e9)
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}
