package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds the fixture registry behind the Prometheus golden
// file: every metric kind, names needing sanitization, and interleaved
// sort order across kinds.
func goldenRegistry() *Registry {
	r := New()
	r.Counter("check_states_visited").Add(2013)
	r.Counter("zz_last").Add(1)
	r.Gauge("check_frontier_depth").Set(17)
	r.Gauge("bad-name.with/chars").Set(3)
	h := r.Histogram("check_restore_replay_len", []int64{1, 8, 64})
	for _, v := range []int64{0, 1, 5, 9, 100, 7} {
		h.Observe(v)
	}
	return r
}

// TestPrometheusGolden locks the text exposition format — stable ordering
// across metric kinds, cumulative buckets, sanitized names — against a
// committed golden file, so /metrics output is diff-able across PRs.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "snapshot.prom")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("prometheus exposition drifted from %s (run with -update to accept):\n--- got ---\n%s\n--- want ---\n%s",
			path, buf.Bytes(), want)
	}
	// Rendering twice produces identical bytes.
	var again bytes.Buffer
	WritePrometheus(&again, goldenRegistry().Snapshot())
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("exposition is not deterministic")
	}
}

func TestSanitizeName(t *testing.T) {
	for in, want := range map[string]string{
		"ok_name:x":          "ok_name:x",
		"bad-name.with/char": "bad_name_with_char",
		"9leading":           "_leading",
		"":                   "_",
	} {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := escapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Fatalf("escapeLabel = %q", got)
	}
}

// TestWriteJSON: the JSON exposition decodes back to the same values and is
// byte-deterministic (map keys are sorted by the encoder).
func TestWriteJSON(t *testing.T) {
	var a, b bytes.Buffer
	snap := goldenRegistry().Snapshot()
	if err := WriteJSON(&a, snap); err != nil {
		t.Fatal(err)
	}
	WriteJSON(&b, snap)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("JSON exposition is not deterministic")
	}
	var doc struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count int64 `json:"count"`
			Sum   int64 `json:"sum"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Counters["check_states_visited"] != 2013 {
		t.Fatalf("counter lost in JSON: %v", doc.Counters)
	}
	if doc.Histograms["check_restore_replay_len"].Count != 6 {
		t.Fatalf("histogram lost in JSON: %v", doc.Histograms)
	}
}
