package telemetry

import (
	"sync"
	"testing"
)

// TestNilSafety: every handle chain off a nil registry must be a usable
// no-op — this is the zero-cost-when-disabled contract instrumented code
// relies on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []int64{1, 2})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil handles")
	}
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(1)
	g.Max(9)
	h.Observe(5)
	if c.Load() != 0 || g.Load() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var hb *Heartbeat
	hb.Stop() // must not panic
	var d *DebugServer
	if d.Addr() != "" || d.Close() != nil {
		t.Fatal("nil debug server methods misbehaved")
	}
}

// TestGetOrCreate: the same name always resolves to the same metric, so
// concurrent subsystems share series.
func TestGetOrCreate(t *testing.T) {
	r := New()
	a, b := r.Counter("n"), r.Counter("n")
	if a != b {
		t.Fatal("Counter(\"n\") returned distinct instances")
	}
	a.Add(2)
	if b.Load() != 2 {
		t.Fatalf("shared counter read %d, want 2", b.Load())
	}
	if r.Gauge("n") == nil || r.Gauge("n") != r.Gauge("n") {
		t.Fatal("gauge identity broken")
	}
}

func TestGaugeMax(t *testing.T) {
	g := New().Gauge("g")
	g.Max(5)
	g.Max(3)
	if g.Load() != 5 {
		t.Fatalf("Max regressed: %d", g.Load())
	}
	g.Max(9)
	if g.Load() != 9 {
		t.Fatalf("Max did not raise: %d", g.Load())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []int64{1, 4, 16})
	for _, v := range []int64{0, 1, 2, 4, 5, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("want 1 histogram, got %d", len(snap.Histograms))
	}
	hp := snap.Histograms[0]
	want := []int64{2, 2, 1, 1} // <=1: {0,1}; <=4: {2,4}; <=16: {5}; +Inf: {100}
	for i, w := range want {
		if hp.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, hp.Buckets[i], w, hp.Buckets)
		}
	}
	if hp.Count != 6 || hp.Sum != 112 {
		t.Fatalf("count/sum = %d/%d, want 6/112", hp.Count, hp.Sum)
	}
	flat := snap.Flat()
	if flat["lat_count"] != 6 || flat["lat_sum"] != 112 {
		t.Fatalf("flat histogram series wrong: %v", flat)
	}
}

// TestSnapshotSortedAndGet: snapshots are name-sorted per section (the
// determinism the exposition formats build on) and Get resolves every
// flattened series.
func TestSnapshotSortedAndGet(t *testing.T) {
	r := New()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("z").Set(26)
	r.Histogram("h", []int64{10}).Observe(3)
	s := r.Snapshot()
	if s.Counters[0].Name != "a" || s.Counters[1].Name != "b" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	for name, want := range map[string]int64{"a": 1, "b": 2, "z": 26, "h_count": 1, "h_sum": 3} {
		got, ok := s.Get(name)
		if !ok || got != want {
			t.Fatalf("Get(%q) = %d,%v want %d,true", name, got, ok, want)
		}
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get found a missing series")
	}
}

// TestConcurrentUse hammers one registry from many goroutines; run under
// -race this locks in the lock-free hot path.
func TestConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			h := r.Histogram("lens", []int64{8, 64})
			for j := 0; j < 1000; j++ {
				c.Inc()
				r.Gauge("depth").Set(int64(j))
				h.Observe(int64(j % 100))
				if j%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Load(); got != 8000 {
		t.Fatalf("hits = %d, want 8000", got)
	}
}

// TestExport pins the perf-ledger export contract: a nil registry exports
// nil (so a disabled-telemetry manifest omits the section entirely), and a
// live one exports the flattened final snapshot.
func TestExport(t *testing.T) {
	var nilReg *Registry
	if got := nilReg.Export(); got != nil {
		t.Fatalf("nil registry exported %v, want nil", got)
	}
	r := New()
	r.Counter("runs").Add(3)
	r.Histogram("lat", []int64{10}).Observe(7)
	got := r.Export()
	if got["runs"] != 3 || got["lat_count"] != 1 || got["lat_sum"] != 7 {
		t.Fatalf("export = %v", got)
	}
}
