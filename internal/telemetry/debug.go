package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// debugRegistry is the registry the expvar "rme_telemetry" variable reads;
// ServeDebug swaps it in. Expvar variables are process-global and cannot be
// unpublished, so the indirection lets tests (and successive servers) each
// see the live registry.
var debugRegistry atomic.Pointer[Registry]

var publishOnce sync.Once

// DebugServer is an opt-in HTTP server for live inspection of a running
// tool: /metrics (Prometheus text by default, JSON with ?format=json or an
// Accept: application/json header), /debug/vars (expvar), and /debug/pprof.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// ServeDebug starts a debug server on addr (host:port; port 0 picks a free
// one) over the given registry and returns once the listener is bound. The
// server runs until Close.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	debugRegistry.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("rme_telemetry", expvar.Func(func() interface{} {
			return debugRegistry.Load().Snapshot().Flat()
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := debugRegistry.Load().Snapshot()
		if wantJSON(r) {
			w.Header().Set("Content-Type", "application/json")
			WriteJSON(w, snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, snap)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	go d.srv.Serve(ln)
	return d, nil
}

func wantJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

// Addr returns the bound listen address (useful with port 0).
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Close shuts the server down. Safe on a nil receiver.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}
