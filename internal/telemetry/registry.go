// Package telemetry is the process-wide runtime metrics layer for the
// long-running tools: a low-overhead registry of atomic counters, gauges,
// and fixed-bucket histograms, a wall-clock heartbeat emitter that renders
// human progress lines and a machine-readable JSONL stream, and an opt-in
// HTTP debug server exposing /metrics (JSON and Prometheus text), expvar,
// and /debug/pprof.
//
// Telemetry is strictly off the result path. Instrumented code writes
// counters; nothing ever reads them back into a decision, so every
// byte-stability guarantee of the instrumented tools (-json stdout parity
// across -parallel values, byte-identical replay) holds with telemetry
// enabled. In the spirit of the sim observer funnel, every handle is
// nil-safe: a nil *Registry hands out nil *Counter/*Gauge/*Histogram whose
// methods are no-ops, so instrumentation costs one nil check when disabled.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic metric. The zero value is
// ready to use; a nil Counter ignores writes and reads as zero.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on a nil receiver).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value. The zero value is ready to use; a
// nil Gauge ignores writes and reads as zero.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d. No-op on a nil receiver.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Max raises the gauge to v if v is greater. No-op on a nil receiver.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value (0 on a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets with ascending upper
// bounds (an implicit +Inf bucket catches the rest). A nil Histogram ignores
// observations.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Registry is a named collection of metrics. Handles are get-or-create:
// asking twice for the same name returns the same metric, so concurrent
// subsystems share series. All methods are safe for concurrent use, and a
// nil Registry hands out nil handles.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending upper bounds on first use (later calls reuse the first bounds).
// A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{
			bounds:  append([]int64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Point is one scalar metric reading.
type Point struct {
	Name  string
	Value int64
}

// HistPoint is one histogram reading: per-bucket counts aligned with Bounds
// (the final count is the +Inf bucket), plus the observation count and sum.
type HistPoint struct {
	Name    string
	Bounds  []int64
	Buckets []int64
	Count   int64
	Sum     int64
}

// Snapshot is a point-in-time reading of a registry, each section sorted by
// name, so rendering a snapshot is deterministic.
type Snapshot struct {
	Counters   []Point
	Gauges     []Point
	Histograms []HistPoint
}

// Snapshot reads every metric. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, Point{Name: name, Value: c.Load()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, Point{Name: name, Value: g.Load()})
	}
	for name, h := range r.hists {
		hp := HistPoint{
			Name:   name,
			Bounds: h.bounds,
			Count:  h.count.Load(),
			Sum:    h.sum.Load(),
		}
		for i := range h.buckets {
			hp.Buckets = append(hp.Buckets, h.buckets[i].Load())
		}
		s.Histograms = append(s.Histograms, hp)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Flat folds the snapshot into one name→value map: counters and gauges as
// themselves, histograms as name_count and name_sum series. This is the
// shape of the JSONL stream (Go's JSON encoder sorts map keys, so encoding
// is deterministic).
func (s Snapshot) Flat() map[string]int64 {
	out := make(map[string]int64, len(s.Counters)+len(s.Gauges)+2*len(s.Histograms))
	for _, p := range s.Counters {
		out[p.Name] = p.Value
	}
	for _, p := range s.Gauges {
		out[p.Name] = p.Value
	}
	for _, h := range s.Histograms {
		out[h.Name+"_count"] = h.Count
		out[h.Name+"_sum"] = h.Sum
	}
	return out
}

// Export folds the registry's final state into the flat name→value map a
// perf-ledger manifest carries. A nil registry (telemetry disabled) exports
// nil, so the manifest's telemetry section is absent rather than empty — a
// run with telemetry off stays byte-identical to one that never had the
// ledger wired.
func (r *Registry) Export() map[string]int64 {
	if r == nil {
		return nil
	}
	return r.Snapshot().Flat()
}

// Get returns the named scalar from the snapshot (counters first, then
// gauges, then flattened histogram series).
func (s Snapshot) Get(name string) (int64, bool) {
	for _, p := range s.Counters {
		if p.Name == name {
			return p.Value, true
		}
	}
	for _, p := range s.Gauges {
		if p.Name == name {
			return p.Value, true
		}
	}
	for _, h := range s.Histograms {
		if h.Name+"_count" == name {
			return h.Count, true
		}
		if h.Name+"_sum" == name {
			return h.Sum, true
		}
	}
	return 0, false
}
