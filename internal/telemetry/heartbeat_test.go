package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer guards a bytes.Buffer: the heartbeat goroutine writes while
// tests read.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestHeartbeatStream: the JSONL stream brackets the work — a baseline
// record at start, a final cumulative record at Stop — with cumulative,
// monotone values in between.
func TestHeartbeatStream(t *testing.T) {
	reg := New()
	visited := reg.Counter("check_states_visited")
	var jsonl syncBuffer
	hb := StartHeartbeat(HeartbeatConfig{
		Registry: reg,
		Interval: time.Millisecond,
		Metrics:  &jsonl,
		Label:    "check",
	})
	for i := 0; i < 50; i++ {
		visited.Add(10)
		time.Sleep(500 * time.Microsecond)
	}
	hb.Stop()
	hb.Stop() // idempotent

	recs, err := ReadRecords(strings.NewReader(jsonl.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatalf("want >= 2 snapshots, got %d", len(recs))
	}
	if recs[0].Metrics["check_states_visited"] != 0 {
		t.Fatalf("baseline record not pre-work: %+v", recs[0])
	}
	last := recs[len(recs)-1]
	if !last.Final {
		t.Fatalf("last record not final: %+v", last)
	}
	if got := last.Metrics["check_states_visited"]; got != 500 {
		t.Fatalf("final cumulative value = %d, want 500", got)
	}
	if last.Label != "check" {
		t.Fatalf("label lost: %+v", last)
	}
	prev := int64(-1)
	prevT := -1.0
	for i, rec := range recs {
		if rec.Metrics["check_states_visited"] < prev || rec.TMS < prevT {
			t.Fatalf("record %d not monotone: %+v after %d/%.1f", i, rec, prev, prevT)
		}
		prev, prevT = rec.Metrics["check_states_visited"], rec.TMS
	}
}

// TestHeartbeatHumanLine: the stderr rendering shows progress with a rate,
// ratios, and the ETA against the target metric.
func TestHeartbeatHumanLine(t *testing.T) {
	reg := New()
	visited := reg.Counter("check_states_visited")
	pruned := reg.Counter("check_states_pruned")
	reg.Gauge("check_max_states").Set(100000)
	var out syncBuffer
	hb := StartHeartbeat(HeartbeatConfig{
		Registry: reg,
		Interval: 2 * time.Millisecond,
		Out:      &out,
		Label:    "check",
		View: View{
			Progress: "check_states_visited",
			Target:   "check_max_states",
			Ratios: []Ratio{{
				Label: "memo_hit",
				Num:   "check_states_pruned",
				Den:   []string{"check_states_visited", "check_states_pruned"},
			}},
		},
	})
	visited.Add(300)
	pruned.Add(100)
	time.Sleep(10 * time.Millisecond)
	visited.Add(300)
	hb.Stop()

	text := out.String()
	for _, want := range []string{"check ", "states_visited=", "memo_hit=", "% of 100.0k", "done"} {
		if !strings.Contains(text, want) {
			t.Fatalf("human output missing %q:\n%s", want, text)
		}
	}
}

// TestHeartbeatDisabled: no registry or no sink means no heartbeat, and the
// nil result is still stoppable.
func TestHeartbeatDisabled(t *testing.T) {
	if hb := StartHeartbeat(HeartbeatConfig{Interval: time.Millisecond, Metrics: &bytes.Buffer{}}); hb != nil {
		t.Fatal("heartbeat started without a registry")
	}
	if hb := StartHeartbeat(HeartbeatConfig{Registry: New(), Interval: time.Millisecond}); hb != nil {
		t.Fatal("heartbeat started without a sink")
	}
	StartHeartbeat(HeartbeatConfig{}).Stop()
}

func TestReadRecordsErrors(t *testing.T) {
	if _, err := ReadRecords(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("malformed record parsed")
	}
	recs, err := ReadRecords(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("blank stream: %v %v", recs, err)
	}
}

func TestHumanCount(t *testing.T) {
	for v, want := range map[int64]string{
		7:             "7",
		9999:          "9999",
		10_000:        "10.0k",
		2_500_000:     "2.5M",
		3_000_000_000: "3.0G",
	} {
		if got := humanCount(v); got != want {
			t.Errorf("humanCount(%d) = %q, want %q", v, got, want)
		}
	}
}
