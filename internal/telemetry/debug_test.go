package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string, header map[string]string) (int, string) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServeDebug exercises every endpoint of the opt-in debug server:
// /metrics in both formats, expvar, and the pprof index.
func TestServeDebug(t *testing.T) {
	reg := New()
	reg.Counter("check_states_visited").Add(41)
	reg.Histogram("check_restore_replay_len", []int64{8}).Observe(3)

	d, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	// Prometheus text by default; the counter moves between scrapes.
	code, body := get(t, base+"/metrics", nil)
	if code != http.StatusOK || !strings.Contains(body, "# TYPE check_states_visited counter") ||
		!strings.Contains(body, "check_states_visited 41") {
		t.Fatalf("prometheus /metrics: %d\n%s", code, body)
	}
	if !strings.Contains(body, `check_restore_replay_len_bucket{le="+Inf"} 1`) {
		t.Fatalf("histogram missing from exposition:\n%s", body)
	}
	reg.Counter("check_states_visited").Add(1)
	if _, body := get(t, base+"/metrics", nil); !strings.Contains(body, "check_states_visited 42") {
		t.Fatalf("scrape not live:\n%s", body)
	}

	// JSON via ?format=json and via Accept.
	for _, variant := range []struct {
		url    string
		header map[string]string
	}{
		{base + "/metrics?format=json", nil},
		{base + "/metrics", map[string]string{"Accept": "application/json"}},
	} {
		_, body := get(t, variant.url, variant.header)
		var doc struct {
			Counters map[string]int64 `json:"counters"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("JSON /metrics (%s): %v\n%s", variant.url, err, body)
		}
		if doc.Counters["check_states_visited"] != 42 {
			t.Fatalf("JSON /metrics wrong counters: %s", body)
		}
	}

	// expvar: the standard page includes our published registry snapshot.
	code, body = get(t, base+"/debug/vars", nil)
	if code != http.StatusOK || !strings.Contains(body, "rme_telemetry") ||
		!strings.Contains(body, "check_states_visited") {
		t.Fatalf("expvar: %d\n%s", code, body)
	}

	// pprof index and a cheap profile endpoint.
	if code, body := get(t, base+"/debug/pprof/", nil); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: %d\n%s", code, body)
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline", nil); code != http.StatusOK {
		t.Fatalf("pprof cmdline: %d", code)
	}
}

// TestServeDebugRebind: a second server (fresh registry) must serve the new
// registry's values through the shared expvar publication.
func TestServeDebugRebind(t *testing.T) {
	first, err := ServeDebug("127.0.0.1:0", New())
	if err != nil {
		t.Fatal(err)
	}
	first.Close()

	reg := New()
	reg.Counter("adversary_rounds").Add(9)
	second, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	_, body := get(t, "http://"+second.Addr()+"/debug/vars", nil)
	if !strings.Contains(body, "adversary_rounds") {
		t.Fatalf("expvar not rebound to the live registry:\n%s", body)
	}
}

func TestServeDebugBadAddr(t *testing.T) {
	if _, err := ServeDebug("256.0.0.1:-1", New()); err == nil {
		t.Fatal("bad address accepted")
	}
}
