package service

// opNode is one queued lock request: which client asked, and the owning
// shard's clock when it arrived (for latency accounting in machine steps).
// Nodes live in a single slice arena and link through int32 indices, so a
// deep backlog costs 16 bytes per request and zero per-request allocations
// once the arena has grown to the high-water mark.
type opNode struct {
	client int32
	next   int32
	enq    int64
}

// nilNode is the arena's null index.
const nilNode int32 = -1

// opArena is a freelist-backed slab of opNodes.
type opArena struct {
	nodes []opNode
	free  int32
}

func newOpArena() *opArena { return &opArena{free: nilNode} }

// alloc returns the index of a fresh node.
func (a *opArena) alloc(client int32, enq int64) int32 {
	if a.free != nilNode {
		n := a.free
		a.free = a.nodes[n].next
		a.nodes[n] = opNode{client: client, next: nilNode, enq: enq}
		return n
	}
	a.nodes = append(a.nodes, opNode{client: client, next: nilNode, enq: enq})
	return int32(len(a.nodes) - 1)
}

// release returns a node to the freelist.
func (a *opArena) release(n int32) {
	a.nodes[n].next = a.free
	a.free = n
}

// shardState is the controller-side record of one lock shard: its FIFO
// request queue (arena indices), its private machine-step clock, and its
// accumulated results.
type shardState struct {
	head, tail int32
	qlen       int

	clock    int64 // machine steps executed by this shard's lock so far
	passages int64
	steps    int64
	rmrCC    int64
	rmrDSM   int64
}

// push appends a request to the shard's queue.
func (s *shardState) push(a *opArena, n int32) {
	if s.tail == nilNode {
		s.head, s.tail = n, n
	} else {
		a.nodes[s.tail].next = n
		s.tail = n
	}
	s.qlen++
}

// popInto removes up to cap(buf[:want]) requests in FIFO order into buf.
func (s *shardState) popInto(a *opArena, buf []int32, want int) []int32 {
	for len(buf) < want && s.head != nilNode {
		n := s.head
		s.head = a.nodes[n].next
		if s.head == nilNode {
			s.tail = nilNode
		}
		s.qlen--
		buf = append(buf, n)
	}
	return buf
}
