package service

import (
	"fmt"
	"math"
	"sort"

	"rme/internal/engine"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/telemetry"
	"rme/internal/trace"
	"rme/internal/word"
)

// Config describes one lock-service run.
type Config struct {
	// Locks is the number of shards M; each shard is one lock instance.
	Locks int
	// Clients is the keyspace size: client ids are [0, Clients). Clients are
	// 4-byte records, so millions are cheap.
	Clients int
	// Passages is the target number of completed passages; the run stops at
	// the end of the round that reaches it.
	Passages int64
	// Dist is the arrival distribution (see ParseDist).
	Dist Dist
	// Seed drives the arrival stream; everything else is deterministic.
	Seed int64
	// Algorithm is the lock implementation every shard runs.
	Algorithm mutex.Algorithm
	// Width is the machine word size (default 8).
	Width word.Width
	// Model selects CC or DSM RMR accounting.
	Model sim.Model
	// Slots is the per-shard batch width: at most Slots queued requests
	// become processes of one sim run per round (default 8).
	Slots int
	// Rate is the arrival budget per round (default 2·Locks·Slots, slight
	// oversubscription so batches stay full).
	Rate int
	// MaxOutstanding caps queued requests across all shards; arrivals beyond
	// it are deferred, modelling admission backpressure (default 4·Rate).
	MaxOutstanding int
	// Parallel is the engine worker count (0 = GOMAXPROCS). The Report is
	// byte-identical at any value.
	Parallel int
	// Telemetry, when non-nil, receives live counters/gauges (service_* and
	// the engine_* family). Strictly observational.
	Telemetry *telemetry.Registry
	// TopCells, when > 0, turns on step-trace capture and reports the N
	// hottest cells by attributed RMRs. Costly: every run's event stream is
	// retained and folded, so use it on small workloads.
	TopCells int
}

func (c Config) withDefaults() Config {
	if c.Width == 0 {
		c.Width = 8
	}
	if c.Slots == 0 {
		c.Slots = 8
	}
	if c.Rate == 0 {
		c.Rate = 2 * c.Locks * c.Slots
	}
	if c.MaxOutstanding == 0 {
		c.MaxOutstanding = 4 * c.Rate
	}
	return c
}

func (c Config) validate() error {
	if c.Locks < 1 {
		return fmt.Errorf("service: need at least 1 lock (got %d)", c.Locks)
	}
	if c.Clients < 1 {
		return fmt.Errorf("service: need at least 1 client (got %d)", c.Clients)
	}
	if c.Passages < 1 {
		return fmt.Errorf("service: need a positive passage target (got %d)", c.Passages)
	}
	if c.Algorithm == nil {
		return fmt.Errorf("service: no algorithm")
	}
	if c.Slots < 1 || c.Rate < 1 || c.MaxOutstanding < 1 {
		return fmt.Errorf("service: Slots, Rate, MaxOutstanding must be positive")
	}
	return nil
}

// LatencyStats summarizes request latencies in machine steps: from arrival
// at the shard queue to (interpolated) critical-section completion.
type LatencyStats struct {
	Min int64 `json:"min"`
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
}

// FairnessStats summarizes the per-client passage-count spread over clients
// that completed at least one passage.
type FairnessStats struct {
	// ClientsServed counts distinct clients with ≥ 1 completed passage.
	ClientsServed int `json:"clients_served"`
	// Min/P50/P99/Max are quantiles of passages-per-served-client.
	Min int64 `json:"min"`
	P50 int64 `json:"p50"`
	P99 int64 `json:"p99"`
	Max int64 `json:"max"`
	// JainIndex is Jain's fairness index over served clients: 1.0 when all
	// served clients completed equally many passages, → 1/k under maximal
	// skew. Rounded to 4 decimals.
	JainIndex float64 `json:"jain_index"`
}

// ShardStat is one shard's accumulated results.
type ShardStat struct {
	Shard    int   `json:"shard"`
	Passages int64 `json:"passages"`
	Steps    int64 `json:"steps"`
	RMRCC    int64 `json:"rmr_cc"`
	RMRDSM   int64 `json:"rmr_dsm"`
	// Pending is the queue depth left when the run stopped.
	Pending int `json:"pending,omitempty"`
}

// Report is the deterministic outcome of a Run: every field derives from
// the seed and configuration, never from wall time, so encoding it is
// byte-identical at any -parallel.
type Report struct {
	Locks          int    `json:"locks"`
	Clients        int    `json:"clients"`
	Dist           string `json:"dist"`
	Seed           int64  `json:"seed"`
	Algorithm      string `json:"algorithm"`
	Model          string `json:"model"`
	Width          int    `json:"width"`
	Slots          int    `json:"slots"`
	Rate           int    `json:"rate"`
	TargetPassages int64  `json:"target_passages"`

	// Passages is the number completed (≥ TargetPassages); Pending is the
	// backlog left queued when the target was reached.
	Passages int64 `json:"passages"`
	Arrivals int64 `json:"arrivals"`
	Pending  int64 `json:"pending"`
	Rounds   int64 `json:"rounds"`
	// Steps sums machine steps across all shards; PassagesPerMSteps is the
	// machine-time throughput (passages per million steps) — the
	// deterministic analogue of passages/sec, which depends on the host and
	// goes to stderr instead.
	Steps             int64   `json:"steps"`
	PassagesPerMSteps float64 `json:"passages_per_1m_steps"`

	Latency  LatencyStats  `json:"latency_steps"`
	Fairness FairnessStats `json:"fairness"`

	// RMRCC/RMRDSM aggregate remote memory references across all shards
	// under both models; the per-passage averages divide by Passages.
	RMRCC            int64   `json:"rmr_cc"`
	RMRDSM           int64   `json:"rmr_dsm"`
	RMRPerPassageCC  float64 `json:"rmr_per_passage_cc"`
	RMRPerPassageDSM float64 `json:"rmr_per_passage_dsm"`

	Shards []ShardStat `json:"shards"`
	// TopCells is the hottest-cell attribution table (Config.TopCells > 0).
	TopCells []trace.CellStat `json:"top_cells,omitempty"`
}

// collectOrder is the engine Collect hook: the CS grant order is the only
// payload the service needs back from a run.
func collectOrder(s *mutex.Session) (interface{}, error) { return s.CSOrder(), nil }

// latencyBounds buckets the service_latency_steps histogram.
var latencyBounds = []int64{32, 64, 128, 256, 512, 1024, 4096, 16384, 65536}

// Run drives the lock service to its passage target and returns the report.
//
// Each round: (1) up to Rate arrivals are drawn from the stream and pushed
// onto their shards' queues (admission-capped at MaxOutstanding
// outstanding); (2) every non-empty shard contributes one RunSpec of
// min(Slots, queue) processes, submitted in shard order to a persistent
// engine pool; (3) results fold back in submission order — shard clocks
// advance by the run's step count, each granted request's latency is its
// queue wait plus its interpolated completion within the batch, and
// fairness/RMR tallies update. The loop exits at the end of the round that
// reaches the passage target.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	stream, err := NewStream(cfg.Dist, cfg.Clients, cfg.Seed)
	if err != nil {
		return nil, err
	}

	pool := engine.NewPool(cfg.Parallel)
	defer pool.Close()

	arena := newOpArena()
	shards := make([]shardState, cfg.Locks)
	for i := range shards {
		shards[i].head, shards[i].tail = nilNode, nilNode
	}
	served := make([]int32, cfg.Clients)
	var latencies []int64

	// Telemetry handles (all nil-safe when cfg.Telemetry is nil).
	tPassages := cfg.Telemetry.Counter("service_passages")
	tArrivals := cfg.Telemetry.Counter("service_arrivals")
	tRounds := cfg.Telemetry.Counter("service_rounds")
	tOutstanding := cfg.Telemetry.Gauge("service_outstanding")
	tTarget := cfg.Telemetry.Gauge("service_target_passages")
	tLatency := cfg.Telemetry.Histogram("service_latency_steps", latencyBounds)
	tTarget.Set(cfg.Passages)

	// Per-round scratch, reused across rounds.
	var (
		specs       []engine.RunSpec
		batchShards []int
		batchOps    [][]int32
		opsBacking  [][]int32 // len cfg.Locks, recycled batch slices
	)
	opsBacking = make([][]int32, cfg.Locks)

	topCells := map[string]*trace.CellStat{}

	var (
		passages    int64
		arrivals    int64
		rounds      int64
		outstanding int
		totalSteps  int64
		rmrCC       int64
		rmrDSM      int64
	)

	baseCfg := mutex.Config{
		Width:     cfg.Width,
		Model:     cfg.Model,
		Algorithm: cfg.Algorithm,
		Passes:    1,
		NoTrace:   true,
	}

	for passages < cfg.Passages {
		rounds++
		tRounds.Inc()

		// (1) Arrivals, admission-capped.
		gen := cfg.Rate
		if room := cfg.MaxOutstanding - outstanding; gen > room {
			gen = room
		}
		for i := 0; i < gen; i++ {
			c := stream.Next()
			sh := ShardOf(c, cfg.Locks)
			n := arena.alloc(int32(c), shards[sh].clock)
			shards[sh].push(arena, n)
			outstanding++
			arrivals++
		}
		tArrivals.Add(int64(gen))
		tOutstanding.Set(int64(outstanding))

		// (2) One spec per non-empty shard, in shard order.
		specs = specs[:0]
		batchShards = batchShards[:0]
		batchOps = batchOps[:0]
		for si := range shards {
			if shards[si].qlen == 0 {
				continue
			}
			b := cfg.Slots
			if shards[si].qlen < b {
				b = shards[si].qlen
			}
			buf := opsBacking[si][:0]
			buf = shards[si].popInto(arena, buf, b)
			opsBacking[si] = buf
			sc := baseCfg
			sc.Procs = len(buf)
			specs = append(specs, engine.RunSpec{
				Session: sc,
				Label:   fmt.Sprintf("shard%d", si),
				Collect: collectOrder,
			})
			batchShards = append(batchShards, si)
			batchOps = append(batchOps, buf)
		}
		if len(specs) == 0 {
			return nil, fmt.Errorf("service: stalled with no arrivals and no backlog after %d passages", passages)
		}

		opts := engine.Options{Parallel: cfg.Parallel, Telemetry: cfg.Telemetry}
		var tc *trace.Capture
		if cfg.TopCells > 0 {
			tc = &trace.Capture{}
			opts.Trace = tc
		}
		res := pool.Run(specs, opts)

		// (3) Fold results in submission order.
		for k := range res {
			r := &res[k]
			si := batchShards[k]
			sh := &shards[si]
			if r.Err != nil {
				return nil, fmt.Errorf("service: shard %d round %d: %w", si, rounds, r.Err)
			}
			if len(r.Violations) > 0 {
				return nil, fmt.Errorf("service: shard %d round %d: safety violation: %s", si, rounds, r.Violations[0])
			}
			ops := batchOps[k]
			order, ok := r.Payload.([]int)
			if !ok || len(order) != len(ops) {
				return nil, fmt.Errorf("service: shard %d round %d: incomplete CS order (%d of %d)", si, rounds, len(order), len(ops))
			}
			b := int64(len(ops))
			steps := int64(r.Steps)
			for rank, p := range order {
				node := ops[p]
				// The batch's b requests complete spread across its steps;
				// request at grant rank r finishes at ⌈steps·(r+1)/b⌉ into
				// the run. Latency = queue wait + that completion offset.
				fin := sh.clock + (steps*int64(rank+1)+b-1)/b
				lat := fin - arena.nodes[node].enq
				latencies = append(latencies, lat)
				tLatency.Observe(lat)
				served[arena.nodes[node].client]++
				arena.release(node)
				sh.passages++
				passages++
			}
			tPassages.Add(b)
			outstanding -= len(ops)
			sh.clock += steps
			sh.steps += steps
			totalSteps += steps
			sh.rmrCC += int64(r.TotalRMRCC)
			sh.rmrDSM += int64(r.TotalRMRDSM)
			rmrCC += int64(r.TotalRMRCC)
			rmrDSM += int64(r.TotalRMRDSM)
		}
		tOutstanding.Set(int64(outstanding))

		if tc != nil {
			foldCells(topCells, trace.Merge(tc.Runs()))
		}
	}

	rep := &Report{
		Locks:          cfg.Locks,
		Clients:        cfg.Clients,
		Dist:           cfg.Dist.String(),
		Seed:           cfg.Seed,
		Algorithm:      cfg.Algorithm.Name(),
		Model:          cfg.Model.String(),
		Width:          int(cfg.Width),
		Slots:          cfg.Slots,
		Rate:           cfg.Rate,
		TargetPassages: cfg.Passages,
		Passages:       passages,
		Arrivals:       arrivals,
		Pending:        int64(outstanding),
		Rounds:         rounds,
		Steps:          totalSteps,
		RMRCC:          rmrCC,
		RMRDSM:         rmrDSM,
	}
	if totalSteps > 0 {
		rep.PassagesPerMSteps = round2(float64(passages) / float64(totalSteps) * 1e6)
	}
	if passages > 0 {
		rep.RMRPerPassageCC = round2(float64(rmrCC) / float64(passages))
		rep.RMRPerPassageDSM = round2(float64(rmrDSM) / float64(passages))
	}
	rep.Latency = latencyStats(latencies)
	rep.Fairness = fairnessStats(served)
	rep.Shards = make([]ShardStat, cfg.Locks)
	for i := range shards {
		rep.Shards[i] = ShardStat{
			Shard:    i,
			Passages: shards[i].passages,
			Steps:    shards[i].steps,
			RMRCC:    shards[i].rmrCC,
			RMRDSM:   shards[i].rmrDSM,
			Pending:  shards[i].qlen,
		}
	}
	if cfg.TopCells > 0 {
		rep.TopCells = topN(topCells, cfg.TopCells)
	}
	return rep, nil
}

// foldCells accumulates one round's merged attribution into the cross-round
// per-label cell table.
func foldCells(acc map[string]*trace.CellStat, a trace.Attribution) {
	for _, c := range a.Cells {
		t, ok := acc[c.Label]
		if !ok {
			cc := c
			acc[c.Label] = &cc
			continue
		}
		if c.Cell < t.Cell {
			t.Cell = c.Cell
		}
		t.Steps += c.Steps
		t.Wakes += c.Wakes
		t.RMRCC += c.RMRCC
		t.RMRDSM += c.RMRDSM
	}
}

// topN renders the n hottest cells (by combined RMRs, label-tiebroken).
func topN(acc map[string]*trace.CellStat, n int) []trace.CellStat {
	out := make([]trace.CellStat, 0, len(acc))
	for _, c := range acc {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := out[i].RMRCC+out[i].RMRDSM, out[j].RMRCC+out[j].RMRDSM
		if ti != tj {
			return ti > tj
		}
		return out[i].Label < out[j].Label
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// latencyStats sorts in place and reads nearest-rank percentiles.
func latencyStats(lat []int64) LatencyStats {
	if len(lat) == 0 {
		return LatencyStats{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return LatencyStats{
		Min: lat[0],
		P50: percentile(lat, 50),
		P90: percentile(lat, 90),
		P99: percentile(lat, 99),
		Max: lat[len(lat)-1],
	}
}

// fairnessStats summarizes the passage spread over served clients.
func fairnessStats(served []int32) FairnessStats {
	counts := make([]int64, 0, 1024)
	for _, s := range served {
		if s > 0 {
			counts = append(counts, int64(s))
		}
	}
	if len(counts) == 0 {
		return FairnessStats{}
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] < counts[j] })
	var sum, sumSq float64
	for _, c := range counts {
		f := float64(c)
		sum += f
		sumSq += f * f
	}
	jain := sum * sum / (float64(len(counts)) * sumSq)
	return FairnessStats{
		ClientsServed: len(counts),
		Min:           counts[0],
		P50:           percentile(counts, 50),
		P99:           percentile(counts, 99),
		Max:           counts[len(counts)-1],
		JainIndex:     math.Round(jain*1e4) / 1e4,
	}
}

// percentile is the nearest-rank p-th percentile of an ascending slice.
func percentile(sorted []int64, p int) int64 {
	i := (len(sorted)*p + 99) / 100
	if i > 0 {
		i--
	}
	return sorted[i]
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }
