package service

import (
	"testing"
)

func drawN(t *testing.T, d Dist, clients int, seed int64, n int) []int {
	t.Helper()
	s, err := NewStream(d, clients, seed)
	if err != nil {
		t.Fatalf("NewStream(%v): %v", d, err)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = s.Next()
		if out[i] < 0 || out[i] >= clients {
			t.Fatalf("draw %d out of range [0,%d): %d", i, clients, out[i])
		}
	}
	return out
}

// TestStreamSeededDeterminism locks in the generator contract every
// downstream byte-parity guarantee rests on: same seed ⇒ identical stream,
// for every distribution family.
func TestStreamSeededDeterminism(t *testing.T) {
	dists := []Dist{
		{Kind: Uniform},
		{Kind: Zipf, Theta: 1.1},
		{Kind: Zipf, Theta: 2.0},
		{Kind: Bursty, Frac: 0.1},
		{Kind: Bursty, Frac: 1.0},
	}
	for _, d := range dists {
		t.Run(d.String(), func(t *testing.T) {
			const clients, n = 5000, 20000
			a := drawN(t, d, clients, 42, n)
			b := drawN(t, d, clients, 42, n)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("same seed diverged at draw %d: %d vs %d", i, a[i], b[i])
				}
			}
			c := drawN(t, d, clients, 43, n)
			same := 0
			for i := range a {
				if a[i] == c[i] {
					same++
				}
			}
			if same == n {
				t.Fatalf("seeds 42 and 43 produced identical %d-draw streams", n)
			}
		})
	}
}

// TestZipfSkew sanity-checks the empirical shape: low ids must dominate far
// beyond their uniform share, and heavier theta must concentrate harder.
func TestZipfSkew(t *testing.T) {
	const clients, n = 10000, 100000
	headShare := func(theta float64) float64 {
		draws := drawN(t, Dist{Kind: Zipf, Theta: theta}, clients, 7, n)
		head := 0
		for _, v := range draws {
			if v < 10 {
				head++
			}
		}
		return float64(head) / n
	}
	light := headShare(1.1)
	heavy := headShare(2.0)
	// Uniform would put 10/10000 = 0.1% of mass on the head; even the
	// lightest supported skew concentrates orders of magnitude more.
	if light < 0.10 {
		t.Fatalf("zipf(1.1) head share %.4f; want >= 0.10 (uniform would be 0.001)", light)
	}
	if heavy <= light {
		t.Fatalf("zipf(2.0) head share %.4f not above zipf(1.1) %.4f", heavy, light)
	}
}

// TestBurstyWindow checks the on/off shape: within one burst period all
// draws fall in a window of the configured size.
func TestBurstyWindow(t *testing.T) {
	const clients = 100000
	d := Dist{Kind: Bursty, Frac: 0.01}
	draws := drawN(t, d, clients, 11, burstPeriod)
	seen := map[int]bool{}
	for _, v := range draws {
		seen[v] = true
	}
	size := int(0.01 * clients)
	if len(seen) > size {
		t.Fatalf("one burst window touched %d distinct clients; active set is only %d", len(seen), size)
	}
}

func TestParseDist(t *testing.T) {
	cases := []struct {
		in   string
		want Dist
		ok   bool
	}{
		{"uniform", Dist{Kind: Uniform}, true},
		{"", Dist{Kind: Uniform}, true},
		{"zipf", Dist{Kind: Zipf, Theta: 1.1}, true},
		{"zipf:1.5", Dist{Kind: Zipf, Theta: 1.5}, true},
		{"ZIPF:2", Dist{Kind: Zipf, Theta: 2}, true},
		{"bursty", Dist{Kind: Bursty, Frac: 0.1}, true},
		{"bursty:0.25", Dist{Kind: Bursty, Frac: 0.25}, true},
		{"zipf:1.0", Dist{}, false},
		{"zipf:bad", Dist{}, false},
		{"bursty:0", Dist{}, false},
		{"bursty:1.5", Dist{}, false},
		{"uniform:3", Dist{}, false},
		{"pareto", Dist{}, false},
	}
	for _, c := range cases {
		got, err := ParseDist(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseDist(%q) err=%v; want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseDist(%q) = %+v; want %+v", c.in, got, c.want)
		}
	}
}

// TestShardOf checks range and rough balance of the keyspace hash.
func TestShardOf(t *testing.T) {
	const locks, clients = 16, 100000
	counts := make([]int, locks)
	for c := 0; c < clients; c++ {
		sh := ShardOf(c, locks)
		if sh < 0 || sh >= locks {
			t.Fatalf("ShardOf(%d, %d) = %d out of range", c, locks, sh)
		}
		counts[sh]++
	}
	want := clients / locks
	for sh, n := range counts {
		if n < want/2 || n > want*2 {
			t.Fatalf("shard %d holds %d of %d clients; want near %d", sh, n, clients, want)
		}
	}
	if ShardOf(12345, locks) != ShardOf(12345, locks) {
		t.Fatal("ShardOf not stable")
	}
}
