package service

import (
	"reflect"
	"testing"

	"rme"
	"rme/internal/sim"
	"rme/internal/telemetry"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Locks:     8,
		Clients:   5000,
		Passages:  1500,
		Dist:      Dist{Kind: Zipf, Theta: 1.2},
		Seed:      9,
		Algorithm: rme.MustAlgorithm("watree"),
		Model:     sim.CC,
	}
}

// TestRunInvariants drives a small skewed service and checks the report's
// internal consistency: totals match their per-shard decomposition, every
// arrival is accounted for, and the summary statistics are populated.
func TestRunInvariants(t *testing.T) {
	cfg := testConfig(t)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passages < cfg.Passages {
		t.Fatalf("completed %d passages; target %d", rep.Passages, cfg.Passages)
	}
	if rep.Arrivals != rep.Passages+rep.Pending {
		t.Fatalf("arrivals %d != passages %d + pending %d", rep.Arrivals, rep.Passages, rep.Pending)
	}
	var shardPassages, shardSteps, shardCC, shardDSM, shardPending int64
	for _, s := range rep.Shards {
		shardPassages += s.Passages
		shardSteps += s.Steps
		shardCC += s.RMRCC
		shardDSM += s.RMRDSM
		shardPending += int64(s.Pending)
	}
	if shardPassages != rep.Passages || shardSteps != rep.Steps {
		t.Fatalf("shard decomposition (%d passages, %d steps) != totals (%d, %d)",
			shardPassages, shardSteps, rep.Passages, rep.Steps)
	}
	if shardCC != rep.RMRCC || shardDSM != rep.RMRDSM {
		t.Fatalf("shard RMRs (%d/%d) != totals (%d/%d)", shardCC, shardDSM, rep.RMRCC, rep.RMRDSM)
	}
	if shardPending != rep.Pending {
		t.Fatalf("shard pending %d != total pending %d", shardPending, rep.Pending)
	}
	if rep.Latency.Max < rep.Latency.P99 || rep.Latency.P99 < rep.Latency.P50 || rep.Latency.P50 < rep.Latency.Min {
		t.Fatalf("latency quantiles out of order: %+v", rep.Latency)
	}
	if rep.Latency.Min <= 0 {
		t.Fatalf("latency min %d; every passage costs at least one step", rep.Latency.Min)
	}
	if rep.Fairness.ClientsServed <= 0 || rep.Fairness.JainIndex <= 0 || rep.Fairness.JainIndex > 1 {
		t.Fatalf("implausible fairness: %+v", rep.Fairness)
	}
	if rep.RMRCC <= 0 || rep.PassagesPerMSteps <= 0 {
		t.Fatalf("missing RMR/throughput totals: rmr_cc=%d thpt=%v", rep.RMRCC, rep.PassagesPerMSteps)
	}
}

// TestRunDeterministicAcrossParallelism is the service-level half of the
// byte-parity guarantee: the whole Report must be identical at any worker
// count (the CLI test covers the encoded form).
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	cfg := testConfig(t)
	cfg.Parallel = 1
	one, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 4
	four, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, four) {
		t.Fatalf("report differs between Parallel=1 and 4:\n%+v\nvs\n%+v", one, four)
	}
}

// TestRunSkewConcentrates checks that Zipf traffic actually lands unevenly.
// Shard passage counts flatten under load (a saturated shard serves at most
// Slots per round regardless of backlog), so the skew must show where it
// really lives: hot clients complete far more passages than the median
// client, and the busiest shard still out-serves the quietest.
func TestRunSkewConcentrates(t *testing.T) {
	cfg := testConfig(t)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fairness.Max < 10*rep.Fairness.P50 {
		t.Fatalf("zipf(1.2) per-client spread looks uniform: p50 %d max %d",
			rep.Fairness.P50, rep.Fairness.Max)
	}
	min, max := rep.Shards[0].Passages, rep.Shards[0].Passages
	for _, s := range rep.Shards[1:] {
		if s.Passages < min {
			min = s.Passages
		}
		if s.Passages > max {
			max = s.Passages
		}
	}
	if max <= min {
		t.Fatalf("zipf(1.2) shard load perfectly level: min %d max %d", min, max)
	}
}

// TestRunTopCells exercises the attribution path end to end.
func TestRunTopCells(t *testing.T) {
	cfg := testConfig(t)
	cfg.Passages = 200
	cfg.TopCells = 3
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TopCells) == 0 || len(rep.TopCells) > 3 {
		t.Fatalf("want 1..3 top cells, got %d", len(rep.TopCells))
	}
	if rep.TopCells[0].RMRCC+rep.TopCells[0].RMRDSM == 0 {
		t.Fatalf("top cell has no attributed RMRs: %+v", rep.TopCells[0])
	}
}

// TestRunTelemetryObservational runs with a live registry and checks both
// that the counters move and that instrumenting changes nothing in the
// report.
func TestRunTelemetryObservational(t *testing.T) {
	cfg := testConfig(t)
	bare, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	cfg.Telemetry = reg
	instr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, instr) {
		t.Fatal("telemetry changed the report")
	}
	snap := reg.Snapshot()
	found := map[string]int64{}
	for _, c := range snap.Counters {
		found[c.Name] = c.Value
	}
	if found["service_passages"] != bare.Passages {
		t.Fatalf("service_passages=%d; want %d", found["service_passages"], bare.Passages)
	}
	if found["service_rounds"] != bare.Rounds {
		t.Fatalf("service_rounds=%d; want %d", found["service_rounds"], bare.Rounds)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Locks: 1, Clients: 1, Passages: 1}, // no algorithm
		{Locks: 0, Clients: 1, Passages: 1, Algorithm: rme.MustAlgorithm("tas")},
		{Locks: 1, Clients: 0, Passages: 1, Algorithm: rme.MustAlgorithm("tas")},
		{Locks: 1, Clients: 1, Passages: 0, Algorithm: rme.MustAlgorithm("tas")},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}
