// Package service is the lock-service workload layer: M locks sharding a
// keyspace, driven by a seeded arrival stream over millions of simulated
// clients. Clients are lightweight records in arena storage — not
// goroutines — multiplexed onto per-shard sim machines run through the
// engine worker pool, so a laptop-scale box can push system-shaped traffic
// (skewed, bursty, heavily multiplexed) through the paper's algorithms and
// read back throughput, tail latency, fairness, and RMR cost.
//
// Everything downstream of the seed is deterministic: the arrival stream is
// generated single-threaded, shard batches are submitted in shard order, and
// the engine merges results in submission order, so a Report is
// byte-identical at any parallelism level.
package service

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// DistKind names an arrival distribution family.
type DistKind int

const (
	// Uniform arrivals: every client equally likely.
	Uniform DistKind = iota
	// Zipf arrivals: client k with probability ∝ 1/(1+k)^theta, theta > 1.
	// The regime where point contention, not n, governs cost.
	Zipf
	// Bursty on/off arrivals: only a contiguous fraction of the keyspace is
	// active at a time; the active window is re-drawn every burstPeriod
	// arrivals.
	Bursty
)

// String returns the canonical spec string for the kind.
func (k DistKind) String() string {
	switch k {
	case Zipf:
		return "zipf"
	case Bursty:
		return "bursty"
	default:
		return "uniform"
	}
}

// Dist is a parsed arrival-distribution spec.
type Dist struct {
	Kind DistKind
	// Theta is the Zipf exponent (must be > 1; the stdlib generator's
	// requirement).
	Theta float64
	// Frac is the bursty active fraction of the keyspace, in (0, 1].
	Frac float64
}

// String renders the spec back in the form ParseDist accepts.
func (d Dist) String() string {
	switch d.Kind {
	case Zipf:
		return fmt.Sprintf("zipf:%g", d.Theta)
	case Bursty:
		return fmt.Sprintf("bursty:%g", d.Frac)
	default:
		return "uniform"
	}
}

// ParseDist parses an arrival-distribution spec: "uniform", "zipf[:theta]"
// (default theta 1.1), or "bursty[:frac]" (default active fraction 0.1).
func ParseDist(s string) (Dist, error) {
	name, arg, hasArg := strings.Cut(strings.TrimSpace(strings.ToLower(s)), ":")
	switch name {
	case "", "uniform":
		if hasArg {
			return Dist{}, fmt.Errorf("service: uniform takes no parameter (got %q)", s)
		}
		return Dist{Kind: Uniform}, nil
	case "zipf":
		d := Dist{Kind: Zipf, Theta: 1.1}
		if hasArg {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return Dist{}, fmt.Errorf("service: bad zipf theta %q", arg)
			}
			d.Theta = v
		}
		if d.Theta <= 1 {
			return Dist{}, fmt.Errorf("service: zipf theta must be > 1 (got %g)", d.Theta)
		}
		return d, nil
	case "bursty":
		d := Dist{Kind: Bursty, Frac: 0.1}
		if hasArg {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return Dist{}, fmt.Errorf("service: bad bursty fraction %q", arg)
			}
			d.Frac = v
		}
		if d.Frac <= 0 || d.Frac > 1 {
			return Dist{}, fmt.Errorf("service: bursty fraction must be in (0,1] (got %g)", d.Frac)
		}
		return d, nil
	default:
		return Dist{}, fmt.Errorf("service: unknown distribution %q (want uniform, zipf[:theta], bursty[:frac])", s)
	}
}

// Stream generates an arrival sequence of client ids. Implementations are
// seeded and single-threaded: the same seed yields the same stream.
type Stream interface {
	// Next returns the next arriving client id, in [0, clients).
	Next() int
}

// burstPeriod is how many arrivals a bursty stream draws from one active
// window before re-drawing it.
const burstPeriod = 4096

// NewStream builds the seeded generator for a spec over a keyspace of
// clients ids.
func NewStream(d Dist, clients int, seed int64) (Stream, error) {
	if clients < 1 {
		return nil, fmt.Errorf("service: need at least 1 client (got %d)", clients)
	}
	rng := rand.New(rand.NewSource(seed))
	switch d.Kind {
	case Uniform:
		return &uniformStream{rng: rng, n: clients}, nil
	case Zipf:
		if d.Theta <= 1 {
			return nil, fmt.Errorf("service: zipf theta must be > 1 (got %g)", d.Theta)
		}
		z := rand.NewZipf(rng, d.Theta, 1, uint64(clients-1))
		return &zipfStream{z: z}, nil
	case Bursty:
		if d.Frac <= 0 || d.Frac > 1 {
			return nil, fmt.Errorf("service: bursty fraction must be in (0,1] (got %g)", d.Frac)
		}
		size := int(d.Frac * float64(clients))
		if size < 1 {
			size = 1
		}
		return &burstyStream{rng: rng, n: clients, size: size}, nil
	default:
		return nil, fmt.Errorf("service: unknown distribution kind %d", d.Kind)
	}
}

type uniformStream struct {
	rng *rand.Rand
	n   int
}

func (s *uniformStream) Next() int { return s.rng.Intn(s.n) }

type zipfStream struct {
	z *rand.Zipf
}

func (s *zipfStream) Next() int { return int(s.z.Uint64()) }

// burstyStream draws arrivals uniformly from a contiguous active window
// (wrapping at the keyspace end) and re-draws the window every burstPeriod
// arrivals — an on/off traffic model where the hot set itself moves.
type burstyStream struct {
	rng   *rand.Rand
	n     int
	size  int
	start int
	left  int
}

func (s *burstyStream) Next() int {
	if s.left == 0 {
		s.start = s.rng.Intn(s.n)
		s.left = burstPeriod
	}
	s.left--
	return (s.start + s.rng.Intn(s.size)) % s.n
}

// ShardOf maps a client id onto one of locks shards with a fixed
// splitmix64-style mix, so neighbouring client ids spread across shards and
// the mapping is stable across runs, seeds, and parallelism levels.
func ShardOf(client, locks int) int {
	x := uint64(client) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(locks))
}
