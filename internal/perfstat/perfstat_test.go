package perfstat

import (
	"math"
	"math/rand"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3})
	if s.N != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("odd-n summary wrong: %+v", s)
	}
	s = Summarize([]float64{4, 2})
	if s.Median != 3 {
		t.Fatalf("even-n median: got %v want 3", s.Median)
	}
	// Tiny samples: the CI is the whole range.
	if s.Lo != 2 || s.Hi != 4 {
		t.Fatalf("tiny-n CI should span the range: %+v", s)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Fatalf("empty summary: %+v", got)
	}
}

// TestMedianCIKnownValues pins the binomial order-statistic interval against
// hand-checked values: for n=10, P(X<=1) = 11/1024 ≈ 0.0107 <= 0.025 and
// P(X<=2) ≈ 0.0547 > 0.025, so k=2 and the CI is (x_(3), x_(8)).
func TestMedianCIKnownValues(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(vals)
	if s.Lo != 3 || s.Hi != 8 {
		t.Fatalf("n=10 CI: got [%v, %v], want [3, 8]", s.Lo, s.Hi)
	}
}

func TestMannWhitneyEdgeCases(t *testing.T) {
	if p := MannWhitney(nil, []float64{1}); !math.IsNaN(p) {
		t.Fatalf("empty side: got %v, want NaN", p)
	}
	if p := MannWhitney([]float64{5, 5, 5}, []float64{5, 5}); p != 1 {
		t.Fatalf("all tied: got %v, want 1", p)
	}
	// Identical distributions: p should be large.
	a := []float64{10, 11, 12, 13, 14}
	if p := MannWhitney(a, a); p < 0.9 {
		t.Fatalf("self-comparison: got p=%v, want ~1", p)
	}
}

// TestMannWhitneySeparation: clearly shifted samples must test significant,
// overlapping noise from one distribution must not (with a seeded generator,
// so the assertion is stable).
func TestMannWhitneySeparation(t *testing.T) {
	shiftA := []float64{100, 101, 102, 99, 100, 101, 98, 100}
	shiftB := []float64{150, 151, 152, 149, 150, 151, 148, 150}
	if p := MannWhitney(shiftA, shiftB); p > 0.01 {
		t.Fatalf("disjoint samples: got p=%v, want < 0.01", p)
	}

	rng := rand.New(rand.NewSource(7))
	same := func() []float64 {
		out := make([]float64, 10)
		for i := range out {
			out[i] = 100 + rng.NormFloat64()
		}
		return out
	}
	if p := MannWhitney(same(), same()); p < 0.05 {
		t.Fatalf("same-distribution samples tested significant: p=%v", p)
	}
}

func TestDiffCounters(t *testing.T) {
	old := map[string]int64{"steps": 100, "rmr_cc": 40, "gone": 1}
	new := map[string]int64{"steps": 100, "rmr_cc": 41, "fresh": 2}
	ds := DiffCounters(old, new)
	if len(ds) != 4 {
		t.Fatalf("want union of 4 metrics, got %d: %+v", len(ds), ds)
	}
	byName := map[string]Delta{}
	for _, d := range ds {
		byName[d.Metric] = d
	}
	if byName["steps"].Drift() {
		t.Fatal("equal counter flagged as drift")
	}
	if !byName["rmr_cc"].Drift() || !byName["gone"].Drift() || !byName["fresh"].Drift() {
		t.Fatalf("missed drift: %+v", byName)
	}
	// Sorted output keeps reports diff-able.
	for i := 1; i < len(ds); i++ {
		if ds[i-1].Metric >= ds[i].Metric {
			t.Fatalf("deltas not sorted: %+v", ds)
		}
	}
}

func TestCompareWall(t *testing.T) {
	w := CompareWall("wall_ms", []float64{100, 102, 98, 101}, []float64{201, 199, 200, 202})
	if math.Abs(w.DeltaPct-98.76) > 1 {
		t.Fatalf("delta pct: got %v, want ~+99%%", w.DeltaPct)
	}
	if !w.Significant(0.05) {
		t.Fatalf("doubled median not significant: %+v", w)
	}
	if CompareWall("x", []float64{0, 0}, []float64{1, 1}).DeltaPct == CompareWall("x", []float64{0, 0}, []float64{1, 1}).DeltaPct {
		// NaN != NaN: zero old median must yield NaN, not Inf or a number.
		t.Fatal("zero old median should give NaN delta")
	}
}
