// Package perfstat compares performance samples across runs, benchstat
// style, with the split the 1-CPU build machine forces: deterministic
// counters are compared for exact equality (any difference is a real change
// in what the code computed), while wall-clock series get order statistics —
// median with a binomial confidence interval — and a Mann-Whitney U
// significance test, because scheduler noise makes point comparisons of
// timings meaningless.
package perfstat

import (
	"math"
	"sort"
)

// Summary is the order-statistics view of one metric's sample set.
type Summary struct {
	N      int     `json:"n"`
	Median float64 `json:"median"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	// Lo/Hi bound the ~95% confidence interval on the median, computed from
	// order statistics via the binomial distribution (no normality
	// assumption). With fewer than ~6 samples the interval is the whole
	// observed range.
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Summarize computes the summary of vals. An empty slice yields a zero
// Summary.
func Summarize(vals []float64) Summary {
	n := len(vals)
	if n == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	s := Summary{
		N:      n,
		Min:    sorted[0],
		Max:    sorted[n-1],
		Median: median(sorted),
	}
	s.Lo, s.Hi = medianCI(sorted)
	return s
}

func median(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// medianCI returns the order statistics bounding a >= 95% confidence
// interval for the median: the largest k with P(X <= k-1) <= 0.025 for
// X ~ Binomial(n, 1/2) gives the interval (x_(k), x_(n+1-k)) in 1-indexed
// order statistics.
func medianCI(sorted []float64) (lo, hi float64) {
	n := len(sorted)
	// Walk the binomial CDF; pmf(0) = 2^-n, pmf(i+1) = pmf(i)*(n-i)/(i+1).
	pmf := math.Pow(0.5, float64(n))
	cdf := 0.0
	k := 0
	for i := 0; i < n; i++ {
		cdf += pmf
		if cdf > 0.025 {
			break
		}
		k = i + 1
		pmf *= float64(n-i) / float64(i+1)
	}
	loIdx, hiIdx := k, n-1-k
	if loIdx > hiIdx {
		loIdx, hiIdx = 0, n-1
	}
	return sorted[loIdx], sorted[hiIdx]
}

// MannWhitney computes the two-sided p-value of the Mann-Whitney U test for
// samples a and b, using the normal approximation with tie correction and a
// continuity correction. Returns NaN when either sample is empty, and 1 when
// every observation is tied (no evidence of a shift). The approximation is
// conservative for very small samples; the regress gate never acts on it —
// wall-clock deltas are advisory by design.
func MannWhitney(a, b []float64) float64 {
	n1, n2 := float64(len(a)), float64(len(b))
	if n1 == 0 || n2 == 0 {
		return math.NaN()
	}
	type obs struct {
		v     float64
		first bool
	}
	all := make([]obs, 0, len(a)+len(b))
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Average ranks over tie groups; accumulate rank sum of sample a and the
	// tie-correction term sum(t^3 - t).
	n := n1 + n2
	var r1, tieSum float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		t := float64(j - i)
		rank := (float64(i+1) + float64(j)) / 2 // average 1-indexed rank
		for k := i; k < j; k++ {
			if all[k].first {
				r1 += rank
			}
		}
		tieSum += t*t*t - t
		i = j
	}

	u := r1 - n1*(n1+1)/2
	mean := n1 * n2 / 2
	variance := n1 * n2 / 12 * (n + 1 - tieSum/(n*(n-1)))
	if variance <= 0 {
		return 1 // all observations tied
	}
	// Continuity correction toward the mean.
	d := u - mean
	switch {
	case d > 0.5:
		d -= 0.5
	case d < -0.5:
		d += 0.5
	default:
		d = 0
	}
	z := d / math.Sqrt(variance)
	p := math.Erfc(math.Abs(z) / math.Sqrt2) // two-sided
	if p > 1 {
		p = 1
	}
	return p
}

// Delta is one deterministic counter's exact comparison.
type Delta struct {
	Metric string `json:"metric"`
	Old    int64  `json:"old"`
	New    int64  `json:"new"`
	// OldOK/NewOK report presence: a counter that appears on only one side
	// is drift too (the instrumented code changed what it records).
	OldOK bool `json:"old_ok"`
	NewOK bool `json:"new_ok"`
}

// Drift reports whether the counter changed: a differing value or a counter
// present on only one side.
func (d Delta) Drift() bool {
	return !d.OldOK || !d.NewOK || d.Old != d.New
}

// DiffCounters compares two deterministic counter sets exactly, returning
// one Delta per metric in the union of both key sets, sorted by name.
func DiffCounters(old, new map[string]int64) []Delta {
	names := make(map[string]bool, len(old)+len(new))
	for k := range old {
		names[k] = true
	}
	for k := range new {
		names[k] = true
	}
	out := make([]Delta, 0, len(names))
	for name := range names {
		d := Delta{Metric: name}
		d.Old, d.OldOK = old[name]
		d.New, d.NewOK = new[name]
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Metric < out[j].Metric })
	return out
}

// WallDelta is one advisory metric's statistical comparison.
type WallDelta struct {
	Metric string  `json:"metric"`
	Old    Summary `json:"old"`
	New    Summary `json:"new"`
	// DeltaPct is the median shift in percent ((new-old)/old * 100); NaN
	// when the old median is zero.
	DeltaPct float64 `json:"delta_pct"`
	// P is the Mann-Whitney two-sided p-value; NaN when a side is empty.
	P float64 `json:"p"`
}

// Significant reports whether the shift clears the significance level:
// p <= alpha with both sides populated.
func (w WallDelta) Significant(alpha float64) bool {
	return !math.IsNaN(w.P) && w.P <= alpha
}

// CompareWall builds the advisory comparison of one metric's sample sets.
func CompareWall(metric string, old, new []float64) WallDelta {
	w := WallDelta{
		Metric: metric,
		Old:    Summarize(old),
		New:    Summarize(new),
		P:      MannWhitney(old, new),
	}
	if w.Old.Median != 0 {
		w.DeltaPct = (w.New.Median - w.Old.Median) / w.Old.Median * 100
	} else {
		w.DeltaPct = math.NaN()
	}
	return w
}
