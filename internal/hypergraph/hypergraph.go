// Package hypergraph implements the k-partite hypergraph machinery behind
// the paper's Process-Hiding Lemma: the σ/π operators of Definition 3 and
// constructive versions of Lemma 4 and Lemma 5.
//
// The paper states the lemmas existentially; their proofs are constructive,
// and this package executes those constructions on explicit hypergraphs and
// returns certificates (the sets Z, the hyperedge family F, the index d)
// that tests verify against the lemmas' guarantees.
//
// One generalization: the lemmas' parameter s is treated as a positive real
// rather than an integer. The proofs use s only inside inequalities (and in
// |E| ≥ s^k), so nothing is lost, and it matches how the Process-Hiding
// proof instantiates s = ⌊27δℓ⌋/1.2.
package hypergraph

import (
	"fmt"
	"strconv"
	"strings"
)

// Vertex is a vertex identifier. Vertices are global: parts are disjoint
// sets of vertices.
type Vertex int

// Edge is a hyperedge of a k-partite hypergraph: exactly one vertex per
// part, indexed by part.
type Edge []Vertex

// Clone returns a copy of the edge.
func (e Edge) Clone() Edge {
	out := make(Edge, len(e))
	copy(out, e)
	return out
}

// String renders the edge as (v0,v1,...).
func (e Edge) String() string {
	parts := make([]string, len(e))
	for i, v := range e {
		parts[i] = strconv.Itoa(int(v))
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// key builds a map key for the edge with one coordinate skipped (skip < 0
// keeps all coordinates).
func (e Edge) key(skip int) string {
	var b strings.Builder
	for i, v := range e {
		if i == skip {
			continue
		}
		b.WriteString(strconv.Itoa(int(v)))
		b.WriteByte(',')
	}
	return b.String()
}

// Partite is a k-partite hypergraph with explicit parts and edges.
type Partite struct {
	Parts [][]Vertex
	Edges []Edge
}

// K returns the number of parts.
func (h *Partite) K() int { return len(h.Parts) }

// Validate checks the structural invariants: every edge has one vertex per
// part, belonging to that part, and parts are disjoint.
func (h *Partite) Validate() error {
	seen := make(map[Vertex]int)
	members := make([]map[Vertex]bool, len(h.Parts))
	for i, part := range h.Parts {
		members[i] = make(map[Vertex]bool, len(part))
		for _, v := range part {
			if j, dup := seen[v]; dup {
				return fmt.Errorf("hypergraph: vertex %d in parts %d and %d", v, j, i)
			}
			seen[v] = i
			members[i][v] = true
		}
	}
	for _, e := range h.Edges {
		if len(e) != len(h.Parts) {
			return fmt.Errorf("hypergraph: edge %v has %d coordinates for %d parts", e, len(e), len(h.Parts))
		}
		for i, v := range e {
			if !members[i][v] {
				return fmt.Errorf("hypergraph: edge %v coordinate %d (%d) not in part %d", e, i, v, i)
			}
		}
	}
	return nil
}

// Complete builds the complete k-partite hypergraph over the given parts
// (every combination of one vertex per part is an edge). The number of
// edges is the product of part sizes; Complete refuses products over limit
// to keep accidental blowups from eating all memory.
func Complete(parts [][]Vertex, limit int) (*Partite, error) {
	total := 1
	for _, p := range parts {
		if len(p) == 0 {
			return nil, fmt.Errorf("hypergraph: empty part")
		}
		if total > limit/len(p) {
			return nil, fmt.Errorf("hypergraph: complete hypergraph exceeds %d edges", limit)
		}
		total *= len(p)
	}
	h := &Partite{Parts: parts, Edges: make([]Edge, 0, total)}
	edge := make(Edge, len(parts))
	var build func(i int)
	build = func(i int) {
		if i == len(parts) {
			h.Edges = append(h.Edges, edge.Clone())
			return
		}
		for _, v := range parts[i] {
			edge[i] = v
			build(i + 1)
		}
	}
	build(0)
	return h, nil
}

// Sigma returns σ_v(E): the edges containing v at the given part.
func Sigma(edges []Edge, part int, v Vertex) []Edge {
	var out []Edge
	for _, e := range edges {
		if e[part] == v {
			out = append(out, e)
		}
	}
	return out
}

// Pi returns π_v(E): the edges containing v at the given part, with that
// coordinate removed (deduplicated as sets of projected tuples).
func Pi(edges []Edge, part int, v Vertex) []Edge {
	seen := make(map[string]bool)
	var out []Edge
	for _, e := range edges {
		if e[part] != v {
			continue
		}
		k := e.key(part)
		if seen[k] {
			continue
		}
		seen[k] = true
		proj := make(Edge, 0, len(e)-1)
		for i, u := range e {
			if i != part {
				proj = append(proj, u)
			}
		}
		out = append(out, proj)
	}
	return out
}

// piSizeIndex computes, for every vertex of the given part, the projected
// edge set π_v(E) keyed by tuple string (cheaper than materializing edges).
func piSizeIndex(edges []Edge, part int, partVerts []Vertex) map[Vertex]map[string]bool {
	idx := make(map[Vertex]map[string]bool, len(partVerts))
	for _, v := range partVerts {
		idx[v] = make(map[string]bool)
	}
	for _, e := range edges {
		if set, ok := idx[e[part]]; ok {
			set[e.key(part)] = true
		}
	}
	return idx
}
