package hypergraph

import (
	"fmt"
	"sort"
)

// Lemma5Result is the certificate of Lemma 5: a hyperedge subset F of the
// input and a distinguished part index D such that the vertex support
// U = ∪ F satisfies |U ∩ X_i| <= 2 for i != D and |U ∩ X_D| >=
// s(1+ε)(1-2ε).
type Lemma5Result struct {
	F []Edge
	D int
	// Z records the per-level certificate sets from the recursive
	// construction (diagnostics; Z[i] is empty for i > D).
	Z [][]Vertex
}

// Support returns U ∩ X_i for each part i, ascending.
func (r *Lemma5Result) Support(k int) [][]Vertex {
	sets := make([]map[Vertex]bool, k)
	for i := range sets {
		sets[i] = make(map[Vertex]bool)
	}
	for _, e := range r.F {
		for i, v := range e {
			sets[i][v] = true
		}
	}
	out := make([][]Vertex, k)
	for i, set := range sets {
		for v := range set {
			out[i] = append(out[i], v)
		}
		sort.Slice(out[i], func(a, b int) bool { return out[i][a] < out[i][b] })
	}
	return out
}

// Lemma5 executes the constructive proof of Lemma 5: it iterates Lemma 4
// over the parts, shrinking the edge set by projection in case (a) and
// stopping at the distinguished part in case (b), then reconstructs the
// hyperedge family F from the per-level certificates.
//
// Preconditions: every part has size <= s(1+ε), |E| >= s^k, s > 0,
// 0 <= ε < 1/2.
func Lemma5(h *Partite, s, eps float64) (*Lemma5Result, error) {
	k := h.K()
	if k == 0 {
		return nil, fmt.Errorf("hypergraph: lemma 5 on 0-partite hypergraph")
	}
	for i, part := range h.Parts {
		if float64(len(part)) > s*(1+eps)+1e-9 {
			return nil, fmt.Errorf("hypergraph: part %d size %d exceeds s(1+ε) = %v", i, len(part), s*(1+eps))
		}
	}
	if sk := pow(s, k); float64(len(h.Edges)) < sk-1e-6 {
		return nil, fmt.Errorf("hypergraph: |E| = %d below s^k = %v", len(h.Edges), sk)
	}

	// Recursive phase: cur holds edges over parts level..k-1 (coordinate 0
	// of cur corresponds to part `level`).
	cur := h.Edges
	zs := make([][]Vertex, k)
	d := -1
	var eStar Edge // tuple over parts d+1..k-1

	for level := 0; level < k; level++ {
		if level == k-1 {
			// Last part: Z_k = all vertices of the remaining 1-partite edges.
			seen := make(map[Vertex]bool)
			for _, e := range cur {
				seen[e[0]] = true
			}
			for v := range seen {
				zs[level] = append(zs[level], v)
			}
			sort.Slice(zs[level], func(a, b int) bool { return zs[level][a] < zs[level][b] })
			d = level
			eStar = Edge{}
			break
		}
		res, err := Lemma4(cur, 0, h.Parts[level], s, eps)
		if err != nil {
			return nil, fmt.Errorf("level %d: %w", level, err)
		}
		zs[level] = res.Z
		if !res.CaseA {
			d = level
			eStar = res.Common
			break
		}
		// Case (a): E_level = ∪_{z∈Z} π_z(cur).
		next := projectUnion(cur, res.Z)
		cur = next
	}

	// Reconstruction: F = edges of the original hypergraph whose coordinate
	// j lies in Z_j for j <= d and matches e* for j > d.
	zSets := make([]map[Vertex]bool, d+1)
	for j := 0; j <= d; j++ {
		zSets[j] = make(map[Vertex]bool, len(zs[j]))
		for _, v := range zs[j] {
			zSets[j][v] = true
		}
	}
	var f []Edge
	for _, e := range h.Edges {
		ok := true
		for j := 0; j <= d; j++ {
			if !zSets[j][e[j]] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for j := d + 1; j < k; j++ {
			if e[j] != eStar[j-d-1] {
				ok = false
				break
			}
		}
		if ok {
			f = append(f, e)
		}
	}
	if len(f) == 0 {
		return nil, fmt.Errorf("hypergraph: lemma 5 reconstruction produced empty F (d=%d)", d)
	}
	res := &Lemma5Result{F: f, D: d, Z: zs}
	if err := VerifyLemma5(h, res, s, eps); err != nil {
		return nil, err
	}
	return res, nil
}

// projectUnion computes ∪_{z∈Z} π_z(edges) for coordinate 0, deduplicated.
func projectUnion(edges []Edge, z []Vertex) []Edge {
	zset := make(map[Vertex]bool, len(z))
	for _, v := range z {
		zset[v] = true
	}
	seen := make(map[string]bool)
	var out []Edge
	for _, e := range edges {
		if !zset[e[0]] {
			continue
		}
		k := e.key(0)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e[1:].Clone())
	}
	return out
}

// VerifyLemma5 checks a Lemma 5 certificate against the lemma's statement:
// F ⊆ E, and the support U satisfies (a) and (b).
func VerifyLemma5(h *Partite, res *Lemma5Result, s, eps float64) error {
	if len(res.F) == 0 {
		return fmt.Errorf("hypergraph: empty F")
	}
	inE := make(map[string]bool, len(h.Edges))
	for _, e := range h.Edges {
		inE[e.key(-1)] = true
	}
	for _, e := range res.F {
		if !inE[e.key(-1)] {
			return fmt.Errorf("hypergraph: F edge %v not in E", e)
		}
	}
	support := res.Support(h.K())
	for i, u := range support {
		if i == res.D {
			if low := s * (1 + eps) * (1 - 2*eps); float64(len(u)) < low-1e-9 {
				return fmt.Errorf("hypergraph: |U ∩ X_%d| = %d below s(1+ε)(1-2ε) = %v", i, len(u), low)
			}
			continue
		}
		if len(u) > 2 {
			return fmt.Errorf("hypergraph: |U ∩ X_%d| = %d > 2 (d = %d)", i, len(u), res.D)
		}
	}
	return nil
}

func pow(s float64, k int) float64 {
	r := 1.0
	for i := 0; i < k; i++ {
		r *= s
	}
	return r
}
