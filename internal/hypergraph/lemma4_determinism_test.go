package hypergraph

import (
	"fmt"
	"testing"
)

// TestLemma4CaseBDeterministicUnderTies is the regression test for the
// best-tuple selection: on a fixture where every candidate tuple has the
// same intersection count, the certificate used to depend on map iteration
// order. A complete bipartite 5×4 graph with s=4, ε=0.25 defeats the
// singleton case (every degree is 4 < |E|/s = 5) and leaves all four
// tuples tied at count 5 ≥ s(1+ε)(1-2ε) = 2.5, so case (b) must pick one
// of four equally good tuples — deterministically.
func TestLemma4CaseBDeterministicUnderTies(t *testing.T) {
	parts := [][]Vertex{{0, 1, 2, 3, 4}, {5, 6, 7, 8}}
	h, err := Complete(parts, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	const s, eps = 4, 0.25
	var want string
	for i := 0; i < 60; i++ {
		res, err := Lemma4(h.Edges, 0, h.Parts[0], s, eps)
		if err != nil {
			t.Fatal(err)
		}
		if res.CaseA {
			t.Fatal("fixture unexpectedly satisfied case (a); it no longer exercises the tie-break")
		}
		if err := VerifyLemma4(h.Edges, 0, res, s, eps); err != nil {
			t.Fatal(err)
		}
		got := fmt.Sprintf("Z=%v Common=%v", res.Z, res.Common)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("iteration %d produced a different certificate:\n first: %s\n   now: %s", i, want, got)
		}
	}
}
