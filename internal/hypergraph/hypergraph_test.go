package hypergraph

import (
	"fmt"
	"math/rand"
	"testing"
)

// mkParts builds k disjoint parts of the given size with consecutive ids.
func mkParts(k, size int) [][]Vertex {
	parts := make([][]Vertex, k)
	id := 0
	for i := range parts {
		parts[i] = make([]Vertex, size)
		for j := range parts[i] {
			parts[i][j] = Vertex(id)
			id++
		}
	}
	return parts
}

func TestCompleteCounts(t *testing.T) {
	tests := []struct {
		k, size, want int
	}{
		{1, 3, 3},
		{2, 3, 9},
		{3, 2, 8},
		{4, 3, 81},
	}
	for _, tt := range tests {
		h, err := Complete(mkParts(tt.k, tt.size), 1_000_000)
		if err != nil {
			t.Fatalf("k=%d size=%d: %v", tt.k, tt.size, err)
		}
		if len(h.Edges) != tt.want {
			t.Errorf("k=%d size=%d: %d edges, want %d", tt.k, tt.size, len(h.Edges), tt.want)
		}
		if err := h.Validate(); err != nil {
			t.Errorf("validate: %v", err)
		}
	}
}

func TestCompleteLimit(t *testing.T) {
	if _, err := Complete(mkParts(4, 100), 1000); err == nil {
		t.Error("100^4 edges should exceed the limit")
	}
}

func TestValidateCatchesBadEdges(t *testing.T) {
	h := &Partite{
		Parts: mkParts(2, 2), // parts {0,1}, {2,3}
		Edges: []Edge{{0, 2}},
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("good graph rejected: %v", err)
	}
	h.Edges = append(h.Edges, Edge{0, 1}) // 1 is in part 0, not part 1
	if err := h.Validate(); err == nil {
		t.Error("edge with wrong-part vertex accepted")
	}
	bad := &Partite{Parts: [][]Vertex{{0, 1}, {1, 2}}}
	if err := bad.Validate(); err == nil {
		t.Error("overlapping parts accepted")
	}
}

func TestSigmaPi(t *testing.T) {
	h := &Partite{
		Parts: mkParts(2, 2), // {0,1}, {2,3}
		Edges: []Edge{{0, 2}, {0, 3}, {1, 2}},
	}
	if got := Sigma(h.Edges, 0, 0); len(got) != 2 {
		t.Errorf("σ_0 = %v, want 2 edges", got)
	}
	if got := Pi(h.Edges, 0, 0); len(got) != 2 {
		t.Errorf("π_0 = %v, want 2 projections", got)
	}
	if got := Pi(h.Edges, 1, 2); len(got) != 2 {
		t.Errorf("π_2 (part 1) = %v, want 2 projections", got)
	}
	if got := Pi(h.Edges, 0, 1); len(got) != 1 || got[0][0] != 2 {
		t.Errorf("π_1 = %v, want [(2)]", got)
	}
}

func TestPiDeduplicates(t *testing.T) {
	// Duplicate edges collapse under π (it is a set of projected tuples).
	edges := []Edge{{0, 2}, {0, 2}}
	if got := Pi(edges, 0, 0); len(got) != 1 {
		t.Errorf("π over duplicates = %v, want 1", got)
	}
}

func TestLemma4OnCompleteGraph(t *testing.T) {
	// Complete 3-partite graph: every vertex's projections cover everything,
	// so a singleton satisfies case (a).
	h, err := Complete(mkParts(3, 5), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Lemma4(h.Edges, 0, h.Parts[0], 5, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyLemma4(h.Edges, 0, res, 5, 0.0); err != nil {
		t.Fatal(err)
	}
}

func TestLemma4RandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(3)
		size := 3 + rng.Intn(8)
		parts := mkParts(k, size)
		// Random edge set (dense enough to be interesting, capped by the
		// number of distinct edges).
		total := 1
		for i := 0; i < k; i++ {
			total *= size
		}
		nEdges := 1 + rng.Intn(4*size*size)
		if nEdges > total {
			nEdges = total
		}
		seen := make(map[string]bool)
		var edges []Edge
		for len(edges) < nEdges {
			e := make(Edge, k)
			for i := range e {
				e[i] = parts[i][rng.Intn(size)]
			}
			if !seen[e.key(-1)] {
				seen[e.key(-1)] = true
				edges = append(edges, e)
			}
		}
		s := float64(size) / 1.2
		eps := 0.2
		res, err := Lemma4(edges, 0, parts[0], s, eps)
		if err != nil {
			t.Fatalf("trial %d (k=%d size=%d |E|=%d): %v", trial, k, size, len(edges), err)
		}
		if err := VerifyLemma4(edges, 0, res, s, eps); err != nil {
			t.Fatalf("trial %d: certificate invalid: %v", trial, err)
		}
	}
}

func TestLemma4PreconditionErrors(t *testing.T) {
	h, err := Complete(mkParts(2, 4), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Lemma4(nil, 0, h.Parts[0], 2, 0.2); err == nil {
		t.Error("empty edges accepted")
	}
	if _, err := Lemma4(h.Edges, 0, h.Parts[0], 2, 0.2); err == nil {
		t.Error("part larger than s(1+ε) accepted")
	}
	if _, err := Lemma4(h.Edges, 0, h.Parts[0], 4, 0.7); err == nil {
		t.Error("eps >= 1/2 accepted")
	}
	if _, err := Lemma4(h.Edges, 0, h.Parts[0], -1, 0.2); err == nil {
		t.Error("negative s accepted")
	}
}

func TestLemma5OnCompleteGraphs(t *testing.T) {
	for _, tc := range []struct {
		k, size int
	}{
		{2, 4}, {3, 4}, {4, 4}, {3, 6}, {2, 10},
	} {
		parts := mkParts(tc.k, tc.size)
		h, err := Complete(parts, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		s := float64(tc.size) / 1.2
		res, err := Lemma5(h, s, 0.2)
		if err != nil {
			t.Fatalf("k=%d size=%d: %v", tc.k, tc.size, err)
		}
		if err := VerifyLemma5(h, res, s, 0.2); err != nil {
			t.Fatalf("k=%d size=%d: %v", tc.k, tc.size, err)
		}
	}
}

func TestLemma5RandomSubsets(t *testing.T) {
	// Random subsets of the complete graph with |E| >= s^k.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		k := 2 + rng.Intn(3)
		size := 4 + rng.Intn(5)
		parts := mkParts(k, size)
		full, err := Complete(parts, 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		s := float64(size) / 1.2
		eps := 0.25
		minEdges := int(pow(s, k)) + 1
		// Keep a random subset of at least minEdges edges.
		perm := rng.Perm(len(full.Edges))
		keep := minEdges + rng.Intn(len(full.Edges)-minEdges+1)
		sub := &Partite{Parts: parts, Edges: make([]Edge, 0, keep)}
		for _, idx := range perm[:keep] {
			sub.Edges = append(sub.Edges, full.Edges[idx])
		}
		res, err := Lemma5(sub, s, eps)
		if err != nil {
			t.Fatalf("trial %d (k=%d size=%d |E|=%d s=%v): %v", trial, k, size, keep, s, err)
		}
		if err := VerifyLemma5(sub, res, s, eps); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestLemma5PreconditionErrors(t *testing.T) {
	parts := mkParts(3, 4)
	h, err := Complete(parts, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// s too large for the parts.
	if _, err := Lemma5(h, 10, 0.2); err == nil {
		t.Error("s^k > |E| accepted")
	}
	// Part exceeds s(1+eps).
	if _, err := Lemma5(h, 2, 0.2); err == nil {
		t.Error("part size above s(1+ε) accepted")
	}
	if _, err := Lemma5(&Partite{}, 1, 0.2); err == nil {
		t.Error("0-partite graph accepted")
	}
}

func TestEdgeString(t *testing.T) {
	e := Edge{1, 2, 3}
	if got := e.String(); got != "(1,2,3)" {
		t.Errorf("String = %q", got)
	}
	if e.key(1) == e.key(-1) {
		t.Error("keys with and without skip should differ")
	}
	c := e.Clone()
	c[0] = 9
	if e[0] == 9 {
		t.Error("Clone aliases the edge")
	}
}

func ExampleLemma5() {
	parts := mkParts(3, 4)
	h, _ := Complete(parts, 10000)
	res, _ := Lemma5(h, float64(4)/1.2, 0.2)
	fmt.Println(len(res.F) > 0, res.D >= 0)
	// Output: true true
}
