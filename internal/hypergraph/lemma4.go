package hypergraph

import (
	"fmt"
	"sort"
)

// Lemma4Result is the certificate produced by Lemma 4: a set Z of vertices
// of the chosen part satisfying conclusion (a) or (b).
type Lemma4Result struct {
	// CaseA: |Z| <= 2 and |∪_{z∈Z} π_z(E)| >= |E|/s.
	CaseA bool
	Z     []Vertex
	// UnionSize is |∪_{z∈Z} π_z(E)| (case (a)).
	UnionSize int
	// Common is a projected tuple in ∩_{z∈Z} π_z(E) (case (b)); its
	// coordinates are the edge coordinates with `part` removed.
	Common Edge
}

// Lemma4 executes the constructive proof of Lemma 4 on the given edges for
// the chosen part (the proof's X_1). Preconditions: |partVerts| <= s(1+ε),
// 0 <= ε < 1/2, s > 0, and edges nonempty. The returned certificate
// satisfies (a) or (b); if neither can be constructed the preconditions
// were violated and an error is returned.
//
// The proof assumes (a) fails and derives (b) by an expectation argument;
// constructively we first try (b) by exact counting (the expectation
// argument realized), and fall back to searching for the pair certificate
// of (a), which the contrapositive guarantees exists when (b)'s count falls
// short.
func Lemma4(edges []Edge, part int, partVerts []Vertex, s, eps float64) (*Lemma4Result, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("hypergraph: lemma 4 on empty edge set")
	}
	if s <= 0 || eps < 0 || eps >= 0.5 {
		return nil, fmt.Errorf("hypergraph: lemma 4 parameters s=%v eps=%v out of range", s, eps)
	}
	if float64(len(partVerts)) > s*(1+eps)+1e-9 {
		return nil, fmt.Errorf("hypergraph: part size %d exceeds s(1+ε) = %v", len(partVerts), s*(1+eps))
	}

	idx := piSizeIndex(edges, part, partVerts)
	order := make([]Vertex, len(partVerts))
	copy(order, partVerts)
	sort.Slice(order, func(i, j int) bool {
		a, b := len(idx[order[i]]), len(idx[order[j]])
		if a != b {
			return a > b
		}
		return order[i] < order[j]
	})

	need := float64(len(edges)) / s
	zbLow := s * (1 + eps) * (1 - 2*eps)

	// Singleton case (a).
	top := order[0]
	if float64(len(idx[top])) >= need-1e-9 {
		return &Lemma4Result{CaseA: true, Z: []Vertex{top}, UnionSize: len(idx[top])}, nil
	}

	// Attempt case (b): λ = max{i : |p_1| + |p_i| >= |E|/s}; count, for each
	// tuple of p_1, how many p_1..p_λ contain it; take the best.
	lambda := 0
	for i := range order {
		if float64(len(idx[top])+len(idx[order[i]])) >= need-1e-9 {
			lambda = i
		}
	}
	var (
		bestTuple string
		bestCount int
		bestZ     []Vertex
	)
	for tuple := range idx[top] {
		count := 0
		for i := 0; i <= lambda; i++ {
			if idx[order[i]][tuple] {
				count++
			}
		}
		// Tie-break on the tuple key itself: map iteration order is random,
		// and bestTuple decides the certificate's Z and Common fields.
		if count > bestCount || (count == bestCount && count > 0 && (bestTuple == "" || tuple < bestTuple)) {
			bestCount = count
			bestTuple = tuple
		}
	}
	if float64(bestCount) >= zbLow-1e-9 {
		// Z may include every vertex whose projection contains the tuple
		// (a superset of the proof's witnesses is still a valid Z).
		for _, v := range order {
			if idx[v][bestTuple] {
				bestZ = append(bestZ, v)
			}
		}
		common, err := findProjection(edges, part, bestZ[0], bestTuple)
		if err != nil {
			return nil, err
		}
		return &Lemma4Result{Z: bestZ, Common: common}, nil
	}

	// Case (b) fell short: the contrapositive guarantees a pair certificate
	// for (a). Search pairs.
	for i := 0; i < len(order); i++ {
		pi := idx[order[i]]
		for j := i + 1; j < len(order); j++ {
			pj := idx[order[j]]
			inter := 0
			small, large := pi, pj
			if len(pj) < len(pi) {
				small, large = pj, pi
			}
			for tuple := range small {
				if large[tuple] {
					inter++
				}
			}
			union := len(pi) + len(pj) - inter
			if float64(union) >= need-1e-9 {
				return &Lemma4Result{
					CaseA:     true,
					Z:         []Vertex{order[i], order[j]},
					UnionSize: union,
				}, nil
			}
		}
	}
	return nil, fmt.Errorf("hypergraph: lemma 4 failed — preconditions violated (|E|=%d, part=%d, s=%v, eps=%v)",
		len(edges), len(partVerts), s, eps)
}

// findProjection recovers the projected Edge whose key is tuple, from any
// edge containing v at `part`.
func findProjection(edges []Edge, part int, v Vertex, tuple string) (Edge, error) {
	for _, e := range edges {
		if e[part] != v || e.key(part) != tuple {
			continue
		}
		proj := make(Edge, 0, len(e)-1)
		for i, u := range e {
			if i != part {
				proj = append(proj, u)
			}
		}
		return proj, nil
	}
	return nil, fmt.Errorf("hypergraph: projection %q not found for vertex %d", tuple, v)
}

// VerifyLemma4 checks a Lemma 4 certificate against the lemma's statement.
func VerifyLemma4(edges []Edge, part int, res *Lemma4Result, s, eps float64) error {
	if len(res.Z) == 0 {
		return fmt.Errorf("hypergraph: empty Z")
	}
	if res.CaseA {
		if len(res.Z) > 2 {
			return fmt.Errorf("hypergraph: case (a) with |Z| = %d > 2", len(res.Z))
		}
		union := make(map[string]bool)
		for _, z := range res.Z {
			for _, e := range edges {
				if e[part] == z {
					union[e.key(part)] = true
				}
			}
		}
		if float64(len(union)) < float64(len(edges))/s-1e-9 {
			return fmt.Errorf("hypergraph: case (a) union %d < |E|/s = %v", len(union), float64(len(edges))/s)
		}
		return nil
	}
	if float64(len(res.Z)) < s*(1+eps)*(1-2*eps)-1e-9 {
		return fmt.Errorf("hypergraph: case (b) |Z| = %d < s(1+ε)(1-2ε) = %v",
			len(res.Z), s*(1+eps)*(1-2*eps))
	}
	// Common must lie in every π_z(E).
	for _, z := range res.Z {
		found := false
		for _, e := range edges {
			if e[part] != z {
				continue
			}
			match := true
			ci := 0
			for i, u := range e {
				if i == part {
					continue
				}
				if u != res.Common[ci] {
					match = false
					break
				}
				ci++
			}
			if match {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("hypergraph: case (b) common tuple %v missing from π_%d(E)", res.Common, z)
		}
	}
	return nil
}
