package memory

import "rme/internal/word"

// Shared is the owner value for cells that belong to no process's DSM
// segment; every access to a Shared cell is remote in the DSM model.
const Shared = -1

// Cell is an opaque handle to one shared-memory base object. All access goes
// through an Env so the runtime can account RMRs and schedule steps.
type Cell interface {
	// CellID returns the runtime-unique index of the cell.
	CellID() int
	// Owner returns the DSM segment owner (a process id), or Shared.
	Owner() int
	// Label returns the human-readable name used in traces.
	Label() string
}

// Allocator creates cells. Algorithms allocate all their cells up front in
// their constructor, before any process takes steps, mirroring the paper's
// static set R of shared objects.
type Allocator interface {
	// Width returns the word size w in bits of every allocated cell.
	Width() word.Width
	// NewCell allocates a cell with the given trace label, DSM segment owner
	// (a process id, or Shared) and initial value, which must fit in w bits.
	NewCell(label string, owner int, init word.Word) Cell
}

// Env is a single process's view of shared memory: every method is one
// atomic step on one cell. Under the simulator each call blocks until the
// scheduler grants the step (and may instead deliver a crash); under the
// native runtime each call maps directly to sync/atomic.
type Env interface {
	// ID returns the calling process's id in [0, n).
	ID() int
	// Width returns the word size of the machine.
	Width() word.Width

	// Read returns the current value of the cell.
	Read(c Cell) word.Word
	// Write stores v into the cell.
	Write(c Cell, v word.Word)
	// Swap stores v and returns the prior value (fetch-and-store).
	Swap(c Cell, v word.Word) word.Word
	// Add adds d mod 2^w and returns the prior value (fetch-and-add).
	Add(c Cell, d word.Word) word.Word
	// CAS installs replacement if the cell holds expected; it returns the
	// prior value, so it succeeded iff the result equals expected.
	CAS(c Cell, expected, replacement word.Word) word.Word
	// Apply executes an arbitrary operation (including Custom transitions).
	Apply(c Cell, op Op) word.Word

	// SpinUntil busy-waits until pred holds for the cell's value and returns
	// that value. The simulator charges RMRs per the local-spin rules of the
	// configured model and parks the process between changes; the native
	// runtime spins with runtime.Gosched.
	SpinUntil(c Cell, pred func(word.Word) bool) word.Word

	// SpinUntilMulti busy-waits until pred holds for the values of all the
	// given cells at once, and returns those values. It models a CC process
	// spinning locally on several cached locations; see the simulator's
	// documentation for the exact RMR accounting.
	SpinUntilMulti(cells []Cell, pred func([]word.Word) bool) []word.Word
}

// TAS performs test-and-set via swap; it returns true if the caller acquired
// the bit (prior value was 0).
func TAS(env Env, c Cell) bool { return env.Swap(c, 1) == 0 }

// FAI performs fetch-and-increment.
func FAI(env Env, c Cell) word.Word { return env.Add(c, 1) }
