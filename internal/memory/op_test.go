package memory

import (
	"testing"
	"testing/quick"

	"rme/internal/word"
)

func TestApplySemantics(t *testing.T) {
	const w = word.Width(8)
	tests := []struct {
		name     string
		op       Op
		cur      word.Word
		wantNext word.Word
		wantRet  word.Word
	}{
		{name: "read", op: Read(), cur: 42, wantNext: 42, wantRet: 42},
		{name: "write", op: Write(7), cur: 42, wantNext: 7, wantRet: 0},
		{name: "write truncates", op: Write(0x1ff), cur: 0, wantNext: 0xff, wantRet: 0},
		{name: "swap", op: Swap(7), cur: 42, wantNext: 7, wantRet: 42},
		{name: "add", op: Add(5), cur: 42, wantNext: 47, wantRet: 42},
		{name: "add wraps", op: Add(20), cur: 250, wantNext: 14, wantRet: 250},
		{name: "cas success", op: CAS(42, 9), cur: 42, wantNext: 9, wantRet: 42},
		{name: "cas failure", op: CAS(41, 9), cur: 42, wantNext: 42, wantRet: 42},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			next, ret := Apply(tt.op, tt.cur, w)
			if next != tt.wantNext || ret != tt.wantRet {
				t.Errorf("Apply(%v, %d) = (%d, %d), want (%d, %d)",
					tt.op, tt.cur, next, ret, tt.wantNext, tt.wantRet)
			}
		})
	}
}

func TestApplyCustom(t *testing.T) {
	const w = word.Width(4)
	double := Custom("double", func(cur word.Word) (word.Word, word.Word) {
		return cur * 2, cur
	})
	next, ret := Apply(double, 9, w)
	if next != 2 || ret != 9 { // 18 mod 16 = 2
		t.Errorf("custom double: got (%d, %d), want (2, 9)", next, ret)
	}
}

func TestApplyStaysInDomain(t *testing.T) {
	for _, w := range []word.Width{1, 4, 8, 32, 64} {
		w := w
		f := func(cur, a, b word.Word, code uint8) bool {
			var op Op
			switch code % 5 {
			case 0:
				op = Read()
			case 1:
				op = Write(a)
			case 2:
				op = Swap(a)
			case 3:
				op = Add(a)
			case 4:
				op = CAS(a, b)
			}
			next, _ := Apply(op, cur, w)
			return w.Fits(next)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("width %d: %v", w, err)
		}
	}
}

func TestApplyReadNeverMutates(t *testing.T) {
	f := func(cur word.Word) bool {
		next, ret := Apply(Read(), cur, 64)
		return next == cur && ret == cur
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	tests := []struct {
		give Op
		want string
	}{
		{Read(), "read"},
		{Write(3), "write(3)"},
		{Swap(4), "FAS(4)"},
		{Add(5), "FAA(5)"},
		{CAS(1, 2), "CAS(1,2)"},
		{Custom("frob", func(c word.Word) (word.Word, word.Word) { return c, c }), "frob"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("(%#v).String() = %q, want %q", tt.give.Code, got, tt.want)
		}
	}
}

func TestIsRead(t *testing.T) {
	if !Read().IsRead() {
		t.Error("Read().IsRead() = false")
	}
	for _, op := range []Op{Write(1), Swap(1), Add(1), CAS(0, 1)} {
		if op.IsRead() {
			t.Errorf("%v.IsRead() = true", op)
		}
	}
}
