package memory

import (
	"sync"
	"testing"

	"rme/internal/word"
)

func TestNativeMemBasicOps(t *testing.T) {
	m, err := NewNativeMem(8)
	if err != nil {
		t.Fatal(err)
	}
	c := m.NewCell("c", Shared, 5)
	env := m.Env(0)

	if got := env.Read(c); got != 5 {
		t.Errorf("Read = %d, want 5", got)
	}
	env.Write(c, 9)
	if got := env.Read(c); got != 9 {
		t.Errorf("after Write: %d, want 9", got)
	}
	if got := env.Swap(c, 3); got != 9 {
		t.Errorf("Swap returned %d, want 9", got)
	}
	if got := env.Add(c, 250); got != 3 {
		t.Errorf("Add returned %d, want 3", got)
	}
	if got := env.Read(c); got != 253%256 {
		t.Errorf("after Add: %d, want 253", got)
	}
	if got := env.CAS(c, 253, 7); got != 253 {
		t.Errorf("CAS returned %d, want 253", got)
	}
	if got := env.CAS(c, 253, 8); got != 7 {
		t.Errorf("failed CAS returned %d, want 7", got)
	}
}

func TestNativeMemAddWrapsNarrowWidth(t *testing.T) {
	m, err := NewNativeMem(4)
	if err != nil {
		t.Fatal(err)
	}
	c := m.NewCell("c", Shared, 15)
	env := m.Env(0)
	if got := env.Add(c, 1); got != 15 {
		t.Errorf("Add returned %d, want 15", got)
	}
	if got := env.Read(c); got != 0 {
		t.Errorf("4-bit add did not wrap: %d", got)
	}
}

func TestNativeMemApplyCustom(t *testing.T) {
	m, err := NewNativeMem(16)
	if err != nil {
		t.Fatal(err)
	}
	c := m.NewCell("c", Shared, 10)
	env := m.Env(0)
	setMax := Custom("max", func(cur word.Word) (word.Word, word.Word) {
		if cur < 42 {
			return 42, cur
		}
		return cur, cur
	})
	if got := env.Apply(c, setMax); got != 10 {
		t.Errorf("Apply ret = %d, want 10", got)
	}
	if got := env.Read(c); got != 42 {
		t.Errorf("custom op result = %d, want 42", got)
	}
}

func TestNativeMemInvalidWidth(t *testing.T) {
	if _, err := NewNativeMem(0); err == nil {
		t.Error("width 0: want error")
	}
	if _, err := NewNativeMem(65); err == nil {
		t.Error("width 65: want error")
	}
}

func TestNativeMemCellMetadata(t *testing.T) {
	m, err := NewNativeMem(32)
	if err != nil {
		t.Fatal(err)
	}
	a := m.NewCell("a", 3, 0)
	b := m.NewCell("b", Shared, 0)
	if a.CellID() == b.CellID() {
		t.Error("cell ids collide")
	}
	if a.Owner() != 3 || b.Owner() != Shared {
		t.Errorf("owners: %d, %d", a.Owner(), b.Owner())
	}
	if a.Label() != "a" {
		t.Errorf("label: %q", a.Label())
	}
}

func TestNativeMemConcurrentFAA(t *testing.T) {
	// n goroutines each add 1 k times; the counter must equal n*k and every
	// fetch-and-add return value must be unique (atomicity witness).
	m, err := NewNativeMem(64)
	if err != nil {
		t.Fatal(err)
	}
	c := m.NewCell("ctr", Shared, 0)
	const (
		n = 8
		k = 1000
	)
	seen := make([]map[word.Word]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		seen[i] = make(map[word.Word]bool, k)
		wg.Add(1)
		go func() {
			defer wg.Done()
			env := m.Env(i)
			for j := 0; j < k; j++ {
				seen[i][env.Add(c, 1)] = true
			}
		}()
	}
	wg.Wait()
	if got := m.Env(0).Read(c); got != n*k {
		t.Fatalf("counter = %d, want %d", got, n*k)
	}
	all := make(map[word.Word]bool, n*k)
	for i := 0; i < n; i++ {
		for v := range seen[i] {
			if all[v] {
				t.Fatalf("duplicate FAA return %d", v)
			}
			all[v] = true
		}
	}
	if len(all) != n*k {
		t.Fatalf("distinct returns = %d, want %d", len(all), n*k)
	}
}

func TestNativeMemConcurrentNarrowCAS(t *testing.T) {
	// Narrow-width Add uses a CAS loop; hammer it concurrently.
	m, err := NewNativeMem(12)
	if err != nil {
		t.Fatal(err)
	}
	c := m.NewCell("ctr", Shared, 0)
	const (
		n = 4
		k = 4096 // n*k = 16384 = 4 * 2^12, so the counter wraps to 0
	)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			env := m.Env(i)
			for j := 0; j < k; j++ {
				env.Add(c, 1)
			}
		}()
	}
	wg.Wait()
	if got := m.Env(0).Read(c); got != 0 {
		t.Fatalf("12-bit counter after %d increments = %d, want 0", n*k, got)
	}
}

func TestTASHelper(t *testing.T) {
	m, err := NewNativeMem(8)
	if err != nil {
		t.Fatal(err)
	}
	c := m.NewCell("lock", Shared, 0)
	env := m.Env(0)
	if !TAS(env, c) {
		t.Error("first TAS should acquire")
	}
	if TAS(env, c) {
		t.Error("second TAS should fail")
	}
}

func TestFAIHelper(t *testing.T) {
	m, err := NewNativeMem(8)
	if err != nil {
		t.Fatal(err)
	}
	c := m.NewCell("ctr", Shared, 0)
	env := m.Env(0)
	if got := FAI(env, c); got != 0 {
		t.Errorf("FAI = %d, want 0", got)
	}
	if got := FAI(env, c); got != 1 {
		t.Errorf("FAI = %d, want 1", got)
	}
}

func TestNativeSpinUntil(t *testing.T) {
	m, err := NewNativeMem(8)
	if err != nil {
		t.Fatal(err)
	}
	c := m.NewCell("flag", Shared, 0)
	done := make(chan word.Word, 1)
	go func() {
		env := m.Env(1)
		done <- env.SpinUntil(c, func(v word.Word) bool { return v == 7 })
	}()
	m.Env(0).Write(c, 7)
	if got := <-done; got != 7 {
		t.Errorf("SpinUntil = %d, want 7", got)
	}
}
