package memory

import (
	"sync"
	"sync/atomic"
	"testing"
)

// unpaddedCell reproduces the pre-padding layout of nativeCell: bare atomic
// words that the allocator packs eight-to-a-cache-line. It exists only as
// the "before" arm of the false-sharing benchmark.
type unpaddedCell struct {
	v atomic.Uint64
}

// benchIndependentCounters runs GOMAXPROCS goroutines, each hammering its
// own counter — zero logical contention, so any slowdown in the unpadded
// arm is pure cache-line ping-pong. The cells are allocated back-to-back in
// one slice to force adjacency, mirroring how NewCell allocations from one
// algorithm's setup loop tend to land consecutively in a size-class span.
func benchIndependentCounters(b *testing.B, addr func(i int) *atomic.Uint64, workers int) {
	b.ReportAllocs()
	var wg sync.WaitGroup
	per := b.N/workers + 1
	b.ResetTimer()
	for i := 0; i < workers; i++ {
		c := addr(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
}

func BenchmarkFalseSharing(b *testing.B) {
	const workers = 4
	b.Run("unpadded", func(b *testing.B) {
		cells := make([]unpaddedCell, workers)
		benchIndependentCounters(b, func(i int) *atomic.Uint64 { return &cells[i].v }, workers)
	})
	b.Run("padded", func(b *testing.B) {
		cells := make([]nativeCell, workers)
		benchIndependentCounters(b, func(i int) *atomic.Uint64 { return &cells[i].v }, workers)
	})
}

// BenchmarkNativeEnvOps measures the per-operation overhead of the env
// indirection itself (single goroutine, no contention).
func BenchmarkNativeEnvOps(b *testing.B) {
	m, err := NewNativeMem(64)
	if err != nil {
		b.Fatal(err)
	}
	c := m.NewCell("c", Shared, 0)
	env := m.Env(0)
	b.Run("read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env.Read(c)
		}
	})
	b.Run("add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env.Add(c, 1)
		}
	})
	b.Run("cas", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env.CAS(c, env.Read(c), 1)
		}
	})
}

// BenchmarkNativeDCAS measures the descriptor shim against back-to-back
// single CAS on the same pair, uncontended.
func BenchmarkNativeDCAS(b *testing.B) {
	m, err := NewNativeMem(32)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.EnableDCAS(); err != nil {
		b.Fatal(err)
	}
	x := m.NewCell("x", Shared, 0)
	y := m.NewCell("y", Shared, 0)
	env := m.Env(0)
	denv := env.(DoubleEnv)
	b.Run("dcas", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := env.Read(x)
			denv.DCAS(x, v, v+1, y, v, v+1)
		}
	})
	b.Run("two-cas", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := env.Read(x)
			env.CAS(x, v, v+1)
			env.CAS(y, v, v+1)
		}
	})
}
