package memory

import (
	"math/big"
	"testing"

	"rme/internal/word"
)

// refApply recomputes Apply's contract with math/big arithmetic mod 2^w — an
// independent reference that cannot share Apply's masking bugs.
func refApply(op Op, cur word.Word, w word.Width) (next, ret word.Word) {
	mod := new(big.Int).Lsh(big.NewInt(1), uint(w))
	red := func(v word.Word) word.Word {
		r := new(big.Int).Mod(new(big.Int).SetUint64(v), mod)
		return r.Uint64()
	}
	cur = red(cur)
	switch op.Code {
	case OpRead:
		return cur, cur
	case OpWrite:
		return red(op.Arg), 0
	case OpSwap:
		return red(op.Arg), cur
	case OpAdd:
		sum := new(big.Int).Add(new(big.Int).SetUint64(cur), new(big.Int).SetUint64(op.Arg))
		return sum.Mod(sum, mod).Uint64(), cur
	case OpCAS:
		if cur == red(op.Arg) {
			return red(op.Arg2), cur
		}
		return cur, cur
	default:
		panic("unreachable")
	}
}

// FuzzApplyTruncation differentially checks Apply — the single source of
// truth for operation semantics in both runtimes — against the big.Int
// reference at every width from 1 to 64 bits, and asserts the w-bit domain
// invariant the paper's model depends on: no operation can ever leave more
// than w bits of state in a cell.
func FuzzApplyTruncation(f *testing.F) {
	f.Add(uint8(1), uint64(0), uint64(0), uint64(0), uint8(8))
	f.Add(uint8(4), uint64(1), uint64(0), ^uint64(0), uint8(1))
	f.Add(uint8(5), uint64(0x100), uint64(0xff), uint64(0), uint8(8))
	f.Add(uint8(4), ^uint64(0), uint64(0), ^uint64(0), uint8(64))
	f.Add(uint8(3), uint64(1)<<63, uint64(0), uint64(5), uint8(63))
	f.Fuzz(func(t *testing.T, code uint8, arg, arg2, cur uint64, wRaw uint8) {
		w := word.Width(wRaw%64 + 1)
		op := Op{Code: OpCode(code%5 + 1), Arg: arg, Arg2: arg2}
		next, ret := Apply(op, cur, w)
		if !w.Fits(next) {
			t.Fatalf("%s at w=%d left %d bits: next=%#x", op, w, 64-uint64(w), next)
		}
		wantNext, wantRet := refApply(op, cur, w)
		if next != wantNext || ret != wantRet {
			t.Fatalf("%s(cur=%#x, w=%d) = (next=%#x, ret=%#x), reference (%#x, %#x)",
				op, cur, w, next, ret, wantNext, wantRet)
		}
		// A CAS must succeed (return its expected value) iff the truncated
		// expected matched the truncated current value.
		if op.Code == OpCAS {
			matched := w.Trunc(cur) == w.Trunc(arg)
			if succeeded := ret == w.Trunc(arg); succeeded != matched {
				t.Fatalf("CAS success=%v but expected-matches-current=%v (cur=%#x arg=%#x w=%d)",
					succeeded, matched, cur, arg, w)
			}
		}
	})
}

// FuzzCustomTruncation checks that custom transitions — the paper's
// "arbitrary atomic operations" — cannot smuggle extra bits into a cell:
// whatever the transition returns is truncated to w bits before it is stored.
func FuzzCustomTruncation(f *testing.F) {
	f.Add(uint64(0), uint64(1), uint8(8))
	f.Add(^uint64(0), ^uint64(0), uint8(3))
	f.Fuzz(func(t *testing.T, cur, leak uint64, wRaw uint8) {
		w := word.Width(wRaw%64 + 1)
		op := Custom("leak", func(v word.Word) (word.Word, word.Word) {
			return v | leak, v
		})
		next, ret := Apply(op, cur, w)
		if !w.Fits(next) {
			t.Fatalf("custom op stored %#x at w=%d", next, w)
		}
		if want := w.Trunc(w.Trunc(cur) | leak); next != want {
			t.Fatalf("custom next = %#x, want %#x", next, want)
		}
		if ret != w.Trunc(cur) {
			t.Fatalf("custom saw cur=%#x, want the truncated %#x", ret, w.Trunc(cur))
		}
	})
}

// FuzzNativeEnvDifferential interprets the fuzz input as an operation
// script against a real nativeEnv — Read/Write/Swap/Add/CAS through
// sync/atomic, Apply(OpCustom) through the CAS shim, DCAS through the
// descriptor shim — and cross-checks every return value and every
// resulting cell state against big.Int arithmetic mod 2^w. This is the
// bridge proof that the hardware backend implements the same w-bit word
// model the simulator does, at every width from 1 to 64 bits.
func FuzzNativeEnvDifferential(f *testing.F) {
	f.Add(uint8(8), []byte{0, 0, 0, 0, 3, 0, 255, 1, 4, 0, 255, 1})
	f.Add(uint8(64), []byte{1, 1, 7, 7, 5, 1, 3, 0, 2, 2, 9, 9})
	f.Add(uint8(63), []byte{6, 0, 1, 1, 6, 1, 0, 0, 0, 2, 0, 0})
	f.Add(uint8(12), []byte{5, 0, 200, 0, 6, 2, 2, 2, 4, 1, 0, 0, 3, 1, 1, 0})
	f.Fuzz(func(t *testing.T, wRaw uint8, script []byte) {
		w := word.Width(wRaw%64 + 1)
		m, err := NewNativeMem(w)
		if err != nil {
			t.Fatal(err)
		}
		const nCells = 3
		var cells [nCells]Cell
		var model [nCells]word.Word
		for i := range cells {
			cells[i] = m.NewCell("f", Shared, 0)
		}
		env := m.Env(0)
		dcasOK := w < word.MaxBits
		if dcasOK {
			if err := m.EnableDCAS(); err != nil {
				t.Fatal(err)
			}
		}
		mod := new(big.Int).Lsh(big.NewInt(1), uint(w))
		for step := 0; len(script) >= 4; step++ {
			code, ci, a1, a2 := script[0], script[1], script[2], script[3]
			script = script[4:]
			i := int(ci) % nCells
			c := cells[i]
			// Spread the two argument bytes across the word so wide widths
			// see high bits too.
			arg := word.Word(a1)<<56 | word.Word(a2)<<31 | word.Word(a1)<<8 | word.Word(a2)
			arg2 := word.Word(a2)<<56 | word.Word(a1)<<31 | word.Word(a2)<<8 | word.Word(a1)
			check := func(what string, got, want word.Word) {
				t.Helper()
				if got != want {
					t.Fatalf("step %d %s on cell %d (w=%d): got %#x, want %#x", step, what, i, w, got, want)
				}
			}
			switch code % 7 {
			case 0:
				check("Read", env.Read(c), model[i])
			case 1:
				env.Write(c, arg)
				model[i], _ = refApply(Write(arg), model[i], w)
			case 2:
				ret := env.Swap(c, arg)
				var want word.Word
				model[i], want = refApply(Swap(arg), model[i], w)
				check("Swap return", ret, want)
			case 3:
				ret := env.Add(c, arg)
				var want word.Word
				model[i], want = refApply(Add(arg), model[i], w)
				check("Add return", ret, want)
			case 4:
				ret := env.CAS(c, arg, arg2)
				var want word.Word
				model[i], want = refApply(CAS(arg, arg2), model[i], w)
				check("CAS return", ret, want)
			case 5:
				op := Custom("affine", func(v word.Word) (word.Word, word.Word) {
					return v*3 + arg, v
				})
				ret := env.Apply(c, op)
				check("Custom return", ret, model[i])
				next := new(big.Int).SetUint64(model[i])
				next.Mul(next, big.NewInt(3))
				next.Add(next, new(big.Int).SetUint64(arg))
				model[i] = next.Mod(next, mod).Uint64()
			case 6:
				if !dcasOK {
					check("Read", env.Read(c), model[i])
					continue
				}
				j := (i + 1) % nCells
				e1, e2 := arg, arg2
				if a1&1 == 1 {
					// Half the attempts are forced matches so both outcomes
					// stay well represented.
					e1, e2 = model[i], model[j]
				}
				ok := env.(DoubleEnv).DCAS(c, e1, arg2, cells[j], e2, arg)
				wantOK := w.Trunc(e1) == model[i] && w.Trunc(e2) == model[j]
				if ok != wantOK {
					t.Fatalf("step %d DCAS(%d,%d) (w=%d): got %v, want %v", step, i, j, w, ok, wantOK)
				}
				if ok {
					model[i], model[j] = w.Trunc(arg2), w.Trunc(arg)
				}
			}
		}
		for i, c := range cells {
			if got := env.Read(c); got != model[i] {
				t.Fatalf("final state of cell %d (w=%d): got %#x, model %#x", i, w, got, model[i])
			}
		}
	})
}
