package memory

import (
	"math/big"
	"testing"

	"rme/internal/word"
)

// refApply recomputes Apply's contract with math/big arithmetic mod 2^w — an
// independent reference that cannot share Apply's masking bugs.
func refApply(op Op, cur word.Word, w word.Width) (next, ret word.Word) {
	mod := new(big.Int).Lsh(big.NewInt(1), uint(w))
	red := func(v word.Word) word.Word {
		r := new(big.Int).Mod(new(big.Int).SetUint64(v), mod)
		return r.Uint64()
	}
	cur = red(cur)
	switch op.Code {
	case OpRead:
		return cur, cur
	case OpWrite:
		return red(op.Arg), 0
	case OpSwap:
		return red(op.Arg), cur
	case OpAdd:
		sum := new(big.Int).Add(new(big.Int).SetUint64(cur), new(big.Int).SetUint64(op.Arg))
		return sum.Mod(sum, mod).Uint64(), cur
	case OpCAS:
		if cur == red(op.Arg) {
			return red(op.Arg2), cur
		}
		return cur, cur
	default:
		panic("unreachable")
	}
}

// FuzzApplyTruncation differentially checks Apply — the single source of
// truth for operation semantics in both runtimes — against the big.Int
// reference at every width from 1 to 64 bits, and asserts the w-bit domain
// invariant the paper's model depends on: no operation can ever leave more
// than w bits of state in a cell.
func FuzzApplyTruncation(f *testing.F) {
	f.Add(uint8(1), uint64(0), uint64(0), uint64(0), uint8(8))
	f.Add(uint8(4), uint64(1), uint64(0), ^uint64(0), uint8(1))
	f.Add(uint8(5), uint64(0x100), uint64(0xff), uint64(0), uint8(8))
	f.Add(uint8(4), ^uint64(0), uint64(0), ^uint64(0), uint8(64))
	f.Add(uint8(3), uint64(1)<<63, uint64(0), uint64(5), uint8(63))
	f.Fuzz(func(t *testing.T, code uint8, arg, arg2, cur uint64, wRaw uint8) {
		w := word.Width(wRaw%64 + 1)
		op := Op{Code: OpCode(code%5 + 1), Arg: arg, Arg2: arg2}
		next, ret := Apply(op, cur, w)
		if !w.Fits(next) {
			t.Fatalf("%s at w=%d left %d bits: next=%#x", op, w, 64-uint64(w), next)
		}
		wantNext, wantRet := refApply(op, cur, w)
		if next != wantNext || ret != wantRet {
			t.Fatalf("%s(cur=%#x, w=%d) = (next=%#x, ret=%#x), reference (%#x, %#x)",
				op, cur, w, next, ret, wantNext, wantRet)
		}
		// A CAS must succeed (return its expected value) iff the truncated
		// expected matched the truncated current value.
		if op.Code == OpCAS {
			matched := w.Trunc(cur) == w.Trunc(arg)
			if succeeded := ret == w.Trunc(arg); succeeded != matched {
				t.Fatalf("CAS success=%v but expected-matches-current=%v (cur=%#x arg=%#x w=%d)",
					succeeded, matched, cur, arg, w)
			}
		}
	})
}

// FuzzCustomTruncation checks that custom transitions — the paper's
// "arbitrary atomic operations" — cannot smuggle extra bits into a cell:
// whatever the transition returns is truncated to w bits before it is stored.
func FuzzCustomTruncation(f *testing.F) {
	f.Add(uint64(0), uint64(1), uint8(8))
	f.Add(^uint64(0), ^uint64(0), uint8(3))
	f.Fuzz(func(t *testing.T, cur, leak uint64, wRaw uint8) {
		w := word.Width(wRaw%64 + 1)
		op := Custom("leak", func(v word.Word) (word.Word, word.Word) {
			return v | leak, v
		})
		next, ret := Apply(op, cur, w)
		if !w.Fits(next) {
			t.Fatalf("custom op stored %#x at w=%d", next, w)
		}
		if want := w.Trunc(w.Trunc(cur) | leak); next != want {
			t.Fatalf("custom next = %#x, want %#x", next, want)
		}
		if ret != w.Trunc(cur) {
			t.Fatalf("custom saw cur=%#x, want the truncated %#x", ret, w.Trunc(cur))
		}
	})
}
