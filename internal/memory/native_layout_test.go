package memory

import (
	"testing"
	"unsafe"
)

// TestNativeCellPadding pins the layout that defeats false sharing: the hot
// atomic word sits at offset zero and the struct fills at least a cache
// line, so separately allocated cells can never have their atomic words on
// one coherence line (Go's allocator never splits an object across size
// classes smaller than the object).
func TestNativeCellPadding(t *testing.T) {
	var c nativeCell
	if off := unsafe.Offsetof(c.v); off != 0 {
		t.Errorf("nativeCell.v at offset %d, want 0", off)
	}
	if sz := unsafe.Sizeof(c); sz < cacheLineSize {
		t.Errorf("nativeCell is %d bytes, want >= %d (cache line)", sz, cacheLineSize)
	}
}

// TestNativeCellsOnDistinctLines allocates a run of cells the way algorithms
// do and verifies no two atomic words land within one cache line of each
// other.
func TestNativeCellsOnDistinctLines(t *testing.T) {
	m, err := NewNativeMem(64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	addrs := make([]uintptr, n)
	for i := 0; i < n; i++ {
		nc := m.NewCell("c", Shared, 0).(*nativeCell)
		addrs[i] = uintptr(unsafe.Pointer(&nc.v))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if addrs[i]/cacheLineSize == addrs[j]/cacheLineSize {
				t.Fatalf("cells %d and %d share a cache line (%#x, %#x)", i, j, addrs[i], addrs[j])
			}
		}
	}
}
