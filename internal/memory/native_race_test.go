package memory

import (
	"sync"
	"testing"

	"rme/internal/word"
)

// TestNativeSpinUntilMultiConcurrent has one waiter watch a vector of flag
// cells while a writer per cell raises its flag after real scheduling
// churn; the waiter must return exactly the raised values. Run under -race
// this doubles as a data-race check on the multi-cell polling loop.
func TestNativeSpinUntilMultiConcurrent(t *testing.T) {
	m, err := NewNativeMem(16)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = m.NewCell("flag", Shared, 0)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			env := m.Env(i)
			// Churn before raising the flag so the waiter observes partial
			// vectors along the way.
			for j := 0; j < 100; j++ {
				env.Add(cells[i], 0)
			}
			env.Write(cells[i], word.Word(i+1))
		}()
	}
	env := m.Env(n)
	vals := env.SpinUntilMulti(cells, func(vs []word.Word) bool {
		for _, v := range vs {
			if v == 0 {
				return false
			}
		}
		return true
	})
	wg.Wait()
	for i, v := range vals {
		if v != word.Word(i+1) {
			t.Errorf("vals[%d] = %d, want %d", i, v, i+1)
		}
	}
}

// TestNativeSpinUntilMultiSum exercises the predicate over aggregate state:
// the waiter releases once the vector of per-process counters reaches a
// target sum, while writers keep incrementing past it.
func TestNativeSpinUntilMultiSum(t *testing.T) {
	m, err := NewNativeMem(32)
	if err != nil {
		t.Fatal(err)
	}
	const (
		n      = 4
		per    = 200
		target = n * per / 2
	)
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = m.NewCell("ctr", Shared, 0)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			env := m.Env(i)
			for j := 0; j < per; j++ {
				env.Add(cells[i], 1)
			}
		}()
	}
	vals := m.Env(n).SpinUntilMulti(cells, func(vs []word.Word) bool {
		var sum word.Word
		for _, v := range vs {
			sum += v
		}
		return sum >= target
	})
	wg.Wait()
	var sum word.Word
	for _, v := range vals {
		sum += v
	}
	if sum < target {
		t.Fatalf("released at sum %d, want >= %d", sum, target)
	}
}

// TestNativeApplyCustomConcurrent hammers one cell with custom transitions
// (incrementing the high half) racing plain fetch-and-adds (incrementing
// the low half). The CAS shim must not lose either kind of update.
func TestNativeApplyCustomConcurrent(t *testing.T) {
	m, err := NewNativeMem(64)
	if err != nil {
		t.Fatal(err)
	}
	c := m.NewCell("packed", Shared, 0)
	const (
		workers = 4
		per     = 500
	)
	incHigh := Custom("inc-high", func(v word.Word) (word.Word, word.Word) {
		return v + 1<<32, v >> 32
	})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			env := m.Env(i)
			for j := 0; j < per; j++ {
				if i%2 == 0 {
					env.Apply(c, incHigh)
				} else {
					env.Add(c, 1)
				}
			}
		}()
	}
	wg.Wait()
	v := m.Env(0).Read(c)
	high, low := v>>32, v&0xffffffff
	wantHigh := word.Word(workers / 2 * per)
	wantLow := word.Word((workers - workers/2) * per)
	if high != wantHigh || low != wantLow {
		t.Fatalf("packed counters = (%d, %d), want (%d, %d)", high, low, wantHigh, wantLow)
	}
}

// TestNativeApplyCustomReturnUnique uses a custom op as a ticket dispenser
// under contention: every return value must be unique and the final value
// must equal the number of draws (linearizability of the Apply shim).
func TestNativeApplyCustomReturnUnique(t *testing.T) {
	m, err := NewNativeMem(24)
	if err != nil {
		t.Fatal(err)
	}
	c := m.NewCell("ticket", Shared, 0)
	draw := Custom("draw", func(v word.Word) (word.Word, word.Word) {
		return v + 1, v
	})
	const (
		workers = 4
		per     = 400
	)
	got := make([][]word.Word, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			env := m.Env(i)
			for j := 0; j < per; j++ {
				got[i] = append(got[i], env.Apply(c, draw))
			}
		}()
	}
	wg.Wait()
	seen := make(map[word.Word]bool, workers*per)
	for _, tickets := range got {
		for _, v := range tickets {
			if seen[v] {
				t.Fatalf("ticket %d issued twice", v)
			}
			seen[v] = true
		}
	}
	if final := m.Env(0).Read(c); final != workers*per {
		t.Fatalf("dispenser = %d, want %d", final, workers*per)
	}
}
