// Package memory defines the shared-memory operation model of the paper:
// base objects (cells) storing w-bit values that support atomic operations,
// each operation touching exactly one cell.
//
// Two runtimes implement these interfaces:
//
//   - the deterministic simulator (package sim), which accounts remote memory
//     references (RMRs) under the CC and DSM models and supports crash steps
//     and adversarial scheduling; and
//   - the native runtime in this package, which maps cells onto sync/atomic
//     words for real-hardware throughput benchmarks.
//
// Algorithms are written once against Env/Allocator and run under both.
package memory

import (
	"fmt"

	"rme/internal/word"
)

// OpCode identifies an atomic operation type.
type OpCode int

// Supported operation codes. OpCustom covers the paper's "arbitrary atomic
// operations": any deterministic function of the cell's current value.
const (
	OpRead OpCode = iota + 1
	OpWrite
	OpSwap // fetch-and-store
	OpAdd  // fetch-and-add (mod 2^w)
	OpCAS  // compare-and-swap
	OpCustom
)

// String returns the conventional name of the operation.
func (c OpCode) String() string {
	switch c {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSwap:
		return "FAS"
	case OpAdd:
		return "FAA"
	case OpCAS:
		return "CAS"
	case OpCustom:
		return "custom"
	default:
		return fmt.Sprintf("op(%d)", int(c))
	}
}

// Transition is the semantics of a custom atomic operation: given the current
// cell value it returns the new cell value and the value returned to the
// caller. Transitions must be deterministic and side-effect free, or replay
// (and hence the lower-bound adversary) breaks.
type Transition func(cur word.Word) (next, ret word.Word)

// Op is a single atomic operation on a single cell.
type Op struct {
	Code OpCode
	Arg  word.Word // write/swap value, add delta, CAS expected
	Arg2 word.Word // CAS replacement
	F    Transition
	// Name labels custom ops in traces.
	Name string
}

// IsRead reports whether the operation never changes the cell. Reads are the
// only operations that can avoid an RMR in the CC model.
func (op Op) IsRead() bool { return op.Code == OpRead }

// String renders the op for traces.
func (op Op) String() string {
	switch op.Code {
	case OpRead:
		return "read"
	case OpWrite:
		return fmt.Sprintf("write(%d)", op.Arg)
	case OpSwap:
		return fmt.Sprintf("FAS(%d)", op.Arg)
	case OpAdd:
		return fmt.Sprintf("FAA(%d)", op.Arg)
	case OpCAS:
		return fmt.Sprintf("CAS(%d,%d)", op.Arg, op.Arg2)
	case OpCustom:
		if op.Name != "" {
			return op.Name
		}
		return "custom"
	default:
		return op.Code.String()
	}
}

// Apply executes the operation against the current value of a w-bit cell and
// returns the new cell value and the value handed back to the caller. This is
// the single source of truth for operation semantics; both runtimes use it.
//
// Return conventions:
//
//	read       -> ret = cur
//	write(v)   -> ret = 0
//	FAS(v)     -> ret = cur
//	FAA(d)     -> ret = cur, next = (cur+d) mod 2^w
//	CAS(e, v)  -> ret = cur, next = v if cur == e else cur
//	custom f   -> next, ret = f(cur)
func Apply(op Op, cur word.Word, w word.Width) (next, ret word.Word) {
	cur = w.Trunc(cur)
	switch op.Code {
	case OpRead:
		return cur, cur
	case OpWrite:
		return w.Trunc(op.Arg), 0
	case OpSwap:
		return w.Trunc(op.Arg), cur
	case OpAdd:
		return w.Add(cur, op.Arg), cur
	case OpCAS:
		if cur == w.Trunc(op.Arg) {
			return w.Trunc(op.Arg2), cur
		}
		return cur, cur
	case OpCustom:
		next, ret = op.F(cur)
		return w.Trunc(next), ret
	default:
		panic(fmt.Sprintf("memory: invalid op code %d", op.Code))
	}
}

// Read returns a read operation.
func Read() Op { return Op{Code: OpRead} }

// Write returns a write operation storing v.
func Write(v word.Word) Op { return Op{Code: OpWrite, Arg: v} }

// Swap returns a fetch-and-store operation storing v.
func Swap(v word.Word) Op { return Op{Code: OpSwap, Arg: v} }

// Add returns a fetch-and-add operation adding d mod 2^w.
func Add(d word.Word) Op { return Op{Code: OpAdd, Arg: d} }

// CAS returns a compare-and-swap operation replacing expected with
// replacement; it "succeeds" when the returned prior value equals expected.
func CAS(expected, replacement word.Word) Op {
	return Op{Code: OpCAS, Arg: expected, Arg2: replacement}
}

// Custom wraps an arbitrary deterministic transition as an atomic operation.
func Custom(name string, f Transition) Op { return Op{Code: OpCustom, F: f, Name: name} }
