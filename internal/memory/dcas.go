package memory

import (
	"fmt"
	"sync/atomic"

	"rme/internal/word"
)

// Double compare-and-swap built from single-word CAS, in the style of
// descriptor-based multi-word CAS constructions (Harris et al.'s RDCSS,
// pmwcas): the operating process publishes a descriptor recording both
// cells with their expected and new values, installs a marked handle to it
// in each cell in CellID order, decides, and releases. While a handle is
// installed, readers *read through* the descriptor — they look up the
// logical value (expected before the decision, new after a successful one)
// without waiting — so reads and spins stay non-blocking. Mutating
// operations on a claimed cell retry until the owner releases it.
//
// This shim deliberately keeps installation, decision, and release with the
// owning process instead of letting helpers complete foreign operations
// (full pmwcas-style helping needs conditional-CAS machinery or epoch
// reclamation to stop a stalled helper from re-installing a handle for an
// already-decided descriptor). The consequences are documented in DESIGN.md:
// a DCAS owner descheduled mid-operation delays conflicting *writers* of the
// two claimed cells, though never readers; and crash injection (see
// mutex.NativeLock) fires only between env operations, so a crash can never
// orphan a half-installed descriptor.
//
// Handles occupy the word's top bit, so DCAS requires width <= 63; at the
// full 64 bits the paper's model gives CAS enough room that none of the
// implemented algorithms needs DCAS anyway (qword's protocol runs entirely
// on single-cell custom ops through the Apply shim in native.go).

// DoubleEnv is the optional extension interface for environments that
// support a two-cell double compare-and-swap. Of the built-in runtimes only
// the native backend implements it, after (*NativeMem).EnableDCAS.
type DoubleEnv interface {
	// DCAS atomically checks c1==e1 && c2==e2 and, if both hold, writes
	// n1 and n2. It reports whether the swap took effect.
	DCAS(c1 Cell, e1, n1 word.Word, c2 Cell, e2, n2 word.Word) bool
}

// Handle layout (bit 63 = mark, then the slot, then the generation) and the
// packing of a descriptor's state word as gen<<2|status.
const (
	dcasMark     word.Word = 1 << 63
	dcasSlotBits           = 12
	dcasMaxSlots           = 1 << dcasSlotBits
	dcasGenBits            = 63 - dcasSlotBits
	dcasGenMask  word.Word = (1 << dcasGenBits) - 1
)

// Descriptor status, in the low two bits of dcasDesc.state.
const (
	dcasUndecided word.Word = 0 // handles may be installed; logical value = expected
	dcasSucceeded word.Word = 1 // logical value = new
	dcasFailed    word.Word = 2 // logical value = expected
	dcasPreparing word.Word = 3 // owner is (re)writing fields; never visible via a handle
)

// EnableDCAS switches the allocator into DCAS mode: bit 63 of every cell is
// reserved for descriptor handles (so the word width must be at most 63),
// and plain writes route through mark-respecting CAS loops. Idempotent and
// safe to call concurrently with ongoing operations — existing cell values
// already fit in 63 bits, so no handle can be confused with data.
func (m *NativeMem) EnableDCAS() error {
	if m.width > word.MaxBits-1 {
		return fmt.Errorf("memory: DCAS needs a reserved mark bit; width %d leaves none (max %d)",
			m.width, word.MaxBits-1)
	}
	if m.dcas.Load() == nil {
		m.dcas.CompareAndSwap(nil, &dcasTable{})
	}
	return nil
}

// DCASEnabled reports whether EnableDCAS has been called.
func (m *NativeMem) DCASEnabled() bool { return m.dcas.Load() != nil }

// dcasTable maps handle slots to descriptors. Slots are assigned to
// environments lazily, one per process, and never freed; generations make
// handles from earlier operations on the same slot detectably stale.
type dcasTable struct {
	next  atomic.Int64
	descs [dcasMaxSlots]atomic.Pointer[dcasDesc]
}

// dcasDesc is one process's operation descriptor. Only the owner writes any
// field; readers snapshot fields between two generation-verified loads of
// state (the owner moves state to dcasPreparing under the *next* generation
// before touching fields again, so a stable generation brackets a stable
// snapshot).
type dcasDesc struct {
	state          atomic.Uint64 // gen<<2 | status
	a, b           atomic.Pointer[nativeCell]
	ea, na, eb, nb atomic.Uint64
}

func dcasHandle(slot int, gen word.Word) word.Word {
	return dcasMark | word.Word(slot)<<dcasGenBits | gen
}

func dcasSlotOf(h word.Word) int      { return int(h >> dcasGenBits & (dcasMaxSlots - 1)) }
func dcasGenOf(h word.Word) word.Word { return h & dcasGenMask }

// DCAS implements DoubleEnv. The two cells must be distinct, and the
// allocator must be in DCAS mode.
func (e *nativeEnv) DCAS(c1 Cell, e1, n1 word.Word, c2 Cell, e2, n2 word.Word) bool {
	t := e.mem.dcas.Load()
	if t == nil {
		panic("memory: DCAS requires (*NativeMem).EnableDCAS")
	}
	nc1, nc2 := e.cell(c1), e.cell(c2)
	if nc1 == nc2 {
		panic(fmt.Sprintf("memory: DCAS cells must be distinct (got %q twice)", nc1.label))
	}
	w := e.mem.width
	e1, n1 = w.Trunc(e1), w.Trunc(n1)
	e2, n2 = w.Trunc(e2), w.Trunc(n2)

	// Claim cells in CellID order so concurrent DCAS owners cannot deadlock:
	// every waiter holds only lower-numbered cells than the one it waits on.
	a, ea, na, b, eb, nb := nc1, e1, n1, nc2, e2, n2
	if b.id < a.id {
		a, ea, na, b, eb, nb = nc2, e2, n2, nc1, e1, n1
	}

	d, h := e.openDesc(t, a, ea, na, b, eb, nb)
	gen := dcasGenOf(h)
	if !installHandle(a, ea, h) {
		d.state.Store(gen<<2 | dcasFailed)
		return false
	}
	if !installHandle(b, eb, h) {
		d.state.Store(gen<<2 | dcasFailed)
		a.v.Store(ea) // roll back; only the owner ever writes a claimed cell
		return false
	}
	// Both cells claimed: the operation linearizes at this store. Readers
	// that still see a handle read the new values through the descriptor.
	d.state.Store(gen<<2 | dcasSucceeded)
	a.v.Store(na)
	b.v.Store(nb)
	return true
}

// openDesc readies this environment's descriptor for a fresh operation and
// returns it with its handle. The dcasPreparing phase under the new
// generation invalidates any reader snapshot of the previous operation's
// fields before they are overwritten.
func (e *nativeEnv) openDesc(t *dcasTable, a *nativeCell, ea, na word.Word, b *nativeCell, eb, nb word.Word) (*dcasDesc, word.Word) {
	slot := e.dcasSlot
	if slot < 0 {
		n := t.next.Add(1) - 1
		if n >= dcasMaxSlots {
			panic(fmt.Sprintf("memory: more than %d processes performing DCAS", dcasMaxSlots))
		}
		slot = int(n)
		e.dcasSlot = slot
		t.descs[slot].Store(&dcasDesc{})
	}
	d := t.descs[slot].Load()
	gen := (d.state.Load()>>2 + 1) & dcasGenMask
	d.state.Store(gen<<2 | dcasPreparing)
	d.a.Store(a)
	d.ea.Store(ea)
	d.na.Store(na)
	d.b.Store(b)
	d.eb.Store(eb)
	d.nb.Store(nb)
	d.state.Store(gen<<2 | dcasUndecided)
	return d, dcasHandle(slot, gen)
}

// installHandle claims nc for the descriptor by swapping its expected value
// for the handle. It waits out foreign handles (their owners release in
// bounded steps) and reports false once the cell's data value differs from
// the expectation.
func installHandle(nc *nativeCell, expected, h word.Word) bool {
	for i := 0; ; i++ {
		cur := nc.v.Load()
		if cur&dcasMark != 0 {
			spinPause(i)
			continue
		}
		if cur != expected {
			return false
		}
		if nc.v.CompareAndSwap(expected, h) {
			return true
		}
	}
}

// resolve returns the current logical value of a cell whose raw word may
// hold a descriptor handle. Readers never wait for the owner: an installed
// handle is dereferenced to the expected (undecided/failed) or new
// (succeeded) value for this cell.
func (t *dcasTable) resolve(nc *nativeCell) word.Word {
	for i := 0; ; i++ {
		raw := nc.v.Load()
		if raw&dcasMark == 0 {
			return raw
		}
		if v, ok := t.readThrough(nc, raw); ok {
			return v
		}
		// Stale handle: the operation finished between our cell read and the
		// descriptor read, so the next cell read sees the released value.
		spinPause(i)
	}
}

// readThrough computes the logical value behind handle h installed in nc.
// It fails (second result false) when the descriptor has already moved on
// to a later generation, in which case the cell itself no longer holds h.
func (t *dcasTable) readThrough(nc *nativeCell, h word.Word) (word.Word, bool) {
	d := t.descs[dcasSlotOf(h)].Load()
	if d == nil {
		return 0, false
	}
	gen := dcasGenOf(h)
	if d.state.Load()>>2 != gen {
		return 0, false
	}
	// The generation matched, so the fields below belong to h's operation —
	// unless the owner starts its next operation mid-snapshot, which the
	// second state load detects (the owner re-enters dcasPreparing under a
	// new generation before rewriting any field).
	a, b := d.a.Load(), d.b.Load()
	ea, na := d.ea.Load(), d.na.Load()
	eb, nb := d.eb.Load(), d.nb.Load()
	st := d.state.Load()
	if st>>2 != gen {
		return 0, false
	}
	status := word.Word(st) & 3
	if status == dcasPreparing {
		// Unreachable for a handle-bearing generation (handles are installed
		// only after the undecided publish); retry defensively.
		return 0, false
	}
	switch nc {
	case a:
		if status == dcasSucceeded {
			return na, true
		}
		return ea, true
	case b:
		if status == dcasSucceeded {
			return nb, true
		}
		return eb, true
	}
	return 0, false
}
