package memory

import (
	"sync"
	"testing"

	"rme/internal/word"
)

func newDCASMem(t testing.TB, w word.Width) *NativeMem {
	t.Helper()
	m, err := NewNativeMem(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnableDCAS(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDCASBasic(t *testing.T) {
	m := newDCASMem(t, 16)
	a := m.NewCell("a", Shared, 1)
	b := m.NewCell("b", Shared, 2)
	env := m.Env(0).(DoubleEnv)
	rd := m.Env(0)

	if !env.DCAS(a, 1, 10, b, 2, 20) {
		t.Fatal("matching DCAS failed")
	}
	if got, got2 := rd.Read(a), rd.Read(b); got != 10 || got2 != 20 {
		t.Fatalf("after DCAS: a=%d b=%d, want 10, 20", got, got2)
	}
	if env.DCAS(a, 10, 11, b, 99, 21) {
		t.Fatal("DCAS with wrong second expectation succeeded")
	}
	if got, got2 := rd.Read(a), rd.Read(b); got != 10 || got2 != 20 {
		t.Fatalf("failed DCAS mutated cells: a=%d b=%d", got, got2)
	}
	if env.DCAS(a, 99, 11, b, 20, 21) {
		t.Fatal("DCAS with wrong first expectation succeeded")
	}
	// Argument order must not matter for the outcome, only CellID claiming
	// order is internal.
	if !env.DCAS(b, 20, 2, a, 10, 1) {
		t.Fatal("reversed-argument DCAS failed")
	}
	if got, got2 := rd.Read(a), rd.Read(b); got != 1 || got2 != 2 {
		t.Fatalf("after reversed DCAS: a=%d b=%d, want 1, 2", got, got2)
	}
}

func TestDCASTruncatesToWidth(t *testing.T) {
	m := newDCASMem(t, 8)
	a := m.NewCell("a", Shared, 0)
	b := m.NewCell("b", Shared, 0)
	env := m.Env(0).(DoubleEnv)
	// 0x100 truncates to 0, 0x1ff to 0xff: the swap must match and store
	// within the 8-bit domain.
	if !env.DCAS(a, 0x100, 0x1ff, b, 0, 1) {
		t.Fatal("truncated expectation did not match")
	}
	if got := m.Env(0).Read(a); got != 0xff {
		t.Fatalf("a = %#x, want 0xff", got)
	}
}

func TestDCASRejectsWidth64(t *testing.T) {
	m, err := NewNativeMem(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnableDCAS(); err == nil {
		t.Fatal("EnableDCAS at width 64 must fail: no bit left for the mark")
	}
	if m.DCASEnabled() {
		t.Fatal("failed EnableDCAS left DCAS mode on")
	}
	if _, err := NewNativeMem(63); err != nil {
		t.Fatal(err)
	}
}

func TestDCASPanicsWithoutEnable(t *testing.T) {
	m, err := NewNativeMem(32)
	if err != nil {
		t.Fatal(err)
	}
	a := m.NewCell("a", Shared, 0)
	b := m.NewCell("b", Shared, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("DCAS without EnableDCAS must panic")
		}
	}()
	m.Env(0).(DoubleEnv).DCAS(a, 0, 1, b, 0, 1)
}

func TestDCASPanicsOnSameCell(t *testing.T) {
	m := newDCASMem(t, 32)
	a := m.NewCell("a", Shared, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("DCAS on one cell twice must panic")
		}
	}()
	m.Env(0).(DoubleEnv).DCAS(a, 0, 1, a, 0, 1)
}

// TestDCASLockstep drives concurrent DCAS owners over the same pair: each
// success advances both counters together, so the cells can never drift
// apart and the final value equals the global success count.
func TestDCASLockstep(t *testing.T) {
	m := newDCASMem(t, 32)
	a := m.NewCell("a", Shared, 0)
	b := m.NewCell("b", Shared, 0)
	const (
		workers   = 4
		perWorker = 300
	)
	var wg sync.WaitGroup
	wins := make([]int, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			env := m.Env(i)
			denv := env.(DoubleEnv)
			for w := 0; w < perWorker; {
				v := env.Read(a)
				if denv.DCAS(a, v, v+1, b, v, v+1) {
					w++
					wins[i]++
				}
			}
		}()
	}
	wg.Wait()
	total := word.Word(0)
	for _, w := range wins {
		total += word.Word(w)
	}
	if want := word.Word(workers * perWorker); total != want {
		t.Fatalf("successes = %d, want %d", total, want)
	}
	rd := m.Env(0)
	if ga, gb := rd.Read(a), rd.Read(b); ga != total || gb != total {
		t.Fatalf("cells drifted: a=%d b=%d, want both %d", ga, gb, total)
	}
}

// TestDCASAgainstSingleCellOps mixes DCAS with plain CAS/Add/Write on the
// same cells: a gate cell toggled by a single-cell mutator arbitrates which
// DCAS attempts may succeed, and a tally cell counts exactly the successes.
func TestDCASAgainstSingleCellOps(t *testing.T) {
	m := newDCASMem(t, 20)
	gate := m.NewCell("gate", Shared, 0)
	tally := m.NewCell("tally", Shared, 0)
	noise := m.NewCell("noise", Shared, 0)
	const (
		workers  = 3
		attempts = 500
	)
	stop := make(chan struct{})
	var togglerWG sync.WaitGroup
	togglerWG.Add(1)
	go func() {
		// Toggle the gate between 0 and 1 with single-cell ops, and keep
		// unrelated traffic on a third cell so unmarked fast paths stay hot.
		defer togglerWG.Done()
		env := m.Env(workers)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			env.CAS(gate, word.Word(i%2), word.Word((i+1)%2))
			env.Add(noise, 3)
		}
	}()

	var wg sync.WaitGroup
	var succ [workers]int
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			env := m.Env(i)
			denv := env.(DoubleEnv)
			for a := 0; a < attempts; a++ {
				g := env.Read(gate)
				cur := env.Read(tally)
				if denv.DCAS(gate, g, g, tally, cur, cur+1) {
					succ[i]++
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	togglerWG.Wait()

	total := 0
	for _, s := range succ {
		total += s
	}
	if got := m.Env(0).Read(tally); got != word.Word(total) {
		t.Fatalf("tally = %d, but %d DCAS attempts reported success", got, total)
	}
}

// TestDCASGenerationReuse reuses one environment's descriptor slot across
// many sequential operations while a reader spins through any installed
// handles; stale generations must never resolve to garbage.
func TestDCASGenerationReuse(t *testing.T) {
	m := newDCASMem(t, 16)
	a := m.NewCell("a", Shared, 0)
	b := m.NewCell("b", Shared, 0)
	const rounds = 2000
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		env := m.Env(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			va, vb := env.Read(a), env.Read(b)
			if va&dcasMark != 0 || vb&dcasMark != 0 {
				t.Errorf("reader saw a raw handle: a=%#x b=%#x", va, vb)
				return
			}
		}
	}()
	env := m.Env(0)
	denv := env.(DoubleEnv)
	for i := word.Word(0); i < rounds; i++ {
		if !denv.DCAS(a, i, i+1, b, i, i+1) {
			t.Fatalf("round %d: sequential DCAS failed", i)
		}
	}
	close(stop)
	readerWG.Wait()
	if ga, gb := env.Read(a), env.Read(b); ga != rounds || gb != rounds {
		t.Fatalf("a=%d b=%d, want both %d", ga, gb, rounds)
	}
}

// TestDCASSpinUntilReadsThrough checks that a waiter spinning on a cell
// observes a value committed by DCAS (via read-through or after release).
func TestDCASSpinUntilReadsThrough(t *testing.T) {
	m := newDCASMem(t, 16)
	a := m.NewCell("a", Shared, 0)
	b := m.NewCell("b", Shared, 0)
	done := make(chan word.Word, 1)
	go func() {
		env := m.Env(1)
		done <- env.SpinUntil(b, func(v word.Word) bool { return v == 7 })
	}()
	env := m.Env(0).(DoubleEnv)
	for !env.DCAS(a, 0, 1, b, 0, 7) {
	}
	if got := <-done; got != 7 {
		t.Fatalf("SpinUntil through DCAS = %d, want 7", got)
	}
}
