package memory

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rme/internal/word"
)

// NativeMem is the real-hardware runtime: cells are sync/atomic words, and
// Env operations execute immediately on the calling goroutine. The same
// algorithm sources that run under the simulator run here for wall-clock
// throughput and latency measurement (cmd/rmenative, BenchmarkNativeLock*).
// RMRs are not (and cannot be) observed here — cache-line traffic is the
// hardware's business — which is exactly what makes the correlation against
// simulated CC-RMR counts (EXPERIMENTS.md E14) an experiment rather than a
// tautology. Crashes are injectable only via the mutex.NativeLock adapter's
// panic-based fault injector, not by the memory layer itself.
type NativeMem struct {
	width word.Width
	mu    sync.Mutex // guards cells/slots during allocation
	cells []*nativeCell
	dcas  atomic.Pointer[dcasTable] // non-nil once EnableDCAS succeeds
}

var _ Allocator = (*NativeMem)(nil)

// NewNativeMem returns a native allocator with the given word width.
func NewNativeMem(w word.Width) (*NativeMem, error) {
	if !w.Valid() {
		return nil, fmt.Errorf("memory: invalid word width %d", w)
	}
	return &NativeMem{width: w}, nil
}

// Width returns the configured word size.
func (m *NativeMem) Width() word.Width { return m.width }

// NewCell allocates a native atomic cell.
func (m *NativeMem) NewCell(label string, owner int, init word.Word) Cell {
	if !m.width.Fits(init) {
		panic(fmt.Sprintf("memory: initial value %d does not fit in %d bits", init, m.width))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &nativeCell{id: len(m.cells), owner: owner, label: label}
	c.v.Store(init)
	m.cells = append(m.cells, c)
	return c
}

// Env returns the native environment for process id.
func (m *NativeMem) Env(id int) Env { return &nativeEnv{id: id, mem: m, dcasSlot: -1} }

// nativeCell is one base object on the native runtime. The atomic word sits
// first, followed by padding out to a full cache line: cells are allocated
// individually, and without the padding Go's size classes pack several cells
// into one 64-byte line, so contending processes spinning on *different*
// cells ping-pong the same line (false sharing). The cold metadata rides in
// the tail of the padded block.
type nativeCell struct {
	v     atomic.Uint64
	_     [cacheLineSize - 8]byte // the hot word owns its cache line
	id    int
	owner int
	label string
}

// cacheLineSize is the coherence granularity assumed for padding. 64 bytes
// covers x86-64 and most arm64 parts; oversizing merely wastes a few bytes
// per cell.
const cacheLineSize = 64

var _ Cell = (*nativeCell)(nil)

func (c *nativeCell) CellID() int   { return c.id }
func (c *nativeCell) Owner() int    { return c.owner }
func (c *nativeCell) Label() string { return c.label }

// Adaptive spin policy for SpinUntil/SpinUntilMulti: a short tight-poll
// phase (the value usually flips within a handoff), then cooperative yields
// (essential when goroutines outnumber GOMAXPROCS — a spinning waiter must
// let its waker run), then exponentially growing sleeps capped low enough
// that handoff latency stays in the tens of microseconds. Polling-based
// waiting cannot lose wakeups, so sleeping is always safe.
const (
	spinActive   = 64  // tight polls before the first yield
	spinYield    = 512 // polls (with Gosched) before sleeping
	spinSleepMax = 32 * time.Microsecond
)

// spinPause waits appropriately for the i-th failed poll.
func spinPause(i int) {
	switch {
	case i < spinActive:
		// tight poll
	case i < spinYield:
		runtime.Gosched()
	default:
		d := time.Microsecond << uint((i-spinYield)/64)
		if d > spinSleepMax {
			d = spinSleepMax
		}
		time.Sleep(d)
	}
}

type nativeEnv struct {
	id       int
	mem      *NativeMem
	dcasSlot int // lazily assigned descriptor slot; -1 until first DCAS
}

var _ Env = (*nativeEnv)(nil)

func (e *nativeEnv) ID() int           { return e.id }
func (e *nativeEnv) Width() word.Width { return e.mem.width }

func (e *nativeEnv) cell(c Cell) *nativeCell {
	nc, ok := c.(*nativeCell)
	if !ok {
		panic(fmt.Sprintf("memory: cell %q does not belong to this native runtime", c.Label()))
	}
	return nc
}

// load reads the cell's current logical value, helping any in-flight DCAS to
// completion first (see dcas.go). When DCAS was never enabled the mark check
// is a single branch that can never fire on data (EnableDCAS requires
// width <= 63, so data values have bit 63 clear; at width 64 the table is
// nil and the raw value passes through).
func (e *nativeEnv) load(nc *nativeCell) word.Word {
	v := nc.v.Load()
	if v&dcasMark != 0 {
		if t := e.mem.dcas.Load(); t != nil {
			return t.resolve(nc)
		}
	}
	return v
}

func (e *nativeEnv) Read(c Cell) word.Word { return e.load(e.cell(c)) }

func (e *nativeEnv) Write(c Cell, v word.Word) {
	nc := e.cell(c)
	v = e.mem.width.Trunc(v)
	if e.mem.dcas.Load() == nil {
		nc.v.Store(v)
		return
	}
	// DCAS mode: a blind store could clobber a descriptor mark; install the
	// value over a resolved snapshot instead.
	for {
		cur := e.load(nc)
		if nc.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (e *nativeEnv) Swap(c Cell, v word.Word) word.Word {
	nc := e.cell(c)
	v = e.mem.width.Trunc(v)
	if e.mem.dcas.Load() == nil {
		return nc.v.Swap(v)
	}
	for {
		cur := e.load(nc)
		if nc.v.CompareAndSwap(cur, v) {
			return cur
		}
	}
}

func (e *nativeEnv) Add(c Cell, d word.Word) word.Word {
	nc := e.cell(c)
	w := e.mem.width
	if w == word.MaxBits && e.mem.dcas.Load() == nil {
		return nc.v.Add(d) - d
	}
	for {
		cur := e.load(nc)
		if nc.v.CompareAndSwap(cur, w.Add(cur, d)) {
			return cur
		}
	}
}

func (e *nativeEnv) CAS(c Cell, expected, replacement word.Word) word.Word {
	nc := e.cell(c)
	w := e.mem.width
	expected, replacement = w.Trunc(expected), w.Trunc(replacement)
	for {
		cur := e.load(nc)
		if cur != expected {
			return cur
		}
		if nc.v.CompareAndSwap(expected, replacement) {
			return expected
		}
	}
}

// Apply executes op in one linearizable step. Custom operations — the
// paper's "arbitrary atomic operations", which no real ISA offers — run
// through the CAS shim: read, compute the transition, install with
// compare-and-swap, retry on interference. The shim is lock-free and makes
// the whole qword algorithm (whose protocol lives entirely in custom ops)
// runnable on real silicon; dcas.go extends the same descriptor idea to two
// cells.
func (e *nativeEnv) Apply(c Cell, op Op) word.Word {
	switch op.Code {
	case OpRead:
		return e.Read(c)
	case OpWrite:
		e.Write(c, op.Arg)
		return 0
	case OpSwap:
		return e.Swap(c, op.Arg)
	case OpAdd:
		return e.Add(c, op.Arg)
	case OpCAS:
		return e.CAS(c, op.Arg, op.Arg2)
	case OpCustom:
		nc := e.cell(c)
		w := e.mem.width
		for {
			cur := e.load(nc)
			next, ret := Apply(op, cur, w)
			if nc.v.CompareAndSwap(cur, next) {
				return ret
			}
		}
	default:
		panic(fmt.Sprintf("memory: invalid op code %d", op.Code))
	}
}

func (e *nativeEnv) SpinUntil(c Cell, pred func(word.Word) bool) word.Word {
	nc := e.cell(c)
	for i := 0; ; i++ {
		v := e.load(nc)
		if pred(v) {
			return v
		}
		spinPause(i)
	}
}

func (e *nativeEnv) SpinUntilMulti(cells []Cell, pred func([]word.Word) bool) []word.Word {
	ncs := make([]*nativeCell, len(cells))
	for i, c := range cells {
		ncs[i] = e.cell(c)
	}
	vals := make([]word.Word, len(cells))
	for i := 0; ; i++ {
		for j, nc := range ncs {
			vals[j] = e.load(nc)
		}
		if pred(vals) {
			return vals
		}
		spinPause(i)
	}
}
