package memory

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rme/internal/word"
)

// NativeMem is the real-hardware runtime: cells are sync/atomic words, and
// Env operations execute immediately on the calling goroutine. It exists so
// the same algorithm sources that run under the simulator can be benchmarked
// with testing.B for wall-clock throughput. RMRs are not (and cannot be)
// observed here; crashes are not injectable.
type NativeMem struct {
	width word.Width
	mu    sync.Mutex // guards cells during allocation
	cells []*nativeCell
}

var _ Allocator = (*NativeMem)(nil)

// NewNativeMem returns a native allocator with the given word width.
func NewNativeMem(w word.Width) (*NativeMem, error) {
	if !w.Valid() {
		return nil, fmt.Errorf("memory: invalid word width %d", w)
	}
	return &NativeMem{width: w}, nil
}

// Width returns the configured word size.
func (m *NativeMem) Width() word.Width { return m.width }

// NewCell allocates a native atomic cell.
func (m *NativeMem) NewCell(label string, owner int, init word.Word) Cell {
	if !m.width.Fits(init) {
		panic(fmt.Sprintf("memory: initial value %d does not fit in %d bits", init, m.width))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &nativeCell{id: len(m.cells), owner: owner, label: label}
	c.v.Store(init)
	m.cells = append(m.cells, c)
	return c
}

// Env returns the native environment for process id.
func (m *NativeMem) Env(id int) Env { return &nativeEnv{id: id, mem: m} }

type nativeCell struct {
	id    int
	owner int
	label string
	v     atomic.Uint64
}

var _ Cell = (*nativeCell)(nil)

func (c *nativeCell) CellID() int   { return c.id }
func (c *nativeCell) Owner() int    { return c.owner }
func (c *nativeCell) Label() string { return c.label }

type nativeEnv struct {
	id  int
	mem *NativeMem
}

var _ Env = (*nativeEnv)(nil)

func (e *nativeEnv) ID() int           { return e.id }
func (e *nativeEnv) Width() word.Width { return e.mem.width }

func (e *nativeEnv) cell(c Cell) *nativeCell {
	nc, ok := c.(*nativeCell)
	if !ok {
		panic(fmt.Sprintf("memory: cell %q does not belong to this native runtime", c.Label()))
	}
	return nc
}

func (e *nativeEnv) Read(c Cell) word.Word { return e.cell(c).v.Load() }

func (e *nativeEnv) Write(c Cell, v word.Word) {
	e.cell(c).v.Store(e.mem.width.Trunc(v))
}

func (e *nativeEnv) Swap(c Cell, v word.Word) word.Word {
	return e.cell(c).v.Swap(e.mem.width.Trunc(v))
}

func (e *nativeEnv) Add(c Cell, d word.Word) word.Word {
	nc := e.cell(c)
	w := e.mem.width
	if w == word.MaxBits {
		return nc.v.Add(d) - d
	}
	for {
		cur := nc.v.Load()
		if nc.v.CompareAndSwap(cur, w.Add(cur, d)) {
			return cur
		}
	}
}

func (e *nativeEnv) CAS(c Cell, expected, replacement word.Word) word.Word {
	nc := e.cell(c)
	w := e.mem.width
	expected, replacement = w.Trunc(expected), w.Trunc(replacement)
	for {
		cur := nc.v.Load()
		if cur != expected {
			return cur
		}
		if nc.v.CompareAndSwap(expected, replacement) {
			return expected
		}
	}
}

func (e *nativeEnv) Apply(c Cell, op Op) word.Word {
	switch op.Code {
	case OpRead:
		return e.Read(c)
	case OpWrite:
		e.Write(c, op.Arg)
		return 0
	case OpSwap:
		return e.Swap(c, op.Arg)
	case OpAdd:
		return e.Add(c, op.Arg)
	case OpCAS:
		return e.CAS(c, op.Arg, op.Arg2)
	case OpCustom:
		nc := e.cell(c)
		w := e.mem.width
		for {
			cur := nc.v.Load()
			next, ret := Apply(op, cur, w)
			if nc.v.CompareAndSwap(cur, next) {
				return ret
			}
		}
	default:
		panic(fmt.Sprintf("memory: invalid op code %d", op.Code))
	}
}

func (e *nativeEnv) SpinUntil(c Cell, pred func(word.Word) bool) word.Word {
	nc := e.cell(c)
	for i := 0; ; i++ {
		v := nc.v.Load()
		if pred(v) {
			return v
		}
		if i%64 == 63 {
			runtime.Gosched()
		}
	}
}

func (e *nativeEnv) SpinUntilMulti(cells []Cell, pred func([]word.Word) bool) []word.Word {
	ncs := make([]*nativeCell, len(cells))
	for i, c := range cells {
		ncs[i] = e.cell(c)
	}
	vals := make([]word.Word, len(cells))
	for i := 0; ; i++ {
		for j, nc := range ncs {
			vals[j] = nc.v.Load()
		}
		if pred(vals) {
			return vals
		}
		if i%64 == 63 {
			runtime.Gosched()
		}
	}
}
