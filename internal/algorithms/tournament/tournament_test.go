package tournament_test

import (
	"testing"

	"rme/internal/algorithms/tournament"
	"rme/internal/algtest"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/word"
)

func TestConformance(t *testing.T) {
	algtest.Run(t, tournament.New(), algtest.Options{SkipDSM: true})
}

func TestNonPowerOfTwoProcs(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 9} {
		s, err := mutex.NewSession(mutex.Config{
			Procs: n, Width: 4, Model: sim.CC, Algorithm: tournament.New(), Passes: 2,
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := s.RunRoundRobin(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		s.Close()
	}
}

func TestLogarithmicRMRGrowthCC(t *testing.T) {
	// The tournament's worst-case CC RMRs per passage should scale like
	// log2(n), not n: it uses only reads and writes, the regime where the
	// paper's Θ(log n) bound [2, 23] applies.
	measure := func(n int) int {
		s, err := mutex.NewSession(mutex.Config{
			Procs: n, Width: 4, Model: sim.CC, Algorithm: tournament.New(), Passes: 2, NoTrace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := s.RunRoundRobin(); err != nil {
			t.Fatal(err)
		}
		return s.MaxPassageRMRs(sim.CC)
	}
	r4, r32 := measure(4), measure(32)
	// log2 32 / log2 4 = 2.5; allow slack but reject linear growth (8x).
	if r32 > 4*r4 {
		t.Errorf("CC RMRs grew superlogarithmically: %d (n=4) -> %d (n=32)", r4, r32)
	}
	levels32 := word.CeilLog(2, 32)
	if r32 < levels32 {
		t.Errorf("n=32: max passage RMRs %d below tree depth %d — accounting suspicious", r32, levels32)
	}
}

func TestWorksAtWidthOne(t *testing.T) {
	// Flags and victims are 0/1, so the tournament runs on 1-bit words.
	s, err := mutex.NewSession(mutex.Config{
		Procs: 4, Width: 1, Model: sim.CC, Algorithm: tournament.New(), Passes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RunRoundRobin(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultCampaign runs the default fault-injection campaign: crash-free
// seeded-random schedules judged by the invariant oracles, including the
// algorithm's RMR budget ceiling.
func TestFaultCampaign(t *testing.T) {
	algtest.Campaign(t, tournament.New(), 3, 8, sim.CC)
}

func TestNativeConformance(t *testing.T) {
	algtest.RunNative(t, tournament.New(), algtest.NativeOptions{})
}
