// Package tournament implements a conventional read/write tournament lock: a
// binary arbitration tree with a two-process Peterson lock at each internal
// node. It fills the role of the Yang–Anderson algorithm [23] in the paper's
// landscape — the Θ(log n) bound for mutual exclusion from reads and writes
// in the CC model [2, 23].
//
// Waiting at a node watches two locations (the rival's flag and the victim
// word); under the simulator this uses SpinUntilMulti, whose cost model
// matches CC local spinning (one RMR per invalidation-triggered recheck).
// The algorithm is presented as a CC algorithm only; the sibling package
// yatree reproduces Yang–Anderson's DSM-local-spin machinery.
package tournament

import (
	"fmt"
	"strconv"

	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/word"
)

// Lock is the Peterson tournament tree algorithm.
type Lock struct{}

var _ mutex.Algorithm = Lock{}

// New returns the algorithm.
func New() Lock { return Lock{} }

// Name identifies the algorithm.
func (Lock) Name() string { return "tournament" }

// Recoverable reports false: Peterson nodes hold no recoverable intent.
func (Lock) Recoverable() bool { return false }

// node is one two-process Peterson lock.
type node struct {
	flag   [2]memory.Cell
	victim memory.Cell
}

type instance struct {
	n      int
	levels int
	// nodes[l][i] arbitrates subtree i at level l; level 0 is the root.
	nodes [][]node
}

var _ mutex.Instance = (*instance)(nil)

// Make builds a binary tree with ceil(log2 n) levels of Peterson nodes.
// Values stored are 0/1, so any valid word width works.
func (Lock) Make(mem memory.Allocator, n int) (mutex.Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("tournament: need at least 1 process, got %d", n)
	}
	levels := word.CeilLog(2, n)
	in := &instance{n: n, levels: levels, nodes: make([][]node, levels)}
	for l := 0; l < levels; l++ {
		count := 1 << uint(l)
		in.nodes[l] = make([]node, count)
		for i := 0; i < count; i++ {
			prefix := "tournament.L" + strconv.Itoa(l) + "." + strconv.Itoa(i)
			in.nodes[l][i] = node{
				flag: [2]memory.Cell{
					mem.NewCell(prefix+".flag0", memory.Shared, 0),
					mem.NewCell(prefix+".flag1", memory.Shared, 0),
				},
				victim: mem.NewCell(prefix+".victim", memory.Shared, 0),
			}
		}
	}
	return in, nil
}

func (in *instance) Bind(env memory.Env) mutex.Handle {
	return &handle{env: env, in: in, id: env.ID()}
}

type handle struct {
	mutex.Unrecoverable

	env memory.Env
	in  *instance
	id  int
}

var _ mutex.Handle = (*handle)(nil)

// nodeAt returns the node and side process h.id competes on at the given
// level (level in.levels-1 is the leaf level, 0 the root).
func (h *handle) nodeAt(level int) (*node, int) {
	idx := h.id >> uint(h.in.levels-level) // ancestor subtree index at this level
	side := (h.id >> uint(h.in.levels-level-1)) & 1
	return &h.in.nodes[level][idx], side
}

// Lock climbs the tree, winning the Peterson lock at each node.
func (h *handle) Lock() {
	for level := h.in.levels - 1; level >= 0; level-- {
		nd, side := h.nodeAt(level)
		h.peterson(nd, side)
	}
}

// peterson acquires one two-process Peterson lock from the given side.
func (h *handle) peterson(nd *node, side int) {
	other := 1 - side
	h.env.Write(nd.flag[side], 1)
	h.env.Write(nd.victim, word.Word(side))
	// Wait until the rival is absent or the rival is the victim.
	h.env.SpinUntilMulti(
		[]memory.Cell{nd.flag[other], nd.victim},
		func(vs []word.Word) bool { return vs[0] == 0 || vs[1] != word.Word(side) },
	)
}

// Unlock descends the tree, releasing each node's Peterson lock.
func (h *handle) Unlock() {
	for level := 0; level < h.in.levels; level++ {
		nd, side := h.nodeAt(level)
		h.env.Write(nd.flag[side], 0)
	}
}
