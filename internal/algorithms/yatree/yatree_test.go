package yatree_test

import (
	"testing"

	"rme/internal/algorithms/yatree"
	"rme/internal/algtest"
	"rme/internal/check"
	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/sim"
)

func TestConformance(t *testing.T) {
	// Unlike the CC-only Peterson tournament, yatree is exercised in both
	// models: its waiting is DSM-local by construction.
	algtest.Run(t, yatree.New(), algtest.Options{})
}

func TestWidthValidation(t *testing.T) {
	mem2, err := memory.NewNativeMem(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := yatree.New().Make(mem2, 4); err == nil {
		t.Error("4 processes on 2-bit words must be rejected (waiter ids)")
	}
	if _, err := yatree.New().Make(mem2, 3); err != nil {
		t.Errorf("3 processes on 2-bit words should work: %v", err)
	}
}

func TestDSMLocalSpinning(t *testing.T) {
	// The defining property: a waiting process performs remote operations
	// only for the Peterson announcements, registration, and wakeups —
	// Θ(log n) DSM RMRs per passage, not Θ(log n) per *handoff observed*.
	measure := func(n int) int {
		s, err := mutex.NewSession(mutex.Config{
			Procs: n, Width: 16, Model: sim.DSM, Algorithm: yatree.New(), Passes: 2, NoTrace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := s.RunRoundRobin(); err != nil {
			t.Fatal(err)
		}
		return s.MaxPassageRMRs(sim.DSM)
	}
	r4, r32 := measure(4), measure(32)
	// log2 32 / log2 4 = 2.5; allow constant slack, reject linear growth.
	if r32 > 4*r4 {
		t.Errorf("DSM RMRs grew superlogarithmically: %d (n=4) -> %d (n=32)", r4, r32)
	}
	if r32 < 5 {
		t.Errorf("n=32: max DSM passage RMRs %d suspiciously low for a 5-level tree", r32)
	}
}

func TestExhaustiveTwoProcs(t *testing.T) {
	// Full interleaving coverage of one Peterson node with the wakeup
	// handshake — the lost-wakeup races live here.
	res, err := check.Exhaustive(check.Config{
		Session:      mutex.Config{Procs: 2, Width: 8, Model: sim.CC, Algorithm: yatree.New(), Passes: 2},
		MaxSchedules: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Complete == 0 {
		t.Fatal("nothing explored")
	}
}

func TestExhaustiveThreeProcs(t *testing.T) {
	// Three processes exercise a two-level tree: internal-node sides are
	// teams, and stale waiter registrations from earlier passages become
	// possible.
	res, err := check.Exhaustive(check.Config{
		Session:      mutex.Config{Procs: 3, Width: 8, Model: sim.DSM, Algorithm: yatree.New()},
		MaxSchedules: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 9} {
		s, err := mutex.NewSession(mutex.Config{
			Procs: n, Width: 8, Model: sim.DSM, Algorithm: yatree.New(), Passes: 2,
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := s.RunRoundRobin(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		s.Close()
	}
}

// TestFaultCampaign runs the default fault-injection campaign: crash-free
// seeded-random schedules judged by the invariant oracles, including the
// algorithm's RMR budget ceiling.
func TestFaultCampaign(t *testing.T) {
	algtest.Campaign(t, yatree.New(), 3, 8, sim.CC)
}

func TestNativeConformance(t *testing.T) {
	algtest.RunNative(t, yatree.New(), algtest.NativeOptions{})
}
