// Package yatree implements a Yang–Anderson-class tournament lock [23]: an
// n-process mutual exclusion algorithm from reads and writes only, with
// Θ(log n) RMRs per passage in the CC *and* the DSM model — the read/write
// algorithm whose optimality [2] anchors the paper's conventional landscape.
//
// Each internal node runs a two-process Peterson protocol between the
// winners of its subtrees. What makes the lock DSM-local (the Yang–Anderson
// contribution this package reproduces, by a simpler handshake than their
// original) is how waiting works: a process never spins on the node's
// cells. Instead it
//
//  1. registers its identity in the node's per-side waiter cell,
//  2. arms a gate cell in its own memory segment (one per process per
//     level), re-checks the Peterson condition (closing the lost-wakeup
//     race: any enabling event that the waker issued before reading the
//     waiter cell is visible to this re-check), and
//  3. spins on its own gate.
//
// The two events that can enable a waiter — the rival writing the victim
// word on arrival, and the rival clearing its flag on exit — are followed
// by reading the opposing waiter cell and writing that process's gate: a
// targeted, constant-cost wakeup into the waiter's own segment. Stale
// registrations only cause spurious wakeups, which the waiting loop's
// re-check absorbs.
package yatree

import (
	"fmt"
	"strconv"

	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/word"
)

// Gate states: a waiter arms its own gate and sleeps until a waker clears it.
const (
	gateOpen  word.Word = 0
	gateArmed word.Word = 1
)

// Lock is the DSM-local read/write tournament algorithm.
type Lock struct{}

var _ mutex.Algorithm = Lock{}

// New returns the algorithm.
func New() Lock { return Lock{} }

// Name identifies the algorithm.
func (Lock) Name() string { return "yatree" }

// Recoverable reports false: the Peterson flags carry no recoverable intent.
func (Lock) Recoverable() bool { return false }

// node is one two-process Peterson arbitration point with waiter
// registration for targeted wakeups.
type node struct {
	flag [2]memory.Cell
	// victim holds side+1 of the last arriver (0 = never written). Encoding
	// the side as side+1 rather than the raw bit follows the repo's id+1
	// discipline for identity-carrying words; it costs nothing (every read of
	// victim happens after the reader's own write, so 0 is never observed by
	// the protocol) and makes the word's value domain unambiguous under the
	// declared subtree-swap symmetry: 0 is side-neutral, 1 and 2 trade places.
	victim memory.Cell
	// waiter[s] holds id+1 of the process currently waiting on side s
	// (0 = none); read by the rival to find whose gate to open.
	waiter [2]memory.Cell
}

type instance struct {
	n      int
	levels int
	nodes  [][]node
	// gate[l][p] is process p's spin cell for level l, in p's own segment.
	gate [][]memory.Cell
}

var _ mutex.Instance = (*instance)(nil)

// Make builds the binary tree. Waiter cells hold ids as id+1, so w must
// satisfy 2^w > n.
func (Lock) Make(mem memory.Allocator, n int) (mutex.Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("yatree: need at least 1 process, got %d", n)
	}
	if !mem.Width().Fits(word.Word(n)) {
		return nil, fmt.Errorf("yatree: %d processes need ids wider than %d bits", n, mem.Width())
	}
	levels := word.CeilLog(2, n)
	in := &instance{n: n, levels: levels, nodes: make([][]node, levels)}
	for l := 0; l < levels; l++ {
		count := 1 << uint(l)
		in.nodes[l] = make([]node, count)
		for i := 0; i < count; i++ {
			prefix := "yatree.L" + strconv.Itoa(l) + "." + strconv.Itoa(i)
			in.nodes[l][i] = node{
				flag: [2]memory.Cell{
					mem.NewCell(prefix+".flag0", memory.Shared, 0),
					mem.NewCell(prefix+".flag1", memory.Shared, 0),
				},
				victim: mem.NewCell(prefix+".victim", memory.Shared, 0),
				waiter: [2]memory.Cell{
					mem.NewCell(prefix+".waiter0", memory.Shared, 0),
					mem.NewCell(prefix+".waiter1", memory.Shared, 0),
				},
			}
		}
	}
	in.gate = make([][]memory.Cell, levels)
	for l := 0; l < levels; l++ {
		in.gate[l] = make([]memory.Cell, n)
		for p := 0; p < n; p++ {
			in.gate[l][p] = mem.NewCell(
				"yatree.gate."+strconv.Itoa(l)+"."+strconv.Itoa(p), p, gateOpen)
		}
	}
	return in, nil
}

func (in *instance) Bind(env memory.Env) mutex.Handle {
	return &handle{env: env, in: in, id: env.ID()}
}

var _ mutex.SymmetricInstance = (*instance)(nil)

// symmetryMaxLevels caps automorphism enumeration (2^(2^L - 1) swap subsets
// are examined); trees past n = 8 declare nothing.
const symmetryMaxLevels = 3

// Symmetry declares the tree's automorphisms. A tournament tree is not
// symmetric under arbitrary renamings — a process's path is its id's bit
// pattern — but swapping the two subtrees of any set of internal nodes is a
// symmetry whenever the induced leaf-slot permutation keeps every process
// slot in [0,n). Under a swap at a node, its flag/waiter pairs trade sides
// (waiter words are pid-coded on top), its victim word flips 1↔2, the
// subtree nodes relocate along their permuted paths, and each per-process
// gate cell moves to the renamed process's segment.
//
// For n = 3 only the first leaf node's swap survives (slot 3 is unused, so
// any swap moving slots 2/3 is invalid): the group is {id, (0 1)}, order 2 —
// the ceiling for reduction claims at n = 3. A full tree of n = 4 yields the
// order-8 wreath product.
func (in *instance) Symmetry() *sim.Symmetry {
	l := in.levels
	if l == 0 || l > symmetryMaxLevels {
		return nil
	}
	nodesTotal := 1<<uint(l) - 1
	// nodeBit indexes internal node (lv, i) in a swap-subset bitmask,
	// level-major: the root is bit 0, level 1 holds bits 1..2, and so on.
	nodeBit := func(lv, i int) uint { return uint(1<<uint(lv) - 1 + i) }
	sym := sim.NewSymmetry(in.n)
	for lv := range in.nodes {
		for i := range in.nodes[lv] {
			sym.PIDCell(in.nodes[lv][i].waiter[0].CellID())
			sym.PIDCell(in.nodes[lv][i].waiter[1].CellID())
		}
	}
	for mask := 1; mask < 1<<uint(nodesTotal); mask++ {
		swapped := func(lv, i int) bool { return mask>>nodeBit(lv, i)&1 == 1 }
		// mapSlot applies the swaps top-down: at each level the node index is
		// read from the partially renamed slot (upper levels already applied),
		// and a swapped node flips the slot's side bit for that level.
		mapSlot := func(x int) int {
			for lv := 0; lv < l; lv++ {
				if swapped(lv, x>>uint(l-lv)) {
					x ^= 1 << uint(l-lv-1)
				}
			}
			return x
		}
		procs := make([]int, in.n)
		valid := true
		for p := 0; p < in.n; p++ {
			q := mapSlot(p)
			if q >= in.n {
				valid = false
				break
			}
			procs[p] = q
		}
		if !valid {
			continue
		}
		perm := sim.NewPerm(procs)
		for lv := 0; lv < l; lv++ {
			for i := range in.nodes[lv] {
				// The node's new index follows its path through the swaps of
				// the levels above it (the same walk mapSlot performs).
				x := i << uint(l-lv)
				for u := 0; u < lv; u++ {
					if swapped(u, x>>uint(l-u)) {
						x ^= 1 << uint(l-u-1)
					}
				}
				ni := x >> uint(l-lv)
				s := 0
				if swapped(lv, ni) {
					s = 1
				}
				src, dst := &in.nodes[lv][i], &in.nodes[lv][ni]
				perm.MapCell(src.flag[0].CellID(), dst.flag[s].CellID())
				perm.MapCell(src.flag[1].CellID(), dst.flag[1-s].CellID())
				perm.MapCell(src.waiter[0].CellID(), dst.waiter[s].CellID())
				perm.MapCell(src.waiter[1].CellID(), dst.waiter[1-s].CellID())
				perm.MapCell(src.victim.CellID(), dst.victim.CellID())
				if s == 1 {
					perm.MapValue(src.victim.CellID(), flipVictim)
				}
			}
		}
		for lv := 0; lv < l; lv++ {
			for p := 0; p < in.n; p++ {
				perm.MapCell(in.gate[lv][p].CellID(), in.gate[lv][procs[p]].CellID())
			}
		}
		sym.Add(perm)
	}
	if sym.Order() == 1 {
		return nil
	}
	return sym
}

// flipVictim trades the victim word's sides under a subtree swap; 0 (never
// written) is side-neutral.
func flipVictim(v word.Word) word.Word {
	switch v {
	case 1:
		return 2
	case 2:
		return 1
	}
	return v
}

type handle struct {
	mutex.Unrecoverable

	env memory.Env
	in  *instance
	id  int
}

var _ mutex.Handle = (*handle)(nil)

// nodeAt returns the node and side process h.id competes on at the given
// level (level in.levels-1 is the leaf level, 0 the root).
func (h *handle) nodeAt(level int) (*node, int) {
	idx := h.id >> uint(h.in.levels-level)
	side := (h.id >> uint(h.in.levels-level-1)) & 1
	return &h.in.nodes[level][idx], side
}

// Lock climbs the tree, winning each node's Peterson protocol with
// DSM-local waiting.
func (h *handle) Lock() {
	for level := h.in.levels - 1; level >= 0; level-- {
		h.nodeLock(level)
	}
}

// allowed evaluates the Peterson condition from the given side: proceed
// when the rival is absent or the rival is the victim.
func (h *handle) allowed(nd *node, side int) bool {
	other := 1 - side
	if h.env.Read(nd.flag[other]) == 0 {
		return true
	}
	return h.env.Read(nd.victim) != word.Word(side)+1
}

// nodeLock acquires one node. After announcing (flag, victim) it wakes the
// rival — writing the victim word may have enabled it — then waits with the
// register / arm / re-check / spin handshake.
func (h *handle) nodeLock(level int) {
	nd, side := h.nodeAt(level)
	other := 1 - side
	h.env.Write(nd.flag[side], 1)
	h.env.Write(nd.victim, word.Word(side)+1)
	h.wakeRival(level, nd, other)

	gate := h.in.gate[level][h.id]
	for {
		if h.allowed(nd, side) {
			return
		}
		h.env.Write(nd.waiter[side], word.Word(h.id+1))
		h.env.Write(gate, gateArmed)
		// Re-check after registering: any enabling event issued before the
		// waker read our registration is visible here, so a wakeup cannot
		// be lost.
		if h.allowed(nd, side) {
			h.env.Write(gate, gateOpen)
			return
		}
		h.env.SpinUntil(gate, func(v word.Word) bool { return v == gateOpen })
	}
}

// Unlock descends the tree, clearing each node's flag and waking the rival
// the clear may have enabled.
func (h *handle) Unlock() {
	for level := 0; level < h.in.levels; level++ {
		nd, side := h.nodeAt(level)
		h.env.Write(nd.flag[side], 0)
		h.wakeRival(level, nd, 1-side)
	}
}

// wakeRival opens the gate of whichever process is registered as waiting on
// the node's given side. Stale registrations cause at most a spurious
// wakeup, absorbed by the waiter's re-check loop.
func (h *handle) wakeRival(level int, nd *node, side int) {
	w := h.env.Read(nd.waiter[side])
	if w == 0 {
		return
	}
	h.env.Write(h.in.gate[level][int(w-1)], gateOpen)
}
