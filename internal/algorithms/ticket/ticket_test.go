package ticket_test

import (
	"testing"

	"rme/internal/algorithms/ticket"
	"rme/internal/algtest"
	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/sim"
)

func TestConformance(t *testing.T) {
	algtest.Run(t, ticket.New(), algtest.Options{})
}

func TestWidthValidation(t *testing.T) {
	mem, err := memory.NewNativeMem(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ticket.New().Make(mem, 8); err == nil {
		t.Error("8 processes on 3-bit words must be rejected (ticket 8 does not fit)")
	}
	if _, err := ticket.New().Make(mem, 7); err != nil {
		t.Errorf("7 processes on 3-bit words should work: %v", err)
	}
	if _, err := ticket.New().Make(mem, 0); err == nil {
		t.Error("0 processes must be rejected")
	}
}

func TestTicketWrapsAroundNarrowWords(t *testing.T) {
	// 4 processes on 3-bit words doing many passes: the ticket counters wrap
	// mod 8 repeatedly; FIFO order must survive the wraparound.
	s, err := mutex.NewSession(mutex.Config{
		Procs: 4, Width: 3, Model: sim.CC, Algorithm: ticket.New(), Passes: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RunRoundRobin(); err != nil {
		t.Fatal(err)
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestLinearWaitingCostCC(t *testing.T) {
	// Under CC accounting the ticket lock is Θ(contenders) per passage, not
	// O(1): every now-serving bump invalidates every waiter's cached copy,
	// so a waiter k positions back pays ~k re-probe misses. (The O(1)
	// conventional locks are the queue locks — see package mcs — which is
	// why the landscape experiment distinguishes them.) Bound the average
	// by a small multiple of n.
	for _, n := range []int{4, 8, 16} {
		s, err := mutex.NewSession(mutex.Config{
			Procs: n, Width: 16, Model: sim.CC, Algorithm: ticket.New(), Passes: 4, NoTrace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunRoundRobin(); err != nil {
			t.Fatal(err)
		}
		stats := s.Stats()
		total := 0
		for _, st := range stats {
			total += st.RMRsCC
		}
		avg := float64(total) / float64(len(stats))
		if avg > 2*float64(n) {
			t.Errorf("n=%d: avg CC RMRs per passage = %.1f, want <= 2n", n, avg)
		}
		if n >= 8 && avg < float64(n)/2 {
			t.Errorf("n=%d: avg CC RMRs per passage = %.1f — suspiciously below the Θ(n) waiting cost", n, avg)
		}
		s.Close()
	}
}

// TestFaultCampaign runs the default fault-injection campaign: crash-free
// seeded-random schedules judged by the invariant oracles, including the
// algorithm's RMR budget ceiling.
func TestFaultCampaign(t *testing.T) {
	algtest.Campaign(t, ticket.New(), 3, 8, sim.CC)
}

func TestNativeConformance(t *testing.T) {
	algtest.RunNative(t, ticket.New(), algtest.NativeOptions{})
}
