// Package ticket implements the classic fetch-and-increment ticket lock, the
// O(1)-RMR (CC model) conventional baseline [cf. paper §1: fetch-and-store /
// fetch-and-increment give O(1) conventional mutual exclusion].
//
// The ticket lock is the canonical example of why conventional constant-RMR
// algorithms break under crashes: a ticket drawn by fetch-and-increment is
// anonymous — if the process crashes between drawing the ticket and recording
// it, the ticket is lost, now-serving never reaches anyone, and the lock
// wedges. The recoverable algorithms in sibling packages work around this by
// using ID-carrying operations whose effect can be re-read from shared
// memory (grlock: writes; rspin: CAS installing the caller's id; watree:
// fetch-and-add on the caller's own bit).
package ticket

import (
	"fmt"

	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/word"
)

// Lock is the ticket lock algorithm.
type Lock struct{}

var _ mutex.Algorithm = Lock{}

// New returns the algorithm.
func New() Lock { return Lock{} }

// Name identifies the algorithm.
func (Lock) Name() string { return "ticket" }

// Recoverable reports false (see the package comment).
func (Lock) Recoverable() bool { return false }

// Make allocates the two counters. Tickets live in w-bit words and wrap mod
// 2^w; correctness requires at most 2^w - 1 outstanding tickets, i.e.
// n < 2^w.
func (Lock) Make(mem memory.Allocator, n int) (mutex.Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("ticket: need at least 1 process, got %d", n)
	}
	if !mem.Width().Fits(word.Word(n)) {
		return nil, fmt.Errorf("ticket: %d processes need tickets wider than %d bits", n, mem.Width())
	}
	return &instance{
		next:    mem.NewCell("ticket.next", memory.Shared, 0),
		serving: mem.NewCell("ticket.serving", memory.Shared, 0),
	}, nil
}

type instance struct {
	next    memory.Cell
	serving memory.Cell
}

var _ mutex.Instance = (*instance)(nil)

func (in *instance) Bind(env memory.Env) mutex.Handle {
	return &handle{env: env, next: in.next, serving: in.serving}
}

type handle struct {
	mutex.Unrecoverable

	env     memory.Env
	next    memory.Cell
	serving memory.Cell
}

var _ mutex.Handle = (*handle)(nil)

// Lock draws a ticket and waits until it is served.
func (h *handle) Lock() {
	t := memory.FAI(h.env, h.next)
	h.env.SpinUntil(h.serving, func(v word.Word) bool { return v == t })
}

// Unlock serves the next ticket.
func (h *handle) Unlock() {
	h.env.Add(h.serving, 1)
}
