package clh_test

import (
	"testing"

	"rme/internal/algorithms/clh"
	"rme/internal/algtest"
	"rme/internal/check"
	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/sim"
)

func TestConformance(t *testing.T) {
	algtest.Run(t, clh.New(), algtest.Options{})
}

func TestWidthValidation(t *testing.T) {
	mem, err := memory.NewNativeMem(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clh.New().Make(mem, 4); err == nil {
		t.Error("4 processes on 2-bit words must be rejected")
	}
	if _, err := clh.New().Make(mem, 3); err != nil {
		t.Errorf("3 processes on 2-bit words should work: %v", err)
	}
	mem1, err := memory.NewNativeMem(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clh.New().Make(mem1, 1); err == nil {
		t.Error("1-bit words cannot hold the grant states")
	}
}

func TestConstantRMRsPerPassage(t *testing.T) {
	// CLH spins on the predecessor's cell: constant CC RMRs per passage.
	// (In DSM that spin is remote, so CLH is only O(1) in CC — but our
	// park-based accounting charges one probe per change, keeping the DSM
	// number low too; the CC number is the meaningful one.)
	measure := func(n int) int {
		s, err := mutex.NewSession(mutex.Config{
			Procs: n, Width: 16, Model: sim.CC, Algorithm: clh.New(), Passes: 3, NoTrace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := s.RunRoundRobin(); err != nil {
			t.Fatal(err)
		}
		return s.MaxPassageRMRs(sim.CC)
	}
	at4, at16 := measure(4), measure(16)
	if at16 > at4+1 {
		t.Errorf("CC RMRs per passage grew with n: %d (n=4) -> %d (n=16)", at4, at16)
	}
	if at16 > 10 {
		t.Errorf("CC RMRs per passage = %d, want a small constant", at16)
	}
}

func TestNodeReuseUnderStraggler(t *testing.T) {
	// The fixed-cell adaptation's crux: p0's successor (p1) may delay its
	// probe across several of p0's later passages; consumption-gated reuse
	// must keep them exclusive. Drive p0 through multiple passages while p1
	// is frozen mid-wait, then let p1 go; the monitors catch any overlap.
	s, err := mutex.NewSession(mutex.Config{
		Procs: 2, Width: 8, Model: sim.CC, Algorithm: clh.New(), Passes: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := s.Machine()

	// p0 acquires (arm-probe, arm-write, swap -> owner).
	for m.Tag(0) != mutex.TagCS {
		if _, err := s.StepProc(0); err != nil {
			t.Fatal(err)
		}
	}
	// p1 enqueues behind p0 and begins waiting.
	for i := 0; i < 4 && m.Poised(1); i++ {
		if _, err := s.StepProc(1); err != nil {
			t.Fatal(err)
		}
	}
	// Now freeze p1 and drive p0 as far as it can go: p0 must block trying
	// to re-arm its cell until p1 consumes the grant.
	for i := 0; i < 200 && m.Poised(0); i++ {
		if _, err := s.StepProc(0); err != nil {
			t.Fatal(err)
		}
	}
	if m.ProcDone(0) {
		t.Fatal("p0 finished all passages while its successor never consumed — reuse gate broken")
	}
	// Release the world; everything must complete without violations.
	if err := s.RunRoundRobin(); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustiveTwoProcs(t *testing.T) {
	res, err := check.Exhaustive(check.Config{
		Session:      mutex.Config{Procs: 2, Width: 8, Model: sim.CC, Algorithm: clh.New(), Passes: 2},
		MaxSchedules: 40_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Complete == 0 {
		t.Fatal("nothing explored")
	}
}

// TestFaultCampaign runs the default fault-injection campaign: crash-free
// seeded-random schedules judged by the invariant oracles, including the
// algorithm's RMR budget ceiling.
func TestFaultCampaign(t *testing.T) {
	algtest.Campaign(t, clh.New(), 3, 8, sim.CC)
}

func TestNativeConformance(t *testing.T) {
	algtest.RunNative(t, clh.New(), algtest.NativeOptions{})
}
