// Package clh implements a Craig / Landin–Hagersten-style queue lock [6] on
// the w-bit word model: the conventional O(1)-RMR lock built from
// fetch-and-store in which each process spins on its *predecessor's* cell
// (where MCS spins on its own). It is cited by the paper alongside MCS as
// the reason FAS makes conventional mutual exclusion constant-cost — and as
// the §1.1 example of why the recoverable lower bound needs crash steps:
// the FAS on the tail hands every arrival its predecessor's identity, so
// nothing can be hidden.
//
// Classic CLH recycles queue nodes by stealing the predecessor's node; on a
// machine with a fixed set of named cells that is replaced by
// consumption-gated reuse: a grant cell cycles armed (1) → released (0) →
// consumed (2), a process re-arms its cell only after the previous watcher
// has consumed it, and a releasing process with no successor retires its
// cell itself after removing itself from the tail with a compare-and-swap
// (which atomically proves no watcher can ever arrive).
package clh

import (
	"fmt"
	"strconv"

	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/word"
)

// Grant cell states.
const (
	granted  word.Word = 0 // predecessor released; watcher may pass
	armed    word.Word = 1 // passage in progress
	reusable word.Word = 2 // consumed by the watcher (or never watched)
)

// Lock is the CLH-style queue lock algorithm.
type Lock struct{}

var _ mutex.Algorithm = Lock{}

// New returns the algorithm.
func New() Lock { return Lock{} }

// Name identifies the algorithm.
func (Lock) Name() string { return "clh" }

// Recoverable reports false: a crash between the tail swap and the spin
// severs the implicit queue.
func (Lock) Recoverable() bool { return false }

// Make allocates the tail plus one grant cell per process. Ids are stored
// as id+1 and grants take values {0,1,2}, so w must hold max(n+1, 2).
func (Lock) Make(mem memory.Allocator, n int) (mutex.Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("clh: need at least 1 process, got %d", n)
	}
	if !mem.Width().Fits(word.Word(n)) || !mem.Width().Fits(reusable) {
		return nil, fmt.Errorf("clh: %d processes do not fit %d-bit words", n, mem.Width())
	}
	in := &instance{
		tail:  mem.NewCell("clh.tail", memory.Shared, 0),
		grant: make([]memory.Cell, n),
	}
	for i := 0; i < n; i++ {
		in.grant[i] = mem.NewCell("clh.grant."+strconv.Itoa(i), i, reusable)
	}
	return in, nil
}

type instance struct {
	tail  memory.Cell
	grant []memory.Cell
}

var _ mutex.Instance = (*instance)(nil)

func (in *instance) Bind(env memory.Env) mutex.Handle {
	return &handle{env: env, in: in, id: env.ID()}
}

type handle struct {
	mutex.Unrecoverable

	env memory.Env
	in  *instance
	id  int
}

var _ mutex.Handle = (*handle)(nil)

// Lock re-arms this process's grant cell (waiting out any straggling
// watcher from the previous passage), swaps itself into the tail, and spins
// on the predecessor's grant cell until released, acknowledging
// consumption so the predecessor may reuse its cell.
func (h *handle) Lock() {
	mine := h.in.grant[h.id]
	h.env.SpinUntil(mine, func(v word.Word) bool { return v == reusable })
	h.env.Write(mine, armed)
	prev := h.env.Swap(h.in.tail, word.Word(h.id+1))
	if prev == 0 {
		return
	}
	pred := h.in.grant[prev-1]
	h.env.SpinUntil(pred, func(v word.Word) bool { return v == granted })
	h.env.Write(pred, reusable)
}

// Unlock releases the successor, or — when the tail still names this
// process, proving no successor can ever watch this passage's cell —
// retires the cell directly.
func (h *handle) Unlock() {
	me := word.Word(h.id + 1)
	if h.env.CAS(h.in.tail, me, 0) == me {
		h.env.Write(h.in.grant[h.id], reusable)
		return
	}
	h.env.Write(h.in.grant[h.id], granted)
}
