// Package qword implements a recoverable FIFO lock whose entire wait queue
// lives in a single w-bit word, manipulated by *custom* atomic operations —
// exercising the paper's model assumption that base objects may support
// arbitrary (single-location) operations.
//
// The word is an array of n fields of ceil(log2(n+1)) bits each; field j
// holds the id+1 of the j-th queued process (0 = empty), and the field-0
// process holds the lock. Two custom operations drive the protocol:
//
//   - enqueue(id): append id+1 at the first empty field unless it is
//     already present — the presence scan makes the operation idempotent,
//     so a crashed process simply re-applies it (ID-carrying, readable);
//   - dequeue-if-head(id): shift the queue down one field iff field 0
//     holds id+1 — idempotent for the same reason.
//
// With w ≥ n·ceil(log2(n+1)) this is a constant-RMR (DSM-free operations
// aside) recoverable FIFO lock: exactly the regime the paper calls
// unrealistic ("it is unrealistic to assume that the size of memory
// locations is polynomial in the number n of processors") and the reason
// its lower bound decays as words widen. Every enqueue leaves the caller's
// id visible in the word, so the lower-bound adversary's hiding manoeuvre
// always fails against it — the arbitrary-op analogue of the
// Katzan–Morrison fetch-and-add immunity.
//
// Waiting processes spin on the queue word itself, so each handoff wakes
// every waiter (Θ(contenders) CC cost per passage); the package is a model
// demonstration, not an efficient lock.
package qword

import (
	"fmt"
	"strconv"

	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/word"
)

// Per-process persistent phase values.
const (
	phaseIdle word.Word = iota
	phaseTrying
	phaseExiting
)

// Lock is the queue-in-a-word algorithm.
type Lock struct{}

var _ mutex.Algorithm = Lock{}

// New returns the algorithm.
func New() Lock { return Lock{} }

// Name identifies the algorithm.
func (Lock) Name() string { return "qword" }

// Recoverable reports true.
func (Lock) Recoverable() bool { return true }

// fieldBits returns the bits per queue field for n processes.
func fieldBits(n int) uint {
	b := uint(1)
	for (1 << b) < n+1 {
		b++
	}
	return b
}

// Make allocates the queue word and per-process phase cells. Requires
// w ≥ n·ceil(log2(n+1)).
func (Lock) Make(mem memory.Allocator, n int) (mutex.Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("qword: need at least 1 process, got %d", n)
	}
	bits := fieldBits(n)
	if uint(n)*bits > uint(mem.Width()) {
		return nil, fmt.Errorf("qword: %d processes need %d-bit words, have %d",
			n, uint(n)*bits, mem.Width())
	}
	in := &instance{
		n:     n,
		bits:  bits,
		mask:  (word.Word(1) << bits) - 1,
		queue: mem.NewCell("qword.queue", memory.Shared, 0),
		phase: make([]memory.Cell, n),
	}
	for i := 0; i < n; i++ {
		in.phase[i] = mem.NewCell("qword.phase."+strconv.Itoa(i), i, phaseIdle)
	}
	return in, nil
}

type instance struct {
	n     int
	bits  uint
	mask  word.Word
	queue memory.Cell
	phase []memory.Cell
}

var _ mutex.Instance = (*instance)(nil)

func (in *instance) Bind(env memory.Env) mutex.Handle {
	return &handle{env: env, in: in, id: env.ID()}
}

// field extracts queue field j.
func (in *instance) field(q word.Word, j int) word.Word {
	return (q >> (uint(j) * in.bits)) & in.mask
}

// enqueueOp appends id+1 at the first empty field unless already present.
func (in *instance) enqueueOp(id int) memory.Op {
	me := word.Word(id + 1)
	return memory.Custom("enqueue("+strconv.Itoa(id)+")", func(cur word.Word) (word.Word, word.Word) {
		for j := 0; j < in.n; j++ {
			f := in.field(cur, j)
			if f == me {
				return cur, cur // already queued: idempotent
			}
			if f == 0 {
				return cur | me<<(uint(j)*in.bits), cur
			}
		}
		// Unreachable with n fields and at most one entry per process.
		return cur, cur
	})
}

// dequeueOp shifts the queue down iff the head is id+1.
func (in *instance) dequeueOp(id int) memory.Op {
	me := word.Word(id + 1)
	return memory.Custom("dequeue("+strconv.Itoa(id)+")", func(cur word.Word) (word.Word, word.Word) {
		if in.field(cur, 0) != me {
			return cur, cur // not (or no longer) the holder: idempotent
		}
		return cur >> in.bits, cur
	})
}

type handle struct {
	env memory.Env
	in  *instance
	id  int
}

var _ mutex.Handle = (*handle)(nil)

// Lock persists intent, enqueues, and waits to reach the head.
func (h *handle) Lock() {
	h.env.Write(h.in.phase[h.id], phaseTrying)
	h.acquire()
}

func (h *handle) acquire() {
	h.env.Apply(h.in.queue, h.in.enqueueOp(h.id))
	me := word.Word(h.id + 1)
	h.env.SpinUntil(h.in.queue, func(q word.Word) bool { return h.in.field(q, 0) == me })
}

// Unlock persists the exiting phase and dequeues.
func (h *handle) Unlock() {
	h.env.Write(h.in.phase[h.id], phaseExiting)
	h.env.Apply(h.in.queue, h.in.dequeueOp(h.id))
	h.env.Write(h.in.phase[h.id], phaseIdle)
}

// Recover re-derives the position from the phase cell and the queue word
// (enqueue and dequeue are both idempotent, so re-applying is always safe).
func (h *handle) Recover() mutex.RecoverStatus {
	switch h.env.Read(h.in.phase[h.id]) {
	case phaseTrying:
		h.acquire()
		return mutex.RecoverAcquired
	case phaseExiting:
		h.env.Apply(h.in.queue, h.in.dequeueOp(h.id))
		h.env.Write(h.in.phase[h.id], phaseIdle)
		return mutex.RecoverReleased
	default:
		return mutex.RecoverIdle
	}
}
