package qword_test

import (
	"testing"

	"rme/internal/adversary"

	"rme/internal/algorithms/qword"
	"rme/internal/algtest"
	"rme/internal/check"
	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/sim"
)

func TestConformance(t *testing.T) {
	// 13 processes need 4-bit fields: 52 bits.
	algtest.Run(t, qword.New(), algtest.Options{Width: 64})
}

func TestWidthValidation(t *testing.T) {
	mem8, err := memory.NewNativeMem(8)
	if err != nil {
		t.Fatal(err)
	}
	// 4 processes need 3-bit fields: 12 bits > 8.
	if _, err := qword.New().Make(mem8, 4); err == nil {
		t.Error("4 processes on 8-bit words must be rejected")
	}
	// 2 processes need 2-bit fields: 4 bits <= 8.
	if _, err := qword.New().Make(mem8, 2); err != nil {
		t.Errorf("2 processes on 8-bit words should work: %v", err)
	}
}

func TestFIFOByConstruction(t *testing.T) {
	// The queue word IS the grant order: drive enqueues in the order
	// 2, 0, 1 and verify CS grants follow it.
	s, err := mutex.NewSession(mutex.Config{
		Procs: 3, Width: 16, Model: sim.CC, Algorithm: qword.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Each process: phase write, then the enqueue op. Two steps each.
	for _, p := range []int{2, 0, 1} {
		for i := 0; i < 2; i++ {
			if _, err := s.StepProc(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.RunRoundRobin(); err != nil {
		t.Fatal(err)
	}
	order := s.CSOrder()
	if len(order) != 3 || order[0] != 2 || order[1] != 0 || order[2] != 1 {
		t.Errorf("CS order = %v, want [2 0 1]", order)
	}
}

func TestExhaustiveWithCrashes(t *testing.T) {
	res, err := check.Exhaustive(check.Config{
		Session:        mutex.Config{Procs: 2, Width: 8, Model: sim.CC, Algorithm: qword.New()},
		CrashesPerProc: 1,
		MaxSchedules:   60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Log("truncated (expected for crash branching); complete:", res.Complete)
	}
	if res.Complete == 0 {
		t.Fatal("nothing explored")
	}
}

func TestAdversaryCannotHideAgainstQueueWord(t *testing.T) {
	// Every enqueue records its caller in the word, so the value-collision
	// search must fail — the arbitrary-op analogue of wide-FAA immunity.
	adv, err := newAdversary(t)
	if err != nil {
		t.Fatal(err)
	}
	defer adv.Close()
	rep, err := adv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.HidingWins != 0 {
		t.Errorf("hiding succeeded %d times against the queue word", rep.HidingWins)
	}
	if len(rep.InvariantViolations) > 0 {
		t.Errorf("violations: %v", rep.InvariantViolations)
	}
}

func newAdversary(t *testing.T) (*adversary.Adversary, error) {
	t.Helper()
	return adversary.New(adversary.Config{
		Session: mutex.Config{
			Procs: 8, Width: 32, Model: sim.CC, Algorithm: qword.New(),
		},
		K: 4,
	})
}

// TestFaultCampaign runs the default fault-injection campaign — systematic
// and seeded-random crash placement judged by the invariant oracles,
// including the algorithm's RMR budget ceiling — under both cost models.
func TestFaultCampaign(t *testing.T) {
	algtest.Campaign(t, qword.New(), 3, 8, sim.CC)
	algtest.Campaign(t, qword.New(), 3, 8, sim.DSM)
}

func TestNativeConformance(t *testing.T) {
	algtest.RunNative(t, qword.New(), algtest.NativeOptions{})
}
