package rspin_test

import (
	"testing"

	"rme/internal/algorithms/rspin"
	"rme/internal/algtest"
	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/sim"
)

func TestConformance(t *testing.T) {
	algtest.Run(t, rspin.New(), algtest.Options{})
}

func TestWidthValidation(t *testing.T) {
	mem, err := memory.NewNativeMem(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rspin.New().Make(mem, 4); err == nil {
		t.Error("4 processes on 2-bit words must be rejected")
	}
	if _, err := rspin.New().Make(mem, 3); err != nil {
		t.Errorf("3 processes on 2-bit words should work: %v", err)
	}
}

func TestCrashWhileHoldingIsRecovered(t *testing.T) {
	// p0 acquires the lock, crashes inside the CS, and must re-acquire on
	// recovery (critical-section re-entry) while p1 keeps waiting.
	s, err := mutex.NewSession(mutex.Config{
		Procs: 2, Width: 8, Model: sim.CC, Algorithm: rspin.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := s.Machine()

	// Drive p0 until it is in the CS.
	for m.Tag(0) != mutex.TagCS {
		if _, err := s.StepProc(0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.CrashProc(0); err != nil {
		t.Fatal(err)
	}
	// Let everything finish; the monitor catches any CSR violation (p1
	// entering while crashed p0 still owns).
	if err := s.RunRoundRobin(); err != nil {
		t.Fatal(err)
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
	if m.Crashes(0) != 1 {
		t.Errorf("crashes = %d", m.Crashes(0))
	}
}

func TestRecoverStatsMarkRecoveryPassages(t *testing.T) {
	s, err := mutex.NewSession(mutex.Config{
		Procs: 2, Width: 8, Model: sim.CC, Algorithm: rspin.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := s.Machine()
	for m.Tag(0) != mutex.TagCS {
		if _, err := s.StepProc(0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.CrashProc(0); err != nil {
		t.Fatal(err)
	}
	if err := s.RunRoundRobin(); err != nil {
		t.Fatal(err)
	}
	var crashEnded, recovery int
	for _, st := range s.Stats() {
		if st.Proc != 0 {
			continue
		}
		if st.EndedByCrash {
			crashEnded++
		}
		if st.Recovery {
			recovery++
		}
	}
	if crashEnded != 1 || recovery != 1 {
		t.Errorf("crash-ended passages = %d, recovery passages = %d; want 1 and 1", crashEnded, recovery)
	}
}

// TestFaultCampaign runs the default fault-injection campaign — systematic
// and seeded-random crash placement judged by the invariant oracles,
// including the algorithm's RMR budget ceiling — under both cost models.
func TestFaultCampaign(t *testing.T) {
	algtest.Campaign(t, rspin.New(), 3, 8, sim.CC)
	algtest.Campaign(t, rspin.New(), 3, 8, sim.DSM)
}

func TestNativeConformance(t *testing.T) {
	algtest.RunNative(t, rspin.New(), algtest.NativeOptions{})
}
