// Package rspin implements the simplest recoverable mutual exclusion
// algorithm: a CAS spin lock whose lock word carries the owner's id. Because
// ownership is readable from shared memory, a crashed process can always
// re-derive whether its acquisition took effect — the "ID-carrying
// operation" discipline shared by all recoverable algorithms in this
// repository. It is the correctness workhorse for the checker; its RMR
// complexity is unbounded under contention (every handoff invalidates every
// waiter), so it also anchors the bottom of the experiment landscape.
package rspin

import (
	"fmt"
	"strconv"

	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/word"
)

// Per-process persistent phase values.
const (
	phaseIdle word.Word = iota
	phaseTrying
	phaseExiting
)

// Lock is the recoverable CAS spin lock algorithm.
type Lock struct{}

var _ mutex.Algorithm = Lock{}

// New returns the algorithm.
func New() Lock { return Lock{} }

// Name identifies the algorithm.
func (Lock) Name() string { return "rspin" }

// Recoverable reports true.
func (Lock) Recoverable() bool { return true }

// Make allocates the lock word (holding ids as id+1, so 2^w > n is required)
// and one persistent phase cell per process in its own segment.
func (Lock) Make(mem memory.Allocator, n int) (mutex.Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("rspin: need at least 1 process, got %d", n)
	}
	if !mem.Width().Fits(word.Word(n)) {
		return nil, fmt.Errorf("rspin: %d processes need ids wider than %d bits", n, mem.Width())
	}
	if !mem.Width().Fits(phaseExiting) {
		return nil, fmt.Errorf("rspin: word width %d too narrow for phase cells", mem.Width())
	}
	in := &instance{
		lock:  mem.NewCell("rspin.lock", memory.Shared, 0),
		phase: make([]memory.Cell, n),
	}
	for i := 0; i < n; i++ {
		in.phase[i] = mem.NewCell("rspin.phase."+strconv.Itoa(i), i, phaseIdle)
	}
	return in, nil
}

type instance struct {
	lock  memory.Cell
	phase []memory.Cell
}

var (
	_ mutex.Instance          = (*instance)(nil)
	_ mutex.SymmetricInstance = (*instance)(nil)
)

// symmetryMaxProcs caps the declared group: S_n declarations are only built
// where the checker can use them (n! group elements are enumerated per state
// key). Larger instances simply declare nothing.
const symmetryMaxProcs = 6

// Symmetry declares full S_n equivariance: the algorithm treats process ids
// as opaque. The lock word is pid-coded (holds id+1 via CAS, 0 when free) and
// each process's phase cell moves to its renamed owner; no other state
// depends on ids, so every permutation of [0,n) is a symmetry.
func (in *instance) Symmetry() *sim.Symmetry {
	n := len(in.phase)
	if n > symmetryMaxProcs {
		return nil
	}
	sym := sim.NewSymmetry(n)
	sym.PIDCell(in.lock.CellID())
	for _, procs := range sim.Permutations(n)[1:] {
		p := sim.NewPerm(procs)
		for i := range in.phase {
			p.MapCell(in.phase[i].CellID(), in.phase[procs[i]].CellID())
		}
		sym.Add(p)
	}
	return sym
}

func (in *instance) Bind(env memory.Env) mutex.Handle {
	return &handle{env: env, in: in, id: env.ID()}
}

type handle struct {
	env memory.Env
	in  *instance
	id  int
}

var _ mutex.Handle = (*handle)(nil)

func (h *handle) me() word.Word { return word.Word(h.id + 1) }

// Lock persists the trying phase, then competes by installing the caller's
// id with CAS.
func (h *handle) Lock() {
	h.env.Write(h.in.phase[h.id], phaseTrying)
	h.acquire()
}

// acquire loops CAS(0 -> me), parking while the lock is held.
func (h *handle) acquire() {
	for {
		if h.env.CAS(h.in.lock, 0, h.me()) == 0 {
			return
		}
		h.env.SpinUntil(h.in.lock, func(v word.Word) bool { return v == 0 })
	}
}

// Unlock persists the exiting phase, frees the lock, and returns to idle.
func (h *handle) Unlock() {
	h.env.Write(h.in.phase[h.id], phaseExiting)
	h.env.Write(h.in.lock, 0)
	h.env.Write(h.in.phase[h.id], phaseIdle)
}

// Recover re-derives the protocol position from the persistent phase cell and
// the id stored in the lock word.
func (h *handle) Recover() mutex.RecoverStatus {
	switch h.env.Read(h.in.phase[h.id]) {
	case phaseTrying:
		// Did our CAS take effect before the crash? The lock word knows.
		if h.env.Read(h.in.lock) == h.me() {
			return mutex.RecoverAcquired
		}
		h.acquire()
		return mutex.RecoverAcquired
	case phaseExiting:
		// The release write may or may not have landed; it is idempotent to
		// complete it, and only we can hold our own id.
		if h.env.Read(h.in.lock) == h.me() {
			h.env.Write(h.in.lock, 0)
		}
		h.env.Write(h.in.phase[h.id], phaseIdle)
		return mutex.RecoverReleased
	default:
		return mutex.RecoverIdle
	}
}
