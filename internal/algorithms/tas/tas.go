// Package tas implements the simplest conventional mutual exclusion
// algorithm: a test-and-set spin lock. It is the unbounded-RMR baseline of
// the experiment landscape (every handoff invalidates every waiter's cache
// copy, so a passage can cost Θ(contenders) RMRs in CC and is unbounded in
// DSM), and it is not recoverable: a crash while holding the lock wedges the
// system.
package tas

import (
	"fmt"

	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/word"
)

// Lock is the test-and-set spin lock algorithm.
type Lock struct{}

var _ mutex.Algorithm = Lock{}

// New returns the algorithm.
func New() Lock { return Lock{} }

// Name identifies the algorithm.
func (Lock) Name() string { return "tas" }

// Recoverable reports false: TAS cannot survive crashes.
func (Lock) Recoverable() bool { return false }

// Make allocates the single lock word.
func (Lock) Make(mem memory.Allocator, n int) (mutex.Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("tas: need at least 1 process, got %d", n)
	}
	return &instance{lock: mem.NewCell("tas.lock", memory.Shared, 0)}, nil
}

type instance struct {
	lock memory.Cell
}

var _ mutex.Instance = (*instance)(nil)

func (in *instance) Bind(env memory.Env) mutex.Handle {
	return &handle{env: env, lock: in.lock}
}

type handle struct {
	mutex.Unrecoverable

	env  memory.Env
	lock memory.Cell
}

var _ mutex.Handle = (*handle)(nil)

// Lock spins until the test-and-set succeeds.
func (h *handle) Lock() {
	for {
		if memory.TAS(h.env, h.lock) {
			return
		}
		h.env.SpinUntil(h.lock, func(v word.Word) bool { return v == 0 })
	}
}

// Unlock releases the lock.
func (h *handle) Unlock() {
	h.env.Write(h.lock, 0)
}
