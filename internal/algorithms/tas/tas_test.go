package tas_test

import (
	"testing"

	"rme/internal/algorithms/tas"
	"rme/internal/algtest"
	"rme/internal/mutex"
	"rme/internal/sim"
)

func TestConformance(t *testing.T) {
	algtest.Run(t, tas.New(), algtest.Options{})
}

func TestNameAndRecoverability(t *testing.T) {
	alg := tas.New()
	if alg.Name() != "tas" {
		t.Errorf("name = %q", alg.Name())
	}
	if alg.Recoverable() {
		t.Error("tas must not claim recoverability")
	}
}

func TestCrashRefused(t *testing.T) {
	s, err := mutex.NewSession(mutex.Config{
		Procs: 2, Width: 8, Model: sim.CC, Algorithm: tas.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.CrashProc(0); err == nil {
		t.Fatal("crashing a non-recoverable algorithm must be refused")
	}
}

func TestWorksAtWidthOne(t *testing.T) {
	// TAS stores only 0/1, so it works even on 1-bit words — the extreme
	// end of the paper's word-size spectrum.
	s, err := mutex.NewSession(mutex.Config{
		Procs: 4, Width: 1, Model: sim.CC, Algorithm: tas.New(), Passes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RunRoundRobin(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultCampaign runs the default fault-injection campaign: crash-free
// seeded-random schedules judged by the invariant oracles, including the
// algorithm's RMR budget ceiling.
func TestFaultCampaign(t *testing.T) {
	algtest.Campaign(t, tas.New(), 3, 8, sim.CC)
}

func TestNativeConformance(t *testing.T) {
	algtest.RunNative(t, tas.New(), algtest.NativeOptions{})
}
