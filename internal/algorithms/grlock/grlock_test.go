package grlock_test

import (
	"strings"
	"testing"

	"rme/internal/algorithms/grlock"
	"rme/internal/algtest"
	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/sim"
)

func TestConformance(t *testing.T) {
	algtest.Run(t, grlock.New(), algtest.Options{})
}

func TestWidthValidation(t *testing.T) {
	mem, err := memory.NewNativeMem(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := grlock.New().Make(mem, 3); err == nil {
		t.Error("3 processes on 2-bit words must be rejected (ticket headroom)")
	}
	if _, err := grlock.New().Make(mem, 2); err != nil {
		t.Errorf("2 processes on 2-bit words should work: %v", err)
	}
}

func TestLinearRMRGrowth(t *testing.T) {
	// grlock scans all n rivals per passage, so its RMR complexity is Θ(n) —
	// the shape of the first RME algorithm [12] in the paper's landscape.
	measure := func(n int) int {
		s, err := mutex.NewSession(mutex.Config{
			Procs: n, Width: 16, Model: sim.CC, Algorithm: grlock.New(), Passes: 1, NoTrace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := s.RunRoundRobin(); err != nil {
			t.Fatal(err)
		}
		return s.MaxPassageRMRs(sim.CC)
	}
	r4, r16 := measure(4), measure(16)
	if r16 < 16 {
		t.Errorf("n=16: max passage RMRs = %d, expected at least n (full scan)", r16)
	}
	if r16 <= r4 {
		t.Errorf("RMRs did not grow with n: %d (n=4) vs %d (n=16)", r4, r16)
	}
}

func TestTicketOverflowPanicsClearly(t *testing.T) {
	// With a 3-bit word, tickets above 7 overflow. Sequential (uncontended)
	// passages keep tickets at 1, so this needs real overlap: run many
	// random-schedule passes and accept either success or the documented
	// overflow failure — what must never happen is a silent wrap violating
	// mutual exclusion.
	for seed := int64(0); seed < 10; seed++ {
		s, err := mutex.NewSession(mutex.Config{
			Procs: 4, Width: 3, Model: sim.CC, Algorithm: grlock.New(), Passes: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		err = s.RunRandom(seed, mutex.RandomRunOptions{})
		if err != nil && !isOverflow(err) {
			t.Fatalf("seed %d: unexpected failure: %v", seed, err)
		}
		if v := s.Violations(); len(v) > 0 {
			t.Fatalf("seed %d: mutual exclusion violated: %v", seed, v)
		}
		s.Close()
	}
}

func isOverflow(err error) bool {
	return err != nil && strings.Contains(err.Error(), "overflows")
}

// TestFaultCampaign runs the default fault-injection campaign — systematic
// and seeded-random crash placement judged by the invariant oracles,
// including the algorithm's RMR budget ceiling — under both cost models.
func TestFaultCampaign(t *testing.T) {
	algtest.Campaign(t, grlock.New(), 3, 8, sim.CC)
	algtest.Campaign(t, grlock.New(), 3, 8, sim.DSM)
}

func TestNativeConformance(t *testing.T) {
	algtest.RunNative(t, grlock.New(), algtest.NativeOptions{})
}
