// Package grlock implements a recoverable O(n)-RMR mutual exclusion
// algorithm from reads and writes only, standing in for the first RME
// algorithm of Golab and Ramaraju [12] in the paper's landscape.
//
// The construction is Lamport's bakery made recoverable. Reads and writes
// are naturally crash-tolerant: every write is to a cell only this process
// writes, so re-executing an interrupted section is idempotent, and a
// per-process persistent phase cell pins down which section to re-execute.
// Crash windows:
//
//   - crash while choosing (choosing[p] may be 1, number[p] may or may not
//     be written): recovery simply re-runs the doorway; a re-chosen number
//     is safe because any rival that compared against the old number either
//     deferred to us (and still will — it re-reads number[p] while waiting)
//     or proceeded ahead of us (and our new, re-chosen number orders us
//     behind or ahead consistently when we re-scan);
//   - crash while waiting or inside the CS (phase = trying, number set):
//     recovery re-runs the wait loop; our priority (number[p], p) is
//     unchanged, so the loop re-admits us without violating exclusion —
//     this yields critical-section re-entry;
//   - crash while exiting: recovery completes the (idempotent) exit writes.
//
// Bakery tickets grow with contention; they live in w-bit words, so the
// handle panics if a ticket would overflow the word — configure a wide
// enough word (or few enough passages) for the run.
package grlock

import (
	"fmt"
	"strconv"

	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/word"
)

// Per-process persistent phase values.
const (
	phaseIdle word.Word = iota
	phaseTrying
	phaseExiting
)

// Lock is the recoverable bakery algorithm.
type Lock struct{}

var _ mutex.Algorithm = Lock{}

// New returns the algorithm.
func New() Lock { return Lock{} }

// Name identifies the algorithm.
func (Lock) Name() string { return "grlock" }

// Recoverable reports true.
func (Lock) Recoverable() bool { return true }

// Make allocates choosing/number/phase cells for each process in its own
// segment. Tickets must fit in w bits; Make requires room for at least n+1
// ticket values so a single contended round cannot overflow.
func (Lock) Make(mem memory.Allocator, n int) (mutex.Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("grlock: need at least 1 process, got %d", n)
	}
	if !mem.Width().Fits(word.Word(n + 1)) {
		return nil, fmt.Errorf("grlock: %d processes need tickets wider than %d bits", n, mem.Width())
	}
	in := &instance{
		n:        n,
		choosing: make([]memory.Cell, n),
		number:   make([]memory.Cell, n),
		phase:    make([]memory.Cell, n),
	}
	for i := 0; i < n; i++ {
		s := strconv.Itoa(i)
		in.choosing[i] = mem.NewCell("grlock.choosing."+s, i, 0)
		in.number[i] = mem.NewCell("grlock.number."+s, i, 0)
		in.phase[i] = mem.NewCell("grlock.phase."+s, i, phaseIdle)
	}
	return in, nil
}

type instance struct {
	n        int
	choosing []memory.Cell
	number   []memory.Cell
	phase    []memory.Cell
}

var _ mutex.Instance = (*instance)(nil)

func (in *instance) Bind(env memory.Env) mutex.Handle {
	return &handle{env: env, in: in, id: env.ID()}
}

type handle struct {
	env memory.Env
	in  *instance
	id  int
}

var _ mutex.Handle = (*handle)(nil)

// Lock persists intent, runs the bakery doorway, and waits its turn.
func (h *handle) Lock() {
	h.env.Write(h.in.phase[h.id], phaseTrying)
	h.choose()
	h.wait()
}

// choose runs the bakery doorway: pick 1 + max of all visible numbers.
func (h *handle) choose() {
	h.env.Write(h.in.choosing[h.id], 1)
	var max word.Word
	for j := 0; j < h.in.n; j++ {
		if j == h.id {
			continue
		}
		if v := h.env.Read(h.in.number[j]); v > max {
			max = v
		}
	}
	ticket := max + 1
	if !h.env.Width().Fits(ticket) {
		panic(fmt.Sprintf("grlock: ticket %d overflows %d-bit word", ticket, h.env.Width()))
	}
	h.env.Write(h.in.number[h.id], ticket)
	h.env.Write(h.in.choosing[h.id], 0)
}

// wait blocks until every rival with a smaller (number, id) pair is gone.
func (h *handle) wait() {
	mine := h.env.Read(h.in.number[h.id])
	for j := 0; j < h.in.n; j++ {
		if j == h.id {
			continue
		}
		j := j
		h.env.SpinUntil(h.in.choosing[j], func(v word.Word) bool { return v == 0 })
		h.env.SpinUntil(h.in.number[j], func(v word.Word) bool {
			return v == 0 || v > mine || (v == mine && j > h.id)
		})
	}
}

// Unlock persists the exiting phase and clears the ticket.
func (h *handle) Unlock() {
	h.env.Write(h.in.phase[h.id], phaseExiting)
	h.env.Write(h.in.number[h.id], 0)
	h.env.Write(h.in.phase[h.id], phaseIdle)
}

// Recover re-derives the protocol position from persistent cells.
func (h *handle) Recover() mutex.RecoverStatus {
	switch h.env.Read(h.in.phase[h.id]) {
	case phaseTrying:
		// If the doorway did not complete (choosing still set, or no ticket
		// recorded), re-run it; then re-run the wait loop. Both are
		// idempotent, and if we were already in the CS the wait loop
		// re-admits us immediately.
		if h.env.Read(h.in.choosing[h.id]) == 1 || h.env.Read(h.in.number[h.id]) == 0 {
			h.choose()
		}
		h.wait()
		return mutex.RecoverAcquired
	case phaseExiting:
		h.env.Write(h.in.number[h.id], 0)
		h.env.Write(h.in.phase[h.id], phaseIdle)
		return mutex.RecoverReleased
	default:
		return mutex.RecoverIdle
	}
}
