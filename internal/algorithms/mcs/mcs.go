// Package mcs implements the Mellor-Crummey–Scott queue lock [21] on the
// w-bit word model: queue "pointers" are process ids, so a cell needs only
// ceil(log2(n+1)) bits. MCS achieves O(1) RMRs per passage in both CC and
// DSM (each process spins on a cell in its own segment).
//
// MCS is the paper's §1.1 cautionary tale for recoverability: the
// fetch-and-store on the tail tells each arriving process exactly who its
// predecessor is, so in a crash-free world no process can be "hidden" — which
// is why the conventional lower bound of Anderson–Kim does not survive FAS,
// and why the paper's adversary needs crash steps to hide processes again.
// MCS itself is not recoverable: a crash between the tail swap and the
// predecessor link leaves the queue severed.
package mcs

import (
	"fmt"
	"strconv"

	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/word"
)

// Lock is the MCS queue lock algorithm.
type Lock struct{}

var _ mutex.Algorithm = Lock{}

// New returns the algorithm.
func New() Lock { return Lock{} }

// Name identifies the algorithm.
func (Lock) Name() string { return "mcs" }

// Recoverable reports false (see the package comment).
func (Lock) Recoverable() bool { return false }

// Make allocates the tail word plus per-process queue nodes (next, locked) in
// each process's own segment. Ids are stored as id+1, so w must satisfy
// 2^w > n.
func (Lock) Make(mem memory.Allocator, n int) (mutex.Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("mcs: need at least 1 process, got %d", n)
	}
	if !mem.Width().Fits(word.Word(n)) {
		return nil, fmt.Errorf("mcs: %d processes need ids wider than %d bits", n, mem.Width())
	}
	in := &instance{
		tail:   mem.NewCell("mcs.tail", memory.Shared, 0),
		next:   make([]memory.Cell, n),
		locked: make([]memory.Cell, n),
	}
	for i := 0; i < n; i++ {
		in.next[i] = mem.NewCell("mcs.next."+strconv.Itoa(i), i, 0)
		in.locked[i] = mem.NewCell("mcs.locked."+strconv.Itoa(i), i, 0)
	}
	return in, nil
}

type instance struct {
	tail   memory.Cell
	next   []memory.Cell
	locked []memory.Cell
}

var _ mutex.Instance = (*instance)(nil)

func (in *instance) Bind(env memory.Env) mutex.Handle {
	return &handle{env: env, in: in, id: env.ID()}
}

type handle struct {
	mutex.Unrecoverable

	env memory.Env
	in  *instance
	id  int
}

var _ mutex.Handle = (*handle)(nil)

// Lock enqueues behind the current tail and, if there is a predecessor,
// spins on the process's own locked flag until the predecessor hands off.
func (h *handle) Lock() {
	me := word.Word(h.id + 1)
	h.env.Write(h.in.next[h.id], 0)
	// The locked flag must be armed before the predecessor can learn about
	// us (i.e. before the swap), or the handoff write could be lost.
	h.env.Write(h.in.locked[h.id], 1)
	pred := h.env.Swap(h.in.tail, me)
	if pred == 0 {
		return
	}
	h.env.Write(h.in.next[pred-1], me)
	h.env.SpinUntil(h.in.locked[h.id], func(v word.Word) bool { return v == 0 })
}

// Unlock hands the lock to the successor, or frees it if none is queued.
func (h *handle) Unlock() {
	me := word.Word(h.id + 1)
	succ := h.env.Read(h.in.next[h.id])
	if succ == 0 {
		if h.env.CAS(h.in.tail, me, 0) == me {
			return // no successor; the queue is empty again
		}
		// A successor swapped the tail but has not linked yet; wait for it.
		succ = h.env.SpinUntil(h.in.next[h.id], func(v word.Word) bool { return v != 0 })
	}
	h.env.Write(h.in.locked[succ-1], 0)
}
