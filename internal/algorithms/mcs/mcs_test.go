package mcs_test

import (
	"testing"

	"rme/internal/algorithms/mcs"
	"rme/internal/algtest"
	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/sim"
)

func TestConformance(t *testing.T) {
	algtest.Run(t, mcs.New(), algtest.Options{})
}

func TestWidthValidation(t *testing.T) {
	mem, err := memory.NewNativeMem(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mcs.New().Make(mem, 4); err == nil {
		t.Error("4 processes on 2-bit words must be rejected (id 4 does not fit)")
	}
	if _, err := mcs.New().Make(mem, 3); err != nil {
		t.Errorf("3 processes on 2-bit words should work: %v", err)
	}
}

func TestConstantDSMRMRs(t *testing.T) {
	// MCS spins only on cells in the spinner's own segment, so the maximum
	// DSM RMRs per passage must be a small constant independent of n.
	maxAt := func(n int) int {
		s, err := mutex.NewSession(mutex.Config{
			Procs: n, Width: 16, Model: sim.DSM, Algorithm: mcs.New(), Passes: 3, NoTrace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := s.RunRoundRobin(); err != nil {
			t.Fatal(err)
		}
		return s.MaxPassageRMRs(sim.DSM)
	}
	at4, at16 := maxAt(4), maxAt(16)
	if at16 > at4+1 {
		t.Errorf("DSM RMRs per passage grew with n: %d (n=4) -> %d (n=16)", at4, at16)
	}
	// The constant itself: swap + link + handoff reads/writes + CS step.
	if at16 > 8 {
		t.Errorf("DSM RMRs per passage = %d, want a small constant (<= 8)", at16)
	}
}

func TestFIFOOrderUnderLockstep(t *testing.T) {
	// Drive three processes so they enqueue in the order 2, 0, 1 and verify
	// the CS is granted in exactly that order, which is MCS's FIFO property.
	s, err := mutex.NewSession(mutex.Config{
		Procs: 3, Width: 8, Model: sim.CC, Algorithm: mcs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := s.Machine()

	var order []int
	seen := map[int]bool{}
	scan := func() {
		for p := 0; p < 3; p++ {
			if m.Tag(p) == mutex.TagCS && !seen[p] {
				seen[p] = true
				order = append(order, p)
			}
		}
	}

	// Each process's first three steps are: write next, write locked, swap
	// tail. Advance them past the swap in enqueue order 2, 0, 1. (p2 has no
	// predecessor, so its Lock returns right after the swap.)
	for _, p := range []int{2, 0, 1} {
		for i := 0; i < 3; i++ {
			if _, err := s.StepProc(p); err != nil {
				t.Fatal(err)
			}
			scan()
		}
	}
	for !m.AllDone() {
		poised := m.PoisedProcs()
		if len(poised) == 0 {
			t.Fatal("stuck")
		}
		for _, p := range poised {
			if m.ProcDone(p) || !m.Poised(p) {
				continue
			}
			if _, err := s.StepProc(p); err != nil {
				t.Fatal(err)
			}
			scan()
		}
	}
	if len(order) != 3 || order[0] != 2 || order[1] != 0 || order[2] != 1 {
		t.Errorf("CS order = %v, want [2 0 1]", order)
	}
}

// TestFaultCampaign runs the default fault-injection campaign: crash-free
// seeded-random schedules judged by the invariant oracles, including the
// algorithm's RMR budget ceiling.
func TestFaultCampaign(t *testing.T) {
	algtest.Campaign(t, mcs.New(), 3, 8, sim.CC)
}

func TestNativeConformance(t *testing.T) {
	algtest.RunNative(t, mcs.New(), algtest.NativeOptions{})
}
