// Package watree implements the repository's headline upper bound: a
// recoverable mutual exclusion algorithm in the style of Katzan and Morrison
// [19] with O(log_w n) RMRs per passage on w-bit words.
//
// # Construction
//
// Processes climb an arbitration tree of fan-out f ≤ w. Each node carries:
//
//   - reg: a w-bit fetch-and-add register with one bit per child slot. A
//     process registers by FAA(2^slot) — the operation the paper highlights:
//     it simultaneously publishes the caller and returns the exact set of
//     prior registrants. Because only slot s's subtree ever touches bit s
//     (and the FAA is guarded by reading the bit first), a recovering
//     process re-reads reg to learn whether its registration happened:
//     FAA on your own bit is an ID-carrying, crash-recoverable operation.
//     This is precisely the mechanism that defeats the process-hiding
//     adversary when w is large (paper §1.1) — nothing can be hidden,
//     because every registrant leaves a distinct bit.
//   - own: the owner's slot+1 (0 = free). This cell is authoritative for
//     ownership and is what recovery reads; waiters do not spin on it in
//     the common case, so handoffs do not broadcast.
//   - grant[s]: a per-slot doorbell. A releasing owner deregisters with
//     FAA(-2^slot) — whose return value is an atomic snapshot of the
//     remaining registrants — writes own to the successor, and rings only
//     the successor's doorbell: wakeups are targeted, keeping the
//     per-level cost O(1). Doorbells are hints, not ownership: a woken
//     process validates against own, so stale or duplicate rings (which
//     crash recovery may produce) are harmless.
//
// With fan-out f = w the tree has depth ceil(log_w n), matching the paper's
// upper bound; with f = 2 it degrades to a Θ(log n) recoverable tournament;
// with w ≥ n the tree is a single node and every passage costs O(1) RMRs —
// the Katzan–Morrison headline.
//
// # Recoverability
//
// Per-process persistent state is a phase cell plus one unary exit-progress
// flag per level. Entry needs no progress record — a recovering climber
// re-runs the whole climb, and acquire is owner-idempotent because the
// climber still holds every level below the one in flight. Exit progress
// must persist (see descend). The remaining steps are idempotent or guarded
// by readable shared state:
//
//   - registration / deregistration FAAs are guarded by the caller's bit;
//   - ownership is re-derived from own; a first registrant that crashed
//     before recording ownership finds own == 0 and claims it by CAS
//     (no rival can hold the node: later registrants defer to the bits);
//   - an interrupted handoff is completed by the recovering releaser: if
//     own still names it, the successor choice is recomputed from reg;
//     if own already names a successor, the doorbell is re-rung — possibly
//     spuriously, which validation absorbs.
//
// A same-slot teammate can never be confused with the caller at a node:
// levels are acquired bottom-up and released top-down, so while a process
// is mid-protocol at a node it still holds the child node, which every
// teammate would have to own first.
package watree

import (
	"fmt"
	"math/bits"
	"strconv"

	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/word"
)

// Per-process persistent phase values.
const (
	phaseIdle word.Word = iota
	phaseTrying
	phaseExiting
	phaseFastTrying
	phaseFastExiting
)

// Lock is the w-ary recoverable arbitration tree algorithm.
type Lock struct {
	// fanout overrides the tree fan-out; 0 means min(w, n).
	fanout int
	// fast enables the adaptive root fast path (see WithFastPath).
	fast bool
}

var _ mutex.Algorithm = Lock{}

// Option configures the algorithm.
type Option interface {
	apply(*Lock)
}

type fanoutOption int

func (f fanoutOption) apply(l *Lock) { l.fanout = int(f) }

// WithFanout fixes the tree fan-out instead of the default min(w, n).
// Fan-out 2 yields the recoverable binary tournament (Θ(log n) RMRs).
func WithFanout(f int) Option { return fanoutOption(f) }

type fastPathOption struct{}

func (fastPathOption) apply(l *Lock) { l.fast = true }

// WithFastPath enables the adaptive fast path of Katzan–Morrison's
// algorithm (whose RMR complexity is O(min(k, log_w n)) for point
// contention k): the root node reserves one extra slot, serialized by an
// ID-carrying CAS on a fastOwner cell, through which an uncontended
// process acquires in O(1) RMRs instead of climbing the whole tree. If the
// fast CAS is contended, the process falls back to the ordinary climb.
// The extra slot consumes one register bit, so the effective fan-out is
// capped at w-1.
func WithFastPath() Option { return fastPathOption{} }

// New returns the algorithm.
func New(opts ...Option) Lock {
	var l Lock
	for _, o := range opts {
		o.apply(&l)
	}
	return l
}

// Name identifies the algorithm (including the fan-out and fast-path
// policies).
func (l Lock) Name() string {
	name := "watree"
	if l.fanout != 0 {
		name += "(f=" + strconv.Itoa(l.fanout) + ")"
	}
	if l.fast {
		name += "+fast"
	}
	return name
}

// Recoverable reports true.
func (Lock) Recoverable() bool { return true }

// Fanout returns the fan-out the algorithm will use on a machine with the
// given word width for n processes.
func (l Lock) Fanout(w word.Width, n int) int {
	f := l.fanout
	if f == 0 {
		f = int(w)
		if l.fast && f == int(w) {
			f = int(w) - 1 // reserve one register bit for the fast slot
		}
		if n < f {
			f = n
		}
		if f < 2 {
			f = 2
		}
	}
	return f
}

// Make builds the tree. Requirements: w ≥ 2 and fan-out f with 2 ≤ f ≤ w
// and slot ids f+1 representable in a word.
func (l Lock) Make(mem memory.Allocator, n int) (mutex.Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("watree: need at least 1 process, got %d", n)
	}
	w := mem.Width()
	if w < 2 {
		return nil, fmt.Errorf("watree: need word width >= 2, got %d", w)
	}
	f := l.Fanout(w, n)
	if f < 2 {
		f = 2
	}
	slots := f
	if l.fast {
		slots = f + 1 // the root carries the extra fast slot
	}
	if slots > int(w) {
		return nil, fmt.Errorf("watree: %d root slots exceed word width %d (one bit per slot)", slots, w)
	}
	if !w.Fits(word.Word(slots + 1)) {
		return nil, fmt.Errorf("watree: slot ids up to %d do not fit %d-bit words", slots, w)
	}
	if l.fast && !w.Fits(phaseFastExiting) {
		return nil, fmt.Errorf("watree: fast-path phases do not fit %d-bit words", w)
	}
	depth := word.CeilLog(f, n)

	in := &instance{n: n, fanout: f, depth: depth, fast: l.fast && depth > 0}
	// span[k] = f^k for addressing; f^depth >= n so spans fit int.
	in.span = make([]int, depth+1)
	in.span[0] = 1
	for k := 1; k <= depth; k++ {
		in.span[k] = in.span[k-1] * f
	}
	in.levels = make([][]node, depth)
	for lvl := 0; lvl < depth; lvl++ {
		// Level lvl (0 = root) has one node per f^(depth-lvl)-process block.
		blockSize := in.span[depth-lvl]
		count := (n + blockSize - 1) / blockSize
		in.levels[lvl] = make([]node, count)
		for i := 0; i < count; i++ {
			prefix := "watree.L" + strconv.Itoa(lvl) + "." + strconv.Itoa(i)
			grants := f
			if in.fast && lvl == 0 {
				grants = f + 1 // the root's extra fast-slot doorbell
			}
			nd := node{
				reg:   mem.NewCell(prefix+".reg", memory.Shared, 0),
				own:   mem.NewCell(prefix+".own", memory.Shared, 0),
				grant: make([]memory.Cell, grants),
			}
			// A doorbell belongs to a slot's subtree; when that subtree is a
			// single process, place the doorbell in its DSM segment so the
			// wait is a local spin.
			subtree := in.span[depth-lvl-1]
			for s := 0; s < grants; s++ {
				owner := memory.Shared
				if s < f && subtree == 1 && i*f+s < n {
					owner = i*f + s
				}
				nd.grant[s] = mem.NewCell(prefix+".grant."+strconv.Itoa(s), owner, 0)
			}
			in.levels[lvl][i] = nd
		}
	}
	in.phase = make([]memory.Cell, n)
	in.xlvl = make([][]memory.Cell, n)
	if in.fast {
		in.fastOwner = mem.NewCell("watree.fastOwner", memory.Shared, 0)
		in.xfast = make([]memory.Cell, n)
	}
	for i := 0; i < n; i++ {
		s := strconv.Itoa(i)
		in.phase[i] = mem.NewCell("watree.phase."+s, i, phaseIdle)
		in.xlvl[i] = make([]memory.Cell, depth)
		for k := 0; k < depth; k++ {
			in.xlvl[i][k] = mem.NewCell("watree.xlvl."+s+"."+strconv.Itoa(k), i, 0)
		}
		if in.fast {
			in.xfast[i] = mem.NewCell("watree.xfast."+s, i, 0)
		}
	}
	return in, nil
}

// node is one arbitration point.
type node struct {
	reg   memory.Cell   // one registration bit per child slot (FAA register)
	own   memory.Cell   // owner's slot+1, or 0 (authoritative; recovery reads it)
	grant []memory.Cell // per-slot handoff doorbells
}

type instance struct {
	n      int
	fanout int
	depth  int
	fast   bool
	span   []int // span[k] = fanout^k
	levels [][]node
	phase  []memory.Cell
	xlvl   [][]memory.Cell // unary exit progress flags, one per level
	// Fast path state (nil unless fast): the CAS-serialized owner of the
	// root's extra slot, and per-process fast-exit progress flags.
	fastOwner memory.Cell
	xfast     []memory.Cell
}

var _ mutex.Instance = (*instance)(nil)

// watree deliberately does NOT implement mutex.SymmetricInstance. Its
// registration words pack one bit per child slot and its own/grant handoff
// addresses successors by slot position: the FAA return value's bit ORDER is
// protocol state, so renaming two processes does not merely relocate cell
// contents — it would have to reorder bits inside a single word, and even a
// subtree swap changes which register bit a process's whole path touches
// while the handoff scan (lowest-set-bit first) is not equivariant under
// that reordering. The checker's differential suite instead pins that
// running watree with -symmetry on is byte-identical to off (no declared
// group means the canonical key degenerates to the plain key).

func (in *instance) Bind(env memory.Env) mutex.Handle {
	return &handle{env: env, in: in, id: env.ID()}
}

// Depth returns the tree depth (exported for experiment reporting).
func (in *instance) Depth() int { return in.depth }

type handle struct {
	env memory.Env
	in  *instance
	id  int
}

var _ mutex.Handle = (*handle)(nil)

// nodeAt returns the node and child slot process h.id uses at tree level
// lvl (0 = root, depth-1 = leaves).
func (h *handle) nodeAt(lvl int) (*node, int) {
	below := h.in.span[h.in.depth-lvl-1] // processes per child subtree
	idx := h.id / (below * h.in.fanout)
	slot := (h.id / below) % h.in.fanout
	return &h.in.levels[lvl][idx], slot
}

// Lock persists intent and acquires the critical section: through the
// adaptive fast path when it is enabled and uncontended, otherwise by
// climbing the tree.
func (h *handle) Lock() {
	if h.in.fast {
		h.env.Write(h.in.phase[h.id], phaseFastTrying)
		if h.env.CAS(h.in.fastOwner, 0, word.Word(h.id+1)) == 0 {
			h.acquireNode(&h.in.levels[0][0], h.in.fanout)
			return
		}
		// Contended: fall back to the ordinary climb. The fast CAS left no
		// trace (it failed), so only the phase needs rewriting.
	}
	h.env.Write(h.in.phase[h.id], phaseTrying)
	h.climb()
}

// climb acquires levels leaf-to-root. It is re-entrant: acquire at an
// already-owned level returns after two reads, so recovery simply re-climbs
// from the leaves without needing per-level progress records.
func (h *handle) climb() {
	for k := 0; k < h.in.depth; k++ {
		h.acquire(h.in.depth - 1 - k)
	}
}

// acquire wins the node at a tree level.
func (h *handle) acquire(lvl int) {
	nd, slot := h.nodeAt(lvl)
	h.acquireNode(nd, slot)
}

// acquireNode wins one node from the given slot. The function is
// re-entrant: it is the single code path for fresh acquisition and crash
// recovery, for tree slots and for the root's fast slot alike.
func (h *handle) acquireNode(nd *node, slot int) {
	bit := word.Word(1) << uint(slot)
	mine := word.Word(slot + 1)

	// Guarded registration. The FAA return is an atomic snapshot: if no one
	// was registered, the node is (or is about to become) free and we claim
	// it below. The claim itself must be a CAS — a rival that registered
	// right after us also sees own == 0 until our claim lands, and a blind
	// write could clobber its successful claim.
	if h.env.Read(nd.reg)&bit == 0 {
		h.env.Add(nd.reg, bit)
	}
	for {
		switch cur := h.env.Read(nd.own); {
		case cur == mine:
			// Granted by a releaser (who wrote own before ringing), or our
			// own earlier claim.
			return
		case cur == 0:
			// Free node (either we registered first and crashed before
			// recording, or a releaser freed it after our registration).
			if h.env.CAS(nd.own, 0, mine) == 0 {
				return
			}
		case h.env.Read(nd.reg)&(word.Word(1)<<uint(cur-1)) != 0:
			// cur's registration bit is still set: a live owner that has not
			// started releasing. Its eventual deregistration FAA will see
			// our bit, so the handoff chain is guaranteed to ring our
			// doorbell: park on it alone (targeted wakeup).
			h.env.SpinUntil(nd.grant[slot], func(v word.Word) bool { return v == 1 })
			h.env.Write(nd.grant[slot], 0) // consume; validated by the loop
		default:
			// cur is mid-release (bit already cleared): its single pending
			// own write will settle the cell; wait just for that.
			cur := cur
			h.env.SpinUntil(nd.own, func(v word.Word) bool { return v != cur })
		}
	}
}

// Unlock releases whichever path Lock took and returns to idle.
func (h *handle) Unlock() {
	if h.in.fast && h.env.Read(h.in.phase[h.id]) == phaseFastTrying {
		h.unlockFast()
		return
	}
	for k := 0; k < h.in.depth; k++ {
		h.env.Write(h.in.xlvl[h.id][k], 0)
	}
	h.env.Write(h.in.phase[h.id], phaseExiting)
	h.descend(0)
	h.env.Write(h.in.phase[h.id], phaseIdle)
}

// unlockFast releases the root's fast slot. The fast-exit flag plays the
// same role as the per-level exit flags: the root release is only safe to
// re-run while fastOwner still names this process, and fastOwner is
// cleared only after the release completed.
func (h *handle) unlockFast() {
	h.env.Write(h.in.xfast[h.id], 0)
	h.env.Write(h.in.phase[h.id], phaseFastExiting)
	h.finishFastExit()
}

// finishFastExit completes the fast exit from the persistent flags;
// re-entrant (used by Unlock and by crash recovery).
func (h *handle) finishFastExit() {
	if h.env.Read(h.in.xfast[h.id]) == 0 {
		h.releaseNode(&h.in.levels[0][0], h.in.fanout)
		h.env.Write(h.in.xfast[h.id], 1)
	}
	// Only the fast owner clears the cell, and nobody else can write it
	// while it names us, so check-then-write is race-free.
	if h.env.Read(h.in.fastOwner) == word.Word(h.id+1) {
		h.env.Write(h.in.fastOwner, 0)
	}
	h.env.Write(h.in.phase[h.id], phaseIdle)
}

// descend releases levels top-down, recording unary progress after each
// release. Unlike the climb, the descent must persist per-level progress:
// release(k) is only safe to re-run while the level-k+1 node is still held
// (that is what rules out a same-slot teammate owning node k and being
// hijacked by our recovery), and that stops being true once level k+1 has
// been released. The flag is written after release(k) completes, so a crash
// between the two re-runs release(k) while its guard still holds.
func (h *handle) descend(from int) {
	for k := from; k < h.in.depth; k++ {
		h.release(k)
		h.env.Write(h.in.xlvl[h.id][k], 1)
	}
}

// release deregisters from the node at a tree level.
func (h *handle) release(lvl int) {
	nd, slot := h.nodeAt(lvl)
	h.releaseNode(nd, slot)
}

// releaseNode deregisters from one node and hands ownership to a
// registered successor (lowest set bit), or frees the node. Re-entrant.
func (h *handle) releaseNode(nd *node, slot int) {
	bit := word.Word(1) << uint(slot)
	mine := word.Word(slot + 1)

	if h.env.Read(nd.reg)&bit != 0 {
		// Deregister; the FAA return is an atomic snapshot of the remaining
		// registrants, exactly the successor set.
		neg := h.env.Width().Trunc(^bit + 1) // -bit mod 2^w
		old := h.env.Add(nd.reg, neg)
		h.handoff(nd, old&^bit)
		return
	}
	// Recovery: our bit is already clear.
	switch cur := h.env.Read(nd.own); {
	case cur == mine:
		// The handoff write is still pending; recompute the successor set
		// from the current registrants (all of whom are waiting: none can
		// advance while own still names us).
		h.handoff(nd, h.env.Read(nd.reg))
	case cur != 0:
		// Our own write may have landed without the doorbell ring. Re-ring
		// the named owner; if the ring is spurious (our release completed
		// long ago and the chain moved on), doorbell validation absorbs it.
		h.env.Write(nd.grant[cur-1], 1)
	default:
		// own == 0: the node was freed (by us, or later); nothing to do.
	}
}

// handoff passes node ownership to the lowest registered slot (writing own
// first, then ringing only that slot's doorbell), or frees the node.
func (h *handle) handoff(nd *node, rest word.Word) {
	if rest == 0 {
		h.env.Write(nd.own, 0)
		return
	}
	succ := bits.TrailingZeros64(rest)
	h.env.Write(nd.own, word.Word(succ+1))
	h.env.Write(nd.grant[succ], 1)
}

// Recover resumes the interrupted super-passage from the persistent phase
// cell: the climb is re-run in full (acquire is owner-idempotent), the
// descent resumes from the first level whose progress flag is clear, and
// the fast path re-derives its position from fastOwner (an ID-carrying
// CAS leaves ownership readable).
func (h *handle) Recover() mutex.RecoverStatus {
	switch h.env.Read(h.in.phase[h.id]) {
	case phaseTrying:
		h.climb()
		return mutex.RecoverAcquired
	case phaseExiting:
		h.descend(h.exitProgress())
		h.env.Write(h.in.phase[h.id], phaseIdle)
		return mutex.RecoverReleased
	case phaseFastTrying:
		if h.env.Read(h.in.fastOwner) == word.Word(h.id+1) {
			// Our fast CAS took effect: resume the (re-entrant) fast acquire.
			h.acquireNode(&h.in.levels[0][0], h.in.fanout)
			return mutex.RecoverAcquired
		}
		// The crash preempted the CAS (or it lost): retry the whole entry.
		h.Lock()
		return mutex.RecoverAcquired
	case phaseFastExiting:
		h.finishFastExit()
		return mutex.RecoverReleased
	default:
		return mutex.RecoverIdle
	}
}

// exitProgress counts the leading set exit flags (set in order, so the
// first clear flag is the resume level).
func (h *handle) exitProgress() int {
	for k := 0; k < h.in.depth; k++ {
		if h.env.Read(h.in.xlvl[h.id][k]) == 0 {
			return k
		}
	}
	return h.in.depth
}
