package watree_test

import (
	"fmt"
	"testing"

	"rme/internal/algorithms/watree"
	"rme/internal/algtest"
	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/word"
)

func TestConformanceDefaultFanout(t *testing.T) {
	algtest.Run(t, watree.New(), algtest.Options{})
}

func TestConformanceBinaryFanout(t *testing.T) {
	// Fan-out 2 is the recoverable binary tournament — the deepest tree and
	// the most handoff interleavings per passage.
	algtest.Run(t, watree.New(watree.WithFanout(2)), algtest.Options{})
}

func TestConformanceNarrowWord(t *testing.T) {
	// 4-bit words: the regime the paper's lower bound is about. Fan-out is
	// capped at w = 4.
	algtest.Run(t, watree.New(), algtest.Options{Width: 4, MaxProcs: 8, Seeds: 15})
}

func TestMakeValidation(t *testing.T) {
	mem1, err := memory.NewNativeMem(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := watree.New().Make(mem1, 4); err == nil {
		t.Error("width 1 must be rejected")
	}
	mem8, err := memory.NewNativeMem(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := watree.New(watree.WithFanout(9)).Make(mem8, 4); err == nil {
		t.Error("fan-out exceeding word width must be rejected")
	}
	if _, err := watree.New().Make(mem8, 0); err == nil {
		t.Error("0 processes must be rejected")
	}
}

func TestFanoutPolicy(t *testing.T) {
	tests := []struct {
		w    word.Width
		n    int
		want int
	}{
		{64, 1000, 64},
		{8, 1000, 8},
		{64, 4, 4}, // fan-out never exceeds n
		{4, 100, 4},
	}
	for _, tt := range tests {
		if got := watree.New().Fanout(tt.w, tt.n); got != tt.want {
			t.Errorf("Fanout(w=%d, n=%d) = %d, want %d", tt.w, tt.n, got, tt.want)
		}
	}
	if got := watree.New(watree.WithFanout(2)).Fanout(64, 1000); got != 2 {
		t.Errorf("explicit fan-out ignored: %d", got)
	}
}

func TestSingleNodeWhenWordCoversAllProcs(t *testing.T) {
	// With w >= n the tree is one node and a contended passage costs O(1)
	// RMRs — the Katzan–Morrison headline (paper §1). The constant covers
	// registration, the targeted doorbell handshake, release, and the
	// driver's phase bookkeeping; the essential property is that it does
	// not grow with the number of contenders.
	measure := func(n int) int {
		s, err := mutex.NewSession(mutex.Config{
			Procs: n, Width: 32, Model: sim.CC, Algorithm: watree.New(), Passes: 3, NoTrace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := s.RunRoundRobin(); err != nil {
			t.Fatal(err)
		}
		return s.MaxPassageRMRs(sim.CC)
	}
	r4, r8, r24 := measure(4), measure(8), measure(24)
	if r24 > r4+2 || r24 > r8+2 {
		t.Errorf("single-node passage RMRs grew with contention: n=4:%d n=8:%d n=24:%d", r4, r8, r24)
	}
	if r24 > 20 {
		t.Errorf("single-node passage cost %d CC RMRs, want a small constant (<= 20)", r24)
	}
}

func TestDepthDropsWithWiderWords(t *testing.T) {
	// The word-size tradeoff in miniature: same n, growing w, shrinking
	// worst-case passage cost. This is experiment E2's core assertion.
	const n = 64
	measure := func(w word.Width) int {
		s, err := mutex.NewSession(mutex.Config{
			Procs: n, Width: w, Model: sim.CC, Algorithm: watree.New(), Passes: 2, NoTrace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := s.RunRoundRobin(); err != nil {
			t.Fatal(err)
		}
		return s.MaxPassageRMRs(sim.CC)
	}
	narrow := measure(2) // depth ceil(log2 64) = 6
	mid := measure(8)    // depth ceil(log8 64) = 2
	wide := measure(64)  // depth 1
	if !(narrow > mid && mid > wide) {
		t.Errorf("passage RMRs not decreasing in w: w=2:%d w=8:%d w=64:%d", narrow, mid, wide)
	}
}

func TestCrashAtEveryTreeLevel(t *testing.T) {
	// Drive p0 to each possible level of a deep tree and crash it there;
	// recovery must resume the climb exactly once per level.
	const n = 8
	alg := watree.New(watree.WithFanout(2)) // depth 3
	for crashAfter := 0; crashAfter < 20; crashAfter++ {
		s, err := mutex.NewSession(mutex.Config{
			Procs: n, Width: 8, Model: sim.CC, Algorithm: alg,
		})
		if err != nil {
			t.Fatal(err)
		}
		m := s.Machine()
		// p0 takes crashAfter steps (or as many as it has), then crashes.
		taken := 0
		for taken < crashAfter && !m.ProcDone(0) && m.Poised(0) {
			if _, err := s.StepProc(0); err != nil {
				t.Fatal(err)
			}
			taken++
		}
		if !m.ProcDone(0) {
			if _, err := s.CrashProc(0); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.RunRoundRobin(); err != nil {
			t.Fatalf("crashAfter=%d: %v", crashAfter, err)
		}
		if v := s.Violations(); len(v) > 0 {
			t.Fatalf("crashAfter=%d: violations: %v", crashAfter, v)
		}
		s.Close()
	}
}

func TestNames(t *testing.T) {
	if got := watree.New().Name(); got != "watree" {
		t.Errorf("Name() = %q", got)
	}
	if got := watree.New(watree.WithFanout(2)).Name(); got != "watree(f=2)" {
		t.Errorf("Name() = %q", got)
	}
	if !watree.New().Recoverable() {
		t.Error("watree must be recoverable")
	}
}

func TestManyPassesManyWidths(t *testing.T) {
	for _, w := range []word.Width{2, 3, 4, 6, 8, 16, 32, 64} {
		w := w
		t.Run(fmt.Sprintf("w=%d", w), func(t *testing.T) {
			s, err := mutex.NewSession(mutex.Config{
				Procs: 6, Width: w, Model: sim.CC, Algorithm: watree.New(), Passes: 3, NoTrace: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if err := s.RunRoundRobin(); err != nil {
				t.Fatal(err)
			}
			if v := s.Violations(); len(v) > 0 {
				t.Fatalf("violations: %v", v)
			}
		})
	}
}

func TestConformanceFastPath(t *testing.T) {
	algtest.Run(t, watree.New(watree.WithFastPath()), algtest.Options{})
}

func TestConformanceFastPathNarrow(t *testing.T) {
	// 4-bit words with the fast slot: fan-out capped at 3.
	algtest.Run(t, watree.New(watree.WithFastPath()), algtest.Options{Width: 4, MaxProcs: 8, Seeds: 15})
}

func TestFastPathSoloCost(t *testing.T) {
	// The adaptivity claim (Katzan–Morrison O(min(k, log_w n))): a solo
	// acquisition through the fast path costs O(1) RMRs regardless of the
	// tree depth, while the plain tree pays the full climb.
	solo := func(alg mutex.Algorithm) int {
		s, err := mutex.NewSession(mutex.Config{
			Procs: 64, Width: 8, Model: sim.CC, Algorithm: alg, NoTrace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		// Drive only p0 to completion: a contention-free super-passage.
		m := s.Machine()
		for !m.ProcDone(0) {
			if !m.Poised(0) {
				t.Fatal("solo process blocked")
			}
			if _, err := s.StepProc(0); err != nil {
				t.Fatal(err)
			}
		}
		for _, st := range s.Stats() {
			if st.Proc == 0 {
				return st.RMRsCC
			}
		}
		t.Fatal("no passage stats for p0")
		return 0
	}
	plain := solo(watree.New())                     // depth ceil(log8 64) = 2
	fast := solo(watree.New(watree.WithFastPath())) // O(1) via the fast slot
	if fast >= plain {
		t.Errorf("fast path solo cost %d >= plain %d", fast, plain)
	}
	// The decisive property: the fast-path cost is independent of tree
	// depth, while the plain climb scales with it.
	deepPlain := solo(watree.New(watree.WithFanout(2)))                       // depth 6
	deepFast := solo(watree.New(watree.WithFanout(2), watree.WithFastPath())) // still O(1)
	if deepFast > fast+2 {
		t.Errorf("fast path cost grew with depth: %d vs %d", deepFast, fast)
	}
	if deepPlain < 2*deepFast {
		t.Errorf("deep plain climb (%d) should dwarf the fast path (%d)", deepPlain, deepFast)
	}
}

func TestFastPathNames(t *testing.T) {
	if got := watree.New(watree.WithFastPath()).Name(); got != "watree+fast" {
		t.Errorf("Name() = %q", got)
	}
	if got := watree.New(watree.WithFanout(2), watree.WithFastPath()).Name(); got != "watree(f=2)+fast" {
		t.Errorf("Name() = %q", got)
	}
}

func TestFastPathContendedStillTree(t *testing.T) {
	// Under full contention the fast path falls back to the climb; the
	// worst passage stays Θ(depth), and correctness holds.
	s, err := mutex.NewSession(mutex.Config{
		Procs: 16, Width: 4, Model: sim.CC, Algorithm: watree.New(watree.WithFastPath()), Passes: 2, NoTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RunRoundRobin(); err != nil {
		t.Fatal(err)
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
}

// TestFaultCampaign runs the default fault-injection campaign — systematic
// and seeded-random crash placement judged by the invariant oracles,
// including the Θ(log_f n) RMR budget ceiling — for the word-fanout tree
// under CC and the binary-fanout variant under DSM.
func TestFaultCampaign(t *testing.T) {
	algtest.Campaign(t, watree.New(), 3, 8, sim.CC)
	algtest.Campaign(t, watree.New(watree.WithFanout(2)), 3, 8, sim.DSM)
}

func TestNativeConformance(t *testing.T) {
	algtest.RunNative(t, watree.New(), algtest.NativeOptions{})
}

func TestNativeConformanceBinaryFanout(t *testing.T) {
	// The deepest tree: most levels of handoff state to recover through.
	algtest.RunNative(t, watree.New(watree.WithFanout(2)), algtest.NativeOptions{Procs: []int{2, 4}})
}

func TestNativeConformanceFastPath(t *testing.T) {
	algtest.RunNative(t, watree.New(watree.WithFastPath()), algtest.NativeOptions{Procs: []int{2, 4}})
}

func TestNativeConformanceNarrowWord(t *testing.T) {
	// Narrow words force the native CAS-loop arithmetic paths end to end.
	algtest.RunNative(t, watree.New(), algtest.NativeOptions{Width: 8, Procs: []int{2, 4}})
}
