package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rme/internal/sim"
	"rme/internal/trace"
)

func TestStartCPUProfileDisabled(t *testing.T) {
	stop, err := StartCPUProfile("")
	if err != nil {
		t.Fatal(err)
	}
	if stop == nil {
		t.Fatal("stop must never be nil")
	}
	stop() // must be safe to call
}

func TestStartCPUProfileWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := StartCPUProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record; the file is
	// valid (header + samples) even if no sample lands.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	stop()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("CPU profile is empty")
	}
}

func TestStartCPUProfileBadPath(t *testing.T) {
	stop, err := StartCPUProfile(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"))
	if err == nil {
		t.Fatal("want error for unwritable path")
	}
	if stop == nil {
		t.Fatal("stop must never be nil, even on error")
	}
	stop()
}

func TestWriteHeapProfile(t *testing.T) {
	if err := WriteHeapProfile(""); err != nil {
		t.Fatalf("empty path must be a no-op, got %v", err)
	}
	path := filepath.Join(t.TempDir(), "mem.pprof")
	if err := WriteHeapProfile(path); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("heap profile is empty")
	}
	if err := WriteHeapProfile(filepath.Join(t.TempDir(), "no", "such", "dir", "mem.pprof")); err == nil {
		t.Fatal("want error for unwritable path")
	}
}

func TestExportTrace(t *testing.T) {
	runs := []trace.Run{{Label: "unit", Procs: 1, Model: sim.CC}}
	if err := ExportTrace("", "jsonl", runs); err != nil {
		t.Fatalf("empty path must be a no-op, got %v", err)
	}
	if err := ExportTrace(filepath.Join(t.TempDir(), "t.jsonl"), "bogus", runs); err == nil {
		t.Fatal("want error for unknown format")
	}
	path := filepath.Join(t.TempDir(), "t.jsonl")
	if err := ExportTrace(path, "jsonl", runs); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "unit") {
		t.Fatalf("exported trace missing run label:\n%s", blob)
	}
}

func TestSummarizeTraceTopZero(t *testing.T) {
	var sb strings.Builder
	SummarizeTrace(&sb, []trace.Run{{Label: "unit", Procs: 1, Model: sim.CC}}, sim.CC, 0)
	if sb.Len() != 0 {
		t.Fatalf("top=0 must print nothing, got %q", sb.String())
	}
	SummarizeTrace(&sb, []trace.Run{{Label: "unit", Procs: 1, Model: sim.CC}}, sim.CC, 3)
	if sb.Len() == 0 {
		t.Fatal("top=3 must print the attribution tables")
	}
}
