// Package cliutil holds small helpers shared by the cmd/ mains: pprof
// profiling flags and trace-export plumbing. Everything here writes its
// diagnostics to stderr — stdout belongs to the tools' reports, which must
// stay byte-identical across -parallel settings.
package cliutil

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"rme/internal/sim"
	"rme/internal/trace"
)

// StartCPUProfile begins a CPU profile to the given path (empty = off) and
// returns a stop function for defer. The stop function is never nil.
func StartCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return func() {}, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return func() {}, err
	}
	return func() {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
		}
	}, nil
}

// WriteHeapProfile writes a heap profile to the given path (empty = no-op)
// after a final GC, so the profile reflects live allocations.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ExportTrace writes captured runs to path in the given format (flag
// spelling) and notes the export on stderr. No-op when path is empty.
func ExportTrace(path, format string, runs []trace.Run) error {
	if path == "" {
		return nil
	}
	f, err := trace.ParseFormat(format)
	if err != nil {
		return err
	}
	if err := trace.WriteFile(path, f, runs); err != nil {
		return err
	}
	events := 0
	for _, r := range runs {
		events += len(r.Events)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%s, %d runs, %d events)\n", path, f, len(runs), events)
	return nil
}

// SummarizeTrace prints the hottest-cells / costliest-procs attribution of
// the captured runs to w when top > 0.
func SummarizeTrace(w io.Writer, runs []trace.Run, model sim.Model, top int) {
	if top <= 0 {
		return
	}
	trace.WriteSummary(w, trace.Merge(runs), model, top)
}
