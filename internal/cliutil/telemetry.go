package cliutil

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rme/internal/telemetry"
)

// Telemetry bundles the shared observability flags (-heartbeat, -metrics,
// -debugaddr) every cmd/ main registers. The registry exists only when at
// least one flag is set, so instrumented code pays a single nil check when
// telemetry is off — and nothing at all feeds back into results, so report
// output is byte-identical either way.
type Telemetry struct {
	// Heartbeat is the progress-line interval (0 = no stderr heartbeat).
	Heartbeat time.Duration
	// MetricsPath receives one JSONL snapshot per tick plus a final
	// cumulative record ("" = no stream).
	MetricsPath string
	// DebugAddr starts the debug HTTP server (/metrics, expvar, pprof) when
	// non-empty.
	DebugAddr string

	reg *telemetry.Registry
}

// TelemetryFlags registers the shared flags on fs and returns the holder to
// Start after flag parsing.
func TelemetryFlags(fs *flag.FlagSet) *Telemetry {
	t := &Telemetry{}
	fs.DurationVar(&t.Heartbeat, "heartbeat", 0,
		"emit progress lines to stderr at this interval (0 = off)")
	fs.StringVar(&t.MetricsPath, "metrics", "",
		"append JSONL metric snapshots to this file (one per heartbeat tick plus a final cumulative record)")
	fs.StringVar(&t.DebugAddr, "debugaddr", "",
		"serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
	return t
}

// Enabled reports whether any telemetry flag was set.
func (t *Telemetry) Enabled() bool {
	return t.Heartbeat > 0 || t.MetricsPath != "" || t.DebugAddr != ""
}

// Registry returns the live registry, or nil when telemetry is disabled.
// Subsystem configs accept the nil directly.
func (t *Telemetry) Registry() *telemetry.Registry { return t.reg }

// Start brings up whatever the flags asked for — registry, heartbeat,
// JSONL stream, debug server — and returns a stop function for defer (never
// nil). label prefixes the heartbeat lines; view selects the progress
// metric, ratio columns, and ETA target (see telemetry.View).
func (t *Telemetry) Start(label string, view telemetry.View) (stop func(), err error) {
	stop = func() {}
	if !t.Enabled() {
		return stop, nil
	}
	t.reg = telemetry.New()

	var srv *telemetry.DebugServer
	if t.DebugAddr != "" {
		srv, err = telemetry.ServeDebug(t.DebugAddr, t.reg)
		if err != nil {
			return stop, fmt.Errorf("debugaddr: %w", err)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics, /debug/vars, /debug/pprof)\n", srv.Addr())
	}

	var mf *os.File
	if t.MetricsPath != "" {
		mf, err = os.Create(t.MetricsPath)
		if err != nil {
			srv.Close()
			return stop, fmt.Errorf("metrics: %w", err)
		}
	}

	cfg := telemetry.HeartbeatConfig{
		Registry: t.reg,
		Interval: t.Heartbeat,
		Label:    label,
		View:     view,
	}
	if t.Heartbeat > 0 {
		cfg.Out = os.Stderr
	} else if mf != nil {
		// A metrics stream without -heartbeat still ticks, silently.
		cfg.Interval = time.Second
	}
	if mf != nil {
		cfg.Metrics = mf
	}
	hb := telemetry.StartHeartbeat(cfg)

	return func() {
		hb.Stop()
		if mf != nil {
			if err := mf.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "metrics:", err)
			}
		}
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "debugaddr:", err)
		}
	}, nil
}
