package cliutil

import (
	"flag"
	"fmt"
	"os"

	"rme/internal/perflog"
	"rme/internal/telemetry"
)

// Ledger bundles the shared perf-ledger flags (-ledger, -runlabel) every
// cmd/ main registers. Like the Telemetry bundle, it is strictly off the
// result path: the flags decide only whether a run manifest is appended to a
// JSONL ledger after the run, never what the run computes, so all -json
// parity guarantees hold with the ledger on or off.
type Ledger struct {
	// Path is the JSONL ledger file to append run manifests to ("" = off).
	Path string
	// Label tags the appended manifests (free-form; excluded from run
	// identity so a relabelled rerun still matches its baseline).
	Label string
}

// LedgerFlags registers the shared flags on fs and returns the holder to
// Emit after the run.
func LedgerFlags(fs *flag.FlagSet) *Ledger {
	l := &Ledger{}
	fs.StringVar(&l.Path, "ledger", "",
		"append run manifests (config digest, deterministic counters, wall samples) to this JSONL perf ledger")
	fs.StringVar(&l.Label, "runlabel", "",
		"free-form label stamped on ledger manifests (e.g. baseline, ci, a ticket id)")
	return l
}

// Enabled reports whether -ledger was set.
func (l *Ledger) Enabled() bool { return l.Path != "" }

// Emit stamps label, build provenance, and the telemetry registry's final
// snapshot (reg may be nil) onto each manifest and appends them to the
// ledger. No-op when the ledger is disabled. Errors are returned, not fatal:
// a failed ledger append must not fail the run that produced the results.
func (l *Ledger) Emit(reg *telemetry.Registry, ms ...*perflog.Manifest) error {
	if !l.Enabled() || len(ms) == 0 {
		return nil
	}
	tel := reg.Export()
	for _, m := range ms {
		m.Label = l.Label
		m.Provenance = perflog.Build()
		m.Telemetry = tel
	}
	if err := perflog.Append(l.Path, ms...); err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	fmt.Fprintf(os.Stderr, "ledger: appended %d manifest(s) to %s\n", len(ms), l.Path)
	return nil
}

// VersionFlag registers the shared -version flag on fs.
func VersionFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print build provenance (go version, git revision, dirty bit) and exit")
}

// VersionString renders the standard -version banner for a tool.
func VersionString(tool string) string {
	return tool + " " + perflog.Build().Short()
}
