package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rme/internal/telemetry"
)

func parseTelemetry(t *testing.T, args ...string) *Telemetry {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	tele := TelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return tele
}

func TestTelemetryFlagsRegistered(t *testing.T) {
	tele := parseTelemetry(t, "-heartbeat", "250ms", "-metrics", "m.jsonl", "-debugaddr", "localhost:6060")
	if tele.Heartbeat != 250*time.Millisecond || tele.MetricsPath != "m.jsonl" || tele.DebugAddr != "localhost:6060" {
		t.Fatalf("flags not parsed: %+v", tele)
	}
	if !tele.Enabled() {
		t.Fatal("Enabled() = false with all flags set")
	}
}

func TestTelemetryDisabledIsFree(t *testing.T) {
	tele := parseTelemetry(t)
	if tele.Enabled() {
		t.Fatal("Enabled() = true with no flags set")
	}
	stop, err := tele.Start("test", telemetry.View{})
	if err != nil {
		t.Fatal(err)
	}
	if tele.Registry() != nil {
		t.Fatal("disabled telemetry must not allocate a registry")
	}
	stop() // must be safe
}

// TestTelemetryMetricsOnlyStream: -metrics without -heartbeat still writes a
// JSONL stream (baseline + final at minimum), with nothing on stderr.
func TestTelemetryMetricsOnlyStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.jsonl")
	tele := parseTelemetry(t, "-metrics", path)
	stop, err := tele.Start("unit", telemetry.View{})
	if err != nil {
		t.Fatal(err)
	}
	reg := tele.Registry()
	if reg == nil {
		t.Fatal("enabled telemetry must allocate a registry")
	}
	reg.Counter("unit_work").Add(7)
	stop()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := telemetry.ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatalf("want baseline + final records, got %d", len(recs))
	}
	last := recs[len(recs)-1]
	if !last.Final || last.Label != "unit" || last.Metrics["unit_work"] != 7 {
		t.Fatalf("bad final record: %+v", last)
	}
}

func TestTelemetryStartErrors(t *testing.T) {
	bad := parseTelemetry(t, "-metrics", filepath.Join(t.TempDir(), "no", "such", "dir", "m.jsonl"))
	if _, err := bad.Start("unit", telemetry.View{}); err == nil {
		t.Fatal("want error for unwritable -metrics path")
	}
	badAddr := parseTelemetry(t, "-debugaddr", "256.0.0.1:bogus")
	if _, err := badAddr.Start("unit", telemetry.View{}); err == nil {
		t.Fatal("want error for unusable -debugaddr")
	}
}
