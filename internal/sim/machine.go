package sim

import (
	"errors"
	"fmt"

	"rme/internal/memory"
	"rme/internal/word"
)

// Config describes a simulated machine.
type Config struct {
	// Procs is the number n of processes.
	Procs int
	// Width is the word size w in bits of every base object.
	Width word.Width
	// Model selects the RMR accounting rule used for scheduling decisions
	// (WouldRMR, RMRs). Both models' counters are always maintained.
	Model Model
	// NoTrace disables trace retention (counters and schedules remain).
	NoTrace bool
	// MaxSteps caps the number of actions; 0 means DefaultMaxSteps.
	MaxSteps int
}

// DefaultMaxSteps bounds runaway executions (e.g. livelocking algorithms
// under adversarial schedules) so tests fail instead of hanging.
const DefaultMaxSteps = 50_000_000

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Procs < 1 {
		return fmt.Errorf("sim: need at least 1 process, got %d", c.Procs)
	}
	if !c.Width.Valid() {
		return fmt.Errorf("sim: invalid word width %d", c.Width)
	}
	if !c.Model.Valid() {
		return fmt.Errorf("sim: invalid model %d", c.Model)
	}
	return nil
}

// Program is the code a simulated process executes. Run is invoked once at
// the start; after each crash step, Recover is invoked with all local
// variables (anything not stored in shared cells) reset — the implementation
// must not carry mutable state across invocations except through shared
// memory, mirroring the paper's crash model.
type Program interface {
	Run(p *Proc)
	Recover(p *Proc)
}

// ProgramFuncs adapts plain functions to Program.
type ProgramFuncs struct {
	RunFunc     func(p *Proc)
	RecoverFunc func(p *Proc)
}

var _ Program = ProgramFuncs{}

// Run invokes RunFunc.
func (f ProgramFuncs) Run(p *Proc) { f.RunFunc(p) }

// Recover invokes RecoverFunc; if nil, Run is invoked instead.
func (f ProgramFuncs) Recover(p *Proc) {
	if f.RecoverFunc != nil {
		f.RecoverFunc(p)
		return
	}
	f.RunFunc(p)
}

// Machine is a deterministic simulated shared-memory multiprocessor. It is a
// single-controller object: all methods must be called from one goroutine
// (the controller); process bodies run step-gated so that exactly one body
// executes at a time.
type Machine struct {
	cfg      Config
	cells    []*simCell
	procs    []*Proc
	trace    []Event
	schedule Schedule
	seq      int
	started  bool
	closed   bool
	// sealed marks that the machine has been through a full construction
	// (Start or Reset); allocation is closed from then on, so that a reset
	// machine always replays the exact construction of a fresh one.
	sealed bool
	// wakeScratch is a reused buffer for watcher snapshots in resolveWakes.
	wakeScratch []int
	// fpScratch is a reused buffer for Fingerprint's canonical encoding.
	fpScratch []byte
	// symFor/symCache memoize the compiled symmetry declaration (see
	// symPerms); the cell layout is sealed, so compilation never goes stale.
	symFor   *Symmetry
	symCache []symPerm
	// obs, when non-nil, is streamed every recorded event (see SetObserver).
	// The disabled path is a single nil check per event.
	obs Observer
}

// Observer receives every recorded trace event as it happens, including
// events the machine does not retain under NoTrace. Observers run on the
// controller goroutine, synchronously with the step that produced the event;
// they must not call back into the machine. When no observer is set the hook
// costs one nil check per event — the zero-overhead-when-disabled contract
// the rmrbench baseline guard enforces.
type Observer interface {
	ObserveEvent(Event)
}

var _ memory.Allocator = (*Machine)(nil)

// Errors returned by controller methods.
var (
	ErrDone       = errors.New("sim: process has finished")
	ErrNotStarted = errors.New("sim: machine not started")
	ErrStarted    = errors.New("sim: machine already started")
	ErrClosed     = errors.New("sim: machine closed")
	ErrMaxSteps   = errors.New("sim: step limit exceeded")
)

// New creates a machine. Cells must be allocated (NewCell) before Start.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	return &Machine{cfg: cfg}, nil
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Procs returns the number of processes.
func (m *Machine) Procs() int { return m.cfg.Procs }

// Model returns the configured accounting model.
func (m *Machine) Model() Model { return m.cfg.Model }

// Width returns the word size in bits.
func (m *Machine) Width() word.Width { return m.cfg.Width }

// NewCell allocates a base object. owner is the DSM segment owner (a process
// id in [0,n) or memory.Shared); init must fit in w bits. NewCell panics on
// misuse because allocation happens during deterministic single-threaded
// setup where errors are programming mistakes, not runtime conditions.
func (m *Machine) NewCell(label string, owner int, init word.Word) memory.Cell {
	if m.started || m.sealed {
		panic("sim: NewCell after Start")
	}
	if owner != memory.Shared && (owner < 0 || owner >= m.cfg.Procs) {
		panic(fmt.Sprintf("sim: cell %q owner %d out of range", label, owner))
	}
	if !m.cfg.Width.Fits(init) {
		panic(fmt.Sprintf("sim: cell %q initial value %d exceeds %d bits", label, init, m.cfg.Width))
	}
	c := &simCell{
		m:            m,
		id:           len(m.cells),
		owner:        owner,
		label:        label,
		init:         init,
		val:          init,
		cached:       word.NewBitset(m.cfg.Procs),
		accessed:     word.NewBitset(m.cfg.Procs),
		lastAccessor: -1,
		watchers:     word.NewBitset(m.cfg.Procs),
	}
	m.cells = append(m.cells, c)
	return c
}

// Start launches one process per program. Processes are started one at a
// time and each is run until its first shared-memory step (or completion),
// so bodies never execute concurrently. After a Reset, Start reuses the
// existing process structures and gate channels instead of allocating.
func (m *Machine) Start(programs []Program) error {
	if m.started {
		return ErrStarted
	}
	if len(programs) != m.cfg.Procs {
		return fmt.Errorf("sim: got %d programs for %d processes", len(programs), m.cfg.Procs)
	}
	m.started = true
	m.sealed = true
	if m.procs == nil {
		m.procs = make([]*Proc, m.cfg.Procs)
		for i := range m.procs {
			m.procs[i] = newProc(m, i)
		}
	}
	for i, prog := range programs {
		p := m.procs[i]
		p.reset(prog)
		p.launch()
		if err := m.waitQuiescent(p); err != nil {
			return err
		}
	}
	return nil
}

// Reset returns the machine to its post-construction, pre-Start state
// without allocating: every cell reverts to its initial value with empty
// cache/accessor/watcher sets, the trace and schedule buffers are truncated
// in place, all counters clear, and process structures are retained for the
// next Start. Live process goroutines are terminated first (as in Close),
// so Reset is legal at any point, including mid-run and after Close.
//
// Equivalence guarantee: a machine that is Reset and re-Started with an
// identical construction replays byte-identical traces, schedules, and
// CC/DSM RMR counters versus a fresh machine driven the same way (see
// TestResetEquivalence). Allocation stays sealed: NewCell after Reset
// panics, because new cells would break that guarantee.
func (m *Machine) Reset() {
	if m.started && !m.closed {
		m.killLive()
	}
	m.started = false
	m.closed = false
	for _, c := range m.cells {
		c.val = c.init
		c.cached.ClearAll()
		c.accessed.ClearAll()
		c.watchers.ClearAll()
		c.lastAccessor = -1
		c.rmrCC = 0
		c.rmrDSM = 0
	}
	m.trace = m.trace[:0]
	m.schedule = m.schedule[:0]
	m.seq = 0
}

// waitQuiescent blocks until p has announced its next step or finished.
// Completion arrives as a fin message on the same channel as operation
// announcements, so the wait is a plain receive — one channel operation on
// the step gate instead of a two-way select (measured in EXPERIMENTS.md E15).
// Multi-cell waits (SpinUntilMulti) are handled here: if the predicate
// already holds the body resumes immediately (and we keep waiting for its
// next announcement), otherwise the process parks watching all cells.
func (m *Machine) waitQuiescent(p *Proc) error {
	for {
		req := <-p.pendingCh
		if req.fin {
			p.done = true
		} else {
			p.pending = &req
		}
		if p.err != nil {
			return fmt.Errorf("sim: process %d failed: %w", p.id, p.err)
		}
		if p.done || !p.pending.isWait() {
			return nil
		}
		if !m.registerWait(p) {
			return nil // parked
		}
		// Predicate already satisfied: the body resumed; await its next
		// announcement.
	}
}

// registerWait charges the registration reads of a multi-cell wait, then
// either resumes the body (predicate holds) and reports true, or parks the
// process watching every cell and reports false.
func (m *Machine) registerWait(p *Proc) bool {
	req := p.pending
	vals := make([]word.Word, len(req.multi))
	for i, c := range req.multi {
		// A real spin loop starts by reading each location once: charge a
		// cache miss for copies the process does not hold, and a DSM RMR for
		// remote cells.
		missCC := !c.cached.Test(p.id)
		remote := c.owner != p.id
		if missCC {
			p.rmrCC++
			c.rmrCC++
			c.cached.Set(p.id)
		}
		if remote {
			p.rmrDSM++
			c.rmrDSM++
		}
		if missCC || remote {
			m.seq++
			m.record(Event{Seq: m.seq, Kind: EvWake, Proc: p.id, Cell: c.id, CellLabel: c.label, RMRCC: missCC, RMRDSM: remote})
		}
		vals[i] = c.val
	}
	if req.multiPred(vals) {
		p.pending = nil
		p.resumeCh <- verdict{vals: vals}
		return true
	}
	p.parked = true
	for _, c := range req.multi {
		c.watchers.Set(p.id)
	}
	return false
}

// checkProc validates that process p can take an action.
func (m *Machine) checkProc(p int) (*Proc, error) {
	if !m.started {
		return nil, ErrNotStarted
	}
	if m.closed {
		return nil, ErrClosed
	}
	if p < 0 || p >= len(m.procs) {
		return nil, fmt.Errorf("sim: process %d out of range", p)
	}
	pr := m.procs[p]
	if pr.done {
		return nil, fmt.Errorf("step process %d: %w", p, ErrDone)
	}
	if len(m.schedule) >= m.cfg.MaxSteps {
		return nil, ErrMaxSteps
	}
	return pr, nil
}

// Step executes process p's pending operation. If p is parked on a spin whose
// predicate is still false after the probe read, p parks again (the probe is
// still a step and is accounted). Otherwise p runs until its next
// shared-memory operation or completion.
func (m *Machine) Step(p int) (Event, error) {
	pr, err := m.checkProc(p)
	if err != nil {
		return Event{}, err
	}
	req := pr.pending
	if req == nil {
		return Event{}, fmt.Errorf("sim: process %d has no pending operation", p)
	}
	if req.isWait() {
		return Event{}, fmt.Errorf("sim: process %d is waiting on a multi-cell spin and cannot be stepped", p)
	}

	ev := m.applyStep(pr, req)
	m.schedule = append(m.schedule, Action{Proc: p})

	if req.spin != nil && !req.spin(ev.Ret) {
		// Park: keep the pending request, wait for the cell to change.
		pr.parked = true
		req.cell.watchers.Set(p)
		ev.Parked = true
		m.record(ev)
		return ev, nil
	}

	pr.parked = false
	req.cell.watchers.Clear(p)
	pr.pending = nil
	m.record(ev)

	// A non-read operation may satisfy multi-cell waiters; resume them (in
	// process-id order, for determinism) before the stepping process's body.
	if !req.op.IsRead() {
		if err := m.resolveWakes(req.cell); err != nil {
			return ev, err
		}
	}

	// Resume the body with the operation's result.
	pr.resumeCh <- verdict{ret: ev.Ret}
	if err := m.waitQuiescent(pr); err != nil {
		return ev, err
	}
	return ev, nil
}

// resolveWakes rechecks every multi-cell waiter watching c after a non-read
// operation touched it. Each recheck is charged like the cache-miss re-read
// it models; satisfied waiters resume and run to their next announcement.
// The watcher set is snapshotted into a reused buffer because satisfied
// waiters unregister themselves mid-iteration; bitset order is ascending by
// construction, so process-id-order determinism needs no sort.
func (m *Machine) resolveWakes(c *simCell) error {
	ids := c.watchers.AppendTo(m.wakeScratch[:0])
	m.wakeScratch = ids
	for _, q := range ids {
		qr := m.procs[q]
		if qr.pending == nil || !qr.pending.isWait() {
			continue
		}
		// Phantom recheck: the touch invalidated q's copy of c.
		qr.rmrCC++
		c.rmrCC++
		c.cached.Set(q)
		remote := c.owner != q
		if remote {
			qr.rmrDSM++
			c.rmrDSM++
		}
		vals := make([]word.Word, len(qr.pending.multi))
		for i, wc := range qr.pending.multi {
			vals[i] = wc.val
		}
		ok := qr.pending.multiPred(vals)
		m.seq++
		m.record(Event{
			Seq: m.seq, Kind: EvWake, Proc: q,
			Cell: c.id, CellLabel: c.label,
			RMRCC: true, RMRDSM: remote, Parked: !ok,
		})
		if !ok {
			continue
		}
		for _, wc := range qr.pending.multi {
			wc.watchers.Clear(q)
		}
		qr.pending = nil
		qr.parked = false
		qr.resumeCh <- verdict{vals: vals}
		if err := m.waitQuiescent(qr); err != nil {
			return err
		}
	}
	return nil
}

// applyStep mutates memory, maintains cache/ownership metadata and both RMR
// counters, and builds the trace event (not yet recorded).
func (m *Machine) applyStep(pr *Proc, req *stepReq) Event {
	c := req.cell
	op := req.op
	isRead := op.IsRead()

	rmrDSM := c.owner != pr.id
	rmrCC := !isRead || !c.cached.Test(pr.id)

	before := c.val
	next, ret := memory.Apply(op, c.val, m.cfg.Width)
	c.val = next

	if isRead {
		c.cached.Set(pr.id)
	} else {
		// Any non-read operation invalidates every cache copy (paper §2) and
		// wakes single-cell spinners parked on this cell (multi-cell waiters
		// are rechecked by resolveWakes).
		c.cached.ClearAll()
		c.watchers.ForEach(func(q int) {
			if wp := m.procs[q].pending; wp != nil && !wp.isWait() {
				m.procs[q].parked = false
			}
		})
		// Watcher entries stay until the watcher is next stepped or resumed;
		// parked=false is what marks it poised.
	}
	c.lastAccessor = pr.id
	c.accessed.Set(pr.id)

	if rmrCC {
		pr.rmrCC++
		c.rmrCC++
	}
	if rmrDSM {
		pr.rmrDSM++
		c.rmrDSM++
	}
	pr.steps++

	m.seq++
	return Event{
		Seq:       m.seq,
		Kind:      EvStep,
		Proc:      pr.id,
		Cell:      c.id,
		CellLabel: c.label,
		Op:        op,
		Before:    before,
		After:     next,
		Ret:       ret,
		RMRCC:     rmrCC,
		RMRDSM:    rmrDSM,
		Spin:      req.spin != nil,
	}
}

// Crash delivers a crash step to process p: its pending operation is
// discarded (the paper's "about to perform a step, it may instead be forced
// to perform a crash step"), its local state is reset, and its recover
// protocol runs until its first shared-memory operation.
func (m *Machine) Crash(p int) (Event, error) {
	pr, err := m.checkProc(p)
	if err != nil {
		return Event{}, err
	}
	if pr.pending == nil {
		return Event{}, fmt.Errorf("sim: process %d has no pending operation to preempt", p)
	}
	if pr.pending.isWait() {
		for _, wc := range pr.pending.multi {
			wc.watchers.Clear(p)
		}
	} else if pr.parked {
		pr.pending.cell.watchers.Clear(p)
	}
	pr.parked = false
	pr.pending = nil
	pr.crashes++
	m.seq++
	ev := Event{Seq: m.seq, Kind: EvCrash, Proc: p}
	m.record(ev)
	m.schedule = append(m.schedule, Action{Proc: p, Crash: true})
	pr.resumeCh <- verdict{crash: true}
	if err := m.waitQuiescent(pr); err != nil {
		return ev, err
	}
	return ev, nil
}

// Apply executes a schedule, action by action.
func (m *Machine) Apply(s Schedule) error {
	for i, a := range s {
		var err error
		if a.Crash {
			_, err = m.Crash(a.Proc)
		} else {
			_, err = m.Step(a.Proc)
		}
		if err != nil {
			return fmt.Errorf("apply action %d (%s): %w", i, a, err)
		}
	}
	return nil
}

// record appends an event to the trace unless tracing is disabled, and
// streams it to the observer, if any. Observer delivery is independent of
// NoTrace: a campaign that discards retained traces can still stream.
func (m *Machine) record(ev Event) {
	if !m.cfg.NoTrace {
		m.trace = append(m.trace, ev)
	}
	if m.obs != nil {
		m.obs.ObserveEvent(ev)
	}
}

// SetObserver installs (or, with nil, removes) the event observer. The
// observer survives Reset — reattachment would race the construction marks
// Start records — so a reused machine streams every run to the same sink
// unless the controller swaps it between runs.
func (m *Machine) SetObserver(o Observer) { m.obs = o }

// Close shuts the machine down, terminating all process goroutines. It is
// idempotent and must be called (typically deferred) to avoid goroutine
// leaks when an execution is abandoned before all processes finish.
func (m *Machine) Close() {
	if m.closed || !m.started {
		m.closed = true
		return
	}
	m.closed = true
	m.killLive()
}

// killLive terminates every live body goroutine. A live body is either
// blocked on resumeCh awaiting a verdict, or (transiently) blocked sending
// its fin announcement; the select covers both without deadlocking.
func (m *Machine) killLive() {
	for _, pr := range m.procs {
		if pr.done {
			continue
		}
		select {
		case pr.resumeCh <- verdict{kill: true}:
		case req := <-pr.pendingCh:
			if !req.fin {
				pr.resumeCh <- verdict{kill: true}
			}
		}
		<-pr.doneCh
		pr.done = true
	}
}

// --- controller queries -----------------------------------------------------

// ProcDone reports whether p's program has returned (super-passages over).
func (m *Machine) ProcDone(p int) bool { return m.procs[p].done }

// AllDone reports whether every process has finished.
func (m *Machine) AllDone() bool {
	for _, pr := range m.procs {
		if !pr.done {
			return false
		}
	}
	return true
}

// Parked reports whether p is blocked on a spin predicate that is false and
// whose cell has not changed since the last probe.
func (m *Machine) Parked(p int) bool { return m.procs[p].parked }

// Poised reports whether p has a pending operation and is not parked, i.e.
// stepping p performs useful work.
func (m *Machine) Poised(p int) bool {
	pr := m.procs[p]
	return !pr.done && pr.pending != nil && !pr.parked
}

// PoisedProcs returns the ids of all poised processes, ascending.
func (m *Machine) PoisedProcs() []int {
	return m.AppendPoised(nil)
}

// AppendPoised appends the ids of all poised processes, ascending, to
// buf[:0] and returns the extended slice. Drivers that sweep every scheduling
// round (mutex.Session.RunRoundRobin, the service layer's shard batches) pass
// a retained buffer so the per-sweep snapshot is allocation-free.
func (m *Machine) AppendPoised(buf []int) []int {
	buf = buf[:0]
	for i, pr := range m.procs {
		if !pr.done && pr.pending != nil && !pr.parked {
			buf = append(buf, i)
		}
	}
	return buf
}

// Stuck reports a deadlock/livelock condition: no process is poised yet not
// all processes are done (everyone alive is parked).
func (m *Machine) Stuck() bool {
	return !m.AllDone() && len(m.PoisedProcs()) == 0
}

// PendingOp describes the operation a process is poised (or parked) on.
type PendingOp struct {
	Proc int
	Cell memory.Cell
	Op   memory.Op
	Spin bool
	// Wait marks a multi-cell wait (SpinUntilMulti): Cell is nil and the
	// process cannot be stepped until a watched cell changes.
	Wait bool
}

// Pending returns p's pending operation, if any.
func (m *Machine) Pending(p int) (PendingOp, bool) {
	pr := m.procs[p]
	if pr.done || pr.pending == nil {
		return PendingOp{}, false
	}
	if pr.pending.isWait() {
		return PendingOp{Proc: p, Wait: true}, true
	}
	return PendingOp{Proc: p, Cell: pr.pending.cell, Op: pr.pending.op, Spin: pr.pending.spin != nil}, true
}

// WouldRMR reports whether p's pending operation would incur an RMR right now
// under the configured model.
func (m *Machine) WouldRMR(p int) bool {
	pr := m.procs[p]
	if pr.done || pr.pending == nil || pr.pending.isWait() {
		return false
	}
	c := pr.pending.cell
	if m.cfg.Model == DSM {
		return c.owner != p
	}
	return !pr.pending.op.IsRead() || !c.cached.Test(p)
}

// RMRs returns the number of RMRs p has incurred under the configured model.
func (m *Machine) RMRs(p int) int { return m.RMRsIn(m.cfg.Model, p) }

// RMRsIn returns p's RMR count under the given model.
func (m *Machine) RMRsIn(model Model, p int) int {
	if model == DSM {
		return m.procs[p].rmrDSM
	}
	return m.procs[p].rmrCC
}

// Crashes returns the number of crash steps delivered to p.
func (m *Machine) Crashes(p int) int { return m.procs[p].crashes }

// ProcSteps returns the number of shared-memory steps p has executed.
func (m *Machine) ProcSteps(p int) int { return m.procs[p].steps }

// Tag returns the annotation tag last set by p's body (see Proc.SetTag).
func (m *Machine) Tag(p int) int { return m.procs[p].tag }

// Steps returns the number of actions executed so far.
func (m *Machine) Steps() int { return len(m.schedule) }

// Schedule returns a copy of the executed schedule.
func (m *Machine) Schedule() Schedule { return m.schedule.Clone() }

// Trace returns the retained trace (empty when NoTrace is set). The returned
// slice is shared; callers must not modify it.
func (m *Machine) Trace() []Event { return m.trace }

// CellByID returns the cell with the given allocation index. Allocation
// order is deterministic, so ids are stable across replays of the same
// construction.
func (m *Machine) CellByID(id int) memory.Cell { return m.cells[id] }

// Cells returns all allocated cells in allocation order.
func (m *Machine) Cells() []memory.Cell {
	out := make([]memory.Cell, len(m.cells))
	for i, c := range m.cells {
		out[i] = c
	}
	return out
}

// Value returns the current value of a cell.
func (m *Machine) Value(c memory.Cell) word.Word { return m.own(c).val }

// LastAccessor returns the process that last performed an operation on the
// cell (the paper's last_R), or -1 if none has.
func (m *Machine) LastAccessor(c memory.Cell) int { return m.own(c).lastAccessor }

// Accessors returns the processes that have ever performed an operation on
// the cell, ascending.
func (m *Machine) Accessors(c memory.Cell) []int {
	return m.own(c).accessed.AppendTo(nil)
}

// CellRMRs is one cell's RMR attribution row: how many RMR charges, under
// each model, were incurred by operations (and spin rechecks) on this cell.
// Summed over cells it equals the sum of the per-process counters.
type CellRMRs struct {
	Cell   int
	Label  string
	Owner  int
	RMRCC  int
	RMRDSM int
}

// CellRMRStats returns the per-cell RMR attribution table in allocation
// order (deterministic across replays of the same construction).
func (m *Machine) CellRMRStats() []CellRMRs {
	out := make([]CellRMRs, len(m.cells))
	for i, c := range m.cells {
		out[i] = CellRMRs{Cell: c.id, Label: c.label, Owner: c.owner, RMRCC: c.rmrCC, RMRDSM: c.rmrDSM}
	}
	return out
}

// HasCache reports whether p holds a valid cache copy of c (CC model state).
func (m *Machine) HasCache(p int, c memory.Cell) bool { return m.own(c).cached.Test(p) }

// CachedCells returns the ids of cells p holds valid cache copies of.
func (m *Machine) CachedCells(p int) []int {
	var out []int
	for _, c := range m.cells {
		if c.cached.Test(p) {
			out = append(out, c.id)
		}
	}
	return out
}

// own asserts that the cell belongs to this machine.
func (m *Machine) own(c memory.Cell) *simCell {
	sc, ok := c.(*simCell)
	if !ok || sc.m != m {
		panic(fmt.Sprintf("sim: cell %q does not belong to this machine", c.Label()))
	}
	return sc
}

// simCell is a base object plus the metadata both cost models need. The
// process sets are bitsets so that the invalidate-all of a non-read step and
// the reset between pooled runs are short memclrs rather than per-process
// loops, and watcher iteration is deterministic without sorting.
type simCell struct {
	m            *Machine
	id           int
	owner        int
	label        string
	init         word.Word
	val          word.Word
	cached       word.Bitset
	accessed     word.Bitset
	lastAccessor int
	watchers     word.Bitset
	// rmrCC/rmrDSM attribute RMR charges to the cell they were incurred on
	// (the per-process counters answer "who paid", these answer "where").
	// They are bumped inside branches that already execute on a charge, so
	// the disabled-tracing hot path is unchanged.
	rmrCC  int
	rmrDSM int
}

var _ memory.Cell = (*simCell)(nil)

// CellID returns the allocation index.
func (c *simCell) CellID() int { return c.id }

// Owner returns the DSM segment owner.
func (c *simCell) Owner() int { return c.owner }

// Label returns the trace label.
func (c *simCell) Label() string { return c.label }
