package sim

import (
	"fmt"
	"strings"
	"testing"

	"rme/internal/memory"
	"rme/internal/word"
)

// resetProg is a small recoverable lock loop: acquire a CAS lock (spinning
// when contended), bump a counter, release. Recover restarts the body from
// scratch, keeping all state in shared cells, per the Program contract. It
// exercises every trace path: steps, spins, parks, wakes, and crashes.
type resetProg struct {
	lock, counter memory.Cell
	id            int
	rounds        int
}

func (r resetProg) Run(p *Proc) { r.body(p) }

func (r resetProg) Recover(p *Proc) { r.body(p) }

func (r resetProg) body(p *Proc) {
	me := word.Word(r.id + 1)
	for word.Word(p.Read(r.counter)) < word.Word(r.rounds) {
		for p.CAS(r.lock, 0, me) != 0 {
			p.SpinUntil(r.lock, func(v word.Word) bool { return v == 0 })
		}
		p.Add(r.counter, 1)
		p.Write(r.lock, 0)
	}
}

// buildResetPrograms allocates the shared cells for resetProg on m and
// returns one program per process. Allocation order is fixed, so two
// machines built by this function have identical constructions.
func buildResetPrograms(m *Machine, rounds int) []Program {
	lock := m.NewCell("lock", memory.Shared, 0)
	counter := m.NewCell("counter", 0, 0)
	progs := make([]Program, m.Procs())
	for i := range progs {
		progs[i] = resetProg{lock: lock, counter: counter, id: i, rounds: rounds}
	}
	return progs
}

// driveWithCrash runs the machine round-robin, delivering a crash step to
// crashProc the moment the schedule reaches crashAt actions (if it still has
// a pending operation then). The decision sequence is a pure function of
// machine state, so two equivalent machines make identical choices.
func driveWithCrash(t *testing.T, m *Machine, crashProc, crashAt int) {
	t.Helper()
	crashed := false
	for !m.AllDone() {
		if !crashed && m.Steps() >= crashAt && !m.ProcDone(crashProc) {
			if _, ok := m.Pending(crashProc); ok {
				if _, err := m.Crash(crashProc); err != nil {
					t.Fatalf("crash p%d: %v", crashProc, err)
				}
				crashed = true
				continue
			}
		}
		poised := m.PoisedProcs()
		if len(poised) == 0 {
			t.Fatal("machine stuck")
		}
		if _, err := m.Step(poised[0]); err != nil {
			t.Fatalf("step p%d: %v", poised[0], err)
		}
	}
}

// fingerprint renders everything the equivalence guarantee covers — the
// full trace, the schedule, both RMR counters, step and crash counts, and
// final cell values — as one string for byte-identical comparison.
func fingerprint(m *Machine) string {
	var b strings.Builder
	for _, ev := range m.Trace() {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "schedule: %s\n", m.Schedule())
	fmt.Fprintf(&b, "procs: %v\n", m.Schedule().Procs())
	for p := 0; p < m.Procs(); p++ {
		fmt.Fprintf(&b, "p%d: cc=%d dsm=%d steps=%d crashes=%d\n",
			p, m.RMRsIn(CC, p), m.RMRsIn(DSM, p), m.ProcSteps(p), m.Crashes(p))
	}
	for _, c := range m.Cells() {
		fmt.Fprintf(&b, "cell %s = %d (last %d)\n", c.Label(), m.Value(c), m.LastAccessor(c))
	}
	return b.String()
}

// TestResetEquivalence is the reset-reuse guarantee: a machine that is
// Reset and re-Started replays byte-identical traces, schedules, and CC/DSM
// RMR counters versus a fresh machine — including a crash step mid-run.
func TestResetEquivalence(t *testing.T) {
	const procs, rounds, crashAt = 3, 4, 7
	for _, model := range []Model{CC, DSM} {
		t.Run(model.String(), func(t *testing.T) {
			run := func(m *Machine, progs []Program) string {
				if err := m.Start(progs); err != nil {
					t.Fatal(err)
				}
				driveWithCrash(t, m, 1, crashAt)
				return fingerprint(m)
			}

			fresh := newTestMachineModel(t, procs, model)
			want := run(fresh, buildResetPrograms(fresh, rounds))

			reused := newTestMachineModel(t, procs, model)
			progs := buildResetPrograms(reused, rounds)
			first := run(reused, progs)
			if first != want {
				t.Fatalf("fresh machines diverge:\n--- a ---\n%s--- b ---\n%s", want, first)
			}
			// Several reset-replay cycles on the same machine, same cells,
			// same program values.
			for cycle := 0; cycle < 3; cycle++ {
				reused.Reset()
				if got := run(reused, progs); got != want {
					t.Fatalf("reset cycle %d diverges from fresh run:\n--- fresh ---\n%s--- reset ---\n%s",
						cycle, want, got)
				}
			}
		})
	}
}

// TestResetMidRun abandons an execution partway (processes parked and
// poised, one crashed), resets, and checks the replay still matches fresh.
func TestResetMidRun(t *testing.T) {
	const procs, rounds = 4, 3
	fresh := newTestMachineModel(t, procs, CC)
	want := func() string {
		if err := fresh.Start(buildResetPrograms(fresh, rounds)); err != nil {
			t.Fatal(err)
		}
		driveWithCrash(t, fresh, 2, 5)
		return fingerprint(fresh)
	}()

	m := newTestMachineModel(t, procs, CC)
	progs := buildResetPrograms(m, rounds)
	if err := m.Start(progs); err != nil {
		t.Fatal(err)
	}
	// Partial drive: a handful of steps and a crash, then abandon.
	for i := 0; i < 9; i++ {
		if poised := m.PoisedProcs(); len(poised) > 0 {
			if _, err := m.Step(poised[i%len(poised)]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, ok := m.Pending(3); ok {
		if _, err := m.Crash(3); err != nil {
			t.Fatal(err)
		}
	}

	m.Reset()
	if err := m.Start(progs); err != nil {
		t.Fatal(err)
	}
	driveWithCrash(t, m, 2, 5)
	if got := fingerprint(m); got != want {
		t.Fatalf("reset-after-abandon diverges:\n--- fresh ---\n%s--- reset ---\n%s", want, got)
	}
}

// TestResetSealsAllocation: cells cannot be added after a machine has been
// constructed once; the reset construction must be identical to the fresh
// one.
func TestResetSealsAllocation(t *testing.T) {
	m := newTestMachineModel(t, 1, CC)
	c := m.NewCell("c", memory.Shared, 0)
	if err := m.Start([]Program{ProgramFuncs{RunFunc: func(p *Proc) { p.Read(c) }}}); err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, m)
	m.Reset()
	defer func() {
		if recover() == nil {
			t.Fatal("NewCell after Reset did not panic")
		}
	}()
	m.NewCell("late", memory.Shared, 0)
}

// TestResetAfterClose: Close then Reset then Start is a valid reuse cycle.
func TestResetAfterClose(t *testing.T) {
	m := newTestMachineModel(t, 2, CC)
	progs := buildResetPrograms(m, 2)
	if err := m.Start(progs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		stepAll(t, m)
	}
	m.Close()
	m.Reset()
	if err := m.Start(progs); err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, m)
	// Both processes may observe counter < rounds before the final bump, so
	// the counter ends in [rounds, rounds+procs-1].
	if v := m.Value(m.CellByID(1)); v < 2 || v > 3 {
		t.Fatalf("counter = %d after reuse, want 2 or 3", v)
	}
}

func newTestMachineModel(t *testing.T, procs int, model Model) *Machine {
	t.Helper()
	m, err := New(Config{Procs: procs, Width: 16, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}
