package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"rme/internal/memory"
	"rme/internal/word"
)

// chaosProgram is a nontrivial program mixing every operation type, with
// value-dependent branching so that divergent replays are detectable.
type chaosProgram struct {
	id    int
	cells []memory.Cell
	own   memory.Cell
	rng   *rand.Rand // controls the op mix; reseeded per incarnation
	seed  int64
}

func (c *chaosProgram) Run(p *Proc) { c.body(p, 0) }

func (c *chaosProgram) Recover(p *Proc) { c.body(p, 1) }

func (c *chaosProgram) body(p *Proc, incarnation int64) {
	// Local state resets on crash: reseed deterministically per incarnation.
	rng := rand.New(rand.NewSource(c.seed + incarnation))
	for i := 0; i < 12; i++ {
		cell := c.cells[rng.Intn(len(c.cells))]
		switch rng.Intn(6) {
		case 0:
			p.Read(cell)
		case 1:
			p.Write(cell, word.Word(rng.Intn(200)))
		case 2:
			p.Swap(cell, word.Word(rng.Intn(200)))
		case 3:
			v := p.Add(cell, word.Word(rng.Intn(5)))
			if v%2 == 0 { // value-dependent branch
				p.Write(c.own, v)
			}
		case 4:
			p.CAS(cell, word.Word(rng.Intn(4)), word.Word(rng.Intn(200)))
		case 5:
			p.Apply(cell, memory.Custom("xor7", func(cur word.Word) (word.Word, word.Word) {
				return cur ^ 7, cur
			}))
		}
	}
}

func buildChaos(t *testing.T, n int, seed int64) *Machine {
	t.Helper()
	m, err := New(Config{Procs: n, Width: 9, Model: CC})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	shared := make([]memory.Cell, 4)
	for i := range shared {
		shared[i] = m.NewCell(fmt.Sprintf("shared.%d", i), memory.Shared, 0)
	}
	programs := make([]Program, n)
	for i := 0; i < n; i++ {
		own := m.NewCell(fmt.Sprintf("own.%d", i), i, 0)
		cells := append([]memory.Cell{own}, shared...)
		programs[i] = &chaosProgram{id: i, cells: cells, own: own, seed: seed + int64(i)*1000}
	}
	if err := m.Start(programs); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestReplayDeterminismProperty: for random chaotic executions (random
// scheduling, random crashes), replaying the recorded schedule on a fresh
// machine reproduces every observable exactly. This property is what the
// adversary's table-column materialization rests on.
func TestReplayDeterminismProperty(t *testing.T) {
	f := func(seed int64) bool {
		const n = 4
		rng := rand.New(rand.NewSource(seed))
		m1 := buildChaos(t, n, seed)
		for !m1.AllDone() {
			poised := m1.PoisedProcs()
			if len(poised) == 0 {
				break
			}
			if rng.Float64() < 0.08 {
				var live []int
				for p := 0; p < n; p++ {
					if !m1.ProcDone(p) && m1.Crashes(p) < 1 {
						live = append(live, p)
					}
				}
				if len(live) > 0 {
					if _, err := m1.Crash(live[rng.Intn(len(live))]); err != nil {
						t.Fatal(err)
					}
					continue
				}
			}
			if _, err := m1.Step(poised[rng.Intn(len(poised))]); err != nil {
				t.Fatal(err)
			}
		}

		m2 := buildChaos(t, n, seed)
		if err := m2.Apply(m1.Schedule()); err != nil {
			t.Logf("seed %d: replay failed: %v", seed, err)
			return false
		}
		for p := 0; p < n; p++ {
			if m1.ProcSteps(p) != m2.ProcSteps(p) ||
				m1.RMRsIn(CC, p) != m2.RMRsIn(CC, p) ||
				m1.RMRsIn(DSM, p) != m2.RMRsIn(DSM, p) ||
				m1.Crashes(p) != m2.Crashes(p) ||
				m1.ProcDone(p) != m2.ProcDone(p) {
				t.Logf("seed %d: p%d observables diverge", seed, p)
				return false
			}
		}
		for i, c := range m1.Cells() {
			if m1.Value(c) != m2.Value(m2.Cells()[i]) ||
				m1.LastAccessor(c) != m2.LastAccessor(m2.Cells()[i]) {
				t.Logf("seed %d: cell %s diverges", seed, c.Label())
				return false
			}
		}
		tr1, tr2 := m1.Trace(), m2.Trace()
		if len(tr1) != len(tr2) {
			t.Logf("seed %d: trace lengths diverge", seed)
			return false
		}
		for i := range tr1 {
			if tr1[i].String() != tr2[i].String() {
				t.Logf("seed %d: trace diverges at %d", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestScheduleRestrictProperties: quick-checked algebra of Restrict.
func TestScheduleRestrictProperties(t *testing.T) {
	gen := func(seed int64, length uint8) Schedule {
		rng := rand.New(rand.NewSource(seed))
		s := make(Schedule, int(length)%40)
		for i := range s {
			s[i] = Action{Proc: rng.Intn(5), Crash: rng.Intn(7) == 0}
		}
		return s
	}

	// Restricting to everything is the identity.
	ident := func(seed int64, length uint8) bool {
		s := gen(seed, length)
		return s.Restrict(func(int) bool { return true }).String() == s.String()
	}
	if err := quick.Check(ident, nil); err != nil {
		t.Error(err)
	}

	// Restriction is idempotent and commutes with intersection.
	commute := func(seed int64, length uint8, mask uint8) bool {
		s := gen(seed, length)
		keepA := func(p int) bool { return mask&(1<<uint(p%5)) != 0 }
		keepB := func(p int) bool { return p%2 == 0 }
		ab := s.Restrict(keepA).Restrict(keepB)
		ba := s.Restrict(keepB).Restrict(keepA)
		both := s.Restrict(func(p int) bool { return keepA(p) && keepB(p) })
		return ab.String() == ba.String() && ab.String() == both.String()
	}
	if err := quick.Check(commute, nil); err != nil {
		t.Error(err)
	}

	// Restriction removes exactly the excluded processes.
	removes := func(seed int64, length uint8) bool {
		s := gen(seed, length)
		r := s.Restrict(func(p int) bool { return p != 2 })
		for _, a := range r {
			if a.Proc == 2 {
				return false
			}
		}
		return len(r) == len(s)-count(s, 2)
	}
	if err := quick.Check(removes, nil); err != nil {
		t.Error(err)
	}
}

func count(s Schedule, proc int) int {
	n := 0
	for _, a := range s {
		if a.Proc == proc {
			n++
		}
	}
	return n
}

// TestBothModelCountersConsistent: on any random execution, per-process CC
// RMRs never exceed steps plus wake recharges, and DSM RMRs never exceed
// steps (every DSM RMR is a step or a registration/recheck charge).
func TestBothModelCountersConsistent(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		m := buildChaos(t, 3, seed)
		rng := rand.New(rand.NewSource(seed))
		for !m.AllDone() {
			poised := m.PoisedProcs()
			if len(poised) == 0 {
				break
			}
			if _, err := m.Step(poised[rng.Intn(len(poised))]); err != nil {
				t.Fatal(err)
			}
		}
		for p := 0; p < 3; p++ {
			steps := m.ProcSteps(p)
			if cc := m.RMRsIn(CC, p); cc > steps {
				t.Errorf("seed %d: p%d CC RMRs %d > steps %d (chaos has no multi-spin)", seed, p, cc, steps)
			}
			if dsm := m.RMRsIn(DSM, p); dsm > steps {
				t.Errorf("seed %d: p%d DSM RMRs %d > steps %d", seed, p, dsm, steps)
			}
		}
	}
}
