package sim

import (
	"testing"

	"rme/internal/memory"
	"rme/internal/word"
)

func TestSpinUntilMultiImmediate(t *testing.T) {
	m := newTestMachine(t, 1, CC)
	a := m.NewCell("a", memory.Shared, 1)
	b := m.NewCell("b", memory.Shared, 2)
	var got []word.Word
	prog := ProgramFuncs{RunFunc: func(p *Proc) {
		got = p.SpinUntilMulti([]memory.Cell{a, b}, func(vs []word.Word) bool {
			return vs[0] == 1 && vs[1] == 2
		})
	}}
	if err := m.Start([]Program{prog}); err != nil {
		t.Fatal(err)
	}
	// The predicate held at registration: the process never parked, took no
	// steps, and finished during Start.
	if !m.ProcDone(0) {
		t.Fatal("process should have finished without steps")
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("values = %v", got)
	}
	if m.Steps() != 0 {
		t.Errorf("steps = %d, want 0", m.Steps())
	}
	// Registration charged one CC miss per uncached cell.
	if rmr := m.RMRsIn(CC, 0); rmr != 2 {
		t.Errorf("CC RMRs = %d, want 2 (registration misses)", rmr)
	}
}

func TestSpinUntilMultiWakesOnEitherCell(t *testing.T) {
	var got []word.Word
	// Peterson-style wait: proceed when a == 0 OR b == 1; a starts at 1, so
	// the waiter parks at registration.
	m2 := newTestMachine(t, 2, CC)
	a2 := m2.NewCell("a", memory.Shared, 1)
	b2 := m2.NewCell("b", memory.Shared, 0)
	waiter2 := ProgramFuncs{RunFunc: func(p *Proc) {
		got = p.SpinUntilMulti([]memory.Cell{a2, b2}, func(vs []word.Word) bool {
			return vs[0] == 0 || vs[1] == 1
		})
	}}
	toucher := ProgramFuncs{RunFunc: func(p *Proc) {
		p.Write(a2, 2) // recheck: pred still false
		p.Write(b2, 1) // recheck: pred true -> waiter resumes
	}}
	if err := m2.Start([]Program{waiter2, toucher}); err != nil {
		t.Fatal(err)
	}
	if m2.Poised(0) {
		t.Fatal("waiter should be parked, not poised")
	}
	if !m2.Parked(0) {
		t.Fatal("waiter should be parked")
	}
	if _, err := m2.Step(1); err != nil { // write a2=2
		t.Fatal(err)
	}
	if !m2.Parked(0) {
		t.Fatal("waiter should still be parked (pred false)")
	}
	if _, err := m2.Step(1); err != nil { // write b2=1 -> wake
		t.Fatal(err)
	}
	if !m2.ProcDone(0) {
		t.Fatal("waiter should have resumed and finished")
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Errorf("values = %v, want [2 1]", got)
	}
	// RMRs: 2 registration misses + 2 recheck charges.
	if rmr := m2.RMRsIn(CC, 0); rmr != 4 {
		t.Errorf("CC RMRs = %d, want 4", rmr)
	}
}

func TestSpinUntilMultiCrashWhileWaiting(t *testing.T) {
	m := newTestMachine(t, 2, CC)
	a := m.NewCell("a", memory.Shared, 1)
	recovered := false
	waiter := ProgramFuncs{
		RunFunc: func(p *Proc) {
			p.SpinUntilMulti([]memory.Cell{a}, func(vs []word.Word) bool { return vs[0] == 0 })
		},
		RecoverFunc: func(p *Proc) { recovered = true },
	}
	toucher := ProgramFuncs{RunFunc: func(p *Proc) { p.Write(a, 0) }}
	if err := m.Start([]Program{waiter, toucher}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Crash(0); err != nil {
		t.Fatal(err)
	}
	if !recovered || !m.ProcDone(0) {
		t.Fatal("waiter should have recovered and finished")
	}
	// The write must not resume a dead watcher.
	if _, err := m.Step(1); err != nil {
		t.Fatal(err)
	}
	if !m.AllDone() {
		t.Fatal("all should be done")
	}
}

func TestSpinUntilMultiStepRejected(t *testing.T) {
	m := newTestMachine(t, 1, CC)
	a := m.NewCell("a", memory.Shared, 1)
	prog := ProgramFuncs{RunFunc: func(p *Proc) {
		p.SpinUntilMulti([]memory.Cell{a}, func(vs []word.Word) bool { return vs[0] == 0 })
	}}
	if err := m.Start([]Program{prog}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(0); err == nil {
		t.Fatal("stepping a multi-cell waiter should be rejected")
	}
	po, ok := m.Pending(0)
	if !ok || !po.Wait {
		t.Fatalf("pending = %+v, want Wait", po)
	}
	if m.WouldRMR(0) {
		t.Error("WouldRMR for a waiter should be false")
	}
}

func TestSpinUntilMultiChainedWakes(t *testing.T) {
	// w1 waits on a; w2 waits on b; the toucher writes a, which wakes w1,
	// whose continuation announces a write to b (but does not execute it —
	// steps still come from the controller).
	m := newTestMachine(t, 3, CC)
	a := m.NewCell("a", memory.Shared, 0)
	b := m.NewCell("b", memory.Shared, 0)
	w1 := ProgramFuncs{RunFunc: func(p *Proc) {
		p.SpinUntilMulti([]memory.Cell{a}, func(vs []word.Word) bool { return vs[0] == 1 })
		p.Write(b, 1)
	}}
	w2 := ProgramFuncs{RunFunc: func(p *Proc) {
		p.SpinUntilMulti([]memory.Cell{b}, func(vs []word.Word) bool { return vs[0] == 1 })
	}}
	toucher := ProgramFuncs{RunFunc: func(p *Proc) { p.Write(a, 1) }}
	if err := m.Start([]Program{w1, w2, toucher}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(2); err != nil { // write a=1: wakes w1
		t.Fatal(err)
	}
	if !m.Poised(0) {
		t.Fatal("w1 should be poised on its write to b")
	}
	if m.Poised(1) || !m.Parked(1) {
		t.Fatal("w2 should still be parked")
	}
	if _, err := m.Step(0); err != nil { // w1 writes b: wakes w2
		t.Fatal(err)
	}
	if !m.AllDone() {
		t.Fatal("everyone should be done")
	}
}
