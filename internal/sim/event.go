package sim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rme/internal/memory"
	"rme/internal/word"
)

// EventKind classifies trace entries.
type EventKind int

// Trace entry kinds.
const (
	// EvStep is a shared-memory operation by a process.
	EvStep EventKind = iota + 1
	// EvCrash is a crash step: the process's local state is discarded and its
	// recover protocol starts.
	EvCrash
	// EvMark is an annotation emitted by a process body (e.g. passage
	// boundaries); it is not a step and does not appear in schedules.
	EvMark
	// EvWake records a multi-cell spin recheck (SpinUntilMulti) triggered by
	// another process touching a watched cell. It is not a step, but it may
	// carry an RMR charge: in CC the touch invalidated the spinner's cache
	// copy, so the recheck is a miss.
	EvWake
)

// Event is one entry of an execution trace. For EvStep events it records the
// paper's notion of an event: the process, the operation, the object, and
// whether the operation incurred an RMR (under both models).
type Event struct {
	Seq  int
	Kind EventKind
	Proc int

	// Step fields.
	Cell      int
	CellLabel string
	Op        memory.Op
	Before    word.Word
	After     word.Word
	Ret       word.Word
	RMRCC     bool
	RMRDSM    bool
	// Spin marks the step as a SpinUntil probe; Parked reports that the
	// probe failed and the process parked.
	Spin   bool
	Parked bool

	// Mark field.
	Note string
}

// String renders the event compactly for logs and failure messages.
func (e Event) String() string {
	switch e.Kind {
	case EvCrash:
		return fmt.Sprintf("#%d p%d CRASH", e.Seq, e.Proc)
	case EvMark:
		return fmt.Sprintf("#%d p%d mark(%s)", e.Seq, e.Proc, e.Note)
	case EvWake:
		tail := ""
		if e.RMRCC {
			tail += " rmr:cc"
		}
		if e.RMRDSM {
			tail += " rmr:dsm"
		}
		if e.Parked {
			tail += " still-parked"
		}
		return fmt.Sprintf("#%d p%d recheck %s%s", e.Seq, e.Proc, e.CellLabel, tail)
	default:
		var b strings.Builder
		fmt.Fprintf(&b, "#%d p%d %s %s", e.Seq, e.Proc, e.CellLabel, e.Op)
		fmt.Fprintf(&b, " [%d->%d ret %d]", e.Before, e.After, e.Ret)
		if e.RMRCC {
			b.WriteString(" rmr:cc")
		}
		if e.RMRDSM {
			b.WriteString(" rmr:dsm")
		}
		if e.Parked {
			b.WriteString(" parked")
		}
		return b.String()
	}
}

// RMR reports whether the step incurred an RMR under the given model.
func (e Event) RMR(m Model) bool {
	if m == DSM {
		return e.RMRDSM
	}
	return e.RMRCC
}

// Action is one entry of a schedule: a step or a crash by a process. A
// schedule plus the machine construction fully determines an execution.
type Action struct {
	Proc  int
	Crash bool
}

// String renders p or p̂ (the paper's crash-step notation) as "3" / "3^".
func (a Action) String() string {
	if a.Crash {
		return fmt.Sprintf("%d^", a.Proc)
	}
	return fmt.Sprintf("%d", a.Proc)
}

// Schedule is a finite sequence of actions.
type Schedule []Action

// String renders the schedule as space-separated actions.
func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, a := range s {
		parts[i] = a.String()
	}
	return strings.Join(parts, " ")
}

// ParseSchedule parses the String rendering of a schedule — space-separated
// actions, "3" for a step by process 3 and "3^" for a crash step — back into
// a Schedule. It is the inverse of Schedule.String, so a failure reproducer
// printed by a fault campaign can be replayed from its textual form alone.
func ParseSchedule(s string) (Schedule, error) {
	fields := strings.Fields(s)
	out := make(Schedule, 0, len(fields))
	for _, f := range fields {
		crash := strings.HasSuffix(f, "^")
		num := strings.TrimSuffix(f, "^")
		p, err := strconv.Atoi(num)
		if err != nil || p < 0 {
			return nil, fmt.Errorf("sim: bad schedule action %q", f)
		}
		out = append(out, Action{Proc: p, Crash: crash})
	}
	return out, nil
}

// Restrict returns the sub-schedule containing only actions by processes for
// which keep returns true. This is the operation that materializes the
// proof's table columns: the schedule of column S is the maximal schedule
// restricted to S.
func (s Schedule) Restrict(keep func(proc int) bool) Schedule {
	out := make(Schedule, 0, len(s))
	for _, a := range s {
		if keep(a.Proc) {
			out = append(out, a)
		}
	}
	return out
}

// Procs returns the processes with at least one action in s (the paper's
// P(σ)), sorted ascending. The sorted slice — rather than a map — keeps
// every call site deterministic: iterating the result never depends on map
// iteration order, so replays and rendered tables are stable.
func (s Schedule) Procs() []int {
	seen := make(map[int]bool, 8)
	var ps []int
	for _, a := range s {
		if !seen[a.Proc] {
			seen[a.Proc] = true
			ps = append(ps, a.Proc)
		}
	}
	sort.Ints(ps)
	return ps
}

// Clone returns a copy of the schedule.
func (s Schedule) Clone() Schedule {
	out := make(Schedule, len(s))
	copy(out, s)
	return out
}
