package sim

import (
	"errors"
	"testing"

	"rme/internal/memory"
	"rme/internal/word"
)

func newTestMachine(t *testing.T, procs int, model Model) *Machine {
	t.Helper()
	m, err := New(Config{Procs: procs, Width: 16, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// stepAll advances every poised process once, returning false when none was.
func stepAll(t *testing.T, m *Machine) bool {
	t.Helper()
	ps := m.PoisedProcs()
	for _, p := range ps {
		if _, err := m.Step(p); err != nil {
			t.Fatalf("step %d: %v", p, err)
		}
	}
	return len(ps) > 0
}

// runToCompletion drives all processes round-robin until done.
func runToCompletion(t *testing.T, m *Machine) {
	t.Helper()
	for !m.AllDone() {
		if m.Stuck() {
			t.Fatal("machine stuck")
		}
		stepAll(t, m)
	}
}

func TestSingleProcessSequence(t *testing.T) {
	m := newTestMachine(t, 1, CC)
	c := m.NewCell("c", memory.Shared, 0)
	var results []word.Word
	prog := ProgramFuncs{RunFunc: func(p *Proc) {
		results = append(results, p.Add(c, 5))
		results = append(results, p.Swap(c, 100))
		results = append(results, p.Read(c))
	}}
	if err := m.Start([]Program{prog}); err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, m)
	want := []word.Word{0, 5, 100}
	if len(results) != len(want) {
		t.Fatalf("results = %v, want %v", results, want)
	}
	for i := range want {
		if results[i] != want[i] {
			t.Fatalf("results = %v, want %v", results, want)
		}
	}
	if got := m.Value(c); got != 100 {
		t.Errorf("final value = %d, want 100", got)
	}
}

func TestStepGateSerializesBodies(t *testing.T) {
	// Two processes interleaved one step at a time; controller dictates order
	// exactly, so FAS returns are fully determined.
	m := newTestMachine(t, 2, CC)
	c := m.NewCell("c", memory.Shared, 0)
	got := make([]word.Word, 2)
	prog := func(id int) Program {
		return ProgramFuncs{RunFunc: func(p *Proc) {
			got[id] = p.Swap(c, word.Word(id+1))
		}}
	}
	if err := m.Start([]Program{prog(0), prog(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(1); err != nil { // p1 first
		t.Fatal(err)
	}
	if _, err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if got[1] != 0 || got[0] != 2 {
		t.Errorf("FAS returns = %v, want p1->0, p0->2", got)
	}
}

func TestRMRAccountingCC(t *testing.T) {
	m := newTestMachine(t, 2, CC)
	c := m.NewCell("c", memory.Shared, 0)
	prog := ProgramFuncs{RunFunc: func(p *Proc) {
		p.Read(c)     // miss: RMR
		p.Read(c)     // cached: free
		p.Write(c, 1) // non-read: RMR, invalidates all
		p.Read(c)     // miss again: RMR
	}}
	idle := ProgramFuncs{RunFunc: func(p *Proc) { p.Read(c) }}
	if err := m.Start([]Program{prog, idle}); err != nil {
		t.Fatal(err)
	}
	// p1 reads first (miss), then p0 runs fully, invalidating p1's copy.
	if _, err := m.Step(1); err != nil {
		t.Fatal(err)
	}
	for !m.ProcDone(0) {
		if _, err := m.Step(0); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.RMRsIn(CC, 0); got != 3 {
		t.Errorf("p0 CC RMRs = %d, want 3", got)
	}
	if got := m.RMRsIn(CC, 1); got != 1 {
		t.Errorf("p1 CC RMRs = %d, want 1", got)
	}
	if m.HasCache(1, c) {
		t.Error("p1's cache copy should have been invalidated by p0's write")
	}
}

func TestRMRAccountingDSM(t *testing.T) {
	m := newTestMachine(t, 2, DSM)
	mine := m.NewCell("mine", 0, 0)
	theirs := m.NewCell("theirs", 1, 0)
	shared := m.NewCell("shared", memory.Shared, 0)
	prog := ProgramFuncs{RunFunc: func(p *Proc) {
		p.Read(mine)       // own segment: free
		p.Write(mine, 1)   // own segment: free
		p.Read(theirs)     // remote: RMR
		p.Write(shared, 2) // unowned: RMR
	}}
	idle := ProgramFuncs{RunFunc: func(p *Proc) {}}
	if err := m.Start([]Program{prog, idle}); err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, m)
	if got := m.RMRsIn(DSM, 0); got != 2 {
		t.Errorf("p0 DSM RMRs = %d, want 2", got)
	}
	// The same run under CC accounting: read miss + write + read miss + write.
	if got := m.RMRsIn(CC, 0); got != 4 {
		t.Errorf("p0 CC RMRs = %d, want 4", got)
	}
}

func TestWouldRMR(t *testing.T) {
	m := newTestMachine(t, 2, CC)
	c := m.NewCell("c", memory.Shared, 0)
	prog := ProgramFuncs{RunFunc: func(p *Proc) {
		p.Read(c)
		p.Read(c)
	}}
	idle := ProgramFuncs{RunFunc: func(p *Proc) {}}
	if err := m.Start([]Program{prog, idle}); err != nil {
		t.Fatal(err)
	}
	if !m.WouldRMR(0) {
		t.Error("first read should be a cache miss")
	}
	if _, err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if m.WouldRMR(0) {
		t.Error("second read should be cached")
	}
}

func TestSpinParkAndWake(t *testing.T) {
	m := newTestMachine(t, 2, CC)
	flag := m.NewCell("flag", memory.Shared, 0)
	var woke word.Word
	waiter := ProgramFuncs{RunFunc: func(p *Proc) {
		woke = p.SpinUntil(flag, func(v word.Word) bool { return v == 9 })
	}}
	setter := ProgramFuncs{RunFunc: func(p *Proc) {
		p.Write(flag, 3)
		p.Write(flag, 9)
	}}
	if err := m.Start([]Program{waiter, setter}); err != nil {
		t.Fatal(err)
	}
	// Probe 1: flag=0, parks.
	ev, err := m.Step(0)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Parked || !m.Parked(0) || m.Poised(0) {
		t.Fatalf("waiter should be parked: ev=%v", ev)
	}
	// Setter writes 3: waiter unparks, probes, parks again.
	if _, err := m.Step(1); err != nil {
		t.Fatal(err)
	}
	if !m.Poised(0) {
		t.Fatal("waiter should be poised after flag changed")
	}
	if _, err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if !m.Parked(0) {
		t.Fatal("waiter should re-park: predicate still false")
	}
	// Setter writes 9: waiter unparks, probe succeeds, body resumes and ends.
	if _, err := m.Step(1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if !m.ProcDone(0) {
		t.Fatal("waiter should have finished")
	}
	if woke != 9 {
		t.Errorf("SpinUntil returned %d, want 9", woke)
	}
	// Each probe read cost one CC RMR (miss after invalidation).
	if got := m.RMRsIn(CC, 0); got != 3 {
		t.Errorf("waiter CC RMRs = %d, want 3 (three probe misses)", got)
	}
	// DSM: the flag is unowned, so probes are remote there too.
	if got := m.RMRsIn(DSM, 0); got != 3 {
		t.Errorf("waiter DSM RMRs = %d, want 3", got)
	}
}

func TestSpinOnOwnSegmentIsFreeDSM(t *testing.T) {
	m, err := New(Config{Procs: 2, Width: 16, Model: DSM})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	flag := m.NewCell("flag", 0, 0) // owned by the waiter
	waiter := ProgramFuncs{RunFunc: func(p *Proc) {
		p.SpinUntil(flag, func(v word.Word) bool { return v == 1 })
	}}
	setter := ProgramFuncs{RunFunc: func(p *Proc) {
		p.Write(flag, 1) // remote write: 1 RMR
	}}
	if err := m.Start([]Program{waiter, setter}); err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, m)
	if got := m.RMRsIn(DSM, 0); got != 0 {
		t.Errorf("local spin cost %d DSM RMRs, want 0", got)
	}
	if got := m.RMRsIn(DSM, 1); got != 1 {
		t.Errorf("setter DSM RMRs = %d, want 1", got)
	}
}

func TestStuckDetection(t *testing.T) {
	m := newTestMachine(t, 1, CC)
	c := m.NewCell("c", memory.Shared, 0)
	prog := ProgramFuncs{RunFunc: func(p *Proc) {
		p.SpinUntil(c, func(v word.Word) bool { return v == 1 })
	}}
	if err := m.Start([]Program{prog}); err != nil {
		t.Fatal(err)
	}
	if m.Stuck() {
		t.Fatal("not yet stuck: probe still poised")
	}
	if _, err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if !m.Stuck() {
		t.Fatal("lone parked process should be reported stuck")
	}
}

func TestCrashRunsRecover(t *testing.T) {
	m := newTestMachine(t, 1, CC)
	c := m.NewCell("c", memory.Shared, 0)
	var path []string
	prog := ProgramFuncs{
		RunFunc: func(p *Proc) {
			path = append(path, "run")
			p.Write(c, 1)
			p.Write(c, 2) // crash delivered instead of this step
			path = append(path, "unreachable")
		},
		RecoverFunc: func(p *Proc) {
			path = append(path, "recover")
			if p.Read(c) != 1 {
				path = append(path, "lost-memory")
			}
			p.Write(c, 7)
		},
	}
	if err := m.Start([]Program{prog}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(0); err != nil { // write 1
		t.Fatal(err)
	}
	if _, err := m.Crash(0); err != nil { // preempts write 2
		t.Fatal(err)
	}
	runToCompletion(t, m)
	if got := m.Value(c); got != 7 {
		t.Errorf("final value = %d, want 7 (write 2 must not happen)", got)
	}
	if len(path) != 2 || path[0] != "run" || path[1] != "recover" {
		t.Errorf("path = %v", path)
	}
	if got := m.Crashes(0); got != 1 {
		t.Errorf("crashes = %d, want 1", got)
	}
}

func TestCrashWhileParked(t *testing.T) {
	m := newTestMachine(t, 1, CC)
	c := m.NewCell("c", memory.Shared, 0)
	recovered := false
	prog := ProgramFuncs{
		RunFunc: func(p *Proc) {
			p.SpinUntil(c, func(v word.Word) bool { return v == 1 })
		},
		RecoverFunc: func(p *Proc) { recovered = true },
	}
	if err := m.Start([]Program{prog}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(0); err != nil { // parks
		t.Fatal(err)
	}
	if !m.Parked(0) {
		t.Fatal("should be parked")
	}
	if _, err := m.Crash(0); err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, m)
	if !recovered {
		t.Error("recover did not run")
	}
}

func TestScheduleRecordsActions(t *testing.T) {
	m := newTestMachine(t, 2, CC)
	c := m.NewCell("c", memory.Shared, 0)
	prog := ProgramFuncs{
		RunFunc:     func(p *Proc) { p.Write(c, 1); p.Write(c, 2) },
		RecoverFunc: func(p *Proc) { p.Write(c, 3) },
	}
	idle := ProgramFuncs{RunFunc: func(p *Proc) { p.Read(c) }}
	if err := m.Start([]Program{prog, idle}); err != nil {
		t.Fatal(err)
	}
	mustStep := func(p int) {
		t.Helper()
		if _, err := m.Step(p); err != nil {
			t.Fatal(err)
		}
	}
	mustStep(0)
	mustStep(1)
	if _, err := m.Crash(0); err != nil {
		t.Fatal(err)
	}
	mustStep(0)
	want := Schedule{{Proc: 0}, {Proc: 1}, {Proc: 0, Crash: true}, {Proc: 0}}
	got := m.Schedule()
	if got.String() != want.String() {
		t.Errorf("schedule = %q, want %q", got, want)
	}
}

func TestReplayDeterminism(t *testing.T) {
	// Build a nontrivial execution, then replay its schedule on a fresh
	// machine and require identical traces, values, and RMR counters.
	build := func() (*Machine, []Program) {
		m, err := New(Config{Procs: 3, Width: 8, Model: CC})
		if err != nil {
			t.Fatal(err)
		}
		c := m.NewCell("c", memory.Shared, 0)
		d := m.NewCell("d", 1, 0)
		progs := make([]Program, 3)
		for i := 0; i < 3; i++ {
			i := i
			progs[i] = ProgramFuncs{
				RunFunc: func(p *Proc) {
					v := p.Add(c, word.Word(i+1))
					p.Write(d, v)
					p.Swap(c, word.Word(i))
					p.Read(d)
				},
				RecoverFunc: func(p *Proc) {
					p.Read(c)
					p.Write(d, 99)
				},
			}
		}
		return m, progs
	}

	m1, progs1 := build()
	t.Cleanup(m1.Close)
	if err := m1.Start(progs1); err != nil {
		t.Fatal(err)
	}
	// A scripted adversarial schedule with a crash.
	script := Schedule{
		{Proc: 2}, {Proc: 0}, {Proc: 2}, {Proc: 1}, {Proc: 1, Crash: true},
		{Proc: 1}, {Proc: 0}, {Proc: 2}, {Proc: 0}, {Proc: 1}, {Proc: 2}, {Proc: 0},
	}
	if err := m1.Apply(script); err != nil {
		t.Fatal(err)
	}

	m2, progs2 := build()
	t.Cleanup(m2.Close)
	if err := m2.Start(progs2); err != nil {
		t.Fatal(err)
	}
	if err := m2.Apply(m1.Schedule()); err != nil {
		t.Fatal(err)
	}

	tr1, tr2 := m1.Trace(), m2.Trace()
	if len(tr1) != len(tr2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(tr1), len(tr2))
	}
	for i := range tr1 {
		if tr1[i].String() != tr2[i].String() {
			t.Fatalf("trace diverges at %d:\n  %v\n  %v", i, tr1[i], tr2[i])
		}
	}
	for p := 0; p < 3; p++ {
		if m1.RMRsIn(CC, p) != m2.RMRsIn(CC, p) || m1.RMRsIn(DSM, p) != m2.RMRsIn(DSM, p) {
			t.Errorf("RMR counters diverge for p%d", p)
		}
	}
	for i, c := range m1.Cells() {
		if m1.Value(c) != m2.Value(m2.Cells()[i]) {
			t.Errorf("cell %s value diverges", c.Label())
		}
	}
}

func TestScheduleRestrict(t *testing.T) {
	s := Schedule{{Proc: 0}, {Proc: 1}, {Proc: 2, Crash: true}, {Proc: 1}, {Proc: 0}}
	got := s.Restrict(func(p int) bool { return p != 1 })
	want := Schedule{{Proc: 0}, {Proc: 2, Crash: true}, {Proc: 0}}
	if got.String() != want.String() {
		t.Errorf("Restrict = %q, want %q", got, want)
	}
	ps := s.Procs()
	if len(ps) != 3 || ps[0] != 0 || ps[1] != 1 || ps[2] != 2 {
		t.Errorf("Procs = %v, want [0 1 2]", ps)
	}
}

func TestStepErrors(t *testing.T) {
	m := newTestMachine(t, 1, CC)
	c := m.NewCell("c", memory.Shared, 0)
	prog := ProgramFuncs{RunFunc: func(p *Proc) { p.Read(c) }}

	if _, err := m.Step(0); !errors.Is(err, ErrNotStarted) {
		t.Errorf("step before start: %v", err)
	}
	if err := m.Start([]Program{prog}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(5); err == nil {
		t.Error("step out-of-range proc: want error")
	}
	if _, err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(0); !errors.Is(err, ErrDone) {
		t.Errorf("step finished proc: %v", err)
	}
	if _, err := m.Crash(0); !errors.Is(err, ErrDone) {
		t.Errorf("crash finished proc: %v", err)
	}
}

func TestMaxStepsEnforced(t *testing.T) {
	m, err := New(Config{Procs: 1, Width: 8, Model: CC, MaxSteps: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	c := m.NewCell("c", memory.Shared, 0)
	prog := ProgramFuncs{RunFunc: func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Add(c, 1)
		}
	}}
	if err := m.Start([]Program{prog}); err != nil {
		t.Fatal(err)
	}
	var last error
	for i := 0; i < 10; i++ {
		if _, last = m.Step(0); last != nil {
			break
		}
	}
	if !errors.Is(last, ErrMaxSteps) {
		t.Errorf("want ErrMaxSteps, got %v", last)
	}
}

func TestBodyPanicSurfaces(t *testing.T) {
	m := newTestMachine(t, 1, CC)
	c := m.NewCell("c", memory.Shared, 0)
	prog := ProgramFuncs{RunFunc: func(p *Proc) {
		p.Read(c)
		panic("algorithm bug")
	}}
	if err := m.Start([]Program{prog}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(0); err == nil {
		t.Fatal("body panic should surface as an error")
	}
}

func TestCloseIdempotentAndKillsParked(t *testing.T) {
	m, err := New(Config{Procs: 2, Width: 8, Model: CC})
	if err != nil {
		t.Fatal(err)
	}
	c := m.NewCell("c", memory.Shared, 0)
	spin := ProgramFuncs{RunFunc: func(p *Proc) {
		p.SpinUntil(c, func(v word.Word) bool { return v == 1 })
	}}
	if err := m.Start([]Program{spin, spin}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(0); err != nil { // p0 parks; p1 still poised
		t.Fatal(err)
	}
	m.Close()
	m.Close() // idempotent
	if _, err := m.Step(1); !errors.Is(err, ErrClosed) {
		t.Errorf("step after close: %v", err)
	}
}

func TestTagAndMark(t *testing.T) {
	m := newTestMachine(t, 1, CC)
	c := m.NewCell("c", memory.Shared, 0)
	prog := ProgramFuncs{RunFunc: func(p *Proc) {
		p.SetTag(1)
		p.Mark("before")
		p.Read(c)
		p.SetTag(2)
		p.Mark("after")
	}}
	if err := m.Start([]Program{prog}); err != nil {
		t.Fatal(err)
	}
	if got := m.Tag(0); got != 1 {
		t.Errorf("tag before step = %d, want 1", got)
	}
	runToCompletion(t, m)
	if got := m.Tag(0); got != 2 {
		t.Errorf("tag after = %d, want 2", got)
	}
	var notes []string
	for _, ev := range m.Trace() {
		if ev.Kind == EvMark {
			notes = append(notes, ev.Note)
		}
	}
	if len(notes) != 2 || notes[0] != "before" || notes[1] != "after" {
		t.Errorf("marks = %v", notes)
	}
}

func TestLastAccessorAndAccessors(t *testing.T) {
	m := newTestMachine(t, 3, CC)
	c := m.NewCell("c", memory.Shared, 0)
	if got := m.LastAccessor(c); got != -1 {
		t.Errorf("fresh cell last accessor = %d, want -1", got)
	}
	progs := make([]Program, 3)
	for i := range progs {
		progs[i] = ProgramFuncs{RunFunc: func(p *Proc) { p.Add(c, 1) }}
	}
	if err := m.Start(progs); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 0} {
		if _, err := m.Step(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.LastAccessor(c); got != 0 {
		t.Errorf("last accessor = %d, want 0", got)
	}
	acc := m.Accessors(c)
	if len(acc) != 2 || acc[0] != 0 || acc[1] != 2 {
		t.Errorf("accessors = %v, want [0 2]", acc)
	}
}

func TestNoTraceStillCounts(t *testing.T) {
	m, err := New(Config{Procs: 1, Width: 8, Model: CC, NoTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	c := m.NewCell("c", memory.Shared, 0)
	prog := ProgramFuncs{RunFunc: func(p *Proc) { p.Write(c, 1); p.Write(c, 2) }}
	if err := m.Start([]Program{prog}); err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, m)
	if len(m.Trace()) != 0 {
		t.Error("trace retained despite NoTrace")
	}
	if got := m.RMRsIn(CC, 0); got != 2 {
		t.Errorf("RMRs = %d, want 2", got)
	}
	if got := m.Steps(); got != 2 {
		t.Errorf("steps = %d, want 2", got)
	}
}

func TestCustomOpThroughGate(t *testing.T) {
	m := newTestMachine(t, 1, CC)
	c := m.NewCell("c", memory.Shared, 5)
	clamp := memory.Custom("clamp10", func(cur word.Word) (word.Word, word.Word) {
		if cur > 10 {
			return 10, cur
		}
		return cur + 7, cur
	})
	var rets []word.Word
	prog := ProgramFuncs{RunFunc: func(p *Proc) {
		rets = append(rets, p.Apply(c, clamp)) // 5 -> 12
		rets = append(rets, p.Apply(c, clamp)) // 12 -> 10
	}}
	if err := m.Start([]Program{prog}); err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, m)
	if rets[0] != 5 || rets[1] != 12 || m.Value(c) != 10 {
		t.Errorf("rets=%v final=%d", rets, m.Value(c))
	}
}

// TestParseScheduleRoundTrip checks ParseSchedule as the inverse of
// Schedule.String — the contract failure reproducers rely on.
func TestParseScheduleRoundTrip(t *testing.T) {
	sched := Schedule{{Proc: 0}, {Proc: 3, Crash: true}, {Proc: 12}, {Proc: 1, Crash: true}}
	parsed, err := ParseSchedule(sched.String())
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", sched.String(), err)
	}
	if len(parsed) != len(sched) {
		t.Fatalf("parsed %d actions, want %d", len(parsed), len(sched))
	}
	for i := range sched {
		if parsed[i] != sched[i] {
			t.Fatalf("action %d = %+v, want %+v", i, parsed[i], sched[i])
		}
	}
	if got, err := ParseSchedule("  "); err != nil || len(got) != 0 {
		t.Fatalf("blank schedule: %v, %v", got, err)
	}
	for _, bad := range []string{"x", "3^^", "-1", "2 ^"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) did not fail", bad)
		}
	}
}
