package sim

import (
	"bytes"
	"math/rand"
	"testing"

	"rme/internal/memory"
	"rme/internal/word"
)

// fpProgram is a small but stateful workload for fingerprint tests: each
// process mixes reads, read-modify-writes and a spin on shared cells with
// process- and iteration-dependent arguments, so distinct interleavings
// produce many distinct canonical states.
func fpProgram(m *Machine, procs, rounds int) []Program {
	a := m.NewCell("fp.a", memory.Shared, 0)
	b := m.NewCell("fp.b", memory.Shared, 0)
	progs := make([]Program, procs)
	for i := 0; i < procs; i++ {
		i := i
		progs[i] = ProgramFuncs{RunFunc: func(p *Proc) {
			for j := 0; j < rounds; j++ {
				v := p.Add(a, word.Word(i*3+j+1))
				if v%3 == 0 {
					p.CAS(b, v%8, v%8+1)
				} else {
					p.Read(b)
				}
				p.Write(b, v%16)
			}
		}}
	}
	return progs
}

func newFPMachine(t *testing.T, procs, rounds int) *Machine {
	t.Helper()
	m, err := New(Config{Procs: procs, Width: 16, Model: CC})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	if err := m.Start(fpProgram(m, procs, rounds)); err != nil {
		t.Fatal(err)
	}
	return m
}

// drive applies sched, skipping actions whose process is not poised (so
// arbitrary byte-derived schedules stay applicable), and returns the actions
// actually taken.
func drive(t *testing.T, m *Machine, sched []int) Schedule {
	t.Helper()
	var taken Schedule
	for _, p := range sched {
		if !m.Poised(p) {
			continue
		}
		if _, err := m.Step(p); err != nil {
			t.Fatalf("step %d: %v", p, err)
		}
		taken = append(taken, Action{Proc: p})
	}
	return taken
}

func TestFingerprintDeterministic(t *testing.T) {
	m := newFPMachine(t, 2, 2)
	drive(t, m, []int{0, 1, 0, 1, 1, 0})
	f1 := m.Fingerprint(42)
	f2 := m.Fingerprint(42)
	if f1 != f2 {
		t.Fatalf("same state, same seed: %v != %v", f1, f2)
	}
	if f3 := m.Fingerprint(43); f3 == f1 {
		t.Fatalf("seeds 42 and 43 collide: %v", f1)
	}
	if (Fingerprint{}) == f1 {
		t.Fatal("fingerprint is zero")
	}
}

func TestFingerprintEqualAcrossReplay(t *testing.T) {
	// The same schedule on two separately-constructed machines must agree.
	m1 := newFPMachine(t, 3, 2)
	sched := drive(t, m1, []int{0, 1, 2, 2, 1, 0, 0, 1, 2, 0})
	m2 := newFPMachine(t, 3, 2)
	if err := m2.Apply(sched); err != nil {
		t.Fatal(err)
	}
	if g, w := m2.Fingerprint(7), m1.Fingerprint(7); g != w {
		t.Fatalf("replayed machine fingerprint %v, want %v", g, w)
	}
	if !bytes.Equal(m2.CanonicalState(nil), m1.CanonicalState(nil)) {
		t.Fatal("canonical states differ after identical replay")
	}
}

func TestFingerprintEqualAfterCommutedSteps(t *testing.T) {
	// Both processes read the same cell, then write private cells: the two
	// reads commute, and so do the two writes (disjoint cells), so either
	// interleaving must land on the same canonical state.
	mk := func(order []int) (*Machine, Fingerprint) {
		m, err := New(Config{Procs: 2, Width: 16, Model: CC})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Close)
		c := m.NewCell("c", memory.Shared, 7)
		d := []memory.Cell{
			m.NewCell("d0", memory.Shared, 0),
			m.NewCell("d1", memory.Shared, 0),
		}
		progs := make([]Program, 2)
		for i := 0; i < 2; i++ {
			i := i
			progs[i] = ProgramFuncs{RunFunc: func(p *Proc) {
				v := p.Read(c)
				p.Write(d[i], v+word.Word(i))
			}}
		}
		if err := m.Start(progs); err != nil {
			t.Fatal(err)
		}
		drive(t, m, order)
		return m, m.Fingerprint(9)
	}
	m1, mid1 := mk([]int{0, 1})
	m2, mid2 := mk([]int{1, 0})
	if mid1 != mid2 {
		t.Fatalf("commuted reads: fingerprint %v, want %v", mid2, mid1)
	}
	drive(t, m1, []int{0, 1})
	drive(t, m2, []int{1, 0})
	if g, w := m2.Fingerprint(9), m1.Fingerprint(9); g != w {
		t.Fatalf("commuted disjoint writes: fingerprint %v, want %v", g, w)
	}
}

func TestFingerprintDistinguishesStepCounts(t *testing.T) {
	// A write of the value already present changes no memory, but the
	// canonical state must still move: step counts are part of it.
	m, err := New(Config{Procs: 1, Width: 16, Model: CC})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	c := m.NewCell("c", memory.Shared, 0)
	err = m.Start([]Program{ProgramFuncs{RunFunc: func(p *Proc) {
		p.Write(c, 0)
		p.Write(c, 0)
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	f1 := m.Fingerprint(1)
	if _, err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if f2 := m.Fingerprint(1); f1 == f2 {
		t.Fatal("identical-memory states at different step counts collide")
	}
}

// TestFingerprintCollisionSanity checks the fingerprint against a full-state
// map model: over 10^5 distinct canonical states gathered from random walks,
// no two distinct encodings may share a fingerprint, and equal encodings must
// agree on it.
func TestFingerprintCollisionSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("collision census is slow")
	}
	const target = 120_000
	rng := rand.New(rand.NewSource(1))
	byCanon := make(map[string]Fingerprint, target)
	byFP := make(map[Fingerprint]string, target)
	for len(byCanon) < target {
		m, err := New(Config{Procs: 4, Width: 16, Model: CC})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Start(fpProgram(m, 4, 4)); err != nil {
			t.Fatal(err)
		}
		for !m.AllDone() {
			ps := m.PoisedProcs()
			if len(ps) == 0 {
				break
			}
			if _, err := m.Step(ps[rng.Intn(len(ps))]); err != nil {
				t.Fatal(err)
			}
			canon := string(m.CanonicalState(nil))
			fp := m.Fingerprint(77)
			if prev, ok := byCanon[canon]; ok {
				if prev != fp {
					t.Fatalf("same canonical state, different fingerprints: %v vs %v", prev, fp)
				}
			} else {
				byCanon[canon] = fp
				if other, ok := byFP[fp]; ok && other != canon {
					t.Fatalf("fingerprint collision %v between distinct states", fp)
				}
				byFP[fp] = canon
			}
		}
		m.Close()
	}
}

// FuzzFingerprint feeds byte-derived schedules to two machines, swapping one
// adjacent pair of independent steps (different processes touching different
// cells, or both reading one cell) on the second machine. Canonical states
// and fingerprints must agree at the end; any divergence means either the
// canonical encoding tracks path-dependent garbage or it misses real state.
func FuzzFingerprint(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 1, 2, 2, 1, 0}, uint8(3))
	f.Add([]byte{1, 1, 0, 0, 2, 2}, uint8(0))
	f.Add([]byte{0, 2, 1, 0, 2, 1, 0, 2, 1, 1, 2}, uint8(5))
	f.Fuzz(func(t *testing.T, raw []byte, swapAt uint8) {
		const procs = 3
		if len(raw) > 64 {
			raw = raw[:64]
		}
		mk := func() *Machine {
			m, err := New(Config{Procs: procs, Width: 16, Model: CC})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Start(fpProgram(m, procs, 2)); err != nil {
				t.Fatal(err)
			}
			return m
		}
		m1 := mk()
		defer m1.Close()
		var taken Schedule
		for _, b := range raw {
			p := int(b) % procs
			if m1.Poised(p) {
				if _, err := m1.Step(p); err != nil {
					t.Fatal(err)
				}
				taken = append(taken, Action{Proc: p})
			}
		}
		if len(taken) < 2 {
			return
		}
		k := int(swapAt) % (len(taken) - 1)
		// Replay on a fresh machine, probing independence right before the
		// pair: both steps pending, different procs, and footprint-disjoint
		// or both reads.
		m2 := mk()
		defer m2.Close()
		if err := m2.Apply(taken[:k]); err != nil {
			t.Fatal(err)
		}
		a, b := taken[k], taken[k+1]
		swapped := false
		if a.Proc != b.Proc && m2.Poised(a.Proc) && m2.Poised(b.Proc) {
			opA, okA := m2.Pending(a.Proc)
			opB, okB := m2.Pending(b.Proc)
			if okA && okB && !opA.Wait && !opB.Wait &&
				(opA.Cell.CellID() != opB.Cell.CellID() ||
					(opA.Op.IsRead() && opB.Op.IsRead())) {
				swapped = true
			}
		}
		rest := taken[k:]
		if swapped {
			rest = append(Schedule{b, a}, taken[k+2:]...)
		}
		if err := m2.Apply(rest); err != nil {
			t.Fatal(err)
		}
		c1 := m1.CanonicalState(nil)
		c2 := m2.CanonicalState(nil)
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonical states diverge (swapped=%v) after %v", swapped, taken)
		}
		if f1, f2 := m1.Fingerprint(5), m2.Fingerprint(5); f1 != f2 {
			t.Fatalf("fingerprints diverge on equal canonical states: %v vs %v", f1, f2)
		}
	})
}
