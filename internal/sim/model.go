// Package sim implements the paper's machine model (§2) as a deterministic,
// schedule-driven simulator: n asynchronous processes performing atomic
// operations on w-bit base objects, with remote-memory-reference (RMR)
// accounting in both the cache-coherent (CC) and distributed shared memory
// (DSM) models, and individual crash steps that reset a process's local state
// while shared memory persists.
//
// Algorithm code runs on goroutines but is *step-gated*: every shared-memory
// operation blocks at a gate until the controller (a test, driver, or the
// lower-bound adversary) grants the step. Exactly one process body runs at a
// time, so executions are fully determined by their schedule and can be
// replayed — which is how the adversary materializes the proof's
// exponentially many sub-schedules on demand.
package sim

import "fmt"

// Model selects which RMR accounting rule drives scheduling decisions
// (both counters are always maintained).
type Model int

// The two standard RMR cost models (paper §2).
const (
	// CC: every non-read operation incurs an RMR; a read incurs an RMR iff
	// the reader holds no valid cache copy. Reads create cache copies;
	// non-read operations (by anyone) invalidate all copies of the cell.
	CC Model = iota + 1
	// DSM: shared memory is partitioned into per-process segments; an
	// operation incurs an RMR iff the cell is outside the caller's segment.
	DSM
)

// String returns the conventional model name.
func (m Model) String() string {
	switch m {
	case CC:
		return "CC"
	case DSM:
		return "DSM"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Valid reports whether m is CC or DSM.
func (m Model) Valid() bool { return m == CC || m == DSM }
