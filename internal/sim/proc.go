package sim

import (
	"errors"
	"fmt"

	"rme/internal/memory"
	"rme/internal/word"
)

// Proc is one simulated process. It implements memory.Env for the algorithm
// code running on its body goroutine; every Env call blocks at the step gate
// until the controller grants the step (or delivers a crash).
//
// Proc methods fall into two groups:
//
//   - Env methods and Mark/SetTag: callable only from the body goroutine;
//   - everything else is controller-side and lives on Machine.
type Proc struct {
	id      int
	m       *Machine
	program Program

	// Gate channels. The body sends its next operation on pendingCh and
	// blocks receiving a verdict on resumeCh.
	pendingCh chan stepReq
	resumeCh  chan verdict
	doneCh    chan struct{}

	// Controller-side state; only touched while the body is blocked.
	pending *stepReq
	parked  bool
	done    bool
	err     error
	crashes int
	steps   int
	rmrCC   int
	rmrDSM  int
	tag     int
}

var _ memory.Env = (*Proc)(nil)

// stepReq is an announced shared-memory operation, a multi-cell wait, or the
// body's final "finished" announcement.
type stepReq struct {
	cell *simCell
	op   memory.Op
	spin func(word.Word) bool // non-nil for SpinUntil probes

	// Multi-cell wait (SpinUntilMulti): no step is taken; the process parks
	// until multiPred holds for the watched cells' values.
	multi     []*simCell
	multiPred func([]word.Word) bool

	// fin marks the body's last message: the program returned (or failed with
	// p.err set) and no further operations follow. Delivering completion on
	// the announcement channel keeps the controller's quiescence wait a plain
	// channel receive instead of a two-way select — the step gate is the
	// simulator's hottest path (see EXPERIMENTS.md E15).
	fin bool
}

// isWait reports whether the request is a multi-cell wait (not a step).
func (r *stepReq) isWait() bool { return r.multi != nil }

// verdict is the controller's response to an announced operation.
type verdict struct {
	ret   word.Word
	vals  []word.Word // SpinUntilMulti results
	crash bool
	kill  bool
}

// Sentinels unwinding the body goroutine.
var (
	errCrashed = errors.New("sim: crash step")
	errKilled  = errors.New("sim: killed")
)

func newProc(m *Machine, id int) *Proc {
	return &Proc{
		id:        id,
		m:         m,
		pendingCh: make(chan stepReq),
		resumeCh:  make(chan verdict),
	}
}

// reset prepares the process for a (re-)launch: the program is installed,
// all controller-side state and counters clear, and a fresh doneCh is made
// (the previous one, if any, was closed when the body goroutine exited).
// The unbuffered gate channels are reused: after kill/finish the body
// goroutine holds neither, so they are guaranteed empty.
func (p *Proc) reset(program Program) {
	p.program = program
	p.doneCh = make(chan struct{})
	p.pending = nil
	p.parked = false
	p.done = false
	p.err = nil
	p.crashes = 0
	p.steps = 0
	p.rmrCC = 0
	p.rmrDSM = 0
	p.tag = 0
}

// launch starts the body goroutine. The controller must waitQuiescent
// immediately after, so bodies never run concurrently. The done channel is
// captured here: a finished body may still be between its fin announcement
// and the deferred close when the controller already Resets and replaces
// p.doneCh, and it must close the channel of its own launch, not the new one.
func (p *Proc) launch() {
	go p.runLoop(p.doneCh)
}

type bodyOutcome int

const (
	outcomeFinished bodyOutcome = iota + 1
	outcomeCrashed
	outcomeKilled
)

// runLoop runs the program, restarting with Recover after each crash step.
// Normal completion (and body failure, with p.err set) is announced as a fin
// message on the gate channel; a kill unwinds silently — the controller that
// sent it waits on done instead.
func (p *Proc) runLoop(done chan struct{}) {
	defer close(done)
	recovering := false
	for {
		switch p.runOnce(recovering) {
		case outcomeFinished:
			p.pendingCh <- stepReq{fin: true}
			return
		case outcomeKilled:
			return
		case outcomeCrashed:
			recovering = true
		}
	}
}

// runOnce executes Run or Recover, translating the unwind sentinels.
// Non-sentinel panics are recorded as process failures and surfaced by the
// controller; they indicate bugs in algorithm code.
func (p *Proc) runOnce(recovering bool) (outcome bodyOutcome) {
	defer func() {
		r := recover()
		switch r {
		case nil:
		case errCrashed:
			outcome = outcomeCrashed
		case errKilled:
			outcome = outcomeKilled
		default:
			p.err = fmt.Errorf("panic in process %d body: %v", p.id, r)
			outcome = outcomeFinished
		}
	}()
	if recovering {
		p.program.Recover(p)
	} else {
		p.program.Run(p)
	}
	return outcomeFinished
}

// announce parks the body at the step gate and returns the granted result.
func (p *Proc) announce(req stepReq) word.Word {
	p.pendingCh <- req
	v := <-p.resumeCh
	if v.crash {
		panic(errCrashed)
	}
	if v.kill {
		panic(errKilled)
	}
	return v.ret
}

// cell resolves a memory.Cell to this machine's representation.
func (p *Proc) cell(c memory.Cell) *simCell { return p.m.own(c) }

// --- memory.Env --------------------------------------------------------------

// ID returns the process id.
func (p *Proc) ID() int { return p.id }

// Width returns the machine word size.
func (p *Proc) Width() word.Width { return p.m.cfg.Width }

// Read performs an atomic read step.
func (p *Proc) Read(c memory.Cell) word.Word {
	return p.announce(stepReq{cell: p.cell(c), op: memory.Read()})
}

// Write performs an atomic write step.
func (p *Proc) Write(c memory.Cell, v word.Word) {
	p.announce(stepReq{cell: p.cell(c), op: memory.Write(v)})
}

// Swap performs an atomic fetch-and-store step.
func (p *Proc) Swap(c memory.Cell, v word.Word) word.Word {
	return p.announce(stepReq{cell: p.cell(c), op: memory.Swap(v)})
}

// Add performs an atomic fetch-and-add step.
func (p *Proc) Add(c memory.Cell, d word.Word) word.Word {
	return p.announce(stepReq{cell: p.cell(c), op: memory.Add(d)})
}

// CAS performs an atomic compare-and-swap step, returning the prior value.
func (p *Proc) CAS(c memory.Cell, expected, replacement word.Word) word.Word {
	return p.announce(stepReq{cell: p.cell(c), op: memory.CAS(expected, replacement)})
}

// Apply performs an arbitrary atomic operation step.
func (p *Proc) Apply(c memory.Cell, op memory.Op) word.Word {
	return p.announce(stepReq{cell: p.cell(c), op: op})
}

// SpinUntil busy-waits until pred holds for c's value, and returns that
// value. Each probe is a read step; failed probes park the process until the
// cell is next touched by a non-read operation, so RMR accounting matches the
// local-spin rules of both models and controllers never need to schedule
// unproductive spinning.
func (p *Proc) SpinUntil(c memory.Cell, pred func(word.Word) bool) word.Word {
	return p.announce(stepReq{cell: p.cell(c), op: memory.Read(), spin: pred})
}

// SpinUntilMulti blocks until pred holds for the values of all given cells
// (evaluated atomically at registration and after every non-read operation on
// any of them) and returns those values. It models a CC process spinning
// locally on several cached locations at once: the wait itself takes no
// steps, and each recheck triggered by an invalidation is charged one RMR
// against the touched cell (a cache-miss re-read), mirroring the CC cost of
// the spin loop it replaces. In the DSM model a recheck is charged iff the
// touched cell is remote — algorithms that need DSM-local spinning should
// spin on a single local cell with SpinUntil instead.
func (p *Proc) SpinUntilMulti(cells []memory.Cell, pred func([]word.Word) bool) []word.Word {
	scs := make([]*simCell, len(cells))
	for i, c := range cells {
		scs[i] = p.cell(c)
	}
	v := p.announceWait(stepReq{multi: scs, multiPred: pred})
	return v
}

// announceWait submits a multi-cell wait and returns the satisfying values.
func (p *Proc) announceWait(req stepReq) []word.Word {
	p.pendingCh <- req
	v := <-p.resumeCh
	if v.crash {
		panic(errCrashed)
	}
	if v.kill {
		panic(errKilled)
	}
	return v.vals
}

// --- body annotations ---------------------------------------------------------

// Mark appends an annotation event to the trace. It is not a step: it does
// not consume a scheduling action and is invisible to the algorithm.
func (p *Proc) Mark(note string) {
	p.m.seq++
	p.m.record(Event{Seq: p.m.seq, Kind: EvMark, Proc: p.id, Note: note})
}

// SetTag publishes a small integer annotation readable by the controller via
// Machine.Tag (the mutex driver uses it to expose entry/CS/exit phases to the
// mutual-exclusion monitor).
func (p *Proc) SetTag(tag int) { p.tag = tag }

// RMRCount returns the process's RMR count under the given model. It is safe
// from the body goroutine (between steps) and from the controller.
func (p *Proc) RMRCount(m Model) int {
	if m == DSM {
		return p.rmrDSM
	}
	return p.rmrCC
}

// StepCount returns the number of shared-memory steps the process has
// executed (crash steps excluded).
func (p *Proc) StepCount() int { return p.steps }
