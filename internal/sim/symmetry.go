package sim

import (
	"fmt"

	"rme/internal/memory"
	"rme/internal/word"
)

// Symmetry declares a process-renaming symmetry group for one machine
// construction. An algorithm that is equivariant under a set of process
// permutations registers, for each non-identity group element, how the
// permutation acts on its cell layout: which cell moves where and how cell
// values transform. The checker then collapses states that are equal up to a
// declared renaming by minimizing the fingerprint over the group (see
// Machine.CanonicalFingerprint).
//
// Declaring a permutation is a soundness claim: renaming the processes of any
// execution by π must yield another legal execution reaching the π-image
// state. The claim is validated structurally at compile time (bijections,
// DSM-owner equivariance) and empirically by the checker's oracle tests,
// which compare canonical fingerprints against states reached by actually
// running renamed schedules.
type Symmetry struct {
	n        int
	perms    []*Perm
	pidCells map[int]bool
}

// NewSymmetry starts an empty declaration for an n-process machine. A
// declaration with no added permutations behaves exactly like no declaration.
func NewSymmetry(n int) *Symmetry {
	return &Symmetry{n: n, pidCells: make(map[int]bool)}
}

// PIDCell marks a cell as pid-coded: its value is either 0 ("none") or a
// process id plus one, the repo-wide discipline for ownership words. Every
// declared permutation remaps such values as 0 → 0, id+1 → π(id)+1 unless it
// installs an explicit MapValue for the cell.
func (s *Symmetry) PIDCell(id int) { s.pidCells[id] = true }

// Add appends one non-identity group element. The declared set plus the
// identity should form a group (closed under composition and inverse);
// missing elements only cost reduction, never soundness, since every declared
// element is checked individually.
func (s *Symmetry) Add(p *Perm) {
	if len(p.procs) != s.n {
		panic(fmt.Sprintf("sim: permutation over %d processes added to a %d-process symmetry", len(p.procs), s.n))
	}
	s.perms = append(s.perms, p)
}

// Order returns the declared group order, counting the identity.
func (s *Symmetry) Order() int {
	if s == nil {
		return 1
	}
	return 1 + len(s.perms)
}

// Perm is one declared group element: a process bijection plus its induced
// action on cells and cell values. Cells not mentioned are fixed; values of
// cells without a value map (and not pid-coded) are unchanged.
type Perm struct {
	procs []int
	cells map[int]int
	vals  map[int]func(word.Word) word.Word
}

// NewPerm declares a group element renaming process p to procs[p].
func NewPerm(procs []int) *Perm {
	cp := make([]int, len(procs))
	copy(cp, procs)
	return &Perm{procs: cp, cells: make(map[int]int), vals: make(map[int]func(word.Word) word.Word)}
}

// MapCell declares that the cell with allocation index from occupies index
// to's role after renaming (e.g. phase[i] → phase[π(i)]).
func (p *Perm) MapCell(from, to int) {
	if from == to {
		return
	}
	p.cells[from] = to
}

// MapValue declares how the value stored in the given cell transforms under
// the renaming (e.g. a tree node's victim word flipping sides). The map must
// be a bijection on the cell's reachable values and must also apply to the
// value arguments of pending Write/Swap/CAS operations targeting the cell.
func (p *Perm) MapValue(cell int, f func(word.Word) word.Word) { p.vals[cell] = f }

// Permutations returns all n! permutations of [0,n) in lexicographic order;
// the first entry is the identity. Intended for full-S_n declarations at
// model-checking scale (n ≤ 8 or so).
func Permutations(n int) [][]int {
	var out [][]int
	cur := make([]int, 0, n)
	used := make([]bool, n)
	var rec func()
	rec = func() {
		if len(cur) == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			used[v] = true
			cur = append(cur, v)
			rec()
			cur = cur[:len(cur)-1]
			used[v] = false
		}
	}
	rec()
	return out
}

// symPerm is a permutation compiled against one machine's cell layout:
// dense arrays instead of maps, with pid-coded value remaps materialized.
type symPerm struct {
	procTo   []int // procTo[p] = π(p)
	procFrom []int // procFrom[q] = π⁻¹(q)
	cellTo   []int // cellTo[c] = index whose role cell c takes
	cellFrom []int // cellFrom[j] = cell whose state lands at index j
	vals     []func(word.Word) word.Word
}

// symPerms compiles (and caches) the declaration against this machine. The
// cache is keyed by the *Symmetry identity: sessions hold one declaration for
// the machine's lifetime, so the compare is a pointer check.
func (m *Machine) symPerms(sym *Symmetry) []symPerm {
	if sym == nil || len(sym.perms) == 0 {
		return nil
	}
	if m.symFor == sym {
		return m.symCache
	}
	compiled := make([]symPerm, len(sym.perms))
	for i, p := range sym.perms {
		compiled[i] = m.compilePerm(sym, p)
	}
	m.symFor, m.symCache = sym, compiled
	return compiled
}

func (m *Machine) compilePerm(sym *Symmetry, p *Perm) symPerm {
	n := m.cfg.Procs
	if len(p.procs) != n {
		panic(fmt.Sprintf("sim: symmetry permutation covers %d processes, machine has %d", len(p.procs), n))
	}
	sp := symPerm{
		procTo:   append([]int(nil), p.procs...),
		procFrom: make([]int, n),
		cellTo:   make([]int, len(m.cells)),
		cellFrom: make([]int, len(m.cells)),
		vals:     make([]func(word.Word) word.Word, len(m.cells)),
	}
	seen := make([]bool, n)
	for q := range sp.procFrom {
		sp.procFrom[q] = -1
	}
	for pr, to := range sp.procTo {
		if to < 0 || to >= n || seen[to] {
			panic(fmt.Sprintf("sim: symmetry process map %v is not a bijection on [0,%d)", sp.procTo, n))
		}
		seen[to] = true
		sp.procFrom[to] = pr
	}
	for c := range sp.cellTo {
		sp.cellTo[c] = c
	}
	for from, to := range p.cells {
		if from < 0 || from >= len(m.cells) || to < 0 || to >= len(m.cells) {
			panic(fmt.Sprintf("sim: symmetry cell map %d→%d out of range (have %d cells)", from, to, len(m.cells)))
		}
		sp.cellTo[from] = to
	}
	for j := range sp.cellFrom {
		sp.cellFrom[j] = -1
	}
	for c, to := range sp.cellTo {
		if sp.cellFrom[to] != -1 {
			panic(fmt.Sprintf("sim: symmetry cell map sends both %q and %q to %q",
				m.cells[sp.cellFrom[to]].label, m.cells[c].label, m.cells[to].label))
		}
		sp.cellFrom[to] = c
		// DSM-owner equivariance: a cell owned by process p must land on a
		// cell owned by π(p), and shared cells stay shared, or RMR-visible
		// structure would differ between a state and its image.
		oldOwner, newOwner := m.cells[c].owner, m.cells[to].owner
		switch {
		case oldOwner == memory.Shared:
			if newOwner != memory.Shared {
				panic(fmt.Sprintf("sim: symmetry maps shared cell %q to owned cell %q", m.cells[c].label, m.cells[to].label))
			}
		case newOwner == memory.Shared || newOwner != sp.procTo[oldOwner]:
			panic(fmt.Sprintf("sim: symmetry maps cell %q (owner %d) to %q (owner %d); want owner %d",
				m.cells[c].label, oldOwner, m.cells[to].label, newOwner, sp.procTo[oldOwner]))
		}
	}
	procTo := sp.procTo
	for c := range sp.vals {
		if f, ok := p.vals[c]; ok {
			sp.vals[c] = f
			continue
		}
		if sym.pidCells[c] {
			label := m.cells[c].label
			sp.vals[c] = func(v word.Word) word.Word {
				if v == 0 {
					return 0
				}
				id := int(v) - 1
				if uint64(v) > uint64(len(procTo)) {
					panic(fmt.Sprintf("sim: pid-coded cell %q holds %d, not a process id + 1", label, v))
				}
				return word.Word(procTo[id] + 1)
			}
		}
	}
	return sp
}

// canonicalStateUnder appends the canonical encoding of the machine's state
// as seen through one group element (nil = identity, byte-identical to
// CanonicalState). The encoding of state s under π equals the plain encoding
// of the state reached by the π-renamed execution — that equivalence is what
// the checker's symmetry oracle tests pin per algorithm.
func (m *Machine) canonicalStateUnder(sp *symPerm, buf []byte) []byte {
	buf = appendWord(buf, fpVersionTag)
	buf = append(buf, fpTagCells)
	buf = appendWord(buf, uint64(len(m.cells)))
	for j := range m.cells {
		c := m.cells[j]
		if sp != nil {
			c = m.cells[sp.cellFrom[j]]
		}
		v := c.val
		if sp != nil {
			if f := sp.vals[c.id]; f != nil {
				v = f(v)
			}
		}
		buf = appendWord(buf, uint64(v))
	}
	for q := range m.procs {
		pr := m.procs[q]
		if sp != nil {
			pr = m.procs[sp.procFrom[q]]
		}
		buf = append(buf, fpTagProc)
		var flags uint64
		if pr.done {
			flags |= 1
		}
		if pr.parked {
			flags |= 2
		}
		buf = appendWord(buf, flags)
		buf = appendWord(buf, uint64(pr.crashes))
		buf = appendWord(buf, uint64(pr.steps))
		buf = appendWord(buf, uint64(int64(pr.tag)))
		switch {
		case pr.pending == nil:
			buf = append(buf, fpTagNone)
		case pr.pending.isWait():
			buf = append(buf, fpTagWait)
			buf = appendWord(buf, uint64(len(pr.pending.multi)))
			for _, wc := range pr.pending.multi {
				id := wc.id
				if sp != nil {
					id = sp.cellTo[id]
				}
				buf = appendWord(buf, uint64(id))
			}
		default:
			buf = append(buf, fpTagStep)
			op := pr.pending.op
			id := pr.pending.cell.id
			arg, arg2 := op.Arg, op.Arg2
			if sp != nil {
				// A pending operation's value arguments live in the target
				// cell's value domain, so they transform with the cell. Only
				// value-carrying opcodes remap: an Add delta or a custom op's
				// arguments are not cell values (declarations must not put
				// value maps on cells driven by those, beyond pid-preserving
				// uses like Add(0) keep-alives — guarded by the oracle tests).
				if f := sp.vals[id]; f != nil {
					switch op.Code {
					case memory.OpWrite, memory.OpSwap:
						arg = f(arg)
					case memory.OpCAS:
						arg, arg2 = f(arg), f(arg2)
					}
				}
				id = sp.cellTo[id]
			}
			buf = appendWord(buf, uint64(id))
			buf = appendWord(buf, uint64(op.Code))
			buf = appendWord(buf, uint64(arg))
			buf = appendWord(buf, uint64(arg2))
			if pr.pending.spin != nil {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
			if name := op.Name; name != "" {
				buf = append(buf, fpTagOpName)
				buf = appendWord(buf, uint64(len(name)))
				buf = append(buf, name...)
			}
		}
	}
	return buf
}

// NumVariants returns the number of group elements a declaration yields on
// this machine, counting the identity (1 when sym is nil or empty).
func (m *Machine) NumVariants(sym *Symmetry) int { return 1 + len(m.symPerms(sym)) }

// VariantProcMap returns the old→new process map of group element i (i = 0 is
// the identity and returns nil). The returned slice is shared with the
// machine's compiled cache and must not be modified.
func (m *Machine) VariantProcMap(sym *Symmetry, i int) []int {
	if i == 0 {
		return nil
	}
	return m.symPerms(sym)[i-1].procTo
}

// CanonicalStateVariant appends the canonical state encoding as seen through
// group element i (element 0 is the identity, byte-identical to
// CanonicalState). Exposed for the symmetry oracle tests.
func (m *Machine) CanonicalStateVariant(sym *Symmetry, i int, buf []byte) []byte {
	if i == 0 {
		return m.canonicalStateUnder(nil, buf)
	}
	sps := m.symPerms(sym)
	return m.canonicalStateUnder(&sps[i-1], buf)
}

// VariantFingerprint hashes the canonical state as seen through group element
// i under the given seed; element 0 equals Fingerprint. Like Fingerprint it
// reuses the machine's scratch buffer and must run on the controller
// goroutine.
func (m *Machine) VariantFingerprint(seed uint64, sym *Symmetry, i int) Fingerprint {
	if i == 0 {
		return m.Fingerprint(seed)
	}
	sps := m.symPerms(sym)
	m.fpScratch = m.canonicalStateUnder(&sps[i-1], m.fpScratch[:0])
	return hashBuf(seed, m.fpScratch)
}

// CanonicalFingerprint returns the minimum (Fingerprint.Less) of the state's
// variant fingerprints over the declared group — a canonical key under which
// states equal up to a declared renaming collide. With a nil or empty
// declaration it equals Fingerprint.
func (m *Machine) CanonicalFingerprint(seed uint64, sym *Symmetry) Fingerprint {
	best := m.Fingerprint(seed)
	sps := m.symPerms(sym)
	for i := range sps {
		m.fpScratch = m.canonicalStateUnder(&sps[i], m.fpScratch[:0])
		if fp := hashBuf(seed, m.fpScratch); fp.Less(best) {
			best = fp
		}
	}
	return best
}
