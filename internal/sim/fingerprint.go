package sim

import (
	"fmt"
)

// Fingerprint is a seeded 128-bit hash of a machine's canonical state. Two
// machines with the same construction that reach the same canonical state
// (see CanonicalState) compare fingerprint-equal; the model checker uses
// fingerprints as visited-set keys so that interleavings converging on the
// same state are explored once.
type Fingerprint struct {
	Hi, Lo uint64
}

// String renders the fingerprint as 32 hex digits.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x%016x", f.Hi, f.Lo) }

// Less orders fingerprints lexicographically by (Hi, Lo). The symmetry
// reduction keys the visited set by the Less-minimum over a state's variant
// fingerprints, so the order only needs to be total and deterministic.
func (f Fingerprint) Less(g Fingerprint) bool {
	if f.Hi != g.Hi {
		return f.Hi < g.Hi
	}
	return f.Lo < g.Lo
}

// Mix folds an extra value (e.g. monitor state kept outside the machine)
// into the fingerprint, returning a new fingerprint. Mixing is order
// sensitive and injective in v for a fixed receiver lane state.
func (f Fingerprint) Mix(v uint64) Fingerprint {
	var h stateHasher
	h.h1, h.h2 = f.Hi, f.Lo
	h.word(v)
	return h.sum()
}

// stateHasher is a two-lane incremental hash over 64-bit words. Lane 1 is
// FNV-1a with the 64-bit prime; lane 2 is a multiply–xorshift accumulator
// (splitmix-style finalizer). The lanes use unrelated constants, so a
// collision needs the same input to collide under two independent mixing
// functions; the package test checks ≥10^5 distinct canonical states hash
// without collision against a full-state map model.
type stateHasher struct {
	h1, h2 uint64
}

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
	mixMult1    = 0x9e3779b97f4a7c15
	mixMult2    = 0xbf58476d1ce4e5b9
)

func newStateHasher(seed uint64) stateHasher {
	return stateHasher{
		h1: fnvOffset64 ^ seed,
		h2: (seed+1)*mixMult1 ^ fnvOffset64>>1,
	}
}

// word absorbs one 64-bit word into both lanes.
func (h *stateHasher) word(v uint64) {
	// Lane 1: FNV-1a over the 8 bytes, unrolled to one multiply per byte.
	x := h.h1
	for i := 0; i < 8; i++ {
		x = (x ^ (v >> (8 * i) & 0xff)) * fnvPrime64
	}
	h.h1 = x
	// Lane 2: multiply–xorshift accumulate.
	y := h.h2 + v*mixMult1
	y ^= y >> 30
	y *= mixMult2
	y ^= y >> 27
	h.h2 = y
}

// sum finalizes the hash (the lanes are already well mixed).
func (h *stateHasher) sum() Fingerprint {
	a, b := h.h1, h.h2
	a ^= b >> 31
	a *= mixMult2
	b ^= a >> 29
	b *= mixMult1
	return Fingerprint{Hi: a, Lo: b}
}

// Canonical-state encoding tags, one per record kind, so that records of
// different kinds can never alias each other byte-for-byte.
const (
	fpTagCells   = 0x10
	fpTagProc    = 0x20
	fpTagStep    = 0x31
	fpTagWait    = 0x32
	fpTagNone    = 0x33
	fpTagOpName  = 0x40
	fpVersionTag = 0xf1ee_0001 // bump when the encoding changes
)

// CanonicalState appends a canonical encoding of the machine's
// verdict-relevant state to buf and returns the extended slice. Two machines
// with identical constructions have equal encodings iff they agree on:
//
//   - every cell's current value (allocation order);
//   - per process: finished/parked flags, crash count, shared-memory step
//     count, the body's annotation tag (the driver's protocol phase), and the
//     pending operation — for a step, its target cell, opcode, arguments and
//     custom-op name, plus whether it is a spin probe; for a multi-cell wait,
//     the watched cell set.
//
// Deliberately excluded: cache-copy sets, watcher sets, per-cell and
// per-process RMR counters, traces and schedules. None of those influence
// which schedules are enabled or what any future operation returns — they are
// accounting over the path taken, not state that constrains the future — so
// including them would only split states the checker could soundly merge.
// The per-process step count IS included: it distinguishes "same memory, same
// phase" points in different super-passages (the driver's pass counter is a
// body local), and it makes the explored state graph acyclic, since every
// action increments some process's count.
//
// The encoding assumes (and the crash contract of package mutex requires)
// that a process's continuation is determined by its program, its step and
// crash counts, its pending operation, and shared memory. Body locals that
// violate that assumption (a counter carried across identical-looking states)
// would make two distinct futures encode equally; the checker's differential
// tests guard this empirically for every algorithm in the repo.
func (m *Machine) CanonicalState(buf []byte) []byte {
	return m.canonicalStateUnder(nil, buf)
}

func appendWord(buf []byte, v uint64) []byte {
	return append(buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// Fingerprint hashes the canonical state (see CanonicalState) under the
// given seed. The encoding scratch buffer is retained on the machine, so
// steady-state calls do not allocate; like every Machine method it must be
// called from the controller goroutine only.
func (m *Machine) Fingerprint(seed uint64) Fingerprint {
	m.fpScratch = m.CanonicalState(m.fpScratch[:0])
	return hashBuf(seed, m.fpScratch)
}

// hashBuf hashes a canonical-state encoding under the given seed.
func hashBuf(seed uint64, buf []byte) Fingerprint {
	h := newStateHasher(seed)
	for len(buf) >= 8 {
		h.word(uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16 | uint64(buf[3])<<24 |
			uint64(buf[4])<<32 | uint64(buf[5])<<40 | uint64(buf[6])<<48 | uint64(buf[7])<<56)
		buf = buf[8:]
	}
	var tail uint64
	for i, b := range buf {
		tail |= uint64(b) << (8 * i)
	}
	// The tail word is length-tagged so "abc" and "abc\x00" differ.
	h.word(tail | uint64(len(buf)+1)<<56)
	return h.sum()
}
