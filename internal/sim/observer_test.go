package sim

import (
	"reflect"
	"testing"

	"rme/internal/memory"
	"rme/internal/word"
)

// sliceObserver records every observed event.
type sliceObserver struct {
	events []Event
}

func (o *sliceObserver) ObserveEvent(ev Event) { o.events = append(o.events, ev) }

// contendProg makes procs fight over a shared cell and then spin until a
// release flag flips, exercising RMR charges, parking, and wakes.
func contendProg(c, flag memory.Cell, id int) Program {
	return ProgramFuncs{RunFunc: func(p *Proc) {
		p.Add(c, 1)
		if id == 0 {
			p.Write(flag, 1)
			return
		}
		p.SpinUntil(flag, func(v word.Word) bool { return v != 0 })
		p.Read(c)
	}}
}

// buildContention allocates the shared cells and returns one program per
// process; the caller Starts (and may Reset and re-Start) the machine.
func buildContention(m *Machine) []Program {
	c := m.NewCell("counter", memory.Shared, 0)
	flag := m.NewCell("flag", memory.Shared, 0)
	progs := make([]Program, m.Procs())
	for i := range progs {
		progs[i] = contendProg(c, flag, i)
	}
	return progs
}

func startContention(t *testing.T, m *Machine) []Program {
	t.Helper()
	progs := buildContention(m)
	if err := m.Start(progs); err != nil {
		t.Fatal(err)
	}
	return progs
}

// TestObserverMatchesRetainedTrace asserts the streaming hook sees exactly
// the events the machine retains, in order — including the marks recorded
// during Start, which is why the observer must be attachable before Start.
func TestObserverMatchesRetainedTrace(t *testing.T) {
	for _, model := range []Model{CC, DSM} {
		m := newTestMachine(t, 3, model)
		var obs sliceObserver
		m.SetObserver(&obs)
		startContention(t, m)
		runToCompletion(t, m)
		if len(obs.events) == 0 {
			t.Fatal("observer saw no events")
		}
		if !reflect.DeepEqual(obs.events, m.Trace()) {
			t.Errorf("%v: observer stream (%d events) != retained trace (%d events)",
				model, len(obs.events), len(m.Trace()))
		}
	}
}

// TestObserverStreamsUnderNoTrace asserts the hook still fires when trace
// retention is disabled — the configuration fault campaigns run with.
func TestObserverStreamsUnderNoTrace(t *testing.T) {
	m, err := New(Config{Procs: 2, Width: 16, Model: CC, NoTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	var obs sliceObserver
	m.SetObserver(&obs)
	startContention(t, m)
	runToCompletion(t, m)
	if got := len(m.Trace()); got != 0 {
		t.Fatalf("NoTrace machine retained %d events", got)
	}
	if len(obs.events) == 0 {
		t.Fatal("observer saw no events under NoTrace")
	}
}

// TestEventFlagsMatchRMRCounters asserts the per-event RMRCC/RMRDSM flags
// sum to exactly the machine's per-process RMR counters — the trace is the
// counters, itemized.
func TestEventFlagsMatchRMRCounters(t *testing.T) {
	for _, model := range []Model{CC, DSM} {
		m := newTestMachine(t, 4, model)
		startContention(t, m)
		runToCompletion(t, m)
		ccByProc := make([]int, m.Procs())
		dsmByProc := make([]int, m.Procs())
		for _, ev := range m.Trace() {
			if ev.RMRCC {
				ccByProc[ev.Proc]++
			}
			if ev.RMRDSM {
				dsmByProc[ev.Proc]++
			}
		}
		for p := 0; p < m.Procs(); p++ {
			if got, want := ccByProc[p], m.RMRsIn(CC, p); got != want {
				t.Errorf("%v: p%d trace CC flags = %d, counter = %d", model, p, got, want)
			}
			if got, want := dsmByProc[p], m.RMRsIn(DSM, p); got != want {
				t.Errorf("%v: p%d trace DSM flags = %d, counter = %d", model, p, got, want)
			}
		}
	}
}

// TestCellRMRStatsMatchProcCounters asserts the per-cell attribution table
// is a repartition of the same charges: summed over cells it equals the sum
// of the per-process counters, and every row matches the trace's per-cell
// flag counts.
func TestCellRMRStatsMatchProcCounters(t *testing.T) {
	m := newTestMachine(t, 4, CC)
	startContention(t, m)
	runToCompletion(t, m)

	var cellCC, cellDSM, procCC, procDSM int
	for _, row := range m.CellRMRStats() {
		cellCC += row.RMRCC
		cellDSM += row.RMRDSM
	}
	for p := 0; p < m.Procs(); p++ {
		procCC += m.RMRsIn(CC, p)
		procDSM += m.RMRsIn(DSM, p)
	}
	if cellCC != procCC || cellDSM != procDSM {
		t.Errorf("cell totals (CC=%d DSM=%d) != proc totals (CC=%d DSM=%d)",
			cellCC, cellDSM, procCC, procDSM)
	}

	byCellCC := map[int]int{}
	byCellDSM := map[int]int{}
	for _, ev := range m.Trace() {
		if ev.RMRCC {
			byCellCC[ev.Cell]++
		}
		if ev.RMRDSM {
			byCellDSM[ev.Cell]++
		}
	}
	for _, row := range m.CellRMRStats() {
		if row.RMRCC != byCellCC[row.Cell] || row.RMRDSM != byCellDSM[row.Cell] {
			t.Errorf("cell %d (%s): counters CC=%d DSM=%d, trace flags CC=%d DSM=%d",
				row.Cell, row.Label, row.RMRCC, row.RMRDSM, byCellCC[row.Cell], byCellDSM[row.Cell])
		}
	}
}

// TestCellRMRStatsResetAndReplay asserts Reset clears the per-cell counters
// and a replay reproduces them exactly.
func TestCellRMRStatsResetAndReplay(t *testing.T) {
	m := newTestMachine(t, 3, DSM)
	progs := startContention(t, m)
	runToCompletion(t, m)
	first := m.CellRMRStats()
	sched := m.Schedule()

	m.Reset()
	for _, row := range m.CellRMRStats() {
		if row.RMRCC != 0 || row.RMRDSM != 0 {
			t.Fatalf("after Reset, cell %d (%s) has CC=%d DSM=%d", row.Cell, row.Label, row.RMRCC, row.RMRDSM)
		}
	}

	if err := m.Start(progs); err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(sched); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.CellRMRStats(), first) {
		t.Errorf("replayed cell stats differ:\n first: %+v\nreplay: %+v", first, m.CellRMRStats())
	}
}
