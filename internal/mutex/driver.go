package mutex

import (
	"errors"
	"fmt"
	"math/rand"

	"rme/internal/memory"
	"rme/internal/sim"
	"rme/internal/word"
)

// Config describes a driven RME session: an algorithm instantiated on a
// simulated machine with each process performing a number of super-passages.
type Config struct {
	// Procs is the number of processes n.
	Procs int
	// Width is the word size w in bits.
	Width word.Width
	// Model selects CC or DSM accounting.
	Model sim.Model
	// Algorithm is the lock under test.
	Algorithm Algorithm
	// Passes is the number of super-passages per process (default 1).
	Passes int
	// ExtraCSSteps adds RMR-incurring steps inside the critical section on
	// top of the single step of assumption (A2) (default 0).
	ExtraCSSteps int
	// NoTrace disables trace retention on the underlying machine.
	NoTrace bool
	// MaxSteps caps the machine's action count (0 = sim default).
	MaxSteps int
}

func (c Config) withDefaults() Config {
	if c.Passes == 0 {
		c.Passes = 1
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Algorithm == nil {
		return errors.New("mutex: nil algorithm")
	}
	if c.Passes < 0 || c.ExtraCSSteps < 0 {
		return fmt.Errorf("mutex: negative Passes (%d) or ExtraCSSteps (%d)", c.Passes, c.ExtraCSSteps)
	}
	return nil
}

// PassageStat records one passage of one process: it begins with the first
// shared-memory step of the entry or recover protocol and ends with a crash
// step or with the end of the super-passage (paper §2).
type PassageStat struct {
	Proc  int
	Super int // super-passage index for this process
	// Recovery marks passages that began with the recover protocol.
	Recovery bool
	// EndedByCrash marks passages terminated by a crash step.
	EndedByCrash bool
	Steps        int
	RMRsCC       int
	RMRsDSM      int
}

// RMRs returns the passage's RMR count under the given model.
func (p PassageStat) RMRs(model sim.Model) int {
	if model == sim.DSM {
		return p.RMRsDSM
	}
	return p.RMRsCC
}

// Session is a driven RME execution. All methods must be called from one
// controller goroutine.
type Session struct {
	cfg      Config
	mach     *sim.Machine
	inst     Instance
	csCell   memory.Cell
	bodies   []*driverBody
	lastTags []int
	csOwner  int // process owning the CS (incl. crashed-in-CS holders), or -1
	csOrder  []int
	errs     []string
	// sym is the instance's process-symmetry declaration (nil if none),
	// extended with the session's own cs-witness cell. It is built lazily on
	// the first Symmetry/CanonicalStateKey call so sessions that never ask
	// (benchmarks, the service layer) pay nothing.
	sym     *sim.Symmetry
	symInit bool
	// poised is the retained scratch buffer for per-sweep poised snapshots in
	// RunRoundRobin/RunRandom (sim.Machine.AppendPoised), so driving a session
	// allocates nothing per scheduling round.
	poised []int
}

// NewSession builds the machine, instantiates the algorithm, and starts the
// driver processes (each poised at its first entry step).
func NewSession(cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mach, err := sim.New(sim.Config{
		Procs:    cfg.Procs,
		Width:    cfg.Width,
		Model:    cfg.Model,
		NoTrace:  cfg.NoTrace,
		MaxSteps: cfg.MaxSteps,
	})
	if err != nil {
		return nil, err
	}
	inst, err := cfg.Algorithm.Make(mach, cfg.Procs)
	if err != nil {
		return nil, fmt.Errorf("mutex: instantiate %s: %w", cfg.Algorithm.Name(), err)
	}
	s := &Session{
		cfg:      cfg,
		mach:     mach,
		inst:     inst,
		csCell:   mach.NewCell("cs-witness", memory.Shared, 0),
		bodies:   make([]*driverBody, cfg.Procs),
		lastTags: make([]int, cfg.Procs),
		csOwner:  -1,
	}
	programs := make([]sim.Program, cfg.Procs)
	for i := 0; i < cfg.Procs; i++ {
		b := &driverBody{s: s, id: i}
		s.bodies[i] = b
		programs[i] = b
	}
	if err := mach.Start(programs); err != nil {
		mach.Close()
		return nil, err
	}
	for i := range s.lastTags {
		s.lastTags[i] = mach.Tag(i)
	}
	return s, nil
}

// Machine exposes the underlying simulator (for adversaries and checkers).
func (s *Session) Machine() *sim.Machine { return s.mach }

// Reset returns the session to its initial state without reallocating: the
// machine's cells revert to their initial values (sim.Machine.Reset), the
// algorithm instance is reused (its mutable state lives entirely in cells,
// per the Handle crash contract), the safety monitors clear, and the driver
// bodies restart poised at their first entry step. A reset session is
// observationally identical to a fresh NewSession with the same Config —
// the engine's worker pool and the replay-heavy consumers (model checker,
// adversary erasure verification) rely on this to avoid per-run machine
// construction.
func (s *Session) Reset() error {
	s.mach.Reset()
	s.csOwner = -1
	s.csOrder = s.csOrder[:0]
	s.errs = nil
	programs := make([]sim.Program, s.cfg.Procs)
	for i, b := range s.bodies {
		b.reset()
		programs[i] = b
	}
	if err := s.mach.Start(programs); err != nil {
		return err
	}
	for i := range s.lastTags {
		s.lastTags[i] = s.mach.Tag(i)
	}
	return nil
}

// Compatible reports whether a session built for a can be reused via Reset
// to run b: every configuration field must match. The algorithm comparison
// is by interface equality, guarded because algorithm values are not
// required to be comparable.
func Compatible(a, b Config) bool {
	a, b = a.withDefaults(), b.withDefaults()
	return a.Procs == b.Procs && a.Width == b.Width && a.Model == b.Model &&
		a.Passes == b.Passes && a.ExtraCSSteps == b.ExtraCSSteps &&
		a.NoTrace == b.NoTrace && a.MaxSteps == b.MaxSteps &&
		sameAlgorithm(a.Algorithm, b.Algorithm)
}

func sameAlgorithm(a, b Algorithm) (eq bool) {
	defer func() {
		if recover() != nil {
			eq = false
		}
	}()
	return a == b
}

// Config returns the session configuration (with defaults applied).
func (s *Session) Config() Config { return s.cfg }

// Close releases the underlying machine.
func (s *Session) Close() { s.mach.Close() }

// StepProc advances process p by one step and runs the safety monitors.
func (s *Session) StepProc(p int) (sim.Event, error) {
	ev, err := s.mach.Step(p)
	if err != nil {
		return ev, err
	}
	s.observe()
	return ev, nil
}

// CrashProc delivers a crash step to p and runs the safety monitors. It
// refuses to crash non-recoverable algorithms.
func (s *Session) CrashProc(p int) (sim.Event, error) {
	if !s.cfg.Algorithm.Recoverable() {
		return sim.Event{}, fmt.Errorf("mutex: algorithm %s is not recoverable", s.cfg.Algorithm.Name())
	}
	ev, err := s.mach.Crash(p)
	if err != nil {
		return ev, err
	}
	s.observe()
	return ev, nil
}

// CrashAllProcs delivers a crash step to every live process at once — the
// system-wide failure model of Golab–Hendler [11] and Jayanti–Jayanti–Joshi
// [14], which the paper contrasts with its individual-crash model (§4: the
// lower bound "inherently relies on individual process crashes", and
// constant-RMR RME is possible when all processes crash together).
func (s *Session) CrashAllProcs() error {
	if !s.cfg.Algorithm.Recoverable() {
		return fmt.Errorf("mutex: algorithm %s is not recoverable", s.cfg.Algorithm.Name())
	}
	for p := 0; p < s.cfg.Procs; p++ {
		if s.mach.ProcDone(p) {
			continue
		}
		if _, err := s.CrashProc(p); err != nil {
			return err
		}
	}
	return nil
}

// observe scans phase-tag transitions and maintains the mutual-exclusion /
// critical-section-reentry monitor: ownership of the CS is taken when a
// process's tag enters TagCS and released when it enters TagExit; a crashed
// CS holder keeps ownership until it re-enters and exits (the CSR property).
func (s *Session) observe() {
	for p := range s.lastTags {
		cur := s.mach.Tag(p)
		prev := s.lastTags[p]
		if cur == prev {
			continue
		}
		switch {
		case cur == TagCS:
			if s.csOwner != -1 && s.csOwner != p {
				s.fail(fmt.Sprintf("mutual exclusion violated: p%d entered the CS while p%d holds it (step %d)",
					p, s.csOwner, s.mach.Steps()))
			}
			if s.csOwner != p {
				s.csOrder = append(s.csOrder, p)
			}
			s.csOwner = p
		case prev == TagCS && cur != TagRecover:
			// Leaving the CS forward (exit/remainder) releases ownership; a
			// crash (tag moves to TagRecover) keeps it, per the CSR property.
			if s.csOwner == p {
				s.csOwner = -1
			}
		}
		s.lastTags[p] = cur
	}
	// Direct occupancy check (belt and braces): at most one process tagged CS.
	in := -1
	for p := range s.lastTags {
		if s.mach.Tag(p) == TagCS {
			if in != -1 {
				s.fail(fmt.Sprintf("mutual exclusion violated: p%d and p%d tagged CS simultaneously (step %d)",
					in, p, s.mach.Steps()))
			}
			in = p
		}
	}
}

func (s *Session) fail(msg string) { s.errs = append(s.errs, msg) }

// Violations returns all safety violations observed so far.
func (s *Session) Violations() []string {
	out := make([]string, len(s.errs))
	copy(out, s.errs)
	return out
}

// ErrStuck reports that no process can make progress.
var ErrStuck = errors.New("mutex: execution stuck (deadlock or lost wakeup)")

// RunRoundRobin drives all processes fairly (each poised process takes one
// step per sweep) until every process finishes its super-passages.
func (s *Session) RunRoundRobin() error {
	for !s.mach.AllDone() {
		poised := s.mach.AppendPoised(s.poised)
		s.poised = poised
		if len(poised) == 0 {
			return ErrStuck
		}
		for _, p := range poised {
			if s.mach.ProcDone(p) || !s.mach.Poised(p) {
				continue
			}
			if _, err := s.StepProc(p); err != nil {
				return err
			}
		}
	}
	return s.violationErr()
}

// RandomRunOptions tunes RunRandom.
type RandomRunOptions struct {
	// CrashProb is the per-step probability of delivering a crash instead of
	// the chosen step (only for recoverable algorithms).
	CrashProb float64
	// MaxCrashesPerProc caps crashes per process; 0 means no crashes, and a
	// negative value means unlimited.
	MaxCrashesPerProc int
}

// RunRandom drives the session with a uniformly random poised process each
// step, optionally injecting crashes, until all processes finish.
func (s *Session) RunRandom(seed int64, opts RandomRunOptions) error {
	rng := rand.New(rand.NewSource(seed))
	for !s.mach.AllDone() {
		poised := s.mach.AppendPoised(s.poised)
		s.poised = poised
		if len(poised) == 0 {
			return ErrStuck
		}
		// Crashes may hit any live process — including ones parked on a
		// spin, which is an important recovery window.
		if s.cfg.Algorithm.Recoverable() && opts.CrashProb > 0 && rng.Float64() < opts.CrashProb {
			var victims []int
			for p := 0; p < s.cfg.Procs; p++ {
				if s.mach.ProcDone(p) {
					continue
				}
				if opts.MaxCrashesPerProc >= 0 && s.mach.Crashes(p) >= opts.MaxCrashesPerProc {
					continue
				}
				victims = append(victims, p)
			}
			if len(victims) > 0 {
				if _, err := s.CrashProc(victims[rng.Intn(len(victims))]); err != nil {
					return err
				}
				continue
			}
		}
		if _, err := s.StepProc(poised[rng.Intn(len(poised))]); err != nil {
			return err
		}
	}
	return s.violationErr()
}

func (s *Session) violationErr() error {
	if len(s.errs) > 0 {
		return fmt.Errorf("mutex: %d safety violations; first: %s", len(s.errs), s.errs[0])
	}
	return nil
}

// CSOrder returns the order in which processes entered the critical
// section (one entry per acquisition; a crashed holder's re-entry is not
// repeated). Used by the fairness experiment to compare grant order against
// arrival order.
func (s *Session) CSOrder() []int {
	out := make([]int, len(s.csOrder))
	copy(out, s.csOrder)
	return out
}

// Stats returns all recorded passage statistics, processes in id order.
func (s *Session) Stats() []PassageStat {
	var out []PassageStat
	for _, b := range s.bodies {
		out = append(out, b.stats...)
	}
	return out
}

// CompletedPasses returns, per process, the number of passages that were not
// crash-terminated. Every super-passage contributes exactly one such passage
// (its last one); recover-at-idle sweeps may add more, so a run satisfied its
// workload when every entry is >= Config().Passes — the completion half of
// the critical-section re-entry obligation: a crashed process must resume and
// finish its interrupted super-passage, not abandon it.
func (s *Session) CompletedPasses() []int {
	completed := make([]int, s.cfg.Procs)
	for _, st := range s.Stats() {
		if !st.EndedByCrash {
			completed[st.Proc]++
		}
	}
	return completed
}

// MaxPassageRMRs returns the maximum RMRs any process incurred in a single
// passage — the paper's RMR complexity measure — under the given model.
func (s *Session) MaxPassageRMRs(model sim.Model) int {
	maxRMR := 0
	for _, st := range s.Stats() {
		if r := st.RMRs(model); r > maxRMR {
			maxRMR = r
		}
	}
	return maxRMR
}

// TotalRMRs sums RMRs across all processes under the given model.
func (s *Session) TotalRMRs(model sim.Model) int {
	total := 0
	for p := 0; p < s.cfg.Procs; p++ {
		total += s.mach.RMRsIn(model, p)
	}
	return total
}

// driverBody is the per-process driver program. Its bookkeeping fields
// (completed, inSuper, snapshots) are harness meta-state outside the paper's
// model: they survive crashes on purpose, so that measurement does not
// perturb the algorithm under test. All state of the *algorithm* follows the
// crash contract (see Handle).
type driverBody struct {
	s  *Session
	id int

	p      *sim.Proc
	handle Handle

	completed  int
	inSuper    bool
	stats      []PassageStat
	passOpen   bool
	startCC    int
	startDSM   int
	startSteps int
}

var _ sim.Program = (*driverBody)(nil)

// reset clears the body for a session Reset, keeping the stats buffer's
// capacity. The handle is re-bound in Run.
func (b *driverBody) reset() {
	b.p = nil
	b.handle = nil
	b.completed = 0
	b.inSuper = false
	b.stats = b.stats[:0]
	b.passOpen = false
	b.startCC = 0
	b.startDSM = 0
	b.startSteps = 0
}

// Run executes the process's super-passages from the initial state.
func (b *driverBody) Run(p *sim.Proc) {
	b.p = p
	b.handle = b.s.inst.Bind(p)
	for b.completed < b.s.cfg.Passes {
		b.runSuper()
	}
	p.SetTag(TagRemainder)
}

// Recover is invoked by the machine after each crash step.
func (b *driverBody) Recover(p *sim.Proc) {
	b.p = p
	b.closeCrashedPassage()
	if b.inSuper {
		b.beginPassage(true)
		p.SetTag(TagRecover)
		switch st := b.handle.Recover(); st {
		case RecoverAcquired:
			b.criticalSection()
			b.p.SetTag(TagExit)
			b.handle.Unlock()
			b.finishSuper()
		case RecoverReleased:
			b.finishSuper()
		case RecoverIdle:
			// The crash preempted the very first entry step: the algorithm
			// never became visible, so the super-passage never started.
			b.closePassage(false)
			b.inSuper = false
		default:
			panic(fmt.Sprintf("mutex: invalid recover status %v", st))
		}
	} else {
		// Crash at a super-passage boundary: the algorithm must agree that
		// nothing was in progress.
		b.beginPassage(true)
		p.SetTag(TagRecover)
		if st := b.handle.Recover(); st != RecoverIdle {
			panic(fmt.Sprintf("mutex: recover at idle returned %v", st))
		}
		b.closePassage(false)
	}
	for b.completed < b.s.cfg.Passes {
		b.runSuper()
	}
	p.SetTag(TagRemainder)
}

func (b *driverBody) runSuper() {
	b.beginPassage(false)
	b.inSuper = true
	b.p.SetTag(TagEntry)
	b.handle.Lock()
	b.criticalSection()
	b.p.SetTag(TagExit)
	b.handle.Unlock()
	b.finishSuper()
}

// criticalSection performs the single RMR-incurring step of assumption (A2),
// plus any configured extra steps.
func (b *driverBody) criticalSection() {
	b.p.SetTag(TagCS)
	b.p.Write(b.s.csCell, word.Word(b.id+1))
	for i := 0; i < b.s.cfg.ExtraCSSteps; i++ {
		b.p.Add(b.s.csCell, 0)
	}
}

func (b *driverBody) beginPassage(recovery bool) {
	b.passOpen = true
	b.startCC = b.p.RMRCount(sim.CC)
	b.startDSM = b.p.RMRCount(sim.DSM)
	b.startSteps = b.p.StepCount()
	if recovery {
		b.p.Mark("passage-begin-recover")
	} else {
		b.p.Mark("passage-begin")
	}
	b.stats = append(b.stats, PassageStat{Proc: b.id, Super: b.completed, Recovery: recovery})
}

// closePassage finalizes the currently open passage record.
func (b *driverBody) closePassage(crashed bool) {
	if !b.passOpen {
		return
	}
	b.passOpen = false
	st := &b.stats[len(b.stats)-1]
	st.EndedByCrash = crashed
	st.Steps = b.p.StepCount() - b.startSteps
	st.RMRsCC = b.p.RMRCount(sim.CC) - b.startCC
	st.RMRsDSM = b.p.RMRCount(sim.DSM) - b.startDSM
	if st.Steps == 0 && !crashed {
		// No shared-memory step occurred: per the paper, no passage began.
		b.stats = b.stats[:len(b.stats)-1]
	}
}

// closeCrashedPassage records the passage terminated by the crash that
// triggered this recovery (no steps have happened since the crash).
func (b *driverBody) closeCrashedPassage() {
	if !b.passOpen {
		return
	}
	// If the crash preempted the very first step, drop the empty record.
	if b.p.StepCount() == b.startSteps {
		b.passOpen = false
		b.stats = b.stats[:len(b.stats)-1]
		return
	}
	b.closePassage(true)
}

func (b *driverBody) finishSuper() {
	b.closePassage(false)
	b.inSuper = false
	b.completed++
	b.p.SetTag(TagRemainder)
	b.p.Mark("super-passage-end")
}
