package mutex_test

import (
	"errors"
	"testing"

	"rme/internal/algorithms/rspin"
	"rme/internal/algorithms/tas"
	"rme/internal/memory"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/word"
)

func TestConfigValidation(t *testing.T) {
	if _, err := mutex.NewSession(mutex.Config{Procs: 2, Width: 8, Model: sim.CC}); err == nil {
		t.Error("nil algorithm must be rejected")
	}
	if _, err := mutex.NewSession(mutex.Config{
		Procs: 2, Width: 8, Model: sim.CC, Algorithm: tas.New(), Passes: -1,
	}); err == nil {
		t.Error("negative passes must be rejected")
	}
	if _, err := mutex.NewSession(mutex.Config{
		Procs: 0, Width: 8, Model: sim.CC, Algorithm: tas.New(),
	}); err == nil {
		t.Error("0 processes must be rejected")
	}
}

func TestPassageStatsShape(t *testing.T) {
	s, err := mutex.NewSession(mutex.Config{
		Procs: 3, Width: 8, Model: sim.CC, Algorithm: tas.New(), Passes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RunRoundRobin(); err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	perProc := make(map[int]int)
	for _, st := range stats {
		perProc[st.Proc]++
		if st.EndedByCrash || st.Recovery {
			t.Errorf("crash-free run produced crash/recovery passage: %+v", st)
		}
		if st.Steps <= 0 {
			t.Errorf("passage with %d steps recorded", st.Steps)
		}
		if st.RMRsCC < st.RMRsDSM && st.RMRsDSM > st.Steps {
			t.Errorf("inconsistent RMR counts: %+v", st)
		}
	}
	for p := 0; p < 3; p++ {
		if perProc[p] != 2 {
			t.Errorf("p%d has %d passages, want 2", p, perProc[p])
		}
	}
	if s.MaxPassageRMRs(sim.CC) <= 0 {
		t.Error("max passage RMRs should be positive")
	}
	if s.TotalRMRs(sim.CC) <= 0 {
		t.Error("total RMRs should be positive")
	}
}

func TestRunRandomDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) sim.Schedule {
		s, err := mutex.NewSession(mutex.Config{
			Procs: 3, Width: 8, Model: sim.CC, Algorithm: rspin.New(), Passes: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := s.RunRandom(seed, mutex.RandomRunOptions{CrashProb: 0.1, MaxCrashesPerProc: 2}); err != nil {
			t.Fatal(err)
		}
		return s.Machine().Schedule()
	}
	a, b := run(7), run(7)
	if a.String() != b.String() {
		t.Error("same seed produced different schedules")
	}
	c := run(8)
	if a.String() == c.String() {
		t.Error("different seeds produced identical schedules (suspicious)")
	}
}

func TestZeroPassesFinishesImmediately(t *testing.T) {
	s, err := mutex.NewSession(mutex.Config{
		Procs: 2, Width: 8, Model: sim.CC, Algorithm: tas.New(), Passes: 0,
	})
	if err == nil {
		// Passes 0 defaults to 1; verify the default applied.
		defer s.Close()
		if s.Config().Passes != 1 {
			t.Errorf("Passes default = %d, want 1", s.Config().Passes)
		}
		return
	}
	t.Fatalf("unexpected error: %v", err)
}

// violatingAlgorithm "locks" without any exclusion: every Lock succeeds
// immediately after one shared step, so two processes overlap in the CS and
// the monitor must catch it.
type violatingAlgorithm struct{}

func (violatingAlgorithm) Name() string      { return "broken" }
func (violatingAlgorithm) Recoverable() bool { return false }
func (violatingAlgorithm) Make(mem memory.Allocator, n int) (mutex.Instance, error) {
	return violatingInstance{c: mem.NewCell("broken", memory.Shared, 0)}, nil
}

type violatingInstance struct{ c memory.Cell }

func (in violatingInstance) Bind(env memory.Env) mutex.Handle {
	return &violatingHandle{env: env, c: in.c}
}

type violatingHandle struct {
	mutex.Unrecoverable

	env memory.Env
	c   memory.Cell
}

func (h *violatingHandle) Lock()   { h.env.Read(h.c) }
func (h *violatingHandle) Unlock() { h.env.Read(h.c) }

func TestMonitorCatchesMutualExclusionViolation(t *testing.T) {
	s, err := mutex.NewSession(mutex.Config{
		Procs: 2, Width: 8, Model: sim.CC, Algorithm: violatingAlgorithm{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	err = s.RunRoundRobin()
	if err == nil {
		t.Fatal("monitor failed to flag the broken lock")
	}
	if len(s.Violations()) == 0 {
		t.Fatal("no violations recorded")
	}
}

// stuckAlgorithm waits forever on a cell nobody sets.
type stuckAlgorithm struct{}

func (stuckAlgorithm) Name() string      { return "stuck" }
func (stuckAlgorithm) Recoverable() bool { return false }
func (stuckAlgorithm) Make(mem memory.Allocator, n int) (mutex.Instance, error) {
	return stuckInstance{c: mem.NewCell("never", memory.Shared, 0)}, nil
}

type stuckInstance struct{ c memory.Cell }

func (in stuckInstance) Bind(env memory.Env) mutex.Handle {
	return &stuckHandle{env: env, c: in.c}
}

type stuckHandle struct {
	mutex.Unrecoverable

	env memory.Env
	c   memory.Cell
}

func (h *stuckHandle) Lock() {
	h.env.SpinUntil(h.c, func(v word.Word) bool { return v == 1 })
}
func (h *stuckHandle) Unlock() {}

func TestRunReportsDeadlock(t *testing.T) {
	s, err := mutex.NewSession(mutex.Config{
		Procs: 2, Width: 8, Model: sim.CC, Algorithm: stuckAlgorithm{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RunRoundRobin(); !errors.Is(err, mutex.ErrStuck) {
		t.Fatalf("want ErrStuck, got %v", err)
	}
}

func TestTagNames(t *testing.T) {
	tests := []struct {
		give int
		want string
	}{
		{mutex.TagRemainder, "remainder"},
		{mutex.TagEntry, "entry"},
		{mutex.TagCS, "CS"},
		{mutex.TagExit, "exit"},
		{mutex.TagRecover, "recover"},
		{99, "tag(99)"},
	}
	for _, tt := range tests {
		if got := mutex.TagName(tt.give); got != tt.want {
			t.Errorf("TagName(%d) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestRecoverStatusString(t *testing.T) {
	if mutex.RecoverAcquired.String() != "acquired" ||
		mutex.RecoverReleased.String() != "released" ||
		mutex.RecoverIdle.String() != "idle" {
		t.Error("RecoverStatus names wrong")
	}
}

func TestExtraCSSteps(t *testing.T) {
	s, err := mutex.NewSession(mutex.Config{
		Procs: 1, Width: 8, Model: sim.CC, Algorithm: tas.New(), ExtraCSSteps: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RunRoundRobin(); err != nil {
		t.Fatal(err)
	}
	// Solo TAS passage: TAS + CS write + 3 extra + unlock write = 6 steps.
	stats := s.Stats()
	if len(stats) != 1 || stats[0].Steps != 6 {
		t.Errorf("stats = %+v, want one 6-step passage", stats)
	}
}
