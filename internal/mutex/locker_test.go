package mutex_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"rme/internal/algorithms/mcs"
	"rme/internal/algorithms/rspin"
	"rme/internal/algorithms/watree"
	"rme/internal/mutex"
)

var _ sync.Locker = (*mutex.NativeHandle)(nil)

func TestNativeLockMutualExclusion(t *testing.T) {
	lock, err := mutex.NewNativeLock(mcs.New(), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	const passes = 200
	var (
		tally  int // plain int: the race detector is the mutual exclusion witness
		holder atomic.Int32
		wg     sync.WaitGroup
	)
	for id := 0; id < lock.N(); id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := lock.Bind(id)
			for p := 0; p < passes; p++ {
				h.Lock()
				if !holder.CompareAndSwap(0, int32(id+1)) {
					t.Errorf("process %d entered the CS while %d held it", id, holder.Load()-1)
				}
				tally++
				holder.Store(0)
				h.Unlock()
			}
		}()
	}
	wg.Wait()
	if want := lock.N() * passes; tally != want {
		t.Fatalf("tally = %d, want %d", tally, want)
	}
}

func TestNativeLockBindValidation(t *testing.T) {
	lock, err := mutex.NewNativeLock(mcs.New(), 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if w := lock.Width(); w != 16 {
		t.Errorf("Width = %d, want 16", w)
	}
	for _, id := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bind(%d) did not panic", id)
				}
			}()
			lock.Bind(id)
		}()
	}
}

func TestNativeLockRejectsBadConfig(t *testing.T) {
	if _, err := mutex.NewNativeLock(nil, 2, 0); err == nil {
		t.Error("nil algorithm: want error")
	}
	if _, err := mutex.NewNativeLock(mcs.New(), 0, 0); err == nil {
		t.Error("0 processes: want error")
	}
	if _, err := mutex.NewNativeLock(mcs.New(), 2, 65); err == nil {
		t.Error("width 65: want error")
	}
}

func TestNativeLockCrashAfterRequiresRecoverable(t *testing.T) {
	lock, err := mutex.NewNativeLock(mcs.New(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("CrashAfter on a non-recoverable algorithm did not panic")
		}
	}()
	lock.Bind(0).CrashAfter(5)
}

// TestNativeLockCrashPropagatesFromLock drives the manual (non-Super) API:
// an armed fuse makes Lock panic with an injected crash, and Recover then
// resumes the super-passage.
func TestNativeLockCrashPropagatesFromLock(t *testing.T) {
	lock, err := mutex.NewNativeLock(rspin.New(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	h := lock.Bind(0)
	h.CrashAfter(1)
	crashed := func() (crashed bool) {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if !mutex.IsInjectedCrash(r) {
				panic(r)
			}
			crashed = true
		}()
		h.Lock()
		return false
	}()
	if !crashed {
		t.Fatal("armed fuse did not fire during Lock")
	}
	switch st := h.Recover(); st {
	case mutex.RecoverAcquired:
		h.Unlock()
	case mutex.RecoverIdle:
		h.Lock()
		h.Unlock()
	default:
		t.Fatalf("Recover after entry crash = %v", st)
	}
	// The lock must be free again.
	h.Lock()
	h.Unlock()
}

// TestNativeLockSuperCrashSweep runs single-process super-passages with the
// fuse armed at every offset from the start of the passage, sweeping the
// crash point across entry, CS hand-back, and exit. Every passage must
// complete and leave the lock acquirable.
func TestNativeLockSuperCrashSweep(t *testing.T) {
	for _, alg := range []mutex.Algorithm{rspin.New(), watree.New()} {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			lock, err := mutex.NewNativeLock(alg, 2, 0)
			if err != nil {
				t.Fatal(err)
			}
			h := lock.Bind(0)
			ran := 0
			for off := int64(0); off < 40; off++ {
				h.CrashAfter(off)
				h.Super(func() { ran++ })
				h.CrashAfter(-1)
			}
			if h.Crashes() == 0 {
				t.Fatal("sweep never crashed")
			}
			if ran == 0 {
				t.Fatal("no critical section ever ran")
			}
			// Another process must still get in cleanly.
			other := lock.Bind(1)
			done := false
			other.Super(func() { done = true })
			if !done {
				t.Fatal("lock not acquirable after crash sweep")
			}
		})
	}
}

// TestNativeLockCrashStorm runs concurrent processes that each arm the fuse
// before most passages: mutual exclusion (race detector + holder CAS) and
// passage completion must survive arbitrary crash/recover interleavings.
func TestNativeLockCrashStorm(t *testing.T) {
	lock, err := mutex.NewNativeLock(watree.New(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	const passes = 60
	var (
		tally  int
		holder atomic.Int32
		wg     sync.WaitGroup
	)
	for id := 0; id < lock.N(); id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := lock.Bind(id)
			for p := 0; p < passes; p++ {
				if p%3 != 0 {
					h.CrashAfter(int64((id*7 + p*13) % 50))
				}
				h.Super(func() {
					if !holder.CompareAndSwap(0, int32(id+1)) {
						t.Errorf("process %d entered the CS while %d held it", id, holder.Load()-1)
					}
					tally++
					holder.Store(0)
				})
				h.CrashAfter(-1)
			}
		}()
	}
	wg.Wait()
	// A crash during exit may legally re-enter the CS (CSR), so the tally is
	// at least one per super-passage but may exceed it.
	if tally < lock.N()*passes {
		t.Fatalf("tally = %d, want >= %d", tally, lock.N()*passes)
	}
}

// TestNativeLockRebindRestart models a full process restart: the first
// incarnation crashes mid-entry and is dropped; a fresh handle for the same
// id recovers from the persistent cells alone.
func TestNativeLockRebindRestart(t *testing.T) {
	lock, err := mutex.NewNativeLock(rspin.New(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	h := lock.Bind(0)
	h.CrashAfter(2)
	func() {
		defer func() {
			if r := recover(); r != nil && !mutex.IsInjectedCrash(r) {
				panic(r)
			}
		}()
		h.Lock()
		h.Unlock()
	}()
	// First incarnation is gone; restart from a fresh Bind.
	h2 := lock.Bind(0)
	switch st := h2.Recover(); st {
	case mutex.RecoverAcquired:
		h2.Unlock()
	case mutex.RecoverIdle:
	case mutex.RecoverReleased:
	default:
		t.Fatalf("Recover = %v", st)
	}
	// Both processes proceed normally afterwards.
	done := make(chan struct{})
	go func() {
		other := lock.Bind(1)
		other.Lock()
		other.Unlock()
		close(done)
	}()
	h2.Lock()
	h2.Unlock()
	<-done
}

// TestNativeLockOpsCounting sanity-checks the op counter: a passage costs a
// nonzero number of env operations and the counter is monotone.
func TestNativeLockOpsCounting(t *testing.T) {
	lock, err := mutex.NewNativeLock(mcs.New(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	h := lock.Bind(0)
	before := h.Ops()
	h.Lock()
	h.Unlock()
	if h.Ops() <= before {
		t.Fatalf("Ops did not advance: %d -> %d", before, h.Ops())
	}
}
