package mutex_test

import (
	"testing"

	"rme/internal/algorithms/rspin"
	"rme/internal/algorithms/tas"
	"rme/internal/algorithms/ticket"
	"rme/internal/mutex"
	"rme/internal/sim"
)

func TestCrashAllProcs(t *testing.T) {
	s, err := mutex.NewSession(mutex.Config{
		Procs: 4, Width: 8, Model: sim.CC, Algorithm: rspin.New(), Passes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := s.Machine()

	// Let the system make some progress, then crash everyone at once.
	for i := 0; i < 10; i++ {
		poised := m.PoisedProcs()
		if len(poised) == 0 {
			t.Fatal("stuck early")
		}
		if _, err := s.StepProc(poised[0]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CrashAllProcs(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		if m.Crashes(p) != 1 {
			t.Errorf("p%d crashes = %d, want 1", p, m.Crashes(p))
		}
	}
	if err := s.RunRoundRobin(); err != nil {
		t.Fatal(err)
	}
	if v := s.Violations(); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestCrashAllProcsRefusedForConventional(t *testing.T) {
	s, err := mutex.NewSession(mutex.Config{
		Procs: 2, Width: 8, Model: sim.CC, Algorithm: tas.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.CrashAllProcs(); err == nil {
		t.Fatal("system-wide crash of a non-recoverable algorithm must be refused")
	}
}

func TestCSOrderRecordsEveryAcquisition(t *testing.T) {
	const n, passes = 3, 2
	s, err := mutex.NewSession(mutex.Config{
		Procs: n, Width: 8, Model: sim.CC, Algorithm: ticket.New(), Passes: passes,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RunRoundRobin(); err != nil {
		t.Fatal(err)
	}
	order := s.CSOrder()
	if len(order) != n*passes {
		t.Fatalf("CS order has %d entries, want %d", len(order), n*passes)
	}
	counts := make(map[int]int)
	for _, p := range order {
		counts[p]++
	}
	for p := 0; p < n; p++ {
		if counts[p] != passes {
			t.Errorf("p%d acquired %d times, want %d", p, counts[p], passes)
		}
	}
}

func TestCSOrderNotDoubledByCrashReentry(t *testing.T) {
	s, err := mutex.NewSession(mutex.Config{
		Procs: 2, Width: 8, Model: sim.CC, Algorithm: rspin.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := s.Machine()
	for m.Tag(0) != mutex.TagCS {
		if _, err := s.StepProc(0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.CrashProc(0); err != nil {
		t.Fatal(err)
	}
	if err := s.RunRoundRobin(); err != nil {
		t.Fatal(err)
	}
	order := s.CSOrder()
	if len(order) != 2 {
		t.Fatalf("CS order = %v: a crashed holder's re-entry must not double-count", order)
	}
}
