package mutex

import (
	"fmt"
	"sync/atomic"

	"rme/internal/memory"
	"rme/internal/word"
)

// NativeLock instantiates an Algorithm on the native sync/atomic backend and
// hands out per-goroutine handles that satisfy sync.Locker. It is the bridge
// from the simulated world to real silicon: the same entry/exit/recover
// protocol code runs, but steps cost wall-clock time instead of simulated
// RMRs, and crashes are injected as panics instead of scheduler actions.
type NativeLock struct {
	alg  Algorithm
	mem  *memory.NativeMem
	inst Instance
	n    int
}

// NewNativeLock allocates the algorithm's shared objects for n processes on
// a native memory of the given word width. Width 0 selects the full 64-bit
// word.
func NewNativeLock(alg Algorithm, n int, w word.Width) (*NativeLock, error) {
	if alg == nil {
		return nil, fmt.Errorf("mutex: nil algorithm")
	}
	if n < 1 {
		return nil, fmt.Errorf("mutex: need at least 1 process, got %d", n)
	}
	if w == 0 {
		w = word.MaxBits
	}
	mem, err := memory.NewNativeMem(w)
	if err != nil {
		return nil, err
	}
	inst, err := alg.Make(mem, n)
	if err != nil {
		return nil, fmt.Errorf("mutex: %s: %w", alg.Name(), err)
	}
	return &NativeLock{alg: alg, mem: mem, inst: inst, n: n}, nil
}

// Algorithm returns the wrapped algorithm.
func (l *NativeLock) Algorithm() Algorithm { return l.alg }

// N returns the number of processes the lock was sized for.
func (l *NativeLock) N() int { return l.n }

// Width returns the word width of the underlying native memory.
func (l *NativeLock) Width() word.Width { return l.mem.Width() }

// Mem exposes the underlying native allocator (e.g. to enable DCAS before
// binding handles for an algorithm that uses memory.DoubleEnv).
func (l *NativeLock) Mem() *memory.NativeMem { return l.mem }

// Bind returns process id's handle. Bind performs no shared-memory
// operations, so it may be called from any goroutine — but the returned
// handle must then be used by one goroutine at a time, and at most one live
// handle per id may be in use. Re-binding the same id models a process
// restart (new stack, same persistent cells): the fresh handle's Recover
// resumes whatever super-passage the previous incarnation left behind.
func (l *NativeLock) Bind(id int) *NativeHandle {
	if id < 0 || id >= l.n {
		panic(fmt.Sprintf("mutex: process id %d out of range [0,%d)", id, l.n))
	}
	env := &crashEnv{inner: l.mem.Env(id)}
	env.fuse.Store(-1)
	return &NativeHandle{lock: l, id: id, env: env, h: l.inst.Bind(env)}
}

// NativeHandle is one process's native lock interface. Lock and Unlock make
// it a sync.Locker; Recover and CrashAfter expose the recoverable side.
type NativeHandle struct {
	lock *NativeLock
	id   int
	env  *crashEnv
	h    Handle

	crashes atomic.Int64
}

// ID returns the process id this handle is bound to.
func (h *NativeHandle) ID() int { return h.id }

// Lock runs the entry protocol. If an injected crash fires mid-entry the
// crash panic propagates to the caller — exactly as a real crash would
// destroy the call stack — and the caller resumes via Recover (or uses
// Super, which packages the whole protocol).
func (h *NativeHandle) Lock() { h.h.Lock() }

// Unlock runs the exit protocol.
func (h *NativeHandle) Unlock() { h.h.Unlock() }

// Recover runs the recover protocol after a crash.
func (h *NativeHandle) Recover() RecoverStatus { return h.h.Recover() }

// Ops returns the number of shared-memory operations this handle has
// performed (spin re-polls each count as one operation).
func (h *NativeHandle) Ops() int64 { return h.env.ops.Load() }

// Crashes returns the number of injected crashes Super has absorbed.
func (h *NativeHandle) Crashes() int64 { return h.crashes.Load() }

// CrashAfter arms the fault injector: after n more shared-memory operations
// by this handle, the operation in flight panics with an internal crash
// signal instead of executing — the native analogue of the simulator's
// crash step, which may preempt any step of entry, exit, or recovery.
// Because every spin re-poll counts as an operation, crashes land inside
// busy-wait loops too. The panic unwinds all local state of the in-flight
// call; only cells survive, which is precisely the algorithm crash
// contract. A negative n disarms the fuse. Arming panics if the algorithm
// is not recoverable (there is nothing that could be recovered afterwards);
// disarming is always allowed.
func (h *NativeHandle) CrashAfter(n int64) {
	if n < 0 {
		h.env.fuse.Store(-1)
		return
	}
	if !h.lock.alg.Recoverable() {
		panic(fmt.Sprintf("mutex: cannot inject crashes into non-recoverable algorithm %s", h.lock.alg.Name()))
	}
	h.env.fuse.Store(n)
}

// crashSignal is the panic payload of an injected crash.
type crashSignal struct{ id int }

func (c crashSignal) String() string { return fmt.Sprintf("injected crash (process %d)", c.id) }

// IsInjectedCrash reports whether a recovered panic value is an injected
// crash from CrashAfter, for callers driving Lock/Unlock/Recover manually.
func IsInjectedCrash(r any) bool {
	_, ok := r.(crashSignal)
	return ok
}

// Super runs one complete super-passage: entry, cs, exit — absorbing any
// injected crashes by running the recover protocol and resuming, mirroring
// the simulated driver's body. cs may execute more than once in a single
// super-passage: a crash during exit can leave the process still holding
// the lock (RecoverAcquired), and critical-section re-entry is the CSR
// behaviour the paper's model permits. cs always runs under mutual
// exclusion.
func (h *NativeHandle) Super(cs func()) {
	// Acquire, resolving crashes until the CS is held. RecoverIdle means the
	// crashed entry had no visible effect, so the super-passage starts over;
	// RecoverReleased (crash landed after the exit's point of no return)
	// means it completed.
	for {
		if h.call(h.h.Lock) {
			break
		}
		st, done := h.recoverUntilDecided()
		if done {
			return
		}
		if st == RecoverAcquired {
			break
		}
	}
	// Hold: run the CS and exit; a crash during exit re-enters the CS when
	// recovery reports the lock still held.
	for {
		cs()
		if h.call(h.h.Unlock) {
			return
		}
		st, done := h.recoverUntilDecided()
		if done {
			return
		}
		if st != RecoverAcquired {
			panic(fmt.Sprintf("mutex: %s: Recover returned %v during an interrupted exit", h.lock.alg.Name(), st))
		}
	}
}

// recoverUntilDecided runs Recover until one attempt completes without
// crashing (crashes during recovery restart it, as in the simulator). The
// boolean reports a finished super-passage (RecoverReleased).
func (h *NativeHandle) recoverUntilDecided() (RecoverStatus, bool) {
	for {
		var st RecoverStatus
		if !h.call(func() { st = h.h.Recover() }) {
			continue
		}
		return st, st == RecoverReleased
	}
}

// call runs f, converting an injected-crash panic into a false return.
func (h *NativeHandle) call(f func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if !IsInjectedCrash(r) {
				panic(r)
			}
			h.crashes.Add(1)
		}
	}()
	f()
	return true
}

// crashEnv wraps a native memory.Env with an operation counter and the
// crash fuse. Counting happens before the wrapped operation executes, so a
// firing fuse preempts the step entirely (the simulator's crash semantics:
// the interrupted step never takes effect).
type crashEnv struct {
	inner memory.Env
	ops   atomic.Int64
	fuse  atomic.Int64 // remaining ops before injected crash; negative = disarmed
}

var _ memory.Env = (*crashEnv)(nil)

func (e *crashEnv) tick() {
	e.ops.Add(1)
	if e.fuse.Load() < 0 {
		return
	}
	if e.fuse.Add(-1) < 0 {
		e.fuse.Store(-1)
		panic(crashSignal{id: e.inner.ID()})
	}
}

func (e *crashEnv) ID() int           { return e.inner.ID() }
func (e *crashEnv) Width() word.Width { return e.inner.Width() }

func (e *crashEnv) Read(c memory.Cell) word.Word {
	e.tick()
	return e.inner.Read(c)
}

func (e *crashEnv) Write(c memory.Cell, v word.Word) {
	e.tick()
	e.inner.Write(c, v)
}

func (e *crashEnv) Swap(c memory.Cell, v word.Word) word.Word {
	e.tick()
	return e.inner.Swap(c, v)
}

func (e *crashEnv) Add(c memory.Cell, d word.Word) word.Word {
	e.tick()
	return e.inner.Add(c, d)
}

func (e *crashEnv) CAS(c memory.Cell, expected, replacement word.Word) word.Word {
	e.tick()
	return e.inner.CAS(c, expected, replacement)
}

func (e *crashEnv) Apply(c memory.Cell, op memory.Op) word.Word {
	e.tick()
	return e.inner.Apply(c, op)
}

// SpinUntil charges one operation per poll by ticking inside the predicate,
// so an armed fuse can fire in the middle of a busy-wait, not just at its
// first read.
func (e *crashEnv) SpinUntil(c memory.Cell, pred func(word.Word) bool) word.Word {
	return e.inner.SpinUntil(c, func(v word.Word) bool {
		e.tick()
		return pred(v)
	})
}

func (e *crashEnv) SpinUntilMulti(cells []memory.Cell, pred func([]word.Word) bool) []word.Word {
	return e.inner.SpinUntilMulti(cells, func(vs []word.Word) bool {
		e.tick()
		return pred(vs)
	})
}

// DCAS forwards to the wrapped environment when it supports DoubleEnv.
func (e *crashEnv) DCAS(c1 memory.Cell, e1, n1 word.Word, c2 memory.Cell, e2, n2 word.Word) bool {
	d, ok := e.inner.(memory.DoubleEnv)
	if !ok {
		panic("mutex: wrapped environment does not support DCAS")
	}
	e.tick()
	return d.DCAS(c1, e1, n1, c2, e2, n2)
}
