// Package mutex defines the recoverable mutual exclusion (RME) framework of
// the paper: algorithms expose entry, exit, and recover protocols; processes
// execute super-passages (entry → critical section → exit) that crashes may
// split into multiple passages; and the driver measures RMRs per passage
// while monitoring mutual exclusion and progress.
package mutex

import (
	"fmt"

	"rme/internal/memory"
	"rme/internal/sim"
)

// Phase tags published by driver bodies via Proc.SetTag so controllers (and
// the monitors) can observe protocol position between steps.
const (
	TagRemainder = iota
	TagEntry
	TagCS
	TagExit
	TagRecover
)

// TagName returns a human-readable phase name.
func TagName(tag int) string {
	switch tag {
	case TagRemainder:
		return "remainder"
	case TagEntry:
		return "entry"
	case TagCS:
		return "CS"
	case TagExit:
		return "exit"
	case TagRecover:
		return "recover"
	default:
		return fmt.Sprintf("tag(%d)", tag)
	}
}

// Algorithm is a mutual exclusion algorithm family: Make instantiates its
// shared objects for n processes on a particular machine.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Recoverable reports whether the algorithm tolerates crash steps.
	// Drivers never deliver crashes to non-recoverable algorithms.
	Recoverable() bool
	// Make allocates all shared objects for n processes. It runs before any
	// process takes steps (the paper's static object set R).
	Make(mem memory.Allocator, n int) (Instance, error)
}

// Instance is an algorithm instantiated on one machine.
type Instance interface {
	// Bind returns the handle for the process behind env. It is called on
	// the process's own goroutine before the process takes any steps, and
	// must not perform shared-memory operations.
	Bind(env memory.Env) Handle
}

// SymmetricInstance is optionally implemented by instances whose algorithm is
// equivariant under a group of process renamings: renaming the processes of
// any execution by a declared permutation yields another legal execution of
// the same instance. The declaration describes how each permutation acts on
// the instance's cells and their values (see sim.Symmetry); the model checker
// uses it to collapse states that are equal up to renaming.
//
// Declaring symmetry an algorithm does not have is unsound — the checker
// would merge states with genuinely different futures. The per-algorithm
// symmetry oracle tests in internal/check validate every declaration against
// renamed-schedule runs; algorithms whose protocol is not pid-equivariant
// (e.g. watree's position-based handoff) must simply not implement this
// interface. Returning nil (or an empty declaration) is equivalent to not
// implementing it.
type SymmetricInstance interface {
	Instance
	Symmetry() *sim.Symmetry
}

// Handle is one process's interface to the lock.
//
// Crash contract: a crash may preempt any shared-memory step. After a crash
// every local variable of the in-flight call is lost; only shared cells
// persist. Handle implementations must therefore keep all state that must
// survive crashes in cells, and may keep in struct fields only immutable
// configuration (cell references, ids) established at Bind time.
type Handle interface {
	// Lock runs the entry protocol; it returns holding the critical section.
	Lock()
	// Unlock runs the exit protocol, ending the super-passage.
	Unlock()
	// Recover runs the recover protocol after a crash and resumes the
	// interrupted super-passage: if the process was anywhere between the
	// start of entry and the end of the critical section, Recover completes
	// the entry protocol and returns RecoverAcquired (the caller then runs
	// the CS and calls Unlock); if the process crashed during exit, Recover
	// completes the exit and returns RecoverReleased; if no super-passage
	// was in progress, it returns RecoverIdle.
	Recover() RecoverStatus
}

// RecoverStatus reports where Recover left the process.
type RecoverStatus int

// Recover outcomes.
const (
	// RecoverAcquired: the process now holds the critical section.
	RecoverAcquired RecoverStatus = iota + 1
	// RecoverReleased: the interrupted super-passage is complete.
	RecoverReleased
	// RecoverIdle: no super-passage was in progress at the crash.
	RecoverIdle
)

// String returns the status name.
func (s RecoverStatus) String() string {
	switch s {
	case RecoverAcquired:
		return "acquired"
	case RecoverReleased:
		return "released"
	case RecoverIdle:
		return "idle"
	default:
		return fmt.Sprintf("RecoverStatus(%d)", int(s))
	}
}

// Unrecoverable is a Handle mix-in for conventional (crash-free) algorithms;
// its Recover panics, and drivers guarantee it is never reached because
// crashes are only delivered to algorithms with Recoverable() == true.
type Unrecoverable struct{}

// Recover panics: the algorithm does not support crash recovery.
func (Unrecoverable) Recover() RecoverStatus {
	panic("mutex: crash delivered to a non-recoverable algorithm")
}
