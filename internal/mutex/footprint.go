package mutex

import (
	"rme/internal/sim"
)

// StepFootprint is the cell-access footprint of one process's pending step:
// which cell the step will touch and whether it can change it. The model
// checker's partial-order reduction derives independence from footprints —
// two enabled steps commute when they target different cells or are both
// reads — so the simulator's knowledge of each operation's target is the
// single source of truth for what a step can interfere with.
type StepFootprint struct {
	// Cell is the allocation index of the target cell.
	Cell int
	// Write reports whether the operation can modify the cell (any non-read:
	// writes, RMW ops, and custom transitions).
	Write bool
}

// PendingFootprint returns the footprint of p's pending step. ok is false
// when p has no pending step the scheduler could take: it is done, parked on
// a failed spin, or blocked in a multi-cell wait.
func (s *Session) PendingFootprint(p int) (StepFootprint, bool) {
	if !s.mach.Poised(p) {
		return StepFootprint{}, false
	}
	op, ok := s.mach.Pending(p)
	if !ok || op.Wait {
		return StepFootprint{}, false
	}
	return StepFootprint{Cell: op.Cell.CellID(), Write: !op.Op.IsRead()}, true
}

// HasMultiWait reports whether any live process is blocked in a multi-cell
// wait (SpinUntilMulti). A non-read step on one watched cell makes such a
// waiter observe the values of ALL its watched cells at the wake point, so
// steps on different cells do not commute in its presence; the checker's
// reduction disables itself at states where this returns true.
func (s *Session) HasMultiWait() bool {
	for p := 0; p < s.cfg.Procs; p++ {
		if s.mach.ProcDone(p) {
			continue
		}
		if op, ok := s.mach.Pending(p); ok && op.Wait {
			return true
		}
	}
	return false
}

// CSOwner returns the process currently owning the critical section under
// the monitor's CSR rule (a crashed holder keeps ownership until it re-enters
// and exits), or -1.
func (s *Session) CSOwner() int { return s.csOwner }

// StateKey returns a seeded 128-bit fingerprint of the session's canonical
// state: the machine's canonical state (cells, per-process phase/pending
// vectors — see sim.Machine.CanonicalState) mixed with the safety monitor's
// CS-ownership state. The monitor contribution matters because a crashed
// in-CS holder and a crashed in-entry process can look identical to the
// machine while their futures differ for the mutual-exclusion verdict.
func (s *Session) StateKey(seed uint64) sim.Fingerprint {
	return s.mach.Fingerprint(seed).Mix(uint64(int64(s.csOwner)))
}
