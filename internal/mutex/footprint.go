package mutex

import (
	"rme/internal/sim"
)

// StepFootprint is the cell-access footprint of one process's pending step:
// which cell the step will touch and whether it can change it. The model
// checker's partial-order reduction derives independence from footprints —
// two enabled steps commute when they target different cells or are both
// reads — so the simulator's knowledge of each operation's target is the
// single source of truth for what a step can interfere with.
type StepFootprint struct {
	// Cell is the allocation index of the target cell.
	Cell int
	// Write reports whether the operation can modify the cell (any non-read:
	// writes, RMW ops, and custom transitions).
	Write bool
}

// PendingFootprint returns the footprint of p's pending step. ok is false
// when p has no pending step the scheduler could take: it is done, parked on
// a failed spin, or blocked in a multi-cell wait.
func (s *Session) PendingFootprint(p int) (StepFootprint, bool) {
	if !s.mach.Poised(p) {
		return StepFootprint{}, false
	}
	op, ok := s.mach.Pending(p)
	if !ok || op.Wait {
		return StepFootprint{}, false
	}
	return StepFootprint{Cell: op.Cell.CellID(), Write: !op.Op.IsRead()}, true
}

// HasMultiWait reports whether any live process is blocked in a multi-cell
// wait (SpinUntilMulti). A non-read step on one watched cell makes such a
// waiter observe the values of ALL its watched cells at the wake point, so
// steps on different cells do not commute in its presence; the checker's
// reduction disables itself at states where this returns true.
func (s *Session) HasMultiWait() bool {
	for p := 0; p < s.cfg.Procs; p++ {
		if s.mach.ProcDone(p) {
			continue
		}
		if op, ok := s.mach.Pending(p); ok && op.Wait {
			return true
		}
	}
	return false
}

// CSOwner returns the process currently owning the critical section under
// the monitor's CSR rule (a crashed holder keeps ownership until it re-enters
// and exits), or -1.
func (s *Session) CSOwner() int { return s.csOwner }

// StateKey returns a seeded 128-bit fingerprint of the session's canonical
// state: the machine's canonical state (cells, per-process phase/pending
// vectors — see sim.Machine.CanonicalState) mixed with the safety monitor's
// CS-ownership state. The monitor contribution matters because a crashed
// in-CS holder and a crashed in-entry process can look identical to the
// machine while their futures differ for the mutual-exclusion verdict.
func (s *Session) StateKey(seed uint64) sim.Fingerprint {
	return s.mach.Fingerprint(seed).Mix(uint64(int64(s.csOwner)))
}

// Symmetry returns the instance's process-symmetry declaration (extended
// with the driver's cs-witness cell), or nil when the algorithm declares
// none. The declaration is built on first call and cached for the session's
// lifetime; it survives Reset because the cell layout is sealed.
func (s *Session) Symmetry() *sim.Symmetry {
	if !s.symInit {
		s.symInit = true
		if si, ok := s.inst.(SymmetricInstance); ok {
			if sym := si.Symmetry(); sym != nil && sym.Order() > 1 {
				// The driver's cs-witness cell holds the CS occupant's id + 1
				// (plus Add(0) keep-alives), so it extends any declared group
				// under the standard pid-coded remap.
				sym.PIDCell(s.csCell.CellID())
				s.sym = sym
			}
		}
	}
	return s.sym
}

// CanonicalStateKey returns StateKey minimized over the declared symmetry
// group, together with the minimizing old→new process map (nil when the
// identity wins or no group is declared). Monitor state renames with the
// processes: the CS owner is mapped through each permutation before mixing,
// so the canonical key of a state equals the canonical key of its renamed
// image. Callers needing to transport per-process data (the checker's sleep
// masks) into the canonical frame apply the returned map; it aliases the
// machine's compiled cache and must not be modified.
func (s *Session) CanonicalStateKey(seed uint64) (sim.Fingerprint, []int) {
	if s.Symmetry() == nil {
		return s.StateKey(seed), nil
	}
	best := s.StateKey(seed)
	var bestMap []int
	for i, n := 1, s.mach.NumVariants(s.sym); i < n; i++ {
		procTo := s.mach.VariantProcMap(s.sym, i)
		owner := s.csOwner
		if owner >= 0 {
			owner = procTo[owner]
		}
		key := s.mach.VariantFingerprint(seed, s.sym, i).Mix(uint64(int64(owner)))
		if key.Less(best) {
			best, bestMap = key, procTo
		}
	}
	return best, bestMap
}
