package rme_test

import (
	"fmt"

	"rme"
)

// ExampleNewSession runs a contended recoverable lock on the simulated
// machine and reads the RMR accounting.
func ExampleNewSession() {
	s, err := rme.NewSession(rme.Config{
		Procs:     16,
		Width:     16,
		Model:     rme.CC,
		Algorithm: rme.MustAlgorithm("watree"),
		Passes:    2,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer s.Close()
	if err := s.RunRoundRobin(); err != nil {
		fmt.Println(err)
		return
	}
	// 16 processes on 16-bit words: a single tree node, constant cost.
	fmt.Println("constant passage cost:", s.MaxPassageRMRs(rme.CC) < 25)
	// Output: constant passage cost: true
}

// ExampleNewAdversary forces the Theorem 1 lower bound on a real execution.
func ExampleNewAdversary() {
	adv, err := rme.NewAdversary(rme.AdversaryConfig{
		Session: rme.Config{
			Procs: 64, Width: 4, Model: rme.CC,
			Algorithm: rme.MustAlgorithm("watree"),
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer adv.Close()
	rep, err := adv.Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	// ceil(log_4 64) = 3 tree levels: the adversary forces at least one RMR
	// per level on a survivor that never crashed and never entered the CS.
	fmt.Println("forced at least depth:", rep.ForcedRMRs() >= 3)
	fmt.Println("clean audit:", len(rep.InvariantViolations) == 0)
	// Output:
	// forced at least depth: true
	// clean audit: true
}

// ExampleStress model-checks a recoverable lock under randomized schedules
// with crash injection.
func ExampleStress() {
	res, err := rme.Stress(rme.CheckConfig{
		Session: rme.Config{
			Procs: 3, Width: 8, Model: rme.DSM,
			Algorithm: rme.MustAlgorithm("rspin"),
		},
		CrashesPerProc: 2,
	}, 30, 0.05)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("schedules completed:", res.Complete, "safe:", res.Ok())
	// Output: schedules completed: 30 safe: true
}
