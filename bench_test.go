// Benchmarks: one per experiment table (E1–E8; see DESIGN.md's experiment
// index and EXPERIMENTS.md for recorded results), plus native sync/atomic
// throughput benchmarks of the same algorithm sources.
//
// The E-benchmarks measure the cost of regenerating one representative cell
// of each experiment's table; run `go run ./cmd/rmrbench` for the full
// tables themselves.
package rme_test

import (
	"fmt"
	"sync"
	"testing"

	"rme"
	"rme/internal/harness"
	"rme/internal/hiding"
	"rme/internal/hypergraph"
	"rme/internal/memory"
	"rme/internal/mutex"
)

// BenchmarkE1AdversaryRounds regenerates one (n, w) cell of the Theorem 1
// lower-bound table: the adversary forcing RMRs on the w-ary tree.
func BenchmarkE1AdversaryRounds(b *testing.B) {
	for _, tc := range []struct {
		n int
		w rme.Width
	}{
		{64, 4}, {64, 16}, {256, 8},
	} {
		b.Run(fmt.Sprintf("n=%d/w=%d", tc.n, tc.w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				adv, err := rme.NewAdversary(rme.AdversaryConfig{
					Session: rme.Config{
						Procs: tc.n, Width: tc.w, Model: rme.CC,
						Algorithm: rme.MustAlgorithm("watree"),
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := adv.Run()
				adv.Close()
				if err != nil {
					b.Fatal(err)
				}
				if rep.ForcedRMRs() == 0 {
					b.Fatal("no RMRs forced")
				}
			}
		})
	}
}

// BenchmarkE2WordSizeTradeoff regenerates one (n, w) cell of the upper-bound
// table: a fully contended simulated run of the w-ary tree.
func BenchmarkE2WordSizeTradeoff(b *testing.B) {
	for _, tc := range []struct {
		n int
		w rme.Width
	}{
		{64, 4}, {64, 64}, {256, 16},
	} {
		b.Run(fmt.Sprintf("n=%d/w=%d", tc.n, tc.w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := rme.NewSession(rme.Config{
					Procs: tc.n, Width: tc.w, Model: rme.CC,
					Algorithm: rme.MustAlgorithm("watree"), Passes: 2, NoTrace: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := s.RunRoundRobin(); err != nil {
					b.Fatal(err)
				}
				if s.MaxPassageRMRs(rme.CC) == 0 {
					b.Fatal("no RMRs")
				}
				s.Close()
			}
		})
	}
}

// BenchmarkE3Lemma4 regenerates one Lemma 4 certificate on a dense random
// 3-partite hypergraph.
func BenchmarkE3Lemma4(b *testing.B) {
	parts := benchParts(3, 10)
	h, err := hypergraph.Complete(parts, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	s := 10.0 / 1.2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hypergraph.Lemma4(h.Edges, 0, parts[0], s, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Z) == 0 {
			b.Fatal("empty certificate")
		}
	}
}

// BenchmarkE4Lemma5 regenerates one Lemma 5 certificate on a complete
// 4-partite hypergraph.
func BenchmarkE4Lemma5(b *testing.B) {
	parts := benchParts(4, 6)
	h, err := hypergraph.Complete(parts, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	s := 6.0 / 1.2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hypergraph.Lemma5(h, s, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.F) == 0 {
			b.Fatal("empty certificate")
		}
	}
}

// BenchmarkE5ProcessHiding regenerates a Process-Hiding Lemma certificate at
// the paper's constants (ℓ=1, δ=1: one group of 108 processes, 27^4
// hyperedges) including full verification.
func BenchmarkE5ProcessHiding(b *testing.B) {
	k, partSize, groupSize := hiding.PaperConfig(1, 1)
	groups := [][]hiding.Proc{make([]hiding.Proc, groupSize)}
	for j := range groups[0] {
		groups[0][j] = hiding.Proc(j)
	}
	apply, err := hiding.RegisterApply(1, hiding.UniformOp(groups, memory.Add(1)))
	if err != nil {
		b.Fatal(err)
	}
	cfg := hiding.Config{
		Groups: groups, Y0: 0, ValueBits: 1, Delta: 1, K: k, PartSize: partSize, Apply: apply,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cert, err := hiding.Construct(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := cert.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6Landscape regenerates one landscape row: a contended run of
// each algorithm family at n=16.
func BenchmarkE6Landscape(b *testing.B) {
	for _, name := range []string{"mcs", "grlock", "tournament", "watree"} {
		alg := rme.MustAlgorithm(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := rme.NewSession(rme.Config{
					Procs: 16, Width: 16, Model: rme.CC, Algorithm: alg, Passes: 2, NoTrace: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := s.RunRoundRobin(); err != nil {
					b.Fatal(err)
				}
				s.Close()
			}
		})
	}
}

// BenchmarkE7CrashHiding regenerates the §1.1 comparison: the adversary's
// hiding manoeuvre with crashes (rspin) vs without (mcs).
func BenchmarkE7CrashHiding(b *testing.B) {
	for _, name := range []string{"rspin", "mcs"} {
		alg := rme.MustAlgorithm(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				adv, err := rme.NewAdversary(rme.AdversaryConfig{
					Session: rme.Config{Procs: 12, Width: 16, Model: rme.CC, Algorithm: alg},
					K:       4,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := adv.Run(); err != nil {
					b.Fatal(err)
				}
				adv.Close()
			}
		})
	}
}

// BenchmarkE8InvariantAudit measures the verified-replay machinery (the
// proof's table columns): one adversary construction dominated by
// erasability audits.
func BenchmarkE8InvariantAudit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		adv, err := rme.NewAdversary(rme.AdversaryConfig{
			Session: rme.Config{
				Procs: 64, Width: 8, Model: rme.DSM, Algorithm: rme.MustAlgorithm("grlock"),
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := adv.Run()
		adv.Close()
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.InvariantViolations) > 0 {
			b.Fatalf("violations: %v", rep.InvariantViolations)
		}
	}
}

// BenchmarkSimStep measures the raw step-gate cost (one scheduled atomic
// operation round-trip through the simulator).
func BenchmarkSimStep(b *testing.B) {
	s, err := rme.NewSession(rme.Config{
		Procs: 1, Width: 64, Model: rme.CC, Algorithm: rme.MustAlgorithm("tas"),
		Passes: 1 << 30, NoTrace: true, MaxSteps: 1 << 62,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.StepProc(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNativeLockThroughput runs the same algorithm sources on real
// sync/atomic memory with contending goroutines — the hardware side of the
// one-source-two-runtimes design.
func BenchmarkNativeLockThroughput(b *testing.B) {
	for _, name := range []string{"tas", "ticket", "mcs", "tournament", "rspin", "grlock", "watree"} {
		alg := rme.MustAlgorithm(name)
		for _, procs := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/procs=%d", name, procs), func(b *testing.B) {
				benchNative(b, alg, procs)
			})
		}
	}
}

func benchNative(b *testing.B, alg rme.Algorithm, procs int) {
	lock, err := rme.NewNativeLock(alg, procs, 64)
	if err != nil {
		b.Fatal(err)
	}
	counter := 0 // CS-guarded; the race detector doubles as the witness

	var wg sync.WaitGroup
	per := b.N / procs
	b.ResetTimer()
	for id := 0; id < procs; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := lock.Bind(id)
			for i := 0; i < per; i++ {
				h.Lock()
				counter++
				h.Unlock()
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	if counter != per*procs {
		b.Fatalf("counter = %d, want %d (mutual exclusion broken natively?)", counter, per*procs)
	}
}

// BenchmarkMutexSessionSetup measures machine + algorithm instantiation.
func BenchmarkMutexSessionSetup(b *testing.B) {
	alg := rme.MustAlgorithm("watree")
	for i := 0; i < b.N; i++ {
		s, err := mutex.NewSession(mutex.Config{
			Procs: 64, Width: 16, Model: rme.CC, Algorithm: alg, NoTrace: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

// BenchmarkSessionReuse contrasts fresh construction per run against the
// engine worker's reset-reuse path on the same contended workload — the
// tentpole optimisation for replay-heavy callers (checker, adversary).
func BenchmarkSessionReuse(b *testing.B) {
	cfg := mutex.Config{
		Procs: 64, Width: 16, Model: rme.CC,
		Algorithm: rme.MustAlgorithm("watree"), Passes: 1, NoTrace: true,
	}
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := mutex.NewSession(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.RunRoundRobin(); err != nil {
				b.Fatal(err)
			}
			s.Close()
		}
	})
	b.Run("reset", func(b *testing.B) {
		w := rme.NewWorker()
		defer w.Close()
		for i := 0; i < b.N; i++ {
			s, err := w.Session(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.RunRoundRobin(); err != nil {
				b.Fatal(err)
			}
			w.Release(s)
		}
	})
}

// BenchmarkEngineGrid measures a whole experiment-grid batch through the
// engine (the E2 shape) at parallelism 1; run with different GOMAXPROCS to
// see the pool scale while output stays identical.
func BenchmarkEngineGrid(b *testing.B) {
	alg := rme.MustAlgorithm("watree")
	var specs []rme.RunSpec
	for _, n := range []int{16, 64} {
		for _, w := range []rme.Width{4, 16, 64} {
			specs = append(specs, rme.RunSpec{Session: rme.Config{
				Procs: n, Width: w, Model: rme.CC, Algorithm: alg, Passes: 2, NoTrace: true,
			}})
		}
	}
	for i := 0; i < b.N; i++ {
		for _, r := range rme.Run(specs, rme.RunOptions{Parallel: 1}) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkExperimentTables measures the cheap experiment generators end to
// end (the expensive ones are covered by their own benchmarks above).
func BenchmarkExperimentTables(b *testing.B) {
	for _, id := range []string{"E3", "E4"} {
		exp, ok := harness.Find(id)
		if !ok {
			b.Fatalf("%s not found", id)
		}
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exp.Run(harness.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchParts(k, size int) [][]hypergraph.Vertex {
	parts := make([][]hypergraph.Vertex, k)
	id := 0
	for i := range parts {
		parts[i] = make([]hypergraph.Vertex, size)
		for j := range parts[i] {
			parts[i][j] = hypergraph.Vertex(id)
			id++
		}
	}
	return parts
}
