package rme_test

import (
	"fmt"
	"strings"
	"testing"

	"rme"
)

func TestAlgorithmsRegistry(t *testing.T) {
	algs := rme.Algorithms()
	if len(algs) != 12 {
		t.Fatalf("registry has %d algorithms, want 12", len(algs))
	}
	for i := 1; i < len(algs); i++ {
		if algs[i-1].Name() >= algs[i].Name() {
			t.Errorf("registry not sorted: %q >= %q", algs[i-1].Name(), algs[i].Name())
		}
	}
	recoverable := 0
	for _, a := range algs {
		if a.Recoverable() {
			recoverable++
		}
	}
	if recoverable != 6 {
		t.Errorf("recoverable algorithms = %d, want 6", recoverable)
	}
}

func TestNewAlgorithm(t *testing.T) {
	for _, name := range []string{"tas", "ticket", "mcs", "clh", "tournament", "yatree", "grlock", "rspin", "watree", "watree2", "watree-fast", "qword"} {
		alg, err := rme.NewAlgorithm(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if alg.Name() == "" {
			t.Errorf("%s: empty name", name)
		}
	}
	if _, err := rme.NewAlgorithm("nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAlgorithm should panic on unknown name")
		}
	}()
	rme.MustAlgorithm("nope")
}

func TestSessionSmokeAllAlgorithms(t *testing.T) {
	for _, alg := range rme.Algorithms() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			s, err := rme.NewSession(rme.Config{
				Procs: 4, Width: 16, Model: rme.CC, Algorithm: alg, Passes: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if err := s.RunRoundRobin(); err != nil {
				t.Fatal(err)
			}
			if s.MaxPassageRMRs(rme.CC) <= 0 {
				t.Error("no RMRs recorded")
			}
		})
	}
}

func TestExperimentsComplete(t *testing.T) {
	exps := rme.Experiments()
	if len(exps) != 13 {
		t.Fatalf("%d experiments, want 13 (E1-E8 + extensions E9-E13)", len(exps))
	}
	for i, e := range exps {
		want := fmt.Sprintf("E%d", i+1)
		if e.ID != want {
			t.Errorf("experiment %d id = %q, want %q", i, e.ID, want)
		}
		if e.Claim == "" || e.Title == "" {
			t.Errorf("%s: missing claim or title", e.ID)
		}
	}
	if _, ok := rme.FindExperiment("E5"); !ok {
		t.Error("E5 not found")
	}
	if _, ok := rme.FindExperiment("E99"); ok {
		t.Error("E99 found")
	}
}

func TestAdversaryFacade(t *testing.T) {
	adv, err := rme.NewAdversary(rme.AdversaryConfig{
		Session: rme.Config{
			Procs: 16, Width: 4, Model: rme.CC, Algorithm: rme.MustAlgorithm("watree"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer adv.Close()
	rep, err := adv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ForcedRMRs() < 2 {
		t.Errorf("forced RMRs = %d", rep.ForcedRMRs())
	}
}

func TestCheckFacade(t *testing.T) {
	res, err := rme.Exhaustive(rme.CheckConfig{
		Session:      rme.Config{Procs: 2, Width: 8, Model: rme.CC, Algorithm: rme.MustAlgorithm("tas")},
		MaxSchedules: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	sres, err := rme.Stress(rme.CheckConfig{
		Session:        rme.Config{Procs: 3, Width: 8, Model: rme.DSM, Algorithm: rme.MustAlgorithm("rspin")},
		CrashesPerProc: 1,
	}, 20, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := sres.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestTheoreticalLowerBoundFacade(t *testing.T) {
	narrow := rme.TheoreticalLowerBound(4, 1<<16)
	wide := rme.TheoreticalLowerBound(64, 1<<16)
	if narrow <= wide {
		t.Errorf("bound should shrink with width: %v vs %v", narrow, wide)
	}
}

func TestWATreeFanoutFacade(t *testing.T) {
	if got := rme.WATree(2).Name(); !strings.Contains(got, "f=2") {
		t.Errorf("WATree(2).Name() = %q", got)
	}
	if got := rme.WATree(0).Name(); got != "watree" {
		t.Errorf("WATree(0).Name() = %q", got)
	}
}
