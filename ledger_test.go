// Cross-artifact consistency of the committed perf baseline: the rmrbench
// entries in runs/baseline.jsonl and the experiment records in
// BENCH_results.json were produced by the same runs, so their deterministic
// counters must agree. A drift here means one artifact was regenerated
// without the other.
package rme_test

import (
	"encoding/json"
	"os"
	"testing"

	"rme/internal/perflog"
)

func TestBaselineLedgerConsistency(t *testing.T) {
	ms, err := perflog.Read("runs/baseline.jsonl")
	if err != nil {
		t.Fatalf("baseline ledger: %v", err)
	}
	blob, err := os.ReadFile("BENCH_results.json")
	if err != nil {
		t.Fatalf("bench results: %v", err)
	}
	var bench struct {
		Experiments []struct {
			ID     string `json:"id"`
			Runs   int64  `json:"runs"`
			Steps  int64  `json:"steps"`
			MaxRMR int64  `json:"max_rmr"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(blob, &bench); err != nil {
		t.Fatal(err)
	}
	byID := map[string]*perflog.Manifest{}
	for _, m := range ms {
		if m.Tool == "rmrbench" {
			byID[m.Config["experiment"]] = m
		}
	}
	if len(byID) == 0 {
		t.Fatal("baseline ledger has no rmrbench manifests")
	}
	if len(bench.Experiments) == 0 {
		t.Fatal("BENCH_results.json has no experiments")
	}
	for _, e := range bench.Experiments {
		m, ok := byID[e.ID]
		if !ok {
			t.Errorf("%s: in BENCH_results.json but not in the baseline ledger", e.ID)
			continue
		}
		if got := m.Counters["runs"]; got != e.Runs {
			t.Errorf("%s runs: ledger %d, bench %d", e.ID, got, e.Runs)
		}
		if got := m.Counters["steps"]; got != e.Steps {
			t.Errorf("%s steps: ledger %d, bench %d", e.ID, got, e.Steps)
		}
		if got := m.Counters["max_rmr"]; got != e.MaxRMR {
			t.Errorf("%s max_rmr: ledger %d, bench %d", e.ID, got, e.MaxRMR)
		}
	}
	// Every manifest must carry its identity: finalized digest and label.
	for _, m := range ms {
		if m.ConfigDigest == "" || m.Label != "baseline" {
			t.Errorf("manifest %s:%s label=%q digest=%q not baseline-stamped",
				m.Tool, m.Config["experiment"], m.Label, m.ConfigDigest)
		}
	}
}
