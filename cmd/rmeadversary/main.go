// Command rmeadversary runs the Theorem 1 lower-bound adversary against a
// chosen algorithm and prints the round-by-round log: how many processes
// stayed active, how many RMRs were forced, where hiding succeeded, and the
// outcome of every invariant audit.
//
// With -sweep, the adversary instead runs one construction per listed
// process count, distributed over -parallel engine workers, and prints a
// summary row per n (the CLI form of the E1 grid).
//
// Usage:
//
//	rmeadversary [-alg watree] [-n 64] [-w 8] [-model cc] [-k 0]
//	             [-trace FILE] [-traceformat jsonl|chrome] [-top N]
//	             [-cpuprofile FILE] [-memprofile FILE]
//	             [-heartbeat DUR] [-metrics FILE] [-debugaddr ADDR]
//	rmeadversary [-alg watree] [-w 8] -sweep 16,64,256 [-parallel N]
//
// -heartbeat prints live round progression (rounds completed, active set
// size, erased-process counts, ETA against the round cap) to stderr; -metrics
// appends JSONL metric snapshots; -debugaddr serves /metrics, /debug/vars
// and /debug/pprof while the construction runs. All three are strictly
// observational and leave stdout untouched.
//
// The construction itself runs trace-free (erasure audits replay the whole
// execution constantly); -trace replays the final adversarial schedule on a
// machine with event retention and exports its step-level story, so the
// forced RMRs can be attributed to concrete cells. -top prints the replay's
// hottest cells/procs to stderr. Single-construction mode only.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rme/internal/adversary"
	"rme/internal/algorithms/clh"
	"rme/internal/algorithms/grlock"
	"rme/internal/algorithms/mcs"
	"rme/internal/algorithms/qword"
	"rme/internal/algorithms/rspin"
	"rme/internal/algorithms/tas"
	"rme/internal/algorithms/ticket"
	"rme/internal/algorithms/tournament"
	"rme/internal/algorithms/watree"
	"rme/internal/algorithms/yatree"
	"rme/internal/cliutil"
	"rme/internal/engine"
	"rme/internal/faults"
	"rme/internal/mutex"
	"rme/internal/perflog"
	"rme/internal/sim"
	"rme/internal/telemetry"
	"rme/internal/trace"
	"rme/internal/word"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rmeadversary:", err)
		os.Exit(1)
	}
}

func algorithms() map[string]mutex.Algorithm {
	return map[string]mutex.Algorithm{
		"tas":         tas.New(),
		"ticket":      ticket.New(),
		"mcs":         mcs.New(),
		"clh":         clh.New(),
		"tournament":  tournament.New(),
		"yatree":      yatree.New(),
		"grlock":      grlock.New(),
		"rspin":       rspin.New(),
		"watree":      watree.New(),
		"watree2":     watree.New(watree.WithFanout(2)),
		"watree-fast": watree.New(watree.WithFastPath()),
		"qword":       qword.New(),
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rmeadversary", flag.ContinueOnError)
	algName := fs.String("alg", "watree", "algorithm: tas, ticket, mcs, clh, tournament, grlock, rspin, watree, watree2")
	n := fs.Int("n", 64, "number of processes")
	w := fs.Int("w", 8, "word size in bits")
	modelName := fs.String("model", "cc", "cost model: cc or dsm")
	k := fs.Int("k", 0, "high-contention threshold (0 = w^2)")
	sweep := fs.String("sweep", "", "comma-separated n values; runs one construction per n and prints a summary table")
	parallel := fs.Int("parallel", 0, "sweep workers (0 = GOMAXPROCS); summary rows are identical at any value")
	seed := fs.Int64("seed", 0, "accepted for CLI uniformity; the construction is deterministic and ignores it")
	tracePath := fs.String("trace", "", "replay the final adversarial schedule traced and export it to this file")
	traceFormat := fs.String("traceformat", "jsonl", "trace encoding: jsonl or chrome (Perfetto)")
	top := fs.Int("top", 0, "print the N hottest cells/procs of the traced replay to stderr (0 = off)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	tele := cliutil.TelemetryFlags(fs)
	ledger := cliutil.LedgerFlags(fs)
	version := cliutil.VersionFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(cliutil.VersionString("rmeadversary"))
		return nil
	}
	if _, err := trace.ParseFormat(*traceFormat); err != nil {
		return err
	}
	stopCPU, err := cliutil.StartCPUProfile(*cpuProfile)
	if err != nil {
		return err
	}
	defer stopCPU()
	stopTele, err := tele.Start("adversary", telemetry.View{
		Progress: "adversary_rounds",
		Target:   "adversary_max_rounds",
		Show:     []string{"adversary_active", "adversary_removed"},
		Ratios: []telemetry.Ratio{{
			Label: "hiding",
			Num:   "adversary_hiding_wins",
			Den:   []string{"adversary_hiding_attempts"},
		}},
	})
	if err != nil {
		return err
	}
	defer stopTele()

	alg, ok := algorithms()[strings.ToLower(*algName)]
	if !ok {
		return fmt.Errorf("unknown algorithm %q", *algName)
	}
	model := sim.CC
	if strings.EqualFold(*modelName, "dsm") {
		model = sim.DSM
	}

	if *seed != 0 {
		fmt.Fprintln(os.Stderr, "note: the adversary construction is fully deterministic; -seed has no effect")
	}
	if *sweep != "" {
		err := runSweep(alg, *sweep, *w, model, *k, *parallel, tele, ledger)
		if herr := cliutil.WriteHeapProfile(*memProfile); err == nil {
			err = herr
		}
		return err
	}

	constructionStart := time.Now()
	adv, err := adversary.New(adversary.Config{
		Session: mutex.Config{
			Procs: *n, Width: word.Width(*w), Model: model, Algorithm: alg,
		},
		K:         *k,
		Telemetry: tele.Registry(),
	})
	if err != nil {
		return err
	}
	defer adv.Close()

	rep, err := adv.Run()
	if err != nil {
		return err
	}

	if *tracePath != "" || *top > 0 {
		events, _, rerr := faults.ReplayTraced(mutex.Config{
			Procs: *n, Width: word.Width(*w), Model: model, Algorithm: alg,
		}, rep.Schedule)
		if rerr != nil {
			return fmt.Errorf("trace final schedule: %w", rerr)
		}
		runs := []trace.Run{{
			Label: "adversary " + alg.Name(), Procs: *n, Model: model, Events: events,
		}}
		cliutil.SummarizeTrace(os.Stderr, runs, model, *top)
		if err := cliutil.ExportTrace(*tracePath, *traceFormat, runs); err != nil {
			return err
		}
	}
	if err := cliutil.WriteHeapProfile(*memProfile); err != nil {
		return err
	}

	fmt.Printf("adversary vs %s: n=%d w=%d model=%s k=%d\n\n",
		alg.Name(), rep.Procs, rep.Width, rep.Model, rep.K)
	fmt.Printf("%-6s %-5s %-8s %-7s %-8s %-7s %-8s %-8s %-8s\n",
		"round", "kind", "active→", "stepped", "hidden", "finish", "removed", "blocked", "")
	for _, r := range rep.Rounds {
		fmt.Printf("%-6d %-5s %3d→%-4d %-7d %-8d %-7d %-8d %-8d\n",
			r.Index, r.Kind, r.ActiveBefore, r.ActiveAfter, r.Stepped,
			r.HiddenKept, r.Finished, r.Removed, r.Blocked)
	}
	fmt.Println()
	fmt.Printf("viable rounds:      %d\n", rep.ViableRounds)
	fmt.Printf("forced RMRs:        %d (survivors never crashed, never entered the CS)\n", rep.ForcedRMRs())
	fmt.Printf("survivors:          %d %v (RMRs %v)\n", len(rep.Survivors), rep.Survivors, rep.SurvivorRMRs)
	fmt.Printf("hiding:             %d/%d searches succeeded\n", rep.HidingWins, rep.HidingAttempts)
	fmt.Printf("verified replays:   %d (rollbacks %d)\n", rep.Replays, rep.RemovalRollbacks)
	fmt.Printf("theory bound:       ceil(log_w n) = %d, min(log_w n, ln n/ln ln n) = %.2f\n",
		word.CeilLog(*w, *n), word.TheoreticalLowerBound(word.Width(*w), *n))
	if len(rep.InvariantViolations) > 0 {
		fmt.Printf("INVARIANT VIOLATIONS:\n")
		for _, v := range rep.InvariantViolations {
			fmt.Printf("  %s\n", v)
		}
		return fmt.Errorf("%d invariant violations", len(rep.InvariantViolations))
	}
	fmt.Printf("invariant audit:    clean\n")
	m := advManifest(alg.Name(), rep.Procs, *w, model, *k, rep)
	m.Sample("wall_ms", float64(time.Since(constructionStart).Microseconds())/1000)
	return ledger.Emit(tele.Registry(), m)
}

// advManifest builds one construction's perf-ledger entry. The construction
// is fully deterministic, so every outcome statistic is an exactly-gateable
// counter. Single-construction runs and sweep rows share the same config
// shape (alg, n, w, model, k): a sweep baseline gates later single runs.
func advManifest(alg string, n, w int, model sim.Model, k int, rep *adversary.Report) *perflog.Manifest {
	m := perflog.New("rmeadversary")
	m.SetConfig("alg", alg)
	m.SetConfig("n", n)
	m.SetConfig("w", w)
	m.SetConfig("model", model)
	m.SetConfig("k", k)
	m.Counter("viable_rounds", int64(rep.ViableRounds))
	m.Counter("forced_rmrs", int64(rep.ForcedRMRs()))
	m.Counter("survivors", int64(len(rep.Survivors)))
	m.Counter("hiding_wins", int64(rep.HidingWins))
	m.Counter("hiding_attempts", int64(rep.HidingAttempts))
	m.Counter("replays", int64(rep.Replays))
	m.Counter("rollbacks", int64(rep.RemovalRollbacks))
	m.Counter("violations", int64(len(rep.InvariantViolations)))
	return m
}

// runSweep runs one adversary construction per listed n in parallel and
// prints summary rows in list order. The shared registry accumulates round
// statistics across all constructions (atomics make that safe); the printed
// table is unaffected.
func runSweep(alg mutex.Algorithm, sweep string, w int, model sim.Model, k, parallel int, tele *cliutil.Telemetry, ledger *cliutil.Ledger) error {
	reg := tele.Registry()
	var ns []int
	for _, tok := range strings.Split(sweep, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return fmt.Errorf("bad -sweep entry %q: %w", tok, err)
		}
		ns = append(ns, n)
	}
	reps := make([]*adversary.Report, len(ns))
	err := engine.ForEach(len(ns), parallel, func(i int) error {
		adv, err := adversary.New(adversary.Config{
			Session: mutex.Config{
				Procs: ns[i], Width: word.Width(w), Model: model, Algorithm: alg,
			},
			K:         k,
			Telemetry: reg,
		})
		if err != nil {
			return fmt.Errorf("n=%d: %w", ns[i], err)
		}
		defer adv.Close()
		rep, err := adv.Run()
		if err != nil {
			return fmt.Errorf("n=%d: %w", ns[i], err)
		}
		reps[i] = rep
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Printf("adversary sweep vs %s: w=%d model=%s k=%d\n\n", alg.Name(), w, model, k)
	fmt.Printf("%-8s %-8s %-12s %-10s %-10s %-10s %-14s %s\n",
		"n", "rounds", "forced RMRs", "survivors", "replays", "rollbacks", "ceil(log_w n)", "violations")
	violations := 0
	for i, n := range ns {
		rep := reps[i]
		fmt.Printf("%-8d %-8d %-12d %-10d %-10d %-10d %-14d %d\n",
			n, rep.ViableRounds, rep.ForcedRMRs(), len(rep.Survivors),
			rep.Replays, rep.RemovalRollbacks, word.CeilLog(w, n), len(rep.InvariantViolations))
		violations += len(rep.InvariantViolations)
	}
	if violations > 0 {
		return fmt.Errorf("%d invariant violations across sweep", violations)
	}
	fmt.Printf("\ninvariant audit:    clean\n")
	ms := make([]*perflog.Manifest, len(ns))
	for i, n := range ns {
		ms[i] = advManifest(alg.Name(), n, w, model, k, reps[i])
	}
	return ledger.Emit(reg, ms...)
}
