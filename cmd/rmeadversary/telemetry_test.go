package main

import (
	"os"
	"path/filepath"
	"testing"

	"rme/internal/telemetry"
)

// TestProfileFlags: -cpuprofile and -memprofile write non-empty pprof files
// around a single adversary construction.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	_, err := captureStdout(t, func() error {
		return run([]string{"-alg", "watree", "-n", "16", "-w", "4",
			"-cpuprofile", cpu, "-memprofile", mem})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}

// TestMetricsStreamFromConstruction: a heartbeat-enabled construction writes
// a JSONL stream whose final record reports the round progression.
func TestMetricsStreamFromConstruction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.jsonl")
	_, err := captureStdout(t, func() error {
		return run([]string{"-alg", "watree", "-n", "16", "-w", "4",
			"-heartbeat", "1ms", "-metrics", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := telemetry.ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatalf("want >= 2 snapshots, got %d", len(recs))
	}
	last := recs[len(recs)-1]
	if !last.Final {
		t.Fatal("stream has no final cumulative record")
	}
	if last.Label != "adversary" {
		t.Fatalf("label = %q, want adversary", last.Label)
	}
	if last.Metrics["adversary_rounds"] == 0 {
		t.Fatalf("final record reports no rounds: %v", last.Metrics)
	}
}
