package main

import (
	"io"
	"os"
	"testing"
)

// captureStdout runs fn with stdout redirected to a pipe and returns what it
// wrote. Stderr (timings, notes) is silenced: the contract under test is
// that *stdout* is byte-identical across -parallel values.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, wr, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	oldOut, oldErr := os.Stdout, os.Stderr
	os.Stdout, os.Stderr = wr, devnull
	defer func() {
		os.Stdout, os.Stderr = oldOut, oldErr
		devnull.Close()
	}()
	done := make(chan string, 1)
	go func() {
		blob, _ := io.ReadAll(r)
		done <- string(blob)
	}()
	runErr := fn()
	wr.Close()
	out := <-done
	r.Close()
	return out, runErr
}

// TestStdoutParityAcrossParallelism locks in byte-identical sweep output at
// any -parallel value: constructions land by index, so row order never
// depends on completion order.
func TestStdoutParityAcrossParallelism(t *testing.T) {
	args := []string{"-alg", "watree", "-w", "8", "-sweep", "4,8,16"}
	one, err := captureStdout(t, func() error { return run(append([]string{"-parallel", "1"}, args...)) })
	if err != nil {
		t.Fatalf("-parallel 1: %v", err)
	}
	eight, err := captureStdout(t, func() error { return run(append([]string{"-parallel", "8"}, args...)) })
	if err != nil {
		t.Fatalf("-parallel 8: %v", err)
	}
	if one != eight {
		t.Fatalf("stdout differs between -parallel 1 and 8:\n--- parallel 1 ---\n%s\n--- parallel 8 ---\n%s", one, eight)
	}
	if len(one) == 0 {
		t.Fatal("no output captured")
	}
}
