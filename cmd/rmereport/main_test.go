package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rme/internal/perflog"
)

// captureStdout runs fn with stdout redirected to a pipe and returns what it
// wrote, following the other cmd packages' convention.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, wr, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldOut := os.Stdout
	os.Stdout = wr
	defer func() { os.Stdout = oldOut }()
	done := make(chan string, 1)
	go func() {
		blob, _ := io.ReadAll(r)
		done <- string(blob)
	}()
	runErr := fn()
	wr.Close()
	out := <-done
	r.Close()
	return out, runErr
}

// benchRun builds a plausible rmrbench-shaped manifest.
func benchRun(label, experiment string, steps, rmr int64, wallMS float64) *perflog.Manifest {
	m := perflog.New("rmrbench")
	m.Label = label
	m.SetConfig("experiment", experiment)
	m.SetConfig("full", false)
	m.SetConfig("seed", 0)
	m.Counter("steps", steps)
	m.Counter("max_rmr", rmr)
	m.Counter("runs", 15)
	m.Sample("wall_ms", wallMS)
	return m
}

func writeLedger(t *testing.T, path string, ms ...*perflog.Manifest) {
	t.Helper()
	if err := perflog.Append(path, ms...); err != nil {
		t.Fatal(err)
	}
}

// TestRegressCleanRerun: a byte-identical rerun of the baseline
// configurations gates every counter and exits 0.
func TestRegressCleanRerun(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "baseline.jsonl")
	curPath := filepath.Join(dir, "current.jsonl")
	writeLedger(t, basePath,
		benchRun("baseline", "E1", 2323, 30, 10532),
		benchRun("baseline", "E2", 196638, 118, 356))
	writeLedger(t, curPath,
		benchRun("ci", "E2", 196638, 118, 341)) // wall differs; counters identical

	out, err := captureStdout(t, func() error {
		return run([]string{"regress", "-baseline", basePath, curPath})
	})
	if err != nil {
		t.Fatalf("clean rerun must exit 0: %v\n%s", err, out)
	}
	if !strings.Contains(out, "OK") || strings.Contains(out, "DRIFT") {
		t.Fatalf("unexpected regress output:\n%s", out)
	}
	// Only E2 was rerun; the E1 baseline entry must not gate anything.
	if !strings.Contains(out, "1 runs gated") {
		t.Fatalf("subset matching broken:\n%s", out)
	}
	// The wall-clock difference is reported, advisory only.
	if !strings.Contains(out, "advisory") {
		t.Fatalf("wall delta not reported:\n%s", out)
	}
}

// TestRegressSeededDrift: an RMR-count and a machine-step drift each fail
// the gate, naming the metric, both values, and the run's config digest.
func TestRegressSeededDrift(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "baseline.jsonl")
	writeLedger(t, basePath,
		benchRun("baseline", "E1", 2323, 30, 10532),
		benchRun("baseline", "E2", 196638, 118, 356))

	cases := []struct {
		name    string
		drifted *perflog.Manifest
		metric  string
		oldVal  string
		newVal  string
	}{
		{"rmr-count", benchRun("ci", "E1", 2323, 31, 9000), "max_rmr", "30", "31"},
		{"machine-steps", benchRun("ci", "E2", 196640, 118, 356), "steps", "196638", "196640"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			curPath := filepath.Join(dir, tc.name+".jsonl")
			writeLedger(t, curPath, tc.drifted)
			out, err := captureStdout(t, func() error {
				return run([]string{"regress", "-baseline", basePath, curPath})
			})
			if err == nil {
				t.Fatalf("seeded drift must exit non-zero:\n%s", out)
			}
			tc.drifted.Finalize()
			for _, want := range []string{
				"DRIFT", "metric=" + tc.metric,
				"baseline=" + tc.oldVal, "current=" + tc.newVal,
				"digest=" + tc.drifted.ConfigDigest[:12],
			} {
				if !strings.Contains(out, want) {
					t.Errorf("drift report missing %q:\n%s", want, out)
				}
			}
		})
	}
}

// TestRegressMissingCounterIsDrift: a counter disappearing from the current
// run is drift too — the instrumented code changed what it records.
func TestRegressMissingCounterIsDrift(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.jsonl")
	curPath := filepath.Join(dir, "cur.jsonl")
	writeLedger(t, basePath, benchRun("baseline", "E1", 2323, 30, 1))
	cur := benchRun("ci", "E1", 2323, 30, 1)
	delete(cur.Counters, "max_rmr")
	writeLedger(t, curPath, cur)
	out, err := captureStdout(t, func() error {
		return run([]string{"regress", "-baseline", basePath, curPath})
	})
	if err == nil || !strings.Contains(out, "current=(absent)") {
		t.Fatalf("missing counter not flagged: err=%v\n%s", err, out)
	}
}

// TestRegressUnmatchedOnly: a ledger with no matching baseline entry gates
// nothing and fails loudly rather than passing vacuously.
func TestRegressUnmatchedOnly(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.jsonl")
	curPath := filepath.Join(dir, "cur.jsonl")
	writeLedger(t, basePath, benchRun("baseline", "E1", 2323, 30, 1))
	other := benchRun("ci", "E1", 2323, 30, 1)
	other.SetConfig("seed", 42) // different semantic config -> different digest
	writeLedger(t, curPath, other)
	out, err := captureStdout(t, func() error {
		return run([]string{"regress", "-baseline", basePath, curPath})
	})
	if err == nil || !strings.Contains(out, "no baseline entry") {
		t.Fatalf("vacuous pass: err=%v\n%s", err, out)
	}
}

// TestCompareFormats: the delta table renders in all three formats, shows
// counter drift, and marks an obvious wall-clock shift significant.
func TestCompareFormats(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.jsonl")
	newPath := filepath.Join(dir, "new.jsonl")
	// Five samples per side so Mann-Whitney has power.
	for i := 0; i < 5; i++ {
		writeLedger(t, oldPath, benchRun("a", "E2", 196638, 118, 300+float64(i)))
		writeLedger(t, newPath, benchRun("b", "E2", 196639, 118, 600+float64(i)))
	}

	text, err := captureStdout(t, func() error {
		return run([]string{"compare", oldPath, newPath})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "DRIFT") || !strings.Contains(text, "steps") {
		t.Fatalf("counter drift missing from text compare:\n%s", text)
	}
	if !strings.Contains(text, "wall ! wall_ms") {
		t.Fatalf("doubled wall_ms not marked significant:\n%s", text)
	}

	md, err := captureStdout(t, func() error {
		return run([]string{"compare", "-format", "markdown", oldPath, newPath})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(md, "| config | metric |") || !strings.Contains(md, "wall_ms") {
		t.Fatalf("markdown table malformed:\n%s", md)
	}

	js, err := captureStdout(t, func() error {
		return run([]string{"compare", "-format", "json", oldPath, newPath})
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Matched int `json:"matched"`
		Groups  []struct {
			Tool     string `json:"tool"`
			Counters []struct {
				Metric string `json:"metric"`
				Old    int64  `json:"old"`
				New    int64  `json:"new"`
			} `json:"counters"`
		} `json:"groups"`
	}
	if err := json.Unmarshal([]byte(js), &doc); err != nil {
		t.Fatalf("compare -format json: %v\n%s", err, js)
	}
	if doc.Matched != 1 || len(doc.Groups) != 1 || doc.Groups[0].Tool != "rmrbench" {
		t.Fatalf("json compare shape: %+v", doc)
	}
}

// TestHistoryFormats: the trajectory renders the metric across ledger order
// with tool/label filters, in all three formats.
func TestHistoryFormats(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger.jsonl")
	writeLedger(t, path,
		benchRun("baseline", "E2", 196638, 118, 356),
		benchRun("pr-12", "E2", 196640, 118, 349))
	other := perflog.New("rmecheck")
	other.Counter("steps", 7)
	writeLedger(t, path, other)

	text, err := captureStdout(t, func() error {
		return run([]string{"history", "-metric", "steps", "-tool", "rmrbench", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "196638") || !strings.Contains(text, "196640") {
		t.Fatalf("history values missing:\n%s", text)
	}
	if strings.Contains(text, "rmecheck") {
		t.Fatalf("-tool filter leaked another tool:\n%s", text)
	}

	js, err := captureStdout(t, func() error {
		return run([]string{"history", "-metric", "wall_ms", "-format", "json", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Rows []struct {
			Section string  `json:"section"`
			Value   float64 `json:"value"`
		} `json:"rows"`
	}
	if err := json.Unmarshal([]byte(js), &doc); err != nil {
		t.Fatalf("history json: %v\n%s", err, js)
	}
	if len(doc.Rows) != 2 || doc.Rows[0].Section != "wall" || doc.Rows[0].Value != 356 {
		t.Fatalf("history json rows: %+v", doc)
	}

	md, err := captureStdout(t, func() error {
		return run([]string{"history", "-metric", "steps", "-format", "markdown", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(md, "| run | tool |") {
		t.Fatalf("markdown history malformed:\n%s", md)
	}
}

// TestUsageErrors covers the CLI error paths.
func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"compare", "one-file-only"},
		{"history", "no-metric.jsonl"},
		{"regress", "no-baseline.jsonl"},
		{"compare", "-format", "xml", "a", "b"},
	} {
		if _, err := captureStdout(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}
