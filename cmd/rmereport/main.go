// Command rmereport reads the JSONL performance ledgers the other tools'
// -ledger flags append (see internal/perflog) and turns them into cross-run
// observability: benchstat-style comparisons, metric trajectories, and a
// regression gate.
//
//	rmereport compare [-format text|markdown|json] [-alpha 0.05] OLD NEW
//	rmereport history -metric NAME [-tool T] [-label L] [-format text|markdown|json] LEDGER
//	rmereport regress -baseline BASE [-alpha 0.05] LEDGER
//	rmereport -version
//
// Runs match across ledgers iff (tool, semantic-config digest) match, so a
// baseline recorded from a full sweep still gates a CI rerun of any subset
// of the same configurations.
//
// The split between gated and advisory metrics is the tool's whole point:
// deterministic counters (RMR totals, machine steps, states visited — the
// quantities the paper's word-size tradeoffs are about) must be exactly
// equal between matched runs, and regress exits 1 naming the metric, both
// values, and the offending run's config digest on any drift. Wall-clock
// samples are compared statistically (median + Mann-Whitney U) and are
// always advisory: on a 1-CPU builder, timing deltas are noise, counter
// deltas are code changes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"rme/internal/perflog"
	"rme/internal/perfstat"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rmereport:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: rmereport compare|history|regress [flags] FILE...")
	}
	switch args[0] {
	case "compare":
		return runCompare(args[1:])
	case "history":
		return runHistory(args[1:])
	case "regress":
		return runRegress(args[1:])
	case "-version", "version":
		fmt.Println("rmereport", perflog.Build().Short())
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q (want compare, history or regress)", args[0])
	}
}

// group buckets manifests by matching key, preserving first-seen order.
func group(ms []*perflog.Manifest) (keys []string, byKey map[string][]*perflog.Manifest) {
	byKey = map[string][]*perflog.Manifest{}
	for _, m := range ms {
		k := m.Key()
		if _, ok := byKey[k]; !ok {
			keys = append(keys, k)
		}
		byKey[k] = append(byKey[k], m)
	}
	return keys, byKey
}

// configLine renders a manifest's semantic config compactly and
// deterministically: sorted "k=v" pairs.
func configLine(m *perflog.Manifest) string {
	keys := make([]string, 0, len(m.Config))
	for k := range m.Config {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + m.Config[k]
	}
	return strings.Join(parts, " ")
}

func short(digest string) string {
	if len(digest) > 12 {
		return digest[:12]
	}
	if digest == "" {
		return "-"
	}
	return digest
}

// wallSamples collects one advisory metric's sample set across a group.
func wallSamples(ms []*perflog.Manifest, metric string) []float64 {
	var out []float64
	for _, m := range ms {
		if v, ok := m.Wall[metric]; ok {
			out = append(out, v)
		}
	}
	return out
}

// wallMetrics returns the union of advisory metric names across both
// groups, sorted.
func wallMetrics(groups ...[]*perflog.Manifest) []string {
	seen := map[string]bool{}
	for _, g := range groups {
		for _, m := range g {
			for name := range m.Wall {
				seen[name] = true
			}
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func pString(p float64) string {
	if math.IsNaN(p) {
		return "p=n/a"
	}
	return fmt.Sprintf("p=%.3f", p)
}

func deltaString(pct float64) string {
	if math.IsNaN(pct) {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", pct)
}

// ---------------------------------------------------------------- compare

// groupComparison is one matched configuration's full comparison (also the
// JSON shape).
type groupComparison struct {
	Tool     string               `json:"tool"`
	Config   map[string]string    `json:"config"`
	Digest   string               `json:"config_digest"`
	Counters []perfstat.Delta     `json:"counters,omitempty"`
	Wall     []perfstat.WallDelta `json:"wall,omitempty"`
}

func runCompare(args []string) error {
	fs := flag.NewFlagSet("rmereport compare", flag.ContinueOnError)
	format := fs.String("format", "text", "output: text, markdown or json")
	alpha := fs.Float64("alpha", 0.05, "significance level for wall-clock shifts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: rmereport compare [-format text|markdown|json] [-alpha A] OLD NEW")
	}
	old, err := perflog.Read(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := perflog.Read(fs.Arg(1))
	if err != nil {
		return err
	}
	oldKeys, oldBy := group(old)
	_, curBy := group(cur)

	var groups []groupComparison
	matched := 0
	for _, k := range oldKeys {
		curG, ok := curBy[k]
		if !ok {
			continue
		}
		matched++
		oldG := oldBy[k]
		// Counters are deterministic, so within a ledger every entry of the
		// key carries the same set; the latest entry represents each side.
		rep := oldG[len(oldG)-1]
		g := groupComparison{
			Tool:     rep.Tool,
			Config:   rep.Config,
			Digest:   rep.ConfigDigest,
			Counters: perfstat.DiffCounters(rep.Counters, curG[len(curG)-1].Counters),
		}
		for _, metric := range wallMetrics(oldG, curG) {
			g.Wall = append(g.Wall, perfstat.CompareWall(metric, wallSamples(oldG, metric), wallSamples(curG, metric)))
		}
		groups = append(groups, g)
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Old     string            `json:"old"`
			New     string            `json:"new"`
			Matched int               `json:"matched"`
			Groups  []groupComparison `json:"groups"`
		}{fs.Arg(0), fs.Arg(1), matched, groups})
	case "markdown":
		fmt.Printf("| config | metric | old | new | delta | significance |\n")
		fmt.Printf("|---|---|---|---|---|---|\n")
		for _, g := range groups {
			name := fmt.Sprintf("%s `%s`", g.Tool, short(g.Digest))
			for _, d := range g.Counters {
				if !d.Drift() {
					continue
				}
				fmt.Printf("| %s | %s | %s | %s | drift | gated |\n",
					name, d.Metric, counterSide(d.Old, d.OldOK), counterSide(d.New, d.NewOK))
			}
			for _, w := range g.Wall {
				sig := "~"
				if w.Significant(*alpha) {
					sig = pString(w.P)
				}
				fmt.Printf("| %s | %s | %.4g (n=%d) | %.4g (n=%d) | %s | %s |\n",
					name, w.Metric, w.Old.Median, w.Old.N, w.New.Median, w.New.N,
					deltaString(w.DeltaPct), sig)
			}
		}
		return nil
	case "text":
		fmt.Printf("compare: %s (%d runs) vs %s (%d runs), %d matched configurations\n",
			fs.Arg(0), len(old), fs.Arg(1), len(cur), matched)
		for _, g := range groups {
			rep := oldBy[g.Tool+":"+g.Digest][0]
			fmt.Printf("\n=== %s %s (digest %s)\n", g.Tool, configLine(rep), short(g.Digest))
			drifts := 0
			for _, d := range g.Counters {
				if d.Drift() {
					drifts++
					fmt.Printf("  counter %-28s %s -> %s  DRIFT\n",
						d.Metric, counterSide(d.Old, d.OldOK), counterSide(d.New, d.NewOK))
				}
			}
			if drifts == 0 {
				fmt.Printf("  counters: %d exact-match\n", len(g.Counters))
			}
			for _, w := range g.Wall {
				marker := "~"
				if w.Significant(*alpha) {
					marker = "!"
				}
				fmt.Printf("  wall %s %-26s %10.4g (n=%d) -> %10.4g (n=%d)  %8s  (%s, advisory)\n",
					marker, w.Metric, w.Old.Median, w.Old.N, w.New.Median, w.New.N,
					deltaString(w.DeltaPct), pString(w.P))
			}
		}
		if matched == 0 {
			fmt.Println("no matched configurations (tool + config digest must agree)")
		}
		return nil
	default:
		return fmt.Errorf("unknown format %q (want text, markdown or json)", *format)
	}
}

func counterSide(v int64, ok bool) string {
	if !ok {
		return "(absent)"
	}
	return fmt.Sprintf("%d", v)
}

// ---------------------------------------------------------------- history

// historyRow is one ledger entry's reading of the tracked metric.
type historyRow struct {
	Index  int    `json:"index"`
	Tool   string `json:"tool"`
	Label  string `json:"label,omitempty"`
	Digest string `json:"config_digest"`
	// Revision is the recorded VCS commit (with "+dirty" when applicable).
	Revision string  `json:"revision,omitempty"`
	Section  string  `json:"section"` // counters, wall, or telemetry
	Value    float64 `json:"value"`
}

// lookupMetric resolves a metric name in a manifest: deterministic counters
// first, then wall samples, then the telemetry snapshot.
func lookupMetric(m *perflog.Manifest, name string) (float64, string, bool) {
	if v, ok := m.Counters[name]; ok {
		return float64(v), "counters", true
	}
	if v, ok := m.Wall[name]; ok {
		return v, "wall", true
	}
	if v, ok := m.Telemetry[name]; ok {
		return float64(v), "telemetry", true
	}
	return 0, "", false
}

func revString(p perflog.Provenance) string {
	rev := p.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "" {
		return "-"
	}
	if p.Dirty {
		rev += "+dirty"
	}
	return rev
}

func runHistory(args []string) error {
	fs := flag.NewFlagSet("rmereport history", flag.ContinueOnError)
	metric := fs.String("metric", "", "metric to track (resolved in counters, then wall, then telemetry)")
	tool := fs.String("tool", "", "restrict to runs of this tool")
	label := fs.String("label", "", "restrict to runs with this -runlabel")
	format := fs.String("format", "text", "output: text, markdown or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *metric == "" {
		return fmt.Errorf("usage: rmereport history -metric NAME [-tool T] [-label L] [-format text|markdown|json] LEDGER")
	}
	ms, err := perflog.Read(fs.Arg(0))
	if err != nil {
		return err
	}
	var rows []historyRow
	for i, m := range ms {
		if *tool != "" && m.Tool != *tool {
			continue
		}
		if *label != "" && m.Label != *label {
			continue
		}
		v, section, ok := lookupMetric(m, *metric)
		if !ok {
			continue
		}
		rows = append(rows, historyRow{
			Index: i, Tool: m.Tool, Label: m.Label, Digest: m.ConfigDigest,
			Revision: revString(m.Provenance), Section: section, Value: v,
		})
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Ledger string       `json:"ledger"`
			Metric string       `json:"metric"`
			Rows   []historyRow `json:"rows"`
		}{fs.Arg(0), *metric, rows})
	case "markdown":
		fmt.Printf("| run | tool | label | revision | digest | %s |\n", *metric)
		fmt.Printf("|---|---|---|---|---|---|\n")
		for _, r := range rows {
			fmt.Printf("| %d | %s | %s | %s | `%s` | %.6g |\n",
				r.Index, r.Tool, orDash(r.Label), r.Revision, short(r.Digest), r.Value)
		}
		return nil
	case "text":
		fmt.Printf("history: %s across %s (%d of %d runs carry it)\n\n", *metric, fs.Arg(0), len(rows), len(ms))
		fmt.Printf("%-5s %-12s %-12s %-18s %-14s %14s\n", "run", "tool", "label", "revision", "digest", *metric)
		for _, r := range rows {
			fmt.Printf("%-5d %-12s %-12s %-18s %-14s %14.6g\n",
				r.Index, r.Tool, orDash(r.Label), r.Revision, short(r.Digest), r.Value)
		}
		if len(rows) == 0 {
			fmt.Println("(no run carries this metric under the given filters)")
		}
		return nil
	default:
		return fmt.Errorf("unknown format %q (want text, markdown or json)", *format)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// ---------------------------------------------------------------- regress

func runRegress(args []string) error {
	fs := flag.NewFlagSet("rmereport regress", flag.ContinueOnError)
	basePath := fs.String("baseline", "", "baseline ledger to gate against (required)")
	alpha := fs.Float64("alpha", 0.05, "significance level for the advisory wall-clock report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *basePath == "" {
		return fmt.Errorf("usage: rmereport regress -baseline BASE [-alpha A] LEDGER")
	}
	base, err := perflog.Read(*basePath)
	if err != nil {
		return err
	}
	cur, err := perflog.Read(fs.Arg(0))
	if err != nil {
		return err
	}
	// The latest baseline entry per key is authoritative: the ledger is
	// append-ordered, so a re-recorded baseline supersedes older entries.
	baseByKey := map[string]*perflog.Manifest{}
	for _, m := range base {
		baseByKey[m.Key()] = m
	}

	drifts, gated, matched, unmatched := 0, 0, 0, 0
	for _, m := range cur {
		b, ok := baseByKey[m.Key()]
		if !ok {
			unmatched++
			fmt.Printf("new: tool=%s digest=%s has no baseline entry (not gated)\n",
				m.Tool, short(m.ConfigDigest))
			continue
		}
		matched++
		for _, d := range perfstat.DiffCounters(b.Counters, m.Counters) {
			gated++
			if !d.Drift() {
				continue
			}
			drifts++
			fmt.Printf("DRIFT: tool=%s metric=%s baseline=%s current=%s label=%s digest=%s\n",
				m.Tool, d.Metric, counterSide(d.Old, d.OldOK), counterSide(d.New, d.NewOK),
				orDash(m.Label), short(m.ConfigDigest))
		}
	}

	// Advisory wall-clock report, one comparison per matched configuration.
	curKeys, curBy := group(cur)
	_, baseBy := group(base)
	for _, k := range curKeys {
		baseG, ok := baseBy[k]
		if !ok {
			continue
		}
		curG := curBy[k]
		for _, metric := range wallMetrics(baseG, curG) {
			w := perfstat.CompareWall(metric, wallSamples(baseG, metric), wallSamples(curG, metric))
			marker := "~"
			if w.Significant(*alpha) {
				marker = "!"
			}
			fmt.Printf("wall %s tool=%s %s: %.4g -> %.4g (%s, %s, advisory)\n",
				marker, curG[0].Tool, metric, w.Old.Median, w.New.Median,
				deltaString(w.DeltaPct), pString(w.P))
		}
	}

	fmt.Printf("regress: %d runs gated against %s (%d unmatched), %d deterministic counters compared, %d drifted\n",
		matched, *basePath, unmatched, gated, drifts)
	if drifts > 0 {
		return fmt.Errorf("%d deterministic counter(s) drifted from the baseline", drifts)
	}
	if matched == 0 {
		return fmt.Errorf("no run in %s matched the baseline (nothing was gated)", fs.Arg(0))
	}
	fmt.Println("OK")
	return nil
}
