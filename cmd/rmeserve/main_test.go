package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

// captureStdout runs fn with stdout redirected to a pipe and returns what it
// wrote. Stderr (wall-clock throughput) is silenced: the contract under test
// is that *stdout* is byte-identical across -parallel values.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, wr, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	oldOut, oldErr := os.Stdout, os.Stderr
	os.Stdout, os.Stderr = wr, devnull
	defer func() {
		os.Stdout, os.Stderr = oldOut, oldErr
		devnull.Close()
	}()
	done := make(chan string, 1)
	go func() {
		blob, _ := io.ReadAll(r)
		done <- string(blob)
	}()
	runErr := fn()
	wr.Close()
	out := <-done
	r.Close()
	return out, runErr
}

// TestStdoutParityAcrossParallelism locks in the headline guarantee: the
// report (JSON and text) is byte-identical at -parallel 1 and 8, because
// the arrival stream is generated single-threaded and the engine merges
// shard batches in submission order.
func TestStdoutParityAcrossParallelism(t *testing.T) {
	base := []string{"-locks", "16", "-clients", "20000", "-passages", "1200",
		"-dist", "zipf:1.2", "-seed", "5"}
	for _, mode := range []string{"json", "text"} {
		args := base
		if mode == "json" {
			args = append([]string{"-json"}, base...)
		}
		one, err := captureStdout(t, func() error { return run(append([]string{"-parallel", "1"}, args...)) })
		if err != nil {
			t.Fatalf("%s -parallel 1: %v", mode, err)
		}
		eight, err := captureStdout(t, func() error { return run(append([]string{"-parallel", "8"}, args...)) })
		if err != nil {
			t.Fatalf("%s -parallel 8: %v", mode, err)
		}
		if one != eight {
			t.Fatalf("%s stdout differs between -parallel 1 and 8:\n--- parallel 1 ---\n%s\n--- parallel 8 ---\n%s",
				mode, one, eight)
		}
		if len(one) == 0 {
			t.Fatalf("%s: no output captured", mode)
		}
	}
}

// TestJSONReportShape decodes the -json output and spot-checks the fields
// the acceptance criteria name: throughput, p50/p99 latency, fairness, and
// aggregate RMR.
func TestJSONReportShape(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-json", "-locks", "8", "-clients", "10000",
			"-passages", "600", "-dist", "bursty:0.05", "-seed", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Passages int64   `json:"passages"`
		Thpt     float64 `json:"passages_per_1m_steps"`
		Latency  struct {
			P50 int64 `json:"p50"`
			P99 int64 `json:"p99"`
		} `json:"latency_steps"`
		Fairness struct {
			ClientsServed int     `json:"clients_served"`
			Jain          float64 `json:"jain_index"`
		} `json:"fairness"`
		RMRCC  int64 `json:"rmr_cc"`
		RMRDSM int64 `json:"rmr_dsm"`
		Shards []struct {
			Shard int `json:"shard"`
		} `json:"shards"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("decode: %v\n%s", err, out)
	}
	if rep.Passages < 600 || rep.Thpt <= 0 || rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 {
		t.Fatalf("implausible report: %+v", rep)
	}
	if rep.Fairness.ClientsServed <= 0 || rep.Fairness.Jain <= 0 || rep.RMRCC <= 0 || rep.RMRDSM <= 0 {
		t.Fatalf("missing fairness/RMR: %+v", rep)
	}
	if len(rep.Shards) != 8 {
		t.Fatalf("want 8 shard rows, got %d", len(rep.Shards))
	}
}

// TestBadFlags covers the CLI's error paths.
func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-alg", "nosuchlock"},
		{"-model", "numa"},
		{"-dist", "pareto"},
		{"-dist", "zipf:0.5"},
		{"-locks", "0"},
		{"-clients", "0"},
		{"-passages", "0"},
	}
	for _, args := range cases {
		_, err := captureStdout(t, func() error { return run(args) })
		if err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

// TestTopCellsOutput exercises the attribution path through the CLI.
func TestTopCellsOutput(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-locks", "2", "-clients", "100", "-passages", "60",
			"-dist", "uniform", "-seed", "1", "-top", "3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cells") {
		t.Fatalf("no top-cells section in output:\n%s", out)
	}
}
