// Command rmeserve runs the sharded lock-service workload: M locks over a
// hashed keyspace, a seeded arrival stream (uniform, Zipf, or bursty) over
// millions of lightweight client records, and per-shard simulated machines
// batched through the deterministic engine pool. It reports throughput,
// tail latency (in machine steps), per-client fairness spread, and
// aggregate RMR cost under both models.
//
// The report — text or -json — derives entirely from the seed and the
// configuration, so it is byte-identical at any -parallel value. Wall-clock
// figures (passages/sec on this host) go to stderr only.
//
// Usage:
//
//	rmeserve [-locks 64] [-clients 1000000] [-passages 10000]
//	         [-dist zipf:1.1] [-alg watree] [-model cc] [-w 8]
//	         [-slots 8] [-rate N] [-seed 1] [-parallel N] [-json]
//	         [-top N] [-cpuprofile FILE]
//	         [-heartbeat DUR] [-metrics FILE] [-debugaddr ADDR]
//
// -dist accepts uniform, zipf[:theta] (theta > 1), and bursty[:frac]
// (active keyspace fraction). -top N additionally captures step traces and
// prints the N hottest cells by attributed RMRs (expensive; use small
// -passages). The telemetry bundle (-heartbeat/-metrics/-debugaddr) is
// strictly observational.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"rme"
	"rme/internal/cliutil"
	"rme/internal/perflog"
	"rme/internal/service"
	"rme/internal/sim"
	"rme/internal/telemetry"
	"rme/internal/word"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rmeserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rmeserve", flag.ContinueOnError)
	locks := fs.Int("locks", 64, "number of lock shards")
	clients := fs.Int("clients", 1_000_000, "keyspace size (client records)")
	passages := fs.Int64("passages", 10_000, "passage target; the run stops once reached")
	dist := fs.String("dist", "zipf:1.1", "arrival distribution: uniform, zipf[:theta], bursty[:frac]")
	algName := fs.String("alg", "watree", "lock algorithm every shard runs (see rme.Algorithms)")
	modelName := fs.String("model", "cc", "RMR cost model: cc or dsm")
	w := fs.Int("w", 8, "machine word size in bits")
	slots := fs.Int("slots", 8, "per-shard batch width (processes per sim run)")
	rate := fs.Int("rate", 0, "arrival budget per round (0 = 2*locks*slots)")
	seed := fs.Int64("seed", 1, "arrival-stream seed")
	parallel := fs.Int("parallel", 0, "engine workers (0 = GOMAXPROCS); report is identical at any value")
	jsonOut := fs.Bool("json", false, "emit the report as JSON on stdout")
	top := fs.Int("top", 0, "capture step traces and report the N hottest cells (expensive)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run")
	tel := cliutil.TelemetryFlags(fs)
	ledger := cliutil.LedgerFlags(fs)
	version := cliutil.VersionFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(cliutil.VersionString("rmeserve"))
		return nil
	}

	alg, err := rme.NewAlgorithm(*algName)
	if err != nil {
		return err
	}
	var model sim.Model
	switch strings.ToLower(*modelName) {
	case "cc":
		model = sim.CC
	case "dsm":
		model = sim.DSM
	default:
		return fmt.Errorf("unknown model %q (want cc or dsm)", *modelName)
	}
	d, err := service.ParseDist(*dist)
	if err != nil {
		return err
	}

	stopProf, err := cliutil.StartCPUProfile(*cpuprofile)
	if err != nil {
		return err
	}
	defer stopProf()

	stopTel, err := tel.Start("rmeserve", telemetry.View{
		Progress:    "service_passages",
		Target:      "service_target_passages",
		Show:        []string{"service_outstanding"},
		UtilBusy:    "engine_busy_ns",
		UtilWorkers: "engine_workers",
	})
	if err != nil {
		return err
	}
	defer stopTel()

	cfg := service.Config{
		Locks:     *locks,
		Clients:   *clients,
		Passages:  *passages,
		Dist:      d,
		Seed:      *seed,
		Algorithm: alg,
		Width:     word.Width(*w),
		Model:     model,
		Slots:     *slots,
		Rate:      *rate,
		Parallel:  *parallel,
		Telemetry: tel.Registry(),
		TopCells:  *top,
	}

	start := time.Now()
	rep, err := service.Run(cfg)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	// Host-dependent throughput goes to stderr so stdout stays
	// byte-identical across hosts and -parallel values.
	fmt.Fprintf(os.Stderr, "rmeserve: %d passages in %s (%.0f passages/sec)\n",
		rep.Passages, wall.Round(time.Millisecond), float64(rep.Passages)/wall.Seconds())

	emitLedger := func() error {
		m := serveManifest(rep)
		m.Sample("wall_ms", float64(wall.Microseconds())/1000)
		m.Sample("passages_per_sec", float64(rep.Passages)/wall.Seconds())
		return ledger.Emit(tel.Registry(), m)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		// The embed keeps the report's field order and adds build provenance
		// at the end, so existing consumers and the -parallel parity guarantee
		// are untouched (both runs carry the same provenance).
		if err := enc.Encode(struct {
			*service.Report
			Provenance perflog.Provenance `json:"provenance"`
		}{rep, perflog.Build()}); err != nil {
			return err
		}
		return emitLedger()
	}
	printReport(rep)
	return emitLedger()
}

// serveManifest builds the run's perf-ledger entry. The whole report is a
// pure function of seed and configuration, so every scalar — including the
// latency and fairness quantiles, which are measured in machine steps, not
// time — is an exactly-gateable counter. Jain's index is deterministic too;
// it rides along scaled to re-enter the integer counter set.
func serveManifest(rep *service.Report) *perflog.Manifest {
	m := perflog.New("rmeserve")
	m.SetConfig("locks", rep.Locks)
	m.SetConfig("clients", rep.Clients)
	m.SetConfig("passages", rep.TargetPassages)
	m.SetConfig("dist", rep.Dist)
	m.SetConfig("alg", rep.Algorithm)
	m.SetConfig("model", rep.Model)
	m.SetConfig("w", rep.Width)
	m.SetConfig("slots", rep.Slots)
	m.SetConfig("rate", rep.Rate)
	m.SetConfig("seed", rep.Seed)
	m.Counter("passages", rep.Passages)
	m.Counter("rounds", rep.Rounds)
	m.Counter("arrivals", rep.Arrivals)
	m.Counter("pending", rep.Pending)
	m.Counter("steps", rep.Steps)
	m.Counter("rmr_cc", rep.RMRCC)
	m.Counter("rmr_dsm", rep.RMRDSM)
	m.Counter("latency_p50", rep.Latency.P50)
	m.Counter("latency_p99", rep.Latency.P99)
	m.Counter("latency_max", rep.Latency.Max)
	m.Counter("fairness_clients_served", int64(rep.Fairness.ClientsServed))
	m.Counter("fairness_p99", rep.Fairness.P99)
	m.Counter("jain_x10000", int64(rep.Fairness.JainIndex*10000+0.5))
	return m
}

// printReport renders the human-readable summary (deterministic).
func printReport(rep *service.Report) {
	fmt.Printf("lock service: %d locks, %d clients, %s arrivals, alg=%s model=%s w=%d seed=%d\n",
		rep.Locks, rep.Clients, rep.Dist, rep.Algorithm, rep.Model, rep.Width, rep.Seed)
	fmt.Printf("passages  %d completed / %d target (%d rounds, %d arrivals, %d pending)\n",
		rep.Passages, rep.TargetPassages, rep.Rounds, rep.Arrivals, rep.Pending)
	fmt.Printf("machine   %d steps, %.2f passages per 1M steps\n", rep.Steps, rep.PassagesPerMSteps)
	fmt.Printf("latency   min %d  p50 %d  p90 %d  p99 %d  max %d (steps)\n",
		rep.Latency.Min, rep.Latency.P50, rep.Latency.P90, rep.Latency.P99, rep.Latency.Max)
	fmt.Printf("fairness  %d clients served, passages/client min %d p50 %d p99 %d max %d, Jain %.4f\n",
		rep.Fairness.ClientsServed, rep.Fairness.Min, rep.Fairness.P50,
		rep.Fairness.P99, rep.Fairness.Max, rep.Fairness.JainIndex)
	fmt.Printf("rmr       total CC %d / DSM %d, per passage CC %.2f / DSM %.2f\n",
		rep.RMRCC, rep.RMRDSM, rep.RMRPerPassageCC, rep.RMRPerPassageDSM)

	// Hottest shards first; ties by shard id for a stable rendering.
	shards := append([]service.ShardStat(nil), rep.Shards...)
	sort.Slice(shards, func(i, j int) bool {
		if shards[i].Passages != shards[j].Passages {
			return shards[i].Passages > shards[j].Passages
		}
		return shards[i].Shard < shards[j].Shard
	})
	show := len(shards)
	if show > 8 {
		show = 8
	}
	fmt.Printf("shards    top %d of %d by passages:\n", show, len(shards))
	for _, s := range shards[:show] {
		fmt.Printf("  shard %3d  passages %8d  steps %10d  rmr cc/dsm %d/%d  pending %d\n",
			s.Shard, s.Passages, s.Steps, s.RMRCC, s.RMRDSM, s.Pending)
	}
	if len(rep.TopCells) > 0 {
		fmt.Printf("cells     top %d by attributed RMRs:\n", len(rep.TopCells))
		for _, c := range rep.TopCells {
			fmt.Printf("  %-24s steps %8d  rmr cc/dsm %d/%d\n", c.Label, c.Steps, c.RMRCC, c.RMRDSM)
		}
	}
}
