package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunWritesJSONReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "native.json")
	err := run([]string{
		"-algs", "mcs,watree", "-procs", "1,2", "-passes", "40", "-warmup", "5",
		"-json", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep nativeReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Points) != 4 {
		t.Fatalf("points = %d, want 4 (2 algs x 2 sweep values)", len(rep.Points))
	}
	for _, pt := range rep.Points {
		if pt.ThroughputPerSec <= 0 {
			t.Errorf("%s n=%d: nonpositive throughput", pt.Alg, pt.Procs)
		}
		if pt.Histogram.Count != int64(pt.Procs*pt.Passes) {
			t.Errorf("%s n=%d: histogram count = %d, want %d",
				pt.Alg, pt.Procs, pt.Histogram.Count, pt.Procs*pt.Passes)
		}
		if len(pt.Histogram.BoundsNS) == 0 || len(pt.Histogram.Buckets) != len(pt.Histogram.BoundsNS)+1 {
			t.Errorf("%s n=%d: malformed histogram (%d bounds, %d buckets)",
				pt.Alg, pt.Procs, len(pt.Histogram.BoundsNS), len(pt.Histogram.Buckets))
		}
		if pt.Latency.P50NS <= 0 || pt.Latency.MaxNS < pt.Latency.P99NS {
			t.Errorf("%s n=%d: implausible latency summary %+v", pt.Alg, pt.Procs, pt.Latency)
		}
		if pt.SimCCRMRPerPassageMax <= 0 {
			t.Errorf("%s n=%d: missing sim correlation", pt.Alg, pt.Procs)
		}
	}
}

func TestRunMergesIntoExistingReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_results.json")
	if err := os.WriteFile(path, []byte(`{"full": true, "experiments": []}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{
		"-algs", "ticket", "-procs", "1", "-passes", "30", "-warmup", "5", "-nosim",
		"-merge", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal(blob, &obj); err != nil {
		t.Fatal(err)
	}
	if obj["full"] != true {
		t.Error("merge dropped existing keys")
	}
	native, ok := obj["native"].(map[string]any)
	if !ok {
		t.Fatalf("no native key after merge: %v", obj)
	}
	if pts, ok := native["points"].([]any); !ok || len(pts) != 1 {
		t.Errorf("native.points = %v", native["points"])
	}
}

// TestMergeUnionsSeries is the regression test for the series-clobber bug:
// a second -merge run with different (alg, procs) points must extend the
// native series, not replace it; only same-key points are overwritten.
func TestMergeUnionsSeries(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_results.json")
	if err := os.WriteFile(path, []byte(`{"full": true}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pt := func(alg string, procs int, thpt float64) pointRecord {
		return pointRecord{Alg: alg, Procs: procs, GOMAXPROCS: procs, Passes: 10, ThroughputPerSec: thpt}
	}
	// Run 1: mcs at n=1,2.
	if err := mergeReport(path, nativeReport{
		Width:  8,
		Points: []pointRecord{pt("mcs", 1, 100), pt("mcs", 2, 200)},
	}); err != nil {
		t.Fatal(err)
	}
	// Run 2: ticket at n=1 (new series) plus a re-measured mcs n=2.
	if err := mergeReport(path, nativeReport{
		Width:  8,
		Points: []pointRecord{pt("ticket", 1, 300), pt("mcs", 2, 250)},
	}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var obj struct {
		Full   bool         `json:"full"`
		Native nativeReport `json:"native"`
	}
	if err := json.Unmarshal(blob, &obj); err != nil {
		t.Fatal(err)
	}
	if !obj.Full {
		t.Error("merge dropped existing keys")
	}
	got := obj.Native.Points
	if len(got) != 3 {
		t.Fatalf("points after two merges = %d, want 3 (union, not replace): %+v", len(got), got)
	}
	want := []struct {
		alg   string
		procs int
		thpt  float64
	}{{"mcs", 1, 100}, {"mcs", 2, 250}, {"ticket", 1, 300}}
	for i, w := range want {
		if got[i].Alg != w.alg || got[i].Procs != w.procs || got[i].ThroughputPerSec != w.thpt {
			t.Errorf("point %d = %s/n%d thpt %v; want %s/n%d thpt %v",
				i, got[i].Alg, got[i].Procs, got[i].ThroughputPerSec, w.alg, w.procs, w.thpt)
		}
	}
}

// TestMergeErrorPaths locks in the failure modes: a non-object file and a
// corrupt "native" entry must both error out instead of silently clobbering
// the file.
func TestMergeErrorPaths(t *testing.T) {
	dir := t.TempDir()

	notObject := filepath.Join(dir, "array.json")
	if err := os.WriteFile(notObject, []byte(`[1, 2, 3]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mergeReport(notObject, nativeReport{}); err == nil {
		t.Error("non-object file: want error")
	}

	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte(`{"native": "not a report"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mergeReport(corrupt, nativeReport{}); err == nil {
		t.Error("corrupt native entry: want error")
	}
	// The corrupt file must be left untouched by the failed merge.
	blob, err := os.ReadFile(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != `{"native": "not a report"}` {
		t.Errorf("failed merge rewrote the file: %s", blob)
	}
}

func TestRunCrashInjectionSweep(t *testing.T) {
	// Crash-mode benchmarking on a recoverable algorithm must complete and
	// record crashes.
	dir := t.TempDir()
	path := filepath.Join(dir, "native.json")
	err := run([]string{
		"-algs", "rspin", "-procs", "2", "-passes", "60", "-warmup", "5",
		"-crashevery", "4", "-nosim", "-json", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep nativeReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1 || rep.Points[0].Crashes == 0 {
		t.Fatalf("expected injected crashes in report, got %+v", rep.Points)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-algs", "nosuchlock"}); err == nil {
		t.Error("unknown algorithm: want error")
	}
	if err := run([]string{"-procs", "0"}); err == nil {
		t.Error("-procs 0: want error")
	}
	if err := run([]string{"-width", "65"}); err == nil {
		t.Error("width 65: want error")
	}
}

func TestPercentile(t *testing.T) {
	s := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	for _, tc := range []struct {
		p    int
		want int64
	}{{50, 50}, {90, 90}, {99, 100}, {100, 100}} {
		if got := percentile(s, tc.p); got != tc.want {
			t.Errorf("p%d = %d, want %d", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %d", got)
	}
}

func TestMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"mcs":         "mcs",
		"watree(f=2)": "watree_f_2_",
		"watree+fast": "watree_fast",
	} {
		if got := metricName(in); got != want {
			t.Errorf("metricName(%q) = %q, want %q", in, got, want)
		}
	}
}
