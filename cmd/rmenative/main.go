// Command rmenative benchmarks the algorithm family on real silicon: the
// same entry/exit/recover protocol sources that the simulator counts RMRs
// for run here on sync/atomic cells via mutex.NativeLock, under true
// goroutine concurrency, swept across GOMAXPROCS values.
//
// For every (algorithm, n) point the tool measures wall-clock throughput
// (passages/sec) and per-passage latency — recorded both as raw samples
// (for exact percentiles) and as fixed-bucket histograms in the telemetry
// registry (visible live via -heartbeat/-metrics/-debugaddr). Each point is
// paired with the simulator's CC-RMR cost for the same (algorithm, n), so
// the report correlates measured hardware behaviour against the paper's
// cost model — experiment E14 in EXPERIMENTS.md, the Θ(log_w n) tradeoff
// curve as silicon sees it. What the native side cannot observe is RMRs
// themselves (cache-line traffic belongs to the hardware); the correlation
// is precisely the point of measuring both sides.
//
// Usage:
//
//	rmenative [-algs watree,mcs,clh,ticket,qword] [-procs 1,2,4,8]
//	          [-passes N] [-warmup N] [-width W] [-crashevery K] [-nosim]
//	          [-json FILE] [-merge BENCH_results.json]
//	          [-heartbeat DUR] [-metrics FILE] [-debugaddr ADDR]
//
// The human table goes to stdout and timings to stderr. -json writes the
// machine-readable report to its own file; -merge instead folds it into an
// existing rmrbench report (e.g. BENCH_results.json) under the "native"
// key, so the repository's perf trajectory tracks hardware numbers next to
// the simulated series. Unlike rmrbench's tables, numbers here are
// measurements of real time and are not expected to be reproducible
// byte-for-byte.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rme"

	"rme/internal/cliutil"
	"rme/internal/mutex"
	"rme/internal/perflog"
	"rme/internal/sim"
	"rme/internal/telemetry"
	"rme/internal/word"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rmenative:", err)
		os.Exit(1)
	}
}

// latencyBounds are the histogram bucket upper bounds in nanoseconds,
// roughly quarter-decade spaced from 250ns to 64ms: wide enough for an
// uncontended fast path and for a passage that absorbed a crash-recover
// cycle or a scheduler descheduling.
var latencyBounds = []int64{
	250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 4_000_000, 16_000_000, 64_000_000,
}

// histogramRecord is a telemetry histogram flattened for the JSON report.
type histogramRecord struct {
	BoundsNS []int64 `json:"bounds_ns"`
	Buckets  []int64 `json:"buckets"`
	Count    int64   `json:"count"`
	SumNS    int64   `json:"sum_ns"`
}

// latencySummary holds exact percentiles from the raw samples.
type latencySummary struct {
	MinNS  int64   `json:"min_ns"`
	P50NS  int64   `json:"p50_ns"`
	P90NS  int64   `json:"p90_ns"`
	P99NS  int64   `json:"p99_ns"`
	MaxNS  int64   `json:"max_ns"`
	MeanNS float64 `json:"mean_ns"`
}

// pointRecord is one (algorithm, n) sweep point.
type pointRecord struct {
	Alg              string          `json:"alg"`
	Procs            int             `json:"procs"`
	GOMAXPROCS       int             `json:"gomaxprocs"`
	Passes           int             `json:"passes"`
	Crashes          int64           `json:"crashes,omitempty"`
	WallMS           float64         `json:"wall_ms"`
	ThroughputPerSec float64         `json:"throughput_per_sec"`
	Latency          latencySummary  `json:"latency"`
	Histogram        histogramRecord `json:"histogram"`
	// The simulated CC-RMR cost of the same configuration: the model-side
	// variable of the E14 correlation.
	SimCCRMRPerPassageAvg float64 `json:"sim_cc_rmr_per_passage_avg,omitempty"`
	SimCCRMRPerPassageMax int     `json:"sim_cc_rmr_per_passage_max,omitempty"`
}

// nativeReport is the top-level JSON document (also embedded by -merge
// under the "native" key of an rmrbench report).
type nativeReport struct {
	Width       word.Width         `json:"width"`
	Passes      int                `json:"passes"`
	Warmup      int                `json:"warmup"`
	CrashEvery  int                `json:"crash_every,omitempty"`
	NumCPU      int                `json:"num_cpu"`
	GoVersion   string             `json:"go_version"`
	Provenance  perflog.Provenance `json:"provenance"`
	TotalWallMS float64            `json:"total_wall_ms"`
	Points      []pointRecord      `json:"points"`
}

// pointManifest builds one sweep point's perf-ledger entry. Only the
// simulator-side correlation columns are deterministic counters; everything
// the hardware produced (throughput, latencies, crash counts) is advisory
// wall data by construction.
func pointManifest(pt pointRecord, w word.Width, warmup, crashEvery int, noSim bool) *perflog.Manifest {
	m := perflog.New("rmenative")
	m.SetConfig("alg", pt.Alg)
	m.SetConfig("procs", pt.Procs)
	m.SetConfig("width", int(w))
	m.SetConfig("passes", pt.Passes)
	m.SetConfig("warmup", warmup)
	m.SetConfig("crashevery", crashEvery)
	m.SetConfig("nosim", noSim)
	if !noSim {
		m.Counter("sim_cc_rmr_max", int64(pt.SimCCRMRPerPassageMax))
		m.Counter("sim_cc_rmr_avg_x100", int64(pt.SimCCRMRPerPassageAvg*100+0.5))
	}
	m.Sample("wall_ms", pt.WallMS)
	m.Sample("throughput_per_sec", pt.ThroughputPerSec)
	m.Sample("p50_ns", float64(pt.Latency.P50NS))
	m.Sample("p99_ns", float64(pt.Latency.P99NS))
	m.Sample("crashes", float64(pt.Crashes))
	return m
}

func run(args []string) error {
	fs := flag.NewFlagSet("rmenative", flag.ContinueOnError)
	algsFlag := fs.String("algs", "watree,mcs,clh,ticket,qword",
		"comma-separated algorithm names (see rme.Algorithms)")
	procsFlag := fs.String("procs", "1,2,4,8",
		"comma-separated GOMAXPROCS sweep: each value is both the process count and GOMAXPROCS")
	passes := fs.Int("passes", 2000, "timed super-passages per process per point")
	warmup := fs.Int("warmup", 200, "untimed warmup super-passages per process per point")
	widthFlag := fs.Uint("width", 64, "word width in bits")
	crashEvery := fs.Int("crashevery", 0,
		"inject a crash every K-th passage (0 = off; recoverable algorithms only)")
	noSim := fs.Bool("nosim", false, "skip the simulated CC-RMR correlation columns")
	jsonPath := fs.String("json", "", "write the machine-readable report to this file")
	mergePath := fs.String("merge", "",
		"merge the report into an existing rmrbench JSON report under the \"native\" key")
	tele := cliutil.TelemetryFlags(fs)
	ledger := cliutil.LedgerFlags(fs)
	version := cliutil.VersionFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(cliutil.VersionString("rmenative"))
		return nil
	}
	algs, err := parseAlgs(*algsFlag)
	if err != nil {
		return err
	}
	sweep, err := parseInts(*procsFlag)
	if err != nil {
		return fmt.Errorf("-procs: %w", err)
	}
	w := word.Width(*widthFlag)
	if !w.Valid() {
		return fmt.Errorf("invalid width %d", *widthFlag)
	}
	stopTele, err := tele.Start("native", telemetry.View{Progress: "native_passages"})
	if err != nil {
		return err
	}
	defer stopTele()
	// The report histograms always exist; the -metrics/-debugaddr registry
	// additionally receives the same observations when enabled.
	reg := telemetry.New()

	report := nativeReport{
		Width:      w,
		Passes:     *passes,
		Warmup:     *warmup,
		CrashEvery: *crashEvery,
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Provenance: perflog.Build(),
	}
	prevMaxProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevMaxProcs)

	start := time.Now()
	for _, alg := range algs {
		fmt.Printf("=== %s (w=%d)\n", alg.Name(), w)
		fmt.Printf("%6s %11s %14s %10s %10s %10s %10s %12s\n",
			"n", "gomaxprocs", "passages/sec", "p50", "p90", "p99", "max", "sim CC-RMR")
		for _, n := range sweep {
			pt, err := runPoint(alg, n, w, *passes, *warmup, *crashEvery, reg, tele.Registry())
			if err != nil {
				return fmt.Errorf("%s n=%d: %w", alg.Name(), n, err)
			}
			if !*noSim {
				if err := simCorrelate(alg, n, w, &pt); err != nil {
					fmt.Fprintf(os.Stderr, "    (sim correlation unavailable for %s n=%d: %v)\n",
						alg.Name(), n, err)
				}
			}
			simCol := "-"
			if pt.SimCCRMRPerPassageMax > 0 {
				simCol = fmt.Sprintf("%.1f/%d", pt.SimCCRMRPerPassageAvg, pt.SimCCRMRPerPassageMax)
			}
			fmt.Printf("%6d %11d %14.0f %10s %10s %10s %10s %12s\n",
				pt.Procs, pt.GOMAXPROCS, pt.ThroughputPerSec,
				ns(pt.Latency.P50NS), ns(pt.Latency.P90NS), ns(pt.Latency.P99NS),
				ns(pt.Latency.MaxNS), simCol)
			report.Points = append(report.Points, pt)
		}
		fmt.Println()
	}
	report.TotalWallMS = float64(time.Since(start).Microseconds()) / 1000
	fmt.Fprintf(os.Stderr, "swept %d algorithms x %d points in %.0f ms\n",
		len(algs), len(sweep), report.TotalWallMS)

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d points)\n", *jsonPath, len(report.Points))
	}
	if *mergePath != "" {
		if err := mergeReport(*mergePath, report); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "merged native series into %s\n", *mergePath)
	}
	ms := make([]*perflog.Manifest, 0, len(report.Points))
	for _, pt := range report.Points {
		ms = append(ms, pointManifest(pt, w, *warmup, *crashEvery, *noSim))
	}
	return ledger.Emit(tele.Registry(), ms...)
}

// runPoint measures one (algorithm, n) configuration with GOMAXPROCS=n.
func runPoint(alg mutex.Algorithm, n int, w word.Width, passes, warmup, crashEvery int, regs ...*telemetry.Registry) (pointRecord, error) {
	if crashEvery > 0 && !alg.Recoverable() {
		crashEvery = 0
	}
	lock, err := mutex.NewNativeLock(alg, n, w)
	if err != nil {
		return pointRecord{}, err
	}
	gmp := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(gmp)

	histName := fmt.Sprintf("native_latency_ns_%s_n%d", metricName(alg.Name()), n)
	var hists []*telemetry.Histogram
	var passCtr []*telemetry.Counter
	for _, reg := range regs {
		hists = append(hists, reg.Histogram(histName, latencyBounds))
		passCtr = append(passCtr, reg.Counter("native_passages"))
	}

	samples := make([][]int64, n)
	var crashes atomic.Int64
	var wg sync.WaitGroup
	var gate sync.WaitGroup // all goroutines bound and warmed before the clock starts
	gate.Add(n)
	release := make(chan struct{})
	for id := 0; id < n; id++ {
		id := id
		samples[id] = make([]int64, 0, passes)
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := lock.Bind(id)
			cs := func() {}
			for p := 0; p < warmup; p++ {
				h.Super(cs)
			}
			gate.Done()
			<-release
			for p := 0; p < passes; p++ {
				if crashEvery > 0 && p%crashEvery == crashEvery-1 {
					h.CrashAfter(int64((id*31 + p*7) % 40))
				}
				t0 := time.Now()
				h.Super(cs)
				d := time.Since(t0).Nanoseconds()
				samples[id] = append(samples[id], d)
				for _, hist := range hists {
					hist.Observe(d)
				}
				for _, c := range passCtr {
					c.Inc()
				}
				if crashEvery > 0 {
					h.CrashAfter(-1)
				}
			}
			crashes.Add(h.Crashes())
		}()
	}
	gate.Wait()
	t0 := time.Now()
	close(release)
	wg.Wait()
	wall := time.Since(t0)

	all := make([]int64, 0, n*passes)
	for _, s := range samples {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var sum int64
	for _, v := range all {
		sum += v
	}
	pt := pointRecord{
		Alg:              alg.Name(),
		Procs:            n,
		GOMAXPROCS:       n,
		Passes:           passes,
		Crashes:          crashes.Load(),
		WallMS:           float64(wall.Microseconds()) / 1000,
		ThroughputPerSec: float64(len(all)) / wall.Seconds(),
	}
	if len(all) > 0 {
		pt.Latency = latencySummary{
			MinNS:  all[0],
			P50NS:  percentile(all, 50),
			P90NS:  percentile(all, 90),
			P99NS:  percentile(all, 99),
			MaxNS:  all[len(all)-1],
			MeanNS: float64(sum) / float64(len(all)),
		}
	}
	if len(regs) > 0 {
		for _, hp := range regs[0].Snapshot().Histograms {
			if hp.Name == histName {
				pt.Histogram = histogramRecord{
					BoundsNS: hp.Bounds, Buckets: hp.Buckets, Count: hp.Count, SumNS: hp.Sum,
				}
			}
		}
	}
	return pt, nil
}

// simCorrelate attaches the simulator's CC-RMR per-passage cost for the
// same (algorithm, n, width) — a deterministic round-robin run, the
// model-side variable of the E14 correlation.
func simCorrelate(alg mutex.Algorithm, n int, w word.Width, pt *pointRecord) error {
	s, err := mutex.NewSession(mutex.Config{
		Procs: n, Width: w, Model: sim.CC, Algorithm: alg, Passes: 2, NoTrace: true,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	if err := s.RunRoundRobin(); err != nil {
		return err
	}
	stats := s.Stats()
	if len(stats) == 0 {
		return fmt.Errorf("no passages recorded")
	}
	total := 0
	for _, st := range stats {
		total += st.RMRs(sim.CC)
	}
	pt.SimCCRMRPerPassageAvg = float64(total) / float64(len(stats))
	pt.SimCCRMRPerPassageMax = s.MaxPassageRMRs(sim.CC)
	return nil
}

// mergeReport folds the native report into an existing JSON object file
// (rmrbench's BENCH_results.json) under the "native" key, preserving all
// other keys. Points from an earlier run survive: the union is keyed by
// (alg, procs), so a second -merge run over a different sweep extends the
// series and only same-key points are replaced by the fresh measurement.
// Scalar metadata (width, go_version, ...) reflects the latest run.
func mergeReport(path string, rep nativeReport) error {
	obj := map[string]any{}
	if blob, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(blob, &obj); err != nil {
			return fmt.Errorf("merge: %s is not a JSON object: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if prev, ok := obj["native"]; ok {
		merged, err := unionPoints(prev, rep)
		if err != nil {
			return fmt.Errorf("merge: %s: %w", path, err)
		}
		rep = merged
	}
	obj["native"] = rep
	blob, err := json.MarshalIndent(obj, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// unionPoints merges the fresh report over the decoded previous "native"
// entry: previous points keep their order, same-(alg, procs) points are
// replaced in place, and new points append in run order.
func unionPoints(prev any, rep nativeReport) (nativeReport, error) {
	blob, err := json.Marshal(prev)
	if err != nil {
		return rep, err
	}
	var old nativeReport
	if err := json.Unmarshal(blob, &old); err != nil {
		return rep, fmt.Errorf("existing \"native\" entry is not a native report: %w", err)
	}
	type key struct {
		alg   string
		procs int
	}
	fresh := make(map[key]int, len(rep.Points))
	for i, pt := range rep.Points {
		fresh[key{pt.Alg, pt.Procs}] = i
	}
	points := make([]pointRecord, 0, len(old.Points)+len(rep.Points))
	used := make(map[key]bool, len(rep.Points))
	for _, pt := range old.Points {
		k := key{pt.Alg, pt.Procs}
		if i, ok := fresh[k]; ok {
			points = append(points, rep.Points[i])
			used[k] = true
			continue
		}
		points = append(points, pt)
	}
	for _, pt := range rep.Points {
		if !used[key{pt.Alg, pt.Procs}] {
			points = append(points, pt)
		}
	}
	rep.Points = points
	return rep, nil
}

func parseAlgs(list string) ([]mutex.Algorithm, error) {
	var out []mutex.Algorithm
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		alg, err := rme.NewAlgorithm(name)
		if err != nil {
			return nil, err
		}
		out = append(out, alg)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no algorithms selected")
	}
	return out, nil
}

func parseInts(list string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad value %q", s)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// percentile returns the p-th percentile of sorted samples
// (nearest-rank method).
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)*p + 99) / 100
	if i > 0 {
		i--
	}
	return sorted[i]
}

// metricName sanitizes an algorithm name for the telemetry registry's
// Prometheus-compatible charset (e.g. "watree(f=2)" -> "watree_f_2_").
func metricName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, s)
}

// ns renders a nanosecond latency compactly.
func ns(v int64) string {
	switch {
	case v >= 10_000_000:
		return fmt.Sprintf("%.0fms", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.0fus", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dns", v)
	}
}
