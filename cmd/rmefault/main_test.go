package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// captureStdout runs fn with stdout redirected to a pipe and returns what it
// wrote. Stderr (timings, notes) is silenced: the contract under test is
// that *stdout* is byte-identical across -parallel values.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, wr, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	oldOut, oldErr := os.Stdout, os.Stderr
	os.Stdout, os.Stderr = wr, devnull
	defer func() {
		os.Stdout, os.Stderr = oldOut, oldErr
		devnull.Close()
	}()
	done := make(chan string, 1)
	go func() {
		blob, _ := io.ReadAll(r)
		done <- string(blob)
	}()
	runErr := fn()
	wr.Close()
	out := <-done
	r.Close()
	return out, runErr
}

// TestStdoutParityAcrossParallelism locks in the campaign determinism
// guarantee end to end: the full report — including failure reproducers and
// shrunk schedules — is byte-identical at any -parallel value.
func TestStdoutParityAcrossParallelism(t *testing.T) {
	args := []string{"-alg", "broken", "-n", "2", "-seed", "7"}
	one, errOne := captureStdout(t, func() error { return run(append([]string{"-parallel", "1"}, args...)) })
	eight, errEight := captureStdout(t, func() error { return run(append([]string{"-parallel", "8"}, args...)) })
	if errOne == nil || errEight == nil {
		t.Fatal("the broken algorithm campaign must exit with an error")
	}
	if one != eight {
		t.Fatalf("stdout differs between -parallel 1 and 8:\n--- parallel 1 ---\n%s\n--- parallel 8 ---\n%s", one, eight)
	}
	if len(one) == 0 {
		t.Fatal("no output captured")
	}
}

// TestTraceParityAcrossParallelism checks that the traced reproducer replays
// are byte-identical at any -parallel value: the failure set (and hence the
// shrunk schedules replayed under tracing) is campaign-deterministic.
func TestTraceParityAcrossParallelism(t *testing.T) {
	dir := t.TempDir()
	one := filepath.Join(dir, "p1.jsonl")
	eight := filepath.Join(dir, "p8.jsonl")
	for parallel, path := range map[string]string{"1": one, "8": eight} {
		_, runErr := captureStdout(t, func() error {
			return run([]string{"-alg", "broken", "-n", "2", "-seed", "7", "-parallel", parallel, "-trace", path})
		})
		if runErr == nil {
			t.Fatal("the broken algorithm campaign must exit with an error")
		}
	}
	a, err := os.ReadFile(one)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(eight)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("reproducer trace differs between -parallel 1 (%d bytes) and 8 (%d bytes)", len(a), len(b))
	}
}

// TestJSONStdoutMachineClean asserts -json stdout is exactly one JSON
// document — no timing, progress, or trace-summary lines mixed in — even
// when tracing and summarizing are active.
func TestJSONStdoutMachineClean(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	out, runErr := captureStdout(t, func() error {
		return run([]string{"-alg", "broken", "-n", "2", "-seed", "7", "-json", "-trace", path, "-top", "3"})
	})
	if runErr == nil {
		t.Fatal("the broken algorithm campaign must exit with an error")
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json stdout is not a single JSON document: %v\n%s", err, out)
	}
}

// TestJSONReportMachineReadable checks the -json report parses and carries
// the failure reproducers.
func TestJSONReportMachineReadable(t *testing.T) {
	out, runErr := captureStdout(t, func() error {
		return run([]string{"-alg", "broken", "-n", "2", "-seed", "7", "-json"})
	})
	if runErr == nil {
		t.Fatal("the broken algorithm campaign must exit with an error")
	}
	var rep struct {
		Algorithm string `json:"algorithm"`
		Ok        bool   `json:"ok"`
		Runs      int    `json:"runs"`
		Failures  []struct {
			Oracle string `json:"oracle"`
			Shrunk string `json:"shrunk"`
		} `json:"failures"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.Algorithm != "broken-tas" || rep.Ok || rep.Runs == 0 || len(rep.Failures) == 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.Failures[0].Shrunk == "" {
		t.Fatal("failure carries no shrunk reproducer")
	}
}
