package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestJSONParityWithTelemetry is the determinism acceptance check for the
// campaign CLI: the -json document must be byte-identical with heartbeats
// and the metrics stream on or off, at -parallel 1 and 8.
func TestJSONParityWithTelemetry(t *testing.T) {
	base := []string{"-alg", "broken", "-n", "2", "-seed", "7", "-json"}
	dir := t.TempDir()
	variant := func(name string, extra ...string) string {
		t.Helper()
		out, err := captureStdout(t, func() error {
			return run(append(append([]string{}, base...), extra...))
		})
		if err == nil {
			t.Fatalf("%s: the broken algorithm campaign must exit with an error", name)
		}
		return out
	}
	off1 := variant("off-parallel1", "-parallel", "1")
	off8 := variant("off-parallel8", "-parallel", "8")
	on1 := variant("on-parallel1", "-parallel", "1",
		"-heartbeat", "2ms", "-metrics", filepath.Join(dir, "p1.jsonl"))
	on8 := variant("on-parallel8", "-parallel", "8",
		"-heartbeat", "2ms", "-metrics", filepath.Join(dir, "p8.jsonl"))
	if len(off1) == 0 {
		t.Fatal("no output captured")
	}
	for name, got := range map[string]string{"off-parallel8": off8, "on-parallel1": on1, "on-parallel8": on8} {
		if got != off1 {
			t.Fatalf("stdout differs with telemetry (%s):\n--- baseline ---\n%s\n--- %s ---\n%s", name, off1, name, got)
		}
	}
}

// debugServedRun launches run(args) in a goroutine with stdout silenced and
// stderr piped, parses the "debug server on ..." announcement, and returns
// the bound address plus the run's completion channel.
func debugServedRun(t *testing.T, args []string) (string, chan error) {
	t.Helper()
	rErr, wErr, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	oldOut, oldErr := os.Stdout, os.Stderr
	os.Stdout, os.Stderr = devnull, wErr
	t.Cleanup(func() {
		os.Stdout, os.Stderr = oldOut, oldErr
		devnull.Close()
		wErr.Close()
		rErr.Close()
	})
	done := make(chan error, 1)
	go func() { done <- run(args) }()
	br := bufio.NewReader(rErr)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading debug announcement: %v", err)
	}
	go io.Copy(io.Discard, br) // keep draining stderr so the run never blocks
	const marker = "debug server on http://"
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("no debug server announcement, got %q", line)
	}
	return strings.Fields(line[i+len(marker):])[0], done
}

// pollGet fetches url until the body contains want (the campaign may not
// have populated the registry at the first scrape).
func pollGet(t *testing.T, url, want string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK && strings.Contains(string(body), want) {
				return string(body)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s: never saw %q (last err %v)", url, want, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDebugEndpointsDuringCampaign is the -debugaddr integration check:
// while a campaign runs, /metrics (both formats), /debug/vars and
// /debug/pprof all answer on the announced address.
func TestDebugEndpointsDuringCampaign(t *testing.T) {
	addr, done := debugServedRun(t, []string{
		"-alg", "yatree", "-n", "4", "-runs", "20000", "-parallel", "1",
		"-debugaddr", "127.0.0.1:0",
	})
	base := "http://" + addr

	prom := pollGet(t, base+"/metrics", "faults_runs")
	if !strings.Contains(prom, "# TYPE faults_runs counter") {
		t.Errorf("prometheus exposition missing TYPE line:\n%s", prom)
	}
	var js struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	}
	if err := json.Unmarshal([]byte(pollGet(t, base+"/metrics?format=json", "faults_runs")), &js); err != nil {
		t.Errorf("JSON /metrics: %v", err)
	} else if js.Gauges["faults_plans"] == 0 {
		t.Errorf("JSON /metrics shows no planned runs: %v", js.Gauges)
	}
	pollGet(t, base+"/debug/vars", "rme_telemetry")
	pollGet(t, base+"/debug/pprof/", "goroutine")

	if err := <-done; err != nil {
		t.Fatalf("clean campaign failed: %v", err)
	}
}
