// Command rmefault runs a deterministic fault-injection campaign against a
// mutual exclusion algorithm: systematic and seeded-random crash placement,
// invariant oracles (mutual exclusion, deadlock-freedom, CS re-entry, RMR
// budgets) on every run, and delta-debugged minimal reproducers for every
// failure. The whole campaign is a pure function of its flags and -seed, so
// output is byte-identical at any -parallel.
//
// Usage:
//
//	rmefault [-alg watree] [-n 3] [-w 8] [-model cc] [-passes 1] [-seed 1]
//	         [-sources single,rmr,parked,system,double,random] [-runs 48]
//	         [-budget 0] [-bound 0] [-parallel N] [-failfast] [-noshrink] [-json]
//	         [-trace FILE] [-traceformat jsonl|chrome] [-top N]
//	         [-cpuprofile FILE] [-memprofile FILE]
//	         [-heartbeat DUR] [-metrics FILE] [-debugaddr ADDR]
//
// -heartbeat prints live progress lines (runs/sec, failure count, worker
// utilization, ETA against the plan grid) to stderr; -metrics appends JSONL
// metric snapshots; -debugaddr serves /metrics, /debug/vars and /debug/pprof
// while the campaign runs. All three are strictly observational: the stdout
// report stays byte-identical with them on or off.
//
// -trace replays each failure's shrunken reproducer (or, on a clean
// campaign, the crash-free probe run) on a machine with event retention and
// exports the step-level story; campaigns themselves run trace-free for
// throughput. -top prints the replays' hottest cells/procs to stderr.
//
// The special algorithm "broken" is an intentionally crash-unsafe lock for
// demonstrating the campaign pipeline end to end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rme/internal/algorithms/clh"
	"rme/internal/algorithms/grlock"
	"rme/internal/algorithms/mcs"
	"rme/internal/algorithms/qword"
	"rme/internal/algorithms/rspin"
	"rme/internal/algorithms/tas"
	"rme/internal/algorithms/ticket"
	"rme/internal/algorithms/tournament"
	"rme/internal/algorithms/watree"
	"rme/internal/algorithms/yatree"
	"rme/internal/cliutil"
	"rme/internal/faults"
	"rme/internal/mutex"
	"rme/internal/perflog"
	"rme/internal/sim"
	"rme/internal/telemetry"
	"rme/internal/trace"
	"rme/internal/word"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rmefault:", err)
		os.Exit(1)
	}
}

// telemetryView is the campaign's heartbeat layout: progress against the
// generated plan grid, live failure count, worker utilization.
func telemetryView() telemetry.View {
	return telemetry.View{
		Progress:    "faults_runs",
		Target:      "faults_plans",
		Show:        []string{"faults_failures"},
		UtilBusy:    "engine_busy_ns",
		UtilWorkers: "engine_workers",
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rmefault", flag.ContinueOnError)
	algName := fs.String("alg", "watree", "algorithm: tas, ticket, mcs, clh, tournament, yatree, grlock, rspin, qword, watree, watree2, broken")
	n := fs.Int("n", 3, "number of processes")
	w := fs.Int("w", 8, "word size in bits")
	modelName := fs.String("model", "cc", "cost model: cc or dsm")
	passes := fs.Int("passes", 1, "super-passages per process")
	seed := fs.Int64("seed", 1, "campaign base seed (threaded into every random source)")
	sourcesFlag := fs.String("sources", "", "comma-separated campaign axes: single, double, rmr, parked, system, random (default: all valid for the algorithm)")
	runs := fs.Int("runs", 48, "runs on the seeded-random axis")
	budget := fs.Int("budget", 0, "per-passage RMR ceiling for both models (0 = algorithm default, -1 = disable)")
	bound := fs.Int("bound", 0, "scheduler decision bound per run (0 = derive from the probe)")
	parallel := fs.Int("parallel", 0, "campaign workers (0 = GOMAXPROCS); reports are identical at any value")
	failFast := fs.Bool("failfast", false, "stop launching runs after the first failure (faster, non-deterministic report)")
	noShrink := fs.Bool("noshrink", false, "report full failing schedules instead of minimized reproducers")
	jsonOut := fs.Bool("json", false, "emit the campaign report as JSON on stdout")
	tracePath := fs.String("trace", "", "export step-level traces of the failure reproducers (or the probe run) to this file")
	traceFormat := fs.String("traceformat", "jsonl", "trace encoding: jsonl or chrome (Perfetto)")
	top := fs.Int("top", 0, "print the N hottest cells/procs of the traced replays to stderr (0 = off)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	tele := cliutil.TelemetryFlags(fs)
	ledger := cliutil.LedgerFlags(fs)
	version := cliutil.VersionFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(cliutil.VersionString("rmefault"))
		return nil
	}
	if _, err := trace.ParseFormat(*traceFormat); err != nil {
		return err
	}
	stopCPU, err := cliutil.StartCPUProfile(*cpuProfile)
	if err != nil {
		return err
	}
	defer stopCPU()
	stopTele, err := tele.Start("fault", telemetryView())
	if err != nil {
		return err
	}
	defer stopTele()

	algs := map[string]mutex.Algorithm{
		"tas": tas.New(), "ticket": ticket.New(), "mcs": mcs.New(), "clh": clh.New(),
		"tournament": tournament.New(), "yatree": yatree.New(), "grlock": grlock.New(),
		"rspin": rspin.New(), "watree": watree.New(), "watree2": watree.New(watree.WithFanout(2)),
		"qword": qword.New(), "broken": faults.NewBroken(),
	}
	alg, ok := algs[strings.ToLower(*algName)]
	if !ok {
		return fmt.Errorf("unknown algorithm %q", *algName)
	}
	model := sim.CC
	if strings.EqualFold(*modelName, "dsm") {
		model = sim.DSM
	}

	sources, err := buildSources(*sourcesFlag, alg.Recoverable(), *seed, *runs)
	if err != nil {
		return err
	}
	var oracles []faults.Oracle
	if *budget != 0 {
		oracles = []faults.Oracle{faults.MutualExclusion{}, faults.DeadlockFree{}, faults.Reentry{}}
		if *budget > 0 {
			oracles = append(oracles, faults.RMRBudget{CC: *budget, DSM: *budget})
		}
	}

	c := faults.Campaign{
		Session: mutex.Config{
			Procs: *n, Width: word.Width(*w), Model: model, Algorithm: alg, Passes: *passes,
		},
		Sources:   sources,
		Oracles:   oracles,
		Seed:      *seed,
		Parallel:  *parallel,
		Bound:     *bound,
		NoShrink:  *noShrink,
		FailFast:  *failFast,
		Telemetry: tele.Registry(),
	}
	start := time.Now()
	rep, err := c.Run()
	if err != nil {
		return err
	}
	wallMS := float64(time.Since(start).Microseconds()) / 1000
	fmt.Fprintf(os.Stderr, "campaign: %d runs in %v\n", rep.Runs, time.Since(start).Round(time.Millisecond))

	// Perf-ledger manifest: the campaign is a pure function of these flags, so
	// every counter below is exactly gateable. -failfast stays in the config
	// (it changes which runs execute); -parallel and observability flags do
	// not.
	emitLedger := func() error {
		m := perflog.New("rmefault")
		m.SetConfig("alg", alg.Name())
		m.SetConfig("n", *n)
		m.SetConfig("w", *w)
		m.SetConfig("model", model)
		m.SetConfig("passes", *passes)
		m.SetConfig("seed", *seed)
		m.SetConfig("sources", *sourcesFlag)
		m.SetConfig("runs", *runs)
		m.SetConfig("budget", *budget)
		m.SetConfig("bound", *bound)
		m.SetConfig("noshrink", *noShrink)
		m.SetConfig("failfast", *failFast)
		m.Counter("runs", int64(rep.Runs))
		m.Counter("skipped", int64(rep.Skipped))
		m.Counter("failures", int64(len(rep.Failures)))
		m.Counter("probe_steps", int64(rep.Probe.Steps))
		m.Counter("probe_rmr_steps", int64(len(rep.Probe.RMRAt)))
		m.Counter("bound", int64(rep.Bound))
		for _, st := range rep.Sources {
			m.Counter("src_"+st.Name+"_runs", int64(st.Runs))
			m.Counter("src_"+st.Name+"_failures", int64(st.Failures))
		}
		m.Sample("wall_ms", wallMS)
		return ledger.Emit(tele.Registry(), m)
	}

	if *tracePath != "" || *top > 0 {
		runs, err := tracedReplays(rep)
		if err != nil {
			return err
		}
		// Attribution goes to stderr: -json stdout stays machine-clean.
		cliutil.SummarizeTrace(os.Stderr, runs, model, *top)
		if err := cliutil.ExportTrace(*tracePath, *traceFormat, runs); err != nil {
			return err
		}
	}
	if err := cliutil.WriteHeapProfile(*memProfile); err != nil {
		return err
	}

	if *jsonOut {
		if err := emitJSON(rep, model); err != nil {
			return err
		}
		return emitLedger()
	}
	fmt.Printf("campaign: %s n=%d w=%d model=%s passes=%d seed=%d\n",
		rep.Algorithm, *n, *w, model, *passes, rep.Seed)
	fmt.Printf("probe: %d decisions, %d RMR-incurring; bound %d\n",
		rep.Probe.Steps, len(rep.Probe.RMRAt), rep.Bound)
	for _, st := range rep.Sources {
		fmt.Printf("  %-18s %5d runs  %d failures\n", st.Name, st.Runs, st.Failures)
	}
	if rep.Skipped > 0 {
		fmt.Printf("  (%d runs skipped by -failfast)\n", rep.Skipped)
	}
	for _, f := range rep.Failures {
		fmt.Printf("FAIL %s\n", f)
	}
	if !rep.Ok() {
		return fmt.Errorf("%d of %d runs failed", len(rep.Failures), rep.Runs)
	}
	fmt.Println("OK")
	return emitLedger()
}

// tracedReplays re-executes the campaign's interesting schedules — each
// failure's shrunken reproducer, or the crash-free probe run when the
// campaign was clean — on machines with event retention, and returns one
// traced run per schedule in failure order.
func tracedReplays(rep *faults.Report) ([]trace.Run, error) {
	procs, model := rep.Cfg.Procs, rep.Cfg.Model
	if len(rep.Failures) == 0 {
		events, _, err := faults.ReplayTraced(rep.Cfg, rep.Probe.Schedule)
		if err != nil {
			return nil, fmt.Errorf("trace probe run: %w", err)
		}
		return []trace.Run{{Label: "probe", Procs: procs, Model: model, Events: events}}, nil
	}
	var runs []trace.Run
	for i, f := range rep.Failures {
		sched := f.Shrunk
		if len(sched) == 0 {
			sched = f.Schedule
		}
		events, _, err := faults.ReplayTraced(rep.Cfg, sched)
		if err != nil {
			return nil, fmt.Errorf("trace reproducer %d: %w", i, err)
		}
		runs = append(runs, trace.Run{
			Index: i, Label: fmt.Sprintf("reproducer-%d %s/%s", i, f.Source, f.Oracle),
			Procs: procs, Model: model, Events: events,
		})
	}
	return runs, nil
}

// buildSources resolves the -sources flag. An empty spec selects every axis
// that is valid for the algorithm's recoverability.
func buildSources(spec string, recoverable bool, seed int64, runs int) ([]faults.Source, error) {
	maxCrashes := 3
	if !recoverable {
		maxCrashes = 0
	}
	byName := map[string]faults.Source{
		"single": faults.ExhaustiveCrashes{Crashes: 1},
		"double": faults.ExhaustiveCrashes{Crashes: 2},
		"rmr":    faults.RMRTargeted{},
		"parked": faults.ParkedCrashes{},
		"system": faults.SystemWideCrashes{},
		"random": faults.RandomCrashes{Runs: runs, MaxCrashes: maxCrashes, Seed: seed},
	}
	if spec == "" {
		if !recoverable {
			return []faults.Source{byName["random"]}, nil
		}
		return []faults.Source{
			byName["single"], byName["rmr"], byName["parked"],
			byName["system"], byName["double"], byName["random"],
		}, nil
	}
	var out []faults.Source
	for _, name := range strings.Split(spec, ",") {
		src, ok := byName[strings.TrimSpace(strings.ToLower(name))]
		if !ok {
			return nil, fmt.Errorf("unknown source %q (want single, double, rmr, parked, system, random)", name)
		}
		out = append(out, src)
	}
	return out, nil
}

// jsonFailure is the stable machine-readable failure view: schedules render
// as strings that round-trip through sim.ParseSchedule.
type jsonFailure struct {
	Source        string      `json:"source"`
	Oracle        string      `json:"oracle"`
	Detail        string      `json:"detail"`
	Plan          faults.Plan `json:"plan"`
	Schedule      string      `json:"schedule"`
	Shrunk        string      `json:"shrunk"`
	ShrinkReplays int         `json:"shrink_replays,omitempty"`
}

type jsonReport struct {
	Algorithm  string              `json:"algorithm"`
	Procs      int                 `json:"n"`
	Width      int                 `json:"w"`
	Model      string              `json:"model"`
	Passes     int                 `json:"passes"`
	Seed       int64               `json:"seed"`
	Bound      int                 `json:"bound"`
	ProbeLen   int                 `json:"probe_steps"`
	ProbeRMRs  int                 `json:"probe_rmr_steps"`
	Runs       int                 `json:"runs"`
	Skipped    int                 `json:"skipped,omitempty"`
	Ok         bool                `json:"ok"`
	Sources    []faults.SourceStat `json:"sources"`
	Failures   []jsonFailure       `json:"failures,omitempty"`
	Provenance perflog.Provenance  `json:"provenance"`
}

func emitJSON(rep *faults.Report, model sim.Model) error {
	out := jsonReport{
		Algorithm:  rep.Algorithm,
		Procs:      rep.Cfg.Procs,
		Width:      int(rep.Cfg.Width),
		Model:      model.String(),
		Passes:     rep.Cfg.Passes,
		Seed:       rep.Seed,
		Bound:      rep.Bound,
		ProbeLen:   rep.Probe.Steps,
		ProbeRMRs:  len(rep.Probe.RMRAt),
		Runs:       rep.Runs,
		Skipped:    rep.Skipped,
		Ok:         rep.Ok(),
		Sources:    rep.Sources,
		Provenance: perflog.Build(),
	}
	for _, f := range rep.Failures {
		out.Failures = append(out.Failures, jsonFailure{
			Source:        f.Source,
			Oracle:        f.Oracle,
			Detail:        f.Detail,
			Plan:          f.Plan,
			Schedule:      f.Schedule.String(),
			Shrunk:        f.Shrunk.String(),
			ShrinkReplays: f.ShrinkReplays,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	if !out.Ok {
		return fmt.Errorf("%d of %d runs failed", len(rep.Failures), rep.Runs)
	}
	return nil
}
