// Command rmetrace works with step-level trace files exported by the other
// tools' -trace flags (rmrbench, rmefault, rmecheck, rmeadversary) and with
// the telemetry JSONL streams their -metrics flags write.
//
//	rmetrace summarize [-model cc|dsm] [-top N] FILE
//	rmetrace convert [-format chrome|jsonl] [-o OUT] FILE
//	rmetrace metrics FILE
//
// summarize aggregates a JSONL trace into per-cell and per-process RMR
// attribution tables and prints the hottest cells and costliest processes —
// the answer to "where did the RMRs go" that aggregate Max/Total counters
// cannot give. convert re-encodes a JSONL trace, most usefully into Chrome
// trace_event JSON for the Perfetto timeline (https://ui.perfetto.dev).
// metrics summarizes a -metrics heartbeat stream: one row per series with
// first/min/max/last values and the cumulative rate over the stream's span.
// All read from stdin when FILE is "-". Output is a pure function of the
// input file: summarizing the same file twice prints identical bytes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rme/internal/cliutil"
	"rme/internal/perflog"
	"rme/internal/sim"
	"rme/internal/telemetry"
	"rme/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rmetrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: rmetrace summarize|convert|metrics [flags] FILE")
	}
	switch args[0] {
	case "summarize":
		return runSummarize(args[1:])
	case "convert":
		return runConvert(args[1:])
	case "metrics":
		return runMetrics(args[1:])
	case "version", "-version", "--version":
		fmt.Println(cliutil.VersionString("rmetrace"))
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q (want summarize, convert, metrics or version)", args[0])
	}
}

// readRuns loads a JSONL trace from the named file or stdin ("-").
func readRuns(path string) ([]trace.Run, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	runs, err := trace.ReadJSONL(r)
	if err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("%s: no runs in trace", path)
	}
	return runs, nil
}

func runSummarize(args []string) error {
	fs := flag.NewFlagSet("rmetrace summarize", flag.ContinueOnError)
	modelName := fs.String("model", "cc", "rank by RMRs under this cost model: cc or dsm")
	top := fs.Int("top", 10, "rows per attribution table")
	ledger := cliutil.LedgerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: rmetrace summarize [-model cc|dsm] [-top N] [-ledger FILE] FILE")
	}
	model := sim.CC
	if strings.EqualFold(*modelName, "dsm") {
		model = sim.DSM
	}
	runs, err := readRuns(fs.Arg(0))
	if err != nil {
		return err
	}
	var totalEvents, totalSteps, totalCC, totalDSM int64
	fmt.Printf("%d runs:\n", len(runs))
	for _, r := range runs {
		a := trace.Attribute(r.Events)
		fmt.Printf("  run %d: %s (%s, n=%d) — %d events, %d steps, %d RMRs\n",
			r.Index, r.Label, r.Model, r.Procs, a.Events, a.Steps, a.RMRs(r.Model))
		totalEvents += int64(a.Events)
		totalSteps += int64(a.Steps)
		totalCC += int64(a.RMRCC)
		totalDSM += int64(a.RMRDSM)
	}
	trace.WriteSummary(os.Stdout, trace.Merge(runs), model, *top)

	// The summary is a pure function of the trace file, so the aggregate
	// attribution totals are exactly-gateable counters for that file's
	// contents. The file's base name identifies the artifact in the config
	// (its directory is host layout, not semantics).
	m := perflog.New("rmetrace")
	m.SetConfig("subcommand", "summarize")
	m.SetConfig("file", filepath.Base(fs.Arg(0)))
	m.SetConfig("model", model)
	m.SetConfig("top", *top)
	m.Counter("runs", int64(len(runs)))
	m.Counter("events", totalEvents)
	m.Counter("steps", totalSteps)
	m.Counter("rmr_cc", totalCC)
	m.Counter("rmr_dsm", totalDSM)
	return ledger.Emit(nil, m)
}

// runMetrics summarizes a telemetry JSONL stream: per-series first, min,
// max and last values plus the cumulative rate between the first and last
// snapshots. Series are sorted by name, so output is diff-able.
func runMetrics(args []string) error {
	fs := flag.NewFlagSet("rmetrace metrics", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: rmetrace metrics FILE")
	}
	path := fs.Arg(0)
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	recs, err := telemetry.ReadRecords(r)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("%s: no records in metrics stream", path)
	}

	first, last := recs[0], recs[len(recs)-1]
	span := (last.TMS - first.TMS) / 1000 // seconds
	label := last.Label
	if label == "" {
		label = "(unlabeled)"
	}
	finalNote := ""
	if last.Final {
		finalNote = ", final record present"
	}
	fmt.Printf("%s: %d snapshots over %.2fs%s\n\n", label, len(recs), span, finalNote)

	type stat struct {
		first, min, max, last int64
		seen                  bool
	}
	stats := map[string]*stat{}
	var names []string
	for _, rec := range recs {
		for name, v := range rec.Metrics {
			s, ok := stats[name]
			if !ok {
				s = &stat{first: v, min: v, max: v}
				stats[name] = s
				names = append(names, name)
			}
			if v < s.min {
				s.min = v
			}
			if v > s.max {
				s.max = v
			}
			s.last = v
		}
	}
	sort.Strings(names)
	fmt.Printf("%-34s %12s %12s %12s %12s %12s\n", "series", "first", "min", "max", "last", "rate/s")
	for _, name := range names {
		s := stats[name]
		rate := "-"
		if span > 0 && s.last > s.first {
			rate = fmt.Sprintf("%.1f", float64(s.last-s.first)/span)
		}
		fmt.Printf("%-34s %12d %12d %12d %12d %12s\n", name, s.first, s.min, s.max, s.last, rate)
	}
	return nil
}

func runConvert(args []string) error {
	fs := flag.NewFlagSet("rmetrace convert", flag.ContinueOnError)
	format := fs.String("format", "chrome", "output encoding: chrome (Perfetto) or jsonl")
	out := fs.String("o", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: rmetrace convert [-format chrome|jsonl] [-o OUT] FILE")
	}
	f, err := trace.ParseFormat(*format)
	if err != nil {
		return err
	}
	runs, err := readRuns(fs.Arg(0))
	if err != nil {
		return err
	}
	if *out == "" {
		return trace.Write(os.Stdout, f, runs)
	}
	if err := trace.WriteFile(*out, f, runs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%s, %d runs)\n", *out, f, len(runs))
	return nil
}
