package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestMetricsGolden locks in the `rmetrace metrics` table format against a
// checked-in heartbeat stream. Regenerate with `go test -run Golden -update`.
func TestMetricsGolden(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"metrics", filepath.Join("testdata", "metrics.jsonl")})
	})
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.WriteFile(golden, out, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Errorf("metrics output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}
}

func TestMetricsBadInput(t *testing.T) {
	if err := run([]string{"metrics"}); err == nil {
		t.Error("missing FILE should fail")
	}
	if err := run([]string{"metrics", "/nonexistent/metrics.jsonl"}); err == nil {
		t.Error("missing file should fail")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"metrics", empty}); err == nil {
		t.Error("empty stream should fail")
	}
}
