package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rme/internal/algorithms/watree"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/trace"
	"rme/internal/word"
)

// fixtureTrace writes a small traced watree run to a JSONL file and returns
// its path.
func fixtureTrace(t *testing.T) string {
	t.Helper()
	s, err := mutex.NewSession(mutex.Config{
		Procs: 2, Width: word.Width(8), Model: sim.CC, Algorithm: watree.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RunRoundRobin(); err != nil {
		t.Fatal(err)
	}
	runs := []trace.Run{{
		Label: "fixture", Procs: 2, Model: sim.CC,
		Events: append([]sim.Event(nil), s.Machine().Trace()...),
	}}
	path := filepath.Join(t.TempDir(), "fixture.jsonl")
	if err := trace.WriteFile(path, trace.FormatJSONL, runs); err != nil {
		t.Fatal(err)
	}
	return path
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything it printed.
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		var buf bytes.Buffer
		buf.ReadFrom(r)
		done <- buf.Bytes()
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

func TestSummarize(t *testing.T) {
	path := fixtureTrace(t)
	out := captureStdout(t, func() error {
		return run([]string{"summarize", "-top", "5", path})
	})
	for _, want := range []string{"1 runs:", "fixture", "hottest cells", "costliest processes"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// Summarizing the same file twice prints identical bytes.
	again := captureStdout(t, func() error {
		return run([]string{"summarize", "-top", "5", path})
	})
	if !bytes.Equal(out, again) {
		t.Error("summarize is not deterministic across invocations")
	}
}

func TestConvertChrome(t *testing.T) {
	path := fixtureTrace(t)
	out := filepath.Join(t.TempDir(), "out.json")
	if err := run([]string{"convert", "-format", "chrome", "-o", out, path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"traceEvents"`)) {
		t.Errorf("chrome output missing traceEvents:\n%.200s", data)
	}
}

func TestConvertJSONLRoundTrip(t *testing.T) {
	path := fixtureTrace(t)
	out := captureStdout(t, func() error {
		return run([]string{"convert", "-format", "jsonl", path})
	})
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Op names survive only as display strings, but the encoder re-emits the
	// same bytes for everything a JSONL round trip preserves.
	if !bytes.Equal(out, orig) {
		t.Error("jsonl convert of a jsonl file changed its bytes")
	}
}

func TestBadArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no-arg run should fail")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown subcommand should fail")
	}
	if err := run([]string{"summarize", "/nonexistent/trace.jsonl"}); err == nil {
		t.Error("missing file should fail")
	}
}
